(* Command-line driver: run a configurable write workload against any of
   the DFS implementations and report throughput, latency and resource
   usage. Examples:

     dune exec bin/linefs_sim.exe -- --system linefs --clients 4
     dune exec bin/linefs_sim.exe -- --system assise --file-mb 64 --busy
     dune exec bin/linefs_sim.exe -- --system linefs-np --io-kb 4 --latency
     dune exec bin/linefs_sim.exe -- --workload metastorm --files 2000
*)

open Sim
open Linefs
open Cmdliner

type system = Linefs | Linefs_np | Assise | Assise_bg | Hyperloop

let system_conv =
  Arg.enum
    [
      ("linefs", Linefs);
      ("linefs-np", Linefs_np);
      ("assise", Assise);
      ("assise-bg", Assise_bg);
      ("hyperloop", Hyperloop);
    ]

type workload = Seq_write | Metastorm

let workload_conv =
  Arg.enum [ ("seq", Seq_write); ("metastorm", Metastorm) ]

(* Build the system under test.  With [sharding] the deployment is
   partitioned per node across the Sharded runner (call from outside
   any engine); without it, call from inside the engine's process
   context. *)
let make_system ?sharding system busy params =
  match system with
  | Linefs | Linefs_np ->
      let d =
        Deployment.create ?sharding ~params
          ~pipeline_parallelism:(system = Linefs)
          ~dfs_prio:(if busy then Hw.Cpu.prio_high else Hw.Cpu.prio_normal)
          ~nodes:3 ()
      in
      ( (if system = Linefs then "LineFS" else "LineFS-NotParallel"),
        (fun id -> Libfs.ops (Deployment.add_client d ~id)),
        (fun i -> (Deployment.node d i).Deployment.node),
        (fun () -> Deployment.total_host_dfs_cpu d),
        fun () -> Deployment.stop d )
  | Assise | Assise_bg | Hyperloop ->
      let variant =
        match system with
        | Assise -> Baselines.Assise.Pessimistic
        | Assise_bg -> Baselines.Assise.Bg_repl
        | _ -> Baselines.Assise.Hyperloop
      in
      let a =
        Baselines.Assise.create ?sharding ~params ~variant
          ~dfs_prio:(if busy then Hw.Cpu.prio_high else Hw.Cpu.prio_normal)
          ~nodes:3 ()
      in
      ( Baselines.Assise.variant_name variant,
        (fun id -> Baselines.Assise.ops (Baselines.Assise.add_client a ~id)),
        (fun i -> Baselines.Assise.node a i),
        (fun () -> Baselines.Assise.total_host_dfs_cpu a),
        fun () -> Baselines.Assise.stop a )

(* The measurement proper, over an already-built system, parameterized
   over where its output goes so that multi-instance runs can buffer
   per-instance text and compare it byte-for-byte afterwards. *)
let workload_body fmt (name, client_ops, node_of, total_dfs_cpu, teardown)
    workload clients file_mb io_kb files duration_ms busy latency_mode () =
  let file_bytes = file_mb * 1024 * 1024 in
  let io_bytes = io_kb * 1024 in
  let stop_bg =
    if busy then begin
      let bgs =
        List.map
          (fun i ->
            Workloads.Streamcluster.start_background ~node:(node_of i) ())
          [ 1; 2 ]
      in
      fun () -> List.iter Workloads.Streamcluster.stop bgs
    end
    else fun () -> ()
  in
  Fmt.pf fmt "system: %s, %d client(s), %d MB file, %d KB IOs%s@." name clients
    file_mb io_kb
    (if busy then ", replicas busy" else "");
  if workload = Metastorm then begin
    let ops = client_ops 1 in
    let r =
      Workloads.Metastorm.run ~ops ~files ~threads:(clients * 4)
        ~duration:(Time.ms duration_ms) ~seed:42 ()
    in
    Fmt.pf fmt
      "metastorm: %d ops in %a of simulated time: %.1f kops/s (%d files, %d \
       threads)@."
      r.Workloads.Metastorm.ops_done Time.pp r.Workloads.Metastorm.elapsed
      r.Workloads.Metastorm.kops_per_sec files (clients * 4)
  end
  else if latency_mode then begin
    let ops = client_ops 1 in
    let series =
      Workloads.Microbench.write_fsync_latency ~ops ~path:"/lat"
        ~n_ops:(file_bytes / io_bytes) ~io_bytes ()
    in
    Fmt.pf fmt "write+fsync latency: avg %.1f us, p50 %.1f, p99 %.1f, p99.9 %.1f@."
      (Stats.Series.mean series)
      (Stats.Series.percentile series 50.0)
      (Stats.Series.percentile series 99.0)
      (Stats.Series.percentile series 99.9)
  end
  else begin
    let opses = List.init clients (fun i -> client_ops (i + 1)) in
    let t0 = Engine.now () in
    let live = ref clients in
    let all_done = Ivar.create () in
    List.iteri
      (fun i ops ->
        Engine.spawn ~name:(Printf.sprintf "cli%d" i) (fun () ->
            Workloads.Microbench.seq_write ~ops
              ~path:(Printf.sprintf "/bench%d" i)
              ~file_bytes:(file_bytes / clients) ~io_bytes ();
            decr live;
            if !live = 0 then Ivar.fill all_done ()))
      opses;
    Ivar.read all_done;
    let elapsed = Engine.now () - t0 in
    Fmt.pf fmt "wrote %d MB in %a of simulated time: %.2f GB/s@." file_mb
      Time.pp elapsed
      (float_of_int file_bytes /. Time.to_sec_f elapsed /. 1e9);
    Fmt.pf fmt "host DFS CPU consumed across the cluster: %a (%.2f cores avg)@."
      Time.pp (total_dfs_cpu ())
      (float_of_int (total_dfs_cpu ()) /. float_of_int elapsed)
  end;
  stop_bg ();
  teardown ()

(* Rack-scale run: [nodes] machines as independent replica groups of
   [group_size] on one sharded runner (one shard per node, no
   cross-group edges), each group driven by a cohort of [cohort]
   logical users multiplexed over one LibFS.  Per-group output is
   buffered and printed in group order, so stdout is byte-identical at
   every domain count. *)
let run_rack ~nodes ~group_size ~cohort ~file_mb ~io_kb ~domains params =
  let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:nodes () in
  let rack = Rack.create ~sharding:(sh, 0) ~params ~nodes ~group_size () in
  let g = Rack.group_count rack in
  let group_bytes = file_mb * 1024 * 1024 / g in
  let collect =
    Workloads.Rack_cohort.spawn ~sh ~rack ~cohort ~group_bytes
      ~io_bytes:(io_kb * 1024) ()
  in
  Sharded.run ~domains sh;
  for i = 0 to Sharded.shard_count sh - 1 do
    Counters.merge (Sharded.engine sh i)
  done;
  Sharded.counters_record sh;
  let results = collect () in
  Array.iteri
    (fun grp r ->
      let s = r.Workloads.Rack_cohort.totals in
      Fmt.pr "group %d (dir %s): %d users, %d ops, %d MB written, %a@." grp
        r.Workloads.Rack_cohort.dir cohort s.Cohort.ops_issued
        (s.Cohort.bytes_written / 1024 / 1024)
        Time.pp r.Workloads.Rack_cohort.elapsed)
    results;
  let slowest =
    Array.fold_left
      (fun acc r -> max acc r.Workloads.Rack_cohort.elapsed)
      0 results
  in
  let written =
    Array.fold_left
      (fun acc r ->
        acc + r.Workloads.Rack_cohort.totals.Cohort.bytes_written)
      0 results
  in
  Fmt.pr "rack: %d nodes, %d groups of %d, %d MB total in %a: %.2f GB/s@."
    nodes g group_size
    (written / 1024 / 1024)
    Time.pp slowest
    (float_of_int written /. Time.to_sec_f slowest /. 1e9);
  Fmt.pr "sharded deployment: %d node shards, %d windows@."
    (Sharded.shard_count sh) (Sharded.windows_run sh);
  let s = Sharded.stats sh in
  Fmt.epr
    "sharded sync: windows=%d parallel=%d barrier-waits=%d fast-forward=%d \
     messages=%d batch-max=%d horizon-extended=%d@."
    s.Sharded.windows s.Sharded.parallel_windows s.Sharded.barrier_waits
    s.Sharded.fast_forwards s.Sharded.messages s.Sharded.batch_max
    s.Sharded.extended_horizons

(* Run [instances] identical copies of the benchmark, optionally spread
   over [domains].  Each instance's output is buffered and the buffers
   must agree byte-for-byte — a cheap end-to-end determinism smoke test
   riding along with every multi-instance run.  [instances = 1,
   domains = 1] keeps the historical single-engine path. *)
let run_bench system workload clients file_mb io_kb log_mb files duration_ms
    busy latency_mode instances domains shard_deployment nodes group_size
    cohort =
  let params =
    { Params.default with Params.log_bytes = log_mb * 1024 * 1024 }
  in
  if nodes > 0 then begin
    run_rack ~nodes ~group_size ~cohort ~file_mb ~io_kb ~domains params;
    match Counters.all () with
    | [] -> ()
    | counters ->
        Fmt.pr "events:@.";
        List.iter (fun (name, n) -> Fmt.pr "  %-24s %d@." name n) counters
  end
  else begin
  let body ?sys fmt () =
    let sys =
      match sys with Some s -> s | None -> make_system system busy params
    in
    workload_body fmt sys workload clients file_mb io_kb files duration_ms
      busy latency_mode ()
  in
  if shard_deployment then begin
    (* One deployment, one shard per node: host + SmartNIC plane of
       node i live on shard i; replication chunks, acks and lease
       records cross declared fabric-latency edges.  The workload and
       its clients run on the primary's shard.  Output must be
       byte-identical at every domain count. *)
    let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:3 () in
    let sys = make_system ~sharding:(sh, 0) system busy params in
    Sharded.spawn_root ~name:"bench" sh ~shard:0 (body ~sys Fmt.stdout);
    Sharded.run ~domains sh;
    for i = 0 to Sharded.shard_count sh - 1 do
      Counters.merge (Sharded.engine sh i)
    done;
    Sharded.counters_record sh;
    (* No domain count in this line: the output must stay byte-identical
       when only [--domains] changes. *)
    Fmt.pr "sharded deployment: %d node shards, %d windows@."
      (Sharded.shard_count sh) (Sharded.windows_run sh);
    (* Cross-shard sync detail goes to stderr: [parallel] and
       [barrier-waits] depend on the domain count and the machine, and
       stdout must stay byte-identical when only [--domains] changes. *)
    let s = Sharded.stats sh in
    Fmt.epr
      "sharded sync: windows=%d parallel=%d barrier-waits=%d \
       fast-forward=%d messages=%d batch-max=%d horizon-extended=%d@."
      s.Sharded.windows s.Sharded.parallel_windows s.Sharded.barrier_waits
      s.Sharded.fast_forwards s.Sharded.messages s.Sharded.batch_max
      s.Sharded.extended_horizons
  end
  else if instances <= 1 && domains <= 1 then begin
    let eng = Engine.create () in
    Engine.spawn_root eng (body Fmt.stdout);
    Engine.run eng;
    Counters.merge eng
  end
  else begin
    (* Every instance gets the seed [Engine.create ()] defaults to, so
       each must reproduce the single-instance run exactly. *)
    let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:instances () in
    let bufs = Array.init instances (fun _ -> Buffer.create 4096) in
    let fmts = Array.map Format.formatter_of_buffer bufs in
    for i = 0 to instances - 1 do
      Sharded.spawn_root sh ~shard:i (body fmts.(i))
    done;
    Sharded.run ~domains sh;
    for i = 0 to instances - 1 do
      Counters.merge (Sharded.engine sh i)
    done;
    Array.iter (fun f -> Format.pp_print_flush f ()) fmts;
    let first = Buffer.contents bufs.(0) in
    print_string first;
    Array.iteri
      (fun i b ->
        if Buffer.contents b <> first then begin
          Fmt.epr "instance %d diverged from instance 0:@.%s@."
            i (Buffer.contents b);
          exit 1
        end)
      bufs;
    Fmt.pr "%d instance(s) over %d domain(s): outputs identical@." instances
      domains
  end;
  (* Robustness event counters (retransmits, dedup hits, NACKed
     frames, scrub actions...) — all zero, and therefore silent, on a
     fault-free run; aggregated over all instances. *)
  (match Counters.all () with
  | [] -> ()
  | counters ->
      Fmt.pr "events:@.";
      List.iter (fun (name, n) -> Fmt.pr "  %-24s %d@." name n) counters)
  end

let cmd =
  let system =
    Arg.(
      value
      & opt system_conv Linefs
      & info [ "system"; "s" ] ~doc:"DFS to run: $(docv)."
          ~docv:"linefs|linefs-np|assise|assise-bg|hyperloop")
  in
  let clients =
    Arg.(value & opt int 1 & info [ "clients"; "c" ] ~doc:"Concurrent clients.")
  in
  let file_mb =
    Arg.(value & opt int 64 & info [ "file-mb" ] ~doc:"Total MB to write.")
  in
  let io_kb = Arg.(value & opt int 16 & info [ "io-kb" ] ~doc:"IO size in KB.") in
  let log_mb =
    Arg.(value & opt int 32 & info [ "log-mb" ] ~doc:"Client log size in MB.")
  in
  let workload =
    Arg.(
      value
      & opt workload_conv Seq_write
      & info [ "workload"; "w" ]
          ~doc:"Workload to drive: $(docv)." ~docv:"seq|metastorm")
  in
  let files =
    Arg.(
      value & opt int 2000
      & info [ "files" ] ~doc:"Metastorm working-set size (files).")
  in
  let duration_ms =
    Arg.(
      value & opt int 500
      & info [ "duration-ms" ] ~doc:"Metastorm run duration (simulated ms).")
  in
  let busy =
    Arg.(value & flag & info [ "busy" ] ~doc:"Run streamcluster on replicas.")
  in
  let latency =
    Arg.(
      value & flag
      & info [ "latency" ] ~doc:"Measure per-op write+fsync latency instead.")
  in
  let instances =
    Arg.(
      value & opt int 1
      & info [ "instances" ]
          ~doc:
            "Run $(docv) identical copies of the benchmark as shards; their \
             outputs must match byte-for-byte."
          ~docv:"M")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:"Spread instances (or deployment node shards) over $(docv) OS \
                domains." ~docv:"N")
  in
  let shard_deployment =
    Arg.(
      value & flag
      & info [ "shard-deployment" ]
          ~doc:
            "Partition the single deployment per node across Sim.Sharded \
             shards (one shard per node, fabric-latency edges between them) \
             and run them over --domains domains. Output is byte-identical \
             at every domain count.")
  in
  let nodes =
    Arg.(
      value & opt int 0
      & info [ "nodes" ]
          ~doc:
            "Rack-scale run: $(docv) nodes as independent replica groups of \
             --group-size on a sharded runner (one shard per node), each \
             group driven by a --cohort of users. 0 disables."
          ~docv:"N")
  in
  let group_size =
    Arg.(
      value & opt int 3
      & info [ "group-size" ] ~doc:"Nodes per replica group (rack runs).")
  in
  let cohort =
    Arg.(
      value & opt int 1
      & info [ "cohort" ]
          ~doc:"Logical users per group, multiplexed over one LibFS.")
  in
  Cmd.v
    (Cmd.info "linefs_sim" ~doc:"LineFS simulation workbench")
    Term.(
      const run_bench $ system $ workload $ clients $ file_mb $ io_kb $ log_mb
      $ files $ duration_ms $ busy $ latency $ instances $ domains
      $ shard_deployment $ nodes $ group_size $ cohort)

let () =
  (* Wall clock for the sharded runner's inline-vs-parallel policy
     (scheduling only — simulation results never depend on it). *)
  Sharded.set_clock Unix.gettimeofday;
  exit (Cmd.eval cmd)
