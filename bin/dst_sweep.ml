(* CI gate: reduced deterministic-simulation sweep.

   Runs a slice of the seeded random-scenario sweep plus the explicit
   failover scenarios (primary NIC crash with host fallback, crash
   during fail-back, permanent replica death with chain
   reconfiguration, double failure), then re-runs one spec from each
   family to assert fingerprint determinism.  Exits nonzero on any
   invariant violation, wedge, or determinism mismatch.

   Usage: dst_sweep [generated-seed-count]  (default 12) *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let check_spec ~what spec =
  let r = Fault.Dst.run_spec spec in
  let o = r.Fault.Dst.outcome in
  if Fault.Scenario.failed o then
    fail "%s: %s" what (Format.asprintf "%a" Fault.Scenario.pp_outcome o)
  else Printf.printf "ok   %s\n%!" what

let check_deterministic ~what spec =
  let fp () = Fault.Dst.fingerprint (Fault.Dst.run_spec spec).Fault.Dst.outcome in
  let f1 = fp () in
  let f2 = fp () in
  if f1 <> f2 then
    fail "%s: fingerprint mismatch:\n  %s\n  %s" what f1 f2
  else Printf.printf "ok   %s (deterministic)\n%!" what

let () =
  let nseeds =
    match Array.to_list Sys.argv with
    | _ :: n :: _ -> int_of_string n
    | _ -> 12
  in
  for seed = 1 to nseeds do
    check_spec
      ~what:(Printf.sprintf "generated seed %d" seed)
      (Fault.Scenario.generate ~seed)
  done;
  let failovers =
    [
      ("failover-primary-crash", Fault.Scenario.failover_primary_crash);
      ( "failover-crash-during-failback",
        Fault.Scenario.failover_crash_during_failback );
      ("failover-replica-death", Fault.Scenario.failover_replica_death);
      ("failover-double-failure", Fault.Scenario.failover_double_failure);
    ]
  in
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun seed ->
          check_spec ~what:(Printf.sprintf "%s seed %d" name seed) (mk ~seed))
        [ 1; 2; 3 ])
    failovers;
  check_deterministic ~what:"generated seed 1"
    (Fault.Scenario.generate ~seed:1);
  check_deterministic ~what:"failover-primary-crash seed 1"
    (Fault.Scenario.failover_primary_crash ~seed:1);
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "dst sweep clean"
