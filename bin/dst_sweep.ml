(* CI gate: reduced deterministic-simulation sweep.

   Runs a slice of the seeded random-scenario sweep plus the explicit
   failover scenarios (primary NIC crash with host fallback, crash
   during fail-back, permanent replica death with chain
   reconfiguration, double failure), then re-runs one spec from each
   family to assert fingerprint determinism.  Exits nonzero on any
   invariant violation, wedge, or determinism mismatch.

   Usage:
     dst_sweep [generated-seed-count]        sweep (default 12 seeds)
     dst_sweep --adversary N                 Byzantine-fabric sweep (N seeds)
     dst_sweep --print-fingerprints          print pinned-scenario fingerprints
     dst_sweep --check-fingerprints FILE     compare against a committed file
     dst_sweep --domains N ...               run sweep scenarios N at a time

   [--domains N] runs the sweep scenarios as edge-less shards of one
   Sim.Sharded batch, up to N in parallel (Scenario.run_batch).  The
   scenarios are independent, so every outcome is identical to a
   sequential run at any N — asserted here by cross-checking one batch
   fingerprint against a sequential re-run.

   The adversary sweep draws plans only from duplication, reordering,
   corruption and storage faults at aggressive probabilities — the
   profile that exercises idempotent RPC, end-to-end integrity
   trailers and the recovery scrub — and re-checks one seed for
   fingerprint determinism.

   The fingerprint modes pin a fixed set of scenarios so that pure
   wall-clock optimisations of the data plane can be verified not to
   drift virtual-time behaviour: the expected file is committed and CI
   re-checks it on every change. *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let domains = ref 1

let check_outcome ~what o =
  if Fault.Scenario.failed o then
    fail "%s: %s" what (Format.asprintf "%a" Fault.Scenario.pp_outcome o)
  else Printf.printf "ok   %s\n%!" what

(* Run a named spec list as one sharded batch ([--domains] wide) and
   check every outcome. *)
let check_batch named =
  let outcomes =
    Fault.Scenario.run_batch ~domains:!domains (List.map snd named)
  in
  List.iter2 (fun (what, _) o -> check_outcome ~what o) named outcomes;
  outcomes

let check_deterministic ~what spec =
  let fp () = Fault.Dst.fingerprint (Fault.Dst.run_spec spec).Fault.Dst.outcome in
  let f1 = fp () in
  let f2 = fp () in
  if f1 <> f2 then
    fail "%s: fingerprint mismatch:\n  %s\n  %s" what f1 f2
  else Printf.printf "ok   %s (deterministic)\n%!" what

(* Fixed scenarios whose fingerprints are pinned in
   test/dst_fingerprints.expected. *)
let pinned () =
  List.concat
    [
      List.map
        (fun seed ->
          (Printf.sprintf "generated-%d" seed, Fault.Scenario.generate ~seed))
        [ 1; 2; 3; 4; 5 ];
      List.map
        (fun seed ->
          ( Printf.sprintf "adversary-%d" seed,
            Fault.Scenario.generate_adversary ~seed ))
        [ 1; 2 ];
      [
        ("failover-primary-crash-1", Fault.Scenario.failover_primary_crash ~seed:1);
        ( "failover-crash-during-failback-1",
          Fault.Scenario.failover_crash_during_failback ~seed:1 );
        ("failover-replica-death-1", Fault.Scenario.failover_replica_death ~seed:1);
        ("failover-double-failure-1", Fault.Scenario.failover_double_failure ~seed:1);
      ];
    ]

let fingerprint_lines () =
  List.map
    (fun (name, spec) ->
      let r = Fault.Dst.run_spec spec in
      Printf.sprintf "%s %s" name
        (Fault.Dst.fingerprint r.Fault.Dst.outcome))
    (pinned ())

let print_fingerprints () =
  List.iter print_endline (fingerprint_lines ());
  exit 0

let check_fingerprints file =
  let ic = open_in file in
  let expected = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then expected := line :: !expected
     done
   with End_of_file -> close_in ic);
  let expected = List.rev !expected in
  let actual = fingerprint_lines () in
  let bad = ref 0 in
  let rec cmp e a =
    match (e, a) with
    | [], [] -> ()
    | e :: es, a :: as_ ->
        if e <> a then begin
          incr bad;
          Printf.printf "MISMATCH\n  expected: %s\n  actual:   %s\n%!" e a
        end
        else Printf.printf "ok   %s\n%!" a;
        cmp es as_
    | _ ->
        incr bad;
        Printf.printf "MISMATCH: expected %d fingerprints, got %d\n%!"
          (List.length expected) (List.length actual)
  in
  cmp expected actual;
  if !bad > 0 then begin
    Printf.printf "%d fingerprint mismatch(es) — virtual-time drift!\n%!" !bad;
    exit 1
  end;
  print_endline "fingerprints match";
  exit 0

let adversary_sweep n =
  let named =
    List.init n (fun i ->
        let seed = i + 1 in
        ( Printf.sprintf "adversary seed %d" seed,
          Fault.Scenario.generate_adversary ~seed ))
  in
  ignore (check_batch named : Fault.Scenario.outcome list);
  check_deterministic ~what:"adversary seed 1"
    (Fault.Scenario.generate_adversary ~seed:1);
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "adversary sweep clean";
  exit 0

let () =
  let rec strip_domains = function
    | "--domains" :: n :: rest ->
        domains := int_of_string n;
        strip_domains rest
    | x :: rest -> x :: strip_domains rest
    | [] -> []
  in
  let args =
    match Array.to_list Sys.argv with
    | a0 :: rest -> a0 :: strip_domains rest
    | [] -> []
  in
  (match args with
  | _ :: "--print-fingerprints" :: _ -> print_fingerprints ()
  | _ :: "--check-fingerprints" :: file :: _ -> check_fingerprints file
  | _ :: "--adversary" :: n :: _ -> adversary_sweep (int_of_string n)
  | _ -> ());
  let nseeds = match args with _ :: n :: _ -> int_of_string n | _ -> 12 in
  let generated =
    List.init nseeds (fun i ->
        let seed = i + 1 in
        (Printf.sprintf "generated seed %d" seed, Fault.Scenario.generate ~seed))
  in
  let gen_outcomes = check_batch generated in
  let failovers =
    [
      ("failover-primary-crash", Fault.Scenario.failover_primary_crash);
      ( "failover-crash-during-failback",
        Fault.Scenario.failover_crash_during_failback );
      ("failover-replica-death", Fault.Scenario.failover_replica_death);
      ("failover-double-failure", Fault.Scenario.failover_double_failure);
    ]
  in
  ignore
    (check_batch
       (List.concat_map
          (fun (name, mk) ->
            List.map
              (fun seed -> (Printf.sprintf "%s seed %d" name seed, mk ~seed))
              [ 1; 2; 3 ])
          failovers)
      : Fault.Scenario.outcome list);
  (* The batched run must reproduce the sequential fingerprint exactly:
     the shards share no edges, so sharding may not perturb a single
     scenario's virtual time. *)
  (match (generated, gen_outcomes) with
  | (what, spec) :: _, o :: _ ->
      let seq =
        Fault.Dst.fingerprint (Fault.Dst.run_spec spec).Fault.Dst.outcome
      in
      let batched = Fault.Dst.fingerprint o in
      if seq <> batched then
        fail "%s: batched fingerprint diverges from sequential:\n  seq:   %s\n  batch: %s"
          what seq batched
      else Printf.printf "ok   %s (batch matches sequential)\n%!" what
  | _ -> ());
  check_deterministic ~what:"generated seed 1"
    (Fault.Scenario.generate ~seed:1);
  check_deterministic ~what:"failover-primary-crash seed 1"
    (Fault.Scenario.failover_primary_crash ~seed:1);
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "dst sweep clean"
