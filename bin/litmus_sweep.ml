(* CI gate: conformance + crash-consistency litmus sweep.

   Two families per run:

   - differential: seeded random op traces executed against every
     backend (LineFS, Assise, Ceph-like) in lockstep with the model
     oracle — error codes, read results and final observable state
     must all agree;
   - litmus: seeded trace + fault plan over a LineFS cluster (NIC
     crash, node death, partition...), then recovery and the full
     invariant set (prefix crash consistency, single-writer,
     convergence, model-final/model-prefix digests).

   On failure the offending trace is shrunk to a minimal reproducer,
   printed, and (with --out DIR) written to a report file for CI
   artifact upload.  Exits nonzero on any failure.

   Usage:
     litmus_sweep [--differ-seeds N] [--litmus-seeds N]
                  [--backends a,b,c] [--out DIR]
     litmus_sweep --mutate [--out DIR]

   --mutate is the framework self-test: it seeds a known model bug
   (rename-no-overwrite) and a known recovery bug (a dropped oplog
   entry) and demands both are caught and shrunk — a harness that
   cannot catch a planted bug proves nothing. *)

let failures = ref 0
let out_dir = ref None

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let write_report ~name contents =
  match !out_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let file = Filename.concat dir (name ^ ".txt") in
      let oc = open_out file in
      output_string oc contents;
      close_out oc;
      Printf.printf "     report: %s\n%!" file

let differ_trace ~seed = Conformance.Opgen.generate ~ops:60 ~seed ()

let differ_check ~backends ~seed =
  let trace = differ_trace ~seed in
  List.iter
    (fun b ->
      let name = Conformance.Backends.name b in
      let what = Printf.sprintf "differ seed %d %s" seed name in
      let r = Conformance.Differ.check_backend b trace in
      if Conformance.Differ.report_failed r then begin
        fail "%s:\n%s" what (Format.asprintf "%a" Conformance.Differ.pp_report r);
        let shrunk, runs = Conformance.Differ.minimize b trace in
        let contents =
          Format.asprintf "%s\n\nshrunk (%d candidate runs):\n%a\n\n%a\n" what
            runs Conformance.Opgen.pp shrunk Conformance.Differ.pp_report
            (Conformance.Differ.check_backend b shrunk)
        in
        Printf.printf "     shrunk to %d ops (%d runs)\n%!"
          (List.length shrunk.Conformance.Opgen.ops)
          runs;
        write_report ~name:(Printf.sprintf "differ-seed%d-%s" seed name)
          contents
      end
      else Printf.printf "ok   %s\n%!" what)
    backends

let litmus_check ~seed =
  let what = Printf.sprintf "litmus seed %d" seed in
  let spec = Conformance.Litmus.generate ~seed in
  let o = Conformance.Litmus.run spec in
  if Conformance.Litmus.failed o then begin
    fail "%s: %s" what (Format.asprintf "%a" Conformance.Litmus.pp_outcome o);
    let shrunk, runs = Conformance.Litmus.minimize spec in
    let contents =
      Format.asprintf "%s\nspec: %a\n\nshrunk (%d candidate runs):\n%a\n\n%a\n"
        what Conformance.Litmus.pp_spec spec runs Conformance.Opgen.pp
        shrunk.Conformance.Litmus.trace Conformance.Litmus.pp_outcome
        (Conformance.Litmus.run shrunk)
    in
    Printf.printf "     shrunk to %d ops (%d runs)\n%!"
      (List.length shrunk.Conformance.Litmus.trace.Conformance.Opgen.ops)
      runs;
    write_report ~name:(Printf.sprintf "litmus-seed%d" seed) contents
  end
  else Printf.printf "ok   %s\n%!" what

(* --mutate: the harness must catch (and shrink) bugs we plant. *)

let mutation_differ () =
  (* A generated trace with a guaranteed rename-onto-existing tail; the
     planted model bug reports Eexist where POSIX overwrites. *)
  let trace =
    let t = differ_trace ~seed:1 in
    {
      t with
      Conformance.Opgen.ops =
        t.Conformance.Opgen.ops
        @ [
            Conformance.Opgen.Create { h = 1000; path = "/mut_src" };
            Conformance.Opgen.Create { h = 1001; path = "/mut_dst" };
            Conformance.Opgen.Rename { src = "/mut_src"; dst = "/mut_dst" };
          ];
    }
  in
  let bug = Conformance.Model.Rename_no_overwrite in
  let r = Conformance.Differ.check_backend ~bug Conformance.Backends.Linefs trace in
  if not (Conformance.Differ.report_failed r) then
    fail "mutation differ: planted rename-no-overwrite bug was NOT caught"
  else begin
    let shrunk, runs =
      Conformance.Differ.minimize ~bug Conformance.Backends.Linefs trace
    in
    let n = List.length shrunk.Conformance.Opgen.ops in
    Printf.printf "ok   mutation differ: caught, shrunk %d -> %d ops (%d runs)\n%!"
      (List.length trace.Conformance.Opgen.ops)
      n runs;
    write_report ~name:"mutation-differ"
      (Format.asprintf "planted bug: rename-no-overwrite\n%a\n"
         Conformance.Opgen.pp shrunk);
    (* The minimal reproducer is create+create+rename (3 ops); allow a
       little slack but fail if shrinking regressed badly. *)
    if n > 5 then
      fail "mutation differ: shrunk trace has %d ops, expected <= 5" n
  end

let run_mutation ~what ~mutate ~want spec =
  let o = Conformance.Litmus.run ~mutate spec in
  let caught =
    List.exists
      (fun (v : Fault.Invariant.violation) -> List.mem v.name want)
      o.Conformance.Litmus.violations
  in
  if not caught then
    fail "%s: planted bug was NOT caught (wanted one of: %s; got: %s)" what
      (String.concat ", " want)
      (Format.asprintf "%a" Conformance.Litmus.pp_outcome o)
  else begin
    let shrunk, runs = Conformance.Litmus.minimize ~mutate spec in
    Printf.printf "ok   %s: caught, shrunk %d -> %d ops (%d runs)\n%!" what
      (List.length spec.Conformance.Litmus.trace.Conformance.Opgen.ops)
      (List.length shrunk.Conformance.Litmus.trace.Conformance.Opgen.ops)
      runs;
    write_report ~name:what
      (Format.asprintf "planted bug: %s\n%a\n" what Conformance.Opgen.pp
         shrunk.Conformance.Litmus.trace)
  end

(* Disabling the dedup layers (RPC reply cache + publication gate)
   under an aggressive duplication fault must surface as a dup-apply
   (or knock-on divergence) violation — proof the caches are
   load-bearing, not dead code. *)
let mutation_no_dedup () =
  run_mutation ~what:"mutation-no-dedup" ~mutate:Conformance.Litmus.No_dedup
    ~want:[ "dup-apply"; "divergence"; "model-final" ]
    (Conformance.Litmus.adversary_dup_spec ~seed:1)

(* Disabling the torn-record re-fetch must wedge the damaged replica's
   publication gate and be flagged as divergence. *)
let mutation_no_scrub () =
  run_mutation ~what:"mutation-no-scrub" ~mutate:Conformance.Litmus.No_scrub
    ~want:[ "divergence" ]
    (Conformance.Litmus.adversary_torn_spec ~seed:1)

let mutation_litmus () =
  let spec = Conformance.Litmus.generate ~seed:1 in
  let o = Conformance.Litmus.run ~mutate:Conformance.Litmus.Drop_entry spec in
  let caught =
    List.exists
      (fun v -> v.Fault.Invariant.name = "log-gap")
      o.Conformance.Litmus.violations
  in
  if not caught then
    fail "mutation litmus: planted dropped-entry bug was NOT caught"
  else begin
    let shrunk, runs =
      Conformance.Litmus.minimize ~mutate:Conformance.Litmus.Drop_entry spec
    in
    let n = List.length shrunk.Conformance.Litmus.trace.Conformance.Opgen.ops in
    Printf.printf "ok   mutation litmus: caught, shrunk %d -> %d ops (%d runs)\n%!"
      (List.length spec.Conformance.Litmus.trace.Conformance.Opgen.ops)
      n runs;
    write_report ~name:"mutation-litmus"
      (Format.asprintf "planted bug: dropped oplog entry\n%a\n"
         Conformance.Opgen.pp shrunk.Conformance.Litmus.trace)
  end

let () =
  let differ_seeds = ref 50 in
  let litmus_seeds = ref 50 in
  let backends = ref Conformance.Backends.all in
  let mutate = ref false in
  let rec parse = function
    | [] -> ()
    | "--differ-seeds" :: n :: rest ->
        differ_seeds := int_of_string n;
        parse rest
    | "--litmus-seeds" :: n :: rest ->
        litmus_seeds := int_of_string n;
        parse rest
    | "--backends" :: bs :: rest ->
        backends :=
          List.map
            (fun s ->
              match Conformance.Backends.of_string s with
              | Some b -> b
              | None -> failwith ("unknown backend: " ^ s))
            (String.split_on_char ',' bs);
        parse rest
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        parse rest
    | "--mutate" :: rest ->
        mutate := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !mutate then begin
    mutation_differ ();
    mutation_litmus ();
    mutation_no_dedup ();
    mutation_no_scrub ()
  end
  else begin
    for seed = 1 to !differ_seeds do
      differ_check ~backends:!backends ~seed
    done;
    for seed = 1 to !litmus_seeds do
      litmus_check ~seed
    done
  end;
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "litmus sweep clean"
