(* Figure 9: network bandwidth consumption of Assise and LineFS while
   running Tencent Sort, with input sets of varying compressibility.
   iperf runs in the background to stress the network. We report sort
   runtime, bytes the primary shipped for replication, and the savings
   relative to Assise; plus a bandwidth-over-time series for LineFS. *)

open Sim
open Common

let records () = if !current_scale == Common.full then 10_000_000 else 400_000

(* Body of one (system, compressibility) run — its own engine, so the
   four runs are independent and batch across domains. *)
let run_one ~system ~zero_ratio ~with_ts () =
  let sys =
    match system with
    | `Assise -> make_system Sys_assise
    | `Linefs -> make_system ~compression:true Sys_linefs
  in
  let ts =
    if with_ts then begin
      let ts = Stats.Timeseries.create ~bucket:(Time.ms 100) in
      Hw.Bandwidth.on_transfer
        (Hw.Netlink.egress (sys.node_of 0).Hw.Node.port)
        (fun ~at ~bytes -> Stats.Timeseries.add ts ~at (float_of_int bytes));
      Some ts
    end
    else None
  in
  let ops = sys.client 1 in
  (* Background traffic contending for bandwidth. *)
  let ip = Workloads.Iperf.start ~src:(sys.node_of 1) ~dst:(sys.node_of 2) () in
  let r =
    Workloads.Tencent_sort.run ~ops ~node:(sys.node_of 0) ~records:(records ())
      ~zero_ratio ~seed:13 ()
  in
  sys.flush ();
  Workloads.Iperf.stop ip;
  let wire = sys.wire_bytes () in
  sys.teardown ();
  (Time.to_sec_f r.Workloads.Tencent_sort.elapsed, wire, ts)

let run () =
  heading "Figure 9: Tencent Sort with data-path compression";
  Printf.printf "records: %d (100 B each), iperf in background\n" (records ());
  let ratios = [ 0.4; 0.6; 0.8 ] in
  let results =
    in_sims
      (run_one ~system:`Assise ~zero_ratio:0.6 ~with_ts:false
      :: List.map
           (fun ratio ->
             run_one ~system:`Linefs ~zero_ratio:ratio ~with_ts:(ratio = 0.8))
           ratios)
  in
  let (assise_t, assise_wire, _), linefs_results =
    match results with a :: rest -> (a, rest) | [] -> assert false
  in
  let rows = ref [] in
  let ts80 = ref None in
  List.iter2
    (fun ratio (t, wire, ts) ->
      if ratio = 0.8 then ts80 := ts;
      let saved =
        (float_of_int assise_wire -. float_of_int wire)
        /. float_of_int assise_wire *. 100.0
      in
      rows :=
        [
          Printf.sprintf "LineFS-%.0f%%" (ratio *. 100.0);
          f2 t;
          Printf.sprintf "%.1f MB" (float_of_int wire /. 1e6);
          Printf.sprintf "%.0f%%" saved;
        ]
        :: !rows)
    ratios linefs_results;
  print_table
    ~header:[ "system"; "sort time (s)"; "replication bytes"; "net saved" ]
    ~rows:
      ([
         "Assise";
         f2 assise_t;
         Printf.sprintf "%.1f MB" (float_of_int assise_wire /. 1e6);
         "0%";
       ]
      :: List.rev !rows);
  match !ts80 with
  | Some ts ->
      subheading "LineFS-80% primary egress bandwidth over time";
      List.iter
        (fun (sec, rate) -> Printf.printf "  t=%5.1fs  %6.2f GB/s\n" sec (rate /. 1e9))
        (Stats.Timeseries.rate_per_sec ts)
  | None -> ()
