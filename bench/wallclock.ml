(* Wall-clock perf-trajectory harness.

   Where bench/main.exe reports *virtual-time* results (what the
   simulated testbed measures), this executable reports *real* wall
   time: how fast the harness itself chews through the data plane.  It
   pits the current implementations against verbatim copies of their
   pre-rewrite counterparts (boxed-Int32 CRC, materializing concat,
   per-call-Hashtbl LZW, boxed event heap) so the speedup from the
   zero-copy rewrite is measured, not asserted, and writes the results
   as JSON for CI to archive and compare over time.

   Usage:
     dune exec bench/wallclock.exe                      # kernels + scaled experiments
     dune exec bench/wallclock.exe -- --smoke           # kernels only, small sizes
     dune exec bench/wallclock.exe -- --full            # kernels + paper-scale experiments
     dune exec bench/wallclock.exe -- -o FILE           # output path (default BENCH_wallclock.json) *)

(* ------------------------------------------------------------------ *)
(* Legacy reference implementations (pre-rewrite, kept verbatim)       *)
(* ------------------------------------------------------------------ *)

(* The old [Data.to_bytes]: synthetic content was generated one byte at
   a time ([synth_byte] recomputed the word per byte).  The legacy CRC
   and concat paths below materialize through this, exactly as the
   pre-rewrite code did. *)
let legacy_to_bytes d =
  let n = Storage.Data.length d in
  let out = Bytes.create n in
  let pos = ref 0 in
  Storage.Data.iter_slices d (fun s ->
      match s with
      | Storage.Data.Sreal r ->
          Bytes.blit r.buf r.pos out !pos r.len;
          pos := !pos + r.len
      | Storage.Data.Ssynth sy ->
          for i = 0 to sy.len - 1 do
            let p = sy.off + i in
            let w = Storage.Data.synth_word sy.seed (p / 8) in
            Bytes.unsafe_set out (!pos + i)
              (Char.chr
                 (Int64.to_int (Int64.shift_right_logical w (8 * (p mod 8)))
                 land 0xFF))
          done;
          pos := !pos + sy.len
      | Storage.Data.Szero z ->
          Bytes.fill out !pos z.len '\000';
          pos := !pos + z.len)
  ;
  out

module Legacy_crc = struct
  (* Int32-register table loop: every iteration allocates boxed Int32s. *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let update crc buf ~pos ~len =
    let table = Lazy.force table in
    let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
    for i = pos to pos + len - 1 do
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get buf i))))
             0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
    done;
    Int32.logxor !c 0xFFFFFFFFl

  (* The old [Crc32.data]: walk in 8 KB chunks, materializing each. *)
  let data d =
    let n = Storage.Data.length d in
    let chunk = 8192 in
    let rec go crc pos =
      if pos >= n then crc
      else begin
        let len = min chunk (n - pos) in
        let b = legacy_to_bytes (Storage.Data.sub d ~pos ~len) in
        go (update crc b ~pos:0 ~len) (pos + len)
      end
    in
    go 0l 0
end

module Legacy_concat = struct
  (* The old [Data.concat] on mixed parts: materialize everything into
     one flat buffer. *)
  let concat parts =
    let parts = List.filter (fun p -> Storage.Data.length p > 0) parts in
    let total = List.fold_left (fun n p -> n + Storage.Data.length p) 0 parts in
    let out = Bytes.create total in
    let off = ref 0 in
    List.iter
      (fun p ->
        Bytes.blit (legacy_to_bytes p) 0 out !off (Storage.Data.length p);
        off := !off + Storage.Data.length p)
      parts;
    Storage.Data.real out
end

module Legacy_lzw = struct
  (* Per-call Hashtbl dictionary, Buffer-based bit packing. *)
  let max_code = 4096
  let first_free = 256

  module Bitwriter = struct
    type t = { buf : Buffer.t; mutable acc : int; mutable bits : int }

    let create () = { buf = Buffer.create 1024; acc = 0; bits = 0 }

    let put t code =
      t.acc <- t.acc lor (code lsl t.bits);
      t.bits <- t.bits + 12;
      while t.bits >= 8 do
        Buffer.add_uint8 t.buf (t.acc land 0xFF);
        t.acc <- t.acc lsr 8;
        t.bits <- t.bits - 8
      done

    let finish t =
      if t.bits > 0 then Buffer.add_uint8 t.buf (t.acc land 0xFF);
      Buffer.to_bytes t.buf
  end

  let encode input =
    let n = Bytes.length input in
    let out = Bitwriter.create () in
    let header = Bytes.create 8 in
    Bytes.set_int64_le header 0 (Int64.of_int n);
    if n = 0 then Bytes.cat header (Bitwriter.finish out)
    else begin
      let dict = Hashtbl.create 4096 in
      let next = ref first_free in
      let w = ref (Char.code (Bytes.get input 0)) in
      for i = 1 to n - 1 do
        let c = Char.code (Bytes.get input i) in
        let key = (!w lsl 8) lor c in
        match Hashtbl.find_opt dict key with
        | Some code -> w := code
        | None ->
            Bitwriter.put out !w;
            if !next < max_code then begin
              Hashtbl.add dict key !next;
              incr next
            end;
            w := c
      done;
      Bitwriter.put out !w;
      Bytes.cat header (Bitwriter.finish out)
    end
end

module Legacy_heap = struct
  (* Boxed entry records, allocated on every push. *)
  type 'a entry = { key : int; seq : int; value : 'a }
  type 'a t = { mutable arr : 'a entry array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let is_empty h = h.len = 0
  let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

  let grow h entry =
    let cap = Array.length h.arr in
    if h.len = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let narr = Array.make ncap entry in
      Array.blit h.arr 0 narr 0 h.len;
      h.arr <- narr
    end

  let push h ~key ~seq value =
    let e = { key; seq; value } in
    grow h e;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less e h.arr.(parent) then begin
        h.arr.(!i) <- h.arr.(parent);
        h.arr.(parent) <- e;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        let last = h.arr.(h.len) in
        h.arr.(0) <- last;
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
          if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = h.arr.(!i) in
            h.arr.(!i) <- h.arr.(!smallest);
            h.arr.(!smallest) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some (top.key, top.seq, top.value)
    end
end

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type kernel_result = {
  k_name : string;
  k_bytes : int; (* payload bytes processed per iteration; 0 = n/a *)
  new_s : float;
  legacy_s : float;
}

let speedup r = r.legacy_s /. r.new_s

(* Repeat [f] until it has consumed at least [min_time] seconds, then
   report seconds per iteration. *)
let time_fn ~min_time f =
  f (); (* warm-up: table/dict lazies, first allocation *)
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr iters;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !iters

let run_kernel ~min_time ~name ~bytes ~new_fn ~legacy_fn =
  let new_s = time_fn ~min_time new_fn in
  let legacy_s = time_fn ~min_time legacy_fn in
  let r = { k_name = name; k_bytes = bytes; new_s; legacy_s } in
  Printf.printf "  %-28s new %10.1f us   legacy %10.1f us   speedup %6.2fx\n%!"
    name (new_s *. 1e6) (legacy_s *. 1e6) (speedup r);
  r

(* The payload shape the replication pipeline actually concatenates: a
   mix of real, synthetic and zero pieces. *)
let mixed_pieces ~piece ~count =
  List.init count (fun i ->
      match i mod 3 with
      | 0 ->
          let b = Bytes.create piece in
          for j = 0 to piece - 1 do
            Bytes.unsafe_set b j (Char.unsafe_chr ((i + (j * 7)) land 0xFF))
          done;
          Storage.Data.real b
      | 1 -> Storage.Data.synthetic ~seed:(i + 1) ~len:piece
      | _ -> Storage.Data.zero ~len:piece)

let run_kernels ~smoke =
  Printf.printf "\n== data-path kernels (wall clock) ==\n%!";
  let min_time = if smoke then 0.1 else 0.4 in
  let piece = 16384 in
  let count = if smoke then 16 else 256 in
  let total = piece * count in
  let pieces = mixed_pieces ~piece ~count in
  let rope = Storage.Data.concat pieces in
  let sink = ref 0l in
  let concat_k =
    (* concat + one full traversal (blit into a reusable buffer) vs the
       old materializing concat, whose allocation+copy IS the traversal. *)
    let dst = Bytes.create total in
    run_kernel ~min_time ~name:"data.concat+traverse" ~bytes:total
      ~new_fn:(fun () ->
        let d = Storage.Data.concat pieces in
        Storage.Data.blit_to d ~src_pos:0 ~dst ~dst_pos:0
          ~len:(Storage.Data.length d))
      ~legacy_fn:(fun () -> ignore (Legacy_concat.concat pieces : Storage.Data.t))
  in
  let crc_k =
    run_kernel ~min_time ~name:"crc32.data" ~bytes:total
      ~new_fn:(fun () -> sink := Storage.Crc32.data rope)
      ~legacy_fn:(fun () -> sink := Legacy_crc.data rope)
  in
  let lzw_total = if smoke then 65536 else 1048576 in
  let lzw_k =
    (* What nicfs.compress_work does now (stream + count) vs what it
       did (materialize the rope, then Hashtbl-encode it). *)
    let lzw_rope =
      let rng = Sim.Rng.create 7 in
      Storage.Data.concat
        (List.init (lzw_total / 65536) (fun i ->
             if i mod 4 = 3 then Storage.Data.zero ~len:65536
             else
               Storage.Data.fill_ratio
                 (Storage.Data.zero ~len:65536)
                 ~zeros:0.6 ~rng))
    in
    run_kernel ~min_time ~name:"lzw.chunk-wire-size" ~bytes:lzw_total
      ~new_fn:(fun () ->
        ignore (Compress.Lzw.encoded_length_data lzw_rope : int))
      ~legacy_fn:(fun () ->
        ignore (Legacy_lzw.encode (legacy_to_bytes lzw_rope) : Bytes.t))
  in
  let heap_n = if smoke then 10_000 else 100_000 in
  let heap_k =
    run_kernel ~min_time ~name:"heap.push+pop" ~bytes:0
      ~new_fn:(fun () ->
        let h = Sim.Heap.create () in
        for i = 0 to heap_n - 1 do
          Sim.Heap.push h ~key:(i * 7919 mod heap_n) ~seq:i i
        done;
        while not (Sim.Heap.is_empty h) do
          ignore (Sim.Heap.pop h : (int * int * int) option)
        done)
      ~legacy_fn:(fun () ->
        let h = Legacy_heap.create () in
        for i = 0 to heap_n - 1 do
          Legacy_heap.push h ~key:(i * 7919 mod heap_n) ~seq:i i
        done;
        while not (Legacy_heap.is_empty h) do
          ignore (Legacy_heap.pop h : (int * int * int) option)
        done)
  in
  ignore !sink;
  let ks = [ concat_k; crc_k; lzw_k; heap_k ] in
  let data_path = [ concat_k; crc_k; lzw_k ] in
  let geomean =
    exp
      (List.fold_left (fun acc k -> acc +. log (speedup k)) 0.0 data_path
      /. float_of_int (List.length data_path))
  in
  Printf.printf "  data-path geometric-mean speedup: %.2fx\n%!" geomean;
  (ks, geomean)

(* ------------------------------------------------------------------ *)
(* Experiment wall-clock runs                                          *)
(* ------------------------------------------------------------------ *)

type exp_result = {
  e_name : string;
  e_scale : string;
  e_domains : int;
  wall_s : float;
  events : int;
  minor_words : float;
  major_words : float;
  major_collections : int;
  (* events/s measured at each probed domain count (at least domains=1;
     scaled experiments also probe 4 and 8). *)
  mutable eps_by_domains : (int * float) list;
}

(* Multi-domain speedup: best probed events/s over the single-domain
   rate.  On a single-core machine this hovers around (or below) 1.0 —
   domains add scheduling overhead and no parallelism — which is why
   the bench gate carries a core-count-aware tolerance. *)
let speedup_of e =
  match
    ( List.assoc_opt 1 e.eps_by_domains,
      List.filter (fun (d, _) -> d > 1) e.eps_by_domains )
  with
  | None, _ | _, [] -> 1.0 (* no probe pair: neutral *)
  | Some base, multi ->
      List.fold_left (fun acc (_, eps) -> max acc (eps /. base)) 0.0 multi

(* Per-event-kind profile: where the wall time of an experiment goes,
   bucketed by event name with instance digits stripped.  [profile]
   perturbs the measured wall time (two clock reads per event), so the
   headline wall_s/events_per_s numbers are taken from unprofiled runs;
   the profile is printed for the eye and future perf PRs. *)
let print_profile () =
  let rows = Sim.Engine.profile_snapshot () in
  let total = List.fold_left (fun a (_, _, s, _) -> a +. s) 0.0 rows in
  let top = List.filteri (fun i _ -> i < 10) rows in
  Printf.printf "  %-36s %12s %10s %8s %10s %10s\n" "event kind" "events"
    "secs" "share" "us/event" "words/ev";
  List.iter
    (fun (kind, count, secs, words) ->
      Printf.printf "  %-36s %12d %10.2f %7.1f%% %10.2f %10.0f\n" kind count
        secs
        (100.0 *. secs /. total)
        (secs /. float_of_int count *. 1e6)
        (words /. float_of_int count))
    top;
  Printf.printf "  (%d kinds, %.2fs total in events)\n%!" (List.length rows)
    total

let run_experiment ?(profile = false) ?(domains = 1) ~name ~scale run =
  Printf.printf "\n== experiment %s [%s, domains=%d] ==\n%!" name
    scale.Common.label domains;
  Common.current_scale := scale;
  Common.domains := domains;
  let ev0 = Sim.Engine.global_events_executed () in
  let gc0 = Gc.quick_stat () in
  if profile then begin
    Sim.Engine.profile_set_clock Unix.gettimeofday;
    Sim.Engine.profile_reset ();
    Sim.Engine.profile_enable true
  end;
  let t0 = Unix.gettimeofday () in
  run ();
  let wall_s = Unix.gettimeofday () -. t0 in
  if profile then begin
    Sim.Engine.profile_enable false;
    print_profile ()
  end;
  let gc1 = Gc.quick_stat () in
  let events = Sim.Engine.global_events_executed () - ev0 in
  Printf.printf
    "[%s: %.1fs wall, %d events, %.0f events/s, %.1f MW minor alloc]\n%!" name
    wall_s events
    (float_of_int events /. wall_s)
    ((gc1.Gc.minor_words -. gc0.Gc.minor_words) /. 1e6);
  {
    e_name = name;
    e_scale = scale.Common.label;
    e_domains = domains;
    wall_s;
    events;
    minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
    major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
    eps_by_domains = [ (domains, float_of_int events /. wall_s) ];
  }

(* Re-run [run] at additional domain counts, recording only events/s.
   The simulated results are identical at every domain count (see
   Sim.Sharded's determinism contract); only wall clock varies. *)
let probe_domains ~name ~scale run e counts =
  List.iter
    (fun d ->
      if not (List.mem_assoc d e.eps_by_domains) then begin
        let p = run_experiment ~domains:d ~name ~scale run in
        e.eps_by_domains <-
          e.eps_by_domains @ [ (d, float_of_int p.events /. p.wall_s) ]
      end)
    counts;
  Common.domains := 1

(* ------------------------------------------------------------------ *)
(* Intra-cell multicore: one deployment sharded per node               *)
(* ------------------------------------------------------------------ *)

(* Where [probe_domains] parallelizes *across* independent simulations,
   this experiment parallelizes *inside* one: a single scaled
   fig4-style LineFS cell whose deployment is partitioned one node per
   {!Sim.Sharded} shard (host + SmartNIC plane of node i on shard i,
   fabric-latency edges between them).  The simulated outcome — the
   throughput the cell reports, the bytes the primary shipped, and the
   total event count — must be bit-identical at every domain count;
   only wall clock may move.  The client writes several files back to
   back so the wall time is long enough to measure. *)

type cell_probe = {
  c_domains : int;
  c_tput : float;
  c_wire : int;
  c_events : int;
  c_wall : float;
}

let cell_files = 4

let run_single_cell ~domains () =
  Common.current_scale := Common.scaled;
  let sh = Sim.Sharded.create ~seed_of:(fun _ -> 42) ~shards:3 () in
  let sys = Common.make_system ~sharding:(sh, 0) Common.Sys_linefs in
  let tput = ref 0.0 in
  Sim.Sharded.spawn_root ~name:"cell" sh ~shard:0 (fun () ->
      let ops = sys.Common.client 1 in
      let file_bytes = !Common.current_scale.Common.file_bytes in
      let t0 = Sim.Engine.now () in
      for i = 1 to cell_files do
        Workloads.Microbench.seq_write ~ops
          ~path:(Printf.sprintf "/cell%d" i)
          ~file_bytes ~io_bytes:(16 * 1024) ()
      done;
      let elapsed = Sim.Engine.now () - t0 in
      tput := Common.gbps (cell_files * file_bytes) elapsed;
      sys.Common.teardown ());
  let ev0 = Sim.Engine.global_events_executed () in
  let t0 = Unix.gettimeofday () in
  (* Same GC regime at every domain count, so the speedup ratio
     compares scheduling, not heap sizing. *)
  Common.with_parallel_gc (fun () -> Sim.Sharded.run ~domains sh);
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    c_domains = domains;
    c_tput = !tput;
    c_wire = sys.Common.wire_bytes ();
    c_events = Sim.Engine.global_events_executed () - ev0;
    c_wall = wall_s;
  }

(* Each domain count is probed [cell_reps] times and keeps its best
   wall clock — best-of-N on both sides of the ratio, so scheduler
   noise doesn't masquerade as a speedup or a regression. *)
let cell_reps = 3

let run_single_cell_suite counts =
  Printf.printf
    "\n== intra-cell multicore: per-node sharded deployment (scaled fig4 \
     cell) ==\n%!";
  let probes =
    List.map
      (fun d ->
        let runs =
          List.init cell_reps (fun _ -> run_single_cell ~domains:d ())
        in
        List.fold_left
          (fun best p -> if p.c_wall < best.c_wall then p else best)
          (List.hd runs) (List.tl runs))
      counts
  in
  List.iter
    (fun p ->
      Printf.printf
        "  domains=%d: %.2f GB/s simulated, %d events, %.2fs wall (best of \
         %d), %.0f events/s\n%!"
        p.c_domains p.c_tput p.c_events p.c_wall cell_reps
        (float_of_int p.c_events /. p.c_wall))
    probes;
  (match probes with
  | base :: rest ->
      List.iter
        (fun p ->
          if
            p.c_tput <> base.c_tput || p.c_wire <> base.c_wire
            || p.c_events <> base.c_events
          then begin
            Printf.printf
              "FAIL: sharded cell diverged at domains=%d vs %d: tput %.9f/%.9f \
               wire %d/%d events %d/%d\n%!"
              p.c_domains base.c_domains p.c_tput base.c_tput p.c_wire
              base.c_wire p.c_events base.c_events;
            exit 1
          end)
        rest;
      Printf.printf "  simulated results identical at every domain count\n%!"
  | [] -> ());
  probes

(* ------------------------------------------------------------------ *)
(* Rack-scale sweep: N-node racks of replica groups, cohort clients    *)
(* ------------------------------------------------------------------ *)

(* Throughput vs nodes vs cohort size vs domains, on sharded
   {!Linefs.Rack} deployments (one shard per node, no cross-group
   edges): the configuration where windows carry whole groups of
   concurrent work, so domain parallelism has real events to spread.
   Simulated results must be identical at every domain count. *)

type sweep_probe = {
  s_nodes : int;
  s_groups : int;
  s_cohort : int;
  s_domains : int;
  s_tput : float;
  s_wire : int;
  s_events : int;
  s_wall : float;
}

let sweep_group_bytes = 128 * 1024 * 1024

let run_rack_probe ~nodes ~group_size ~cohort ~domains () =
  Common.current_scale := Common.scaled;
  let sh = Sim.Sharded.create ~seed_of:(fun _ -> 42) ~shards:nodes () in
  let rack =
    Linefs.Rack.create ~sharding:(sh, 0) ~params:(Common.params ()) ~nodes
      ~group_size ()
  in
  let collect =
    Workloads.Rack_cohort.spawn ~sh ~rack ~cohort ~group_bytes:sweep_group_bytes
      ~io_bytes:(16 * 1024) ()
  in
  let ev0 = Sim.Engine.global_events_executed () in
  let t0 = Unix.gettimeofday () in
  Common.with_parallel_gc (fun () -> Sim.Sharded.run ~domains sh);
  let wall_s = Unix.gettimeofday () -. t0 in
  let results = collect () in
  let slowest =
    Array.fold_left
      (fun acc r -> max acc r.Workloads.Rack_cohort.elapsed)
      0 results
  in
  let groups = Linefs.Rack.group_count rack in
  {
    s_nodes = nodes;
    s_groups = groups;
    s_cohort = cohort;
    s_domains = domains;
    s_tput = Common.gbps (sweep_group_bytes * groups) slowest;
    s_wire = Linefs.Rack.replication_wire_bytes rack;
    s_events = Sim.Engine.global_events_executed () - ev0;
    s_wall = wall_s;
  }

(* One sweep entry: a (nodes, group_size, cohort) configuration probed
   at each domain count, byte-identity asserted across them. *)
let run_scale_sweep configs counts =
  Printf.printf
    "\n== rack-scale sweep: sharded N-node racks, cohort clients ==\n%!";
  List.map
    (fun (nodes, group_size, cohort) ->
      let probes =
        List.map
          (fun d -> run_rack_probe ~nodes ~group_size ~cohort ~domains:d ())
          counts
      in
      List.iter
        (fun p ->
          Printf.printf
            "  nodes=%d groups=%d cohort=%d domains=%d: %.2f GB/s simulated, \
             %d events, %.2fs wall, %.0f events/s\n%!"
            p.s_nodes p.s_groups p.s_cohort p.s_domains p.s_tput p.s_events
            p.s_wall
            (float_of_int p.s_events /. p.s_wall))
        probes;
      (match probes with
      | base :: rest ->
          List.iter
            (fun p ->
              if
                p.s_tput <> base.s_tput || p.s_wire <> base.s_wire
                || p.s_events <> base.s_events
              then begin
                Printf.printf
                  "FAIL: rack sweep (%d nodes, cohort %d) diverged at \
                   domains=%d vs %d: tput %.9f/%.9f wire %d/%d events %d/%d\n%!"
                  nodes cohort p.s_domains base.s_domains p.s_tput base.s_tput
                  p.s_wire base.s_wire p.s_events base.s_events;
                exit 1
              end)
            rest
      | [] -> ());
      probes)
    configs

let sweep_speedup probes_by_config =
  List.fold_left
    (fun acc probes ->
      match probes with
      | base :: rest when base.s_domains = 1 ->
          let base_eps = float_of_int base.s_events /. base.s_wall in
          List.fold_left
            (fun acc p ->
              max acc (float_of_int p.s_events /. p.s_wall /. base_eps))
            acc rest
      | _ -> acc)
    0.0 probes_by_config

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

(* Every floor the harness (or CI) enforces is recorded in the JSON:
   name, measured value, the floor it was held to, whether that floor
   was relaxed for the machine (core count), and whether the gate was
   evaluated at all in this run's mode.  CI refuses committed JSON
   whose gates were skipped or failed, so a smoke-mode or
   gates-sidestepped run can't masquerade as a real benchmark run. *)

type gate = {
  g_name : string;
  g_evaluated : bool;
  g_value : float;
  g_floor : float;
  g_relaxed : bool;
  g_note : string;
}

let gate_pass g = g.g_value >= g.g_floor

let skipped_gate name note =
  {
    g_name = name;
    g_evaluated = false;
    g_value = 0.0;
    g_floor = 0.0;
    g_relaxed = false;
    g_note = note;
  }

let report_gates gates =
  Printf.printf "\n== gates ==\n%!";
  let failed = ref false in
  List.iter
    (fun g ->
      if not g.g_evaluated then
        Printf.printf "  %-26s SKIPPED (%s)\n%!" g.g_name g.g_note
      else begin
        let ok = gate_pass g in
        if not ok then failed := true;
        Printf.printf "  %-26s %6.2fx (floor %.2fx%s) %s\n%!" g.g_name g.g_value
          g.g_floor
          (if g.g_relaxed then ", relaxed: " ^ g.g_note else "")
          (if ok then "ok" else "FAIL")
      end)
    gates;
  not !failed

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled; no deps)                                  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path ~mode ~domains ~cores ~kernels ~geomean ~experiments
    ~cell_probes ~sweep ~gates =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b
    (Printf.sprintf "  \"data_path_geomean_speedup\": %.3f,\n" geomean);
  (match cell_probes with
  | base :: _ :: _ ->
      let eps p = float_of_int p.c_events /. p.c_wall in
      let base_eps = eps base in
      Buffer.add_string b
        (Printf.sprintf "  \"single_cell_speedup_by_domains\": {%s},\n"
           (String.concat ", "
              (List.map
                 (fun p ->
                   Printf.sprintf "\"%d\": %.3f" p.c_domains (eps p /. base_eps))
                 cell_probes)));
      Buffer.add_string b
        (Printf.sprintf "  \"single_cell_speedup\": %.3f,\n"
           (List.fold_left
              (fun acc p ->
                if p.c_domains > base.c_domains then max acc (eps p /. base_eps)
                else acc)
              0.0 cell_probes))
  | _ -> ());
  Buffer.add_string b "  \"kernels\": [\n";
  List.iteri
    (fun i k ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"bytes_per_iter\": %d, \"new_us\": %.2f, \
            \"legacy_us\": %.2f, \"speedup\": %.3f}%s\n"
           (json_escape k.k_name) k.k_bytes (k.new_s *. 1e6)
           (k.legacy_s *. 1e6) (speedup k)
           (if i = List.length kernels - 1 then "" else ","))
      )
    kernels;
  Buffer.add_string b "  ],\n";
  (match sweep with
  | [] -> ()
  | sweep ->
      Buffer.add_string b "  \"scale_sweep\": [\n";
      let flat = List.concat sweep in
      List.iteri
        (fun i p ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"nodes\": %d, \"groups\": %d, \"cohort\": %d, \
                \"domains\": %d, \"tput_gbps\": %.3f, \"wire_bytes\": %d, \
                \"events\": %d, \"wall_s\": %.2f, \"events_per_s\": %.0f}%s\n"
               p.s_nodes p.s_groups p.s_cohort p.s_domains p.s_tput p.s_wire
               p.s_events p.s_wall
               (float_of_int p.s_events /. p.s_wall)
               (if i = List.length flat - 1 then "" else ","))
          )
        flat;
      Buffer.add_string b "  ],\n";
      Buffer.add_string b
        (Printf.sprintf "  \"scale_sweep_speedup\": %.3f,\n"
           (sweep_speedup sweep)));
  Buffer.add_string b "  \"gates\": {\n";
  Buffer.add_string b (Printf.sprintf "    \"cores\": %d,\n" cores);
  Buffer.add_string b (Printf.sprintf "    \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "    \"results\": [\n";
  List.iteri
    (fun i g ->
      (if not g.g_evaluated then
         Buffer.add_string b
           (Printf.sprintf
              "      {\"name\": \"%s\", \"evaluated\": false, \"note\": \
               \"%s\"}%s\n"
              (json_escape g.g_name) (json_escape g.g_note)
              (if i = List.length gates - 1 then "" else ","))
       else
         Buffer.add_string b
           (Printf.sprintf
              "      {\"name\": \"%s\", \"evaluated\": true, \"value\": %.3f, \
               \"floor\": %.3f, \"relaxed\": %b, \"note\": \"%s\", \"pass\": \
               %b}%s\n"
              (json_escape g.g_name) g.g_value g.g_floor g.g_relaxed
              (json_escape g.g_note) (gate_pass g)
              (if i = List.length gates - 1 then "" else ","))))
    gates;
  Buffer.add_string b "    ]\n";
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
      let eps_json =
        String.concat ", "
          (List.map
             (fun (d, eps) -> Printf.sprintf "\"%d\": %.0f" d eps)
             e.eps_by_domains)
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"scale\": \"%s\", \"domains\": %d, \
            \"wall_s\": %.2f, \"events\": %d, \"events_per_s\": %.0f, \
            \"events_per_s_by_domains\": {%s}, \
            \"multi_domain_speedup\": %.3f, \"gc\": \
            {\"minor_words\": %.0f, \"major_words\": %.0f, \
            \"major_collections\": %d}}%s\n"
           (json_escape e.e_name) (json_escape e.e_scale) e.e_domains e.wall_s
           e.events
           (float_of_int e.events /. e.wall_s)
           eps_json (speedup_of e) e.minor_words e.major_words
           e.major_collections
           (if i = List.length experiments - 1 then "" else ","))
      )
    experiments;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  (* Wall clock for the sharded runner's inline-vs-parallel policy
     (scheduling only — simulated results never depend on it). *)
  Sim.Sharded.set_clock Unix.gettimeofday;
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let full = List.mem "--full" args in
  let profile = List.mem "--profile" args in
  let no_probe = List.mem "--no-domain-probe" args in
  let rec flag_val name = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> flag_val name rest
    | [] -> None
  in
  let path =
    match flag_val "-o" args with Some p -> p | None -> "BENCH_wallclock.json"
  in
  let domains =
    match flag_val "--domains" args with
    | Some v -> max 1 (int_of_string v)
    | None -> 1
  in
  let mode = if smoke then "smoke" else if full then "full" else "default" in
  Printf.printf "wall-clock harness, mode=%s, domains=%d\n%!" mode domains;
  let kernels, geomean = run_kernels ~smoke in
  let experiments =
    if smoke then []
    else begin
      (* Explicit sequencing: list elements would evaluate in
         unspecified order. *)
      let s4 =
        run_experiment ~profile ~domains ~name:"fig4" ~scale:Common.scaled
          Exp_fig4.run
      in
      let s9 =
        run_experiment ~profile ~domains ~name:"fig9" ~scale:Common.scaled
          Exp_fig9.run
      in
      (* Scaled experiments also probe events/s at domains 1, 4, 8 so
         the JSON tracks the multi-domain trajectory; full-scale runs
         are too expensive to triplicate. *)
      if not no_probe then begin
        probe_domains ~name:"fig4" ~scale:Common.scaled Exp_fig4.run s4
          [ 1; 4; 8 ];
        probe_domains ~name:"fig9" ~scale:Common.scaled Exp_fig9.run s9
          [ 1; 4; 8 ]
      end;
      let at_full =
        if full then begin
          let f4 =
            run_experiment ~profile ~domains ~name:"fig4" ~scale:Common.full
              Exp_fig4.run
          in
          let f9 =
            run_experiment ~profile ~domains ~name:"fig9" ~scale:Common.full
              Exp_fig9.run
          in
          [ f4; f9 ]
        end
        else []
      in
      [ s4; s9 ] @ at_full
    end
  in
  let cell_probes =
    if smoke then []
    else run_single_cell_suite (if no_probe then [ 1; 4 ] else [ 1; 2; 4 ])
  in
  let sweep =
    if smoke then []
    else
      run_scale_sweep
        [ (8, 4, 2); (8, 4, 8); (16, 4, 4); (24, 4, 4) ]
        [ 1; 4 ]
  in
  let cores = Domain.recommended_domain_count () in
  let cell_speedup =
    match cell_probes with
    | base :: (_ :: _ as rest) ->
        let eps p = float_of_int p.c_events /. p.c_wall in
        Some
          (List.fold_left
             (fun acc p -> max acc (eps p /. eps base))
             0.0 rest)
    | _ -> None
  in
  let gates =
    [
      {
        g_name = "data_path_geomean";
        g_evaluated = true;
        g_value = geomean;
        g_floor = 3.0;
        g_relaxed = false;
        g_note = "";
      };
      (match
         List.find_opt
           (fun e -> e.e_name = "fig4" && List.length e.eps_by_domains > 1)
           experiments
       with
      | None -> skipped_gate "multi_domain_fig4" "no scaled fig4 domain probe"
      | Some e ->
          {
            g_name = "multi_domain_fig4";
            g_evaluated = true;
            g_value = speedup_of e;
            g_floor = (if cores > 1 then 1.10 else 0.20);
            g_relaxed = cores <= 1;
            g_note =
              (if cores <= 1 then
                 "single core: domains add barriers, no parallelism"
               else "");
          });
      (match cell_speedup with
      | None -> skipped_gate "single_cell_speedup" "no sharded-cell probe"
      | Some v ->
          {
            g_name = "single_cell_speedup";
            g_evaluated = true;
            g_value = v;
            g_floor =
              (if cores >= 4 then 1.30 else if cores > 1 then 1.00 else 0.90);
            g_relaxed = cores < 4;
            g_note =
              (if cores <= 1 then
                 "single core: inline policy, expect ~1.0x"
               else if cores < 4 then "fewer than 4 cores"
               else "");
          });
      (match sweep with
      | [] -> skipped_gate "scale_sweep_speedup" "no rack sweep in this mode"
      | sweep ->
          {
            g_name = "scale_sweep_speedup";
            g_evaluated = true;
            g_value = sweep_speedup sweep;
            g_floor = (if cores >= 4 then 1.50 else 0.90);
            g_relaxed = cores < 4;
            g_note =
              (if cores < 4 then
                 "fewer than 4 cores: inline policy, expect ~1.0x"
               else "");
          });
    ]
  in
  write_json ~path ~mode ~domains ~cores ~kernels ~geomean ~experiments
    ~cell_probes ~sweep ~gates;
  if not (report_gates gates) then begin
    Printf.printf "FAIL: a bench gate fell below its floor\n%!";
    exit 1
  end
