(* Bechamel micro-benchmarks of the core data structures and codecs —
   the real-CPU building blocks underneath the simulated datapath. *)

open Bechamel
open Toolkit

let extent_map_insert =
  Test.make ~name:"extent_map.insert-1k"
    (Staged.stage (fun () ->
         let m = Storage.Extent_map.create () in
         for i = 0 to 999 do
           Storage.Extent_map.insert m ~at:(i * 64)
             (Storage.Data.zero ~len:64) i
         done))

let extent_map_lookup =
  let m = Storage.Extent_map.create () in
  let () =
    for i = 0 to 9999 do
      Storage.Extent_map.insert m ~at:(i * 64) (Storage.Data.zero ~len:64) i
    done
  in
  Test.make ~name:"extent_map.find-10k"
    (Staged.stage (fun () ->
         for i = 0 to 99 do
           ignore (Storage.Extent_map.find m (i * 640) : _ option)
         done))

let crc32_4k =
  let buf = Bytes.create 4096 in
  Test.make ~name:"crc32.4KiB"
    (Staged.stage (fun () -> ignore (Storage.Crc32.bytes buf : int32)))

let lzw_encode_64k =
  let rng = Sim.Rng.create 3 in
  let data =
    Storage.Data.to_bytes
      (Storage.Data.fill_ratio (Storage.Data.zero ~len:65536) ~zeros:0.6 ~rng)
  in
  Test.make ~name:"lzw.encode-64KiB-60%zero"
    (Staged.stage (fun () -> ignore (Compress.Lzw.encode data : Bytes.t)))

let oplog_roundtrip =
  let entry =
    Storage.Oplog.make ~seq:1 ~client:0
      (Storage.Oplog.Write
         { inum = 2; offset = 0; data = Storage.Data.real (Bytes.create 4096) })
  in
  Test.make ~name:"oplog.serialize+deserialize-4KiB"
    (Staged.stage (fun () ->
         match Storage.Oplog.deserialize (Storage.Oplog.serialize entry) with
         | Ok _ -> ()
         | Error e -> failwith e))

let sim_events =
  Test.make ~name:"sim.10k-events"
    (Staged.stage (fun () ->
         let eng = Sim.Engine.create () in
         Sim.Engine.spawn_root eng (fun () ->
             for _ = 1 to 10_000 do
               Sim.Engine.sleep 10
             done);
         Sim.Engine.run eng))

(* -- data-plane kernels (the hot paths of the zero-copy rewrite) ----- *)

(* A replication-chunk-shaped payload: a mix of real, synthetic and
   zero pieces, concatenated into one rope. *)
let mixed_pieces ~piece ~count =
  List.init count (fun i ->
      match i mod 3 with
      | 0 ->
          let b = Bytes.create piece in
          for j = 0 to piece - 1 do
            Bytes.unsafe_set b j (Char.unsafe_chr ((i + (j * 7)) land 0xFF))
          done;
          Storage.Data.real b
      | 1 -> Storage.Data.synthetic ~seed:(i + 1) ~len:piece
      | _ -> Storage.Data.zero ~len:piece)

let data_concat_traverse =
  let pieces = mixed_pieces ~piece:16384 ~count:64 in
  let dst = Bytes.create (16384 * 64) in
  Test.make ~name:"data.concat+blit-1MiB-64pieces"
    (Staged.stage (fun () ->
         let d = Storage.Data.concat pieces in
         Storage.Data.blit_to d ~src_pos:0 ~dst ~dst_pos:0
           ~len:(Storage.Data.length d)))

let crc32_rope_1m =
  let d = Storage.Data.concat (mixed_pieces ~piece:16384 ~count:64) in
  Test.make ~name:"crc32.data-1MiB-rope"
    (Staged.stage (fun () -> ignore (Storage.Crc32.data d : int32)))

let lzw_encode_data_256k =
  let rng = Sim.Rng.create 7 in
  let d =
    Storage.Data.concat
      (List.init 4 (fun _ ->
           Storage.Data.fill_ratio
             (Storage.Data.zero ~len:65536)
             ~zeros:0.6 ~rng))
  in
  Test.make ~name:"lzw.encode_data-256KiB-rope"
    (Staged.stage (fun () ->
         ignore (Compress.Lzw.encoded_length_data d : int)))

let lzw_decode_256k =
  let rng = Sim.Rng.create 9 in
  let enc =
    Compress.Lzw.encode
      (Storage.Data.to_bytes
         (Storage.Data.fill_ratio
            (Storage.Data.zero ~len:262144)
            ~zeros:0.6 ~rng))
  in
  Test.make ~name:"lzw.decode-256KiB"
    (Staged.stage (fun () -> ignore (Compress.Lzw.decode enc : Bytes.t)))

let heap_churn =
  Test.make ~name:"heap.push+pop-10k"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create () in
         for i = 0 to 9_999 do
           Sim.Heap.push h ~key:(i * 7919 mod 10_000) ~seq:i i
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h : (int * int * int) option)
         done))

let all_tests =
  [
    extent_map_insert;
    extent_map_lookup;
    crc32_4k;
    lzw_encode_64k;
    oplog_roundtrip;
    sim_events;
    data_concat_traverse;
    crc32_rope_1m;
    lzw_encode_data_256k;
    lzw_decode_256k;
    heap_churn;
  ]

let run () =
  Common.heading "Bechamel micro-benchmarks (real CPU time of substrates)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results' =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
        results')
    all_tests
