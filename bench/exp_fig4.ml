(* Figure 4: write throughput scalability with replicas idle and busy.
   Each client writes its own file sequentially with 16 KB IOs and
   calls fsync at the end; "busy" adds streamcluster on the replicas
   with the DFS given higher scheduling priority (as in §5.2.1). *)

open Common

let io_bytes = 16 * 1024

(* Body of one (system, busy, clients) cell; runs inside its own
   engine, so cells are independent and batch cleanly across domains. *)
let run_one which ~busy ~clients () =
  let dfs_prio = if busy then Hw.Cpu.prio_high else Hw.Cpu.prio_normal in
  let sys = make_system ~dfs_prio which in
  let stop_bg =
    if busy then busy_replicas sys ~nodes:[ 1; 2 ] else fun () -> ()
  in
  let file_bytes = !current_scale.file_bytes / clients in
  let opses = List.init clients (fun i -> sys.client (i + 1)) in
  let elapsed =
    parallel_clients clients (fun i ->
        let ops = List.nth opses (i - 1) in
        Workloads.Microbench.seq_write ~ops
          ~path:(Printf.sprintf "/fig4-%d" i)
          ~file_bytes ~io_bytes ())
  in
  stop_bg ();
  let tput = gbps (clients * file_bytes) elapsed in
  sys.teardown ();
  tput

let run () =
  heading "Figure 4: write throughput scalability (GB/s)";
  let counts = [ 1; 2; 4; 8 ] in
  (* All 40 cells are independent sims: build the whole batch first so
     [in_sims] can spread it over domains, then slice results back into
     tables in the original order. *)
  let cells =
    List.concat_map
      (fun busy ->
        List.concat_map
          (fun which ->
            List.map (fun n -> run_one which ~busy ~clients:n) counts)
          all_systems)
      [ false; true ]
  in
  let results = ref (in_sims cells) in
  let next () =
    match !results with
    | v :: rest ->
        results := rest;
        v
    | [] -> assert false
  in
  List.iter
    (fun busy ->
      subheading (if busy then "replicas busy" else "replicas idle");
      let rows =
        List.map
          (fun which ->
            sysname_to_string which
            :: List.map (fun _ -> f2 (next ())) counts)
          all_systems
      in
      print_table
        ~header:("system" :: List.map (fun n -> Printf.sprintf "%d cli" n) counts)
        ~rows)
    [ false; true ]
