(** Shared infrastructure for the per-table / per-figure harness. *)

open Sim
open Linefs

(* Scale factors: the paper writes 12-24 GB files; the harness defaults
   to ~1/64 of that so the full suite runs in minutes, preserving the
   shapes. [--full] restores paper sizes. *)
type scale = { file_bytes : int; log_bytes : int; label : string }

let scaled = { file_bytes = 192 * 1024 * 1024; log_bytes = 32 * 1024 * 1024; label = "scaled (192MB files, 32MB logs)" }
let full = { file_bytes = 12 * 1024 * 1024 * 1024; log_bytes = 512 * 1024 * 1024; label = "full (12GB files, 512MB logs)" }

let current_scale = ref scaled

let params () =
  { Params.default with Params.log_bytes = !current_scale.log_bytes }

(* Run [f] as the root process of a fresh engine and return its value. *)
let in_sim ?deadline f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run ?deadline eng;
  match !result with
  | Some v -> v
  | None -> failwith "bench: simulation deadline hit before completion"

(* How many domains experiment batches spread over (the --domains
   flag); 1 keeps the historical strictly sequential path. *)
let domains = ref 1

(* Run a batch of independent simulations — one fresh engine each, no
   cross-sim interaction — and return their values in input order.
   With [domains = 1] this is exactly [List.map in_sim]; otherwise the
   sims become shards of a {!Sim.Sharded} runner (no edges, so every
   shard runs to completion in a single window) spread over the
   domains.  Every shard gets the same engine seed [in_sim] always
   used, so results are identical for every domain count. *)
(* OCaml 5 minor collections are stop-the-world across every domain:
   with several engines allocating in parallel on a default-size
   (256 KW) minor heap, the barrier fires so often that the whole batch
   serializes behind it — the multi-domain slowdown the wallclock
   harness used to record.  For the duration of a multi-domain batch,
   give each domain a much larger minor heap (fewer, better-amortized
   barriers) and a lazier major-slice policy, then restore the user's
   settings. *)
let with_parallel_gc f =
  let g = Gc.get () in
  Gc.set
    {
      g with
      Gc.minor_heap_size = 8 * 1024 * 1024 (* words: 64 MB per domain *);
      space_overhead = 200;
    };
  Fun.protect ~finally:(fun () -> Gc.set g) f

let in_sims fs =
  if !domains <= 1 then List.map (fun f -> in_sim f) fs
  else
    with_parallel_gc (fun () ->
        let n = List.length fs in
        let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:n () in
        let results = Array.make n None in
        List.iteri
          (fun i f ->
            Sharded.spawn_root sh ~shard:i (fun () ->
                results.(i) <- Some (f ())))
          fs;
        Sharded.run ~domains:!domains sh;
        Array.to_list results
        |> List.map (function
             | Some v -> v
             | None -> failwith "bench: shard did not complete"))

(* Spawn [n] client bodies and wait for all to finish; returns elapsed. *)
let parallel_clients n body =
  let t0 = Engine.now () in
  let live = ref n in
  let all_done = Ivar.create () in
  for i = 1 to n do
    Engine.spawn ~name:(Printf.sprintf "bench.client%d" i) (fun () ->
        body i;
        decr live;
        if !live = 0 then Ivar.fill all_done ())
  done;
  Ivar.read all_done;
  Engine.now () - t0

let gbps bytes elapsed = float_of_int bytes /. Time.to_sec_f elapsed /. 1e9
let mbps bytes elapsed = float_of_int bytes /. Time.to_sec_f elapsed /. 1e6

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subheading s = Printf.printf "\n-- %s --\n%!" s

let row_format widths =
  String.concat "  " (List.map (fun w -> Printf.sprintf "%%-%ds" w) widths)

let print_row widths cells =
  List.iteri
    (fun i cell ->
      let w = List.nth widths i in
      Printf.printf "%-*s  " w cell)
    cells;
  print_newline ()

let print_table ~header ~rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows;
  ignore (row_format widths)

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.0f%%" (v *. 100.0)

(* ------------------------------------------------------------------ *)
(* System constructors used across experiments                         *)
(* ------------------------------------------------------------------ *)

type sysname =
  | Sys_assise
  | Sys_assise_bg
  | Sys_hyperloop
  | Sys_linefs_np
  | Sys_linefs

let sysname_to_string = function
  | Sys_assise -> "Assise"
  | Sys_assise_bg -> "Assise-BgRepl"
  | Sys_hyperloop -> "Assise+Hyperloop"
  | Sys_linefs_np -> "LineFS-NotParallel"
  | Sys_linefs -> "LineFS"

let all_systems =
  [ Sys_assise; Sys_assise_bg; Sys_hyperloop; Sys_linefs_np; Sys_linefs ]

(* A uniform handle over LineFS deployments and Assise clusters. *)
type sys = {
  name : string;
  client : int -> Dfs_intf.ops;
  flush : unit -> unit;
  teardown : unit -> unit;
  wire_bytes : unit -> int;
  node_of : int -> Hw.Node.t;
  dfs_cpu : int -> Stats.Busy.t;
}

let make_system ?(cfg = Hw.Config.testbed_25gbe) ?(nodes = 3)
    ?(dfs_prio = Hw.Cpu.prio_normal) ?(compression = false) ?sharding which =
  let params = params () in
  match which with
  | Sys_linefs | Sys_linefs_np ->
      let d =
        Deployment.create ?sharding ~cfg ~params
          ~pipeline_parallelism:(which = Sys_linefs)
          ~dfs_prio ~compression ~nodes ()
      in
      {
        name = sysname_to_string which;
        client = (fun id -> Libfs.ops (Deployment.add_client d ~id));
        flush = (fun () -> Deployment.flush_all d);
        teardown = (fun () -> Deployment.stop d);
        wire_bytes = (fun () -> Deployment.replication_wire_bytes d);
        node_of = (fun i -> (Deployment.node d i).Deployment.node);
        dfs_cpu = (fun i -> (Deployment.node d i).Deployment.dfs_host_cpu);
      }
  | Sys_assise | Sys_assise_bg | Sys_hyperloop ->
      let variant =
        match which with
        | Sys_assise -> Baselines.Assise.Pessimistic
        | Sys_assise_bg -> Baselines.Assise.Bg_repl
        | Sys_hyperloop -> Baselines.Assise.Hyperloop
        | Sys_linefs | Sys_linefs_np -> assert false
      in
      let a =
        Baselines.Assise.create ?sharding ~cfg ~params ~variant ~dfs_prio
          ~nodes ()
      in
      {
        name = sysname_to_string which;
        client =
          (fun id -> Baselines.Assise.ops (Baselines.Assise.add_client a ~id));
        flush = (fun () -> Baselines.Assise.flush_all a);
        teardown = (fun () -> Baselines.Assise.stop a);
        wire_bytes = (fun () -> Baselines.Assise.replication_wire_bytes a);
        node_of = (fun i -> Baselines.Assise.node a i);
        dfs_cpu = (fun i -> Baselines.Assise.dfs_host_cpu a ~node:i);
      }

(* Start streamcluster antagonists on the given nodes; returns a stop
   function. *)
let busy_replicas sys ~nodes =
  let bgs =
    List.map
      (fun i ->
        Workloads.Streamcluster.start_background ~node:(sys.node_of i) ())
      nodes
  in
  fun () -> List.iter Workloads.Streamcluster.stop bgs
