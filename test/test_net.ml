(* Tests for the RDMA data-movement model and the two-class RPC layer. *)

open Sim
open Net

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let two_nodes () =
  let topo = Hw.Topology.create ~nodes:2 () in
  (Hw.Topology.node topo 0, Hw.Topology.node topo 1)

let check_between msg lo hi v =
  if v < lo || v > hi then
    Alcotest.failf "%s: %s not in [%s, %s]" msg (Time.to_string v)
      (Time.to_string lo) (Time.to_string hi)

(* ------------------------------------------------------------------ *)
(* Loc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_loc_predicates () =
  let a, b = two_nodes () in
  Alcotest.(check bool) "same node" true
    (Loc.same_node (Loc.Host a) (Loc.Nic a));
  Alcotest.(check bool) "different node" false
    (Loc.same_node (Loc.Host a) (Loc.Host b));
  Alcotest.(check bool) "is_host" true (Loc.is_host (Loc.Host a));
  Alcotest.(check bool) "nic not host" false (Loc.is_host (Loc.Nic a))

(* ------------------------------------------------------------------ *)
(* Rdma                                                                *)
(* ------------------------------------------------------------------ *)

let test_rdma_host_nic_crosses_pcie () =
  (* Fetching 4 MB host -> NIC should take ~1 ms (Figure 5 fetch). *)
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Host a) ~dst:(Loc.Nic a) (4 * 1024 * 1024);
        Engine.now () - t0)
  in
  check_between "4MB over PCIe" (Time.us 900) (Time.us 1200) elapsed

let test_rdma_same_location_free () =
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic a) (1024 * 1024);
        Engine.now () - t0)
  in
  Alcotest.(check int) "no charge" 0 elapsed

let test_rdma_cross_node_network_bound () =
  (* 22 MB NIC-to-NIC is ~10 ms at 2.2 GB/s goodput. *)
  let a, b = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic b) (22 * 1024 * 1024);
        Engine.now () - t0)
  in
  check_between "cross-node" (Time.ms 10) (Time.ms 11) elapsed

let test_rdma_pm_charges_device_time () =
  let a, b = two_nodes () in
  let before = Hw.Pm.bytes_written b.Hw.Node.pm in
  run_sim (fun () ->
      Rdma.move ~dst_medium:`Pm ~src:(Loc.Nic a) ~dst:(Loc.Host b) 4096);
  Alcotest.(check int) "pm written" (before + 4096)
    (Hw.Pm.bytes_written b.Hw.Node.pm)

let test_rdma_estimate_close_to_actual () =
  let a, b = two_nodes () in
  let est = Rdma.move_time_estimate ~src:(Loc.Nic a) ~dst:(Loc.Nic b) 1_000_000 in
  let actual =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic b) 1_000_000;
        Engine.now () - t0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %s ~ actual %s" (Time.to_string est)
       (Time.to_string actual))
    true
    (abs (est - actual) < actual / 5)

(* ------------------------------------------------------------------ *)
(* Rpc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rpc_busy_poll_low_latency () =
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let srv =
          Rpc.create ~name:"echo" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
            ~handler:(fun x -> x + 1)
            ()
        in
        let t0 = Engine.now () in
        let r = Rpc.call srv ~from:(Loc.Host a) 41 in
        Alcotest.(check int) "result" 42 r;
        Engine.now () - t0)
  in
  (* Two PCIe crossings plus poll granularity: ~5-10 us. *)
  check_between "busy-poll RTT" (Time.us 3) (Time.us 15) elapsed

let test_rpc_busy_poll_reserves_core () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let nic_pool = Hw.Smartnic.cpu a.Hw.Node.nic in
      let before = Hw.Cpu.available nic_pool in
      let _srv =
        Rpc.create ~name:"spin" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
          ~handler:(fun () -> ())
          ()
      in
      Alcotest.(check int) "one core consumed" (before - 1)
        (Hw.Cpu.available nic_pool))

let test_rpc_event_pays_dispatch () =
  let a, _ = two_nodes () in
  let busy_poll_t, event_t =
    run_sim (fun () ->
        let bp =
          Rpc.create ~name:"bp" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
            ~handler:(fun () -> ())
            ()
        in
        let ev =
          Rpc.create ~name:"ev" ~loc:(Loc.Nic a)
            ~kind:(Rpc.Event { workers = 2; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () -> ())
            ()
        in
        let time f =
          let t0 = Engine.now () in
          f ();
          Engine.now () - t0
        in
        ( time (fun () -> Rpc.call bp ~from:(Loc.Host a) ()),
          time (fun () -> Rpc.call ev ~from:(Loc.Host a) ()) ))
  in
  Alcotest.(check bool)
    (Printf.sprintf "event (%s) slower than busy-poll (%s)"
       (Time.to_string event_t) (Time.to_string busy_poll_t))
    true
    (event_t > busy_poll_t)

let test_rpc_concurrent_calls_all_served () =
  let a, b = two_nodes () in
  let served =
    run_sim (fun () ->
        let count = ref 0 in
        let srv =
          Rpc.create ~name:"ctr" ~loc:(Loc.Nic b)
            ~kind:(Rpc.Event { workers = 4; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () -> incr count)
            ()
        in
        let live = ref 20 in
        let don = Ivar.create () in
        for _ = 1 to 20 do
          Engine.spawn (fun () ->
              Rpc.call srv ~from:(Loc.Nic a) ();
              decr live;
              if !live = 0 then Ivar.fill don ())
        done;
        Ivar.read don;
        !count)
  in
  Alcotest.(check int) "all served" 20 served

let test_rpc_post_does_not_wait () =
  let a, _ = two_nodes () in
  let elapsed, handled =
    run_sim (fun () ->
        let handled = ref false in
        let srv =
          Rpc.create ~name:"slow" ~loc:(Loc.Nic a)
            ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () ->
              Engine.sleep (Time.ms 5);
              handled := true)
            ()
        in
        let t0 = Engine.now () in
        Rpc.post srv ~from:(Loc.Host a) ();
        let e = Engine.now () - t0 in
        Engine.sleep (Time.ms 10);
        (e, !handled))
  in
  Alcotest.(check bool) "post returns early" true (elapsed < Time.ms 1);
  Alcotest.(check bool) "handler eventually ran" true handled

let test_rpc_queue_length () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let release = Cond.create () in
      let srv =
        Rpc.create ~name:"gate" ~loc:(Loc.Nic a)
          ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
          ~handler:(fun () -> Cond.await release)
          ()
      in
      for _ = 1 to 5 do
        Rpc.post srv ~from:(Loc.Host a) ()
      done;
      Engine.sleep (Time.ms 1);
      (* One message is being handled; the rest wait. *)
      Alcotest.(check int) "queued" 4 (Rpc.queue_length srv);
      Cond.broadcast release;
      for _ = 1 to 5 do
        Cond.broadcast release;
        Engine.sleep (Time.ms 1)
      done)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_series () =
  let p = Backoff.make ~base:(Time.us 100) ~factor:2.0 ~cap:(Time.us 500) () in
  Alcotest.(check int) "attempt 0" (Time.us 100) (Backoff.delay p ~attempt:0);
  Alcotest.(check int) "attempt 1" (Time.us 200) (Backoff.delay p ~attempt:1);
  Alcotest.(check int) "attempt 2" (Time.us 400) (Backoff.delay p ~attempt:2);
  Alcotest.(check int) "attempt 3 capped" (Time.us 500)
    (Backoff.delay p ~attempt:3);
  (* The cap also bounds arbitrarily large attempt counts without
     overflowing. *)
  Alcotest.(check int) "attempt 60 capped" (Time.us 500)
    (Backoff.delay p ~attempt:60);
  Alcotest.(check bool) "negative attempt raises" true
    (try
       ignore (Backoff.delay p ~attempt:(-1) : Time.t);
       false
     with _ -> true)

let test_backoff_default_bounds () =
  let p = Backoff.default in
  Alcotest.(check bool) "base positive" true (Backoff.delay p ~attempt:0 > 0);
  Alcotest.(check bool) "monotone" true
    (Backoff.delay p ~attempt:1 >= Backoff.delay p ~attempt:0);
  Alcotest.(check int) "cap reached" p.Backoff.cap
    (Backoff.delay p ~attempt:20)

(* ------------------------------------------------------------------ *)
(* call_timeout / call_retry                                           *)
(* ------------------------------------------------------------------ *)

let test_call_timeout_fault_free_passthrough () =
  (* Without fault injection, call_timeout/call_retry behave exactly
     like call: same answer, no timer-induced delay differences. *)
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let srv =
        Rpc.create ~name:"echo" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
          ~handler:(fun x -> x * 2)
          ()
      in
      let t0 = Engine.now () in
      let plain = Rpc.call srv ~from:(Loc.Host a) 21 in
      let t_plain = Engine.now () - t0 in
      let t1 = Engine.now () in
      let timed = Rpc.call_timeout srv ~from:(Loc.Host a) ~timeout:(Time.ms 1) 21 in
      let t_timed = Engine.now () - t1 in
      let retried = Rpc.call_retry srv ~from:(Loc.Host a) 21 in
      Alcotest.(check int) "plain" 42 plain;
      Alcotest.(check (option int)) "timed" (Some 42) timed;
      Alcotest.(check (option int)) "retried" (Some 42) retried;
      Alcotest.(check int) "same latency" t_plain t_timed)

let test_call_timeout_gives_up_on_slow_handler () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let srv =
        Rpc.create ~name:"slow" ~loc:(Loc.Nic a)
          ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
          ~handler:(fun () -> Engine.sleep (Time.ms 20))
          ()
      in
      let t0 = Engine.now () in
      let r = Rpc.call_timeout srv ~from:(Loc.Host a) ~timeout:(Time.ms 2) () in
      let waited = Engine.now () - t0 in
      Alcotest.(check (option unit)) "timed out" None r;
      check_between "gave up at the deadline" (Time.ms 2) (Time.ms 3) waited;
      (* Let the abandoned handler finish so the simulation quiesces. *)
      Engine.sleep (Time.ms 25))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "net"
    [
      ("loc", [ tc "predicates" `Quick test_loc_predicates ]);
      ( "rdma",
        [
          tc "host-nic crosses pcie" `Quick test_rdma_host_nic_crosses_pcie;
          tc "same location free" `Quick test_rdma_same_location_free;
          tc "cross-node network bound" `Quick test_rdma_cross_node_network_bound;
          tc "pm device charged" `Quick test_rdma_pm_charges_device_time;
          tc "estimate close to actual" `Quick test_rdma_estimate_close_to_actual;
        ] );
      ( "rpc",
        [
          tc "busy poll low latency" `Quick test_rpc_busy_poll_low_latency;
          tc "busy poll reserves core" `Quick test_rpc_busy_poll_reserves_core;
          tc "event pays dispatch" `Quick test_rpc_event_pays_dispatch;
          tc "concurrent calls served" `Quick test_rpc_concurrent_calls_all_served;
          tc "post does not wait" `Quick test_rpc_post_does_not_wait;
          tc "queue length" `Quick test_rpc_queue_length;
        ] );
      ( "backoff",
        [
          tc "capped exponential series" `Quick test_backoff_series;
          tc "default bounds" `Quick test_backoff_default_bounds;
        ] );
      ( "retry",
        [
          tc "fault-free passthrough" `Quick
            test_call_timeout_fault_free_passthrough;
          tc "timeout on slow handler" `Quick
            test_call_timeout_gives_up_on_slow_handler;
        ] );
    ]
