(* Tests for the RDMA data-movement model and the two-class RPC layer. *)

open Sim
open Net

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let two_nodes () =
  let topo = Hw.Topology.create ~nodes:2 () in
  (Hw.Topology.node topo 0, Hw.Topology.node topo 1)

let check_between msg lo hi v =
  if v < lo || v > hi then
    Alcotest.failf "%s: %s not in [%s, %s]" msg (Time.to_string v)
      (Time.to_string lo) (Time.to_string hi)

(* ------------------------------------------------------------------ *)
(* Loc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_loc_predicates () =
  let a, b = two_nodes () in
  Alcotest.(check bool) "same node" true
    (Loc.same_node (Loc.Host a) (Loc.Nic a));
  Alcotest.(check bool) "different node" false
    (Loc.same_node (Loc.Host a) (Loc.Host b));
  Alcotest.(check bool) "is_host" true (Loc.is_host (Loc.Host a));
  Alcotest.(check bool) "nic not host" false (Loc.is_host (Loc.Nic a))

(* ------------------------------------------------------------------ *)
(* Rdma                                                                *)
(* ------------------------------------------------------------------ *)

let test_rdma_host_nic_crosses_pcie () =
  (* Fetching 4 MB host -> NIC should take ~1 ms (Figure 5 fetch). *)
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Host a) ~dst:(Loc.Nic a) (4 * 1024 * 1024);
        Engine.now () - t0)
  in
  check_between "4MB over PCIe" (Time.us 900) (Time.us 1200) elapsed

let test_rdma_same_location_free () =
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic a) (1024 * 1024);
        Engine.now () - t0)
  in
  Alcotest.(check int) "no charge" 0 elapsed

let test_rdma_cross_node_network_bound () =
  (* 22 MB NIC-to-NIC is ~10 ms at 2.2 GB/s goodput. *)
  let a, b = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic b) (22 * 1024 * 1024);
        Engine.now () - t0)
  in
  check_between "cross-node" (Time.ms 10) (Time.ms 11) elapsed

let test_rdma_pm_charges_device_time () =
  let a, b = two_nodes () in
  let before = Hw.Pm.bytes_written b.Hw.Node.pm in
  run_sim (fun () ->
      Rdma.move ~dst_medium:`Pm ~src:(Loc.Nic a) ~dst:(Loc.Host b) 4096);
  Alcotest.(check int) "pm written" (before + 4096)
    (Hw.Pm.bytes_written b.Hw.Node.pm)

let test_rdma_estimate_close_to_actual () =
  let a, b = two_nodes () in
  let est = Rdma.move_time_estimate ~src:(Loc.Nic a) ~dst:(Loc.Nic b) 1_000_000 in
  let actual =
    run_sim (fun () ->
        let t0 = Engine.now () in
        Rdma.move ~src:(Loc.Nic a) ~dst:(Loc.Nic b) 1_000_000;
        Engine.now () - t0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %s ~ actual %s" (Time.to_string est)
       (Time.to_string actual))
    true
    (abs (est - actual) < actual / 5)

(* ------------------------------------------------------------------ *)
(* Rpc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rpc_busy_poll_low_latency () =
  let a, _ = two_nodes () in
  let elapsed =
    run_sim (fun () ->
        let srv =
          Rpc.create ~name:"echo" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
            ~handler:(fun x -> x + 1)
            ()
        in
        let t0 = Engine.now () in
        let r = Rpc.call srv ~from:(Loc.Host a) 41 in
        Alcotest.(check int) "result" 42 r;
        Engine.now () - t0)
  in
  (* Two PCIe crossings plus poll granularity: ~5-10 us. *)
  check_between "busy-poll RTT" (Time.us 3) (Time.us 15) elapsed

let test_rpc_busy_poll_reserves_core () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let nic_pool = Hw.Smartnic.cpu a.Hw.Node.nic in
      let before = Hw.Cpu.available nic_pool in
      let _srv =
        Rpc.create ~name:"spin" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
          ~handler:(fun () -> ())
          ()
      in
      Alcotest.(check int) "one core consumed" (before - 1)
        (Hw.Cpu.available nic_pool))

let test_rpc_event_pays_dispatch () =
  let a, _ = two_nodes () in
  let busy_poll_t, event_t =
    run_sim (fun () ->
        let bp =
          Rpc.create ~name:"bp" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
            ~handler:(fun () -> ())
            ()
        in
        let ev =
          Rpc.create ~name:"ev" ~loc:(Loc.Nic a)
            ~kind:(Rpc.Event { workers = 2; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () -> ())
            ()
        in
        let time f =
          let t0 = Engine.now () in
          f ();
          Engine.now () - t0
        in
        ( time (fun () -> Rpc.call bp ~from:(Loc.Host a) ()),
          time (fun () -> Rpc.call ev ~from:(Loc.Host a) ()) ))
  in
  Alcotest.(check bool)
    (Printf.sprintf "event (%s) slower than busy-poll (%s)"
       (Time.to_string event_t) (Time.to_string busy_poll_t))
    true
    (event_t > busy_poll_t)

let test_rpc_concurrent_calls_all_served () =
  let a, b = two_nodes () in
  let served =
    run_sim (fun () ->
        let count = ref 0 in
        let srv =
          Rpc.create ~name:"ctr" ~loc:(Loc.Nic b)
            ~kind:(Rpc.Event { workers = 4; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () -> incr count)
            ()
        in
        let live = ref 20 in
        let don = Ivar.create () in
        for _ = 1 to 20 do
          Engine.spawn (fun () ->
              Rpc.call srv ~from:(Loc.Nic a) ();
              decr live;
              if !live = 0 then Ivar.fill don ())
        done;
        Ivar.read don;
        !count)
  in
  Alcotest.(check int) "all served" 20 served

let test_rpc_post_does_not_wait () =
  let a, _ = two_nodes () in
  let elapsed, handled =
    run_sim (fun () ->
        let handled = ref false in
        let srv =
          Rpc.create ~name:"slow" ~loc:(Loc.Nic a)
            ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
            ~handler:(fun () ->
              Engine.sleep (Time.ms 5);
              handled := true)
            ()
        in
        let t0 = Engine.now () in
        Rpc.post srv ~from:(Loc.Host a) ();
        let e = Engine.now () - t0 in
        Engine.sleep (Time.ms 10);
        (e, !handled))
  in
  Alcotest.(check bool) "post returns early" true (elapsed < Time.ms 1);
  Alcotest.(check bool) "handler eventually ran" true handled

let test_rpc_queue_length () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let release = Cond.create () in
      let srv =
        Rpc.create ~name:"gate" ~loc:(Loc.Nic a)
          ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
          ~handler:(fun () -> Cond.await release)
          ()
      in
      for _ = 1 to 5 do
        Rpc.post srv ~from:(Loc.Host a) ()
      done;
      Engine.sleep (Time.ms 1);
      (* One message is being handled; the rest wait. *)
      Alcotest.(check int) "queued" 4 (Rpc.queue_length srv);
      Cond.broadcast release;
      for _ = 1 to 5 do
        Cond.broadcast release;
        Engine.sleep (Time.ms 1)
      done)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_series () =
  let p = Backoff.make ~base:(Time.us 100) ~factor:2.0 ~cap:(Time.us 500) () in
  Alcotest.(check int) "attempt 0" (Time.us 100) (Backoff.delay p ~attempt:0);
  Alcotest.(check int) "attempt 1" (Time.us 200) (Backoff.delay p ~attempt:1);
  Alcotest.(check int) "attempt 2" (Time.us 400) (Backoff.delay p ~attempt:2);
  Alcotest.(check int) "attempt 3 capped" (Time.us 500)
    (Backoff.delay p ~attempt:3);
  (* The cap also bounds arbitrarily large attempt counts without
     overflowing. *)
  Alcotest.(check int) "attempt 60 capped" (Time.us 500)
    (Backoff.delay p ~attempt:60);
  Alcotest.(check bool) "negative attempt raises" true
    (try
       ignore (Backoff.delay p ~attempt:(-1) : Time.t);
       false
     with _ -> true)

let test_backoff_default_bounds () =
  let p = Backoff.default in
  Alcotest.(check bool) "base positive" true (Backoff.delay p ~attempt:0 > 0);
  Alcotest.(check bool) "monotone" true
    (Backoff.delay p ~attempt:1 >= Backoff.delay p ~attempt:0);
  Alcotest.(check int) "cap reached" p.Backoff.cap
    (Backoff.delay p ~attempt:20)

(* ------------------------------------------------------------------ *)
(* call_timeout / call_retry                                           *)
(* ------------------------------------------------------------------ *)

let test_call_timeout_fault_free_passthrough () =
  (* Without fault injection, call_timeout/call_retry behave exactly
     like call: same answer, no timer-induced delay differences. *)
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let srv =
        Rpc.create ~name:"echo" ~loc:(Loc.Nic a) ~kind:Rpc.Busy_poll
          ~handler:(fun x -> x * 2)
          ()
      in
      let t0 = Engine.now () in
      let plain = Rpc.call srv ~from:(Loc.Host a) 21 in
      let t_plain = Engine.now () - t0 in
      let t1 = Engine.now () in
      let timed = Rpc.call_timeout srv ~from:(Loc.Host a) ~timeout:(Time.ms 1) 21 in
      let t_timed = Engine.now () - t1 in
      let retried = Rpc.call_retry srv ~from:(Loc.Host a) 21 in
      Alcotest.(check int) "plain" 42 plain;
      Alcotest.(check (option int)) "timed" (Some 42) timed;
      Alcotest.(check (option int)) "retried" (Some 42) retried;
      Alcotest.(check int) "same latency" t_plain t_timed)

(* ------------------------------------------------------------------ *)
(* Byzantine verdicts: idempotent RPC under duplication, reordering    *)
(* and corruption                                                      *)
(* ------------------------------------------------------------------ *)

(* A scripted injection hook: inter-node RPC sends consume verdicts in
   order (then pass); RDMA moves and intra-node traffic always pass. *)
let with_script verdicts f =
  let remaining = ref verdicts in
  Inject.set (fun ~point ~src ~dst ~bytes:_ ->
      match point with
      | Inject.Rdma_move -> Inject.Pass
      | Inject.Rpc_call | Inject.Rpc_post -> (
          if Loc.same_node src dst then Inject.Pass
          else
            match !remaining with
            | [] -> Inject.Pass
            | v :: rest ->
                remaining := rest;
                v));
  Fun.protect ~finally:Inject.clear f

let event_kind = Rpc.Event { workers = 2; prio = Hw.Cpu.prio_normal }

let test_rpc_duplicate_executes_once () =
  (* A fabric-duplicated call reaches the server twice with the same
     per-caller sequence number: the handler runs once, the dedup cache
     absorbs the copy, and the caller still gets its reply. *)
  let a, b = two_nodes () in
  Counters.reset ();
  run_sim (fun () ->
      with_script [ Inject.Duplicate ] (fun () ->
          let count = ref 0 in
          let srv =
            Rpc.create ~name:"dup" ~loc:(Loc.Nic b) ~kind:event_kind
              ~handler:(fun x ->
                incr count;
                x + 1)
              ()
          in
          let r = Rpc.call srv ~from:(Loc.Nic a) 1 in
          Alcotest.(check int) "reply" 2 r;
          Engine.sleep (Time.ms 1);
          Alcotest.(check int) "handler ran once" 1 !count;
          Alcotest.(check bool) "dedup hit recorded" true
            (Counters.get "rpc.dedup-hit" >= 1)))

let test_rpc_corrupt_frame_nacked_then_retried () =
  (* A corrupted frame is discarded without touching the handler (the
     CRC trailer / link FCS catches it); call_retry's next attempt gets
     through. *)
  let a, b = two_nodes () in
  Counters.reset ();
  run_sim (fun () ->
      with_script [ Inject.Corrupt { offset = 3; xor = 0x40 } ] (fun () ->
          let count = ref 0 in
          let srv =
            Rpc.create ~name:"crc" ~loc:(Loc.Nic b) ~kind:event_kind
              ~integrity:(fun x -> Some (Int32.of_int x))
              ~handler:(fun x ->
                incr count;
                x * 2)
              ()
          in
          let policy =
            Backoff.make ~base:(Time.us 200) ~factor:2.0 ~cap:(Time.ms 1) ()
          in
          let r = Rpc.call_retry srv ~from:(Loc.Nic a) ~policy 21 in
          Alcotest.(check (option int)) "retry delivered" (Some 42) r;
          Alcotest.(check int) "handler ran once" 1 !count;
          Alcotest.(check int) "frame NACKed" 1
            (Counters.get "net.corrupt-frame");
          Alcotest.(check bool) "retransmit recorded" true
            (Counters.get "net.retransmit" >= 1)))

let test_rpc_reorder_post_overtaken () =
  (* A reordered one-way post is held back while a later post overtakes
     it; both are delivered. *)
  let a, b = two_nodes () in
  run_sim (fun () ->
      with_script [ Inject.Reorder (Time.us 100) ] (fun () ->
          let order = ref [] in
          let srv =
            Rpc.create ~name:"ord" ~loc:(Loc.Nic b)
              ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
              ~handler:(fun x -> order := x :: !order)
              ()
          in
          Rpc.post srv ~from:(Loc.Nic a) 1;
          Rpc.post srv ~from:(Loc.Nic a) 2;
          Engine.sleep (Time.ms 1);
          Alcotest.(check (list int)) "second post overtook the first"
            [ 1; 2 ] !order))

let test_call_retry_deadline_ladder_capped () =
  (* Under persistent loss the per-attempt timeout ladder is the
     backoff: attempts wait base, base*2, then the cap — so the total
     deadline for n attempts is bounded by the capped series, and the
     caller learns about the failure at a predictable instant. *)
  let a, b = two_nodes () in
  Counters.reset ();
  run_sim (fun () ->
      with_script [ Inject.Drop; Inject.Drop; Inject.Drop; Inject.Drop ]
        (fun () ->
          let srv =
            Rpc.create ~name:"gone" ~loc:(Loc.Nic b) ~kind:event_kind
              ~handler:(fun () -> ())
              ()
          in
          let policy =
            Backoff.make ~base:(Time.us 100) ~factor:2.0 ~cap:(Time.us 400) ()
          in
          let t0 = Engine.now () in
          let r =
            Rpc.call_retry srv ~from:(Loc.Nic a) ~policy ~attempts:4 ()
          in
          let waited = Engine.now () - t0 in
          Alcotest.(check (option unit)) "gave up" None r;
          (* 100 + 200 + 400 + 400 us of timeouts, plus wire time. *)
          check_between "capped ladder" (Time.us 1100) (Time.us 1400) waited;
          Alcotest.(check int) "every attempt retransmitted" 4
            (Counters.get "net.retransmit")))

let test_call_retry_exactly_once_under_duplicate_and_reorder () =
  (* Back-to-back logical requests through a fabric that duplicates one
     and reorders another: every request executes exactly once and
     every caller gets exactly one reply. *)
  let a, b = two_nodes () in
  Counters.reset ();
  run_sim (fun () ->
      with_script
        [ Inject.Duplicate; Inject.Reorder (Time.us 50); Inject.Duplicate ]
        (fun () ->
          let count = ref 0 in
          let srv =
            Rpc.create ~name:"once" ~loc:(Loc.Nic b) ~kind:event_kind
              ~handler:(fun x ->
                incr count;
                x)
              ()
          in
          for i = 1 to 3 do
            Alcotest.(check (option int))
              (Printf.sprintf "reply %d" i)
              (Some i)
              (Rpc.call_retry srv ~from:(Loc.Nic a) i)
          done;
          Engine.sleep (Time.ms 1);
          Alcotest.(check int) "each logical request executed once" 3 !count))

let test_call_timeout_gives_up_on_slow_handler () =
  let a, _ = two_nodes () in
  run_sim (fun () ->
      let srv =
        Rpc.create ~name:"slow" ~loc:(Loc.Nic a)
          ~kind:(Rpc.Event { workers = 1; prio = Hw.Cpu.prio_normal })
          ~handler:(fun () -> Engine.sleep (Time.ms 20))
          ()
      in
      let t0 = Engine.now () in
      let r = Rpc.call_timeout srv ~from:(Loc.Host a) ~timeout:(Time.ms 2) () in
      let waited = Engine.now () - t0 in
      Alcotest.(check (option unit)) "timed out" None r;
      check_between "gave up at the deadline" (Time.ms 2) (Time.ms 3) waited;
      (* Let the abandoned handler finish so the simulation quiesces. *)
      Engine.sleep (Time.ms 25))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "net"
    [
      ("loc", [ tc "predicates" `Quick test_loc_predicates ]);
      ( "rdma",
        [
          tc "host-nic crosses pcie" `Quick test_rdma_host_nic_crosses_pcie;
          tc "same location free" `Quick test_rdma_same_location_free;
          tc "cross-node network bound" `Quick test_rdma_cross_node_network_bound;
          tc "pm device charged" `Quick test_rdma_pm_charges_device_time;
          tc "estimate close to actual" `Quick test_rdma_estimate_close_to_actual;
        ] );
      ( "rpc",
        [
          tc "busy poll low latency" `Quick test_rpc_busy_poll_low_latency;
          tc "busy poll reserves core" `Quick test_rpc_busy_poll_reserves_core;
          tc "event pays dispatch" `Quick test_rpc_event_pays_dispatch;
          tc "concurrent calls served" `Quick test_rpc_concurrent_calls_all_served;
          tc "post does not wait" `Quick test_rpc_post_does_not_wait;
          tc "queue length" `Quick test_rpc_queue_length;
        ] );
      ( "backoff",
        [
          tc "capped exponential series" `Quick test_backoff_series;
          tc "default bounds" `Quick test_backoff_default_bounds;
        ] );
      ( "retry",
        [
          tc "fault-free passthrough" `Quick
            test_call_timeout_fault_free_passthrough;
          tc "timeout on slow handler" `Quick
            test_call_timeout_gives_up_on_slow_handler;
        ] );
      ( "byzantine",
        [
          tc "duplicate executes once" `Quick test_rpc_duplicate_executes_once;
          tc "corrupt frame nacked then retried" `Quick
            test_rpc_corrupt_frame_nacked_then_retried;
          tc "reordered post overtaken" `Quick test_rpc_reorder_post_overtaken;
          tc "retry deadline ladder capped" `Quick
            test_call_retry_deadline_ladder_capped;
          tc "exactly once under duplicate and reorder" `Quick
            test_call_retry_exactly_once_under_duplicate_and_reorder;
        ] );
    ]
