(* Tests for the storage substrate: payloads, CRC, extent maps, the
   operational log and the public FS state. *)

open Storage

let data_bytes = Alcotest.testable Data.pp Data.equal

(* ------------------------------------------------------------------ *)
(* Data                                                                *)
(* ------------------------------------------------------------------ *)

let test_data_real_roundtrip () =
  let d = Data.of_string "hello world" in
  Alcotest.(check int) "length" 11 (Data.length d);
  Alcotest.(check string) "content" "hello world"
    (Bytes.to_string (Data.to_bytes d))

let test_data_sub_content () =
  let d = Data.of_string "abcdefgh" in
  let s = Data.sub d ~pos:2 ~len:3 in
  Alcotest.(check string) "slice" "cde" (Bytes.to_string (Data.to_bytes s))

let test_data_synthetic_stable_slicing () =
  (* A slice of synthetic data equals the same range of the parent. *)
  let d = Data.synthetic ~seed:7 ~len:1000 in
  let s = Data.sub d ~pos:123 ~len:100 in
  let full = Data.to_bytes d in
  Alcotest.(check string)
    "slice matches parent range"
    (Bytes.sub_string full 123 100)
    (Bytes.to_string (Data.to_bytes s))

let test_data_synthetic_deterministic () =
  let a = Data.synthetic ~seed:9 ~len:64 in
  let b = Data.synthetic ~seed:9 ~len:64 in
  Alcotest.check data_bytes "same seed same content" a b;
  let c = Data.synthetic ~seed:10 ~len:64 in
  Alcotest.(check bool) "different seed differs" false (Data.equal a c)

let test_data_zero () =
  let z = Data.zero ~len:16 in
  Alcotest.(check string) "all zeros"
    (String.make 16 '\000')
    (Bytes.to_string (Data.to_bytes z));
  Alcotest.(check char) "get" '\000' (Data.get z 5)

let test_data_concat_rejoins_synth () =
  let d = Data.synthetic ~seed:3 ~len:100 in
  let a = Data.sub d ~pos:0 ~len:40 in
  let b = Data.sub d ~pos:40 ~len:60 in
  let joined = Data.concat [ a; b ] in
  Alcotest.(check bool) "rejoined without materializing" false
    (Data.is_real joined);
  Alcotest.check data_bytes "content preserved" d joined

let test_data_concat_mixed () =
  let joined =
    Data.concat [ Data.of_string "ab"; Data.zero ~len:2; Data.of_string "cd" ]
  in
  Alcotest.(check string) "mixed concat" "ab\000\000cd"
    (Bytes.to_string (Data.to_bytes joined))

let test_data_sub_out_of_bounds () =
  let d = Data.of_string "xyz" in
  match Data.sub d ~pos:2 ~len:5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_data_fill_ratio () =
  let rng = Sim.Rng.create 11 in
  let d = Data.fill_ratio (Data.zero ~len:100_000) ~zeros:0.8 ~rng in
  let b = Data.to_bytes d in
  let zeros = ref 0 in
  Bytes.iter (fun c -> if c = '\000' then incr zeros) b;
  let frac = float_of_int !zeros /. 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "zero fraction ~0.8 (got %.3f)" frac)
    true
    (frac > 0.78 && frac < 0.82)

let prop_data_sub_of_sub =
  QCheck.Test.make ~name:"nested slices compose" ~count:200
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let total = a + b + c + 10 in
      let d = Data.synthetic ~seed:1 ~len:total in
      let s1 = Data.sub d ~pos:a ~len:(b + c + 10) in
      let s2 = Data.sub s1 ~pos:b ~len:c in
      let direct = Data.sub d ~pos:(a + b) ~len:c in
      Data.equal s2 direct)

(* -- rope model properties: random payload trees vs flat bytes -------- *)

(* Generator for arbitrary payloads alongside a naive flat-bytes
   reference: leaves are Real/Synth/Zero, inner nodes concatenate, and
   every subtree may be wrapped in a random [sub]. *)
let gen_data_model =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        ( 3,
          map
            (fun s -> (Data.of_string s, Bytes.of_string s))
            (string_size ~gen:printable (0 -- 40)) );
        ( 3,
          map2
            (fun seed len ->
              let d = Data.synthetic ~seed ~len in
              (d, Data.to_bytes d))
            (1 -- 1000) (0 -- 64) );
        (2, map (fun len -> (Data.zero ~len, Bytes.make len '\000')) (0 -- 64));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            list_size (0 -- 4) (node (depth - 1)) >>= fun parts ->
            let d = Data.concat (List.map fst parts) in
            let b = Bytes.concat Bytes.empty (List.map snd parts) in
            return (d, b) );
          ( 1,
            node (depth - 1) >>= fun (d, b) ->
            let n = Data.length d in
            0 -- n >>= fun pos ->
            0 -- (n - pos) >>= fun len ->
            return (Data.sub d ~pos ~len, Bytes.sub b pos len) );
        ]
  in
  node 3

let arb_data_model =
  QCheck.make gen_data_model ~print:(fun (d, b) ->
      Format.asprintf "%a (ref %d bytes)" Data.pp d (Bytes.length b))

let prop_rope_matches_bytes_model =
  QCheck.Test.make ~name:"rope to_bytes/get/length match flat model" ~count:300
    arb_data_model (fun (d, b) ->
      Data.length d = Bytes.length b
      && Data.to_bytes d = b
      && (Bytes.length b = 0
         || Data.get d (Bytes.length b / 2) = Bytes.get b (Bytes.length b / 2)))

let prop_rope_iter_slices_covers =
  QCheck.Test.make ~name:"iter_slices reassembles the payload in order"
    ~count:300 arb_data_model (fun (d, b) ->
      let buf = Buffer.create 64 in
      Data.iter_slices d (fun s ->
          let n = Data.slice_length s in
          let tmp = Bytes.create n in
          Data.blit_slice s ~src_pos:0 ~dst:tmp ~dst_pos:0 ~len:n;
          Buffer.add_bytes buf tmp);
      Buffer.to_bytes buf = b)

let prop_rope_blit_to =
  QCheck.Test.make ~name:"blit_to writes exactly the requested range"
    ~count:300
    QCheck.(pair arb_data_model (pair small_nat small_nat))
    (fun ((d, b), (p, l)) ->
      let n = Bytes.length b in
      let src_pos = if n = 0 then 0 else p mod (n + 1) in
      let len = min l (n - src_pos) in
      let dst = Bytes.make (len + 8) '\xAA' in
      Data.blit_to d ~src_pos ~dst ~dst_pos:4 ~len;
      Bytes.sub dst 4 len = Bytes.sub b src_pos len
      && Bytes.sub_string dst 0 4 = "\xAA\xAA\xAA\xAA"
      && Bytes.sub_string dst (4 + len) 4 = "\xAA\xAA\xAA\xAA")

let prop_rope_sub_matches_model =
  QCheck.Test.make ~name:"rope sub matches flat model sub" ~count:300
    QCheck.(pair arb_data_model (pair small_nat small_nat))
    (fun ((d, b), (p, l)) ->
      let n = Bytes.length b in
      let pos = if n = 0 then 0 else p mod (n + 1) in
      let len = min l (n - pos) in
      Data.to_bytes (Data.sub d ~pos ~len) = Bytes.sub b pos len)

let prop_rope_equal_agrees_with_model =
  QCheck.Test.make ~name:"Data.equal agrees with flat-bytes equality"
    ~count:300
    QCheck.(pair arb_data_model arb_data_model)
    (fun ((d1, b1), (d2, b2)) -> Data.equal d1 d2 = (b1 = b2))

let prop_rope_concat_is_flat =
  QCheck.Test.make ~name:"concat never nests Cat nodes" ~count:200
    QCheck.(list_of_size Gen.(0 -- 6) arb_data_model)
    (fun parts ->
      let d = Data.concat (List.map fst parts) in
      (* leaf_count counts leaves; a flat rope's slice walk emits
         exactly that many slices (0 for empty). *)
      let slices = ref 0 in
      Data.iter_slices d (fun _ -> incr slices);
      !slices = Data.leaf_count d
      || (Data.length d = 0 && !slices = 0))

(* ------------------------------------------------------------------ *)
(* Crc32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_known_vector () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.string "123456789")

let test_crc32_empty () =
  Alcotest.(check int32) "empty" 0l (Crc32.string "")

let test_crc32_incremental_composes () =
  let whole = Crc32.string "hello world" in
  let part1 = Crc32.update 0l (Bytes.of_string "hello ") ~pos:0 ~len:6 in
  let combined = Crc32.update part1 (Bytes.of_string "world") ~pos:0 ~len:5 in
  Alcotest.(check int32) "streaming equals whole" whole combined

let prop_crc32_detects_flip =
  QCheck.Test.make ~name:"crc32 detects single byte flips" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 100)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let orig = Crc32.string s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x42));
      Crc32.bytes b <> orig)

(* Reference oracle: the pre-streaming [Crc32.data] walked the payload
   in 8 KB sub+to_bytes chunks.  Kept here verbatim so the slice-aware
   path is checked against the historical behaviour. *)
let legacy_crc_data d =
  let chunk = 8192 in
  let len = Data.length d in
  let crc = ref 0l in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    let b = Data.to_bytes (Data.sub d ~pos:!pos ~len:n) in
    crc := Crc32.update !crc b ~pos:0 ~len:n;
    pos := !pos + n
  done;
  !crc

let prop_crc32_data_matches_legacy =
  QCheck.Test.make ~name:"slice-aware Crc32.data matches chunked legacy oracle"
    ~count:300 arb_data_model (fun (d, b) ->
      let streamed = Crc32.data d in
      streamed = legacy_crc_data d && streamed = Crc32.bytes b)

let prop_crc32_combine_law =
  QCheck.Test.make ~name:"combine (crc a) (crc b) |b| = crc (a ++ b)"
    ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (string_of_size Gen.(0 -- 80)))
    (fun (a, b) ->
      Crc32.combine (Crc32.string a) (Crc32.string b) (String.length b)
      = Crc32.string (a ^ b))

let prop_crc32_combine_zero_run =
  (* Same law where B is a zero run, across the table-loop/matrix
     threshold and up into multi-megabyte runs. *)
  QCheck.Test.make ~name:"combine law holds for zero runs (update_zeros)"
    ~count:60
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (int_bound 21))
    (fun (a, log_n) ->
      let n = (1 lsl log_n) + (log_n mod 3) in
      let ca = Crc32.string a in
      let via_update = Crc32.update_zeros ca n in
      let via_combine = Crc32.combine ca (Crc32.update_zeros 0l n) n in
      let reference =
        Crc32.update ca (Bytes.make n '\000') ~pos:0 ~len:n
      in
      via_update = reference && via_combine = reference)

let prop_crc32_update_synth =
  QCheck.Test.make ~name:"update_synth equals materialized synthetic crc"
    ~count:200
    QCheck.(triple (int_range 1 500) (int_bound 50) (int_bound 200))
    (fun (seed, off, len) ->
      let materialized = Bytes.create len in
      Data.synth_blit ~seed ~off materialized ~pos:0 ~len;
      Crc32.update_synth 0xDEADBEEFl ~seed ~off ~len
      = Crc32.update 0xDEADBEEFl materialized ~pos:0 ~len)

(* ------------------------------------------------------------------ *)
(* Extent_map                                                          *)
(* ------------------------------------------------------------------ *)

let read_string m ~pos ~len =
  Extent_map.read_range m ~pos ~len
  |> List.map (function
       | `Data d -> Bytes.to_string (Data.to_bytes d)
       | `Hole n -> String.make n '.')
  |> String.concat ""

let test_extent_insert_and_read () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "aaaa") 1;
  Extent_map.insert m ~at:8 (Data.of_string "bbbb") 2;
  Alcotest.(check string) "with hole" "aaaa....bbbb" (read_string m ~pos:0 ~len:12)

let test_extent_overwrite_splits () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "aaaaaaaaaa") 1;
  Extent_map.insert m ~at:3 (Data.of_string "BBBB") 2;
  Alcotest.(check string) "middle overwrite" "aaaBBBBaaa"
    (read_string m ~pos:0 ~len:10);
  Alcotest.(check int) "three segments" 3 (Extent_map.cardinal m)

let test_extent_overwrite_exact () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "xxxx") 1;
  Extent_map.insert m ~at:0 (Data.of_string "yyyy") 2;
  Alcotest.(check string) "replaced" "yyyy" (read_string m ~pos:0 ~len:4);
  Alcotest.(check int) "one segment" 1 (Extent_map.cardinal m)

let test_extent_overwrite_spanning () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "aaa") 1;
  Extent_map.insert m ~at:3 (Data.of_string "bbb") 2;
  Extent_map.insert m ~at:6 (Data.of_string "ccc") 3;
  Extent_map.insert m ~at:2 (Data.of_string "ZZZZZ") 4;
  Alcotest.(check string) "spanning overwrite" "aaZZZZZcc"
    (read_string m ~pos:0 ~len:9)

let test_extent_find () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:10 (Data.of_string "hello") 42;
  (match Extent_map.find m 12 with
  | Some seg ->
      Alcotest.(check int) "segment start" 10 seg.Extent_map.start;
      Alcotest.(check int) "tag" 42 seg.Extent_map.tag
  | None -> Alcotest.fail "expected a segment");
  Alcotest.(check bool) "miss before" true (Extent_map.find m 9 = None);
  Alcotest.(check bool) "miss after" true (Extent_map.find m 15 = None)

let test_extent_remove_range () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "abcdefgh") 1;
  Extent_map.remove_range m ~pos:2 ~len:4;
  Alcotest.(check string) "carved" "ab....gh" (read_string m ~pos:0 ~len:8)

let test_extent_remove_if () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "aa") 1;
  Extent_map.insert m ~at:2 (Data.of_string "bb") 2;
  Extent_map.insert m ~at:4 (Data.of_string "cc") 3;
  Extent_map.remove_if m (fun tag -> tag <= 2);
  Alcotest.(check string) "only tag 3 left" "....cc" (read_string m ~pos:0 ~len:6)

let test_extent_accounting () =
  let m = Extent_map.create () in
  Extent_map.insert m ~at:0 (Data.of_string "aaaa") 1;
  Extent_map.insert m ~at:2 (Data.of_string "bb") 2;
  Alcotest.(check int) "mapped bytes" 4 (Extent_map.mapped_bytes m);
  Alcotest.(check int) "end offset" 4 (Extent_map.end_offset m)

(* Model-based property: an extent map behaves like a byte array with
   last-writer-wins semantics. *)
let prop_extent_model =
  let gen =
    QCheck.(
      list_of_size
        Gen.(1 -- 30)
        (pair (int_bound 200) (int_range 1 50)))
  in
  QCheck.Test.make ~name:"extent map matches flat-array model" ~count:300 gen
    (fun writes ->
      let size = 300 in
      let model = Bytes.make size '.' in
      let m = Extent_map.create () in
      List.iteri
        (fun i (at, len) ->
          let ch = Char.chr (Char.code 'a' + (i mod 26)) in
          let content = String.make len ch in
          if at + len <= size then begin
            Bytes.blit_string content 0 model at len;
            Extent_map.insert m ~at (Data.of_string content) i
          end)
        writes;
      read_string m ~pos:0 ~len:size = Bytes.to_string model)

(* Stronger model property: random inserts, range removals and
   per-offset lookups against a naive per-byte model.  Checks both the
   content (read_range) and the ownership tags (find), i.e. that
   segment splitting never mixes up which write owns which byte. *)
let prop_extent_model_ops =
  let gen =
    QCheck.(
      list_of_size
        Gen.(1 -- 40)
        (triple bool (int_bound 200) (int_range 1 50)))
  in
  QCheck.Test.make ~name:"extent map insert/remove/find matches model"
    ~count:300 gen (fun ops ->
      let size = 300 in
      let model = Array.make size None in
      let m = Extent_map.create () in
      List.iteri
        (fun i (ins, at, len) ->
          if at + len <= size then
            if ins then begin
              let ch = Char.chr (Char.code 'a' + (i mod 26)) in
              Extent_map.insert m ~at (Data.of_string (String.make len ch)) i;
              for j = at to at + len - 1 do
                model.(j) <- Some (ch, i)
              done
            end
            else begin
              Extent_map.remove_range m ~pos:at ~len;
              for j = at to at + len - 1 do
                model.(j) <- None
              done
            end)
        ops;
      let content_ok =
        read_string m ~pos:0 ~len:size
        = String.init size (fun j ->
              match model.(j) with Some (c, _) -> c | None -> '.')
      in
      let finds_ok = ref true in
      for j = 0 to size - 1 do
        match (Extent_map.find m j, model.(j)) with
        | Some seg, Some (_, tag) ->
            if seg.Extent_map.tag <> tag then finds_ok := false
        | None, None -> ()
        | _ -> finds_ok := false
      done;
      content_ok && !finds_ok)

(* ------------------------------------------------------------------ *)
(* Oplog                                                               *)
(* ------------------------------------------------------------------ *)

let sample_ops =
  [
    Oplog.Create { parent = 1; name = "f"; inum = 2; dir = false };
    Oplog.Create { parent = 1; name = "d"; inum = 3; dir = true };
    Oplog.Write { inum = 2; offset = 0; data = Data.of_string "payload" };
    Oplog.Unlink { parent = 1; name = "f"; inum = 2 };
    Oplog.Rename
      {
        src_parent = 1;
        src_name = "d";
        dst_parent = 1;
        dst_name = "e";
        inum = 3;
      };
    Oplog.Truncate { inum = 2; size = 3 };
  ]

let test_oplog_serialize_roundtrip () =
  List.iteri
    (fun i op ->
      let e = Oplog.make ~seq:(i + 1) ~client:5 op in
      match Oplog.deserialize (Oplog.serialize e) with
      | Ok e' ->
          Alcotest.(check int) "seq" e.Oplog.seq e'.Oplog.seq;
          Alcotest.(check int) "client" 5 e'.Oplog.client;
          Alcotest.(check string) "op"
            (Format.asprintf "%a" Oplog.pp_op e.Oplog.op)
            (Format.asprintf "%a" Oplog.pp_op e'.Oplog.op)
      | Error msg -> Alcotest.failf "roundtrip failed: %s" msg)
    sample_ops

let test_oplog_crc_detects_corruption () =
  let e =
    Oplog.make ~seq:1 ~client:0
      (Oplog.Write { inum = 2; offset = 0; data = Data.of_string "secret" })
  in
  let buf = Oplog.serialize e in
  (* Flip a byte inside the payload (the tail before the trailing crc). *)
  let pos = Bytes.length buf - 6 in
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0xFF));
  match Oplog.deserialize buf with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_oplog_check () =
  let e =
    Oplog.make ~seq:1 ~client:0
      (Oplog.Create { parent = 1; name = "a"; inum = 9; dir = false })
  in
  Alcotest.(check bool) "fresh entry validates" true (Oplog.check e);
  let tampered = { e with Oplog.seq = 99 } in
  Alcotest.(check bool) "tampered entry fails" false (Oplog.check tampered)

let test_oplog_sizes () =
  let meta = Oplog.make ~seq:1 ~client:0
      (Oplog.Create { parent = 1; name = "a"; inum = 2; dir = false })
  in
  let data =
    Oplog.make ~seq:2 ~client:0
      (Oplog.Write { inum = 2; offset = 0; data = Data.zero ~len:4096 })
  in
  Alcotest.(check bool) "metadata entries are small" true (Oplog.size meta < 100);
  Alcotest.(check bool) "write entries carry payload" true
    (Oplog.size data > 4096);
  Alcotest.(check int) "payload size" 4096 (Oplog.payload_size data.Oplog.op);
  Alcotest.(check bool) "is_metadata" true (Oplog.is_metadata meta.Oplog.op);
  Alcotest.(check bool) "write not metadata" false
    (Oplog.is_metadata data.Oplog.op)

let test_oplog_touches () =
  Alcotest.(check (list int))
    "create touches parent+inum" [ 1; 2 ]
    (Oplog.touches (Oplog.Create { parent = 1; name = "x"; inum = 2; dir = false }));
  Alcotest.(check (list int))
    "cross-dir rename touches three" [ 4; 5; 6 ]
    (Oplog.touches
       (Oplog.Rename
          { src_parent = 4; src_name = "a"; dst_parent = 5; dst_name = "b"; inum = 6 }))

let mklog ?(capacity = 1 lsl 20) () = Oplog.Log.create ~capacity ()

let append_writes log ~client ~n ~len =
  for i = 1 to n do
    let e =
      Oplog.make ~seq:i ~client
        (Oplog.Write { inum = 2; offset = (i - 1) * len; data = Data.zero ~len })
    in
    match Oplog.Log.append log e with
    | Ok () -> ()
    | Error `Full -> Alcotest.failf "log full at %d" i
  done

let test_log_append_and_cursors () =
  let log = mklog () in
  Alcotest.(check int) "empty last" 0 (Oplog.Log.last_seq log);
  Alcotest.(check int) "empty head" 1 (Oplog.Log.head_seq log);
  append_writes log ~client:0 ~n:10 ~len:100;
  Alcotest.(check int) "last" 10 (Oplog.Log.last_seq log);
  Alcotest.(check int) "head" 1 (Oplog.Log.head_seq log)

let test_log_capacity_enforced () =
  let log = mklog ~capacity:1000 () in
  let big =
    Oplog.make ~seq:1 ~client:0
      (Oplog.Write { inum = 2; offset = 0; data = Data.zero ~len:2000 })
  in
  match Oplog.Log.append log big with
  | Error `Full -> ()
  | Ok () -> Alcotest.fail "expected `Full"

let test_log_seq_monotonic () =
  let log = mklog () in
  let e = Oplog.make ~seq:5 ~client:0 (Oplog.Truncate { inum = 2; size = 0 }) in
  match Oplog.Log.append log e with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for seq gap"

let test_log_entries_from_respects_budget () =
  let log = mklog () in
  append_writes log ~client:0 ~n:10 ~len:1000;
  let batch = Oplog.Log.entries_from log ~seq:1 ~max_bytes:3500 in
  Alcotest.(check int) "three entries fit" 3 (List.length batch);
  (* Always returns at least one entry even if it exceeds the budget. *)
  let one = Oplog.Log.entries_from log ~seq:1 ~max_bytes:10 in
  Alcotest.(check int) "at least one" 1 (List.length one)

let test_log_reclaim () =
  let log = mklog () in
  append_writes log ~client:0 ~n:10 ~len:1000;
  let used_before = Oplog.Log.used_bytes log in
  let freed = Oplog.Log.reclaim_upto log ~seq:4 in
  Alcotest.(check bool) "freed bytes" true (freed > 0);
  Alcotest.(check int) "used shrank" (used_before - freed)
    (Oplog.Log.used_bytes log);
  Alcotest.(check int) "head moved" 5 (Oplog.Log.head_seq log);
  Alcotest.(check bool) "old entry gone" true
    (Oplog.Log.find log ~seq:3 = None);
  Alcotest.(check bool) "kept entry present" true
    (Oplog.Log.find log ~seq:7 <> None)

let prop_log_reclaim_conserves_bytes =
  QCheck.Test.make ~name:"log reclaim conserves byte accounting" ~count:100
    QCheck.(pair (int_range 1 50) (int_range 0 50))
    (fun (n, k) ->
      let log = mklog () in
      append_writes log ~client:0 ~n ~len:64;
      let before = Oplog.Log.used_bytes log in
      let freed = Oplog.Log.reclaim_upto log ~seq:(min n k) in
      Oplog.Log.used_bytes log + freed = before)

(* ------------------------------------------------------------------ *)
(* Fs_state                                                            *)
(* ------------------------------------------------------------------ *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Fs_state.error_to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (Fs_state.error_to_string expected)
  | Error e ->
      Alcotest.(check string)
        "error code"
        (Fs_state.error_to_string expected)
        (Fs_state.error_to_string e)

let create_file fs ~parent ~name =
  let inum = Fs_state.alloc_inum fs in
  ok (Fs_state.apply fs (Oplog.Create { parent; name; inum; dir = false }));
  inum

let create_dir fs ~parent ~name =
  let inum = Fs_state.alloc_inum fs in
  ok (Fs_state.apply fs (Oplog.Create { parent; name; inum; dir = true }));
  inum

let test_fs_create_and_resolve () =
  let fs = Fs_state.create () in
  let d = create_dir fs ~parent:Fs_state.root_inum ~name:"dir" in
  let f = create_file fs ~parent:d ~name:"file" in
  Alcotest.(check int) "resolve" f (ok (Fs_state.resolve fs "/dir/file"));
  expect_err Fs_state.Enoent (Fs_state.resolve fs "/dir/nope")

let test_fs_create_duplicate () =
  let fs = Fs_state.create () in
  let _ = create_file fs ~parent:Fs_state.root_inum ~name:"x" in
  let inum = Fs_state.alloc_inum fs in
  expect_err Fs_state.Eexist
    (Fs_state.apply fs
       (Oplog.Create { parent = Fs_state.root_inum; name = "x"; inum; dir = false }))

let test_fs_write_read_roundtrip () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  ok
    (Fs_state.apply fs
       (Oplog.Write { inum = f; offset = 0; data = Data.of_string "hello" }));
  ok
    (Fs_state.apply fs
       (Oplog.Write { inum = f; offset = 5; data = Data.of_string " world" }));
  let d = ok (Fs_state.read fs ~inum:f ~pos:0 ~len:100) in
  Alcotest.(check string) "content" "hello world"
    (Bytes.to_string (Data.to_bytes d));
  Alcotest.(check int) "size" 11 (Fs_state.file_size fs f)

let test_fs_sparse_read_zeros () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  ok
    (Fs_state.apply fs
       (Oplog.Write { inum = f; offset = 4; data = Data.of_string "data" }));
  let d = ok (Fs_state.read fs ~inum:f ~pos:0 ~len:8) in
  Alcotest.(check string) "hole reads zero" "\000\000\000\000data"
    (Bytes.to_string (Data.to_bytes d))

let test_fs_truncate () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  ok
    (Fs_state.apply fs
       (Oplog.Write { inum = f; offset = 0; data = Data.of_string "abcdef" }));
  ok (Fs_state.apply fs (Oplog.Truncate { inum = f; size = 3 }));
  Alcotest.(check int) "size" 3 (Fs_state.file_size fs f);
  let d = ok (Fs_state.read fs ~inum:f ~pos:0 ~len:100) in
  Alcotest.(check string) "clipped" "abc" (Bytes.to_string (Data.to_bytes d))

let test_fs_unlink () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  ok
    (Fs_state.apply fs
       (Oplog.Unlink { parent = Fs_state.root_inum; name = "f"; inum = f }));
  expect_err Fs_state.Enoent (Fs_state.resolve fs "/f");
  expect_err Fs_state.Enoent (Fs_state.stat fs f)

let test_fs_unlink_nonempty_dir () =
  let fs = Fs_state.create () in
  let d = create_dir fs ~parent:Fs_state.root_inum ~name:"d" in
  let _ = create_file fs ~parent:d ~name:"f" in
  expect_err Fs_state.Enotempty
    (Fs_state.apply fs
       (Oplog.Unlink { parent = Fs_state.root_inum; name = "d"; inum = d }))

let test_fs_rename_basic () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"old" in
  ok
    (Fs_state.apply fs
       (Oplog.Rename
          {
            src_parent = Fs_state.root_inum;
            src_name = "old";
            dst_parent = Fs_state.root_inum;
            dst_name = "new";
            inum = f;
          }));
  Alcotest.(check int) "new path" f (ok (Fs_state.resolve fs "/new"));
  expect_err Fs_state.Enoent (Fs_state.resolve fs "/old")

let test_fs_rename_overwrites_file () =
  let fs = Fs_state.create () in
  let a = create_file fs ~parent:Fs_state.root_inum ~name:"a" in
  let b = create_file fs ~parent:Fs_state.root_inum ~name:"b" in
  ok
    (Fs_state.apply fs
       (Oplog.Rename
          {
            src_parent = Fs_state.root_inum;
            src_name = "a";
            dst_parent = Fs_state.root_inum;
            dst_name = "b";
            inum = a;
          }));
  Alcotest.(check int) "b now is a" a (ok (Fs_state.resolve fs "/b"));
  expect_err Fs_state.Enoent (Fs_state.stat fs b)

let test_fs_rename_cycle_prevented () =
  (* Moving a directory into its own subtree must fail: this is exactly
     the namespace validation the NICFS validation stage performs. *)
  let fs = Fs_state.create () in
  let a = create_dir fs ~parent:Fs_state.root_inum ~name:"a" in
  let b = create_dir fs ~parent:a ~name:"b" in
  expect_err Fs_state.Ecycle
    (Fs_state.apply fs
       (Oplog.Rename
          {
            src_parent = Fs_state.root_inum;
            src_name = "a";
            dst_parent = b;
            dst_name = "evil";
            inum = a;
          }))

let test_fs_validate_does_not_mutate () =
  let fs = Fs_state.create () in
  let inum = Fs_state.alloc_inum fs in
  let op = Oplog.Create { parent = Fs_state.root_inum; name = "v"; inum; dir = false } in
  ok (Fs_state.validate fs op);
  (* validate must not have created anything *)
  expect_err Fs_state.Enoent (Fs_state.resolve fs "/v");
  ok (Fs_state.apply fs op);
  Alcotest.(check int) "apply later works" inum (ok (Fs_state.resolve fs "/v"))

let test_fs_permissions () =
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  ok (Fs_state.chmod fs f ~mode:0o4);
  (* read-only *)
  expect_err Fs_state.Eacces
    (Fs_state.validate fs
       (Oplog.Write { inum = f; offset = 0; data = Data.of_string "x" }));
  Alcotest.(check bool) "readable" true (Fs_state.readable fs f);
  Alcotest.(check bool) "not writable" false (Fs_state.writable fs f);
  ok (Fs_state.chmod fs f ~mode:0o0);
  expect_err Fs_state.Eacces (Fs_state.read fs ~inum:f ~pos:0 ~len:1)

let test_fs_write_idempotent () =
  (* Re-publication after a crash must be harmless (§3.5). *)
  let fs = Fs_state.create () in
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  let w = Oplog.Write { inum = f; offset = 0; data = Data.of_string "same" } in
  ok (Fs_state.apply fs w);
  ok (Fs_state.apply fs w);
  let d = ok (Fs_state.read fs ~inum:f ~pos:0 ~len:10) in
  Alcotest.(check string) "content intact" "same"
    (Bytes.to_string (Data.to_bytes d))

let test_fs_live_inode_accounting () =
  let fs = Fs_state.create () in
  Alcotest.(check int) "just root" 1 (Fs_state.live_inodes fs);
  let f = create_file fs ~parent:Fs_state.root_inum ~name:"f" in
  Alcotest.(check int) "two" 2 (Fs_state.live_inodes fs);
  ok
    (Fs_state.apply fs
       (Oplog.Unlink { parent = Fs_state.root_inum; name = "f"; inum = f }));
  Alcotest.(check int) "back to one" 1 (Fs_state.live_inodes fs)

(* Property: applying a random sequence of valid ops keeps the namespace
   a tree (resolvable from root, no orphan cycles). *)
let prop_fs_random_ops_keep_tree =
  QCheck.Test.make ~name:"random namespace ops keep a consistent tree"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 5) (int_bound 10)))
    (fun cmds ->
      let fs = Fs_state.create () in
      let dirs = ref [ Fs_state.root_inum ] in
      let pick lst n = List.nth lst (n mod List.length lst) in
      List.iteri
        (fun i (cmd, sel) ->
          let parent = pick !dirs sel in
          let name = Printf.sprintf "n%d" i in
          match cmd with
          | 0 | 1 ->
              let inum = Fs_state.alloc_inum fs in
              (match
                 Fs_state.apply fs
                   (Oplog.Create { parent; name; inum; dir = cmd = 1 })
               with
              | Ok () when cmd = 1 -> dirs := inum :: !dirs
              | _ -> ())
          | 2 -> (
              (* unlink an arbitrary child if any *)
              match Fs_state.list_dir fs parent with
              | Ok (child :: _) -> (
                  match Fs_state.lookup fs parent child with
                  | Ok inum ->
                      (match
                         Fs_state.apply fs
                           (Oplog.Unlink { parent; name = child; inum })
                       with
                      | Ok () -> dirs := List.filter (fun d -> d <> inum) !dirs
                      | Error _ -> ())
                  | Error _ -> ())
              | _ -> ())
          | _ -> (
              (* rename a child into another directory *)
              let dst_parent = pick !dirs (sel + 1) in
              match Fs_state.list_dir fs parent with
              | Ok (child :: _) -> (
                  match Fs_state.lookup fs parent child with
                  | Ok inum ->
                      ignore
                        (Fs_state.apply fs
                           (Oplog.Rename
                              {
                                src_parent = parent;
                                src_name = child;
                                dst_parent;
                                dst_name = name ^ "r";
                                inum;
                              }))
                  | Error _ -> ())
              | _ -> ()))
        cmds;
      (* Consistency: every live directory is reachable from the root by
         walking children. *)
      let reachable = Hashtbl.create 16 in
      let rec walk inum =
        if not (Hashtbl.mem reachable inum) then begin
          Hashtbl.add reachable inum ();
          match Fs_state.list_dir fs inum with
          | Ok names ->
              List.iter
                (fun n ->
                  match Fs_state.lookup fs inum n with
                  | Ok child -> (
                      match Fs_state.stat fs child with
                      | Ok s when s.Fs_state.st_kind = Fs_state.Dir -> walk child
                      | _ -> Hashtbl.replace reachable child ())
                  | Error _ -> ())
              names
          | Error _ -> ()
        end
      in
      walk Fs_state.root_inum;
      Hashtbl.length reachable = Fs_state.live_inodes fs)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "storage"
    [
      ( "data",
        [
          tc "real roundtrip" `Quick test_data_real_roundtrip;
          tc "sub content" `Quick test_data_sub_content;
          tc "synthetic stable slicing" `Quick test_data_synthetic_stable_slicing;
          tc "synthetic deterministic" `Quick test_data_synthetic_deterministic;
          tc "zero" `Quick test_data_zero;
          tc "concat rejoins synth" `Quick test_data_concat_rejoins_synth;
          tc "concat mixed" `Quick test_data_concat_mixed;
          tc "sub out of bounds" `Quick test_data_sub_out_of_bounds;
          tc "fill ratio" `Quick test_data_fill_ratio;
          qt prop_data_sub_of_sub;
          qt prop_rope_matches_bytes_model;
          qt prop_rope_iter_slices_covers;
          qt prop_rope_blit_to;
          qt prop_rope_sub_matches_model;
          qt prop_rope_equal_agrees_with_model;
          qt prop_rope_concat_is_flat;
        ] );
      ( "crc32",
        [
          tc "known vector" `Quick test_crc32_known_vector;
          tc "empty" `Quick test_crc32_empty;
          tc "incremental composes" `Quick test_crc32_incremental_composes;
          qt prop_crc32_detects_flip;
          qt prop_crc32_data_matches_legacy;
          qt prop_crc32_combine_law;
          qt prop_crc32_combine_zero_run;
          qt prop_crc32_update_synth;
        ] );
      ( "extent-map",
        [
          tc "insert and read" `Quick test_extent_insert_and_read;
          tc "overwrite splits" `Quick test_extent_overwrite_splits;
          tc "overwrite exact" `Quick test_extent_overwrite_exact;
          tc "overwrite spanning" `Quick test_extent_overwrite_spanning;
          tc "find" `Quick test_extent_find;
          tc "remove range" `Quick test_extent_remove_range;
          tc "remove if" `Quick test_extent_remove_if;
          tc "accounting" `Quick test_extent_accounting;
          qt prop_extent_model;
          qt prop_extent_model_ops;
        ] );
      ( "oplog",
        [
          tc "serialize roundtrip" `Quick test_oplog_serialize_roundtrip;
          tc "crc detects corruption" `Quick test_oplog_crc_detects_corruption;
          tc "check" `Quick test_oplog_check;
          tc "sizes" `Quick test_oplog_sizes;
          tc "touches" `Quick test_oplog_touches;
          tc "log cursors" `Quick test_log_append_and_cursors;
          tc "log capacity" `Quick test_log_capacity_enforced;
          tc "log seq monotonic" `Quick test_log_seq_monotonic;
          tc "log chunking budget" `Quick test_log_entries_from_respects_budget;
          tc "log reclaim" `Quick test_log_reclaim;
          qt prop_log_reclaim_conserves_bytes;
        ] );
      ( "fs-state",
        [
          tc "create and resolve" `Quick test_fs_create_and_resolve;
          tc "create duplicate" `Quick test_fs_create_duplicate;
          tc "write/read roundtrip" `Quick test_fs_write_read_roundtrip;
          tc "sparse read zeros" `Quick test_fs_sparse_read_zeros;
          tc "truncate" `Quick test_fs_truncate;
          tc "unlink" `Quick test_fs_unlink;
          tc "unlink nonempty dir" `Quick test_fs_unlink_nonempty_dir;
          tc "rename basic" `Quick test_fs_rename_basic;
          tc "rename overwrites file" `Quick test_fs_rename_overwrites_file;
          tc "rename cycle prevented" `Quick test_fs_rename_cycle_prevented;
          tc "validate does not mutate" `Quick test_fs_validate_does_not_mutate;
          tc "permissions" `Quick test_fs_permissions;
          tc "write idempotent" `Quick test_fs_write_idempotent;
          tc "live inode accounting" `Quick test_fs_live_inode_accounting;
          qt prop_fs_random_ops_keep_tree;
        ] );
    ]
