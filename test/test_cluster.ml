(* Tests for the cluster manager (ZooKeeper role) and history bitmap. *)

open Sim
open Cluster

let run_sim ?deadline f =
  let eng = Engine.create () in
  Engine.spawn_root eng f;
  Engine.run ?deadline eng

(* ------------------------------------------------------------------ *)
(* History bitmap                                                      *)
(* ------------------------------------------------------------------ *)

let test_history_records_and_queries () =
  let h = History.create () in
  History.record h ~epoch:1 ~inum:10;
  History.record h ~epoch:1 ~inum:11;
  History.record h ~epoch:2 ~inum:12;
  History.record h ~epoch:3 ~inum:10;
  Alcotest.(check (list int)) "since epoch 1" [ 10; 12 ]
    (History.inodes_since h ~epoch:1);
  Alcotest.(check (list int)) "since epoch 0" [ 10; 11; 12 ]
    (History.inodes_since h ~epoch:0);
  Alcotest.(check (list int)) "since epoch 3" [] (History.inodes_since h ~epoch:3)

let test_history_idempotent () =
  let h = History.create () in
  History.record h ~epoch:1 ~inum:5;
  History.record h ~epoch:1 ~inum:5;
  Alcotest.(check (list int)) "dedup" [ 5 ] (History.inodes_since h ~epoch:0)

let test_history_copy_independent () =
  let h = History.create () in
  History.record h ~epoch:1 ~inum:5;
  let h2 = History.copy h in
  History.record h ~epoch:2 ~inum:6;
  Alcotest.(check (list int)) "copy frozen" [ 5 ]
    (History.inodes_since h2 ~epoch:0);
  Alcotest.(check (list int)) "original grew" [ 5; 6 ]
    (History.inodes_since h ~epoch:0)

let test_history_epochs () =
  let h = History.create () in
  History.record h ~epoch:3 ~inum:1;
  History.record h ~epoch:1 ~inum:2;
  Alcotest.(check (list int)) "epochs sorted" [ 1; 3 ] (History.epochs h)

(* ------------------------------------------------------------------ *)
(* Manager                                                             *)
(* ------------------------------------------------------------------ *)

let test_manager_detects_failure () =
  let detected_epoch = ref 0 in
  run_sim (fun () ->
      let m = Manager.create ~heartbeat_interval:(Time.ms 100) () in
      let alive = ref true in
      Manager.register m ~id:1 ~ping:(fun () -> !alive) ~on_epoch:(fun _ -> ()) ();
      Manager.register m ~id:2
        ~ping:(fun () -> true)
        ~on_epoch:(fun e -> detected_epoch := e) ();
      Manager.start m;
      Engine.sleep (Time.ms 250);
      Alcotest.(check (list int)) "both alive" [ 1; 2 ] (Manager.alive_members m);
      alive := false;
      Engine.sleep (Time.ms 250);
      Alcotest.(check (list int)) "node 1 dead" [ 2 ] (Manager.alive_members m);
      Alcotest.(check bool) "state dead" true (Manager.member_state m 1 = Manager.Dead);
      Manager.stop m);
  Alcotest.(check int) "epoch bumped and broadcast" 2 !detected_epoch

let test_manager_recovery_bumps_epoch () =
  run_sim (fun () ->
      let m = Manager.create () in
      Manager.register m ~id:1 ~ping:(fun () -> true) ~on_epoch:(fun _ -> ()) ();
      Alcotest.(check int) "initial epoch" 1 (Manager.epoch m);
      let e = Manager.bump_epoch m in
      Alcotest.(check int) "bumped" 2 e;
      Manager.mark_recovered m ~id:1;
      Alcotest.(check int) "recovery bumps again" 3 (Manager.epoch m))

let test_manager_failed_ping_exception () =
  run_sim (fun () ->
      let m = Manager.create ~heartbeat_interval:(Time.ms 50) () in
      Manager.register m ~id:7
        ~ping:(fun () -> failwith "unreachable")
        ~on_epoch:(fun _ -> ()) ();
      Manager.start m;
      Engine.sleep (Time.ms 120);
      Alcotest.(check bool) "exception = dead" true
        (Manager.member_state m 7 = Manager.Dead);
      Manager.stop m)

let test_lease_root_delegation () =
  run_sim (fun () ->
      let m = Manager.create () in
      Manager.register m ~id:1 ~ping:(fun () -> true) ~on_epoch:(fun _ -> ()) ();
      Manager.register m ~id:2 ~ping:(fun () -> true) ~on_epoch:(fun _ -> ()) ();
      Alcotest.(check bool) "delegate to 1" true
        (Manager.delegate_lease_root m ~inum:1 ~node:1);
      Alcotest.(check bool) "node 2 refused" false
        (Manager.delegate_lease_root m ~inum:1 ~node:2);
      Alcotest.(check (option int)) "holder" (Some 1)
        (Manager.lease_root_holder m ~inum:1);
      Manager.revoke_lease_root m ~inum:1;
      Alcotest.(check bool) "node 2 after revoke" true
        (Manager.delegate_lease_root m ~inum:1 ~node:2))

let test_lease_root_moves_on_failure () =
  run_sim (fun () ->
      let m = Manager.create ~heartbeat_interval:(Time.ms 50) () in
      let alive = ref true in
      Manager.register m ~id:1 ~ping:(fun () -> !alive) ~on_epoch:(fun _ -> ()) ();
      Manager.register m ~id:2 ~ping:(fun () -> true) ~on_epoch:(fun _ -> ()) ();
      ignore (Manager.delegate_lease_root m ~inum:1 ~node:1 : bool);
      Manager.start m;
      alive := false;
      Engine.sleep (Time.ms 120);
      (* The failed node's delegations expired; a live node takes over. *)
      Alcotest.(check bool) "takeover allowed" true
        (Manager.delegate_lease_root m ~inum:1 ~node:2);
      Manager.stop m)

(* ------------------------------------------------------------------ *)
(* Failure-detector state machine (§3.6 degraded mode)                 *)
(* ------------------------------------------------------------------ *)

(* NIC probe dead but host probe answering classifies HostFallback
   (degraded mode), not Down; when the host stops answering too, the
   node is Down.  Each committed transition bumps the epoch. *)
let test_detector_nic_dead_vs_node_dead () =
  let transitions = ref [] in
  run_sim (fun () ->
      let m =
        Manager.create ~heartbeat_interval:(Time.ms 10) ~suspect_after:2
          ~probe_attempts:1 ()
      in
      let nic = ref true and host = ref true in
      Manager.register m ~id:1
        ~ping:(fun () -> !nic)
        ~on_epoch:(fun _ -> ())
        ~ping_host:(fun () -> !host)
        ~on_service:(fun s -> transitions := s :: !transitions)
        ();
      Manager.start m;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "full service" true (Manager.service m 1 = Manager.Nic);
      nic := false;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "host fallback" true
        (Manager.service m 1 = Manager.HostFallback);
      Alcotest.(check bool) "fallback is not dead" true
        (Manager.member_state m 1 = Manager.Alive);
      Alcotest.(check int) "epoch bumped once" 2 (Manager.epoch m);
      host := false;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "node down" true (Manager.service m 1 = Manager.Down);
      Alcotest.(check int) "epoch bumped again" 3 (Manager.epoch m);
      Manager.stop m);
  Alcotest.(check bool) "transition order" true
    (List.rev !transitions = [ Manager.HostFallback; Manager.Down ])

(* A flapping probe (fails every other round) never produces the
   [suspect_after] consecutive suspect rounds a degradation needs: no
   transition, no epoch churn. *)
let test_detector_flap_suppression () =
  run_sim (fun () ->
      let m =
        Manager.create ~heartbeat_interval:(Time.ms 10) ~suspect_after:2
          ~probe_attempts:1 ()
      in
      let calls = ref 0 in
      Manager.register m ~id:1
        ~ping:(fun () ->
          incr calls;
          !calls mod 2 = 0)
        ~on_epoch:(fun _ -> ())
        ~ping_host:(fun () -> true)
        ~on_service:(fun _ -> Alcotest.fail "flap committed a transition")
        ();
      Manager.start m;
      Engine.sleep (Time.ms 200);
      Alcotest.(check bool) "still full service" true
        (Manager.service m 1 = Manager.Nic);
      Alcotest.(check int) "no epoch churn" 1 (Manager.epoch m);
      Manager.stop m)

(* A sustained outage does commit after [suspect_after] rounds even if
   the very first sighting looked like a flap. *)
let test_detector_sustained_outage_commits () =
  run_sim (fun () ->
      let m =
        Manager.create ~heartbeat_interval:(Time.ms 10) ~suspect_after:2
          ~probe_attempts:1 ()
      in
      let nic = ref true in
      Manager.register m ~id:1
        ~ping:(fun () -> !nic)
        ~on_epoch:(fun _ -> ())
        ~ping_host:(fun () -> true)
        ();
      Manager.start m;
      Engine.sleep (Time.ms 15);
      nic := false;
      (* One suspect round is not enough... *)
      Engine.sleep (Time.ms 12);
      Alcotest.(check bool) "one round: still Nic" true
        (Manager.service m 1 = Manager.Nic);
      (* ...two are. *)
      Engine.sleep (Time.ms 12);
      Alcotest.(check bool) "two rounds: fallback" true
        (Manager.service m 1 = Manager.HostFallback);
      Manager.stop m)

(* Fail-back (an improvement) takes effect on the next round, without
   waiting [suspect_after] sightings. *)
let test_detector_failback_immediate () =
  run_sim (fun () ->
      let m =
        Manager.create ~heartbeat_interval:(Time.ms 10) ~suspect_after:2
          ~probe_attempts:1 ()
      in
      let nic = ref false in
      Manager.register m ~id:1
        ~ping:(fun () -> !nic)
        ~on_epoch:(fun _ -> ())
        ~ping_host:(fun () -> true)
        ();
      Manager.start m;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "degraded" true
        (Manager.service m 1 = Manager.HostFallback);
      nic := true;
      Engine.sleep (Time.ms 12);
      Alcotest.(check bool) "failed back in one round" true
        (Manager.service m 1 = Manager.Nic);
      Manager.stop m)

(* Transitioning to Down sweeps the node's lease-root delegations so a
   survivor can take them over; HostFallback keeps them (the node still
   serves, via its host). *)
let test_detector_lease_root_sweep () =
  run_sim (fun () ->
      let m =
        Manager.create ~heartbeat_interval:(Time.ms 10) ~suspect_after:2
          ~probe_attempts:1 ()
      in
      let nic = ref true and host = ref true in
      Manager.register m ~id:1
        ~ping:(fun () -> !nic)
        ~on_epoch:(fun _ -> ())
        ~ping_host:(fun () -> !host)
        ();
      Manager.register m ~id:2 ~ping:(fun () -> true) ~on_epoch:(fun _ -> ()) ();
      ignore (Manager.delegate_lease_root m ~inum:1 ~node:1 : bool);
      Manager.start m;
      nic := false;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "degraded keeps delegation" false
        (Manager.delegate_lease_root m ~inum:1 ~node:2);
      host := false;
      Engine.sleep (Time.ms 25);
      Alcotest.(check bool) "down" true (Manager.service m 1 = Manager.Down);
      Alcotest.(check (option int)) "delegation swept" None
        (Manager.lease_root_holder m ~inum:1);
      Alcotest.(check bool) "survivor takes over" true
        (Manager.delegate_lease_root m ~inum:1 ~node:2);
      Manager.stop m)

(* Recovery flow (§3.6): a NICFS restart fetches the history bitmap and
   the inodes updated since its persisted epoch. *)
let test_recovery_flow_with_history () =
  run_sim (fun () ->
      let m = Manager.create () in
      let persisted_epoch = ref 0 in
      Manager.register m ~id:1
        ~ping:(fun () -> true)
        ~on_epoch:(fun e -> persisted_epoch := e) ();
      let replica_history = History.create () in
      (* Epoch 1: normal operation. *)
      History.record replica_history ~epoch:(Manager.epoch m) ~inum:100;
      ignore (Manager.bump_epoch m : int);
      Alcotest.(check int) "node persisted new epoch" 2 !persisted_epoch;
      (* During node 1's downtime (epoch 2), inodes 101/102 change. *)
      History.record replica_history ~epoch:(Manager.epoch m) ~inum:101;
      History.record replica_history ~epoch:(Manager.epoch m) ~inum:102;
      (* Node 1 restarts with its pre-crash epoch and asks a replica for
         everything since then. *)
      let downtime_epoch = 1 in
      let to_fetch = History.inodes_since replica_history ~epoch:downtime_epoch in
      Alcotest.(check (list int)) "inodes to resync" [ 101; 102 ] to_fetch)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "cluster"
    [
      ( "history",
        [
          tc "records and queries" `Quick test_history_records_and_queries;
          tc "idempotent" `Quick test_history_idempotent;
          tc "copy independent" `Quick test_history_copy_independent;
          tc "epochs" `Quick test_history_epochs;
        ] );
      ( "manager",
        [
          tc "detects failure" `Quick test_manager_detects_failure;
          tc "recovery bumps epoch" `Quick test_manager_recovery_bumps_epoch;
          tc "failed ping exception" `Quick test_manager_failed_ping_exception;
          tc "lease root delegation" `Quick test_lease_root_delegation;
          tc "lease root moves on failure" `Quick test_lease_root_moves_on_failure;
          tc "recovery flow with history" `Quick test_recovery_flow_with_history;
        ] );
      ( "failure detector",
        [
          tc "nic-dead vs node-dead" `Quick test_detector_nic_dead_vs_node_dead;
          tc "flap suppression" `Quick test_detector_flap_suppression;
          tc "sustained outage commits" `Quick
            test_detector_sustained_outage_commits;
          tc "fail-back is immediate" `Quick test_detector_failback_immediate;
          tc "lease-root sweep on Down" `Quick test_detector_lease_root_sweep;
        ] );
    ]
