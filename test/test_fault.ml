(* Deterministic simulation tests (DST) for LineFS recovery paths.

   Each scenario derives a random workload, a timed fault plan and all
   network-loss decisions from one seed, runs it against a 3-replica
   cluster, and checks the recovery invariants: prefix crash
   consistency of every client log, lease single-writer safety, and
   byte-exact replica convergence after healing + recovery.  A failing
   seed replays exactly and shrinks to a minimal reproducer. *)

open Sim

let scenario_seeds = List.init 50 (fun i -> 1 + i)

let check_outcome ~what (o : Fault.Scenario.outcome) =
  if Fault.Scenario.failed o then
    Alcotest.failf "%s failed:@\n%a" what Fault.Scenario.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Plan generation and shrinking                                       *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let gen () =
    Fault.Plan.generate ~rng:(Rng.create 42) ~nodes:3 ~horizon:(Time.ms 20)
  in
  Alcotest.(check string)
    "same seed, same plan"
    (Fault.Plan.to_string (gen ()))
    (Fault.Plan.to_string (gen ()))

let test_plan_shrink () =
  let plan =
    Fault.Plan.generate ~rng:(Rng.create 7) ~nodes:3 ~horizon:(Time.ms 20)
  in
  let n = List.length plan in
  let smaller = Fault.Plan.shrink plan in
  (* Candidates come in two families: one plan per fault with that
     fault deleted, then one per shrinkable fault with its parameters
     halved. *)
  let dropped, halved =
    List.partition (fun p -> List.length p = n - 1) smaller
  in
  Alcotest.(check int) "one dropped candidate per fault" n
    (List.length dropped);
  List.iter
    (fun p ->
      Alcotest.(check int) "halved candidates keep the fault count" n
        (List.length p);
      if Fault.Plan.to_string p = Fault.Plan.to_string plan then
        Alcotest.fail "halved candidate equals the original plan")
    halved

let test_plan_shrink_parameters () =
  (* Repeatedly taking the halved candidate drives durations, extra
     delays and probabilities to their floors, then stops producing
     candidates — so greedy shrinking terminates with a minimal
     parameterisation, not just a minimal fault set. *)
  let plan =
    [
      Fault.Plan.Link_reorder
        {
          a = 0;
          b = 1;
          at = Time.ms 1;
          duration = Time.ms 8;
          p = 0.5;
          delay = Time.us 200;
        };
    ]
  in
  let rec fixpoint plan steps =
    if steps > 64 then Alcotest.fail "halving never reached a fixpoint"
    else
      match
        List.filter (fun p -> List.length p = 1) (Fault.Plan.shrink plan)
      with
      | [] -> plan
      | p :: _ -> fixpoint p (steps + 1)
  in
  match fixpoint plan 0 with
  | [ Fault.Plan.Link_reorder { duration; p; delay; _ } ] ->
      Alcotest.(check bool) "duration at floor" true (duration <= Time.us 50);
      Alcotest.(check bool) "probability at floor" true (p <= 0.02);
      Alcotest.(check bool) "reorder delay at floor" true
        (delay <= Time.us 50)
  | _ -> Alcotest.fail "shrinking changed the plan shape"

let test_plan_bounded () =
  (* Every generated fault starts and fully resolves inside the
     horizon: plans always heal and always restart. *)
  let horizon = Time.ms 20 in
  for seed = 1 to 100 do
    let plan =
      Fault.Plan.generate ~rng:(Rng.create seed) ~nodes:3 ~horizon
    in
    List.iter
      (fun f ->
        if Fault.Plan.end_of f > horizon then
          Alcotest.failf "seed %d: fault ends after horizon: %a" seed
            Fault.Plan.pp_fault f;
        match f with
        | Fault.Plan.Crash { node; _ } ->
            if node = 0 then Alcotest.fail "crash targets the primary"
        | _ -> ())
      plan
  done

(* ------------------------------------------------------------------ *)
(* Network fault hook                                                  *)
(* ------------------------------------------------------------------ *)

let test_netfault_verdicts () =
  let topo = Hw.Topology.create ~cfg:Hw.Config.testbed_25gbe ~nodes:2 () in
  let n0 = topo.Hw.Topology.nodes.(0) and n1 = topo.Hw.Topology.nodes.(1) in
  let net = Fault.Netfault.create ~rng:(Rng.create 1) in
  let consult point src dst =
    Fault.Netfault.install net;
    let v = Net.Inject.consult ~point ~src ~dst ~bytes:100 in
    Fault.Netfault.uninstall ();
    v
  in
  (* Intra-node traffic is never touched, even under partition. *)
  Fault.Netfault.set_partition net ~a:0 ~b:1 true;
  (match
     consult Net.Inject.Rpc_call (Net.Loc.Host n0) (Net.Loc.Nic n0)
   with
  | Net.Inject.Pass -> ()
  | _ -> Alcotest.fail "intra-node traffic must pass");
  (* Inter-node RPCs on a partitioned link are lost. *)
  (match
     consult Net.Inject.Rpc_post (Net.Loc.Nic n0) (Net.Loc.Nic n1)
   with
  | Net.Inject.Drop -> ()
  | _ -> Alcotest.fail "partitioned link must drop");
  Fault.Netfault.set_partition net ~a:0 ~b:1 false;
  (* Extra link latency shows up on RDMA moves only. *)
  Fault.Netfault.set_delay net ~a:0 ~b:1 (Time.us 50);
  (match
     consult Net.Inject.Rdma_move (Net.Loc.Nic n0) (Net.Loc.Nic n1)
   with
  | Net.Inject.Delay d when d = Time.us 50 -> ()
  | _ -> Alcotest.fail "delayed link must delay moves");
  (match
     consult Net.Inject.Rpc_post (Net.Loc.Nic n0) (Net.Loc.Nic n1)
   with
  | Net.Inject.Pass -> ()
  | _ -> Alcotest.fail "delay applies at the move, not the rpc");
  Alcotest.(check int) "drop counter" 1 (Fault.Netfault.drops net);
  Alcotest.(check int) "delay counter" 1 (Fault.Netfault.delays net);
  Fault.Netfault.set_delay net ~a:0 ~b:1 (Time.ns 0);
  (* Byzantine verdicts: duplication and corruption apply to any RPC
     send; reordering only to one-way posts (a blocked round-trip
     caller observes it as latency anyway). *)
  Fault.Netfault.set_dup net ~a:0 ~b:1 1.0;
  (match consult Net.Inject.Rpc_call (Net.Loc.Nic n0) (Net.Loc.Nic n1) with
  | Net.Inject.Duplicate -> ()
  | _ -> Alcotest.fail "dup link must duplicate");
  Fault.Netfault.set_dup net ~a:0 ~b:1 0.0;
  Fault.Netfault.set_corrupt net ~a:0 ~b:1 1.0;
  (match consult Net.Inject.Rpc_post (Net.Loc.Nic n0) (Net.Loc.Nic n1) with
  | Net.Inject.Corrupt { offset; xor } ->
      if offset < 0 || offset >= 100 then
        Alcotest.failf "corrupt offset %d outside the frame" offset;
      if xor < 1 || xor > 255 then
        Alcotest.failf "corrupt xor %#x not a byte-flip" xor
  | _ -> Alcotest.fail "corrupt link must corrupt");
  Fault.Netfault.set_corrupt net ~a:0 ~b:1 0.0;
  Fault.Netfault.set_reorder net ~a:0 ~b:1 ~p:1.0 ~delay:(Time.us 30);
  (match consult Net.Inject.Rpc_post (Net.Loc.Nic n0) (Net.Loc.Nic n1) with
  | Net.Inject.Reorder d when d = Time.us 30 -> ()
  | _ -> Alcotest.fail "reorder link must hold posts back");
  (match consult Net.Inject.Rpc_call (Net.Loc.Nic n0) (Net.Loc.Nic n1) with
  | Net.Inject.Pass -> ()
  | _ -> Alcotest.fail "reordering must not touch round-trip calls");
  Alcotest.(check int) "dup counter" 1 (Fault.Netfault.dups net);
  Alcotest.(check int) "corrupt counter" 1 (Fault.Netfault.corrupts net);
  Alcotest.(check int) "reorder counter" 1 (Fault.Netfault.reorders net)

(* ------------------------------------------------------------------ *)
(* Targeted scenarios: one per recovery path                           *)
(* ------------------------------------------------------------------ *)

let base_spec ~seed ~clients ~plan =
  {
    Fault.Scenario.seed;
    nodes = 3;
    clients;
    ops_per_client = 30;
    horizon = Time.ms 20;
    plan;
  }

let test_crash_during_replication () =
  (* Replica 1 power-fails while chunks are in flight; the primary's
     retransmission plus the replica's publication gate must restore a
     byte-identical chain after restart. *)
  let plan =
    [
      Fault.Plan.Crash
        { node = 1; at = Time.ms 2; restart_after = Time.ms 4 };
    ]
  in
  let o = Fault.Scenario.run (base_spec ~seed:101 ~clients:1 ~plan) in
  check_outcome ~what:"crash-during-replication" o;
  if o.Fault.Scenario.trace_events = 0 then
    Alcotest.fail "expected trace events (crash/restart/epoch)"

let test_partition_during_lease_migration () =
  (* Two clients fight over the root directory's write lease while the
     primary-to-replica-1 link is severed: lease persistence and chunk
     replication must ride out the partition. *)
  let plan =
    [
      Fault.Plan.Partition
        { a = 0; b = 1; at = Time.ms 1; heal_after = Time.ms 6 };
    ]
  in
  let o = Fault.Scenario.run (base_spec ~seed:202 ~clients:2 ~plan) in
  check_outcome ~what:"partition-during-lease-migration" o

let test_crash_during_catchup_recovery () =
  (* Replica 1 crashes a second time while it is still catching up on
     the retransmissions from its first outage. *)
  let plan =
    [
      Fault.Plan.Crash
        { node = 1; at = Time.ms 2; restart_after = Time.ms 2 };
      Fault.Plan.Crash
        { node = 1; at = Time.ms 5; restart_after = Time.ms 3 };
    ]
  in
  let o = Fault.Scenario.run (base_spec ~seed:303 ~clients:1 ~plan) in
  check_outcome ~what:"crash-during-catchup-recovery" o

let test_tail_crash_with_lossy_link () =
  (* The chain tail goes down while the middle link is dropping
     messages: acks and forwarded chunks are both lost and must be
     retransmitted end to end. *)
  let plan =
    [
      Fault.Plan.Link_drop
        { a = 1; b = 2; at = Time.ms 1; duration = Time.ms 6; p = 0.4 };
      Fault.Plan.Crash
        { node = 2; at = Time.ms 3; restart_after = Time.ms 4 };
    ]
  in
  let o = Fault.Scenario.run (base_spec ~seed:404 ~clients:1 ~plan) in
  check_outcome ~what:"tail-crash-with-lossy-link" o;
  if o.Fault.Scenario.drops = 0 then
    Alcotest.fail "expected the lossy link to drop something"

let test_stalled_nic () =
  let plan =
    [
      Fault.Plan.Stall
        { node = 1; at = Time.ms 1; duration = Time.ms 5 };
    ]
  in
  let o = Fault.Scenario.run (base_spec ~seed:505 ~clients:1 ~plan) in
  check_outcome ~what:"stalled-nic" o;
  if o.Fault.Scenario.delays = 0 then
    Alcotest.fail "expected the stall to delay transfers"

(* ------------------------------------------------------------------ *)
(* Explicit failover scenarios (degraded mode, chain reconfiguration)  *)
(* ------------------------------------------------------------------ *)

let failover_scenarios =
  [
    ("primary-crash", Fault.Scenario.failover_primary_crash);
    ("crash-during-failback", Fault.Scenario.failover_crash_during_failback);
    ("replica-death", Fault.Scenario.failover_replica_death);
    ("double-failure", Fault.Scenario.failover_double_failure);
  ]

let run_failover name mk =
  List.iter
    (fun seed ->
      let o = Fault.Scenario.run (mk ~seed) in
      check_outcome ~what:(Printf.sprintf "failover-%s seed %d" name seed) o;
      if not o.Fault.Scenario.completed then
        Alcotest.failf "failover-%s seed %d wedged" name seed)
    [ 1; 2; 3 ]

let test_failover_primary_crash () =
  run_failover "primary-crash" Fault.Scenario.failover_primary_crash

let test_failover_crash_during_failback () =
  run_failover "crash-during-failback"
    Fault.Scenario.failover_crash_during_failback

let test_failover_replica_death () =
  run_failover "replica-death" Fault.Scenario.failover_replica_death

let test_failover_double_failure () =
  run_failover "double-failure" Fault.Scenario.failover_double_failure

(* Failover runs are as replayable as generated ones: same spec, same
   fingerprint (digest, trace, op counts, fault tallies). *)
let test_failover_deterministic () =
  List.iter
    (fun (name, mk) ->
      let a = Fault.Dst.run_spec (mk ~seed:1)
      and b = Fault.Dst.run_spec (mk ~seed:1) in
      Alcotest.(check string)
        (Printf.sprintf "failover-%s fingerprint stable" name)
        (Fault.Dst.fingerprint a.Fault.Dst.outcome)
        (Fault.Dst.fingerprint b.Fault.Dst.outcome))
    failover_scenarios

(* ------------------------------------------------------------------ *)
(* The seeded scenario sweep                                           *)
(* ------------------------------------------------------------------ *)

let fault_kind = function
  | Fault.Plan.Crash _ -> "crash"
  | Fault.Plan.Node_death _ -> "node-death"
  | Fault.Plan.Stall _ -> "stall"
  | Fault.Plan.Partition _ -> "partition"
  | Fault.Plan.Link_delay _ -> "delay"
  | Fault.Plan.Link_drop _ -> "drop"
  | Fault.Plan.Link_dup _ -> "dup"
  | Fault.Plan.Link_reorder _ -> "reorder"
  | Fault.Plan.Link_corrupt _ -> "corrupt"
  | Fault.Plan.Torn_tail _ -> "torn-tail"
  | Fault.Plan.Bit_rot _ -> "bit-rot"

let test_scenario_sweep () =
  let kinds = Hashtbl.create 8 in
  let total_ops = ref 0 in
  List.iter
    (fun seed ->
      let spec = Fault.Scenario.generate ~seed in
      List.iter
        (fun f -> Hashtbl.replace kinds (fault_kind f) ())
        spec.Fault.Scenario.plan;
      let o = Fault.Scenario.run spec in
      total_ops := !total_ops + o.Fault.Scenario.ops_logged;
      check_outcome ~what:(Printf.sprintf "seed %d" seed) o)
    scenario_seeds;
  (* The sweep must exercise every fault kind at least once. *)
  List.iter
    (fun k ->
      if not (Hashtbl.mem kinds k) then
        Alcotest.failf "no generated scenario used fault kind %s" k)
    [ "crash"; "stall"; "partition"; "delay"; "drop"; "dup"; "reorder" ];
  if !total_ops = 0 then Alcotest.fail "sweep logged no operations"

(* The Byzantine-fabric profile: duplication / reordering / corruption
   / storage faults only, at aggressive probabilities.  Every seed must
   hold the full invariant set — including no-duplicate-apply, which is
   what makes the RPC dedup cache and the publication gate load-bearing
   rather than decorative. *)
let test_adversary_sweep () =
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      let spec = Fault.Scenario.generate_adversary ~seed in
      List.iter
        (fun f -> Hashtbl.replace kinds (fault_kind f) ())
        spec.Fault.Scenario.plan;
      let o = Fault.Scenario.run spec in
      check_outcome ~what:(Printf.sprintf "adversary seed %d" seed) o)
    scenario_seeds;
  List.iter
    (fun k ->
      if not (Hashtbl.mem kinds k) then
        Alcotest.failf "no adversary scenario used fault kind %s" k)
    [ "dup"; "reorder"; "corrupt"; "torn-tail"; "bit-rot" ]

let test_sweep_api () =
  match Fault.Dst.sweep ~seeds:[ 1; 2; 3 ] with
  | Ok n -> Alcotest.(check int) "all passed" 3 n
  | Error (seeds, minimal, _) ->
      Alcotest.failf "seeds %s failed:@\n%s"
        (String.concat "," (List.map string_of_int seeds))
        (Fault.Dst.report minimal)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

(* Identical seed => identical final Fs_state digest, identical trace /
   op / drop / delay counts, identical violations — across two fresh
   engines.  This is the property the whole harness stands on: without
   it, a failing seed could not be replayed or shrunk. *)
let prop_deterministic =
  QCheck.Test.make ~name:"same seed, same fingerprint" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed -> Fault.Dst.deterministic ~seed)

(* Under any adversary plan, every operation a client saw accepted is
   applied exactly once per surviving replica: the apply journal holds
   no duplicate (client, seq), histories are gap-free and the chain
   converges — [Scenario.failed] covers all three. *)
let prop_adversary_exactly_once =
  QCheck.Test.make
    ~name:"adversary: accepted ops apply exactly once per replica" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let o = Fault.Scenario.run (Fault.Scenario.generate_adversary ~seed) in
      not (Fault.Scenario.failed o))

let test_fingerprint_fields () =
  let a = Fault.Dst.run_seed 11 and b = Fault.Dst.run_seed 11 in
  Alcotest.(check string)
    "fingerprints equal"
    (Fault.Dst.fingerprint a.Fault.Dst.outcome)
    (Fault.Dst.fingerprint b.Fault.Dst.outcome);
  Alcotest.(check int32)
    "digests equal" a.Fault.Dst.outcome.Fault.Scenario.fs_digest
    b.Fault.Dst.outcome.Fault.Scenario.fs_digest;
  Alcotest.(check int)
    "event counts equal" a.Fault.Dst.outcome.Fault.Scenario.trace_events
    b.Fault.Dst.outcome.Fault.Scenario.trace_events

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fault"
    [
      ( "plan",
        [
          tc "deterministic generation" `Quick test_plan_deterministic;
          tc "shrink drops one fault or halves one" `Quick test_plan_shrink;
          tc "halving reaches the parameter floors" `Quick
            test_plan_shrink_parameters;
          tc "faults resolve inside horizon" `Quick test_plan_bounded;
        ] );
      ("netfault", [ tc "hook verdicts" `Quick test_netfault_verdicts ]);
      ( "recovery-paths",
        [
          tc "crash during replication" `Quick test_crash_during_replication;
          tc "partition during lease migration" `Quick
            test_partition_during_lease_migration;
          tc "crash during catch-up recovery" `Quick
            test_crash_during_catchup_recovery;
          tc "tail crash with lossy link" `Quick
            test_tail_crash_with_lossy_link;
          tc "stalled nic" `Quick test_stalled_nic;
        ] );
      ( "failover",
        [
          tc "primary nic crash rides on host fallback" `Slow
            test_failover_primary_crash;
          tc "crash during failback" `Slow test_failover_crash_during_failback;
          tc "permanent replica death reconfigures chain" `Slow
            test_failover_replica_death;
          tc "double failure" `Slow test_failover_double_failure;
          tc "failover runs are deterministic" `Slow
            test_failover_deterministic;
        ] );
      ( "sweep",
        [
          tc "50 seeded scenarios hold all invariants" `Slow
            test_scenario_sweep;
          tc "50 adversary scenarios hold all invariants" `Slow
            test_adversary_sweep;
          tc "sweep driver" `Quick test_sweep_api;
        ] );
      ( "determinism",
        [
          qt prop_deterministic;
          qt prop_adversary_exactly_once;
          tc "fingerprint fields" `Quick test_fingerprint_fields;
        ] );
    ]
