(* Tests for the discrete-event simulation engine and its primitives. *)

open Sim

let run_sim f =
  let eng = Engine.create () in
  Engine.spawn_root eng f;
  Engine.run eng;
  eng

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_starts_at_zero () =
  let eng = Engine.create () in
  Alcotest.(check int) "initial clock" 0 (Engine.current_time eng)

let test_sleep_advances_clock () =
  let observed = ref (-1) in
  let eng =
    run_sim (fun () ->
        Engine.sleep (Time.us 10);
        observed := Engine.now ())
  in
  Alcotest.(check int) "after sleep" (Time.us 10) !observed;
  Alcotest.(check int) "engine clock" (Time.us 10) (Engine.current_time eng)

let test_sleep_zero_is_noop_in_time () =
  let observed = ref (-1) in
  ignore
    (run_sim (fun () ->
         Engine.sleep 0;
         observed := Engine.now ()));
  Alcotest.(check int) "no time passes" 0 !observed

let test_sequential_sleeps_accumulate () =
  let observed = ref (-1) in
  ignore
    (run_sim (fun () ->
         Engine.sleep (Time.us 3);
         Engine.sleep (Time.us 4);
         Engine.sleep (Time.ns 5);
         observed := Engine.now ()));
  Alcotest.(check int) "sum of sleeps" (Time.us 7 + 5) !observed

let test_spawn_runs_concurrently () =
  (* Two processes sleeping in parallel finish at max, not sum. *)
  let finish_a = ref 0 and finish_b = ref 0 in
  let eng =
    run_sim (fun () ->
        Engine.spawn (fun () ->
            Engine.sleep (Time.us 10);
            finish_a := Engine.now ());
        Engine.spawn (fun () ->
            Engine.sleep (Time.us 20);
            finish_b := Engine.now ()))
  in
  Alcotest.(check int) "a finished at 10us" (Time.us 10) !finish_a;
  Alcotest.(check int) "b finished at 20us" (Time.us 20) !finish_b;
  Alcotest.(check int) "run ends at 20us" (Time.us 20) (Engine.current_time eng)

let test_event_ordering_fifo_at_same_time () =
  (* Events scheduled for the same instant run in insertion order. *)
  let order = ref [] in
  ignore
    (run_sim (fun () ->
         for i = 1 to 5 do
           Engine.spawn (fun () -> order := i :: !order)
         done));
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_spawner_continues_before_child () =
  let order = ref [] in
  ignore
    (run_sim (fun () ->
         Engine.spawn (fun () -> order := "child" :: !order);
         order := "parent" :: !order));
  Alcotest.(check (list string))
    "parent first" [ "parent"; "child" ] (List.rev !order)

let test_deadline_stops_run () =
  let last = ref 0 in
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      let rec loop () =
        Engine.sleep (Time.ms 1);
        last := Engine.now ();
        loop ()
      in
      loop ());
  Engine.run ~deadline:(Time.ms 10) eng;
  Alcotest.(check int) "clock at deadline" (Time.ms 10) (Engine.current_time eng);
  Alcotest.(check bool) "progressed" true (!last >= Time.ms 9)

let test_stop_preserves_pending_events () =
  let count = ref 0 in
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      for _ = 1 to 10 do
        Engine.sleep (Time.us 1);
        incr count;
        if !count = 3 then Engine.stop eng
      done);
  Engine.run eng;
  Alcotest.(check int) "stopped early" 3 !count;
  Engine.run eng;
  Alcotest.(check int) "resumed to completion" 10 !count

let test_process_failure_propagates () =
  let eng = Engine.create () in
  Engine.spawn_root ~name:"bad" eng (fun () -> failwith "boom");
  match Engine.run eng with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Engine.Process_failure (name, Failure msg) ->
      Alcotest.(check string) "process name" "bad" name;
      Alcotest.(check string) "message" "boom" msg
  | exception e -> raise e

let test_not_in_process () =
  match Engine.now () with
  | _ -> Alcotest.fail "expected Not_in_process"
  | exception Engine.Not_in_process -> ()

let test_suspend_waker_once () =
  (* Firing a waker twice must resume the process only once. *)
  let resumed = ref 0 in
  let stash = ref None in
  ignore
    (run_sim (fun () ->
         Engine.spawn (fun () ->
             let v = Engine.suspend (fun wake -> stash := Some wake) in
             resumed := !resumed + v);
         Engine.sleep (Time.us 1);
         match !stash with
         | Some wake ->
             wake 7;
             wake 100
         | None -> failwith "waker not registered"));
  Alcotest.(check int) "resumed once with first value" 7 !resumed

let test_suspend_timeout_fires () =
  let result = ref (Some 0) in
  ignore
    (run_sim (fun () ->
         result := Engine.suspend_cancellable (fun _wake -> ()) ~timeout:(Time.us 5)));
  Alcotest.(check (option int)) "timed out" None !result

let test_suspend_timeout_wake_wins () =
  let result = ref None in
  ignore
    (run_sim (fun () ->
         let wake_slot = ref None in
         Engine.spawn (fun () ->
             Engine.sleep (Time.us 1);
             match !wake_slot with Some w -> w 42 | None -> ());
         result :=
           Engine.suspend_cancellable
             (fun wake -> wake_slot := Some wake)
             ~timeout:(Time.us 5)));
  Alcotest.(check (option int)) "woken before timeout" (Some 42) !result

let test_rng_determinism () =
  let eng1 = Engine.create ~seed:7 () in
  let eng2 = Engine.create ~seed:7 () in
  let a = List.init 10 (fun _ -> Rng.int (Engine.rng eng1) 1000) in
  let b = List.init 10 (fun _ -> Rng.int (Engine.rng eng2) 1000) in
  Alcotest.(check (list int)) "same seed, same stream" a b

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~key:5 ~seq:0 "e";
  Heap.push h ~key:1 ~seq:1 "a";
  Heap.push h ~key:3 ~seq:2 "c";
  Heap.push h ~key:1 ~seq:0 "a0";
  let keys = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
        keys := v :: !keys;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "min order with seq tiebreak" [ "a0"; "a"; "c"; "e" ] (List.rev !keys)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list small_nat)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

(* Model check against a sorted-list reference: interleaved pushes and
   pops (with values carried, not just keys) must match exactly,
   including the (key, seq) lexicographic tiebreak the engine's
   determinism rests on. *)
let prop_heap_interleaved_model =
  QCheck.Test.make ~name:"heap matches sorted-list model under interleaving"
    ~count:300
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (push, key) ->
          if push then begin
            let v = (key, !seq) in
            Heap.push h ~key ~seq:!seq v;
            model :=
              List.sort
                (fun (k1, s1) (k2, s2) -> compare (k1, s1) (k2, s2))
                ((key, !seq) :: !model);
            incr seq
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> ()
            | Some (k, s, v), (mk, ms) :: rest ->
                if k <> mk || s <> ms || v <> (mk, ms) then ok := false
                else model := rest
            | Some _, [] | None, _ :: _ -> ok := false;
          if Heap.length h <> List.length !model then ok := false;
          match (Heap.peek_key h, !model) with
          | None, [] -> ()
          | Some k, (mk, _) :: _ -> if k <> mk then ok := false
          | _ -> ok := false)
        ops;
      !ok)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks pushes and pops" ~count:200
    QCheck.(list small_nat)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let n = List.length keys in
      let ok = ref (Heap.length h = n) in
      List.iteri
        (fun i _ ->
          ignore (Heap.pop h);
          ok := !ok && Heap.length h = n - i - 1)
        keys;
      !ok)

(* ------------------------------------------------------------------ *)
(* Cond / Mailbox / Semaphore / Ivar                                   *)
(* ------------------------------------------------------------------ *)

let test_cond_signal_wakes_one () =
  let woken = ref 0 in
  ignore
    (run_sim (fun () ->
         let c = Cond.create () in
         for _ = 1 to 3 do
           Engine.spawn (fun () ->
               Cond.await c;
               incr woken)
         done;
         Engine.sleep (Time.us 1);
         Cond.signal c;
         Engine.sleep (Time.us 1)));
  Alcotest.(check int) "exactly one woken" 1 !woken

let test_cond_broadcast_wakes_all () =
  let woken = ref 0 in
  ignore
    (run_sim (fun () ->
         let c = Cond.create () in
         for _ = 1 to 3 do
           Engine.spawn (fun () ->
               Cond.await c;
               incr woken)
         done;
         Engine.sleep (Time.us 1);
         Cond.broadcast c;
         Engine.sleep (Time.us 1)));
  Alcotest.(check int) "all woken" 3 !woken

let test_cond_timeout_does_not_eat_signal () =
  (* A waiter that timed out must not consume a later signal meant for a
     live waiter. *)
  let woken = ref 0 in
  ignore
    (run_sim (fun () ->
         let c = Cond.create () in
         Engine.spawn (fun () ->
             (* This waiter times out at 1us. *)
             ignore (Cond.await_timeout c (Time.us 1) : bool));
         Engine.spawn (fun () ->
             Cond.await c;
             incr woken);
         Engine.sleep (Time.us 5);
         Cond.signal c;
         Engine.sleep (Time.us 1)));
  Alcotest.(check int) "live waiter woken" 1 !woken

let test_mailbox_fifo () =
  let received = ref [] in
  ignore
    (run_sim (fun () ->
         let mb = Mailbox.create () in
         Engine.spawn (fun () ->
             for _ = 1 to 3 do
               received := Mailbox.recv mb :: !received
             done);
         Engine.sleep (Time.us 1);
         Mailbox.send mb 1;
         Mailbox.send mb 2;
         Mailbox.send mb 3));
  Alcotest.(check (list int)) "fifo delivery" [ 1; 2; 3 ] (List.rev !received)

let test_mailbox_recv_blocks_until_send () =
  let recv_time = ref 0 in
  ignore
    (run_sim (fun () ->
         let mb = Mailbox.create () in
         Engine.spawn (fun () ->
             ignore (Mailbox.recv mb : int);
             recv_time := Engine.now ());
         Engine.sleep (Time.us 10);
         Mailbox.send mb 99));
  Alcotest.(check int) "received when sent" (Time.us 10) !recv_time

let test_mailbox_recv_timeout () =
  let got = ref (Some 1) in
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let mb : int Mailbox.t = Mailbox.create () in
         got := Mailbox.recv_timeout mb (Time.us 7);
         elapsed := Engine.now ()));
  Alcotest.(check (option int)) "no message" None !got;
  Alcotest.(check int) "waited full timeout" (Time.us 7) !elapsed

let test_semaphore_limits_concurrency () =
  let peak = ref 0 and active = ref 0 in
  ignore
    (run_sim (fun () ->
         let s = Semaphore.create 2 in
         for _ = 1 to 6 do
           Engine.spawn (fun () ->
               Semaphore.with_permit s (fun () ->
                   incr active;
                   if !active > !peak then peak := !active;
                   Engine.sleep (Time.us 5);
                   decr active))
         done));
  Alcotest.(check int) "at most 2 concurrent" 2 !peak

let test_semaphore_fifo_handoff () =
  let order = ref [] in
  ignore
    (run_sim (fun () ->
         let s = Semaphore.create 1 in
         for i = 1 to 4 do
           Engine.spawn (fun () ->
               Semaphore.with_permit s (fun () ->
                   order := i :: !order;
                   Engine.sleep (Time.us 1)))
         done));
  Alcotest.(check (list int)) "fifo service" [ 1; 2; 3; 4 ] (List.rev !order)

let test_ivar_fill_read () =
  let v = ref 0 and fill_time = ref 0 and read_time = ref 0 in
  ignore
    (run_sim (fun () ->
         let iv = Ivar.create () in
         Engine.spawn (fun () ->
             v := Ivar.read iv;
             read_time := Engine.now ());
         Engine.sleep (Time.us 3);
         fill_time := Engine.now ();
         Ivar.fill iv 123));
  Alcotest.(check int) "value" 123 !v;
  Alcotest.(check int) "read resumed at fill time" !fill_time !read_time

let test_ivar_double_fill_rejected () =
  ignore
    (run_sim (fun () ->
         let iv = Ivar.create () in
         Ivar.fill iv 1;
         match Ivar.fill iv 2 with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_series_summary () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.Series.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Series.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Series.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Series.max s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.Series.percentile s 50.0)

let test_series_percentile_tail () =
  let s = Stats.Series.create () in
  for i = 1 to 1000 do
    Stats.Series.add s (float_of_int i)
  done;
  let p99 = Stats.Series.percentile s 99.0 in
  Alcotest.(check bool) "p99 near 990" true (p99 >= 985.0 && p99 <= 995.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 1000.0
    (Stats.Series.percentile s 100.0)

let prop_series_mean_bounded =
  QCheck.Test.make ~name:"series mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.Series.create () in
      List.iter (Stats.Series.add s) xs;
      let m = Stats.Series.mean s in
      m >= Stats.Series.min s -. 1e-9 && m <= Stats.Series.max s +. 1e-9)

let test_timeseries_buckets () =
  let ts = Stats.Timeseries.create ~bucket:(Time.sec 1) in
  Stats.Timeseries.add ts ~at:(Time.ms 500) 10.0;
  Stats.Timeseries.add ts ~at:(Time.ms 800) 5.0;
  Stats.Timeseries.add ts ~at:(Time.ms 2500) 7.0;
  match Stats.Timeseries.buckets ts with
  | [ (t0, v0); (t1, v1); (t2, v2) ] ->
      Alcotest.(check int) "bucket0 start" 0 t0;
      Alcotest.(check (float 1e-9)) "bucket0 sum" 15.0 v0;
      Alcotest.(check int) "bucket1 start" (Time.sec 1) t1;
      Alcotest.(check (float 1e-9)) "bucket1 empty" 0.0 v1;
      Alcotest.(check int) "bucket2 start" (Time.sec 2) t2;
      Alcotest.(check (float 1e-9)) "bucket2 sum" 7.0 v2
  | other ->
      Alcotest.failf "expected 3 buckets, got %d" (List.length other)

let test_busy_utilization () =
  let b = Stats.Busy.create () in
  Stats.Busy.record b ~start:0 ~stop:(Time.sec 1);
  Stats.Busy.record b ~start:0 ~stop:(Time.sec 1);
  Stats.Busy.record b ~start:(Time.sec 1) ~stop:(Time.sec 2);
  Alcotest.(check (float 1e-9))
    "1.5 cores average over 2s" 1.5
    (Stats.Busy.utilization b ~over:(Time.sec 2))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_int_range () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let a = Rng.split r in
  let b = Rng.split r in
  let xs = List.init 5 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 5 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float stays in range" ~count:200
    QCheck.(pair small_nat (float_bound_exclusive 100.0))
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.0);
      let r = Rng.create seed in
      let v = Rng.float r bound in
      v >= 0.0 && v < bound)

let test_time_pretty_print () =
  Alcotest.(check string) "ns" "42ns" (Time.to_string 42);
  Alcotest.(check string) "us" "1.50us" (Time.to_string 1500);
  Alcotest.(check string) "ms" "2.00ms" (Time.to_string (Time.ms 2));
  Alcotest.(check string) "s" "3.000s" (Time.to_string (Time.sec 3))

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "engine",
        [
          tc "clock starts at zero" `Quick test_clock_starts_at_zero;
          tc "sleep advances clock" `Quick test_sleep_advances_clock;
          tc "sleep zero" `Quick test_sleep_zero_is_noop_in_time;
          tc "sequential sleeps" `Quick test_sequential_sleeps_accumulate;
          tc "spawn concurrency" `Quick test_spawn_runs_concurrently;
          tc "fifo at same timestamp" `Quick test_event_ordering_fifo_at_same_time;
          tc "spawner continues first" `Quick test_spawner_continues_before_child;
          tc "deadline stops run" `Quick test_deadline_stops_run;
          tc "stop preserves events" `Quick test_stop_preserves_pending_events;
          tc "process failure propagates" `Quick test_process_failure_propagates;
          tc "not in process" `Quick test_not_in_process;
          tc "waker fires once" `Quick test_suspend_waker_once;
          tc "suspend timeout" `Quick test_suspend_timeout_fires;
          tc "suspend wake beats timeout" `Quick test_suspend_timeout_wake_wins;
          tc "rng determinism" `Quick test_rng_determinism;
        ] );
      ( "heap",
        [
          tc "ordering with tiebreak" `Quick test_heap_ordering;
          qt prop_heap_sorts;
          qt prop_heap_length;
          qt prop_heap_interleaved_model;
        ] );
      ( "sync",
        [
          tc "cond signal wakes one" `Quick test_cond_signal_wakes_one;
          tc "cond broadcast wakes all" `Quick test_cond_broadcast_wakes_all;
          tc "cond timeout no signal steal" `Quick
            test_cond_timeout_does_not_eat_signal;
          tc "mailbox fifo" `Quick test_mailbox_fifo;
          tc "mailbox recv blocks" `Quick test_mailbox_recv_blocks_until_send;
          tc "mailbox recv timeout" `Quick test_mailbox_recv_timeout;
          tc "semaphore limits concurrency" `Quick
            test_semaphore_limits_concurrency;
          tc "semaphore fifo handoff" `Quick test_semaphore_fifo_handoff;
          tc "ivar fill/read" `Quick test_ivar_fill_read;
          tc "ivar double fill" `Quick test_ivar_double_fill_rejected;
        ] );
      ( "stats",
        [
          tc "series summary" `Quick test_series_summary;
          tc "series tail percentile" `Quick test_series_percentile_tail;
          qt prop_series_mean_bounded;
          tc "timeseries buckets" `Quick test_timeseries_buckets;
          tc "busy utilization" `Quick test_busy_utilization;
        ] );
      ( "rng-time",
        [
          tc "rng int range" `Quick test_rng_int_range;
          tc "rng split" `Quick test_rng_split_independent;
          qt prop_rng_float_range;
          tc "time pretty print" `Quick test_time_pretty_print;
        ] );
    ]
