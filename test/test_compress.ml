(* Tests for the LZW codec used by the NICFS compression stage. *)

open Compress

let roundtrip s =
  let enc = Lzw.encode (Bytes.of_string s) in
  Bytes.to_string (Lzw.decode enc)

let test_empty () = Alcotest.(check string) "empty" "" (roundtrip "")

let test_simple () =
  Alcotest.(check string) "simple" "hello world" (roundtrip "hello world")

let test_repetitive_compresses () =
  let s = String.concat "" (List.init 1000 (fun _ -> "abcabcabc")) in
  let enc = Lzw.encode (Bytes.of_string s) in
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Lzw.decode enc));
  Alcotest.(check bool)
    (Printf.sprintf "compresses well (%d -> %d)" (String.length s)
       (Bytes.length enc))
    true
    (Bytes.length enc < String.length s / 4)

let test_zeros_compress_strongly () =
  let s = String.make 100_000 '\000' in
  let enc = Lzw.encode (Bytes.of_string s) in
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Lzw.decode enc));
  Alcotest.(check bool) "better than 10x" true
    (Bytes.length enc < String.length s / 10)

let test_cscsc_case () =
  (* The classic LZW corner case: code referencing the entry being
     defined. "ababab..." exercises it. *)
  let s = String.concat "" (List.init 500 (fun _ -> "ab")) in
  Alcotest.(check string) "cScSc" s (roundtrip s)

let test_single_char () = Alcotest.(check string) "x" "x" (roundtrip "x")

let test_binary_bytes () =
  let b = Bytes.init 4096 (fun i -> Char.chr (i * 37 mod 256)) in
  let out = Lzw.decode (Lzw.encode b) in
  Alcotest.(check bytes) "binary roundtrip" b out

let test_random_incompressible () =
  let rng = Sim.Rng.create 3 in
  let b = Bytes.create 50_000 in
  Sim.Rng.fill_bytes rng b;
  let enc = Lzw.encode b in
  Alcotest.(check bytes) "roundtrip" b (Lzw.decode enc);
  (* Random data may expand (12-bit codes per byte-ish) but not by much
     more than 50%. *)
  Alcotest.(check bool) "bounded expansion" true
    (Bytes.length enc < Bytes.length b * 3 / 2 + 64)

let test_zero_ratio_controls_compression () =
  (* The Tencent Sort experiment's premise: more zeros => smaller wire
     size. *)
  let rng = Sim.Rng.create 5 in
  let sizes =
    List.map
      (fun zeros ->
        let d =
          Storage.Data.fill_ratio
            (Storage.Data.zero ~len:200_000)
            ~zeros ~rng
        in
        Bytes.length (Lzw.encode (Storage.Data.to_bytes d)))
      [ 0.4; 0.6; 0.8 ]
  in
  match sizes with
  | [ s40; s60; s80 ] ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone: %d > %d > %d" s40 s60 s80)
        true
        (s40 > s60 && s60 > s80)
  | _ -> assert false

let test_decode_rejects_garbage () =
  match Lzw.decode (Bytes.of_string "abc") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ratio_helper () =
  Alcotest.(check (float 1e-9)) "half saved" 0.5
    (Lzw.ratio ~original:100 ~compressed:50);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Lzw.ratio ~original:0 ~compressed:0)

let prop_roundtrip =
  QCheck.Test.make ~name:"lzw roundtrips arbitrary strings" ~count:300
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s -> roundtrip s = s)

let prop_roundtrip_bytes =
  (* Full 0-255 byte range, not just printable characters: the codec
     sees raw PM log payloads. *)
  QCheck.Test.make ~name:"lzw roundtrips arbitrary bytes" ~count:300
    QCheck.(array_of_size Gen.(0 -- 2000) (int_bound 255))
    (fun a ->
      let b = Bytes.init (Array.length a) (fun i -> Char.chr a.(i)) in
      Bytes.equal (Lzw.decode (Lzw.encode b)) b)

let prop_roundtrip_low_entropy =
  QCheck.Test.make ~name:"lzw roundtrips low-entropy strings" ~count:200
    QCheck.(
      pair (string_of_size Gen.(1 -- 8)) (int_range 1 500))
    (fun (unit_s, reps) ->
      QCheck.assume (String.length unit_s > 0);
      let s = String.concat "" (List.init reps (fun _ -> unit_s)) in
      roundtrip s = s)

(* ------------------------------------------------------------------ *)
(* Cross-compatibility with the historical encoder                     *)
(* ------------------------------------------------------------------ *)

(* Verbatim copy of the pre-streaming encoder (Buffer bitwriter,
   per-call Hashtbl dictionary), kept as a reference oracle: the
   rewritten encoder must produce byte-identical output. *)
module Legacy = struct
  let max_code = 4096
  let first_free = 256

  module Bitwriter = struct
    type t = { buf : Buffer.t; mutable acc : int; mutable bits : int }

    let create () = { buf = Buffer.create 1024; acc = 0; bits = 0 }

    let put t code =
      t.acc <- t.acc lor (code lsl t.bits);
      t.bits <- t.bits + 12;
      while t.bits >= 8 do
        Buffer.add_uint8 t.buf (t.acc land 0xFF);
        t.acc <- t.acc lsr 8;
        t.bits <- t.bits - 8
      done

    let finish t =
      if t.bits > 0 then Buffer.add_uint8 t.buf (t.acc land 0xFF);
      Buffer.to_bytes t.buf
  end

  let encode input =
    let n = Bytes.length input in
    let out = Bitwriter.create () in
    let header = Bytes.create 8 in
    Bytes.set_int64_le header 0 (Int64.of_int n);
    if n = 0 then Bytes.cat header (Bitwriter.finish out)
    else begin
      let dict = Hashtbl.create 4096 in
      let next = ref first_free in
      let w = ref (Char.code (Bytes.get input 0)) in
      for i = 1 to n - 1 do
        let c = Char.code (Bytes.get input i) in
        let key = (!w lsl 8) lor c in
        match Hashtbl.find_opt dict key with
        | Some code -> w := code
        | None ->
            Bitwriter.put out !w;
            if !next < max_code then begin
              Hashtbl.add dict key !next;
              incr next
            end;
            w := c
      done;
      Bitwriter.put out !w;
      Bytes.cat header (Bitwriter.finish out)
    end
end

let prop_encoder_matches_legacy =
  QCheck.Test.make ~name:"rewritten encoder is byte-identical to legacy"
    ~count:300
    QCheck.(array_of_size Gen.(0 -- 2000) (int_bound 255))
    (fun a ->
      let b = Bytes.init (Array.length a) (fun i -> Char.chr a.(i)) in
      Bytes.equal (Lzw.encode b) (Legacy.encode b))

let test_legacy_dict_freeze_compat () =
  (* Inputs big and diverse enough to fill all 4096 dictionary entries,
     exercising the freeze path in both encoders. *)
  let rng = Sim.Rng.create 17 in
  let b = Bytes.create 200_000 in
  Sim.Rng.fill_bytes rng b;
  Alcotest.(check bytes) "random" (Legacy.encode b) (Lzw.encode b);
  let rep =
    Bytes.of_string
      (String.concat "" (List.init 8000 (fun i -> Printf.sprintf "%x" i)))
  in
  Alcotest.(check bytes) "structured" (Legacy.encode rep) (Lzw.encode rep)

(* ------------------------------------------------------------------ *)
(* Streaming entry points over payload forms                           *)
(* ------------------------------------------------------------------ *)

module Data = Storage.Data

(* Payloads in every form the replication pipeline produces: real,
   synthetic, zero, and rope concatenations of the three. *)
let gen_payload =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, map (fun s -> Data.of_string s) (string_size ~gen:char (0 -- 500)));
        (3, map2 (fun seed len -> Data.synthetic ~seed ~len) (1 -- 100) (0 -- 500));
        (2, map (fun len -> Data.zero ~len) (0 -- 500));
      ]
  in
  frequency
    [ (1, leaf); (2, map Data.concat (list_size (0 -- 5) leaf)) ]

let arb_payload =
  QCheck.make gen_payload ~print:(Format.asprintf "%a" Data.pp)

let prop_encode_data_matches_flat =
  QCheck.Test.make ~name:"encode_data equals encode of materialized payload"
    ~count:300 arb_payload (fun d ->
      Bytes.equal
        (Data.to_bytes (Lzw.encode_data d))
        (Lzw.encode (Data.to_bytes d)))

let prop_encoded_length_data =
  QCheck.Test.make ~name:"encoded_length_data equals encode_data length"
    ~count:300 arb_payload (fun d ->
      Lzw.encoded_length_data d = Data.length (Lzw.encode_data d))

let prop_roundtrip_data_forms =
  QCheck.Test.make ~name:"lzw roundtrips every payload form" ~count:300
    arb_payload (fun d ->
      Data.equal (Lzw.decode_data (Lzw.encode_data d)) (Data.real (Data.to_bytes d)))

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "compress"
    [
      ( "lzw",
        [
          tc "empty" `Quick test_empty;
          tc "simple" `Quick test_simple;
          tc "repetitive compresses" `Quick test_repetitive_compresses;
          tc "zeros compress strongly" `Quick test_zeros_compress_strongly;
          tc "cScSc corner case" `Quick test_cscsc_case;
          tc "single char" `Quick test_single_char;
          tc "binary bytes" `Quick test_binary_bytes;
          tc "random incompressible" `Quick test_random_incompressible;
          tc "zero ratio controls size" `Quick
            test_zero_ratio_controls_compression;
          tc "decode rejects garbage" `Quick test_decode_rejects_garbage;
          tc "ratio helper" `Quick test_ratio_helper;
          qt prop_roundtrip;
          qt prop_roundtrip_bytes;
          qt prop_roundtrip_low_entropy;
        ] );
      ( "lzw-streaming",
        [
          tc "dict freeze compat" `Quick test_legacy_dict_freeze_compat;
          qt prop_encoder_matches_legacy;
          qt prop_encode_data_matches_flat;
          qt prop_encoded_length_data;
          qt prop_roundtrip_data_forms;
        ] );
    ]
