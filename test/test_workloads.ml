(* Tests for the application workloads: microbenchmarks, streamcluster,
   the LSM KV store, Filebench profiles, Tencent Sort, iperf. *)

open Sim
open Storage
open Linefs
open Workloads

let kib n = n * 1024

let test_params =
  {
    Params.default with
    Params.chunk_bytes = 256 * 1024;
    log_bytes = 8 * 1024 * 1024;
  }

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let with_linefs f =
  run_sim (fun () ->
      let d = Deployment.create ~params:test_params ~nodes:3 () in
      let c = Deployment.add_client d ~id:1 in
      let r = f d (Libfs.ops c) in
      Deployment.stop d;
      r)

(* ------------------------------------------------------------------ *)
(* Microbench                                                          *)
(* ------------------------------------------------------------------ *)

let test_seq_write_then_read () =
  with_linefs (fun _d ops ->
      Microbench.seq_write ~ops ~path:"/f" ~file_bytes:(kib 512)
        ~io_bytes:(kib 16) ();
      let read = Microbench.seq_read ~ops ~path:"/f" ~io_bytes:(kib 16) () in
      Alcotest.(check int) "all bytes read back" (kib 512) read)

let test_rand_read_covers_file () =
  with_linefs (fun _d ops ->
      Microbench.seq_write ~ops ~path:"/f" ~file_bytes:(kib 256)
        ~io_bytes:(kib 16) ();
      let rng = Rng.create 3 in
      let read = Microbench.rand_read ~ops ~path:"/f" ~io_bytes:(kib 16) ~rng () in
      Alcotest.(check int) "random reads read a file's worth" (kib 256) read)

let test_latency_series_shape () =
  with_linefs (fun _d ops ->
      let s =
        Microbench.write_fsync_latency ~ops ~path:"/lat" ~n_ops:50
          ~io_bytes:(kib 16) ()
      in
      Alcotest.(check int) "one sample per op" 50 (Stats.Series.count s);
      Alcotest.(check bool) "positive latency" true (Stats.Series.mean s > 0.0);
      Alcotest.(check bool) "p99 >= mean" true
        (Stats.Series.percentile s 99.0 >= Stats.Series.mean s *. 0.5))

(* ------------------------------------------------------------------ *)
(* Streamcluster                                                       *)
(* ------------------------------------------------------------------ *)

let test_streamcluster_solo_time () =
  let elapsed =
    run_sim (fun () ->
        let topo = Hw.Topology.create ~nodes:1 () in
        let node = Hw.Topology.primary topo in
        Streamcluster.run ~iterations:5 ~work_per_iter:(Time.ms 10) ~node ())
  in
  (* 48 threads on 48 cores: each iteration is ~10 ms. *)
  let expect = Time.ms 50 in
  Alcotest.(check bool)
    (Printf.sprintf "solo close to ideal (%s vs %s)" (Time.to_string elapsed)
       (Time.to_string expect))
    true
    (elapsed >= expect && elapsed < expect * 12 / 10)

let test_streamcluster_slowed_by_antagonist () =
  let contended =
    run_sim (fun () ->
        let topo = Hw.Topology.create ~nodes:1 () in
        let node = Hw.Topology.primary topo in
        (* Steal half the cores with an equal-priority spinner. *)
        for _ = 1 to 24 do
          Engine.spawn (fun () ->
              Hw.Cpu.run node.Hw.Node.host (Time.sec 1))
        done;
        Streamcluster.run ~iterations:5 ~work_per_iter:(Time.ms 10) ~node ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "contended run slower (%s)" (Time.to_string contended))
    true
    (contended > Time.ms 60)

let test_streamcluster_background_stops () =
  run_sim (fun () ->
      let topo = Hw.Topology.create ~nodes:1 () in
      let node = Hw.Topology.primary topo in
      let bg =
        Streamcluster.start_background ~work_per_iter:(Time.ms 5) ~node ()
      in
      Engine.sleep (Time.ms 40);
      Streamcluster.stop bg;
      Alcotest.(check bool) "made progress" true
        (Streamcluster.iterations_done bg > 0))

(* ------------------------------------------------------------------ *)
(* LevelDB                                                             *)
(* ------------------------------------------------------------------ *)

let test_leveldb_put_get () =
  with_linefs (fun _d ops ->
      let db = Leveldb.open_db ~ops ~dir:"/db" () in
      Leveldb.put db ~key:"alpha" ~value:(Data.of_string "one") ();
      Leveldb.put db ~key:"beta" ~value:(Data.of_string "two") ();
      (match Leveldb.get db ~key:"alpha" with
      | Some v ->
          Alcotest.(check string) "memtable hit" "one"
            (Bytes.to_string (Data.to_bytes v))
      | None -> Alcotest.fail "missing key");
      Alcotest.(check bool) "absent key" true (Leveldb.get db ~key:"nope" = None);
      Leveldb.close db)

let test_leveldb_get_after_flush () =
  with_linefs (fun _d ops ->
      let db = Leveldb.open_db ~ops ~dir:"/db" () in
      for i = 0 to 99 do
        Leveldb.put db
          ~key:(Printf.sprintf "key%04d" i)
          ~value:(Data.of_string (Printf.sprintf "value-%d" i))
          ()
      done;
      Leveldb.flush db;
      Alcotest.(check bool) "sstable created" true (Leveldb.sstable_count db >= 1);
      (match Leveldb.get db ~key:"key0042" with
      | Some v ->
          Alcotest.(check string) "sstable read" "value-42"
            (Bytes.to_string (Data.to_bytes v))
      | None -> Alcotest.fail "missing key after flush");
      Leveldb.close db)

let test_leveldb_overwrite_latest_wins () =
  with_linefs (fun _d ops ->
      let db = Leveldb.open_db ~ops ~dir:"/db" () in
      Leveldb.put db ~key:"k" ~value:(Data.of_string "old") ();
      Leveldb.flush db;
      Leveldb.put db ~key:"k" ~value:(Data.of_string "new") ();
      (match Leveldb.get db ~key:"k" with
      | Some v ->
          Alcotest.(check string) "latest wins" "new"
            (Bytes.to_string (Data.to_bytes v))
      | None -> Alcotest.fail "missing");
      Leveldb.flush db;
      (match Leveldb.get db ~key:"k" with
      | Some v ->
          Alcotest.(check string) "latest wins across sstables" "new"
            (Bytes.to_string (Data.to_bytes v))
      | None -> Alcotest.fail "missing after flush");
      Leveldb.close db)

let test_leveldb_memtable_flush_on_capacity () =
  with_linefs (fun _d ops ->
      let db = Leveldb.open_db ~ops ~dir:"/db" ~memtable_bytes:(kib 64) () in
      for i = 0 to 127 do
        Leveldb.put db
          ~key:(Printf.sprintf "%08d" i)
          ~value:(Data.synthetic ~seed:i ~len:1024)
          ()
      done;
      Alcotest.(check bool) "flushed automatically" true
        (Leveldb.sstable_count db >= 2);
      Leveldb.close db)

let test_db_bench_workloads_run () =
  List.iter
    (fun w ->
      with_linefs (fun _d ops ->
          let s =
            Leveldb.db_bench ~ops ~dir:"/db" ~workload:w ~n:64
              ~value_bytes:256 ()
          in
          Alcotest.(check int)
            (Leveldb.workload_name w ^ " sample count")
            64 (Stats.Series.count s)))
    [
      Leveldb.Fillseq;
      Leveldb.Fillrandom;
      Leveldb.Fillsync;
      Leveldb.Readseq;
      Leveldb.Readrandom;
      Leveldb.Readhot;
    ]

let test_db_bench_fillsync_slower () =
  let mean w =
    with_linefs (fun _d ops ->
        Stats.Series.mean
          (Leveldb.db_bench ~ops ~dir:"/db" ~workload:w ~n:64 ~value_bytes:256 ()))
  in
  let seq = mean Leveldb.Fillseq in
  let sync = mean Leveldb.Fillsync in
  Alcotest.(check bool)
    (Printf.sprintf "fillsync (%.1fus) slower than fillseq (%.1fus)" sync seq)
    true (sync > seq)

(* ------------------------------------------------------------------ *)
(* Filebench                                                           *)
(* ------------------------------------------------------------------ *)

let test_filebench_profiles_run () =
  List.iter
    (fun profile ->
      let r =
        with_linefs (fun _d ops ->
            Filebench.run ~ops ~profile ~files:60 ~threads:4
              ~duration:(Time.ms 200) ~seed:5 ())
      in
      Alcotest.(check bool)
        (Filebench.profile_name profile ^ " makes progress")
        true
        (r.Filebench.ops_done > 0 && r.Filebench.kops_per_sec > 0.0))
    [ Filebench.Fileserver; Filebench.Varmail ]

let test_filebench_timeseries () =
  let ts = Stats.Timeseries.create ~bucket:(Time.ms 50) in
  let _ =
    with_linefs (fun _d ops ->
        Filebench.run ~ops ~profile:Filebench.Varmail ~files:60 ~threads:4 ~ts
          ~duration:(Time.ms 200) ~seed:5 ())
  in
  let buckets = Stats.Timeseries.buckets ts in
  Alcotest.(check bool) "several buckets populated" true
    (List.length buckets >= 3)

(* ------------------------------------------------------------------ *)
(* Metastorm                                                           *)
(* ------------------------------------------------------------------ *)

let test_metastorm_runs () =
  let r =
    with_linefs (fun _d ops ->
        Metastorm.run ~ops ~files:60 ~threads:4 ~duration:(Time.ms 200)
          ~seed:7 ())
  in
  Alcotest.(check bool)
    "metastorm makes progress" true
    (r.Metastorm.ops_done > 0 && r.Metastorm.kops_per_sec > 0.0)

let test_metastorm_namespace_stays_sane () =
  (* After the storm every surviving file is a complete 512 B payload
     (the temp+rename update is atomic — no torn in-place writes), and
     no temp names leak once their cycle completes the rename. *)
  with_linefs (fun _d ops ->
      let _ =
        Metastorm.run ~ops ~files:60 ~threads:4 ~duration:(Time.ms 200)
          ~seed:7 ()
      in
      for i = 0 to 59 do
        match ops.Dfs_intf.file_size (Printf.sprintf "/metastorm/f%05d" i) with
        | Some size ->
            Alcotest.(check int) (Printf.sprintf "file %d complete" i) 512 size
        | None -> () (* unlinked by a REMOVE phase: fine *)
      done)

(* ------------------------------------------------------------------ *)
(* Tencent sort                                                        *)
(* ------------------------------------------------------------------ *)

let test_tencent_sort_end_to_end () =
  let r =
    with_linefs (fun d ops ->
        Tencent_sort.run ~ops
          ~node:(Deployment.primary d).Deployment.node
          ~records:2000 ~zero_ratio:0.6 ~seed:11 ())
  in
  Alcotest.(check int) "records preserved" 2000 r.Tencent_sort.records;
  Alcotest.(check int) "output complete" (2000 * 100) r.Tencent_sort.output_bytes;
  Alcotest.(check bool) "phases measured" true
    (r.Tencent_sort.partition_time > 0 && r.Tencent_sort.sort_time > 0)

let test_tencent_sort_compression_saves_wire () =
  let wire zero_ratio compression =
    run_sim (fun () ->
        let d =
          Deployment.create ~params:test_params ~nodes:3 ~compression ()
        in
        let c = Deployment.add_client d ~id:1 in
        let ops = Libfs.ops c in
        let _ =
          Tencent_sort.run ~ops
            ~node:(Deployment.primary d).Deployment.node
            ~records:2000 ~zero_ratio ~seed:11 ()
        in
        Deployment.flush_all d;
        let w = Deployment.replication_wire_bytes d in
        Deployment.stop d;
        w)
  in
  let plain = wire 0.8 false in
  let compressed = wire 0.8 true in
  Alcotest.(check bool)
    (Printf.sprintf "compression reduced wire bytes (%d -> %d)" plain compressed)
    true
    (compressed * 2 < plain)

(* ------------------------------------------------------------------ *)
(* iperf                                                               *)
(* ------------------------------------------------------------------ *)

let test_iperf_saturates_link () =
  run_sim (fun () ->
      let topo = Hw.Topology.create ~nodes:2 () in
      let src = Hw.Topology.node topo 0 and dst = Hw.Topology.node topo 1 in
      let ip = Iperf.start ~src ~dst () in
      Engine.sleep (Time.ms 100);
      Iperf.stop ip;
      let rate = float_of_int (Iperf.bytes_sent ip) /. 0.1 in
      Alcotest.(check bool)
        (Printf.sprintf "near goodput (%.2f GB/s)" (rate /. 1e9))
        true
        (rate > 1.9e9 && rate < 2.3e9))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "microbench",
        [
          tc "seq write/read" `Quick test_seq_write_then_read;
          tc "rand read" `Quick test_rand_read_covers_file;
          tc "latency series" `Quick test_latency_series_shape;
        ] );
      ( "streamcluster",
        [
          tc "solo time" `Quick test_streamcluster_solo_time;
          tc "slowed by antagonist" `Quick test_streamcluster_slowed_by_antagonist;
          tc "background stops" `Quick test_streamcluster_background_stops;
        ] );
      ( "leveldb",
        [
          tc "put/get" `Quick test_leveldb_put_get;
          tc "get after flush" `Quick test_leveldb_get_after_flush;
          tc "overwrite latest wins" `Quick test_leveldb_overwrite_latest_wins;
          tc "flush on capacity" `Quick test_leveldb_memtable_flush_on_capacity;
          tc "db_bench workloads run" `Quick test_db_bench_workloads_run;
          tc "fillsync slower" `Quick test_db_bench_fillsync_slower;
        ] );
      ( "filebench",
        [
          tc "profiles run" `Quick test_filebench_profiles_run;
          tc "timeseries" `Quick test_filebench_timeseries;
        ] );
      ( "metastorm",
        [
          tc "runs" `Quick test_metastorm_runs;
          tc "namespace stays sane" `Quick test_metastorm_namespace_stays_sane;
        ] );
      ( "tencent-sort",
        [
          tc "end to end" `Quick test_tencent_sort_end_to_end;
          tc "compression saves wire" `Quick test_tencent_sort_compression_saves_wire;
        ] );
      ("iperf", [ tc "saturates link" `Quick test_iperf_saturates_link ]);
    ]
