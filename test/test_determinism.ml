(* Determinism pins for the multicore engine work.

   Two layers of protection:

   - Exact single-domain fingerprints of pinned DST scenarios, asserted
     as string equality in-process (the dst_sweep binary checks the
     same strings against test/dst_fingerprints.expected from the CLI).
     Any engine/heap/RNG change that perturbs event order breaks these
     before it reaches CI's fuller sweeps.

   - A qcheck property that a fault-free LineFS workload produces the
     same final [Fs_state.digest]s whether its shards run on one domain
     or four.  This is the user-visible face of the {!Sim.Sharded}
     determinism contract: domain count must never change results. *)

open Sim
open Linefs

let kib n = n * 1024

(* ------------------------------------------------------------------ *)
(* Pinned DST fingerprints (single domain)                             *)
(* ------------------------------------------------------------------ *)

(* These strings are the authoritative single-domain behaviour of the
   whole stack (engine scheduling order, RNG stream, fault machinery,
   FS digests).  If a change legitimately alters behaviour, regenerate
   with [dst_sweep --print-fingerprints] and update both this file and
   test/dst_fingerprints.expected in the same commit. *)
let pinned =
  [
    ( "generated-1",
      (fun () -> Fault.Scenario.generate ~seed:1),
      "digest=46cdb3a6 trace=20 ops=59 drops=0 delays=2 dups=0 reorders=0 \
       corrupts=0 scrubbed=0 ok=true []" );
    ( "adversary-2",
      (fun () -> Fault.Scenario.generate_adversary ~seed:2),
      "digest=73327dc2 trace=16 ops=55 drops=0 delays=0 dups=1 reorders=0 \
       corrupts=2 scrubbed=2 ok=true []" );
    ( "failover-primary-crash-1",
      (fun () -> Fault.Scenario.failover_primary_crash ~seed:1),
      "digest=f988ee61 trace=144 ops=65 drops=0 delays=0 dups=0 reorders=0 \
       corrupts=0 scrubbed=0 ok=true []" );
  ]

let test_pinned_fingerprints () =
  List.iter
    (fun (name, spec, expect) ->
      let got = Fault.Dst.fingerprint (Fault.Dst.run_spec (spec ())).outcome in
      Alcotest.(check string) name expect got)
    pinned

let test_fingerprints_stable_across_reruns () =
  (* Same process, fresh engines: the global state the engine rework
     touched (RPC sequence numbers, switch ids, CRC tables) must not
     leak between runs. *)
  List.iter
    (fun (name, spec, _) ->
      let fp () = Fault.Dst.fingerprint (Fault.Dst.run_spec (spec ())).outcome in
      Alcotest.(check string) (name ^ " rerun") (fp ()) (fp ()))
    pinned

(* ------------------------------------------------------------------ *)
(* Domain count never changes FS digests                               *)
(* ------------------------------------------------------------------ *)

let test_params =
  {
    Params.default with
    Params.chunk_bytes = 256 * 1024;
    log_bytes = 4 * 1024 * 1024;
  }

(* Run [shards] independent LineFS deployments, one per shard, each
   writing a seed-dependent amount of data, and return the final
   primary-FS digest of each. *)
let digests ~shards ~seed ~domains =
  let sh = Sharded.create ~seed ~shards () in
  let out = Array.make shards None in
  for i = 0 to shards - 1 do
    Sharded.spawn_root sh ~shard:i (fun () ->
        let d = Deployment.create ~params:test_params ~nodes:3 () in
        let ops = Libfs.ops (Deployment.add_client d ~id:1) in
        let file_bytes = kib (32 + ((seed + i) mod 7 * 16)) in
        ignore
          (Workloads.Microbench.seq_write ~ops
             ~path:(Printf.sprintf "/det-%d" i)
             ~file_bytes ~io_bytes:(kib 16) ());
        Deployment.flush_all d;
        let dg = Storage.Fs_state.digest (Deployment.primary d).Deployment.fs in
        Deployment.stop d;
        out.(i) <- Some dg)
  done;
  Sharded.run ~domains sh;
  Array.map
    (function Some d -> d | None -> Alcotest.fail "shard did not finish")
    out

let prop_digest_domain_independent =
  QCheck.Test.make
    ~name:"fault-free digests identical at domains=1 and domains=4" ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d1 = digests ~shards:3 ~seed ~domains:1 in
      let d4 = digests ~shards:3 ~seed ~domains:4 in
      d1 = d4)

(* ------------------------------------------------------------------ *)
(* Per-node sharded deployment                                         *)
(* ------------------------------------------------------------------ *)

(* One deployment partitioned per node: node [i] (host + SmartNIC
   plane) on shard [i], fabric latency as per-edge lookahead.  The
   fingerprint covers everything user-visible — primary digest, wire
   bytes, the clock when the workload body finished on shard 0, total
   events across the three engines, and the merged counters — so any
   scheduler or routing change that perturbs the sharded execution
   breaks the pin before it reaches CI's byte-identity smoke. *)
let run_sharded_cell ~domains ~file_kib ~io_kib =
  Counters.reset ();
  let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:3 () in
  (* [create] with [sharding] is called from outside any engine: it
     boots each shard's t = 0 construction itself. *)
  let d =
    Deployment.create ~params:test_params ~sharding:(sh, 0) ~nodes:3 ()
  in
  let out = ref None in
  Sharded.spawn_root sh ~shard:0 (fun () ->
      let ops = Libfs.ops (Deployment.add_client d ~id:1) in
      ignore
        (Workloads.Microbench.seq_write ~ops ~path:"/cell"
           ~file_bytes:(kib file_kib) ~io_bytes:(kib io_kib) ());
      Deployment.flush_all d;
      Deployment.stop d;
      out :=
        Some
          ( Storage.Fs_state.digest (Deployment.primary d).Deployment.fs,
            Deployment.replication_wire_bytes d,
            Engine.now () ));
  Sharded.run ~domains sh;
  let events = ref 0 in
  for i = 0 to 2 do
    events := !events + Engine.events_executed (Sharded.engine sh i);
    Counters.merge (Sharded.engine sh i)
  done;
  match !out with
  | None -> Alcotest.fail "sharded cell did not finish"
  | Some (dg, wire, clock) -> (dg, wire, clock, !events, Counters.all ())

let cell_fingerprint (dg, wire, clock, events, counters) =
  Printf.sprintf "digest=%08lx wire=%d clock=%d events=%d [%s]" dg wire clock
    events
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters))

(* Regenerate by running this test and copying the reported value if a
   change legitimately alters sharded-deployment behaviour. *)
let pinned_cell =
  "digest=0198108d wire=263100 clock=515315 events=355 []"

let test_sharded_cell_pinned () =
  List.iter
    (fun domains ->
      let got =
        cell_fingerprint (run_sharded_cell ~domains ~file_kib:256 ~io_kib:16)
      in
      Alcotest.(check string)
        (Printf.sprintf "sharded cell, domains=%d" domains)
        pinned_cell got)
    [ 1; 2; 4 ]

(* The same workload on a single unsharded engine.  Per-node sharding
   must preserve the user-visible outcome — digest, replicated bytes,
   counter totals — though not the clock: the sharded transport models
   the fabric hop as one cross-shard flight where the single-engine
   path threads it through the switch process, so timings differ by
   sub-percent amounts while the data path stays byte-identical. *)
let run_unsharded_cell ~file_kib ~io_kib =
  Counters.reset ();
  let eng = Engine.create () in
  let out = ref None in
  Engine.spawn_root eng (fun () ->
      let d = Deployment.create ~params:test_params ~nodes:3 () in
      let ops = Libfs.ops (Deployment.add_client d ~id:1) in
      ignore
        (Workloads.Microbench.seq_write ~ops ~path:"/cell"
           ~file_bytes:(kib file_kib) ~io_bytes:(kib io_kib) ());
      Deployment.flush_all d;
      Deployment.stop d;
      out :=
        Some
          ( Storage.Fs_state.digest (Deployment.primary d).Deployment.fs,
            Deployment.replication_wire_bytes d ));
  Engine.run eng;
  Counters.merge eng;
  match !out with
  | None -> Alcotest.fail "unsharded cell did not finish"
  | Some (dg, wire) -> (dg, wire, Counters.all ())

let prop_sharding_preserves_results =
  QCheck.Test.make
    ~name:"per-node sharding preserves digest/wire/counters" ~count:4
    QCheck.(pair (int_range 4 24) (int_range 0 2))
    (fun (units, io_shift) ->
      let file_kib = 16 * units and io_kib = 4 lsl io_shift in
      let dg_u, wire_u, ctr_u = run_unsharded_cell ~file_kib ~io_kib in
      let dg_s, wire_s, _clock, _events, ctr_s =
        run_sharded_cell ~domains:2 ~file_kib ~io_kib
      in
      dg_u = dg_s && wire_u = wire_s && ctr_u = ctr_s)

(* ------------------------------------------------------------------ *)
(* Rack-scale: N nodes as replica groups, cohort clients               *)
(* ------------------------------------------------------------------ *)

(* The rack equivalent of the cell checks above: an N-node rack of
   replica groups driven by per-group cohorts, once per-node sharded
   (at several domain counts) and once on a single unsharded engine.
   Digests, wire bytes and merged counters must agree everywhere; the
   virtual clock is part of the sharded fingerprint (it is identical at
   every domain count) but not of the sharded-vs-unsharded comparison
   (the fabric hop is modelled differently, as for the cell). *)
let rack_params = test_params

let rack_outcome ~rack ~results ~counters =
  let g = Linefs.Rack.group_count rack in
  let digests =
    List.init g (fun i ->
        Storage.Fs_state.digest
          (Deployment.primary (Linefs.Rack.group rack i)).Deployment.fs)
  in
  let slowest =
    Array.fold_left
      (fun acc r -> max acc r.Workloads.Rack_cohort.elapsed)
      0 results
  in
  (digests, Linefs.Rack.replication_wire_bytes rack, slowest, counters)

let run_sharded_rack ~nodes ~group_size ~cohort ~domains ~group_kib ~io_kib =
  Counters.reset ();
  let sh = Sharded.create ~seed_of:(fun _ -> 42) ~shards:nodes () in
  let rack =
    Linefs.Rack.create ~params:rack_params ~sharding:(sh, 0) ~nodes
      ~group_size ()
  in
  let collect =
    Workloads.Rack_cohort.spawn ~sh ~rack ~cohort ~group_bytes:(kib group_kib)
      ~io_bytes:(kib io_kib) ()
  in
  Sharded.run ~domains sh;
  let events = ref 0 in
  for i = 0 to nodes - 1 do
    events := !events + Engine.events_executed (Sharded.engine sh i);
    Counters.merge (Sharded.engine sh i)
  done;
  (rack_outcome ~rack ~results:(collect ()) ~counters:(Counters.all ()), !events)

let run_unsharded_rack ~nodes ~group_size ~cohort ~group_kib ~io_kib =
  Counters.reset ();
  let eng = Engine.create () in
  let handles = ref None in
  Engine.spawn_root eng (fun () ->
      let rack =
        Linefs.Rack.create ~params:rack_params ~nodes ~group_size ()
      in
      let collect =
        Workloads.Rack_cohort.spawn_on ~eng ~rack ~cohort
          ~group_bytes:(kib group_kib) ~io_bytes:(kib io_kib) ()
      in
      handles := Some (rack, collect));
  Engine.run eng;
  Counters.merge eng;
  match !handles with
  | None -> Alcotest.fail "unsharded rack did not boot"
  | Some (rack, collect) ->
      rack_outcome ~rack ~results:(collect ()) ~counters:(Counters.all ())

let rack_fingerprint ((digests, wire, clock, counters), events) =
  Printf.sprintf "digests=%s wire=%d clock=%d events=%d [%s]"
    (String.concat ","
       (List.map (fun d -> Printf.sprintf "%08lx" d) digests))
    wire clock events
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters))

(* Regenerate by running this test and copying the reported value if a
   change legitimately alters rack behaviour. *)
let pinned_rack =
  "digests=57e1cafa,a194fa47 wire=526436 clock=664729 events=1030 []"

let test_rack_pinned () =
  List.iter
    (fun domains ->
      let got =
        rack_fingerprint
          (run_sharded_rack ~nodes:8 ~group_size:4 ~cohort:2 ~domains
             ~group_kib:256 ~io_kib:16)
      in
      Alcotest.(check string)
        (Printf.sprintf "8-node rack, domains=%d" domains)
        pinned_rack got)
    [ 1; 2; 4 ]

let prop_rack_sharding_preserves_results =
  QCheck.Test.make
    ~name:"rack: digests/wire/counters identical at domains 1/2/4 and unsharded"
    ~count:3
    QCheck.(pair (int_range 4 12) (int_range 1 3))
    (fun (units, cohort) ->
      let group_kib = 32 * units and io_kib = 16 in
      let nodes = 8 and group_size = 4 in
      let (dg_u, wire_u, _clk, ctr_u) =
        run_unsharded_rack ~nodes ~group_size ~cohort ~group_kib ~io_kib
      in
      let reference =
        run_sharded_rack ~nodes ~group_size ~cohort ~domains:1 ~group_kib
          ~io_kib
      in
      let (dg_1, wire_1, clk_1, ctr_1), ev_1 = reference in
      (* Unsharded equivalence: everything but the clock. *)
      dg_u = dg_1 && wire_u = wire_1 && ctr_u = ctr_1
      && (* Domain-count identity: everything, clock included. *)
      List.for_all
        (fun domains ->
          let (dg, wire, clk, ctr), ev =
            run_sharded_rack ~nodes ~group_size ~cohort ~domains ~group_kib
              ~io_kib
          in
          dg = dg_1 && wire = wire_1 && clk = clk_1 && ctr = ctr_1
          && ev = ev_1)
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Cohort equivalence: K users over one LibFS = K individual clients   *)
(* ------------------------------------------------------------------ *)

let cross_users = 3
let cross_chunks = 6
let cross_io = kib 16

let cross_stream u =
  Storage.Data.synthetic ~seed:(77 + u) ~len:(cross_chunks * cross_io)

(* Drive one 3-node deployment, return (digest, per-file sizes,
   per-user issued-op and byte counts). *)
let run_cross driver =
  Counters.reset ();
  let eng = Engine.create () in
  let out = ref None in
  Engine.spawn_root eng (fun () ->
      let d = Deployment.create ~params:test_params ~nodes:3 () in
      let per_user = driver d in
      Deployment.flush_all d;
      Deployment.stop d;
      let ops = Libfs.ops (List.hd (Deployment.clients d)) in
      let sizes =
        List.init cross_users (fun u ->
            ops.Dfs_intf.file_size (Printf.sprintf "/cross/u%d" u))
      in
      out :=
        Some
          ( Storage.Fs_state.digest (Deployment.primary d).Deployment.fs,
            sizes,
            per_user ));
  Engine.run eng;
  match !out with
  | None -> Alcotest.fail "cross-check run did not finish"
  | Some r -> r

(* K individual LibFS clients, each a process writing its own file;
   round-robin interleaving via one chunk per turn. *)
let individual_driver d =
  let clis = List.init cross_users (fun u -> Deployment.add_client d ~id:(u + 1)) in
  let opses = List.map Libfs.ops clis in
  List.iteri (fun u o -> if u = 0 then o.Dfs_intf.mkdir "/cross") opses;
  let fds =
    List.mapi
      (fun u o -> o.Dfs_intf.create (Printf.sprintf "/cross/u%d" u))
      opses
  in
  for r = 0 to cross_chunks - 1 do
    List.iteri
      (fun u o ->
        o.Dfs_intf.append (List.nth fds u)
          (Storage.Data.sub (cross_stream u) ~pos:(r * cross_io) ~len:cross_io))
      opses
  done;
  List.iteri
    (fun u o ->
      o.Dfs_intf.fsync (List.nth fds u);
      o.Dfs_intf.close (List.nth fds u))
    opses;
  List.map
    (fun c -> (Libfs.ops_issued c, Libfs.bytes_written c, Libfs.fsync_count c))
    clis

(* One cohort of K users over a single LibFS, same op sequence. *)
let cohort_driver d =
  let cli = Deployment.add_client d ~id:1 in
  let coh = Linefs.Cohort.create ~ops:(Libfs.ops cli) ~users:cross_users () in
  let uops = Array.init cross_users (Linefs.Cohort.user_ops coh) in
  uops.(0).Dfs_intf.mkdir "/cross";
  let fds =
    Array.init cross_users (fun u ->
        uops.(u).Dfs_intf.create (Printf.sprintf "/cross/u%d" u))
  in
  for r = 0 to cross_chunks - 1 do
    Array.iteri
      (fun u fd ->
        uops.(u).Dfs_intf.append fd
          (Storage.Data.sub (cross_stream u) ~pos:(r * cross_io) ~len:cross_io))
      fds
  done;
  Array.iteri
    (fun u fd ->
      uops.(u).Dfs_intf.fsync fd;
      uops.(u).Dfs_intf.close fd)
    fds;
  List.init cross_users (fun u ->
      let s = Linefs.Cohort.user_stats coh u in
      ( s.Linefs.Cohort.ops_issued,
        s.Linefs.Cohort.bytes_written,
        s.Linefs.Cohort.fsyncs ))

let test_cohort_equivalence () =
  let dg_i, sizes_i, per_i = run_cross individual_driver in
  let dg_c, sizes_c, per_c = run_cross cohort_driver in
  Alcotest.(check bool) "file-system digests equal" true (dg_i = dg_c);
  Alcotest.(check (list (option int))) "per-user file sizes" sizes_i sizes_c;
  (* Per-user traffic: what each logical user wrote and synced must
     match its stand-alone counterpart.  (The individual clients' LibFS
     op counter includes client-lifecycle ops the cohort view doesn't
     route, so compare bytes and fsyncs, the per-op semantics.) *)
  List.iteri
    (fun u ((_, bytes_i, fsync_i), (_, bytes_c, fsync_c)) ->
      Alcotest.(check int)
        (Printf.sprintf "user %d bytes written" u)
        bytes_i bytes_c;
      Alcotest.(check int) (Printf.sprintf "user %d fsyncs" u) fsync_i fsync_c)
    (List.combine per_i per_c)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "determinism"
    [
      ( "fingerprints",
        [
          tc "pinned single-domain fingerprints" `Quick
            test_pinned_fingerprints;
          tc "stable across in-process reruns" `Quick
            test_fingerprints_stable_across_reruns;
        ] );
      ("domains", [ qt prop_digest_domain_independent ]);
      ( "sharded-deployment",
        [
          tc "pinned sharded-cell fingerprint at domains 1/2/4" `Quick
            test_sharded_cell_pinned;
          qt prop_sharding_preserves_results;
        ] );
      ( "rack",
        [
          tc "pinned 8-node rack fingerprint at domains 1/2/4" `Quick
            test_rack_pinned;
          qt prop_rack_sharding_preserves_results;
          tc "cohort of K users = K individual clients" `Quick
            test_cohort_equivalence;
        ] );
    ]
