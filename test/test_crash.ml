(* Crash-consistency suite (the CrashMonkey role), rebuilt on the
   conformance framework: run an Opgen trace against LineFS in
   lockstep with the Model oracle, snapshotting the model at every
   log-sequence point; then "crash" by taking an arbitrary prefix of
   the client's persisted log, replay it into a fresh FS, and check
   the recovered tree's digest equals the model state at that point.
   Prefix crash consistency (§3.1) says every log prefix must replay
   to a consistent tree matching the history. *)

open Sim
open Storage
open Linefs

(* Huge chunks keep every entry in the client log (no replication-
   triggered reclamation), so full prefixes stay available; the traces
   carry no fsyncs for the same reason. *)
let params =
  { Params.default with Params.chunk_bytes = 64 * 1024 * 1024 }

(* Run a trace against LineFS with the model in lockstep; return the
   persisted entries and the (log seq -> model) history, newest
   first. *)
let random_workload ~ops_count ~seed =
  Conformance.Backends.in_sim (fun () ->
      let d = Deployment.create ~params ~nodes:1 () in
      let client = Deployment.add_client d ~id:1 in
      let trace =
        Conformance.Opgen.generate ~fsyncs:false ~ops:ops_count ~seed ()
      in
      let history = ref [ (0, Conformance.Model.create ()) ] in
      let _, divergences =
        Conformance.Exec.run ~ops:(Libfs.ops client)
          ~model:(Conformance.Model.create ()) ~trace
          ~on_step:(fun _ m ->
            history := (Libfs.last_seq client, m) :: !history)
          ()
      in
      (match divergences with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "seed %d diverged from model: %a" seed
            Conformance.Exec.pp_divergence d);
      let entries = ref [] in
      Oplog.Log.iter (Libfs.log client) (fun e -> entries := e :: !entries);
      Deployment.stop d;
      (List.rev !entries, !history))

(* The model state at the latest snapshot with log seq <= [seq].
   Non-mutating ops duplicate a seq in the history with an identical
   tree, so any match is the right one. *)
let model_at history ~seq =
  let rec find = function
    | [] -> Conformance.Model.create ()
    | (s, m) :: rest -> if s <= seq then m else find rest
  in
  find history

let check_replay_matches_model entries history ~prefix =
  let fs = Fs_state.create () in
  List.iteri
    (fun i (e : Oplog.entry) ->
      if i < prefix then
        match Fs_state.apply fs e.Oplog.op with
        | Ok () -> ()
        | Error err ->
            Alcotest.failf "replay prefix %d: entry %d failed: %s" prefix i
              (Fs_state.error_to_string err))
    entries;
  let last_seq =
    if prefix = 0 then 0 else (List.nth entries (prefix - 1)).Oplog.seq
  in
  let expected = model_at history ~seq:last_seq in
  let got = Fs_state.digest fs in
  let want = Conformance.Model.digest expected in
  if got <> want then
    Alcotest.failf
      "prefix %d (seq %d): replayed digest %08lx, model digest %08lx" prefix
      last_seq got want

let test_crash_replay_all_prefixes () =
  let entries, history = random_workload ~ops_count:60 ~seed:17 in
  let n = List.length entries in
  Alcotest.(check bool) "workload persisted entries" true (n > 0);
  (* Crash at every prefix: digest comparison is cheap. *)
  List.iter
    (fun p -> check_replay_matches_model entries history ~prefix:p)
    (List.init (n + 1) Fun.id)

let prop_random_crash_points =
  QCheck.Test.make ~name:"random workloads replay consistently at any prefix"
    ~count:15
    QCheck.(pair (int_range 10 50) (int_range 0 1000))
    (fun (ops_count, seed) ->
      let entries, history = random_workload ~ops_count ~seed in
      let n = List.length entries in
      let rng = Rng.create (seed + 1) in
      (* Three random crash points per workload. *)
      List.for_all
        (fun _ ->
          let p = if n = 0 then 0 else Rng.int rng (n + 1) in
          match check_replay_matches_model entries history ~prefix:p with
          | () -> true
          | exception _ -> false)
        [ 1; 2; 3 ])

let test_fsynced_data_survives_replay () =
  (* Everything logged before an fsync must be recoverable. The log is
     snapshotted at the fsync point (publication may reclaim entries
     right after — by then durability has moved to public PM). *)
  let entries =
    Conformance.Backends.in_sim (fun () ->
        let d = Deployment.create ~params ~nodes:3 () in
        let client = Deployment.add_client d ~id:1 in
        let ops = Libfs.ops client in
        let fd = ops.Dfs_intf.create "/durable" in
        ops.Dfs_intf.append fd (Data.of_string "must-survive");
        let entries = ref [] in
        Oplog.Log.iter (Libfs.log client) (fun e -> entries := e :: !entries);
        ops.Dfs_intf.fsync fd;
        Deployment.stop d;
        List.rev !entries)
  in
  let fs = Fs_state.create () in
  List.iter
    (fun (e : Oplog.entry) -> ignore (Fs_state.apply fs e.Oplog.op))
    entries;
  match Fs_state.resolve fs "/durable" with
  | Ok inum -> (
      match Fs_state.read fs ~inum ~pos:0 ~len:64 with
      | Ok d ->
          Alcotest.(check string) "survives" "must-survive"
            (Bytes.to_string (Data.to_bytes d))
      | Error e -> Alcotest.failf "read: %s" (Fs_state.error_to_string e))
  | Error e -> Alcotest.failf "resolve: %s" (Fs_state.error_to_string e)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "crash-consistency"
    [
      ( "crashmonkey",
        [
          tc "replay all prefixes" `Quick test_crash_replay_all_prefixes;
          tc "fsynced data survives" `Quick test_fsynced_data_survives_replay;
          qt prop_random_crash_points;
        ] );
    ]
