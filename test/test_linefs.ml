(* Integration tests for the LineFS core: LibFS <-> NICFS pipelines,
   replication, fsync semantics, leases, coalescing, kernel worker,
   flow control, failure handling. *)

open Sim
open Storage
open Linefs

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Small chunks/logs so tests exercise chunking without moving GBs. *)
let test_params =
  {
    Params.default with
    Params.chunk_bytes = 256 * 1024;
    log_bytes = 4 * 1024 * 1024;
  }

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not finish the root process"

let make_cluster ?(params = test_params) ?(nodes = 3) ?compression
    ?coalescing ?pipeline_parallelism ?kworker_mode () =
  Deployment.create ~params ~nodes ?compression ?coalescing
    ?pipeline_parallelism ?kworker_mode ()

let write_file (ops : Dfs_intf.ops) path ~data =
  let fd = ops.Dfs_intf.create path in
  ops.Dfs_intf.append fd data;
  fd

(* ------------------------------------------------------------------ *)
(* Basic IO                                                            *)
(* ------------------------------------------------------------------ *)

let test_write_read_roundtrip () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = write_file ops "/hello" ~data:(Data.of_string "hello linefs") in
      let got = ops.Dfs_intf.read fd ~pos:0 ~len:100 in
      Alcotest.(check string)
        "read back" "hello linefs"
        (Bytes.to_string (Data.to_bytes got));
      ops.Dfs_intf.close fd;
      Deployment.stop d)

let test_read_spans_log_and_public () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      ops.Dfs_intf.append fd (Data.of_string "aaaa");
      ops.Dfs_intf.fsync fd;
      (* Force publication so the first write moves to public PM. *)
      Nicfs.flush (Deployment.primary d).Deployment.nicfs ~client:1;
      ops.Dfs_intf.append fd (Data.of_string "bbbb");
      let got = ops.Dfs_intf.read fd ~pos:0 ~len:8 in
      Alcotest.(check string)
        "mixed read" "aaaabbbb"
        (Bytes.to_string (Data.to_bytes got));
      Deployment.stop d)

let test_namespace_ops () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      ops.Dfs_intf.mkdir "/dir";
      let fd = write_file ops "/dir/a" ~data:(Data.of_string "x") in
      ops.Dfs_intf.close fd;
      ops.Dfs_intf.rename "/dir/a" "/dir/b";
      Alcotest.(check (option int))
        "renamed file size" (Some 1)
        (ops.Dfs_intf.file_size "/dir/b");
      Alcotest.(check (option int))
        "old name gone" None
        (ops.Dfs_intf.file_size "/dir/a");
      ops.Dfs_intf.unlink "/dir/b";
      Alcotest.(check (option int))
        "unlinked" None
        (ops.Dfs_intf.file_size "/dir/b");
      Deployment.stop d)

let test_open_missing_file_fails () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      (match ops.Dfs_intf.open_file "/nope" with
      | _ -> Alcotest.fail "expected Fs_error"
      | exception Dfs_intf.Fs_error (Fs_state.Enoent, _) -> ());
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Pipelines, publication, reclamation                                 *)
(* ------------------------------------------------------------------ *)

let test_publication_reclaims_log () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/big" in
      (* Write 2 MB: 8 chunks at the 256 KB test chunk size. *)
      for i = 0 to 127 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      Nicfs.flush (Deployment.primary d).Deployment.nicfs ~client:1;
      Alcotest.(check int) "log fully reclaimed" 0 (Libfs.pending_bytes c);
      Alcotest.(check bool)
        "published bytes cover the data" true
        (Nicfs.published_bytes (Deployment.primary d).Deployment.nicfs
        >= mib 2);
      Deployment.stop d)

let test_pipeline_kick_on_chunk_boundary () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      (* Just over one chunk: publication should start without fsync. *)
      for i = 0 to 20 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      (* Give the background pipeline time to run. *)
      Engine.sleep (Time.ms 100);
      Alcotest.(check bool)
        "background publication happened" true
        (Nicfs.published_bytes (Deployment.primary d).Deployment.nicfs > 0);
      Deployment.stop d)

let test_stage_latencies_recorded () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      for i = 0 to 63 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      let nicfs = (Deployment.primary d).Deployment.nicfs in
      Nicfs.flush nicfs ~client:1;
      let stages = Nicfs.stage_mean_us nicfs ~client:1 in
      List.iter
        (fun (name, mean) ->
          if name <> "compression" then
            Alcotest.(check bool)
              (Printf.sprintf "stage %s has positive latency (%.2f)" name mean)
              true (mean > 0.0))
        stages;
      Alcotest.(check int) "five stages" 5 (List.length stages);
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Replication and fsync semantics                                     *)
(* ------------------------------------------------------------------ *)

let test_fsync_waits_for_replication () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 64));
      ops.Dfs_intf.fsync fd;
      (* After fsync, every replica hop must have received the bytes. *)
      let primary_sent =
        Nicfs.replicated_wire_bytes (Deployment.primary d).Deployment.nicfs
      in
      Alcotest.(check bool)
        (Printf.sprintf "primary shipped data (%d bytes)" primary_sent)
        true (primary_sent >= kib 64);
      Deployment.stop d)

let test_replication_reaches_all_replicas () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      for i = 0 to 31 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      ops.Dfs_intf.fsync fd;
      (* Middle replica forwards to the last one. *)
      let mid = Deployment.node d 1 in
      Alcotest.(check bool)
        "middle replica forwarded" true
        (Nicfs.replicated_wire_bytes mid.Deployment.nicfs >= kib 512);
      Deployment.stop d)

let test_fsync_without_writes_is_cheap () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      let t0 = Engine.now () in
      ops.Dfs_intf.fsync fd;
      let elapsed = Engine.now () - t0 in
      Alcotest.(check bool)
        (Printf.sprintf "fast no-data fsync (%s)" (Time.to_string elapsed))
        true
        (elapsed < Time.ms 2);
      Deployment.stop d)

let test_single_node_no_replication () =
  run_sim (fun () ->
      let d = make_cluster ~nodes:1 () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = write_file ops "/f" ~data:(Data.synthetic ~seed:1 ~len:(kib 64)) in
      ops.Dfs_intf.fsync fd;
      Alcotest.(check int)
        "nothing shipped" 0
        (Nicfs.replicated_wire_bytes (Deployment.primary d).Deployment.nicfs);
      Deployment.stop d)

let test_multi_client_isolation () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c1 = Deployment.add_client d ~id:1 in
      let c2 = Deployment.add_client d ~id:2 in
      let ops1 = Libfs.ops c1 and ops2 = Libfs.ops c2 in
      let done1 = Ivar.create () and done2 = Ivar.create () in
      Engine.spawn (fun () ->
          let fd = ops1.Dfs_intf.create "/a" in
          ops1.Dfs_intf.append fd (Data.of_string "from-client-1");
          ops1.Dfs_intf.fsync fd;
          Ivar.fill done1 ());
      Engine.spawn (fun () ->
          let fd = ops2.Dfs_intf.create "/b" in
          ops2.Dfs_intf.append fd (Data.of_string "from-client-2");
          ops2.Dfs_intf.fsync fd;
          Ivar.fill done2 ());
      Ivar.read done1;
      Ivar.read done2;
      let fd = ops1.Dfs_intf.open_file "/b" in
      let got = ops1.Dfs_intf.read fd ~pos:0 ~len:100 in
      Alcotest.(check string)
        "cross-client visibility" "from-client-2"
        (Bytes.to_string (Data.to_bytes got));
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Log replay = crash consistency                                      *)
(* ------------------------------------------------------------------ *)

let test_log_replay_rebuilds_state () =
  (* The private log alone must reconstruct the FS: prefix crash
     consistency relies on it. *)
  run_sim (fun () ->
      let d = make_cluster ~params:{ test_params with Params.chunk_bytes = mib 64 } () in
      (* Huge chunk size: nothing gets published, all stays in the log. *)
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      ops.Dfs_intf.mkdir "/dir";
      let fd = ops.Dfs_intf.create "/dir/f" in
      ops.Dfs_intf.append fd (Data.of_string "abc");
      ops.Dfs_intf.append fd (Data.of_string "def");
      ops.Dfs_intf.rename "/dir/f" "/dir/g";
      (* Replay the raw log into a fresh FS. *)
      let replayed = Fs_state.create () in
      Oplog.Log.iter (Libfs.log c) (fun e ->
          match Fs_state.apply replayed e.Oplog.op with
          | Ok () -> ()
          | Error err ->
              Alcotest.failf "replay failed: %s"
                (Fs_state.error_to_string err));
      (match Fs_state.resolve replayed "/dir/g" with
      | Ok inum -> (
          match Fs_state.read replayed ~inum ~pos:0 ~len:10 with
          | Ok data ->
              Alcotest.(check string)
                "replayed content" "abcdef"
                (Bytes.to_string (Data.to_bytes data))
          | Error e -> Alcotest.failf "read: %s" (Fs_state.error_to_string e))
      | Error e -> Alcotest.failf "resolve: %s" (Fs_state.error_to_string e));
      Deployment.stop d)

let test_log_prefix_replay_consistent () =
  (* Any prefix of the log replays without errors: prefix crash
     consistency (§3.1). *)
  run_sim (fun () ->
      let d = make_cluster ~params:{ test_params with Params.chunk_bytes = mib 64 } () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      ops.Dfs_intf.mkdir "/d";
      let fd = ops.Dfs_intf.create "/d/f" in
      ops.Dfs_intf.append fd (Data.of_string "111");
      ops.Dfs_intf.rename "/d/f" "/d/g";
      ops.Dfs_intf.unlink "/d/g";
      let entries = ref [] in
      Oplog.Log.iter (Libfs.log c) (fun e -> entries := e :: !entries);
      let entries = List.rev !entries in
      let n = List.length entries in
      for prefix = 0 to n do
        let replayed = Fs_state.create () in
        List.iteri
          (fun i e ->
            if i < prefix then
              match Fs_state.apply replayed e.Oplog.op with
              | Ok () -> ()
              | Error err ->
                  Alcotest.failf "prefix %d entry %d failed: %s" prefix i
                    (Fs_state.error_to_string err))
          entries
      done;
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Leases                                                              *)
(* ------------------------------------------------------------------ *)

let test_lease_cached_after_first_acquire () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      for i = 0 to 9 do
        ops.Dfs_intf.write fd ~pos:(i * 100) (Data.of_string "xxxx")
      done;
      Alcotest.(check bool)
        (Printf.sprintf "hits (%d) outnumber misses (%d)" (Libfs.lease_hits c)
           (Libfs.lease_misses c))
        true
        (Libfs.lease_hits c > Libfs.lease_misses c);
      Deployment.stop d)

let test_lease_conflict_blocks_second_writer () =
  run_sim (fun () ->
      let d = make_cluster () in
      let lease = Nicfs.lease_mgr (Deployment.primary d).Deployment.nicfs in
      Alcotest.(check bool) "c1 granted" true
        (Lease.acquire lease ~client:1 ~inum:42 Lease.Write = `Granted);
      Alcotest.(check bool) "c2 conflicts" true
        (Lease.acquire lease ~client:2 ~inum:42 Lease.Write = `Conflict);
      Lease.release lease ~client:1 ~inum:42;
      Alcotest.(check bool) "c2 granted after release" true
        (Lease.acquire lease ~client:2 ~inum:42 Lease.Write = `Granted);
      Deployment.stop d)

let test_lease_readers_share () =
  run_sim (fun () ->
      let d = make_cluster () in
      let lease = Nicfs.lease_mgr (Deployment.primary d).Deployment.nicfs in
      Alcotest.(check bool) "r1" true
        (Lease.acquire lease ~client:1 ~inum:7 Lease.Read = `Granted);
      Alcotest.(check bool) "r2" true
        (Lease.acquire lease ~client:2 ~inum:7 Lease.Read = `Granted);
      Alcotest.(check bool) "writer blocked" true
        (Lease.acquire lease ~client:3 ~inum:7 Lease.Write = `Conflict);
      Deployment.stop d)

let test_fsync_waits_for_lease_persistence () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = write_file ops "/f" ~data:(Data.of_string "z") in
      ops.Dfs_intf.fsync fd;
      let lease = Nicfs.lease_mgr (Deployment.primary d).Deployment.nicfs in
      Alcotest.(check int) "no pending lease persists after fsync" 0
        (Lease.pending_persists lease);
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Coalescing                                                          *)
(* ------------------------------------------------------------------ *)

let entry seq op = Oplog.make ~seq ~client:0 op

let test_coalesce_create_unlink () =
  let entries =
    [
      entry 1 (Oplog.Create { parent = 1; name = "tmp"; inum = 9; dir = false });
      entry 2 (Oplog.Write { inum = 9; offset = 0; data = Data.zero ~len:100 });
      entry 3 (Oplog.Unlink { parent = 1; name = "tmp"; inum = 9 });
      entry 4 (Oplog.Create { parent = 1; name = "keep"; inum = 10; dir = false });
    ]
  in
  let survivors, removed = Coalesce.run entries in
  Alcotest.(check int) "three removed" 3 removed;
  Alcotest.(check int) "one kept" 1 (List.length survivors)

let test_coalesce_overwrite () =
  let entries =
    [
      entry 1 (Oplog.Write { inum = 5; offset = 0; data = Data.zero ~len:100 });
      entry 2 (Oplog.Write { inum = 5; offset = 0; data = Data.zero ~len:100 });
      entry 3 (Oplog.Write { inum = 5; offset = 50; data = Data.zero ~len:10 });
    ]
  in
  let survivors, removed = Coalesce.run entries in
  (* Entry 1 is fully shadowed by entry 2; entry 2 is only partially
     shadowed by entry 3. *)
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check (list int))
    "survivors in order" [ 2; 3 ]
    (List.map (fun (e : Oplog.entry) -> e.Oplog.seq) survivors)

let test_coalesce_truncate_shadows () =
  let entries =
    [
      entry 1 (Oplog.Write { inum = 5; offset = 1000; data = Data.zero ~len:50 });
      entry 2 (Oplog.Truncate { inum = 5; size = 100 });
    ]
  in
  let _, removed = Coalesce.run entries in
  Alcotest.(check int) "write beyond truncate removed" 1 removed

let test_coalesce_preserves_unrelated () =
  let entries =
    [
      entry 1 (Oplog.Unlink { parent = 1; name = "old"; inum = 3 });
      entry 2 (Oplog.Write { inum = 4; offset = 0; data = Data.zero ~len:10 });
    ]
  in
  let survivors, removed = Coalesce.run entries in
  Alcotest.(check int) "nothing removed" 0 removed;
  Alcotest.(check int) "both kept" 2 (List.length survivors)

let prop_coalesce_never_grows =
  QCheck.Test.make ~name:"coalescing never adds entries" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 3) (int_bound 4)))
    (fun cmds ->
      let entries =
        List.mapi
          (fun i (kind, file) ->
            let inum = 100 + file in
            let op =
              match kind with
              | 0 ->
                  Oplog.Create
                    { parent = 1; name = Printf.sprintf "f%d" file; inum; dir = false }
              | 1 -> Oplog.Write { inum; offset = i * 10; data = Data.zero ~len:20 }
              | 2 -> Oplog.Unlink { parent = 1; name = Printf.sprintf "f%d" file; inum }
              | _ -> Oplog.Truncate { inum; size = i * 5 }
            in
            entry (i + 1) op)
          cmds
      in
      let survivors, removed = Coalesce.run entries in
      List.length survivors + removed = List.length entries)

(* ------------------------------------------------------------------ *)
(* Kernel worker and isolated mode                                     *)
(* ------------------------------------------------------------------ *)

let test_kworker_modes_copy () =
  List.iter
    (fun mode ->
      run_sim (fun () ->
          let topo = Hw.Topology.create ~nodes:1 () in
          let node = Hw.Topology.primary topo in
          let kw =
            Kworker.create ~mode ~params:test_params ~node ()
          in
          let r =
            Kworker.submit kw ~from:(Net.Loc.Nic node)
              { Kworker.total_bytes = mib 1; list_entries = 16 }
          in
          Alcotest.(check bool)
            (Kworker.copy_mode_name mode ^ " ok")
            true (r = `Ok);
          Alcotest.(check int)
            (Kworker.copy_mode_name mode ^ " bytes")
            (mib 1) (Kworker.bytes_copied kw)))
    [
      Kworker.Cpu_memcpy;
      Kworker.Dma_polling;
      Kworker.Dma_polling_batch;
      Kworker.Dma_interrupt_batch;
    ]

let test_kworker_no_copy_does_nothing () =
  run_sim (fun () ->
      let topo = Hw.Topology.create ~nodes:1 () in
      let node = Hw.Topology.primary topo in
      let kw = Kworker.create ~mode:Kworker.No_copy ~params:test_params ~node () in
      ignore
        (Kworker.submit kw ~from:(Net.Loc.Nic node)
           { Kworker.total_bytes = mib 1; list_entries = 16 });
      Alcotest.(check int) "nothing copied" 0 (Kworker.bytes_copied kw))

let test_kworker_cpu_memcpy_burns_host_cpu () =
  run_sim (fun () ->
      let topo = Hw.Topology.create ~nodes:1 () in
      let node = Hw.Topology.primary topo in
      let acct = Stats.Busy.create () in
      let kw =
        Kworker.create ~mode:Kworker.Cpu_memcpy ~account:acct
          ~params:test_params ~node ()
      in
      ignore
        (Kworker.submit kw ~from:(Net.Loc.Nic node)
           { Kworker.total_bytes = mib 8; list_entries = 16 });
      let interrupt_acct = Stats.Busy.create () in
      let kw2 =
        Kworker.create ~mode:Kworker.Dma_interrupt_batch ~account:interrupt_acct
          ~params:test_params ~node ()
      in
      ignore
        (Kworker.submit kw2 ~from:(Net.Loc.Nic node)
           { Kworker.total_bytes = mib 8; list_entries = 16 });
      Alcotest.(check bool)
        (Printf.sprintf "memcpy (%dns) >> interrupt (%dns)"
           (Stats.Busy.busy_time acct)
           (Stats.Busy.busy_time interrupt_acct))
        true
        (Stats.Busy.busy_time acct > 10 * Stats.Busy.busy_time interrupt_acct))

let test_isolated_mode_on_host_crash () =
  run_sim (fun () ->
      let d = make_cluster () in
      let mid = Deployment.node d 1 in
      Nicfs.start_monitor mid.Deployment.nicfs;
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      (* Crash replica-1's host. *)
      Kworker.crash mid.Deployment.kworker;
      Engine.sleep (2 * test_params.Params.hb_interval);
      Alcotest.(check bool) "isolated mode entered" true
        (Nicfs.isolated mid.Deployment.nicfs);
      (* Writes + fsync still complete across the chain. *)
      ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 64));
      ops.Dfs_intf.fsync fd;
      Alcotest.(check bool) "replication continued" true
        (Nicfs.replicated_wire_bytes mid.Deployment.nicfs >= kib 64);
      (* Host recovers. *)
      Kworker.recover mid.Deployment.kworker;
      Engine.sleep (2 * test_params.Params.hb_interval);
      Alcotest.(check bool) "isolated mode left" false
        (Nicfs.isolated mid.Deployment.nicfs);
      Nicfs.stop_monitor mid.Deployment.nicfs;
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* Flow control                                                        *)
(* ------------------------------------------------------------------ *)

let test_flow_control_caps_nic_memory () =
  run_sim (fun () ->
      (* Tiny NIC memory: chunks must throttle instead of overflowing. *)
      let cfg = { Hw.Config.testbed_25gbe with Hw.Config.nic_mem_capacity = mib 1 } in
      let params = { test_params with Params.chunk_bytes = 128 * 1024 } in
      let d = Deployment.create ~cfg ~params ~nodes:3 () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      let peak = ref 0.0 in
      let watcher_stop = ref false in
      Engine.spawn (fun () ->
          while not !watcher_stop do
            let frac =
              Hw.Smartnic.mem_frac (Deployment.primary d).Deployment.node.Hw.Node.nic
            in
            if frac > !peak then peak := frac;
            Engine.sleep (Time.us 50)
          done);
      for i = 0 to 255 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      ops.Dfs_intf.fsync fd;
      Nicfs.flush (Deployment.primary d).Deployment.nicfs ~client:1;
      watcher_stop := true;
      Alcotest.(check bool)
        (Printf.sprintf "peak NIC memory %.2f stayed near watermark" !peak)
        true
        (!peak <= params.Params.hi_watermark +. 0.35);
      Deployment.stop d)

(* ------------------------------------------------------------------ *)
(* NotParallel baseline behaves worse                                  *)
(* ------------------------------------------------------------------ *)

let write_one_mb_and_fsync d =
  let c = Deployment.add_client d ~id:1 in
  let ops = Libfs.ops c in
  let fd = ops.Dfs_intf.create "/f" in
  let t0 = Engine.now () in
  for i = 0 to 63 do
    ops.Dfs_intf.write fd ~pos:(i * kib 16) (Data.synthetic ~seed:i ~len:(kib 16))
  done;
  ops.Dfs_intf.fsync fd;
  Engine.now () - t0

let test_pipeline_beats_sequential () =
  let t_par = run_sim (fun () ->
      let d = make_cluster ~pipeline_parallelism:true () in
      let r = write_one_mb_and_fsync d in
      Deployment.stop d;
      r)
  in
  let t_seq = run_sim (fun () ->
      let d = make_cluster ~pipeline_parallelism:false () in
      let r = write_one_mb_and_fsync d in
      Deployment.stop d;
      r)
  in
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%s) faster than sequential (%s)"
       (Time.to_string t_par) (Time.to_string t_seq))
    true (t_par < t_seq)


(* ------------------------------------------------------------------ *)
(* Recovery (SS3.6)                                                    *)
(* ------------------------------------------------------------------ *)

let test_history_recorded_at_publication () =
  run_sim (fun () ->
      let d = make_cluster () in
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/h" in
      ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 64));
      Nicfs.flush (Deployment.primary d).Deployment.nicfs ~client:1;
      let hist = Nicfs.history (Deployment.primary d).Deployment.nicfs in
      Alcotest.(check bool) "publication recorded inode updates" true
        (Cluster.History.inodes_since hist ~epoch:0 <> []);
      Deployment.stop d)

let test_recovery_resyncs_missed_inodes () =
  run_sim (fun () ->
      let d = make_cluster () in
      let manager = Cluster.Manager.create () in
      let primary = (Deployment.primary d).Deployment.nicfs in
      let mid = (Deployment.node d 1).Deployment.nicfs in
      (* Replica-1 is down, so only the live nodes are registered for
         epoch notifications. *)
      List.iter
        (fun (n : Deployment.node_rt) ->
          let nicfs = n.Deployment.nicfs in
          Cluster.Manager.register manager
            ~id:(Nicfs.node nicfs).Hw.Node.id
            ~ping:(fun () -> Nicfs.ping nicfs)
            ~on_epoch:(fun e -> Nicfs.set_epoch nicfs e) ())
        [ Deployment.primary d; Deployment.node d 2 ];
      (* Epoch 1: normal writes. *)
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      let fd = ops.Dfs_intf.create "/pre" in
      ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 32));
      Nicfs.flush primary ~client:1;
      (* Replica-1 "goes down": the manager bumps the epoch; replica-1
         keeps its old persisted epoch. *)
      let down_epoch = Nicfs.epoch mid in
      ignore (Cluster.Manager.bump_epoch manager : int);
      Nicfs.set_epoch primary (Cluster.Manager.epoch manager);
      (* Updates replica-1 misses. *)
      let fd2 = ops.Dfs_intf.create "/during-downtime" in
      ops.Dfs_intf.append fd2 (Data.synthetic ~seed:2 ~len:(kib 64));
      Nicfs.flush primary ~client:1;
      (* Recovery pulls exactly the missed inodes from the primary. *)
      let stats =
        Recovery.run ~manager ~recovering:mid ~source:primary ()
      in
      Alcotest.(check int) "from epoch" down_epoch stats.Recovery.from_epoch;
      Alcotest.(check bool) "epoch advanced" true
        (stats.Recovery.to_epoch > down_epoch);
      Alcotest.(check bool) "missed inodes resynced" true
        (stats.Recovery.inodes_resynced >= 1);
      Alcotest.(check bool) "bytes fetched cover the file" true
        (stats.Recovery.bytes_fetched >= kib 64);
      Alcotest.(check bool) "recovery took simulated time" true
        (stats.Recovery.elapsed > 0);
      Deployment.stop d)

let test_recovery_invalidates_stale_logs () =
  run_sim (fun () ->
      let d = make_cluster () in
      let manager = Cluster.Manager.create () in
      let primary = (Deployment.primary d).Deployment.nicfs in
      let mid = (Deployment.node d 1).Deployment.nicfs in
      Cluster.Manager.register manager ~id:1
        ~ping:(fun () -> true)
        ~on_epoch:(fun _ -> ()) ();
      (* A stale local log on the recovering node touching an inode the
         primary has updated since. *)
      let c = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops c in
      (* The updates happen in an epoch the recovering node missed. *)
      ignore (Cluster.Manager.bump_epoch manager : int);
      Nicfs.set_epoch primary (Cluster.Manager.epoch manager);
      let fd = ops.Dfs_intf.create "/shared" in
      ops.Dfs_intf.append fd (Data.synthetic ~seed:3 ~len:(kib 32));
      Nicfs.flush primary ~client:1;
      let touched =
        Cluster.History.inodes_since (Nicfs.history primary) ~epoch:0
      in
      let stale_log = Oplog.Log.create ~capacity:(kib 64) () in
      (match touched with
      | inum :: _ ->
          ignore
            (Oplog.Log.append stale_log
               (Oplog.make ~seq:1 ~client:9
                  (Oplog.Write { inum; offset = 0; data = Data.zero ~len:16 }))
              : (unit, [ `Full ]) result)
      | [] -> Alcotest.fail "no touched inodes");
      let stats =
        Recovery.run ~invalidate_logs:[ stale_log ] ~manager ~recovering:mid
          ~source:primary ()
      in
      Alcotest.(check int) "stale entry invalidated" 1
        stats.Recovery.log_entries_invalidated;
      Alcotest.(check int) "log drained" 0 (Oplog.Log.used_bytes stale_log);
      Deployment.stop d)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "linefs"
    [
      ( "io",
        [
          tc "write/read roundtrip" `Quick test_write_read_roundtrip;
          tc "read spans log+public" `Quick test_read_spans_log_and_public;
          tc "namespace ops" `Quick test_namespace_ops;
          tc "open missing fails" `Quick test_open_missing_file_fails;
        ] );
      ( "pipeline",
        [
          tc "publication reclaims log" `Quick test_publication_reclaims_log;
          tc "kick on chunk boundary" `Quick test_pipeline_kick_on_chunk_boundary;
          tc "stage latencies recorded" `Quick test_stage_latencies_recorded;
          tc "parallel beats sequential" `Quick test_pipeline_beats_sequential;
        ] );
      ( "replication",
        [
          tc "fsync waits for replication" `Quick test_fsync_waits_for_replication;
          tc "reaches all replicas" `Quick test_replication_reaches_all_replicas;
          tc "empty fsync is cheap" `Quick test_fsync_without_writes_is_cheap;
          tc "single node" `Quick test_single_node_no_replication;
          tc "multi-client isolation" `Quick test_multi_client_isolation;
        ] );
      ( "crash-consistency",
        [
          tc "log replay rebuilds state" `Quick test_log_replay_rebuilds_state;
          tc "prefix replay consistent" `Quick test_log_prefix_replay_consistent;
        ] );
      ( "leases",
        [
          tc "cached after first acquire" `Quick test_lease_cached_after_first_acquire;
          tc "conflict blocks second writer" `Quick test_lease_conflict_blocks_second_writer;
          tc "readers share" `Quick test_lease_readers_share;
          tc "fsync waits for persistence" `Quick test_fsync_waits_for_lease_persistence;
        ] );
      ( "coalescing",
        [
          tc "create+unlink cancels" `Quick test_coalesce_create_unlink;
          tc "overwrite shadows" `Quick test_coalesce_overwrite;
          tc "truncate shadows" `Quick test_coalesce_truncate_shadows;
          tc "unrelated preserved" `Quick test_coalesce_preserves_unrelated;
          qt prop_coalesce_never_grows;
        ] );
      ( "kworker",
        [
          tc "all copy modes work" `Quick test_kworker_modes_copy;
          tc "no-copy does nothing" `Quick test_kworker_no_copy_does_nothing;
          tc "memcpy burns host cpu" `Quick test_kworker_cpu_memcpy_burns_host_cpu;
          tc "isolated mode on crash" `Quick test_isolated_mode_on_host_crash;
        ] );
      ( "flow-control",
        [ tc "nic memory capped" `Quick test_flow_control_caps_nic_memory ] );
      ( "recovery",
        [
          tc "history recorded at publication" `Quick
            test_history_recorded_at_publication;
          tc "resyncs missed inodes" `Quick test_recovery_resyncs_missed_inodes;
          tc "invalidates stale logs" `Quick test_recovery_invalidates_stale_logs;
        ] );
    ]
