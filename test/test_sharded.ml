(* Tests for the conservative sharded runner: windowing, cross-shard
   message ordering, and the determinism contract (results independent
   of the domain count). *)

open Sim

(* ------------------------------------------------------------------ *)
(* Ping-pong across two shards                                         *)
(* ------------------------------------------------------------------ *)

(* Each side records (round, receive time) only into its own shard's
   trace — cross-shard shared mutation is exactly what the runner
   forbids — and the traces are merged after [run]. *)
let ping_pong ~rounds ~delay ~domains =
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  Sharded.connect s ~src:1 ~dst:0;
  let trace0 = ref [] and trace1 = ref [] in
  let rec ping k () =
    trace0 := (k, Engine.now ()) :: !trace0;
    if k < rounds then Sharded.send s ~src:0 ~dst:1 ~delay ~name:"pong" (pong k)
  and pong k () =
    trace1 := (k, Engine.now ()) :: !trace1;
    Sharded.send s ~src:1 ~dst:0 ~delay ~name:"ping" (ping (k + 1))
  in
  Sharded.spawn_root s ~shard:0 (ping 0);
  Sharded.run ~domains s;
  (List.rev !trace0, List.rev !trace1, Sharded.windows_run s)

let test_ping_pong_times () =
  let delay = Time.us 7 in
  let pings, pongs, windows = ping_pong ~rounds:3 ~delay ~domains:1 in
  (* ping k received at 2k * delay, pong k at (2k + 1) * delay. *)
  List.iteri
    (fun i (k, at) ->
      Alcotest.(check int) "ping round" i k;
      Alcotest.(check int) "ping time" (2 * k * delay) at)
    pings;
  List.iteri
    (fun i (k, at) ->
      Alcotest.(check int) "pong round" i k;
      Alcotest.(check int) "pong time" (((2 * k) + 1) * delay) at)
    pongs;
  Alcotest.(check bool) "windowed execution" true (windows > 1)

let test_ping_pong_domain_independent () =
  let delay = Time.us 3 in
  let reference = ping_pong ~rounds:5 ~delay ~domains:1 in
  List.iter
    (fun domains ->
      let got = ping_pong ~rounds:5 ~delay ~domains in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d matches domains=1" domains)
        true
        (got = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Independent shards                                                  *)
(* ------------------------------------------------------------------ *)

let test_independent_shards_single_window () =
  let s = Sharded.create ~shards:4 () in
  for i = 0 to 3 do
    Sharded.spawn_root s ~shard:i (fun () -> Engine.sleep (Time.ms (i + 1)))
  done;
  Sharded.run ~domains:4 s;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d clock" i)
      (Time.ms (i + 1))
      (Engine.current_time (Sharded.engine s i))
  done;
  (* No edges, no constraints: every shard drains in the first window. *)
  Alcotest.(check int) "one window" 1 (Sharded.windows_run s)

let test_send_requires_edge () =
  let s = Sharded.create ~shards:2 () in
  Sharded.spawn_root s ~shard:0 (fun () ->
      Alcotest.check_raises "unconnected edge"
        (Invalid_argument "Sharded.send: edge not connected") (fun () ->
          Sharded.send s ~src:0 ~dst:1 ~name:"x" (fun () -> ())));
  Sharded.run s

(* ------------------------------------------------------------------ *)
(* Determinism property on a token ring                                *)
(* ------------------------------------------------------------------ *)

(* A token hops around a ring; every hop's delay is drawn from the
   receiving shard's own engine RNG, so the trace depends on the
   deterministic per-shard streams.  Whatever the domain count, the
   trace must be identical. *)
let ring_trace ~shards ~hops ~seed ~domains =
  let s = Sharded.create ~lookahead:(Time.us 2) ~seed ~shards () in
  for i = 0 to shards - 1 do
    Sharded.connect s ~src:i ~dst:((i + 1) mod shards)
  done;
  let traces = Array.make shards [] in
  let rec hop shard v () =
    traces.(shard) <- (v, Engine.now ()) :: traces.(shard);
    if v < hops then begin
      let delay =
        Time.us (2 + Rng.int (Engine.rng (Sharded.engine s shard)) 50)
      in
      Sharded.send s ~src:shard
        ~dst:((shard + 1) mod shards)
        ~delay ~name:"hop"
        (hop ((shard + 1) mod shards) (v + 1))
    end
  in
  Sharded.spawn_root s ~shard:0 (hop 0 0);
  Sharded.run ~domains s;
  Array.to_list traces |> List.concat |> List.sort compare

let prop_ring_domain_independent =
  QCheck.Test.make ~name:"sharded: ring trace independent of domains"
    ~count:20
    QCheck.(pair (int_range 2 5) small_nat)
    (fun (shards, seed) ->
      let t1 = ring_trace ~shards ~hops:40 ~seed ~domains:1 in
      let t4 = ring_trace ~shards ~hops:40 ~seed ~domains:4 in
      t1 = t4 && List.length t1 = 41)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sharded"
    [
      ( "windows",
        [
          tc "ping-pong delivery times" `Quick test_ping_pong_times;
          tc "independent shards, one window" `Quick
            test_independent_shards_single_window;
          tc "send requires a connected edge" `Quick test_send_requires_edge;
        ] );
      ( "determinism",
        [
          tc "ping-pong identical across domain counts" `Quick
            test_ping_pong_domain_independent;
          qt prop_ring_domain_independent;
        ] );
    ]
