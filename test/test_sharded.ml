(* Tests for the conservative sharded runner: windowing, cross-shard
   message ordering, and the determinism contract (results independent
   of the domain count). *)

open Sim

(* ------------------------------------------------------------------ *)
(* Ping-pong across two shards                                         *)
(* ------------------------------------------------------------------ *)

(* Each side records (round, receive time) only into its own shard's
   trace — cross-shard shared mutation is exactly what the runner
   forbids — and the traces are merged after [run]. *)
let ping_pong ~rounds ~delay ~domains =
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  Sharded.connect s ~src:1 ~dst:0;
  let trace0 = ref [] and trace1 = ref [] in
  let rec ping k () =
    trace0 := (k, Engine.now ()) :: !trace0;
    if k < rounds then Sharded.send s ~src:0 ~dst:1 ~delay ~name:"pong" (pong k)
  and pong k () =
    trace1 := (k, Engine.now ()) :: !trace1;
    Sharded.send s ~src:1 ~dst:0 ~delay ~name:"ping" (ping (k + 1))
  in
  Sharded.spawn_root s ~shard:0 (ping 0);
  Sharded.run ~domains s;
  (List.rev !trace0, List.rev !trace1, Sharded.windows_run s)

let test_ping_pong_times () =
  let delay = Time.us 7 in
  let pings, pongs, windows = ping_pong ~rounds:3 ~delay ~domains:1 in
  (* ping k received at 2k * delay, pong k at (2k + 1) * delay. *)
  List.iteri
    (fun i (k, at) ->
      Alcotest.(check int) "ping round" i k;
      Alcotest.(check int) "ping time" (2 * k * delay) at)
    pings;
  List.iteri
    (fun i (k, at) ->
      Alcotest.(check int) "pong round" i k;
      Alcotest.(check int) "pong time" (((2 * k) + 1) * delay) at)
    pongs;
  Alcotest.(check bool) "windowed execution" true (windows > 1)

let test_ping_pong_domain_independent () =
  let delay = Time.us 3 in
  let reference = ping_pong ~rounds:5 ~delay ~domains:1 in
  List.iter
    (fun domains ->
      let got = ping_pong ~rounds:5 ~delay ~domains in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d matches domains=1" domains)
        true
        (got = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Independent shards                                                  *)
(* ------------------------------------------------------------------ *)

let test_independent_shards_single_window () =
  let s = Sharded.create ~shards:4 () in
  for i = 0 to 3 do
    Sharded.spawn_root s ~shard:i (fun () -> Engine.sleep (Time.ms (i + 1)))
  done;
  Sharded.run ~domains:4 s;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d clock" i)
      (Time.ms (i + 1))
      (Engine.current_time (Sharded.engine s i))
  done;
  (* No edges, no constraints: every shard drains in the first window. *)
  Alcotest.(check int) "one window" 1 (Sharded.windows_run s)

let test_send_requires_edge () =
  let s = Sharded.create ~shards:2 () in
  Sharded.spawn_root s ~shard:0 (fun () ->
      Alcotest.check_raises "unconnected edge"
        (Invalid_argument "Sharded.send: edge not connected") (fun () ->
          Sharded.send s ~src:0 ~dst:1 ~name:"x" (fun () -> ())));
  Sharded.run s

(* ------------------------------------------------------------------ *)
(* Per-edge lookahead                                                  *)
(* ------------------------------------------------------------------ *)

(* Two edges out of shard 0 with very different lookaheads: each edge
   clamps only its own delays, and the delivery times are identical for
   every domain count even though the slow edge dominates the fast
   destination's windows. *)
let star_times ~domains =
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:3 () in
  Sharded.connect s ~src:0 ~dst:1 ~lookahead:(Time.us 3);
  Sharded.connect s ~src:0 ~dst:2 ~lookahead:(Time.ms 2);
  let at = Array.make 2 None in
  Sharded.spawn_root s ~shard:0 (fun () ->
      (* Below-lookahead delays are clamped up to the edge's own
         lookahead, never to another edge's. *)
      Sharded.send s ~src:0 ~dst:1 ~delay:(Time.us 1) ~name:"fast" (fun () ->
          at.(0) <- Some (Engine.now ()));
      Sharded.send s ~src:0 ~dst:2 ~delay:(Time.us 1) ~name:"slow" (fun () ->
          at.(1) <- Some (Engine.now ())));
  Sharded.run ~domains s;
  (at.(0), at.(1))

let test_per_edge_lookahead () =
  List.iter
    (fun domains ->
      let fast, slow = star_times ~domains in
      Alcotest.(check (option int))
        (Printf.sprintf "fast edge clamps to us 3 (domains=%d)" domains)
        (Some (Time.us 3)) fast;
      Alcotest.(check (option int))
        (Printf.sprintf "slow edge clamps to ms 2 (domains=%d)" domains)
        (Some (Time.ms 2)) slow)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Deadline                                                            *)
(* ------------------------------------------------------------------ *)

let test_deadline_cuts_ping_pong () =
  let delay = Time.us 10 in
  let deadline = Time.us 35 in
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  Sharded.connect s ~src:1 ~dst:0;
  let hits = ref [] in
  let rec ping k () =
    hits := (k, Engine.now ()) :: !hits;
    Sharded.send s ~src:(k mod 2) ~dst:((k + 1) mod 2) ~delay ~name:"hop"
      (ping (k + 1))
  in
  Sharded.spawn_root s ~shard:0 (ping 0);
  Sharded.run ~deadline s;
  (* Hops at 0, 10, 20, 30 us run; the 40 us hop is past the deadline. *)
  Alcotest.(check int) "hops below deadline" 4 (List.length !hits);
  List.iter
    (fun (_, at) ->
      Alcotest.(check bool) "hop below deadline" true (at <= deadline))
    !hits;
  for i = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d clock clamped" i)
      true
      (Engine.current_time (Sharded.engine s i) <= deadline)
  done

(* ------------------------------------------------------------------ *)
(* Shard failure: errors / keep_going                                  *)
(* ------------------------------------------------------------------ *)

let boom = Failure "shard 1 exploded"

let failing_runner () =
  let s = Sharded.create ~shards:2 () in
  let survivor_done = ref false in
  Sharded.spawn_root s ~shard:0 (fun () ->
      Engine.sleep (Time.ms 5);
      survivor_done := true);
  Sharded.spawn_root s ~shard:1 (fun () ->
      Engine.sleep (Time.ms 1);
      raise boom);
  (s, survivor_done)

let test_keep_going_captures_errors () =
  let s, survivor_done = failing_runner () in
  Sharded.run ~keep_going:true s;
  Alcotest.(check bool) "survivor shard completed" true !survivor_done;
  (* The engine wraps process exceptions with the process name. *)
  match Sharded.errors s with
  | [ (1, Engine.Process_failure (_, Failure m)) ] ->
      Alcotest.(check string) "error message" "shard 1 exploded" m
  | _ -> Alcotest.fail "expected exactly shard 1 in errors"

let test_run_reraises_without_keep_going () =
  let s, _ = failing_runner () in
  match Sharded.run s with
  | () -> Alcotest.fail "expected the shard error to re-raise"
  | exception Engine.Process_failure (_, e) ->
      Alcotest.(check bool) "original exception preserved" true (e == boom)

(* ------------------------------------------------------------------ *)
(* Idle shards must not stall a busy-polling peer                      *)
(* ------------------------------------------------------------------ *)

(* Regression for the scheduler livelock: shard 0 busy-polls (always
   has a next event) while waiting for a reply that shard 1 can only
   produce after a cross-shard round trip; shard 1 is idle until the
   request lands.  A bound computed only from busy shards' next events
   returns no bound for shard 0 once shard 1 drains, and running shard
   0 to completion then never returns.  The promise relaxation lifts
   idle shard 1's promise to the earliest instant the request can wake
   it, so shard 0's window opens exactly wide enough and the poll loop
   terminates. *)
let test_busy_poller_with_idle_peer () =
  List.iter
    (fun domains ->
      let s = Sharded.create ~lookahead:(Time.us 5) ~shards:2 () in
      Sharded.connect s ~src:0 ~dst:1;
      Sharded.connect s ~src:1 ~dst:0;
      let reply_at = ref None in
      Sharded.spawn_root s ~shard:0 (fun () ->
          let got = ref false in
          Sharded.send s ~src:0 ~dst:1 ~name:"req" (fun () ->
              Sharded.send s ~src:1 ~dst:0 ~name:"reply" (fun () ->
                  got := true));
          while not !got do
            Engine.sleep (Time.us 1)
          done;
          reply_at := Some (Engine.now ()));
      Sharded.run ~domains s;
      (* Request lands at 5 us, reply at 10 us; the poll observes it on
         the next 1 us tick. *)
      Alcotest.(check bool)
        (Printf.sprintf "poll loop terminated (domains=%d)" domains)
        true
        (match !reply_at with Some at -> at >= Time.us 10 | None -> false))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Adaptive horizon: windows track traffic, not lookahead ticks        *)
(* ------------------------------------------------------------------ *)

(* A ping-pong with delays far above the lookahead.  Static windows
   would need [delay / lookahead] barriers per hop; the adaptive bound
   extends each side's window to the echo of its own send, so the
   runner takes roughly one window per hop regardless of the ratio. *)
let test_adaptive_horizon_window_count () =
  let rounds = 5 in
  let delay = Time.ms 1 in
  (* 1000x the lookahead *)
  let _, _, windows = ping_pong ~rounds ~delay ~domains:1 in
  Alcotest.(check bool)
    (Printf.sprintf "one window per hop, not per lookahead tick (%d)" windows)
    true
    (windows <= (2 * rounds) + 4)

let test_stats_and_fast_forward () =
  let delay = Time.us 7 in
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  Sharded.connect s ~src:1 ~dst:0;
  let rec ping k () =
    if k < 6 then Sharded.send s ~src:(k mod 2) ~dst:((k + 1) mod 2) ~delay
        ~name:"hop" (ping (k + 1))
  in
  Sharded.spawn_root s ~shard:0 (ping 0);
  Sharded.run s;
  let st = Sharded.stats s in
  Alcotest.(check int) "messages" 6 st.Sharded.messages;
  Alcotest.(check int) "windows counted" (Sharded.windows_run s)
    st.Sharded.windows;
  Alcotest.(check bool) "fast-forwards ratcheted the idle side" true
    (st.Sharded.fast_forwards > 0);
  Alcotest.(check bool) "no parallel windows at domains=1" true
    (st.Sharded.parallel_windows = 0);
  Alcotest.(check int) "edge traffic symmetric"
    (List.assoc (0, 1) (Sharded.edge_messages s))
    (List.assoc (1, 0) (Sharded.edge_messages s))

(* ------------------------------------------------------------------ *)
(* Cross-shard coalescing: same-window messages batch, order holds     *)
(* ------------------------------------------------------------------ *)

let burst_trace ~domains =
  let s = Sharded.create ~lookahead:(Time.us 5) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  let got = ref [] in
  Sharded.spawn_root s ~shard:0 (fun () ->
      (* Ten same-window sends on one edge: one coalesced batch.  Equal
         delivery times must drain in send order (per-edge sequence
         breaks the tie); staggered ones in time order. *)
      for i = 0 to 9 do
        let delay = Time.us (5 + (3 * (i mod 3))) in
        Sharded.send s ~src:0 ~dst:1 ~delay ~name:"burst" (fun () ->
            got := (i, Engine.now ()) :: !got)
      done);
  Sharded.run ~domains s;
  (List.rev !got, Sharded.stats s)

let test_coalesced_batch_order () =
  let trace, st = burst_trace ~domains:1 in
  Alcotest.(check int) "all messages delivered" 10 (List.length trace);
  Alcotest.(check int) "messages counted" 10 st.Sharded.messages;
  Alcotest.(check bool)
    (Printf.sprintf "burst coalesced into one batch (max %d)"
       st.Sharded.batch_max)
    true
    (st.Sharded.batch_max = 10);
  (* Delivery must be sorted by (time, then send order). *)
  let rec sorted = function
    | (i1, t1) :: ((i2, t2) :: _ as rest) ->
        (t1 < t2 || (t1 = t2 && i1 < i2)) && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "canonical drain order" true (sorted trace);
  Alcotest.(check bool) "domain-independent" true
    (trace = fst (burst_trace ~domains:2))

(* ------------------------------------------------------------------ *)
(* Worker pool: grain 0 forces every multi-shard window parallel       *)
(* ------------------------------------------------------------------ *)

(* The inline policy would keep this tiny exchange on the coordinator;
   [grain:0] forces the pool up, covering the barrier path (claim
   counter, pending counter, parking) even on a single-core machine —
   with, per the contract, identical results. *)
let test_forced_parallel_pool () =
  let delay = Time.us 3 in
  let reference = ping_pong ~rounds:5 ~delay ~domains:1 in
  let s = Sharded.create ~lookahead:(Time.us 1) ~shards:2 () in
  Sharded.connect s ~src:0 ~dst:1;
  Sharded.connect s ~src:1 ~dst:0;
  let trace0 = ref [] and trace1 = ref [] in
  let rec ping k () =
    trace0 := (k, Engine.now ()) :: !trace0;
    if k < 5 then Sharded.send s ~src:0 ~dst:1 ~delay ~name:"pong" (pong k)
  and pong k () =
    trace1 := (k, Engine.now ()) :: !trace1;
    Sharded.send s ~src:1 ~dst:0 ~delay ~name:"ping" (ping (k + 1))
  in
  Sharded.spawn_root s ~shard:0 (ping 0);
  Sharded.run ~domains:2 ~grain:0 s;
  let got = (List.rev !trace0, List.rev !trace1, Sharded.windows_run s) in
  Alcotest.(check bool) "forced-parallel results identical" true
    (got = reference);
  Alcotest.(check bool) "pool actually engaged" true
    ((Sharded.stats s).Sharded.parallel_windows > 0)

(* ------------------------------------------------------------------ *)
(* Determinism property on a token ring                                *)
(* ------------------------------------------------------------------ *)

(* A token hops around a ring; every hop's delay is drawn from the
   receiving shard's own engine RNG, so the trace depends on the
   deterministic per-shard streams.  Whatever the domain count, the
   trace must be identical. *)
let ring_trace ~shards ~hops ~seed ~domains =
  let s = Sharded.create ~lookahead:(Time.us 2) ~seed ~shards () in
  for i = 0 to shards - 1 do
    Sharded.connect s ~src:i ~dst:((i + 1) mod shards)
  done;
  let traces = Array.make shards [] in
  let rec hop shard v () =
    traces.(shard) <- (v, Engine.now ()) :: traces.(shard);
    if v < hops then begin
      let delay =
        Time.us (2 + Rng.int (Engine.rng (Sharded.engine s shard)) 50)
      in
      Sharded.send s ~src:shard
        ~dst:((shard + 1) mod shards)
        ~delay ~name:"hop"
        (hop ((shard + 1) mod shards) (v + 1))
    end
  in
  Sharded.spawn_root s ~shard:0 (hop 0 0);
  Sharded.run ~domains s;
  Array.to_list traces |> List.concat |> List.sort compare

let prop_ring_domain_independent =
  QCheck.Test.make ~name:"sharded: ring trace independent of domains"
    ~count:20
    QCheck.(pair (int_range 2 5) small_nat)
    (fun (shards, seed) ->
      let t1 = ring_trace ~shards ~hops:40 ~seed ~domains:1 in
      let t4 = ring_trace ~shards ~hops:40 ~seed ~domains:4 in
      t1 = t4 && List.length t1 = 41)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sharded"
    [
      ( "windows",
        [
          tc "ping-pong delivery times" `Quick test_ping_pong_times;
          tc "independent shards, one window" `Quick
            test_independent_shards_single_window;
          tc "send requires a connected edge" `Quick test_send_requires_edge;
          tc "per-edge lookahead clamps per edge" `Quick
            test_per_edge_lookahead;
          tc "deadline cuts the exchange" `Quick test_deadline_cuts_ping_pong;
          tc "busy poller with idle peer terminates" `Quick
            test_busy_poller_with_idle_peer;
          tc "adaptive horizon: one window per hop" `Quick
            test_adaptive_horizon_window_count;
          tc "sync stats and fast-forward counts" `Quick
            test_stats_and_fast_forward;
          tc "same-window burst coalesces in order" `Quick
            test_coalesced_batch_order;
          tc "grain 0 forces the worker pool" `Quick test_forced_parallel_pool;
        ] );
      ( "errors",
        [
          tc "keep_going captures shard errors" `Quick
            test_keep_going_captures_errors;
          tc "run re-raises without keep_going" `Quick
            test_run_reraises_without_keep_going;
        ] );
      ( "determinism",
        [
          tc "ping-pong identical across domain counts" `Quick
            test_ping_pong_domain_independent;
          qt prop_ring_domain_independent;
        ] );
    ]
