(* The conformance framework's own tests: the model oracle's tree
   semantics, the differential property (every backend agrees with the
   model on random traces), the shrinker's soundness, and the mutation
   checks that prove the harness can actually catch planted bugs. *)

open Conformance
module Fs_state = Storage.Fs_state

(* ------------------------------------------------------------------ *)
(* Model unit checks                                                   *)
(* ------------------------------------------------------------------ *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %s" (Fs_state.error_to_string e)

let expect_code want = function
  | Ok _ -> Alcotest.failf "expected %s" (Fs_state.error_to_string want)
  | Error e ->
      Alcotest.(check string)
        "code"
        (Fs_state.error_to_string want)
        (Fs_state.error_to_string e)

let test_model_tree () =
  let m = Model.create () in
  let m = ok (Model.mkdir m "/d") in
  let m = ok (Model.create_file m ~h:1 "/d/f") in
  let m = ok (Model.append m ~h:1 "hello") in
  Alcotest.(check (option string)) "content" (Some "hello")
    (Model.content m "/d/f");
  Alcotest.(check (option int)) "size" (Some 5) (Model.file_size m "/d/f");
  let m = ok (Model.write m ~h:1 ~pos:10 "end") in
  Alcotest.(check (option string)) "zero-padded hole"
    (Some "hello\000\000\000\000\000end")
    (Model.content m "/d/f");
  let m = ok (Model.rename m ~src:"/d/f" ~dst:"/g") in
  Alcotest.(check (option int)) "moved" (Some 13) (Model.file_size m "/g");
  Alcotest.(check (option int)) "gone" None (Model.file_size m "/d/f");
  (* The open handle follows the inode across the rename. *)
  Alcotest.(check string) "read via handle" "end"
    (ok (Model.read m ~h:1 ~pos:10 ~len:8))

let test_model_errors () =
  let m = Model.create () in
  expect_code Fs_state.Enoent (Model.create_file m ~h:1 "/nope/f");
  expect_code Fs_state.Einval (Model.create_file m ~h:1 "relative");
  let m = ok (Model.create_file m ~h:1 "/f") in
  expect_code Fs_state.Eexist (Model.create_file m ~h:2 "/f");
  expect_code Fs_state.Enotdir (Model.create_file m ~h:2 "/f/under");
  expect_code Fs_state.Einval (Model.write m ~h:9 ~pos:0 "x");
  expect_code Fs_state.Einval (Model.read m ~h:1 ~pos:(-1) ~len:4);
  let m' = ok (Model.unlink m "/f") in
  (* Open fd over an unlinked file: Enoent on use, like the backends. *)
  expect_code Fs_state.Enoent (Model.read m' ~h:1 ~pos:0 ~len:1);
  expect_code Fs_state.Enotempty
    (let m = ok (Model.mkdir m "/d") in
     let m = ok (Model.create_file m ~h:3 "/d/x") in
     Model.unlink m "/d")

let test_model_digest_roundtrip () =
  (* Materialized Fs_state digests are inum-independent, so two
     different construction orders of the same tree agree. *)
  let build ops =
    List.fold_left
      (fun (m, h) -> function
        | `Mkdir p -> (ok (Model.mkdir m p), h)
        | `File (p, data) ->
            let m = ok (Model.create_file m ~h p) in
            let m = ok (Model.append m ~h data) in
            (Model.close m ~h, h + 1))
      (Model.create (), 1)
      ops
    |> fst
  in
  let a = build [ `Mkdir "/d"; `File ("/d/x", "xx"); `File ("/y", "yy") ] in
  let b = build [ `File ("/y", "yy"); `Mkdir "/d"; `File ("/d/x", "xx") ] in
  Alcotest.(check int32) "same digest" (Model.digest a) (Model.digest b);
  let c = build [ `File ("/y", "YY"); `Mkdir "/d"; `File ("/d/x", "xx") ] in
  Alcotest.(check bool) "content changes digest" true
    (Model.digest a <> Model.digest c)

(* ------------------------------------------------------------------ *)
(* Differential property (the qcheck satellite)                        *)
(* ------------------------------------------------------------------ *)

(* All three backends agree with the model on final tree contents,
   file sizes, and raised error codes, for random seeded traces of
   varying metadata:data mix. *)
let prop_backends_match_model =
  QCheck.Test.make ~name:"differ: all backends agree with model on random traces"
    ~count:12
    QCheck.(pair (int_bound 10_000) (int_bound 100))
    (fun (seed, meta_pct) ->
      let meta_ratio = float_of_int meta_pct /. 100.0 in
      let trace = Opgen.generate ~meta_ratio ~ops:40 ~seed () in
      let reports = Differ.run trace in
      if Differ.failed reports then
        QCheck.Test.fail_reportf "%a"
          (Format.pp_print_list Differ.pp_report)
          (List.filter Differ.report_failed reports)
      else true)

(* ------------------------------------------------------------------ *)
(* Mutation checks: the framework must catch planted bugs             *)
(* ------------------------------------------------------------------ *)

let overwrite_trace =
  {
    Opgen.seed = 0;
    ops =
      [
        Opgen.Create { h = 1; path = "/a" };
        Opgen.Append { h = 1; len = 8; dseed = 7 };
        Opgen.Create { h = 2; path = "/b" };
        Opgen.Rename { src = "/a"; dst = "/b" };
      ];
  }

let test_mutation_caught () =
  (* A correct backend vs a model with a planted rename bug: the diff
     must fire (otherwise the harness proves nothing). *)
  let bug = Model.Rename_no_overwrite in
  List.iter
    (fun b ->
      let r = Differ.check_backend ~bug b overwrite_trace in
      Alcotest.(check bool)
        (Backends.name b ^ " catches planted bug")
        true
        (Differ.report_failed r))
    Backends.all;
  (* And without the bug the same trace is clean. *)
  Alcotest.(check bool) "clean without bug" false
    (Differ.failed (Differ.run overwrite_trace))

let test_mutation_shrinks_minimal () =
  (* Pad the failing kernel with noise; the shrinker must cut it back
     down to the create/create/rename core. *)
  let noise = Opgen.generate ~ops:30 ~seed:5 () in
  let trace =
    { noise with Opgen.ops = noise.Opgen.ops @ overwrite_trace.Opgen.ops }
  in
  let bug = Model.Rename_no_overwrite in
  let shrunk, _runs = Differ.minimize ~bug Backends.Linefs trace in
  let n = List.length shrunk.Opgen.ops in
  if n > 3 then
    Alcotest.failf "shrunk to %d ops, expected <= 3:\n%s" n
      (Opgen.to_string shrunk);
  (* The shrunk trace still reproduces. *)
  Alcotest.(check bool) "still fails" true
    (Differ.report_failed (Differ.check_backend ~bug Backends.Linefs shrunk))

let test_shrinker_skips_unbound_slots () =
  (* Deleting the Create that binds a slot must leave a runnable trace
     (ops on the unbound slot are skipped, not errors). *)
  let trace =
    {
      Opgen.seed = 0;
      ops =
        [
          Opgen.Create { h = 1; path = "/a" };
          Opgen.Append { h = 1; len = 4; dseed = 1 };
          Opgen.Read { h = 1; pos = 0; len = 4 };
          Opgen.Close { h = 1 };
        ];
    }
  in
  let without_create =
    { trace with Opgen.ops = List.tl trace.Opgen.ops }
  in
  Alcotest.(check bool) "sublist is clean" false
    (Differ.failed (Differ.run ~backends:[ Backends.Linefs ] without_create))

(* ------------------------------------------------------------------ *)
(* Litmus smoke + litmus mutation                                     *)
(* ------------------------------------------------------------------ *)

let test_litmus_green () =
  let o = Litmus.run (Litmus.generate ~seed:2) in
  if Litmus.failed o then
    Alcotest.failf "litmus seed 2 failed: %a" Litmus.pp_outcome o

let test_litmus_mutation_caught () =
  let spec = Litmus.generate ~seed:1 in
  let o = Litmus.run ~mutate:Litmus.Drop_entry spec in
  Alcotest.(check bool) "dropped entry detected" true (Litmus.failed o);
  Alcotest.(check bool) "flagged as a log-prefix violation" true
    (List.exists
       (fun v -> v.Fault.Invariant.name = "log-gap")
       o.Litmus.violations)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "differ"
    [
      ( "model",
        [
          Alcotest.test_case "tree semantics" `Quick test_model_tree;
          Alcotest.test_case "error codes" `Quick test_model_errors;
          Alcotest.test_case "digest roundtrip" `Quick
            test_model_digest_roundtrip;
        ] );
      ("property", [ qt prop_backends_match_model ]);
      ( "mutation",
        [
          Alcotest.test_case "planted bug caught" `Quick test_mutation_caught;
          Alcotest.test_case "shrinks to minimal" `Quick
            test_mutation_shrinks_minimal;
          Alcotest.test_case "shrinker skips unbound slots" `Quick
            test_shrinker_skips_unbound_slots;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "seeded run green" `Quick test_litmus_green;
          Alcotest.test_case "dropped entry caught" `Quick
            test_litmus_mutation_caught;
        ] );
    ]
