(* FS conformance suite (the xfstests role): a matrix of generic POSIX
   behaviour checks executed against every DFS implementation through
   the common interface — LineFS, Assise, the Ceph-like baseline, and
   the model oracle itself (if the model fails a generic check, the
   oracle is wrong, not the backends). *)

open Storage
open Linefs

let with_system sys f =
  match sys with
  | `Model -> f (Conformance.Model.as_ops (ref (Conformance.Model.create ())))
  | `Backend b -> Conformance.Backends.run b f

let systems =
  ("model", `Model)
  :: List.map
       (fun b -> (Conformance.Backends.name b, `Backend b))
       Conformance.Backends.all

let str_of d = Bytes.to_string (Data.to_bytes d)

let expect_err err f =
  match f () with
  | () -> Alcotest.failf "expected %s" (Fs_state.error_to_string err)
  | exception Dfs_intf.Fs_error (e, _) ->
      Alcotest.(check string)
        "error code"
        (Fs_state.error_to_string err)
        (Fs_state.error_to_string e)

let expect_enoent f = expect_err Fs_state.Enoent (fun () -> ignore (f ()))

(* ------------------------------------------------------------------ *)
(* The generic checks (each runs on every system)                      *)
(* ------------------------------------------------------------------ *)

let generic_001_create_read_back (ops : Dfs_intf.ops) =
  let fd = ops.create "/g001" in
  ops.append fd (Data.of_string "content");
  Alcotest.(check string) "read" "content" (str_of (ops.read fd ~pos:0 ~len:64));
  ops.close fd

let generic_002_overwrite_middle (ops : Dfs_intf.ops) =
  let fd = ops.create "/g002" in
  ops.append fd (Data.of_string "aaaaaaaaaa");
  ops.write fd ~pos:3 (Data.of_string "XXX");
  Alcotest.(check string) "spliced" "aaaXXXaaaa"
    (str_of (ops.read fd ~pos:0 ~len:10));
  ops.close fd

let generic_003_sparse_file (ops : Dfs_intf.ops) =
  let fd = ops.create "/g003" in
  ops.write fd ~pos:100 (Data.of_string "end");
  Alcotest.(check (option int)) "size" (Some 103) (ops.file_size "/g003");
  let d = ops.read fd ~pos:98 ~len:5 in
  Alcotest.(check string) "hole zeros" "\000\000end" (str_of d);
  ops.close fd

let generic_004_read_past_eof (ops : Dfs_intf.ops) =
  let fd = ops.create "/g004" in
  ops.append fd (Data.of_string "xy");
  let d = ops.read fd ~pos:0 ~len:100 in
  Alcotest.(check int) "clamped at eof" 2 (Data.length d);
  let d = ops.read fd ~pos:50 ~len:10 in
  Alcotest.(check int) "fully past eof" 0 (Data.length d);
  ops.close fd

let generic_005_nested_dirs (ops : Dfs_intf.ops) =
  ops.mkdir "/a";
  ops.mkdir "/a/b";
  ops.mkdir "/a/b/c";
  let fd = ops.create "/a/b/c/deep" in
  ops.append fd (Data.of_string "!");
  ops.close fd;
  Alcotest.(check (option int)) "deep file" (Some 1) (ops.file_size "/a/b/c/deep")

let generic_006_unlink_then_recreate (ops : Dfs_intf.ops) =
  let fd = ops.create "/g006" in
  ops.append fd (Data.of_string "old-old-old");
  ops.close fd;
  ops.unlink "/g006";
  expect_enoent (fun () -> ops.open_file "/g006");
  let fd = ops.create "/g006" in
  ops.append fd (Data.of_string "new");
  Alcotest.(check (option int)) "fresh size" (Some 3) (ops.file_size "/g006");
  Alcotest.(check string) "fresh content" "new"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_007_rename_across_dirs (ops : Dfs_intf.ops) =
  ops.mkdir "/src";
  ops.mkdir "/dst";
  let fd = ops.create "/src/f" in
  ops.append fd (Data.of_string "moving");
  ops.close fd;
  ops.rename "/src/f" "/dst/f";
  Alcotest.(check (option int)) "gone" None (ops.file_size "/src/f");
  let fd = ops.open_file "/dst/f" in
  Alcotest.(check string) "moved content" "moving"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_008_rename_overwrites (ops : Dfs_intf.ops) =
  let fd = ops.create "/g008a" in
  ops.append fd (Data.of_string "winner");
  ops.close fd;
  let fd = ops.create "/g008b" in
  ops.append fd (Data.of_string "loser");
  ops.close fd;
  ops.rename "/g008a" "/g008b";
  Alcotest.(check (option int)) "source gone" None (ops.file_size "/g008a");
  let fd = ops.open_file "/g008b" in
  Alcotest.(check string) "target replaced" "winner"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_009_fsync_durability (ops : Dfs_intf.ops) =
  let fd = ops.create "/g009" in
  for i = 0 to 63 do
    ops.write fd ~pos:(i * 4096) (Data.synthetic ~seed:i ~len:4096)
  done;
  ops.fsync fd;
  (* Contents fully intact after fsync. *)
  let d = ops.read fd ~pos:(13 * 4096) ~len:4096 in
  Alcotest.(check bool) "content stable" true
    (Data.equal d (Data.synthetic ~seed:13 ~len:4096));
  ops.close fd

let generic_010_many_small_files (ops : Dfs_intf.ops) =
  ops.mkdir "/many";
  for i = 0 to 99 do
    let fd = ops.create (Printf.sprintf "/many/f%03d" i) in
    ops.append fd (Data.synthetic ~seed:i ~len:256);
    ops.close fd
  done;
  for i = 0 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "file %d" i)
      (Some 256)
      (ops.file_size (Printf.sprintf "/many/f%03d" i))
  done

let generic_011_open_missing_parent (ops : Dfs_intf.ops) =
  expect_enoent (fun () -> ops.create "/no-such-dir/f");
  expect_err Fs_state.Enoent (fun () -> ops.mkdir "/no-such-dir/d")

let generic_012_interleaved_fds (ops : Dfs_intf.ops) =
  let fd1 = ops.create "/g012a" in
  let fd2 = ops.create "/g012b" in
  ops.append fd1 (Data.of_string "one");
  ops.append fd2 (Data.of_string "two");
  ops.append fd1 (Data.of_string "ONE");
  Alcotest.(check string) "fd1" "oneONE" (str_of (ops.read fd1 ~pos:0 ~len:16));
  Alcotest.(check string) "fd2" "two" (str_of (ops.read fd2 ~pos:0 ~len:16));
  ops.close fd1;
  ops.close fd2

(* Metadata edge cases the original matrix skipped. *)

let generic_013_unlink_open_fd (ops : Dfs_intf.ops) =
  let fd = ops.create "/g013" in
  ops.append fd (Data.of_string "data");
  ops.unlink "/g013";
  Alcotest.(check (option int)) "path gone" None (ops.file_size "/g013");
  (* The inode is dropped with the name (nlink=1, no orphan list), so
     the still-open fd observes Enoent — on every backend alike. *)
  expect_err Fs_state.Enoent (fun () -> ignore (ops.read fd ~pos:0 ~len:4));
  expect_err Fs_state.Enoent (fun () ->
      ops.append fd (Data.of_string "late"));
  ops.close fd

let generic_014_mkdir_existing (ops : Dfs_intf.ops) =
  ops.mkdir "/g014";
  expect_err Fs_state.Eexist (fun () -> ops.mkdir "/g014");
  let fd = ops.create "/g014f" in
  ops.close fd;
  expect_err Fs_state.Eexist (fun () -> ops.mkdir "/g014f");
  expect_err Fs_state.Eexist (fun () -> ignore (ops.create "/g014"))

let generic_015_fsync_closed_fd (ops : Dfs_intf.ops) =
  let fd = ops.create "/g015" in
  ops.fsync fd;
  ops.close fd;
  expect_err Fs_state.Einval (fun () -> ops.fsync fd);
  expect_err Fs_state.Einval (fun () -> ops.fsync 9999)

let generic_016_rename_into_own_subtree (ops : Dfs_intf.ops) =
  ops.mkdir "/g016";
  ops.mkdir "/g016/sub";
  expect_err Fs_state.Ecycle (fun () -> ops.rename "/g016" "/g016/sub/x");
  expect_err Fs_state.Ecycle (fun () -> ops.rename "/g016" "/g016/y")

let generic_017_rename_kind_clash (ops : Dfs_intf.ops) =
  ops.mkdir "/g017d";
  ops.mkdir "/g017full";
  let fd = ops.create "/g017full/x" in
  ops.close fd;
  let fd = ops.create "/g017f" in
  ops.close fd;
  (* file onto dir: Eisdir; dir onto file: Enotdir; anything onto a
     nonempty dir of the same kind: Enotempty. *)
  expect_err Fs_state.Eisdir (fun () -> ops.rename "/g017f" "/g017d");
  expect_err Fs_state.Enotdir (fun () -> ops.rename "/g017d" "/g017f");
  expect_err Fs_state.Enotempty (fun () -> ops.rename "/g017d" "/g017full");
  expect_err Fs_state.Enoent (fun () -> ops.rename "/g017missing" "/g017f")

let generic_018_rename_same_entry (ops : Dfs_intf.ops) =
  let fd = ops.create "/g018" in
  ops.append fd (Data.of_string "stay");
  ops.close fd;
  ops.rename "/g018" "/g018";
  Alcotest.(check (option int)) "still there" (Some 4) (ops.file_size "/g018")

let generic_019_unlink_nonempty_dir (ops : Dfs_intf.ops) =
  ops.mkdir "/g019";
  let fd = ops.create "/g019/x" in
  ops.close fd;
  expect_err Fs_state.Enotempty (fun () -> ops.unlink "/g019");
  ops.unlink "/g019/x";
  ops.unlink "/g019";
  Alcotest.(check (option int)) "dir gone" None (ops.file_size "/g019");
  expect_err Fs_state.Enoent (fun () -> ops.unlink "/g019")

let all_generics =
  [
    ("001 create+read", generic_001_create_read_back);
    ("002 overwrite middle", generic_002_overwrite_middle);
    ("003 sparse file", generic_003_sparse_file);
    ("004 read past eof", generic_004_read_past_eof);
    ("005 nested dirs", generic_005_nested_dirs);
    ("006 unlink+recreate", generic_006_unlink_then_recreate);
    ("007 rename across dirs", generic_007_rename_across_dirs);
    ("008 rename overwrites", generic_008_rename_overwrites);
    ("009 fsync durability", generic_009_fsync_durability);
    ("010 many small files", generic_010_many_small_files);
    ("011 missing parent", generic_011_open_missing_parent);
    ("012 interleaved fds", generic_012_interleaved_fds);
    ("013 unlink open fd", generic_013_unlink_open_fd);
    ("014 mkdir existing", generic_014_mkdir_existing);
    ("015 fsync closed fd", generic_015_fsync_closed_fd);
    ("016 rename into own subtree", generic_016_rename_into_own_subtree);
    ("017 rename kind clash", generic_017_rename_kind_clash);
    ("018 rename same entry", generic_018_rename_same_entry);
    ("019 unlink nonempty dir", generic_019_unlink_nonempty_dir);
  ]

let () =
  Alcotest.run "fs-conformance"
    (List.map
       (fun (sysname, sys) ->
         ( sysname,
           List.map
             (fun (name, check) ->
               Alcotest.test_case name `Quick (fun () ->
                   with_system sys (fun ops -> check ops)))
             all_generics ))
       systems)
