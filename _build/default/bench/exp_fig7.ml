(* Figure 7: impact of the kernel worker's copying method on a
   co-running application and on LineFS throughput. Four LineFS
   clients continuously run the write microbenchmark while
   streamcluster runs on the primary at equal priority; the copy
   method is swept. *)

open Sim
open Linefs
open Common

let sc_iterations = 8
let sc_work = Time.ms 60
let io_bytes = 16 * 1024
let clients = 4

let modes =
  [
    Kworker.Cpu_memcpy;
    Kworker.Dma_polling;
    Kworker.Dma_polling_batch;
    Kworker.Dma_interrupt_batch;
    Kworker.No_copy;
  ]

let write_until ~ops ~client ~until =
  let file_bytes = 16 * 1024 * 1024 in
  let written = ref 0 in
  let round = ref 0 in
  while not (Ivar.is_filled until) do
    Workloads.Microbench.seq_write ~ops
      ~path:(Printf.sprintf "/fig7-%d-%d" client !round)
      ~file_bytes ~io_bytes ();
    incr round;
    written := !written + file_bytes
  done;
  !written

let run_one mode =
  in_sim (fun () ->
      let d =
        Deployment.create ~params:(params ()) ~kworker_mode:mode
          ~dfs_prio:Hw.Cpu.prio_normal ~nodes:3 ()
      in
      let sc_time = ref 0 in
      let sc_done = Ivar.create () in
      Engine.spawn (fun () ->
          sc_time :=
            Workloads.Streamcluster.run ~iterations:sc_iterations
              ~work_per_iter:sc_work
              ~node:(Deployment.primary d).Deployment.node
              ();
          Ivar.fill sc_done ());
      let opses =
        List.init clients (fun i ->
            Libfs.ops (Deployment.add_client d ~id:(i + 1)))
      in
      let written = ref 0 in
      let elapsed =
        parallel_clients clients (fun i ->
            let w =
              write_until ~ops:(List.nth opses (i - 1)) ~client:i
                ~until:sc_done
            in
            written := !written + w)
      in
      let tput = mbps !written elapsed in
      Deployment.stop d;
      (Time.to_sec_f !sc_time, tput))

let run () =
  heading "Figure 7: kernel-worker copy methods under co-execution";
  let rows =
    List.map
      (fun mode ->
        let sc, tput = run_one mode in
        [ Kworker.copy_mode_name mode; f2 sc; f1 tput ])
      modes
  in
  print_table
    ~header:[ "copy method"; "streamcluster time (s)"; "LineFS MB/s" ]
    ~rows
