(* Figure 8a: LevelDB db_bench average latency (us), replicas busy.
   Figure 8b: Filebench throughput (kops/s), replicas busy. *)

open Sim
open Common

let db_n () = if !current_scale == Common.full then 100_000 else 8_000

let run_db which workload =
  in_sim (fun () ->
      let sys = make_system ~dfs_prio:Hw.Cpu.prio_high which in
      let stop_bg = busy_replicas sys ~nodes:[ 1; 2 ] in
      let ops = sys.client 1 in
      let series =
        Workloads.Leveldb.db_bench ~ops ~dir:"/db" ~workload ~n:(db_n ()) ()
      in
      stop_bg ();
      sys.teardown ();
      Stats.Series.mean series)

let run_fb which profile =
  in_sim (fun () ->
      let sys = make_system ~dfs_prio:Hw.Cpu.prio_high which in
      let stop_bg = busy_replicas sys ~nodes:[ 1; 2 ] in
      let ops = sys.client 1 in
      let files = if !current_scale == Common.full then 10_000 else 1_500 in
      let r =
        Workloads.Filebench.run ~ops ~profile ~files ~threads:48
          ~duration:(Time.sec 2) ~seed:3 ()
      in
      stop_bg ();
      sys.teardown ();
      r.Workloads.Filebench.kops_per_sec)

let run_8a () =
  heading "Figure 8a: LevelDB db_bench average latency (us), replicas busy";
  let workloads =
    Workloads.Leveldb.
      [ Fillseq; Fillrandom; Fillsync; Readseq; Readrandom; Readhot ]
  in
  let rows =
    List.map
      (fun w ->
        let a = run_db Sys_assise w in
        let l = run_db Sys_linefs w in
        [
          Workloads.Leveldb.workload_name w;
          f1 a;
          f1 l;
          Printf.sprintf "%+.0f%%" ((a -. l) /. a *. 100.0);
        ])
      workloads
  in
  print_table
    ~header:[ "workload"; "Assise (us)"; "LineFS (us)"; "LineFS better by" ]
    ~rows

let run_8b () =
  heading "Figure 8b: Filebench throughput (kops/s), replicas busy";
  let rows =
    List.map
      (fun profile ->
        let a = run_fb Sys_assise profile in
        let l = run_fb Sys_linefs profile in
        [
          Workloads.Filebench.profile_name profile;
          f2 a;
          f2 l;
          Printf.sprintf "%+.0f%%" ((l -. a) /. a *. 100.0);
        ])
      Workloads.Filebench.[ Fileserver; Varmail ]
  in
  print_table
    ~header:[ "profile"; "Assise kops/s"; "LineFS kops/s"; "LineFS vs Assise" ]
    ~rows

let run () =
  run_8a ();
  run_8b ()
