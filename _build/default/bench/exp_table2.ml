(* Table 2: read throughput (MB/s) of Assise and LineFS. A single
   client reads a pre-written file locally with 16 KB IOs, sequentially
   and at random. Reads never touch the SmartNIC in LineFS, so the two
   systems should tie. *)

open Sim
open Common

let io_bytes = 16 * 1024

let run_one which =
  in_sim (fun () ->
      let sys = make_system which in
      let ops = sys.client 1 in
      let file_bytes = !current_scale.file_bytes / 2 in
      Workloads.Microbench.seq_write ~ops ~path:"/t2" ~file_bytes ~io_bytes ();
      sys.flush ();
      let t0 = Engine.now () in
      let n = Workloads.Microbench.seq_read ~ops ~path:"/t2" ~io_bytes () in
      let seq = mbps n (Engine.now () - t0) in
      let rng = Rng.create 5 in
      let t0 = Engine.now () in
      let n = Workloads.Microbench.rand_read ~ops ~path:"/t2" ~io_bytes ~rng () in
      let rand = mbps n (Engine.now () - t0) in
      sys.teardown ();
      (seq, rand))

let run () =
  heading "Table 2: read throughput (MB/s), single local client";
  let a_seq, a_rand = run_one Sys_assise in
  let l_seq, l_rand = run_one Sys_linefs in
  print_table
    ~header:[ "workload"; "Assise"; "LineFS" ]
    ~rows:
      [
        [ "sequential read"; f1 a_seq; f1 l_seq ];
        [ "random read"; f1 a_rand; f1 l_rand ];
      ]
