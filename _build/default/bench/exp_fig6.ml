(* Figure 6: performance interference under aggressive consolidation.
   streamcluster runs on ALL nodes (including the primary) at the same
   priority as the DFS, while two DFS clients continuously run the
   write microbenchmark for the whole co-execution window. We report
   streamcluster execution time on the primary and on a replica, plus
   DFS throughput over that window. *)

open Sim
open Common

let sc_iterations = 8
let sc_work = Time.ms 60
let io_bytes = 16 * 1024
let clients = 2

(* Keep writing files until [until] is filled; returns bytes written. *)
let write_until ~ops ~client ~until =
  let file_bytes = 16 * 1024 * 1024 in
  let written = ref 0 in
  let round = ref 0 in
  while not (Ivar.is_filled until) do
    Workloads.Microbench.seq_write ~ops
      ~path:(Printf.sprintf "/fig6-%d-%d" client !round)
      ~file_bytes ~io_bytes ();
    incr round;
    written := !written + file_bytes
  done;
  !written

let solo_time () =
  in_sim (fun () ->
      let topo = Hw.Topology.create ~nodes:1 () in
      Workloads.Streamcluster.run ~iterations:sc_iterations
        ~work_per_iter:sc_work
        ~node:(Hw.Topology.primary topo)
        ())

let run_one which =
  in_sim (fun () ->
      let sys = make_system ~dfs_prio:Hw.Cpu.prio_normal which in
      let opses = List.init clients (fun i -> sys.client (i + 1)) in
      (* streamcluster everywhere, same priority as the DFS. *)
      let sc_primary = ref 0 and sc_replica = ref 0 in
      let sc_done = Ivar.create () in
      let live = ref 2 in
      let finish r v =
        r := v;
        decr live;
        if !live = 0 then Ivar.fill sc_done ()
      in
      Engine.spawn (fun () ->
          finish sc_primary
            (Workloads.Streamcluster.run ~iterations:sc_iterations
               ~work_per_iter:sc_work ~node:(sys.node_of 0) ()));
      Engine.spawn (fun () ->
          finish sc_replica
            (Workloads.Streamcluster.run ~iterations:sc_iterations
               ~work_per_iter:sc_work ~node:(sys.node_of 1) ()));
      let t0 = Engine.now () in
      let written = ref 0 in
      let elapsed =
        parallel_clients clients (fun i ->
            let w =
              write_until ~ops:(List.nth opses (i - 1)) ~client:i
                ~until:sc_done
            in
            written := !written + w)
      in
      ignore t0;
      let tput = mbps !written elapsed in
      sys.teardown ();
      (!sc_primary, !sc_replica, tput))

let run () =
  heading "Figure 6: co-execution with streamcluster (same priority)";
  let solo = solo_time () in
  let rows =
    ("streamcluster solo", Time.to_sec_f solo, Time.to_sec_f solo, 0.0)
    :: List.map
         (fun which ->
           let p, r, tput = run_one which in
           (sysname_to_string which, Time.to_sec_f p, Time.to_sec_f r, tput))
         [ Sys_assise; Sys_assise_bg; Sys_linefs ]
  in
  let solo_s = Time.to_sec_f solo in
  print_table
    ~header:
      [
        "system";
        "sc primary (s)";
        "slowdown";
        "sc replica (s)";
        "slowdown";
        "DFS MB/s";
      ]
    ~rows:
      (List.map
         (fun (name, p, r, tput) ->
           [
             name;
             f2 p;
             Printf.sprintf "%+.0f%%" ((p -. solo_s) /. solo_s *. 100.0);
             f2 r;
             Printf.sprintf "%+.0f%%" ((r -. solo_s) /. solo_s *. 100.0);
             (if tput = 0.0 then "-" else f1 tput);
           ])
         rows)
