(* Table 3: operation latency (us) — each op writes 16 KB then calls
   fsync, so every op pays a full replication round trip. Measured
   with replicas idle and busy. *)

open Sim
open Common

let io_bytes = 16 * 1024
let n_ops = 2000

let run_one which ~busy =
  in_sim (fun () ->
      let dfs_prio = if busy then Hw.Cpu.prio_high else Hw.Cpu.prio_normal in
      let sys = make_system ~dfs_prio which in
      let stop_bg =
        if busy then busy_replicas sys ~nodes:[ 1; 2 ] else fun () -> ()
      in
      let ops = sys.client 1 in
      let series =
        Workloads.Microbench.write_fsync_latency ~ops ~path:"/t3" ~n_ops
          ~io_bytes ()
      in
      stop_bg ();
      sys.teardown ();
      ( Stats.Series.mean series,
        Stats.Series.percentile series 99.0,
        Stats.Series.percentile series 99.9 ))

let systems = [ Sys_assise; Sys_hyperloop; Sys_linefs ]

let run () =
  heading "Table 3: write+fsync latency (us), 16 KB ops";
  let rows =
    List.map
      (fun which ->
        let ia, i99, i999 = run_one which ~busy:false in
        let ba, b99, b999 = run_one which ~busy:true in
        [
          sysname_to_string which;
          f1 ia;
          f1 i99;
          f1 i999;
          f1 ba;
          f1 b99;
          f1 b999;
        ])
      systems
  in
  print_table
    ~header:
      [
        "system";
        "idle avg";
        "idle 99th";
        "idle 99.9th";
        "busy avg";
        "busy 99th";
        "busy 99.9th";
      ]
    ~rows
