(* Figure 5: publish and replication pipeline latency breakdown for a
   4 MB chunk. The two pipelines share fetching and validation; the
   publish branch adds publication + ack, the replication branch adds
   transfer + ack. *)

open Sim
open Linefs
open Common

let run () =
  heading "Figure 5: pipeline stage latency breakdown (4 MB chunks)";
  let stages, ack =
    in_sim (fun () ->
        let d =
          Deployment.create
            ~params:{ (params ()) with Params.log_bytes = 64 * 1024 * 1024 }
            ~nodes:3 ()
        in
        let c = Deployment.add_client d ~id:1 in
        let ops = Libfs.ops c in
        (* 32 MB: eight full 4 MB chunks through the pipelines. *)
        Workloads.Microbench.seq_write ~ops ~path:"/fig5"
          ~file_bytes:(32 * 1024 * 1024) ~io_bytes:(16 * 1024) ();
        Deployment.flush_all d;
        let nicfs = (Deployment.primary d).Deployment.nicfs in
        let stages = Nicfs.stage_mean_us nicfs ~client:1 in
        let ack = Stats.Series.mean (Nicfs.ack_latency nicfs) in
        Deployment.stop d;
        (stages, ack))
  in
  print_table
    ~header:[ "stage"; "mean latency (us)"; "pipeline" ]
    ~rows:
      (List.map
         (fun (name, us) ->
           let pipeline =
             match name with
             | "fetching" | "validation" -> "shared"
             | "publication" -> "publish"
             | "compression" | "transfer" -> "replication"
             | _ -> "-"
           in
           [ name; f1 us; pipeline ])
         stages
      @ [ [ "ack"; f1 ack; "both" ] ]);
  Printf.printf
    "\n(compression is 0 when the stage is disabled, as in the paper's\n\
    \ default configuration)\n"
