(* Ablations beyond the paper's figures, covering design choices
   DESIGN.md calls out:
   - chunk size sweep (PCIe amortization vs pipeline latency);
   - coalescing on/off under a create-then-delete-heavy workload;
   - NIC memory flow-control watermark sweep;
   - dynamic stage scaling threshold. *)

open Sim
open Storage
open Linefs
open Common

let io_bytes = 16 * 1024

let throughput_with ~params_patch =
  in_sim (fun () ->
      let d = Deployment.create ~params:(params_patch (params ())) ~nodes:3 () in
      let ops = Libfs.ops (Deployment.add_client d ~id:1) in
      let file_bytes = !current_scale.file_bytes / 4 in
      let t0 = Engine.now () in
      Workloads.Microbench.seq_write ~ops ~path:"/abl" ~file_bytes ~io_bytes ();
      let tput = gbps file_bytes (Engine.now () - t0) in
      Deployment.stop d;
      tput)

let chunk_size_sweep () =
  subheading "chunk size sweep (single client write throughput)";
  let rows =
    List.map
      (fun mb ->
        let tput =
          throughput_with ~params_patch:(fun p ->
              { p with Params.chunk_bytes = mb * 1024 * 1024 })
        in
        [ Printf.sprintf "%d MB" mb; f2 tput ])
      [ 1; 2; 4; 8 ]
  in
  print_table ~header:[ "chunk size"; "GB/s" ] ~rows

let coalescing_ablation () =
  subheading "coalescing on temporary-file churn (create/write/delete)";
  let run coalescing =
    in_sim (fun () ->
        let d = Deployment.create ~params:(params ()) ~coalescing ~nodes:3 () in
        let ops = Libfs.ops (Deployment.add_client d ~id:1) in
        for i = 0 to 299 do
          let path = Printf.sprintf "/tmp%d" (i mod 10) in
          let fd = ops.Dfs_intf.create path in
          ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:(64 * 1024));
          ops.Dfs_intf.close fd;
          ops.Dfs_intf.unlink path
        done;
        Deployment.flush_all d;
        let nicfs = (Deployment.primary d).Deployment.nicfs in
        let published = Nicfs.published_bytes nicfs in
        let removed = Nicfs.coalesced_entries nicfs in
        Deployment.stop d;
        (published, removed))
  in
  let pub_off, _ = run false in
  let pub_on, removed = run true in
  print_table
    ~header:[ "coalescing"; "published bytes"; "entries removed"; "write amp saved" ]
    ~rows:
      [
        [ "off"; string_of_int pub_off; "0"; "-" ];
        [
          "on";
          string_of_int pub_on;
          string_of_int removed;
          Printf.sprintf "%.0f%%"
            ((1.0 -. (float_of_int pub_on /. float_of_int pub_off)) *. 100.0);
        ];
      ]

let watermark_sweep () =
  subheading "flow-control watermark sweep (tiny 8 MB NIC memory)";
  let cfg =
    { Hw.Config.testbed_25gbe with Hw.Config.nic_mem_capacity = 8 * 1024 * 1024 }
  in
  let rows =
    List.map
      (fun (hi, lo) ->
        let tput =
          in_sim (fun () ->
              let p = { (params ()) with Params.hi_watermark = hi; lo_watermark = lo } in
              let d = Deployment.create ~cfg ~params:p ~nodes:3 () in
              let ops = Libfs.ops (Deployment.add_client d ~id:1) in
              let file_bytes = !current_scale.file_bytes / 8 in
              let t0 = Engine.now () in
              Workloads.Microbench.seq_write ~ops ~path:"/wm" ~file_bytes
                ~io_bytes ();
              let tput = gbps file_bytes (Engine.now () - t0) in
              Deployment.stop d;
              tput)
        in
        [ Printf.sprintf "%.0f%%/%.0f%%" (hi *. 100.) (lo *. 100.); f2 tput ])
      [ (0.9, 0.5); (0.7, 0.3); (0.5, 0.2); (0.3, 0.1) ]
  in
  print_table ~header:[ "hi/lo watermark"; "GB/s" ] ~rows

let scale_threshold_sweep () =
  subheading "pipeline stage scale-up threshold";
  let rows =
    List.map
      (fun threshold ->
        let tput =
          throughput_with ~params_patch:(fun p ->
              { p with Params.scale_queue_threshold = threshold })
        in
        [ string_of_int threshold; f2 tput ])
      [ 1; 5; 20 ]
  in
  print_table ~header:[ "queue threshold"; "GB/s" ] ~rows

let run () =
  heading "Ablations (beyond the paper's figures)";
  chunk_size_sweep ();
  coalescing_ablation ();
  watermark_sweep ();
  scale_threshold_sweep ()
