(* Figure 10: availability across a replica host failure. Varmail runs
   on the primary; at t=8s replica-1's host OS crashes (its kernel
   worker stops responding), replica-1's NICFS switches to isolated
   operation and keeps the chain alive; at t=16s the host recovers.
   Reported: varmail throughput per second over a 25 s window. *)

open Sim
open Linefs
open Common

let crash_at = Time.sec 8
let recover_at = Time.sec 16
let window = Time.sec 25

let run () =
  heading "Figure 10: Varmail throughput across a replica host failure";
  let ts, isolated_seen =
    in_sim (fun () ->
        let d =
          Deployment.create ~params:(params ()) ~monitor:true ~nodes:3 ()
        in
        let mid = Deployment.node d 1 in
        let c = Deployment.add_client d ~id:1 in
        let ops = Libfs.ops c in
        let ts = Stats.Timeseries.create ~bucket:(Time.sec 1) in
        let isolated_seen = ref false in
        Engine.spawn ~name:"fig10.fault-injector" (fun () ->
            Engine.sleep crash_at;
            Kworker.crash mid.Deployment.kworker;
            Engine.sleep (recover_at - crash_at);
            Kworker.recover mid.Deployment.kworker);
        Engine.spawn ~name:"fig10.observer" (fun () ->
            Engine.sleep (crash_at + Time.sec 1);
            isolated_seen := Nicfs.isolated mid.Deployment.nicfs);
        let files = if !current_scale == Common.full then 10_000 else 1_500 in
        let _ =
          Workloads.Filebench.run ~ops ~profile:Workloads.Filebench.Varmail
            ~files ~threads:8 ~ts ~duration:window ~seed:9 ()
        in
        Deployment.stop d;
        (ts, !isolated_seen))
  in
  Printf.printf "replica-1 host crashes at t=%ds, recovers at t=%ds\n"
    (crash_at / Time.sec 1) (recover_at / Time.sec 1);
  Printf.printf "replica-1 NICFS entered isolated mode: %b\n\n" isolated_seen;
  print_table
    ~header:[ "t (s)"; "varmail kops/s"; "phase" ]
    ~rows:
      (List.filter_map
         (fun (sec, rate) ->
           if sec >= Time.to_sec_f window then None
           else begin
             let t = int_of_float sec in
             let phase =
               if t >= crash_at / Time.sec 1 && t < recover_at / Time.sec 1
               then "host down (isolated NICFS)"
               else "normal"
             in
             Some [ string_of_int t; f2 (rate /. 1000.0); phase ]
           end)
         (Stats.Timeseries.rate_per_sec ts))
