(* Table 1: CPU utilization of Assise and Ceph for different numbers of
   benchmark processes and network speeds. Each client writes a file
   with 4 KB IOs; we report aggregate throughput and client-node DFS
   CPU utilization (100% = 1 core). *)

open Sim
open Common

let io_bytes = 4096

let run_assise ~cfg ~procs ~file_bytes =
  in_sim (fun () ->
      let sys = make_system ~cfg Sys_assise in
      let opses = List.init procs (fun i -> sys.client (i + 1)) in
      let elapsed =
        parallel_clients procs (fun i ->
            let ops = List.nth opses (i - 1) in
            Workloads.Microbench.seq_write ~ops
              ~path:(Printf.sprintf "/t1-%d" i)
              ~file_bytes ~io_bytes ())
      in
      let tput = gbps (procs * file_bytes) elapsed in
      let cpu = Stats.Busy.utilization (sys.dfs_cpu 0) ~over:elapsed in
      sys.teardown ();
      (tput, cpu))

let run_ceph ~cfg ~procs ~file_bytes =
  in_sim (fun () ->
      let sys = Baselines.Cephlike.create ~cfg ~nodes:3 () in
      let opses =
        List.init procs (fun i ->
            Baselines.Cephlike.ops (Baselines.Cephlike.add_client sys ~id:(i + 1)))
      in
      let elapsed =
        parallel_clients procs (fun i ->
            let ops = List.nth opses (i - 1) in
            Workloads.Microbench.seq_write ~ops
              ~path:(Printf.sprintf "/t1-%d" i)
              ~file_bytes ~io_bytes ())
      in
      let tput = gbps (procs * file_bytes) elapsed in
      let cpu =
        Stats.Busy.utilization (Baselines.Cephlike.client_host_cpu sys)
          ~over:elapsed
      in
      (tput, cpu))

let run () =
  heading
    "Table 1: client CPU utilization, Assise vs Ceph (100% = 1 core)";
  (* The paper writes 24 GB per client; scale keeps the 3:1 ratio to the
     per-client file of the other benchmarks. *)
  let file_bytes = !current_scale.file_bytes / 4 in
  Printf.printf "per-client file: %d MB, 4 KB IOs\n" (file_bytes / (1024 * 1024));
  let rows = ref [] in
  List.iter
    (fun (netname, cfg) ->
      List.iter
        (fun procs ->
          let a_tput, a_cpu = run_assise ~cfg ~procs ~file_bytes in
          let c_tput, c_cpu = run_ceph ~cfg ~procs ~file_bytes in
          rows :=
            [
              netname;
              string_of_int procs;
              f2 a_tput;
              f2 c_tput;
              pct a_cpu;
              pct c_cpu;
            ]
            :: !rows)
        [ 1; 2; 4; 8 ])
    [
      ("25GbE", Hw.Config.testbed_25gbe);
      ("100GbE", Hw.Config.testbed_100gbe);
    ];
  print_table
    ~header:
      [
        "net";
        "procs";
        "Assise GB/s";
        "Ceph GB/s";
        "Assise CPU";
        "Ceph CPU";
      ]
    ~rows:(List.rev !rows)
