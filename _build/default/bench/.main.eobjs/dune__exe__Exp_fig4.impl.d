bench/exp_fig4.ml: Common Hw List Printf Workloads
