bench/exp_table1.ml: Baselines Common Hw List Printf Sim Stats Workloads
