bench/exp_ablation.ml: Common Data Deployment Dfs_intf Engine Hw Libfs Linefs List Nicfs Params Printf Sim Storage Workloads
