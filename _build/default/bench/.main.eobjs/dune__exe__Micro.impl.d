bench/micro.ml: Analyze Bechamel Benchmark Bytes Common Compress Hashtbl Instance List Measure Printf Sim Staged Storage Test Time Toolkit
