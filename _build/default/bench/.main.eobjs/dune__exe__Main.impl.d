bench/main.ml: Array Common Exp_ablation Exp_fig10 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_table1 Exp_table2 Exp_table3 List Micro Printf String Sys Unix
