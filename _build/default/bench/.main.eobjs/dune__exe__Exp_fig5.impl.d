bench/exp_fig5.ml: Common Deployment Libfs Linefs List Nicfs Params Printf Sim Stats Workloads
