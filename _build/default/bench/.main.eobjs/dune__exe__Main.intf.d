bench/main.mli:
