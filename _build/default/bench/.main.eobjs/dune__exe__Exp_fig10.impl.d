bench/exp_fig10.ml: Common Deployment Engine Kworker Libfs Linefs List Nicfs Printf Sim Stats Time Workloads
