bench/exp_fig7.ml: Common Deployment Engine Hw Ivar Kworker Libfs Linefs List Printf Sim Time Workloads
