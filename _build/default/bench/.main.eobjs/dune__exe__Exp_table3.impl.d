bench/exp_table3.ml: Common Hw List Sim Stats Workloads
