bench/exp_fig8.ml: Common Hw List Printf Sim Stats Time Workloads
