bench/common.ml: Baselines Deployment Dfs_intf Engine Hw Ivar Libfs Linefs List Params Printf Sim Stats String Time Workloads
