bench/exp_fig6.ml: Common Engine Hw Ivar List Printf Sim Time Workloads
