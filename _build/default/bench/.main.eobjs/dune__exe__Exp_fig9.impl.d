bench/exp_fig9.ml: Common Hw List Printf Sim Stats Time Workloads
