bench/exp_table2.ml: Common Engine Rng Sim Workloads
