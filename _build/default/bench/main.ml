(* Benchmark harness: regenerates every table and figure of the LineFS
   paper's evaluation (§5) on the simulated testbed, plus ablations and
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # all experiments, scaled
     dune exec bench/main.exe -- table1 fig4  # a subset
     dune exec bench/main.exe -- --full ...   # paper-scale sizes (slow!)

   See EXPERIMENTS.md for paper-vs-measured commentary. *)

let experiments =
  [
    ("table1", "Assise vs Ceph CPU utilization", Exp_table1.run);
    ("fig4", "write throughput scalability", Exp_fig4.run);
    ("table2", "read throughput", Exp_table2.run);
    ("fig5", "pipeline latency breakdown", Exp_fig5.run);
    ("fig6", "streamcluster co-execution", Exp_fig6.run);
    ("fig7", "kernel-worker copy methods", Exp_fig7.run);
    ("table3", "write+fsync latency", Exp_table3.run);
    ("fig8", "LevelDB + Filebench", Exp_fig8.run);
    ("fig9", "Tencent Sort + compression", Exp_fig9.run);
    ("fig10", "availability across host failure", Exp_fig10.run);
    ("ablation", "design-choice ablations", Exp_ablation.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [--full] [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr)
    experiments;
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let requested =
    List.filter (fun a -> a <> "--full" && a <> "" && a.[0] <> '-') args
  in
  if List.exists (fun a -> a = "--help" || a = "-h") args then usage ();
  if full then Common.current_scale := Common.full;
  Printf.printf "LineFS reproduction harness — %s\n%!"
    !Common.current_scale.Common.label;
  let to_run =
    match requested with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.find_opt (fun (name, _, _) -> name = n) experiments with
            | Some e -> e
            | None ->
                Printf.printf "unknown experiment %S\n" n;
                usage ())
          names
  in
  List.iter
    (fun (name, _, run) ->
      let t0 = Unix.gettimeofday () in
      run ();
      Printf.printf "\n[%s done in %.1fs wall]\n%!" name
        (Unix.gettimeofday () -. t0))
    to_run
