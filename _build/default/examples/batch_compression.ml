(* Data-path processing on the SmartNIC (§5.4): run the Tencent Sort
   batch job over LineFS with the NICFS compression stage on and off
   and compare network bytes spent on replication. Run with:

     dune exec examples/batch_compression.exe
*)

open Sim
open Linefs

let records = 40_000

let run ~compression ~zero_ratio =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () ->
      let cluster = Deployment.create ~compression ~nodes:3 () in
      let client = Deployment.add_client cluster ~id:1 in
      let r =
        Workloads.Tencent_sort.run
          ~ops:(Libfs.ops client)
          ~node:(Deployment.primary cluster).Deployment.node
          ~records ~zero_ratio ~seed:21 ()
      in
      Deployment.flush_all cluster;
      result :=
        Some
          ( Time.to_sec_f r.Workloads.Tencent_sort.elapsed,
            Deployment.replication_wire_bytes cluster );
      Deployment.stop cluster);
  Engine.run eng;
  Option.get !result

let () =
  Fmt.pr "Tencent Sort (%d records) on LineFS, with and without the@." records;
  Fmt.pr "SmartNIC compression stage in the replication pipeline.@.@.";
  Fmt.pr "%-14s %-12s %-14s %-10s@." "input zeros" "compression" "sort time (s)"
    "wire MB";
  List.iter
    (fun zero_ratio ->
      let t_off, wire_off = run ~compression:false ~zero_ratio in
      let t_on, wire_on = run ~compression:true ~zero_ratio in
      Fmt.pr "%-14s %-12s %-14.2f %-10.1f@."
        (Printf.sprintf "%.0f%%" (zero_ratio *. 100.))
        "off" t_off
        (float_of_int wire_off /. 1e6);
      Fmt.pr "%-14s %-12s %-14.2f %-10.1f  (saves %.0f%%)@." "" "on" t_on
        (float_of_int wire_on /. 1e6)
        ((1. -. (float_of_int wire_on /. float_of_int wire_off)) *. 100.))
    [ 0.4; 0.6; 0.8 ];
  Fmt.pr "@.The LZW stage runs on spare SmartNIC cores; host CPUs never@.";
  Fmt.pr "touch the data.@."
