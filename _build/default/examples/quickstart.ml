(* Quickstart: bring up a 3-node LineFS cluster (primary + two
   replicas), attach a client, and do ordinary file IO. Run with:

     dune exec examples/quickstart.exe
*)

open Sim
open Storage
open Linefs

let () =
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      (* A cluster is a chain of nodes, each with host CPUs, PM, a
         SmartNIC running NICFS, and a kernel worker. *)
      let cluster = Deployment.create ~nodes:3 () in
      let client = Deployment.add_client cluster ~id:1 in
      let ops = Libfs.ops client in

      (* POSIX-ish API: create, write, read, fsync. *)
      ops.Dfs_intf.mkdir "/demo";
      let fd = ops.Dfs_intf.create "/demo/hello.txt" in
      ops.Dfs_intf.append fd (Data.of_string "hello from LineFS!");
      (* fsync returns once the data is persisted locally AND
         replicated to both replicas via the SmartNIC pipeline. *)
      ops.Dfs_intf.fsync fd;
      Fmt.pr "wrote and replicated in %a of simulated time@." Time.pp
        (Engine.now ());

      let data = ops.Dfs_intf.read fd ~pos:0 ~len:100 in
      Fmt.pr "read back: %S@." (Bytes.to_string (Data.to_bytes data));
      ops.Dfs_intf.close fd;

      (* Bulk write: watch the pipeline publish in the background. *)
      let fd = ops.Dfs_intf.create "/demo/bulk" in
      for i = 0 to 1023 do
        ops.Dfs_intf.write fd ~pos:(i * 16384)
          (Data.synthetic ~seed:i ~len:16384)
      done;
      ops.Dfs_intf.fsync fd;
      ops.Dfs_intf.close fd;
      Deployment.flush_all cluster;

      let nicfs = (Deployment.primary cluster).Deployment.nicfs in
      Fmt.pr "@.pipeline stage mean latencies (per 4 MB chunk):@.";
      List.iter
        (fun (stage, us) -> Fmt.pr "  %-12s %8.1f us@." stage us)
        (Nicfs.stage_mean_us nicfs ~client:1);
      Fmt.pr "@.bytes published to public PM: %d@."
        (Nicfs.published_bytes nicfs);
      Fmt.pr "bytes replicated over the wire: %d@."
        (Nicfs.replicated_wire_bytes nicfs);
      Fmt.pr "client log bytes still pending: %d@."
        (Libfs.pending_bytes client);
      Deployment.stop cluster);
  Engine.run eng;
  Fmt.pr "@.simulated time at exit: %a@." Time.pp (Engine.current_time eng)
