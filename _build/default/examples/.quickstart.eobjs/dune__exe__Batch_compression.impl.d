examples/batch_compression.ml: Deployment Engine Fmt Libfs Linefs List Option Printf Sim Time Workloads
