examples/kv_store.ml: Baselines Data Deployment Dfs_intf Engine Fmt Libfs Linefs Printf Rng Sim Storage Time Workloads
