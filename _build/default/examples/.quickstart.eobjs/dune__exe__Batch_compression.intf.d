examples/batch_compression.mli:
