examples/failover.ml: Data Deployment Dfs_intf Engine Fmt Kworker Libfs Linefs Nicfs Params Sim Storage Time
