examples/quickstart.mli:
