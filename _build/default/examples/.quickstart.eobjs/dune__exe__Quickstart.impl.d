examples/quickstart.ml: Bytes Data Deployment Dfs_intf Engine Fmt Libfs Linefs List Nicfs Sim Storage Time
