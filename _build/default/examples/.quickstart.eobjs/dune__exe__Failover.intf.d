examples/failover.mli:
