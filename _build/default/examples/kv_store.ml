(* A key-value store on LineFS: run the bundled LSM tree (LevelDB-style
   memtable + WAL + SSTables) against a replicated 3-node cluster, then
   against Assise for comparison. Run with:

     dune exec examples/kv_store.exe
*)

open Sim
open Storage
open Linefs

let n_keys = 2_000
let value_bytes = 512

let bench_on name (ops : Dfs_intf.ops) =
  let rng = Rng.create 42 in
  let db = Workloads.Leveldb.open_db ~ops ~dir:"/kv" () in
  (* Load phase: synchronous inserts (each one WAL-append + fsync). *)
  let t0 = Engine.now () in
  for i = 0 to n_keys - 1 do
    Workloads.Leveldb.put db ~sync:true
      ~key:(Printf.sprintf "user%08d" i)
      ~value:(Data.synthetic ~seed:i ~len:value_bytes)
      ()
  done;
  let load_time = Engine.now () - t0 in
  Workloads.Leveldb.flush db;
  (* Read phase: random gets. *)
  let t0 = Engine.now () in
  let hits = ref 0 in
  for _ = 1 to n_keys do
    let i = Rng.int rng n_keys in
    match Workloads.Leveldb.get db ~key:(Printf.sprintf "user%08d" i) with
    | Some v ->
        assert (Data.length v = value_bytes);
        incr hits
    | None -> failwith "lost a key!"
  done;
  let read_time = Engine.now () - t0 in
  Workloads.Leveldb.close db;
  Fmt.pr "%-8s sync-load: %6.1f Kops/s   random-get: %6.1f Kops/s   (%d sstables)@."
    name
    (float_of_int n_keys /. Time.to_sec_f load_time /. 1e3)
    (float_of_int !hits /. Time.to_sec_f read_time /. 1e3)
    (Workloads.Leveldb.sstable_count db)

let () =
  Fmt.pr "LSM key-value store over a replicated DFS (%d keys, %dB values)@.@."
    n_keys value_bytes;
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      let cluster = Deployment.create ~nodes:3 () in
      bench_on "LineFS" (Libfs.ops (Deployment.add_client cluster ~id:1));
      Deployment.stop cluster);
  Engine.run eng;
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      let assise = Baselines.Assise.create ~nodes:3 () in
      bench_on "Assise"
        (Baselines.Assise.ops (Baselines.Assise.add_client assise ~id:1));
      Baselines.Assise.stop assise);
  Engine.run eng;
  Fmt.pr "@.Every synchronous insert paid a full chain-replication round@.";
  Fmt.pr "trip; reads were served from client-local PM in both systems.@."
