(* Extended NICFS availability (§3.5): crash a replica's host OS in the
   middle of a replicated write stream and watch its SmartNIC keep the
   chain alive in isolated mode. Run with:

     dune exec examples/failover.exe
*)

open Sim
open Storage
open Linefs

let () =
  let eng = Engine.create () in
  Engine.spawn_root eng (fun () ->
      let params =
        { Params.default with Params.hb_interval = Time.ms 2 }
      in
      let cluster = Deployment.create ~params ~monitor:true ~nodes:3 () in
      let replica1 = Deployment.node cluster 1 in
      let client = Deployment.add_client cluster ~id:1 in
      let ops = Libfs.ops client in

      (* Fault injector: replica-1's host OS dies at t=50ms and comes
         back at t=150ms. *)
      Engine.spawn ~name:"fault" (fun () ->
          Engine.sleep (Time.ms 8);
          Fmt.pr "[%a] !! replica-1 host OS crashed@." Time.pp (Engine.now ());
          Kworker.crash replica1.Deployment.kworker;
          Engine.sleep (Time.ms 14);
          Kworker.recover replica1.Deployment.kworker;
          Fmt.pr "[%a] !! replica-1 host OS recovered@." Time.pp (Engine.now ()));

      (* Status reporter. *)
      let stop_reporter = ref false in
      Engine.spawn ~name:"reporter" (fun () ->
          while not !stop_reporter do
            Engine.sleep (Time.ms 4);
            Fmt.pr "[%a] replica-1 isolated mode: %b@." Time.pp (Engine.now ())
              (Nicfs.isolated replica1.Deployment.nicfs)
          done);

      (* The client streams writes with periodic fsyncs throughout the
         failure window; every fsync still completes because the
         isolated NICFS keeps persisting and forwarding via PCIe. *)
      let fd = ops.Dfs_intf.create "/stream" in
      for i = 0 to 255 do
        ops.Dfs_intf.write fd ~pos:(i * 65536)
          (Data.synthetic ~seed:i ~len:65536);
        if i mod 32 = 31 then begin
          ops.Dfs_intf.fsync fd;
          Fmt.pr "[%a] fsync #%d complete (replicated to all)@." Time.pp
            (Engine.now ()) (i / 32)
        end
      done;
      stop_reporter := true;
      Fmt.pr "@.final state:@.";
      Fmt.pr "  bytes replica-1 forwarded to replica-2: %d@."
        (Nicfs.replicated_wire_bytes replica1.Deployment.nicfs);
      Fmt.pr "  bytes replica-1 published (incl. isolated PCIe mode): %d@."
        (Nicfs.published_bytes replica1.Deployment.nicfs);
      Deployment.stop cluster);
  Engine.run eng
