(** RPC between cluster agents, with the paper's two connection classes
    (§3.3.2 "scalable, low latency RDMA request processing"):

    - [`Busy_poll]: a dedicated thread pinned to a reserved core spins
      on the completion queue.  Requests are picked up within the poll
      granularity (sub-microsecond) regardless of CPU load — but one
      core is permanently consumed.  All of the server's connections are
      multiplexed onto this single thread (few QPs by design).
    - [`Event]: a worker pool is woken per request; each dispatch pays
      wake-up/context-switch time {e on the CPU pool}, so under host
      contention dispatch queues behind application threads — the
      mechanism behind Assise's inflated tail latencies when busy.

    Handlers run in simulation-process context and may block (move
    data, take locks, call further RPCs). *)

type ('req, 'resp) t

type kind =
  | Busy_poll
  | Event of { workers : int; prio : Hw.Cpu.prio }

val create :
  ?dispatch_cost:Sim.Time.t ->
  ?poll_overhead:Sim.Time.t ->
  name:string ->
  loc:Loc.t ->
  kind:kind ->
  handler:('req -> 'resp) ->
  unit ->
  ('req, 'resp) t
(** Start serving. [Busy_poll] reserves one core on [loc]'s CPU pool.
    Defaults: [dispatch_cost] 5 us, [poll_overhead] 200 ns. *)

val loc : _ t -> Loc.t

val call : ('req, 'resp) t -> from:Loc.t -> ?bytes:int -> 'req -> 'resp
(** Synchronous request: sends a message of [bytes] (default 64) to the
    server location, waits for the handler, pays the response transfer
    back. *)

val post : ('req, 'resp) t -> from:Loc.t -> ?bytes:int -> 'req -> unit
(** Fire-and-forget: pays the request transfer, does not wait for the
    handler to finish. *)

val queue_length : _ t -> int
(** Requests waiting to be picked up (a load signal). *)

val shutdown : _ t -> unit
(** Stop workers after the current queue drains; frees the reserved
    core for busy-poll servers. *)
