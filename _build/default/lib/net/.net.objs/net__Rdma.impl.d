lib/net/rdma.ml: Bandwidth Config Hw Loc Netlink Node Pcie Pm Sim
