lib/net/rpc.ml: Engine Hw Ivar Loc Mailbox Printf Rdma Sim Time
