lib/net/loc.ml: Format Hw
