lib/net/loc.mli: Format Hw
