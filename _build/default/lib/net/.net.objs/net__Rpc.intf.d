lib/net/rpc.mli: Hw Loc Sim
