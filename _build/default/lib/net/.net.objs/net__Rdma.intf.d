lib/net/rdma.mli: Loc Sim
