type t = Host of Hw.Node.t | Nic of Hw.Node.t

let node = function Host n | Nic n -> n
let same_node a b = (node a).Hw.Node.id = (node b).Hw.Node.id
let is_host = function Host _ -> true | Nic _ -> false

let pp fmt = function
  | Host n -> Format.fprintf fmt "host%d" n.Hw.Node.id
  | Nic n -> Format.fprintf fmt "nic%d" n.Hw.Node.id
