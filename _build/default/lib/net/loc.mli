(** Memory/agent locations in the cluster.

    A location names where data lives or where an agent executes: in a
    node's host memory (PM/DRAM behind the PCIe root complex) or in its
    SmartNIC's memory.  Data-movement costs are derived from the pair
    of endpoints (§2.2): crossing PCIe costs microseconds; crossing the
    network costs port bandwidth plus fabric latency. *)

type t = Host of Hw.Node.t | Nic of Hw.Node.t

val node : t -> Hw.Node.t
val same_node : t -> t -> bool
val is_host : t -> bool
val pp : Format.formatter -> t -> unit
