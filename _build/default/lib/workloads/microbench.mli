(** File microbenchmarks (§5.2): sequential/random write and read
    drivers and the latency loop, all system-agnostic via
    {!Linefs.Dfs_intf.ops}. *)

open Sim

val seq_write :
  ops:Linefs.Dfs_intf.ops ->
  path:string ->
  file_bytes:int ->
  io_bytes:int ->
  ?fsync_at_end:bool ->
  ?seed:int ->
  unit ->
  unit
(** Write a file sequentially in [io_bytes] units (synthetic payloads),
    optionally calling fsync once at the end (the paper's throughput
    microbenchmark shape). *)

val seq_read :
  ops:Linefs.Dfs_intf.ops -> path:string -> io_bytes:int -> unit -> int
(** Read an existing file start to end; returns bytes read. *)

val rand_read :
  ops:Linefs.Dfs_intf.ops ->
  path:string ->
  io_bytes:int ->
  rng:Rng.t ->
  unit ->
  int
(** Read the whole file's worth of data at random aligned offsets. *)

val write_fsync_latency :
  ops:Linefs.Dfs_intf.ops ->
  path:string ->
  n_ops:int ->
  io_bytes:int ->
  unit ->
  Stats.Series.t
(** The Table 3 loop: each operation is a write followed by fsync;
    returns per-operation latencies in microseconds. *)
