(** A small LSM-tree key-value store in the style of LevelDB, running
    on any DFS through {!Linefs.Dfs_intf.ops}.

    Persistence matches LevelDB's structure: every put appends a record
    to a write-ahead log file; when the memtable fills it is flushed to
    a sorted SSTable file (fsync'd) and the old WAL is deleted.  Reads
    consult the memtable, then SSTables newest-to-oldest via their
    in-memory indexes.  The db_bench driver reproduces Figure 8a's
    workloads. *)

open Sim

type t

val open_db :
  ops:Linefs.Dfs_intf.ops ->
  dir:string ->
  ?memtable_bytes:int ->
  unit ->
  t
(** Create/open a database in [dir] (created if missing).
    [memtable_bytes] defaults to 4 MB (LevelDB's write buffer). *)

val put : t -> ?sync:bool -> key:string -> value:Storage.Data.t -> unit -> unit
(** Insert/overwrite. [sync] (default false) fsyncs the WAL — the
    "synchronous insert" of db_bench. *)

val get : t -> key:string -> Storage.Data.t option

val flush : t -> unit
(** Force the memtable to an SSTable. *)

val close : t -> unit
(** fsync outstanding WAL state. *)

val sstable_count : t -> int

(** {1 db_bench} *)

type workload =
  | Fillseq
  | Fillrandom
  | Fillsync
  | Readseq
  | Readrandom
  | Readhot

val workload_name : workload -> string

val db_bench :
  ops:Linefs.Dfs_intf.ops ->
  dir:string ->
  workload:workload ->
  n:int ->
  ?value_bytes:int ->
  ?seed:int ->
  unit ->
  Stats.Series.t
(** Run a workload of [n] operations (16-byte keys, 1 KB values by
    default, as in the paper) and return per-operation latencies in
    microseconds.  Read workloads first populate the database with [n]
    entries (not timed). *)
