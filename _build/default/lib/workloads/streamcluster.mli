(** streamcluster stand-in (PARSEC): a CPU-bound, barrier-synchronised
    parallel job used as the co-running antagonist in §5.2/§5.3.

    Each iteration, every thread computes a fixed amount of work and
    all threads meet at a barrier; stragglers caused by DFS threads
    stealing cores therefore delay the whole program — the interference
    amplifier the paper describes (C1). *)

open Sim

val run :
  ?threads:int ->
  ?iterations:int ->
  ?work_per_iter:Time.t ->
  ?prio:Hw.Cpu.prio ->
  node:Hw.Node.t ->
  unit ->
  Time.t
(** Run to completion; returns elapsed time.  Defaults: one thread per
    host core, 30 iterations, 100 ms of work per thread-iteration. *)

val solo_estimate :
  ?threads:int -> ?iterations:int -> ?work_per_iter:Time.t ->
  node:Hw.Node.t -> unit -> Time.t
(** Ideal (contention-free) runtime for the same parameters. *)

type background

val start_background :
  ?threads:int -> ?work_per_iter:Time.t -> ?prio:Hw.Cpu.prio ->
  node:Hw.Node.t -> unit -> background
(** Run iterations in a loop until {!stop} — the "replicas busy"
    condition. *)

val stop : background -> unit
val iterations_done : background -> int
