open Sim
open Linefs

let seq_write ~(ops : Dfs_intf.ops) ~path ~file_bytes ~io_bytes
    ?(fsync_at_end = true) ?(seed = 1) () =
  let fd = ops.Dfs_intf.create path in
  let n = file_bytes / io_bytes in
  for i = 0 to n - 1 do
    ops.Dfs_intf.write fd ~pos:(i * io_bytes)
      (Storage.Data.synthetic ~seed:(seed + i) ~len:io_bytes)
  done;
  if fsync_at_end then ops.Dfs_intf.fsync fd;
  ops.Dfs_intf.close fd

let seq_read ~(ops : Dfs_intf.ops) ~path ~io_bytes () =
  let fd = ops.Dfs_intf.open_file path in
  let size =
    match ops.Dfs_intf.file_size path with Some s -> s | None -> 0
  in
  let total = ref 0 in
  let pos = ref 0 in
  while !pos < size do
    let d = ops.Dfs_intf.read fd ~pos:!pos ~len:io_bytes in
    total := !total + Storage.Data.length d;
    pos := !pos + io_bytes
  done;
  ops.Dfs_intf.close fd;
  !total

let rand_read ~(ops : Dfs_intf.ops) ~path ~io_bytes ~rng () =
  let fd = ops.Dfs_intf.open_file path in
  let size =
    match ops.Dfs_intf.file_size path with Some s -> s | None -> 0
  in
  let blocks = max 1 (size / io_bytes) in
  let total = ref 0 in
  for _ = 1 to blocks do
    let pos = Rng.int rng blocks * io_bytes in
    let d = ops.Dfs_intf.read fd ~pos ~len:io_bytes in
    total := !total + Storage.Data.length d
  done;
  ops.Dfs_intf.close fd;
  !total

let write_fsync_latency ~(ops : Dfs_intf.ops) ~path ~n_ops ~io_bytes () =
  let series = Stats.Series.create () in
  let fd = ops.Dfs_intf.create path in
  for i = 0 to n_ops - 1 do
    let t0 = Engine.now () in
    ops.Dfs_intf.write fd ~pos:(i * io_bytes)
      (Storage.Data.synthetic ~seed:i ~len:io_bytes);
    ops.Dfs_intf.fsync fd;
    Stats.Series.add series (Time.to_us_f (Engine.now () - t0))
  done;
  ops.Dfs_intf.close fd;
  series
