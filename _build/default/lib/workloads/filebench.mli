(** Filebench profiles (§5.3): Fileserver and Varmail.

    - Fileserver: 128 KB average files, write:read 2:1, no fsync
      (relaxed crash consistency);
    - Varmail: 16 KB files, 1:1 mix, frequent fsync (write-ahead-log
      style mailbox updates) and many [open] calls.

    Threads work on disjoint file subsets (as filebench's fileset
    pre-allocation effectively does) and run until a deadline. *)

open Sim

type profile = Fileserver | Varmail

val profile_name : profile -> string

type result = {
  ops_done : int;  (** Primitive file operations completed. *)
  elapsed : Time.t;
  kops_per_sec : float;
}

val run :
  ops:Linefs.Dfs_intf.ops ->
  profile:profile ->
  ?files:int ->
  ?threads:int ->
  ?ts:Stats.Timeseries.t ->
  duration:Time.t ->
  seed:int ->
  unit ->
  result
(** [files] defaults to the paper's 10 K working set; [threads] to 16.
    [ts] (optional) accumulates completed operations over time — the
    Figure 10 time series. *)
