open Sim
open Storage
open Linefs

type profile = Fileserver | Varmail

let profile_name = function
  | Fileserver -> "fileserver"
  | Varmail -> "varmail"

type result = { ops_done : int; elapsed : Time.t; kops_per_sec : float }

let mean_size = function Fileserver -> 128 * 1024 | Varmail -> 16 * 1024
let append_size = function Fileserver -> 16 * 1024 | Varmail -> 8 * 1024

(* Draw a file size around the profile mean (0.5x - 1.5x). *)
let draw_size profile rng =
  let mean = mean_size profile in
  (mean / 2) + Rng.int rng mean

let fname dir i = Printf.sprintf "%s/f%05d" dir i

(* One iteration of the fileserver flow; returns primitive ops done. *)
let fileserver_flow (ops : Dfs_intf.ops) rng dir ~lo ~hi =
  let pick () = lo + Rng.int rng (hi - lo) in
  let count = ref 0 in
  let op () = incr count in
  (* create + write whole file *)
  let i = pick () in
  (try ops.Dfs_intf.unlink (fname dir i) with Dfs_intf.Fs_error _ -> ());
  op ();
  let fd = ops.Dfs_intf.create (fname dir i) in
  op ();
  let size = draw_size Fileserver rng in
  ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:size);
  op ();
  ops.Dfs_intf.close fd;
  op ();
  (* open + append *)
  let j = pick () in
  (match ops.Dfs_intf.file_size (fname dir j) with
  | Some _ ->
      let fd = ops.Dfs_intf.open_file (fname dir j) in
      op ();
      ops.Dfs_intf.append fd
        (Data.synthetic ~seed:j ~len:(append_size Fileserver));
      op ();
      ops.Dfs_intf.close fd;
      op ()
  | None -> ());
  (* open + read whole *)
  let k = pick () in
  (match ops.Dfs_intf.file_size (fname dir k) with
  | Some size when size > 0 ->
      let fd = ops.Dfs_intf.open_file (fname dir k) in
      op ();
      let pos = ref 0 in
      while !pos < size do
        ignore (ops.Dfs_intf.read fd ~pos:!pos ~len:(64 * 1024) : Data.t);
        pos := !pos + (64 * 1024)
      done;
      op ();
      ops.Dfs_intf.close fd;
      op ()
  | _ -> ());
  !count

(* One iteration of the varmail flow (mailbox churn with fsyncs). *)
let varmail_flow (ops : Dfs_intf.ops) rng dir ~lo ~hi =
  let pick () = lo + Rng.int rng (hi - lo) in
  let count = ref 0 in
  let op () = incr count in
  (* delete a mail file *)
  let i = pick () in
  (try
     ops.Dfs_intf.unlink (fname dir i);
     op ()
   with Dfs_intf.Fs_error _ -> ());
  (* compose: create + write + fsync *)
  let fd = ops.Dfs_intf.create (fname dir i) in
  op ();
  ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:(draw_size Varmail rng));
  op ();
  ops.Dfs_intf.fsync fd;
  op ();
  ops.Dfs_intf.close fd;
  op ();
  (* read + append + fsync (mailbox update) *)
  let j = pick () in
  (match ops.Dfs_intf.file_size (fname dir j) with
  | Some size when size > 0 ->
      let fd = ops.Dfs_intf.open_file (fname dir j) in
      op ();
      ignore (ops.Dfs_intf.read fd ~pos:0 ~len:size : Data.t);
      op ();
      ops.Dfs_intf.append fd (Data.synthetic ~seed:j ~len:(append_size Varmail));
      op ();
      ops.Dfs_intf.fsync fd;
      op ();
      ops.Dfs_intf.close fd;
      op ()
  | _ -> ());
  (* read whole mailbox *)
  let k = pick () in
  (match ops.Dfs_intf.file_size (fname dir k) with
  | Some size when size > 0 ->
      let fd = ops.Dfs_intf.open_file (fname dir k) in
      op ();
      ignore (ops.Dfs_intf.read fd ~pos:0 ~len:size : Data.t);
      op ();
      ops.Dfs_intf.close fd;
      op ()
  | _ -> ());
  !count

let run ~(ops : Dfs_intf.ops) ~profile ?(files = 10_000) ?(threads = 16) ?ts
    ~duration ~seed () =
  let dir = "/" ^ profile_name profile in
  (match ops.Dfs_intf.file_size dir with
  | Some _ -> ()
  | None -> ops.Dfs_intf.mkdir dir);
  let rng = Rng.create seed in
  (* Pre-allocate the working set (not timed). *)
  for i = 0 to files - 1 do
    let fd = ops.Dfs_intf.create (fname dir i) in
    ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:(draw_size profile rng));
    ops.Dfs_intf.close fd
  done;
  let t0 = Engine.now () in
  let deadline = t0 + duration in
  let total = ref 0 in
  let live = ref threads in
  let finished = Ivar.create () in
  let per_thread = files / threads in
  for th = 0 to threads - 1 do
    let thread_rng = Rng.create (seed + (th * 7919)) in
    let lo = th * per_thread and hi = (th + 1) * per_thread in
    Engine.spawn ~name:(Printf.sprintf "filebench.t%d" th) (fun () ->
        while Engine.now () < deadline do
          let n =
            match profile with
            | Fileserver -> fileserver_flow ops thread_rng dir ~lo ~hi
            | Varmail -> varmail_flow ops thread_rng dir ~lo ~hi
          in
          total := !total + n;
          match ts with
          | Some series ->
              Stats.Timeseries.add series ~at:(Engine.now ()) (float_of_int n)
          | None -> ()
        done;
        decr live;
        if !live = 0 then Ivar.fill finished ())
  done;
  Ivar.read finished;
  let elapsed = Engine.now () - t0 in
  {
    ops_done = !total;
    elapsed;
    kops_per_sec = float_of_int !total /. Time.to_sec_f elapsed /. 1000.0;
  }
