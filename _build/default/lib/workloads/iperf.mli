(** iperf3 stand-in: background bulk traffic that contends for network
    bandwidth (used while measuring compression savings, §5.4). *)

type t

val start : ?burst:int -> src:Hw.Node.t -> dst:Hw.Node.t -> unit -> t
(** Continuously stream [burst]-byte sends (default 1 MB) from [src]
    to [dst] until {!stop}. *)

val stop : t -> unit
val bytes_sent : t -> int
