lib/workloads/iperf.ml: Hw Sim
