lib/workloads/streamcluster.ml: Engine Hw Ivar Sim Time
