lib/workloads/leveldb.mli: Linefs Sim Stats Storage
