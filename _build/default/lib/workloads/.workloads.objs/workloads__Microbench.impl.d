lib/workloads/microbench.ml: Dfs_intf Engine Linefs Rng Sim Stats Storage Time
