lib/workloads/filebench.ml: Data Dfs_intf Engine Ivar Linefs Printf Rng Sim Stats Storage Time
