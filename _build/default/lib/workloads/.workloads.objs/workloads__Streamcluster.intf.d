lib/workloads/streamcluster.mli: Hw Sim Time
