lib/workloads/tencent_sort.mli: Hw Linefs Sim Time
