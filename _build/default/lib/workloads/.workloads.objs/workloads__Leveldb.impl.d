lib/workloads/leveldb.ml: Array Bytes Data Dfs_intf Engine Int32 Linefs List Map Printf Rng Sim Stats Storage String Time
