lib/workloads/iperf.mli: Hw
