lib/workloads/microbench.mli: Linefs Rng Sim Stats
