lib/workloads/tencent_sort.ml: Array Buffer Bytes Char Data Dfs_intf Engine Hw Ivar Linefs Printf Rng Sim Storage Time
