lib/workloads/filebench.mli: Linefs Sim Stats Time
