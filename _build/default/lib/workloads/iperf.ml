type t = { mutable running : bool; mutable sent : int }

let start ?(burst = 1024 * 1024) ~src ~dst () =
  let t = { running = true; sent = 0 } in
  Sim.Engine.spawn ~name:"iperf" (fun () ->
      while t.running do
        Hw.Netlink.send ~src:src.Hw.Node.port ~dst:dst.Hw.Node.port burst;
        t.sent <- t.sent + burst
      done);
  t

let stop t = t.running <- false
let bytes_sent t = t.sent
