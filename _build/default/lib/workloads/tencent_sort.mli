(** Tencent Sort (§5.4): parallel external sort used to evaluate
    data-path compression.

    Phase 1 (range partitioning): worker processes scan their share of
    the input records and append each record to the temporary file of
    its key range, then fsync.  Phase 2 (merge-sort): sort workers read
    the temporary files of their range, sort the records (a real
    quicksort on real bytes), and write the final output files.

    Input compressibility is controlled by the fraction of zero bytes
    in record payloads, like the modified gensort tool in the paper. *)

open Sim

type result = {
  elapsed : Time.t;
  partition_time : Time.t;
  sort_time : Time.t;
  records : int;
  output_bytes : int;
}

val run :
  ops:Linefs.Dfs_intf.ops ->
  node:Hw.Node.t ->
  records:int ->
  ?record_bytes:int ->
  ?partitions:int ->
  ?sorters:int ->
  zero_ratio:float ->
  seed:int ->
  unit ->
  result
(** Defaults: 100-byte records (10-byte key + 90-byte payload), 4
    partition and 4 sort workers as in §5.4.  Sorting CPU is charged on
    [node]'s host cores; file IO goes through [ops].  The output is
    verified to be sorted and complete. *)
