open Sim
open Storage
open Linefs
module Smap = Map.Make (String)

type sstable = {
  file : string;
  index : (string * int * int) array; (* key, offset, value length *)
  mutable handle : Dfs_intf.fd option; (* cached open fd, like LevelDB's
                                          table cache *)
}

type t = {
  ops : Dfs_intf.ops;
  dir : string;
  memtable_cap : int;
  mutable memtable : Data.t Smap.t;
  mutable mem_bytes : int;
  mutable wal_fd : Dfs_intf.fd;
  mutable wal_path : string;
  mutable wal_gen : int;
  mutable sstables : sstable list; (* newest first *)
}

let record_overhead = 6 (* klen u16 + vlen u32 *)

let encode_record key value =
  let klen = String.length key and vlen = Data.length value in
  let header = Bytes.create (record_overhead + klen) in
  Bytes.set_uint16_le header 0 klen;
  Bytes.set_int32_le header 2 (Int32.of_int vlen);
  Bytes.blit_string key 0 header record_overhead klen;
  Data.concat [ Data.real header; value ]

let wal_name dir gen = Printf.sprintf "%s/wal-%06d.log" dir gen

let open_db ~ops ~dir ?(memtable_bytes = 4 * 1024 * 1024) () =
  (match ops.Dfs_intf.file_size dir with
  | Some _ -> ()
  | None -> ops.Dfs_intf.mkdir dir);
  let wal_path = wal_name dir 0 in
  {
    ops;
    dir;
    memtable_cap = memtable_bytes;
    memtable = Smap.empty;
    mem_bytes = 0;
    wal_fd = ops.Dfs_intf.create wal_path;
    wal_path;
    wal_gen = 0;
    sstables = [];
  }

let sstable_count t = List.length t.sstables

let flush t =
  if not (Smap.is_empty t.memtable) then begin
    let gen = t.wal_gen in
    let file = Printf.sprintf "%s/sst-%06d.ldb" t.dir gen in
    let fd = t.ops.Dfs_intf.create file in
    (* Records are written in key order; the index is built as we go
       (models LevelDB's index block, kept in memory). *)
    let index = ref [] in
    let off = ref 0 in
    let chunks = ref [] in
    Smap.iter
      (fun key value ->
        let rec_data = encode_record key value in
        index :=
          (key, !off + record_overhead + String.length key, Data.length value)
          :: !index;
        off := !off + Data.length rec_data;
        chunks := rec_data :: !chunks)
      t.memtable;
    t.ops.Dfs_intf.append fd (Data.concat (List.rev !chunks));
    t.ops.Dfs_intf.fsync fd;
    t.ops.Dfs_intf.close fd;
    t.sstables <-
      { file; index = Array.of_list (List.rev !index); handle = None }
      :: t.sstables;
    (* Rotate the WAL: its contents are now durable in the SSTable. *)
    t.ops.Dfs_intf.close t.wal_fd;
    t.ops.Dfs_intf.unlink t.wal_path;
    t.wal_gen <- gen + 1;
    t.wal_path <- wal_name t.dir t.wal_gen;
    t.wal_fd <- t.ops.Dfs_intf.create t.wal_path;
    t.memtable <- Smap.empty;
    t.mem_bytes <- 0
  end

let put t ?(sync = false) ~key ~value () =
  let rec_data = encode_record key value in
  t.ops.Dfs_intf.append t.wal_fd rec_data;
  if sync then t.ops.Dfs_intf.fsync t.wal_fd;
  t.memtable <- Smap.add key value t.memtable;
  t.mem_bytes <- t.mem_bytes + Data.length rec_data;
  if t.mem_bytes >= t.memtable_cap then flush t

(* Binary search for an exact key in an SSTable index. *)
let sst_find sst key =
  let lo = ref 0 and hi = ref (Array.length sst.index - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k, off, vlen = sst.index.(mid) in
    let c = String.compare key k in
    if c = 0 then found := Some (off, vlen)
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let get t ~key =
  match Smap.find_opt key t.memtable with
  | Some v -> Some v
  | None ->
      let rec search = function
        | [] -> None
        | sst :: rest -> (
            match sst_find sst key with
            | Some (off, vlen) ->
                let fd =
                  match sst.handle with
                  | Some fd -> fd
                  | None ->
                      let fd = t.ops.Dfs_intf.open_file sst.file in
                      sst.handle <- Some fd;
                      fd
                in
                Some (t.ops.Dfs_intf.read fd ~pos:off ~len:vlen)
            | None -> search rest)
      in
      search t.sstables

let close t =
  t.ops.Dfs_intf.fsync t.wal_fd;
  t.ops.Dfs_intf.close t.wal_fd;
  List.iter
    (fun sst ->
      match sst.handle with
      | Some fd ->
          t.ops.Dfs_intf.close fd;
          sst.handle <- None
      | None -> ())
    t.sstables

(* ------------------------------------------------------------------ *)
(* db_bench                                                            *)
(* ------------------------------------------------------------------ *)

type workload =
  | Fillseq
  | Fillrandom
  | Fillsync
  | Readseq
  | Readrandom
  | Readhot

let workload_name = function
  | Fillseq -> "fillseq"
  | Fillrandom -> "fillrandom"
  | Fillsync -> "fillsync"
  | Readseq -> "readseq"
  | Readrandom -> "readrandom"
  | Readhot -> "readhot"

let key_of i = Printf.sprintf "%016d" i

let db_bench ~ops ~dir ~workload ~n ?(value_bytes = 1024) ?(seed = 7) () =
  let rng = Rng.create seed in
  let db = open_db ~ops ~dir () in
  let series = Stats.Series.create () in
  let value i = Data.synthetic ~seed:(seed + i) ~len:value_bytes in
  let timed f =
    let t0 = Engine.now () in
    f ();
    Stats.Series.add series (Time.to_us_f (Engine.now () - t0))
  in
  let prefill () =
    for i = 0 to n - 1 do
      put db ~key:(key_of i) ~value:(value i) ()
    done;
    flush db
  in
  (match workload with
  | Fillseq ->
      for i = 0 to n - 1 do
        timed (fun () -> put db ~key:(key_of i) ~value:(value i) ())
      done
  | Fillrandom ->
      let order = Array.init n (fun i -> i) in
      Rng.shuffle rng order;
      Array.iter
        (fun i -> timed (fun () -> put db ~key:(key_of i) ~value:(value i) ()))
        order
  | Fillsync ->
      for i = 0 to n - 1 do
        timed (fun () -> put db ~sync:true ~key:(key_of i) ~value:(value i) ())
      done
  | Readseq ->
      prefill ();
      for i = 0 to n - 1 do
        timed (fun () ->
            match get db ~key:(key_of i) with
            | Some v -> assert (Data.length v = value_bytes)
            | None -> failwith "db_bench: missing key")
      done
  | Readrandom ->
      prefill ();
      for _ = 0 to n - 1 do
        let i = Rng.int rng n in
        timed (fun () -> ignore (get db ~key:(key_of i) : Data.t option))
      done
  | Readhot ->
      prefill ();
      (* 1% of keys take all the traffic. *)
      let hot = max 1 (n / 100) in
      for _ = 0 to n - 1 do
        let i = Rng.int rng hot in
        timed (fun () -> ignore (get db ~key:(key_of i) : Data.t option))
      done);
  close db;
  series
