open Sim

let barrier_round ~threads ~work ~prio node =
  let remaining = ref threads in
  let done_ = Ivar.create () in
  for _ = 1 to threads do
    Engine.spawn ~name:"streamcluster.thread" (fun () ->
        Hw.Cpu.run ~prio node.Hw.Node.host work;
        decr remaining;
        if !remaining = 0 then Ivar.fill done_ ())
  done;
  Ivar.read done_

let run ?threads ?(iterations = 30) ?(work_per_iter = Time.ms 100)
    ?(prio = Hw.Cpu.prio_normal) ~node () =
  let threads =
    match threads with Some n -> n | None -> Hw.Cpu.cores node.Hw.Node.host
  in
  let t0 = Engine.now () in
  for _ = 1 to iterations do
    barrier_round ~threads ~work:work_per_iter ~prio node
  done;
  Engine.now () - t0

let solo_estimate ?threads ?(iterations = 30) ?(work_per_iter = Time.ms 100)
    ~node () =
  let cores = Hw.Cpu.cores node.Hw.Node.host in
  let threads = match threads with Some n -> n | None -> cores in
  let waves = (threads + cores - 1) / cores in
  iterations * waves * work_per_iter

type background = {
  mutable running : bool;
  mutable rounds : int;
  stopped : unit Ivar.t;
}

let start_background ?threads ?(work_per_iter = Time.ms 100)
    ?(prio = Hw.Cpu.prio_normal) ~node () =
  let threads =
    match threads with Some n -> n | None -> Hw.Cpu.cores node.Hw.Node.host
  in
  let bg = { running = true; rounds = 0; stopped = Ivar.create () } in
  Engine.spawn ~name:"streamcluster.bg" (fun () ->
      while bg.running do
        barrier_round ~threads ~work:work_per_iter ~prio node;
        bg.rounds <- bg.rounds + 1
      done;
      Ivar.fill bg.stopped ());
  bg

let stop bg = bg.running <- false
let iterations_done bg = bg.rounds
