open Sim

type member_state = Alive | Dead

type member = {
  id : int;
  ping : unit -> bool;
  on_epoch : int -> unit;
  mutable state : member_state;
}

type t = {
  interval : Time.t;
  members : (int, member) Hashtbl.t;
  mutable epoch : int;
  mutable running : bool;
  lease_roots : (int, int) Hashtbl.t; (* subtree root inum -> node id *)
}

let create ?(heartbeat_interval = Time.sec 1) () =
  {
    interval = heartbeat_interval;
    members = Hashtbl.create 8;
    epoch = 1;
    running = false;
    lease_roots = Hashtbl.create 8;
  }

let register t ~id ~ping ~on_epoch =
  Hashtbl.replace t.members id { id; ping; on_epoch; state = Alive }

let epoch t = t.epoch

let broadcast_epoch t =
  Hashtbl.iter
    (fun _ m -> if m.state = Alive then m.on_epoch t.epoch)
    t.members

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  broadcast_epoch t;
  t.epoch

let heartbeat_round t =
  Hashtbl.iter
    (fun _ m ->
      if m.state = Alive then begin
        let ok = try m.ping () with _ -> false in
        if not ok then begin
          m.state <- Dead;
          (* Expire the failed node's lease delegations so a live NICFS
             can take them over. *)
          Hashtbl.iter
            (fun root holder ->
              if holder = m.id then Hashtbl.remove t.lease_roots root)
            (Hashtbl.copy t.lease_roots);
          ignore (bump_epoch t : int)
        end
      end)
    t.members

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.spawn ~name:"cluster-manager" (fun () ->
        while t.running do
          Engine.sleep t.interval;
          if t.running then heartbeat_round t
        done)
  end

let stop t = t.running <- false

let member_state t id =
  match Hashtbl.find_opt t.members id with
  | Some m -> m.state
  | None -> Dead

let alive_members t =
  Hashtbl.fold
    (fun id m acc -> if m.state = Alive then id :: acc else acc)
    t.members []
  |> List.sort compare

let mark_recovered t ~id =
  (match Hashtbl.find_opt t.members id with
  | Some m -> m.state <- Alive
  | None -> ());
  ignore (bump_epoch t : int)

let delegate_lease_root t ~inum ~node =
  match Hashtbl.find_opt t.lease_roots inum with
  | Some holder when holder <> node && member_state t holder = Alive -> false
  | _ ->
      Hashtbl.replace t.lease_roots inum node;
      true

let lease_root_holder t ~inum = Hashtbl.find_opt t.lease_roots inum
let revoke_lease_root t ~inum = Hashtbl.remove t.lease_roots inum
