lib/cluster/manager.ml: Engine Hashtbl List Sim Time
