lib/cluster/history.mli:
