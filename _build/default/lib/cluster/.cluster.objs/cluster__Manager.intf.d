lib/cluster/manager.mli: Sim Time
