lib/cluster/history.ml: Int List Map Set
