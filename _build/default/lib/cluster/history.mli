(** Replicated history bitmap (§3.6 "Recovery").

    Records which inodes were updated during each epoch so a recovering
    NICFS can fetch exactly the inodes touched between its persisted
    epoch and the current one. *)

type t

val create : unit -> t

val record : t -> epoch:int -> inum:int -> unit
(** Mark [inum] as updated during [epoch]. Idempotent. *)

val inodes_since : t -> epoch:int -> int list
(** All inodes recorded in epochs strictly greater than [epoch],
    deduplicated, ascending. *)

val epochs : t -> int list
(** Epochs with at least one recorded update, ascending. *)

val copy : t -> t
(** Deep copy: what a replica hands to a recovering peer. *)
