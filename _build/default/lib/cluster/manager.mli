(** Cluster manager (the ZooKeeper role, §3 / §3.6).

    Tracks DFS node membership, sends heartbeats to each registered
    NICFS every second, detects NICFS failures, maintains the cluster
    epoch (incremented on node failure and recovery, pushed to every
    alive member), and arbitrates root-lease delegation. *)

open Sim

type t

type member_state = Alive | Dead

val create : ?heartbeat_interval:Time.t -> unit -> t
(** Default heartbeat interval: 1 s. *)

val register :
  t ->
  id:int ->
  ping:(unit -> bool) ->
  on_epoch:(int -> unit) ->
  unit
(** Add a NICFS member. [ping] is the heartbeat probe ([false] or an
    exception means no response); [on_epoch] is invoked (for alive
    members) whenever the epoch changes, so each NICFS can persist it. *)

val start : t -> unit
(** Spawn the heartbeat loop (must run inside a simulation process). *)

val stop : t -> unit
(** Stop heartbeating (lets simulations quiesce). *)

val epoch : t -> int
(** Current epoch; starts at 1. *)

val bump_epoch : t -> int
(** Increment and broadcast the epoch (called on failure/recovery
    events); returns the new value. *)

val member_state : t -> int -> member_state
(** [Dead] for unknown ids. *)

val alive_members : t -> int list

val mark_recovered : t -> id:int -> unit
(** Re-admit a member after it restarts and re-registers; bumps the
    epoch per the recovery protocol. *)

(** {1 Root lease arbitration} *)

val delegate_lease_root : t -> inum:int -> node:int -> bool
(** Delegate lease management of a subtree root to a node's NICFS.
    Returns [false] if currently delegated to a different alive node. *)

val lease_root_holder : t -> inum:int -> int option
val revoke_lease_root : t -> inum:int -> unit
