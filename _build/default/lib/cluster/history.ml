module Iset = Set.Make (Int)

type t = { mutable per_epoch : Iset.t Map.Make(Int).t }

module Emap = Map.Make (Int)

let create () = { per_epoch = Emap.empty }

let record t ~epoch ~inum =
  let cur =
    match Emap.find_opt epoch t.per_epoch with
    | Some s -> s
    | None -> Iset.empty
  in
  t.per_epoch <- Emap.add epoch (Iset.add inum cur) t.per_epoch

let inodes_since t ~epoch =
  Emap.fold
    (fun e inums acc -> if e > epoch then Iset.union inums acc else acc)
    t.per_epoch Iset.empty
  |> Iset.elements

let epochs t = Emap.fold (fun e _ acc -> e :: acc) t.per_epoch [] |> List.rev

let copy t = { per_epoch = t.per_epoch }
