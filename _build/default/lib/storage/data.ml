type t =
  | Real of { buf : bytes; pos : int; len : int }
  | Synth of { seed : int; off : int; len : int }
  | Zero of { len : int }

let real buf = Real { buf; pos = 0; len = Bytes.length buf }
let of_string s = real (Bytes.of_string s)
let synthetic ~seed ~len = Synth { seed; off = 0; len }
let zero ~len = Zero { len }
let empty = Real { buf = Bytes.empty; pos = 0; len = 0 }
let length = function Real r -> r.len | Synth s -> s.len | Zero z -> z.len

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Data.sub: out of bounds";
  match t with
  | Real r -> Real { buf = r.buf; pos = r.pos + pos; len }
  | Synth s -> Synth { seed = s.seed; off = s.off + pos; len }
  | Zero _ -> Zero { len }

(* Deterministic synthetic content: 8-byte words derived from the seed
   and the absolute word index, so slices agree with their parent. *)
let synth_word seed widx =
  let mix z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
    in
    Int64.(logxor z (shift_right_logical z 31))
  in
  mix (Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int widx))

let synth_byte seed p =
  let word = synth_word seed (p / 8) in
  Char.chr (Int64.to_int (Int64.shift_right_logical word (8 * (p mod 8))) land 0xFF)

let get t i =
  if i < 0 || i >= length t then invalid_arg "Data.get: out of bounds";
  match t with
  | Real r -> Bytes.get r.buf (r.pos + i)
  | Synth s -> synth_byte s.seed (s.off + i)
  | Zero _ -> '\000'

let to_bytes = function
  | Real r -> Bytes.sub r.buf r.pos r.len
  | Synth s ->
      let out = Bytes.create s.len in
      for i = 0 to s.len - 1 do
        Bytes.unsafe_set out i (synth_byte s.seed (s.off + i))
      done;
      out
  | Zero z -> Bytes.make z.len '\000'

let concat parts =
  let parts = List.filter (fun p -> length p > 0) parts in
  match parts with
  | [] -> empty
  | [ p ] -> p
  | first :: rest ->
      (* Re-join adjacent synthetic slices of the same stream. *)
      let rejoined =
        List.fold_left
          (fun acc p ->
            match (acc, p) with
            | Some (Synth a), Synth b
              when a.seed = b.seed && a.off + a.len = b.off ->
                Some (Synth { a with len = a.len + b.len })
            | Some (Zero a), Zero b -> Some (Zero { len = a.len + b.len })
            | _ -> None)
          (Some first) rest
      in
      (match rejoined with
      | Some d -> d
      | None ->
          let total = List.fold_left (fun n p -> n + length p) 0 parts in
          let out = Bytes.create total in
          let off = ref 0 in
          List.iter
            (fun p ->
              Bytes.blit (to_bytes p) 0 out !off (length p);
              off := !off + length p)
            parts;
          real out)

let equal a b =
  length a = length b
  &&
  let n = length a in
  let chunk = 4096 in
  let rec check pos =
    if pos >= n then true
    else begin
      let len = min chunk (n - pos) in
      let ba = to_bytes (sub a ~pos ~len) in
      let bb = to_bytes (sub b ~pos ~len) in
      Bytes.equal ba bb && check (pos + len)
    end
  in
  check 0

let is_real = function Real _ -> true | Synth _ | Zero _ -> false

let fill_ratio t ~zeros ~rng =
  let n = length t in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    if Sim.Rng.float rng 1.0 < zeros then Bytes.unsafe_set out i '\000'
    else Bytes.unsafe_set out i (Sim.Rng.byte rng)
  done;
  real out

let pp fmt t =
  match t with
  | Real r -> Format.fprintf fmt "real[%d]" r.len
  | Synth s ->
      Format.fprintf fmt "synth[seed=%d,off=%d,len=%d]" s.seed s.off s.len
  | Zero z -> Format.fprintf fmt "zero[%d]" z.len
