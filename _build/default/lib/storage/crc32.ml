let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc buf ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get buf i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let bytes buf = update 0l buf ~pos:0 ~len:(Bytes.length buf)
let string s = bytes (Bytes.unsafe_of_string s)

let data d =
  let n = Data.length d in
  let chunk = 8192 in
  let rec go crc pos =
    if pos >= n then crc
    else begin
      let len = min chunk (n - pos) in
      let b = Data.to_bytes (Data.sub d ~pos ~len) in
      go (update crc b ~pos:0 ~len) (pos + len)
    end
  in
  go 0l 0
