module Imap = Map.Make (Int)

type 'a segment = { start : int; data : Data.t; tag : 'a }
type 'a t = { mutable segs : 'a segment Imap.t; mutable bytes : int }

let create () = { segs = Imap.empty; bytes = 0 }
let is_empty t = Imap.is_empty t.segs
let cardinal t = Imap.cardinal t.segs

let depth t =
  let n = cardinal t in
  let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n / 2) in
  log2 0 n

let seg_end s = s.start + Data.length s.data

let add_seg t s =
  if Data.length s.data > 0 then begin
    t.segs <- Imap.add s.start s t.segs;
    t.bytes <- t.bytes + Data.length s.data
  end

let del_seg t s =
  t.segs <- Imap.remove s.start t.segs;
  t.bytes <- t.bytes - Data.length s.data

(* All segments intersecting [pos, pos+len). *)
let overlapping t ~pos ~len =
  if len <= 0 then []
  else begin
    let hi = pos + len in
    (* Start from the segment at or before [pos] (it may straddle), then
       walk forward while starts are below [hi]. *)
    let first =
      match Imap.find_last_opt (fun k -> k <= pos) t.segs with
      | Some (_, s) when seg_end s > pos -> Some s.start
      | _ -> (
          match Imap.find_first_opt (fun k -> k > pos) t.segs with
          | Some (k, _) when k < hi -> Some k
          | _ -> None)
    in
    let rec walk acc key =
      match Imap.find_first_opt (fun k -> k >= key) t.segs with
      | Some (k, s) when k < hi -> walk (s :: acc) (k + 1)
      | _ -> List.rev acc
    in
    match first with None -> [] | Some k -> walk [] k
  end

(* Remove [pos, pos+len) from the map, trimming straddling segments. *)
let carve t ~pos ~len =
  let hi = pos + len in
  List.iter
    (fun s ->
      del_seg t s;
      (* Keep the non-overlapped left part. *)
      if s.start < pos then
        add_seg t
          {
            s with
            data = Data.sub s.data ~pos:0 ~len:(pos - s.start);
          };
      (* Keep the non-overlapped right part. *)
      if seg_end s > hi then
        add_seg t
          {
            start = hi;
            data = Data.sub s.data ~pos:(hi - s.start) ~len:(seg_end s - hi);
            tag = s.tag;
          })
    (overlapping t ~pos ~len)

let insert t ~at data tag =
  let len = Data.length data in
  if len > 0 then begin
    carve t ~pos:at ~len;
    add_seg t { start = at; data; tag }
  end

let find t off =
  match Imap.find_last_opt (fun k -> k <= off) t.segs with
  | Some (_, s) when seg_end s > off -> Some s
  | _ -> None

let read_range t ~pos ~len =
  if len <= 0 then []
  else begin
    let hi = pos + len in
    let pieces = ref [] in
    let cursor = ref pos in
    List.iter
      (fun s ->
        if s.start > !cursor then
          pieces := `Hole (s.start - !cursor) :: !pieces;
        let from = max s.start !cursor in
        let upto = min (seg_end s) hi in
        pieces :=
          `Data (Data.sub s.data ~pos:(from - s.start) ~len:(upto - from))
          :: !pieces;
        cursor := upto)
      (overlapping t ~pos ~len);
    if !cursor < hi then pieces := `Hole (hi - !cursor) :: !pieces;
    List.rev !pieces
  end

let remove_range t ~pos ~len = carve t ~pos ~len

let remove_if t pred =
  Imap.iter (fun _ s -> if pred s.tag then del_seg t s) t.segs

let iter t f = Imap.iter (fun _ s -> f s) t.segs
let fold t ~init ~f = Imap.fold (fun _ s acc -> f acc s) t.segs init

let end_offset t =
  match Imap.max_binding_opt t.segs with
  | None -> 0
  | Some (_, s) -> seg_end s

let mapped_bytes t = t.bytes

let clear t =
  t.segs <- Imap.empty;
  t.bytes <- 0
