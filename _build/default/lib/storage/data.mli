(** File payload representation.

    Payloads flow through logs, pipelines, replication and compression.
    Two forms exist:
    - [Real]: actual bytes (used wherever content matters: metadata,
      key-value records, sort inputs for the compression experiments);
    - [Synthetic]: a deterministic pseudo-random block described by
      [(seed, offset, len)].  Synthetic data has stable content — the
      byte at logical position [i] depends only on [seed] and
      [offset + i] — but occupies O(1) memory, letting benchmarks move
      gigabytes through the system without allocating them.

    All operations treat payloads as immutable. *)

type t

val real : bytes -> t
(** Wrap actual bytes. The buffer must not be mutated afterwards. *)

val of_string : string -> t

val synthetic : seed:int -> len:int -> t
(** A synthetic block starting at logical offset 0. *)

val zero : len:int -> t
(** An all-zero block in O(1) memory (file holes read as zeros). *)

val empty : t
val length : t -> int

val sub : t -> pos:int -> len:int -> t
(** Slice; content-stable for both forms. Raises [Invalid_argument] on
    out-of-bounds. *)

val concat : t list -> t
(** Concatenation. Adjacent synthetic slices of the same stream are
    rejoined without materialization; mixed forms materialize. *)

val to_bytes : t -> bytes
(** Materialize the content (synthetic data is generated). *)

val get : t -> int -> char
(** Byte at position [i]. *)

val equal : t -> t -> bool
(** Content equality (materializes synthetic data lazily per chunk). *)

val is_real : t -> bool

val fill_ratio : t -> zeros:float -> rng:Sim.Rng.t -> t
(** [fill_ratio t ~zeros ~rng] is a {e real} payload of the same length
    where approximately [zeros] fraction of bytes are zero and the rest
    pseudo-random — the knob the Tencent Sort experiment uses to control
    compressibility. *)

val pp : Format.formatter -> t -> unit
