lib/storage/extent_map.ml: Data Int List Map
