lib/storage/data.ml: Bytes Char Format Int64 List Sim
