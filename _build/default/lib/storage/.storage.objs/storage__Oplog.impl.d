lib/storage/oplog.ml: Buffer Bytes Char Crc32 Data Format Int32 Int64 List Printf Queue String
