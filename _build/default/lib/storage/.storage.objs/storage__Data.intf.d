lib/storage/data.mli: Format Sim
