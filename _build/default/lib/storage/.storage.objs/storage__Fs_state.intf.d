lib/storage/fs_state.mli: Data Format Oplog
