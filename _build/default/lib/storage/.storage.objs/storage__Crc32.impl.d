lib/storage/crc32.ml: Array Bytes Char Data Int32 Lazy
