lib/storage/fs_state.ml: Data Extent_map Format Hashtbl List Oplog String
