lib/storage/extent_map.mli: Data
