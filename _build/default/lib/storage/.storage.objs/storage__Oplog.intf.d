lib/storage/oplog.mli: Bytes Data Format
