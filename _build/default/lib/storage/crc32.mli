(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used to checksum log entries; the NICFS validation stage recomputes
    it over fetched chunks, which is part of the real computational load
    offloaded to the SmartNIC. *)

val bytes : Bytes.t -> int32
(** Checksum of a whole buffer. *)

val string : string -> int32

val update : int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Incremental: extend a running checksum. Start from [0l]. *)

val data : Data.t -> int32
(** Checksum of a payload (synthetic data is generated chunk-wise). *)
