(** Interval map from byte ranges to payloads: the building block for
    per-file extent trees (public PM) and the client-side update-log
    index (unpublished writes).

    Segments never overlap; inserting over existing segments splits or
    replaces them (last-writer-wins), slicing payloads as needed.  Each
    segment carries a caller tag (e.g. the log sequence number that
    produced it) so ranges can be selectively dropped on log reclaim. *)

type 'a t

type 'a segment = { start : int; data : Data.t; tag : 'a }
(** A mapped range [\[start, start + Data.length data)]. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of segments. *)

val depth : 'a t -> int
(** ~log2(cardinal): models index traversal cost. *)

val insert : 'a t -> at:int -> Data.t -> 'a -> unit
(** Map [\[at, at + len)] to the payload, overwriting any overlap. *)

val find : 'a t -> int -> 'a segment option
(** The segment containing the given offset, if mapped. *)

val read_range :
  'a t -> pos:int -> len:int -> [ `Data of Data.t | `Hole of int ] list
(** The range's contents in order: payload slices where mapped,
    [`Hole n] for unmapped gaps of [n] bytes. *)

val remove_range : 'a t -> pos:int -> len:int -> unit
(** Unmap a range (segments straddling the boundary are trimmed). *)

val remove_if : 'a t -> ('a -> bool) -> unit
(** Drop all segments whose tag satisfies the predicate. *)

val iter : 'a t -> ('a segment -> unit) -> unit
(** In offset order. *)

val fold : 'a t -> init:'b -> f:('b -> 'a segment -> 'b) -> 'b

val end_offset : 'a t -> int
(** One past the last mapped byte; 0 when empty. *)

val mapped_bytes : 'a t -> int
(** Total bytes covered by segments. *)

val clear : 'a t -> unit
