(** Deterministic pseudo-random number generator (splitmix64).

    Every simulation component draws from its own seeded stream so that
    experiments are reproducible bit-for-bit across runs. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. The same seed always yields the
    same stream. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream, for
    handing to a sub-component. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val byte : t -> char
(** Uniform byte. *)

val fill_bytes : t -> Bytes.t -> unit
(** Fill a buffer with pseudo-random bytes. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
