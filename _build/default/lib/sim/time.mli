(** Simulated time.

    All simulation timestamps and durations are expressed in integer
    nanoseconds.  A 63-bit [int] covers ~292 years of simulated time, far
    beyond any experiment in this repository. *)

type t = int
(** A point in time or a duration, in nanoseconds. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] converts fractional seconds to nanoseconds (rounded). *)

val of_us_f : float -> t
(** [of_us_f u] converts fractional microseconds to nanoseconds (rounded). *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print a duration with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
