lib/sim/semaphore.ml: Engine Queue
