lib/sim/cond.ml: Engine Queue
