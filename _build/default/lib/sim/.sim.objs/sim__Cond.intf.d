lib/sim/cond.mli: Time
