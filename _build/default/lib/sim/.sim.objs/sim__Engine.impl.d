lib/sim/engine.ml: Effect Heap Printexc Printf Rng Time
