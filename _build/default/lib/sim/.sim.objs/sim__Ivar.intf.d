lib/sim/ivar.mli: Time
