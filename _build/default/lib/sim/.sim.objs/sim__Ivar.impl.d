lib/sim/ivar.ml: Cond Engine Option
