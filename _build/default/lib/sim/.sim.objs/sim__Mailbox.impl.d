lib/sim/mailbox.ml: Cond Engine Queue
