lib/sim/semaphore.mli:
