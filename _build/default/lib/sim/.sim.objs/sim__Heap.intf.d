lib/sim/heap.mli:
