lib/sim/stats.mli: Time
