lib/sim/stats.ml: Array Float Hashtbl List Stdlib Time
