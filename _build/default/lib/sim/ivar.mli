(** Write-once synchronization cell ("future").

    The canonical reply slot for RPCs: the requester [read]s, the
    responder [fill]s exactly once. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers. Raises [Invalid_argument] if
    already filled. *)

val read : 'a t -> 'a
(** Return the value, blocking until {!fill}. *)

val read_timeout : 'a t -> Time.t -> 'a option
(** Like {!read} but gives up after the timeout. *)

val peek : 'a t -> 'a option
(** Non-blocking read. *)

val is_filled : 'a t -> bool
