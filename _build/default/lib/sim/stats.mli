(** Measurement recorders used by the benchmark harness and tests. *)

(** Growable sample series with summary statistics. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** 0.0 when empty. *)

  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]], nearest-rank on the
      sorted samples. 0.0 when empty. *)
end

(** Time-bucketed accumulator, e.g. bytes-per-second over a run. *)
module Timeseries : sig
  type t

  val create : bucket:Time.t -> t
  (** [bucket] is the width of each accumulation window. *)

  val add : t -> at:Time.t -> float -> unit
  (** Accumulate [v] into the bucket containing time [at]. *)

  val buckets : t -> (Time.t * float) list
  (** [(bucket_start, sum)] pairs in time order, including empty
      buckets between the first and last non-empty ones. *)

  val rate_per_sec : t -> (float * float) list
  (** [(bucket_start_seconds, sum_per_second)] pairs: each bucket's sum
      divided by the bucket width in seconds. *)
end

(** Monotonic counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** Busy-time tracker: integrates the time a resource spends occupied,
    for utilization reports (e.g. CPU cores used on average). *)
module Busy : sig
  type t

  val create : unit -> t

  val record : t -> start:Time.t -> stop:Time.t -> unit
  (** Account an occupied interval (intervals may overlap: utilization
      above 1.0 then means multiple units busy in parallel). *)

  val busy_time : t -> Time.t

  val utilization : t -> over:Time.t -> float
  (** [busy_time / over]; e.g. 2.24 means 2.24 cores busy on average. *)
end
