type t = { mutable permits : int; waiting : (unit -> unit) Queue.t }

let create n =
  assert (n >= 0);
  { permits = n; waiting = Queue.create () }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else
    (* The permit is handed over directly by [release], so a process that
       was already waiting cannot be overtaken by a newcomer. *)
    Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) t.waiting)

let release t =
  match Queue.take_opt t.waiting with
  | Some wake -> wake ()
  | None -> t.permits <- t.permits + 1

let with_permit t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let available t = t.permits
let waiters t = Queue.length t.waiting
