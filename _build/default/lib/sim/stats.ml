module Series = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : float array option;
  }

  let create () = { data = [||]; len = 0; sorted = None }

  let add t v =
    let cap = Array.length t.data in
    if t.len = cap then begin
      let ncap = if cap = 0 then 256 else cap * 2 in
      let narr = Array.make ncap 0.0 in
      Array.blit t.data 0 narr 0 t.len;
      t.data <- narr
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted <- None

  let count t = t.len

  let total t =
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      s := !s +. t.data.(i)
    done;
    !s

  let mean t = if t.len = 0 then 0.0 else total t /. float_of_int t.len

  let fold f init t =
    let acc = ref init in
    for i = 0 to t.len - 1 do
      acc := f !acc t.data.(i)
    done;
    !acc

  let min t = if t.len = 0 then 0.0 else fold Float.min Float.infinity t
  let max t = if t.len = 0 then 0.0 else fold Float.max Float.neg_infinity t

  let stddev t =
    if t.len < 2 then 0.0
    else begin
      let m = mean t in
      let ss = fold (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 t in
      sqrt (ss /. float_of_int (t.len - 1))
    end

  let sorted t =
    match t.sorted with
    | Some s -> s
    | None ->
        let s = Array.sub t.data 0 t.len in
        Array.sort Float.compare s;
        t.sorted <- Some s;
        s

  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      let s = sorted t in
      let rank =
        int_of_float (Float.round (p /. 100.0 *. float_of_int (t.len - 1)))
      in
      let rank = Stdlib.max 0 (Stdlib.min (t.len - 1) rank) in
      s.(rank)
    end
end

module Timeseries = struct
  type t = { bucket : Time.t; table : (int, float ref) Hashtbl.t }

  let create ~bucket =
    assert (bucket > 0);
    { bucket; table = Hashtbl.create 64 }

  let add t ~at v =
    let idx = at / t.bucket in
    match Hashtbl.find_opt t.table idx with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add t.table idx (ref v)

  let buckets t =
    if Hashtbl.length t.table = 0 then []
    else begin
      let indices = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
      let lo = List.fold_left Stdlib.min (List.hd indices) indices in
      let hi = List.fold_left Stdlib.max (List.hd indices) indices in
      List.init
        (hi - lo + 1)
        (fun i ->
          let idx = lo + i in
          let v =
            match Hashtbl.find_opt t.table idx with
            | Some r -> !r
            | None -> 0.0
          in
          (idx * t.bucket, v))
    end

  let rate_per_sec t =
    let width = Time.to_sec_f t.bucket in
    List.map
      (fun (start, sum) -> (Time.to_sec_f start, sum /. width))
      (buckets t)
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
end

module Busy = struct
  type t = { mutable busy : Time.t }

  let create () = { busy = 0 }

  let record t ~start ~stop =
    if stop > start then t.busy <- t.busy + (stop - start)

  let busy_time t = t.busy

  let utilization t ~over =
    if over <= 0 then 0.0 else float_of_int t.busy /. float_of_int over
end
