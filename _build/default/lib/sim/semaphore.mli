(** Counting semaphore with FIFO waiters.

    Used to model exclusive or limited-capacity resources (mutexes are
    semaphores of capacity 1). *)

type t

val create : int -> t
(** [create n] is a semaphore with [n] initial permits. [n >= 0]. *)

val acquire : t -> unit
(** Take one permit, blocking while none are available. Waiters are
    served in FIFO order. *)

val release : t -> unit
(** Return one permit, waking the oldest waiter if any. *)

val with_permit : t -> (unit -> 'a) -> 'a
(** [with_permit t f] brackets [f] with acquire/release, releasing on
    exceptions too. *)

val available : t -> int
(** Current number of free permits. *)

val waiters : t -> int
(** Number of blocked acquirers. *)
