type 'a t = { mutable value : 'a option; filled : Cond.t }

let create () = { value = None; filled = Cond.create () }

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      Cond.broadcast t.filled

let rec read t =
  match t.value with
  | Some v -> v
  | None ->
      Cond.await t.filled;
      read t

let read_timeout t d =
  let deadline = Engine.now () + d in
  let rec loop () =
    match t.value with
    | Some v -> Some v
    | None ->
        let remaining = deadline - Engine.now () in
        if remaining <= 0 then None
        else begin
          ignore (Cond.await_timeout t.filled remaining : bool);
          loop ()
        end
  in
  loop ()

let peek t = t.value
let is_filled t = Option.is_some t.value
