(** Condition variables for simulation processes.

    Unlike POSIX condition variables there is no associated mutex:
    processes are cooperative, so the check-then-wait sequence is atomic
    as long as it performs no blocking operation in between. *)

type t

val create : unit -> t

val await : t -> unit
(** Park the calling process until {!signal} or {!broadcast}. *)

val await_timeout : t -> Time.t -> bool
(** [await_timeout c d] waits for at most [d]; returns [true] if woken
    by a signal, [false] on timeout. *)

val signal : t -> unit
(** Wake one waiter (FIFO order); no-op if none are waiting. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val waiters : t -> int
(** Number of processes currently parked. *)
