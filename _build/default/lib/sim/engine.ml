open Effect
open Effect.Deep

type event = { name : string; fn : unit -> unit }

type t = {
  mutable now : Time.t;
  mutable seq : int;
  mutable events : event Heap.t;
  mutable stopped : bool;
  mutable current_name : string;
  mutable live : int;
  rng : Rng.t;
}

exception Process_failure of string * exn
exception Not_in_process

let () =
  Printexc.register_printer (function
    | Process_failure (name, e) ->
        Some
          (Printf.sprintf "Process_failure(%S, %s)" name (Printexc.to_string e))
    | _ -> None)

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    stopped = false;
    current_name = "<none>";
    live = 0;
    rng = Rng.create seed;
  }

let rng t = t.rng
let current_time t = t.now

let schedule t ~at ~name fn =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.events ~key:at ~seq:t.seq { name; fn }

(* Effects performed by processes; each engine installs a deep handler
   around every process it runs, so the handler below closes over [t]. *)
type _ Effect.t +=
  | Now : Time.t Effect.t
  | Sleep : Time.t -> unit Effect.t
  | Yield : unit Effect.t
  | Spawn : string * (unit -> unit) -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Suspend_timeout :
      (('a -> unit) -> unit) * Time.t
      -> 'a option Effect.t
  | Name : string Effect.t

let rec run_process t name f =
  t.live <- t.live + 1;
  match_with f ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Process_failure _ -> raise e
          | e -> raise (Process_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | Name -> Some (fun k -> continue k name)
          | Sleep d ->
              Some
                (fun k ->
                  schedule t ~at:(t.now + d) ~name (fun () -> continue k ()))
          | Yield ->
              Some
                (fun k -> schedule t ~at:t.now ~name (fun () -> continue k ()))
          | Spawn (child_name, g) ->
              Some
                (fun k ->
                  schedule t ~at:t.now ~name:child_name (fun () ->
                      run_process t child_name g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule t ~at:t.now ~name (fun () -> continue k v)
                    end
                  in
                  register waker)
          | Suspend_timeout (register, timeout) ->
              Some
                (fun k ->
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule t ~at:t.now ~name (fun () ->
                          continue k (Some v))
                    end
                  in
                  register waker;
                  schedule t ~at:(t.now + timeout) ~name (fun () ->
                      if not !fired then begin
                        fired := true;
                        continue k None
                      end))
          | _ -> None);
    }

let spawn_root ?(name = "root") t f =
  schedule t ~at:t.now ~name (fun () -> run_process t name f)

let run ?deadline t =
  t.stopped <- false;
  let running = ref true in
  while !running && not t.stopped do
    match Heap.pop t.events with
    | None -> running := false
    | Some (time, _seq, ev) -> (
        match deadline with
        | Some d when time > d ->
            t.now <- d;
            t.events <- Heap.create ();
            running := false
        | _ ->
            if time > t.now then t.now <- time;
            t.current_name <- ev.name;
            ev.fn ())
  done

let stop t = t.stopped <- true

let wrap_unhandled f =
  try f () with Effect.Unhandled _ -> raise Not_in_process

let now () = wrap_unhandled (fun () -> perform Now)
let sleep d = wrap_unhandled (fun () -> perform (Sleep d))
let yield () = wrap_unhandled (fun () -> perform Yield)

let spawn ?(name = "proc") f =
  wrap_unhandled (fun () -> perform (Spawn (name, f)))

let suspend register = wrap_unhandled (fun () -> perform (Suspend register))

let suspend_cancellable register ~timeout =
  wrap_unhandled (fun () -> perform (Suspend_timeout (register, timeout)))

let process_name () = wrap_unhandled (fun () -> perform Name)
