type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t n =
  assert (n > 0);
  let v = Int64.to_int (int64 t) land max_int in
  v mod n

let float t x =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (int64 t) 1L = 1L
let byte t = Char.chr (Int64.to_int (Int64.logand (int64 t) 0xFFL))

let fill_bytes t buf =
  let n = Bytes.length buf in
  let i = ref 0 in
  while !i + 8 <= n do
    Bytes.set_int64_le buf !i (int64 t);
    i := !i + 8
  done;
  while !i < n do
    Bytes.set buf !i (byte t);
    incr i
  done

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
