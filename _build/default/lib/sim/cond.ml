type entry = { mutable cancelled : bool; wake : bool -> unit }
type t = { waiting : entry Queue.t }

let create () = { waiting = Queue.create () }

let await t =
  ignore
    (Engine.suspend (fun wake ->
         Queue.add { cancelled = false; wake } t.waiting)
      : bool)

let await_timeout t d =
  let entry = ref None in
  let register wake =
    let e = { cancelled = false; wake } in
    entry := Some e;
    Queue.add e t.waiting
  in
  match Engine.suspend_cancellable register ~timeout:d with
  | Some _ -> true
  | None ->
      (* Mark our queue entry dead so a later signal is not swallowed. *)
      (match !entry with Some e -> e.cancelled <- true | None -> ());
      false

let rec signal t =
  match Queue.take_opt t.waiting with
  | None -> ()
  | Some e -> if e.cancelled then signal t else e.wake true

let broadcast t =
  let all = Queue.copy t.waiting in
  Queue.clear t.waiting;
  Queue.iter (fun e -> if not e.cancelled then e.wake true) all

let waiters t =
  Queue.fold (fun n e -> if e.cancelled then n else n + 1) 0 t.waiting
