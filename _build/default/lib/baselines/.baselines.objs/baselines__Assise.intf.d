lib/baselines/assise.mli: Hw Linefs Sim Stats Storage Time
