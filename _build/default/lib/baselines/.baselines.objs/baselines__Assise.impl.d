lib/baselines/assise.ml: Array Cond Data Dfs_intf Engine Extent_map Format Fs_state Hashtbl Hw Ivar Linefs List Mailbox Net Oplog Params Printf Semaphore Sim Stats Storage Time
