lib/baselines/cephlike.mli: Hw Linefs Sim Stats
