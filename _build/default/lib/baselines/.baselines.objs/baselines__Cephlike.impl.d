lib/baselines/cephlike.ml: Cond Data Dfs_intf Engine Format Fs_state Hashtbl Hw Ivar Linefs List Net Oplog Printf Semaphore Sim Stats Storage Time
