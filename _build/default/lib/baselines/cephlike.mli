(** Client-server DFS in the style of Ceph (Table 1 comparator).

    Clients have no local storage management: every write crosses the
    kernel network stack to a storage daemon on a server node, which
    persists it and replicates to a secondary.  Client CPU goes to
    syscalls and TCP; server CPU to the daemon.  Per-client CPU is much
    flatter than Assise's as client count grows — the contrast Table 1
    shows — at the cost of higher latency and a server bottleneck. *)

open Sim

type t
type client

val create :
  ?cfg:Hw.Config.t -> ?dfs_prio:Hw.Cpu.prio -> nodes:int -> unit -> t
(** [nodes >= 2]: node 0 hosts clients, node 1 the primary daemon,
    node 2 (if present) the replica daemon. *)

val add_client : t -> id:int -> client
val ops : client -> Linefs.Dfs_intf.ops

val flush_all : t -> unit
(** Wait for all in-flight writes to be acknowledged. *)

val client_host_cpu : t -> Stats.Busy.t
(** DFS CPU burned on the client node (the number Table 1 reports). *)

val server_cpu : t -> Stats.Busy.t
