(** Lempel-Ziv-Welch compression (12-bit codes, packed).

    This is the algorithm NICFS runs in the optional compression stage
    of the replication pipeline (§5.4): real bytes in, real bytes out,
    so the Tencent Sort experiment measures genuine compressibility of
    its input records.

    The dictionary holds up to 4096 entries and is reset when full,
    which bounds memory and keeps the codec streaming-friendly. *)

val encode : Bytes.t -> Bytes.t
(** Compress. Output starts with an 8-byte little-endian original
    length. *)

val decode : Bytes.t -> Bytes.t
(** Decompress; inverse of {!encode}. Raises [Invalid_argument] on
    malformed input. *)

val encode_data : Storage.Data.t -> Storage.Data.t
(** Compress a payload (synthetic payloads are materialized first). *)

val decode_data : Storage.Data.t -> Storage.Data.t

val ratio : original:int -> compressed:int -> float
(** Space saved as a fraction: [1 - compressed/original]; 0 when the
    original is empty. *)
