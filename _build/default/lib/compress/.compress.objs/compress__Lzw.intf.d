lib/compress/lzw.mli: Bytes Storage
