lib/compress/lzw.ml: Array Buffer Bytes Char Hashtbl Int64 Storage
