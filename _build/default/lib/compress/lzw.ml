(* Classic LZW with 12-bit codes. The dictionary freezes when it
   reaches 4096 entries (no reset), which keeps encoder and decoder
   trivially in lock-step; chunk-sized inputs (<= 4 MB) rarely benefit
   from resets anyway. *)

let max_code = 4096
let first_free = 256

(* -------------------- bit packing -------------------- *)

module Bitwriter = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable bits : int }

  let create () = { buf = Buffer.create 1024; acc = 0; bits = 0 }

  let put t code =
    t.acc <- t.acc lor (code lsl t.bits);
    t.bits <- t.bits + 12;
    while t.bits >= 8 do
      Buffer.add_uint8 t.buf (t.acc land 0xFF);
      t.acc <- t.acc lsr 8;
      t.bits <- t.bits - 8
    done

  let finish t =
    if t.bits > 0 then Buffer.add_uint8 t.buf (t.acc land 0xFF);
    Buffer.to_bytes t.buf
end

module Bitreader = struct
  type t = { buf : Bytes.t; mutable pos : int; mutable acc : int; mutable bits : int }

  let create buf ~pos = { buf; pos; acc = 0; bits = 0 }

  let get t =
    while t.bits < 12 && t.pos < Bytes.length t.buf do
      t.acc <- t.acc lor (Bytes.get_uint8 t.buf t.pos lsl t.bits);
      t.pos <- t.pos + 1;
      t.bits <- t.bits + 8
    done;
    if t.bits < 12 then None
    else begin
      let code = t.acc land 0xFFF in
      t.acc <- t.acc lsr 12;
      t.bits <- t.bits - 12;
      Some code
    end
end

(* -------------------- encode -------------------- *)

let encode input =
  let n = Bytes.length input in
  let out = Bitwriter.create () in
  let header = Bytes.create 8 in
  Bytes.set_int64_le header 0 (Int64.of_int n);
  if n = 0 then Bytes.cat header (Bitwriter.finish out)
  else begin
    (* dict: (prefix_code << 8 | byte) -> code *)
    let dict = Hashtbl.create 4096 in
    let next = ref first_free in
    let w = ref (Char.code (Bytes.get input 0)) in
    for i = 1 to n - 1 do
      let c = Char.code (Bytes.get input i) in
      let key = (!w lsl 8) lor c in
      match Hashtbl.find_opt dict key with
      | Some code -> w := code
      | None ->
          Bitwriter.put out !w;
          if !next < max_code then begin
            Hashtbl.add dict key !next;
            incr next
          end;
          w := c
    done;
    Bitwriter.put out !w;
    Bytes.cat header (Bitwriter.finish out)
  end

(* -------------------- decode -------------------- *)

let decode input =
  if Bytes.length input < 8 then invalid_arg "Lzw.decode: missing header";
  let n = Int64.to_int (Bytes.get_int64_le input 0) in
  if n < 0 then invalid_arg "Lzw.decode: bad length";
  let out = Buffer.create n in
  if n > 0 then begin
    let r = Bitreader.create input ~pos:8 in
    (* Chain representation: each code has a prefix code and a suffix
       byte; base codes 0..255 are their own byte. *)
    let prefix = Array.make max_code (-1) in
    let suffix = Array.make max_code '\000' in
    let next = ref first_free in
    let scratch = Bytes.create max_code in
    (* Expand a code into [scratch], returning (start, len); scratch is
       filled from the end backwards following the prefix chain. *)
    let expand code =
      let pos = ref max_code in
      let c = ref code in
      while !c >= 0 do
        decr pos;
        if !c < 256 then begin
          Bytes.set scratch !pos (Char.chr !c);
          c := -1
        end
        else begin
          if !c >= !next then invalid_arg "Lzw.decode: corrupt stream";
          Bytes.set scratch !pos suffix.(!c);
          c := prefix.(!c)
        end
      done;
      (!pos, max_code - !pos)
    in
    let first_char (start, _len) = Bytes.get scratch start in
    (match Bitreader.get r with
    | None -> invalid_arg "Lzw.decode: empty stream"
    | Some code0 ->
        if code0 >= 256 then invalid_arg "Lzw.decode: bad first code";
        Buffer.add_char out (Char.chr code0);
        let prev = ref code0 in
        let prev_first = ref (Char.chr code0) in
        let continue = ref true in
        while !continue && Buffer.length out < n do
          match Bitreader.get r with
          | None -> continue := false
          | Some code ->
              let span =
                if code < !next then expand code
                else if code = !next then begin
                  (* The cScSc special case: w + first char of w. *)
                  let start, len = expand !prev in
                  let moved = start - 1 in
                  if moved < 0 then invalid_arg "Lzw.decode: overflow";
                  Bytes.blit scratch start scratch moved len;
                  Bytes.set scratch (moved + len) !prev_first;
                  (moved, len + 1)
                end
                else invalid_arg "Lzw.decode: code out of range"
              in
              let start, len = span in
              Buffer.add_subbytes out scratch start len;
              if !next < max_code then begin
                prefix.(!next) <- !prev;
                suffix.(!next) <- first_char span;
                incr next
              end;
              prev := code;
              prev_first := first_char span
        done)
  end;
  let result = Buffer.to_bytes out in
  if Bytes.length result <> n then invalid_arg "Lzw.decode: length mismatch";
  result

let encode_data d = Storage.Data.real (encode (Storage.Data.to_bytes d))
let decode_data d = Storage.Data.real (decode (Storage.Data.to_bytes d))

let ratio ~original ~compressed =
  if original <= 0 then 0.0
  else 1.0 -. (float_of_int compressed /. float_of_int original)
