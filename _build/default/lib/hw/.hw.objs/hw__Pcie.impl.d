lib/hw/pcie.ml: Bandwidth Engine Sim Time
