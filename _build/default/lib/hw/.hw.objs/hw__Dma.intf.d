lib/hw/dma.mli: Sim Time
