lib/hw/config.mli: Sim Time
