lib/hw/pm.ml: Bandwidth Engine Sim Time
