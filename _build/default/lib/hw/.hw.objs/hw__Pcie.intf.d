lib/hw/pcie.mli: Bandwidth Sim Time
