lib/hw/netlink.mli: Bandwidth Sim Time
