lib/hw/cpu.mli: Sim Time
