lib/hw/topology.mli: Config Netlink Node
