lib/hw/node.mli: Config Cpu Dma Format Netlink Pcie Pm Sim Smartnic Time
