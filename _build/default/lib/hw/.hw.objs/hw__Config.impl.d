lib/hw/config.ml: Float Sim Time
