lib/hw/topology.ml: Array Config List Netlink Node
