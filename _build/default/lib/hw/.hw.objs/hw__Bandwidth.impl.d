lib/hw/bandwidth.ml: Engine Float List Semaphore Sim Stats Time
