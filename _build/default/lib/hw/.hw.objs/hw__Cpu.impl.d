lib/hw/cpu.ml: Array Engine Float Queue Sim Stats Time
