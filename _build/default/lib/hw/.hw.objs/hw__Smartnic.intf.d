lib/hw/smartnic.mli: Config Cpu Netlink Sim Time
