lib/hw/smartnic.ml: Bandwidth Config Cpu Netlink
