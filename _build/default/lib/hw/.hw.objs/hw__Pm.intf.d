lib/hw/pm.mli: Sim Time
