lib/hw/netlink.ml: Bandwidth Engine Sim Time
