lib/hw/dma.ml: Bandwidth Engine Sim Time
