lib/hw/bandwidth.mli: Sim Stats Time
