lib/hw/node.ml: Config Cpu Dma Format Netlink Pcie Pm Smartnic
