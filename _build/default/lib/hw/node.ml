type t = {
  id : int;
  cfg : Config.t;
  host : Cpu.t;
  pm : Pm.t;
  pcie : Pcie.t;
  dma : Dma.t;
  nic : Smartnic.t;
  port : Netlink.port;
}

let create (cfg : Config.t) ~switch ~id =
  let port = Netlink.create_port switch ~bytes_per_sec:cfg.net_bps in
  {
    id;
    cfg;
    host = Cpu.create ~speed:cfg.host_speed ~cores:cfg.host_cores ();
    pm =
      Pm.create ~latency:cfg.pm_latency ~read_bytes_per_sec:cfg.pm_read_bps
        ~write_bytes_per_sec:cfg.pm_write_bps ();
    pcie = Pcie.create ~latency:cfg.pcie_latency ~bytes_per_sec:cfg.pcie_bps ();
    dma = Dma.create ~setup:cfg.dma_setup ~bytes_per_sec:cfg.dma_bps ();
    nic = Smartnic.create cfg ~port;
    port;
  }

let copy_work t n = Config.copy_work t.cfg n

let pp fmt t =
  Format.fprintf fmt "node%d(host=%dc, nic=%dc)" t.id (Cpu.cores t.host)
    (Cpu.cores (Smartnic.cpu t.nic))
