open Sim

type t = { lat : Time.t; bw : Bandwidth.t }

let create ?(latency = Time.us 2) ?(bytes_per_sec = 8e9) () =
  { lat = latency; bw = Bandwidth.create ~bytes_per_sec () }

let latency t = t.lat

let transfer t n =
  Engine.sleep t.lat;
  Bandwidth.transfer t.bw n

let rpc_round_trip t = Engine.sleep (2 * t.lat)
let transfer_time t n = t.lat + Bandwidth.time_for t.bw n
let total_bytes t = Bandwidth.total_bytes t.bw
let link t = t.bw
