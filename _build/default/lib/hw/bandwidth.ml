open Sim

type t = {
  bps : float;
  segment : int;
  server : Semaphore.t;
  mutable total : int;
  busy : Stats.Busy.t;
  mutable observers : (at:Time.t -> bytes:int -> unit) list;
}

let create ?(segment = 64 * 1024) ~bytes_per_sec () =
  assert (bytes_per_sec > 0.0 && segment > 0);
  {
    bps = bytes_per_sec;
    segment;
    server = Semaphore.create 1;
    total = 0;
    busy = Stats.Busy.create ();
    observers = [];
  }

let bytes_per_sec t = t.bps

let time_for t n =
  if n <= 0 then 0
  else int_of_float (Float.round (float_of_int n /. t.bps *. 1e9))

let notify t bytes =
  let at = Engine.now () in
  List.iter (fun f -> f ~at ~bytes) t.observers

let transfer t n =
  if n > 0 then begin
    let remaining = ref n in
    while !remaining > 0 do
      let seg = min t.segment !remaining in
      Semaphore.with_permit t.server (fun () ->
          let start = Engine.now () in
          Engine.sleep (time_for t seg);
          Stats.Busy.record t.busy ~start ~stop:(Engine.now ()));
      t.total <- t.total + seg;
      notify t seg;
      remaining := !remaining - seg
    done
  end

let total_bytes t = t.total
let busy t = t.busy
let on_transfer t f = t.observers <- f :: t.observers
