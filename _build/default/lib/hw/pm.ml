open Sim

type t = {
  latency : Time.t;
  read_bw : Bandwidth.t;
  write_bw : Bandwidth.t;
}

let create ?(latency = Time.ns 100) ?(read_bytes_per_sec = 38e9)
    ?(write_bytes_per_sec = 12e9) () =
  {
    latency;
    read_bw = Bandwidth.create ~bytes_per_sec:read_bytes_per_sec ();
    write_bw = Bandwidth.create ~bytes_per_sec:write_bytes_per_sec ();
  }

let read t n =
  Engine.sleep t.latency;
  Bandwidth.transfer t.read_bw n

let write t n =
  Engine.sleep t.latency;
  Bandwidth.transfer t.write_bw n

let latency t = t.latency
let read_time t n = t.latency + Bandwidth.time_for t.read_bw n
let write_time t n = t.latency + Bandwidth.time_for t.write_bw n
let bytes_read t = Bandwidth.total_bytes t.read_bw
let bytes_written t = Bandwidth.total_bytes t.write_bw
