open Sim

type t = {
  host_cores : int;
  host_speed : float;
  nic_cores : int;
  nic_speed : float;
  host_copy_bps : float;
  pm_latency : Time.t;
  pm_read_bps : float;
  pm_write_bps : float;
  pcie_latency : Time.t;
  pcie_bps : float;
  dma_setup : Time.t;
  dma_bps : float;
  net_bps : float;
  net_latency : Time.t;
  nic_mem_bps : float;
  nic_mem_capacity : int;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let testbed_25gbe =
  {
    host_cores = 48;
    host_speed = 1.0;
    nic_cores = 16;
    (* 800 MHz / 2.2 GHz = 0.36, further derated for the 2x slower L3 /
       DRAM the paper measured on the A72 (§5.2.5). *)
    nic_speed = 0.3;
    host_copy_bps = 4e9;
    pm_latency = Time.ns 100;
    pm_read_bps = 38e9;
    pm_write_bps = 12e9;
    (* Calibrated to the paper's pipeline breakdown (Figure 5): fetching
       a 4 MB chunk over PCIe takes ~1.0 ms (one-sided RDMA read into
       NIC memory), publishing it via I/OAT ~1.4 ms. *)
    pcie_latency = Time.us 2;
    pcie_bps = 4e9;
    dma_setup = Time.us 1;
    dma_bps = 3e9;
    (* 25 GbE raw is ~3.1 GB/s; the paper's file benchmark measured
       2.2 GB/s goodput, which we use directly. *)
    net_bps = 2.2e9;
    net_latency = Time.of_us_f 1.5;
    nic_mem_bps = 10e9;
    nic_mem_capacity = gib 16;
  }

let testbed_100gbe =
  { testbed_25gbe with net_bps = 8.8e9 (* same 70% goodput ratio *) }

let copy_work t n =
  if n <= 0 then 0
  else int_of_float (Float.round (float_of_int n /. t.host_copy_bps *. 1e9))
