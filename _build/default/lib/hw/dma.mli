(** Host DMA copy engine (Intel I/OAT).

    Performs host-memory-to-host-memory copies without occupying host
    CPU cores; the kernel worker uses it to publish client logs to
    public PM (§4 of the paper).  Completion is signalled either by
    polling (caller burns CPU elsewhere) or interrupt — both are policy
    of the caller; this module only models engine occupancy. *)

open Sim

type t

val create : ?setup:Time.t -> ?bytes_per_sec:float -> unit -> t
(** Defaults: 1 us per-request setup, 6 GB/s engine throughput. *)

val copy : t -> int -> unit
(** Block until the engine has copied [n] bytes (queueing included).
    No CPU time is charged. *)

val copy_time : t -> int -> Time.t
(** Uncontended copy duration for [n] bytes. *)

val total_bytes : t -> int
