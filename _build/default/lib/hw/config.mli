(** Calibrated hardware constants for the evaluation testbed (§5.1).

    Single source of truth for the platform model: 3x dual-socket Xeon
    Gold 5220R (48 cores, 2.2 GHz), 768 GB Optane PM, Mellanox BlueField
    MBF1M332A (16x A72 @ 800 MHz, 16 GB DRAM), 25 GbE RoCE (2.2 GB/s
    measured goodput), Intel I/OAT DMA. *)

open Sim

type t = {
  host_cores : int;
  host_speed : float;  (** Reference speed: 1.0. *)
  nic_cores : int;
  nic_speed : float;
      (** Per-core SmartNIC speed relative to a host core: clock ratio
          (800 MHz / 2.2 GHz) degraded further by the 2x slower NIC
          memory the paper measured. *)
  host_copy_bps : float;
      (** Single host core streaming-copy throughput into PM, used to
          convert copied bytes into CPU work. *)
  pm_latency : Time.t;
  pm_read_bps : float;
  pm_write_bps : float;
  pcie_latency : Time.t;
  pcie_bps : float;
  dma_setup : Time.t;
  dma_bps : float;
  net_bps : float;  (** Per-port goodput (bytes/sec). *)
  net_latency : Time.t;
  nic_mem_bps : float;  (** Aggregate SmartNIC DRAM bandwidth. *)
  nic_mem_capacity : int;  (** SmartNIC DRAM size in bytes. *)
}

val testbed_25gbe : t
(** The paper's main configuration. *)

val testbed_100gbe : t
(** Same hosts with 100 GbE ports (Table 1 only). *)

val copy_work : t -> int -> Time.t
(** [copy_work cfg n] is the reference CPU work for copying [n] bytes
    with a single core ([n / host_copy_bps]); a wimpy pool executes the
    same work proportionally slower. *)

val mib : int -> int
(** [mib n] is [n] MiB in bytes. *)

val gib : int -> int
val kib : int -> int
