(** Cluster construction helper: [n] nodes on one switch, matching the
    paper's 3-node testbed (primary, replica-1, replica-2). *)

type t = { switch : Netlink.t; nodes : Node.t array }

val create : ?cfg:Config.t -> nodes:int -> unit -> t
(** Defaults to {!Config.testbed_25gbe}. *)

val node : t -> int -> Node.t
val primary : t -> Node.t
(** [node t 0]. *)

val replicas : t -> Node.t list
(** All nodes except the primary, in chain order. *)
