type t = { switch : Netlink.t; nodes : Node.t array }

let create ?(cfg = Config.testbed_25gbe) ~nodes () =
  assert (nodes > 0);
  let switch = Netlink.create_switch ~latency:cfg.net_latency () in
  {
    switch;
    nodes = Array.init nodes (fun id -> Node.create cfg ~switch ~id);
  }

let node t i = t.nodes.(i)
let primary t = t.nodes.(0)
let replicas t = List.tl (Array.to_list t.nodes)
