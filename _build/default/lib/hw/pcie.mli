(** PCIe interconnect between host memory and the SmartNIC.

    The defining property (§2.2 of the paper): several microseconds of
    latency per access versus ~100 ns over DDR, plus limited bandwidth
    that bulk transfers must share. *)

open Sim

type t

val create : ?latency:Time.t -> ?bytes_per_sec:float -> unit -> t
(** Defaults: 2 us latency, 8 GB/s (PCIe 3.0 x8, BlueField 1). *)

val latency : t -> Time.t

val transfer : t -> int -> unit
(** Bulk-move [n] bytes across the link: one latency plus bandwidth
    share. *)

val rpc_round_trip : t -> unit
(** Charge a small control round trip (2x latency, negligible bytes). *)

val transfer_time : t -> int -> Time.t
(** Uncontended transfer time. *)

val total_bytes : t -> int
val link : t -> Bandwidth.t
