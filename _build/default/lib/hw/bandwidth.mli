(** Shared bandwidth resource (memory channel, PCIe lane, network port).

    Transfers are served in segments through a FIFO server, so
    concurrent transfers interleave at segment granularity — an
    approximation of fair sharing that also yields realistic queueing
    when the resource saturates. *)

open Sim

type t

val create : ?segment:int -> bytes_per_sec:float -> unit -> t
(** [segment] is the interleaving granularity in bytes (default 64 KiB). *)

val bytes_per_sec : t -> float

val time_for : t -> int -> Time.t
(** Uncontended service time for a transfer of the given size. *)

val transfer : t -> int -> unit
(** Move [n] bytes through the resource, blocking the calling process
    for the service time plus any queueing delay. *)

val total_bytes : t -> int
(** Bytes transferred since creation. *)

val busy : t -> Stats.Busy.t
(** Busy-time accounting for utilization reports. *)

val on_transfer : t -> (at:Time.t -> bytes:int -> unit) -> unit
(** Register an observer called as each segment completes — used to
    build bandwidth-over-time series. *)
