(** Persistent-memory device model (Intel Optane DC, App-Direct mode).

    Captures the traits the paper's design leans on: DDR-like access
    latency (~100 ns, an order of magnitude below PCIe) and asymmetric
    read/write bandwidth.  Device time is charged here; CPU time spent
    copying into PM is charged separately by callers on their CPU pool. *)

open Sim

type t

val create :
  ?latency:Time.t ->
  ?read_bytes_per_sec:float ->
  ?write_bytes_per_sec:float ->
  unit ->
  t
(** Defaults: 100 ns latency, 38 GB/s read, 12 GB/s write (6 DIMMs). *)

val read : t -> int -> unit
(** Charge a read of [n] bytes: latency + bandwidth share. *)

val write : t -> int -> unit
(** Charge a persisted write of [n] bytes. *)

val latency : t -> Time.t

val read_time : t -> int -> Time.t
(** Uncontended read service time (latency included). *)

val write_time : t -> int -> Time.t

val bytes_read : t -> int
val bytes_written : t -> int
