(** CPU pool model.

    A pool has a fixed number of cores and a relative [speed] (1.0 is
    the reference: one nanosecond of work takes one nanosecond on a
    reference core).  Work is executed in quantum-sized timeslices with
    strict priority between levels and round-robin within a level, so
    oversubscribed pools exhibit the proportional slowdown and queueing
    delays that drive the paper's interference results.

    Work amounts are expressed in {e reference nanoseconds}; a pool with
    [speed = 0.3] (a wimpy SmartNIC core) takes [work /. 0.3] wall
    nanoseconds to execute [work]. *)

open Sim

type t

type prio = int
(** Priority level: 0 is highest. *)

val prio_high : prio
val prio_normal : prio
val prio_low : prio

val create :
  ?speed:float ->
  ?quantum:Time.t ->
  ?ctx_switch:Time.t ->
  cores:int ->
  unit ->
  t
(** [create ~cores ()] builds a pool.
    - [speed]: relative per-core speed (default 1.0);
    - [quantum]: timeslice length in wall time (default 300 us);
    - [ctx_switch]: overhead charged each time a task is (re)dispatched
      onto a core after waiting (default 2 us of reference work). *)

val cores : t -> int
val speed : t -> float

val run : ?prio:prio -> ?account:Sim.Stats.Busy.t -> t -> Time.t -> unit
(** [run t work] executes [work] reference-nanoseconds of computation,
    blocking the calling process for the wall time this takes including
    queueing for a core.  [account] additionally charges the busy
    intervals to a caller-supplied accounting bucket (e.g. "DFS cycles"
    vs "application cycles"). *)

val reserve_core : t -> unit
(** Permanently remove one core from the schedulable set — models a
    dedicated busy-polling thread pinned to a core. Raises
    [Invalid_argument] if no core is left. *)

val unreserve_core : t -> unit
(** Return a previously reserved core to the pool. *)

val available : t -> int
(** Cores currently idle and schedulable. *)

val runnable_waiters : t -> int
(** Tasks queued waiting for a core. *)

val busy : t -> Sim.Stats.Busy.t
(** Pool-wide busy-time accounting (reserved cores are not counted;
    callers model their spinning explicitly). *)

(** {1 Sticky task contexts}

    A long-lived thread (a DFS client loop, a poller) does not release
    its core between the small work items it executes back-to-back; it
    is descheduled only at timeslice granularity, or when it blocks.
    A [task] models that: it lazily acquires a core on first use and
    keeps it across {!task_run} calls, yielding to waiters once per
    quantum of accumulated work (round-robin), and releasing only at
    explicit {!task_release} points (before long blocking waits). *)

type task

val task : ?prio:prio -> ?account:Sim.Stats.Busy.t -> t -> task

val task_run : task -> Time.t -> unit
(** Execute work on the task's (held) core; acquires one if needed. *)

val task_release : task -> unit
(** Give the core up (call before blocking on IO/RPC); the next
    {!task_run} re-acquires. No-op when not holding. *)

val task_holding : task -> bool
