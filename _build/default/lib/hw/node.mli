(** A cluster node: host CPUs + PM + PCIe/DMA + SmartNIC, attached to
    the fabric through one physical network port that host- and
    NIC-initiated traffic share. *)

open Sim

type t = {
  id : int;
  cfg : Config.t;
  host : Cpu.t;
  pm : Pm.t;
  pcie : Pcie.t;
  dma : Dma.t;
  nic : Smartnic.t;
  port : Netlink.port;
}

val create : Config.t -> switch:Netlink.t -> id:int -> t

val copy_work : t -> int -> Time.t
(** Reference CPU work for an [n]-byte copy on this node (see
    {!Config.copy_work}). *)

val pp : Format.formatter -> t -> unit
