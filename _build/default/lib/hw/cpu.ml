open Sim

type prio = int

let prio_high = 0
let prio_normal = 1
let prio_low = 2
let n_prios = 3

type t = {
  total_cores : int;
  speed : float;
  quantum : Time.t;
  ctx_switch : Time.t;
  mutable free : int;
  mutable reserved : int;
  queues : (unit -> unit) Queue.t array;
  busy : Stats.Busy.t;
}

let create ?(speed = 1.0) ?(quantum = Time.us 300) ?(ctx_switch = Time.us 2)
    ~cores () =
  assert (cores > 0 && speed > 0.0);
  {
    total_cores = cores;
    speed;
    quantum;
    ctx_switch;
    free = cores;
    reserved = 0;
    queues = Array.init n_prios (fun _ -> Queue.create ());
    busy = Stats.Busy.create ();
  }

let cores t = t.total_cores
let speed t = t.speed
let available t = t.free
let busy t = t.busy

let runnable_waiters t =
  Array.fold_left (fun n q -> n + Queue.length q) 0 t.queues

let acquire_core t prio =
  if t.free > 0 then t.free <- t.free - 1
  else Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) t.queues.(prio))

let release_core t =
  (* Hand the core to the highest-priority waiter, FIFO within level. *)
  let rec find i =
    if i >= n_prios then begin
      t.free <- t.free + 1;
      None
    end
    else
      match Queue.take_opt t.queues.(i) with
      | Some wake -> Some wake
      | None -> find (i + 1)
  in
  match find 0 with Some wake -> wake () | None -> ()

let run ?(prio = prio_normal) ?account t work =
  if work <= 0 then ()
  else begin
    let remaining = ref work in
    let dispatches = ref 0 in
    while !remaining > 0 do
      acquire_core t prio;
      (* Dispatch overhead: every placement after the first spends
         scheduler/context-switch time on the core before useful work. *)
      if !dispatches > 0 then remaining := !remaining + t.ctx_switch;
      incr dispatches;
      (* Keep the core across quanta while nobody else is waiting; yield
         to the back of the queue otherwise (round-robin). *)
      let keep_going = ref true in
      while !keep_going do
        let quantum_work =
          int_of_float (float_of_int t.quantum *. t.speed)
        in
        let slice = min !remaining (max 1 quantum_work) in
        let elapsed =
          int_of_float (Float.round (float_of_int slice /. t.speed))
        in
        let start = Engine.now () in
        Engine.sleep elapsed;
        let stop = Engine.now () in
        Stats.Busy.record t.busy ~start ~stop;
        (match account with
        | Some acct -> Stats.Busy.record acct ~start ~stop
        | None -> ());
        remaining := !remaining - slice;
        if !remaining <= 0 then begin
          keep_going := false;
          release_core t
        end
        else if runnable_waiters t > 0 then begin
          keep_going := false;
          release_core t
        end
      done
    done
  end

type task = {
  pool : t;
  tprio : prio;
  taccount : Stats.Busy.t option;
  mutable holding : bool;
  mutable since_yield : Time.t; (* work consumed since last (re)acquire *)
}

let task ?(prio = prio_normal) ?account t =
  { pool = t; tprio = prio; taccount = account; holding = false; since_yield = 0 }

let task_release tk =
  if tk.holding then begin
    tk.holding <- false;
    tk.since_yield <- 0;
    release_core tk.pool
  end

let task_run tk work =
  if work > 0 then begin
    let t = tk.pool in
    if not tk.holding then begin
      acquire_core t tk.tprio;
      tk.holding <- true;
      tk.since_yield <- 0
    end;
    let remaining = ref work in
    while !remaining > 0 do
      let quantum_work = int_of_float (float_of_int t.quantum *. t.speed) in
      let budget = max 1 (quantum_work - tk.since_yield) in
      let slice = min !remaining budget in
      let elapsed =
        int_of_float (Float.round (float_of_int slice /. t.speed))
      in
      let start = Engine.now () in
      Engine.sleep elapsed;
      let stop = Engine.now () in
      Stats.Busy.record t.busy ~start ~stop;
      (match tk.taccount with
      | Some acct -> Stats.Busy.record acct ~start ~stop
      | None -> ());
      remaining := !remaining - slice;
      tk.since_yield <- tk.since_yield + slice;
      (* Timeslice boundary: yield the core to waiters (round-robin)
         and get back in line. *)
      if tk.since_yield >= quantum_work && runnable_waiters t > 0 then begin
        release_core t;
        acquire_core t tk.tprio;
        tk.since_yield <- 0
      end
      else if tk.since_yield >= quantum_work then tk.since_yield <- 0
    done
  end

let task_holding tk = tk.holding

let reserve_core t =
  if t.free = 0 then
    invalid_arg "Cpu.reserve_core: no idle core available to reserve";
  t.free <- t.free - 1;
  t.reserved <- t.reserved + 1

let unreserve_core t =
  if t.reserved = 0 then invalid_arg "Cpu.unreserve_core: none reserved";
  t.reserved <- t.reserved - 1;
  release_core t
