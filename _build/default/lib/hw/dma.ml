open Sim

type t = { setup : Time.t; bw : Bandwidth.t }

let create ?(setup = Time.us 1) ?(bytes_per_sec = 6e9) () =
  { setup; bw = Bandwidth.create ~bytes_per_sec () }

let copy t n =
  Engine.sleep t.setup;
  Bandwidth.transfer t.bw n

let copy_time t n = t.setup + Bandwidth.time_for t.bw n
let total_bytes t = Bandwidth.total_bytes t.bw
