lib/linefs/recovery.ml: Cluster Engine Fs_state Hw List Net Nicfs Oplog Sim Storage Time
