lib/linefs/lease.ml: Cond Engine Hashtbl Hw List Params Sim Time
