lib/linefs/lease.mli: Hw Params
