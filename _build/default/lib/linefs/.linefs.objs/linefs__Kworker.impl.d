lib/linefs/kworker.ml: Engine Float Hw Ivar Net Params Printf Sim Stats
