lib/linefs/pipeline.ml: Array Engine Hashtbl List Mailbox Params Printf Sim Stats Time
