lib/linefs/recovery.mli: Cluster Nicfs Sim Storage Time
