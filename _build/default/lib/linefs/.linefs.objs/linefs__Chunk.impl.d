lib/linefs/chunk.ml: Format List Oplog Sim Storage
