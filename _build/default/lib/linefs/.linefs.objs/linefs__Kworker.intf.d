lib/linefs/kworker.mli: Hw Net Params Sim Stats
