lib/linefs/libfs.ml: Cond Data Dfs_intf Engine Extent_map Format Fs_state Hashtbl Hw Lease List Net Nicfs Oplog Params Printf Semaphore Sim Stats Storage Time
