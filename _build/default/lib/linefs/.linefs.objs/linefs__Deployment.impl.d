lib/linefs/deployment.ml: Array Hw Kworker Libfs List Nicfs Params Sim Stats Storage
