lib/linefs/dfs_intf.ml: Printexc Printf Storage String
