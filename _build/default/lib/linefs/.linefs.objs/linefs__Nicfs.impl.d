lib/linefs/nicfs.ml: Bytes Chunk Cluster Coalesce Compress Cond Data Engine Fs_state Hashtbl Hw Ivar Kworker Lazy Lease List Net Oplog Params Pipeline Printf Sim Stats Storage Time
