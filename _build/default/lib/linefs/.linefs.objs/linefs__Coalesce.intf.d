lib/linefs/coalesce.mli: Storage
