lib/linefs/nicfs.mli: Cluster Hw Kworker Lease Net Params Sim Stats Storage
