lib/linefs/params.ml: Sim Time
