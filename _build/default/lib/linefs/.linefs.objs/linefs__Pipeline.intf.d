lib/linefs/pipeline.mli: Sim
