lib/linefs/params.mli: Sim Time
