lib/linefs/libfs.mli: Dfs_intf Hw Nicfs Params Sim Stats Storage
