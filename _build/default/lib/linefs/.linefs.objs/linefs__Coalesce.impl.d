lib/linefs/coalesce.ml: Array Data Extent_map Hashtbl List Oplog Storage
