lib/linefs/deployment.mli: Hw Kworker Libfs Nicfs Params Sim Stats Storage Time
