(** Common DFS client interface.

    Every file system in this repository (LineFS and all baselines)
    exposes its POSIX-ish client API as a value of type {!ops}, so
    workloads (microbenchmarks, LevelDB, Filebench, Tencent Sort) are
    written once and run unchanged against any system.

    All functions must be called from simulation-process context; they
    block for the modelled duration of the operation.  [fd]s are small
    integers scoped to one client. *)

type fd = int

type ops = {
  sysname : string;  (** For reports: "LineFS", "Assise", ... *)
  create : string -> fd;  (** Create-and-open a file (absolute path). *)
  open_file : string -> fd;  (** Open existing (permission-checked). *)
  close : fd -> unit;
  write : fd -> pos:int -> Storage.Data.t -> unit;
  append : fd -> Storage.Data.t -> unit;
  read : fd -> pos:int -> len:int -> Storage.Data.t;
  fsync : fd -> unit;  (** Durable + replicated on return (§3.3.2). *)
  mkdir : string -> unit;
  unlink : string -> unit;
  rename : string -> string -> unit;
  file_size : string -> int option;  (** [None] if absent. *)
}

exception Fs_error of Storage.Fs_state.error * string
(** Raised by operations on failure, carrying the errno-style code and
    the offending path. *)

let fail err path = raise (Fs_error (err, path))

let () =
  Printexc.register_printer (function
    | Fs_error (e, path) ->
        Some
          (Printf.sprintf "Fs_error(%s, %S)"
             (Storage.Fs_state.error_to_string e)
             path)
    | _ -> None)

(** Split an absolute path into (parent directory path, basename). *)
let split_path path =
  if String.length path = 0 || path.[0] <> '/' then
    fail Storage.Fs_state.Einval path;
  match String.rindex_opt path '/' with
  | None | Some 0 -> ("/", String.sub path 1 (String.length path - 1))
  | Some i ->
      ( String.sub path 0 i,
        String.sub path (i + 1) (String.length path - i - 1) )
