open Sim

type ltype = Read | Write

type lease = {
  mutable writer : int option;
  mutable readers : int list;
  mutable expires : Time.t;
}

type t = {
  params : Params.t;
  node : Hw.Node.t;
  replicate : bytes:int -> unit;
  table : (int, lease) Hashtbl.t;
  mutable pending : int;
  persisted : Cond.t;
}

let lease_record_bytes = 64

let create ~params ~node ~replicate () =
  {
    params;
    node;
    replicate;
    table = Hashtbl.create 64;
    pending = 0;
    persisted = Cond.create ();
  }

let valid _t l =
  l.expires > Engine.now () || l.writer <> None || l.readers <> []

let persist_in_background t =
  t.pending <- t.pending + 1;
  Engine.spawn ~name:"lease.persist" (fun () ->
      (* Record the grant in host PM and ship it to the replicas. *)
      Hw.Pm.write t.node.Hw.Node.pm lease_record_bytes;
      t.replicate ~bytes:lease_record_bytes;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Cond.broadcast t.persisted)

let acquire t ~client ~inum ltype =
  let l =
    match Hashtbl.find_opt t.table inum with
    | Some l when valid t l -> l
    | _ ->
        let l = { writer = None; readers = []; expires = 0 } in
        Hashtbl.replace t.table inum l;
        l
  in
  let grant () =
    l.expires <- Engine.now () + t.params.Params.lease_duration;
    persist_in_background t;
    `Granted
  in
  match ltype with
  | Write -> (
      match l.writer with
      | Some w when w <> client -> `Conflict
      | _ ->
          if List.exists (fun r -> r <> client) l.readers then `Conflict
          else begin
            l.writer <- Some client;
            l.readers <- List.filter (fun r -> r <> client) l.readers;
            grant ()
          end)
  | Read -> (
      match l.writer with
      | Some w when w <> client -> `Conflict
      | _ ->
          if not (List.mem client l.readers) then
            l.readers <- client :: l.readers;
          grant ())

let release t ~client ~inum =
  match Hashtbl.find_opt t.table inum with
  | None -> ()
  | Some l ->
      if l.writer = Some client then l.writer <- None;
      l.readers <- List.filter (fun r -> r <> client) l.readers;
      if l.writer = None && l.readers = [] then Hashtbl.remove t.table inum

let holders t ~inum =
  match Hashtbl.find_opt t.table inum with
  | None -> []
  | Some l -> (
      match l.writer with
      | Some w -> w :: List.filter (fun r -> r <> w) l.readers
      | None -> l.readers)

let check_access t ~client ~inum ~write =
  match Hashtbl.find_opt t.table inum with
  | None -> true
  | Some l -> (
      match l.writer with
      | Some w when w <> client -> false
      | _ ->
          if write then not (List.exists (fun r -> r <> client) l.readers)
          else true)

let expire_client t ~client =
  let stale = ref [] in
  Hashtbl.iter
    (fun inum l ->
      if l.writer = Some client then l.writer <- None;
      l.readers <- List.filter (fun r -> r <> client) l.readers;
      if l.writer = None && l.readers = [] then stale := inum :: !stale)
    t.table;
  List.iter (Hashtbl.remove t.table) !stale

let pending_persists t = t.pending

let wait_persisted t =
  while t.pending > 0 do
    Cond.await t.persisted
  done

let active_leases t = Hashtbl.length t.table
