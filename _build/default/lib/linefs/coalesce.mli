(** Semantic-aware log coalescing (§3.3.1 "Data-path processing
    opportunities").

    Scans a fetched chunk for temporarily-durable patterns and removes
    log entries whose effects are cancelled within the same chunk,
    shrinking the published (and copied) volume:
    - a [Create] followed by an [Unlink] of the same inode drops both
      (plus every intervening entry touching that inode);
    - a [Write] fully overwritten by a later [Write] in the same chunk
      drops the earlier one;
    - a [Write] entirely beyond a later [Truncate] point drops.

    Runs in the validation stage's core to exploit cache locality. *)

val run : Storage.Oplog.entry list -> Storage.Oplog.entry list * int
(** [run entries] returns the surviving entries (order preserved) and
    the number of entries removed. *)
