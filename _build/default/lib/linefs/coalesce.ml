open Storage

(* Treat a truncate as covering everything beyond its size. *)
let infinity_len = 1 lsl 40

let run entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  (* Pass 1: inodes created and then unlinked inside this chunk are
     temporarily durable — nothing about them needs publishing. *)
  let born = Hashtbl.create 8 in
  let cancelled = Hashtbl.create 8 in
  Array.iter
    (fun (e : Oplog.entry) ->
      match e.op with
      | Oplog.Create { inum; _ } -> Hashtbl.replace born inum ()
      | Oplog.Unlink { inum; _ } when Hashtbl.mem born inum ->
          Hashtbl.replace cancelled inum ()
      | _ -> ())
    arr;
  let entry_cancelled (e : Oplog.entry) =
    List.exists (Hashtbl.mem cancelled) (Oplog.touches e.op)
  in
  (* Pass 2: walk backwards accumulating per-inode overwrite coverage;
     a write fully shadowed by later writes/truncates is dropped. *)
  let keep = Array.make n true in
  let coverage : (int, unit Extent_map.t) Hashtbl.t = Hashtbl.create 8 in
  let cov_of inum =
    match Hashtbl.find_opt coverage inum with
    | Some m -> m
    | None ->
        let m = Extent_map.create () in
        Hashtbl.add coverage inum m;
        m
  in
  for i = n - 1 downto 0 do
    let e = arr.(i) in
    if entry_cancelled e then keep.(i) <- false
    else
      match e.Oplog.op with
      | Oplog.Write { inum; offset; data } ->
          let len = Data.length data in
          let cov = cov_of inum in
          let fully_covered =
            len > 0
            && List.for_all
                 (function `Data _ -> true | `Hole _ -> false)
                 (Extent_map.read_range cov ~pos:offset ~len)
            && Extent_map.read_range cov ~pos:offset ~len <> []
          in
          if fully_covered then keep.(i) <- false
          else Extent_map.insert cov ~at:offset (Data.zero ~len) ()
      | Oplog.Truncate { inum; size } ->
          Extent_map.insert (cov_of inum) ~at:size
            (Data.zero ~len:infinity_len) ()
      | Oplog.Create _ | Oplog.Unlink _ | Oplog.Rename _ -> ()
  done;
  let survivors = ref [] in
  let removed = ref 0 in
  for i = n - 1 downto 0 do
    if keep.(i) then survivors := arr.(i) :: !survivors else incr removed
  done;
  (!survivors, !removed)
