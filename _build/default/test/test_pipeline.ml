(* Direct tests for the parallel datapath pipeline framework: stage
   overlap, in-order handoff, dynamic worker scaling. *)

open Sim
open Linefs

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let wait_until pred =
  while not (pred ()) do
    Engine.sleep (Time.us 10)
  done

let test_items_flow_through_stages () =
  let log = ref [] in
  run_sim (fun () ->
      let pl =
        Pipeline.create ~name:"p"
          ~stages:
            [
              Pipeline.stage "a" (fun i ->
                  Engine.sleep (Time.us 10);
                  log := ("a", i) :: !log);
              Pipeline.stage "b" (fun i ->
                  Engine.sleep (Time.us 10);
                  log := ("b", i) :: !log);
            ]
          ~sink:(fun i -> log := ("sink", i) :: !log)
          ()
      in
      for i = 1 to 3 do
        Pipeline.submit pl i
      done;
      wait_until (fun () -> Pipeline.in_flight pl = 0));
  let events = List.rev !log in
  Alcotest.(check int) "9 events" 9 (List.length events);
  (* Every item passes a, then b, then the sink. *)
  List.iter
    (fun i ->
      let idx tag =
        let rec find n = function
          | [] -> -1
          | (t, v) :: rest -> if t = tag && v = i then n else find (n + 1) rest
        in
        find 0 events
      in
      Alcotest.(check bool)
        (Printf.sprintf "order for item %d" i)
        true
        (idx "a" < idx "b" && idx "b" < idx "sink"))
    [ 1; 2; 3 ]

let test_stages_overlap_in_time () =
  (* With two stages of 100us each, 4 items take ~500us pipelined, not
     ~800us sequential. *)
  let elapsed =
    run_sim (fun () ->
        let pl =
          Pipeline.create ~name:"p"
            ~stages:
              [
                Pipeline.stage "a" (fun _ -> Engine.sleep (Time.us 100));
                Pipeline.stage "b" (fun _ -> Engine.sleep (Time.us 100));
              ]
            ~sink:(fun _ -> ())
            ()
        in
        let t0 = Engine.now () in
        for i = 1 to 4 do
          Pipeline.submit pl i
        done;
        wait_until (fun () -> Pipeline.in_flight pl = 0);
        Engine.now () - t0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined makespan %s" (Time.to_string elapsed))
    true
    (elapsed < Time.us 620)

let test_sink_receives_in_submission_order () =
  (* A stage whose items take random time, with several workers, must
     still hand off in order. *)
  let order = ref [] in
  run_sim (fun () ->
      let rng = Rng.create 4 in
      let pl =
        Pipeline.create ~scale_threshold:0 ~name:"p"
          ~stages:
            [
              Pipeline.stage ~initial_workers:4 ~max_workers:4 "jitter"
                (fun _ ->
                  Engine.sleep (Time.us (10 + Rng.int rng 200)));
            ]
          ~sink:(fun i -> order := i :: !order)
          ()
      in
      for i = 1 to 20 do
        Pipeline.submit pl i
      done;
      wait_until (fun () -> Pipeline.in_flight pl = 0));
  Alcotest.(check (list int))
    "in order" (List.init 20 (fun i -> i + 1))
    (List.rev !order)

let test_dynamic_scaling_adds_workers () =
  run_sim (fun () ->
      let pl =
        Pipeline.create ~scale_threshold:2 ~name:"p"
          ~stages:
            [
              Pipeline.stage ~initial_workers:1 ~max_workers:4 "slow"
                (fun _ -> Engine.sleep (Time.ms 1));
            ]
          ~sink:(fun _ -> ())
          ()
      in
      Alcotest.(check int) "starts with 1" 1 (Pipeline.workers pl ~stage:"slow");
      for i = 1 to 12 do
        Pipeline.submit pl i
      done;
      Alcotest.(check bool)
        "scaled up under backlog" true
        (Pipeline.workers pl ~stage:"slow" > 1);
      Alcotest.(check bool)
        "bounded by max" true
        (Pipeline.workers pl ~stage:"slow" <= 4);
      wait_until (fun () -> Pipeline.in_flight pl = 0))

let test_scaling_speeds_up_bottleneck () =
  let makespan max_workers =
    run_sim (fun () ->
        let pl =
          Pipeline.create ~scale_threshold:1 ~name:"p"
            ~stages:
              [
                Pipeline.stage ~initial_workers:1 ~max_workers "slow"
                  (fun _ -> Engine.sleep (Time.ms 1));
              ]
            ~sink:(fun _ -> ())
            ()
        in
        let t0 = Engine.now () in
        for i = 1 to 16 do
          Pipeline.submit pl i
        done;
        wait_until (fun () -> Pipeline.in_flight pl = 0);
        Engine.now () - t0)
  in
  let serial = makespan 1 in
  let scaled = makespan 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 workers (%s) ~4x faster than 1 (%s)"
       (Time.to_string scaled) (Time.to_string serial))
    true
    (scaled * 3 < serial)

let test_stats_recorded () =
  run_sim (fun () ->
      let pl =
        Pipeline.create ~name:"p"
          ~stages:[ Pipeline.stage "s" (fun _ -> Engine.sleep (Time.us 50)) ]
          ~sink:(fun _ -> ())
          ()
      in
      for i = 1 to 5 do
        Pipeline.submit pl i
      done;
      wait_until (fun () -> Pipeline.in_flight pl = 0);
      let lat = Pipeline.stage_latency pl ~stage:"s" in
      Alcotest.(check int) "5 samples" 5 (Stats.Series.count lat);
      Alcotest.(check (float 1.0)) "50us each" 50.0 (Stats.Series.mean lat);
      let wait = Pipeline.stage_wait pl ~stage:"s" in
      (* Items 2..5 queue behind their predecessors. *)
      Alcotest.(check bool) "queue wait measured" true
        (Stats.Series.max wait >= 150.0))

let test_stage_names_and_unknown () =
  run_sim (fun () ->
      let pl =
        Pipeline.create ~name:"p"
          ~stages:
            [ Pipeline.stage "x" (fun _ -> ()); Pipeline.stage "y" (fun _ -> ()) ]
          ~sink:(fun _ -> ())
          ()
      in
      Alcotest.(check (list string)) "names" [ "x"; "y" ] (Pipeline.stage_names pl);
      match Pipeline.queue_length pl ~stage:"zzz" with
      | _ -> Alcotest.fail "expected Not_found"
      | exception Not_found -> ())

let prop_pipeline_conserves_items =
  QCheck.Test.make ~name:"pipeline delivers every item exactly once" ~count:30
    QCheck.(pair (int_range 1 40) (int_range 1 3))
    (fun (n, stages) ->
      let delivered = ref [] in
      run_sim (fun () ->
          let pl =
            Pipeline.create ~scale_threshold:2 ~name:"p"
              ~stages:
                (List.init stages (fun k ->
                     Pipeline.stage ~max_workers:3
                       (Printf.sprintf "s%d" k)
                       (fun _ -> Engine.sleep (Time.us 5))))
              ~sink:(fun i -> delivered := i :: !delivered)
              ()
          in
          for i = 1 to n do
            Pipeline.submit pl i
          done;
          wait_until (fun () -> Pipeline.in_flight pl = 0));
      List.sort compare !delivered = List.init n (fun i -> i + 1))

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "pipeline"
    [
      ( "pipeline",
        [
          tc "items flow through stages" `Quick test_items_flow_through_stages;
          tc "stages overlap" `Quick test_stages_overlap_in_time;
          tc "sink order preserved" `Quick test_sink_receives_in_submission_order;
          tc "dynamic scaling" `Quick test_dynamic_scaling_adds_workers;
          tc "scaling speeds up bottleneck" `Quick test_scaling_speeds_up_bottleneck;
          tc "stats recorded" `Quick test_stats_recorded;
          tc "stage names" `Quick test_stage_names_and_unknown;
          qt prop_pipeline_conserves_items;
        ] );
    ]
