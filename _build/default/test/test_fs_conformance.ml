(* FS conformance suite (the xfstests role): a matrix of generic POSIX
   behaviour checks executed against every DFS implementation through
   the common interface. *)

open Sim
open Storage
open Linefs

let params =
  {
    Params.default with
    Params.chunk_bytes = 256 * 1024;
    log_bytes = 8 * 1024 * 1024;
  }

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

(* Run [f] with a fresh client of the named system. *)
let with_system sysname f =
  run_sim (fun () ->
      match sysname with
      | `Linefs ->
          let d = Deployment.create ~params ~nodes:3 () in
          let r = f (Libfs.ops (Deployment.add_client d ~id:1)) in
          Deployment.stop d;
          r
      | `Assise ->
          let a = Baselines.Assise.create ~params ~nodes:3 () in
          let r = f (Baselines.Assise.ops (Baselines.Assise.add_client a ~id:1)) in
          Baselines.Assise.stop a;
          r)

let systems = [ ("linefs", `Linefs); ("assise", `Assise) ]

let str_of d = Bytes.to_string (Data.to_bytes d)

let expect_enoent f =
  match f () with
  | _ -> Alcotest.fail "expected ENOENT"
  | exception Dfs_intf.Fs_error (Fs_state.Enoent, _) -> ()

(* ------------------------------------------------------------------ *)
(* The generic checks (each runs on every system)                      *)
(* ------------------------------------------------------------------ *)

let generic_001_create_read_back (ops : Dfs_intf.ops) =
  let fd = ops.create "/g001" in
  ops.append fd (Data.of_string "content");
  Alcotest.(check string) "read" "content" (str_of (ops.read fd ~pos:0 ~len:64));
  ops.close fd

let generic_002_overwrite_middle (ops : Dfs_intf.ops) =
  let fd = ops.create "/g002" in
  ops.append fd (Data.of_string "aaaaaaaaaa");
  ops.write fd ~pos:3 (Data.of_string "XXX");
  Alcotest.(check string) "spliced" "aaaXXXaaaa"
    (str_of (ops.read fd ~pos:0 ~len:10));
  ops.close fd

let generic_003_sparse_file (ops : Dfs_intf.ops) =
  let fd = ops.create "/g003" in
  ops.write fd ~pos:100 (Data.of_string "end");
  Alcotest.(check (option int)) "size" (Some 103) (ops.file_size "/g003");
  let d = ops.read fd ~pos:98 ~len:5 in
  Alcotest.(check string) "hole zeros" "\000\000end" (str_of d);
  ops.close fd

let generic_004_read_past_eof (ops : Dfs_intf.ops) =
  let fd = ops.create "/g004" in
  ops.append fd (Data.of_string "xy");
  let d = ops.read fd ~pos:0 ~len:100 in
  Alcotest.(check int) "clamped at eof" 2 (Data.length d);
  let d = ops.read fd ~pos:50 ~len:10 in
  Alcotest.(check int) "fully past eof" 0 (Data.length d);
  ops.close fd

let generic_005_nested_dirs (ops : Dfs_intf.ops) =
  ops.mkdir "/a";
  ops.mkdir "/a/b";
  ops.mkdir "/a/b/c";
  let fd = ops.create "/a/b/c/deep" in
  ops.append fd (Data.of_string "!");
  ops.close fd;
  Alcotest.(check (option int)) "deep file" (Some 1) (ops.file_size "/a/b/c/deep")

let generic_006_unlink_then_recreate (ops : Dfs_intf.ops) =
  let fd = ops.create "/g006" in
  ops.append fd (Data.of_string "old-old-old");
  ops.close fd;
  ops.unlink "/g006";
  expect_enoent (fun () -> ops.open_file "/g006");
  let fd = ops.create "/g006" in
  ops.append fd (Data.of_string "new");
  Alcotest.(check (option int)) "fresh size" (Some 3) (ops.file_size "/g006");
  Alcotest.(check string) "fresh content" "new"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_007_rename_across_dirs (ops : Dfs_intf.ops) =
  ops.mkdir "/src";
  ops.mkdir "/dst";
  let fd = ops.create "/src/f" in
  ops.append fd (Data.of_string "moving");
  ops.close fd;
  ops.rename "/src/f" "/dst/f";
  Alcotest.(check (option int)) "gone" None (ops.file_size "/src/f");
  let fd = ops.open_file "/dst/f" in
  Alcotest.(check string) "moved content" "moving"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_008_rename_overwrites (ops : Dfs_intf.ops) =
  let fd = ops.create "/g008a" in
  ops.append fd (Data.of_string "winner");
  ops.close fd;
  let fd = ops.create "/g008b" in
  ops.append fd (Data.of_string "loser");
  ops.close fd;
  ops.rename "/g008a" "/g008b";
  let fd = ops.open_file "/g008b" in
  Alcotest.(check string) "target replaced" "winner"
    (str_of (ops.read fd ~pos:0 ~len:16));
  ops.close fd

let generic_009_fsync_durability (ops : Dfs_intf.ops) =
  let fd = ops.create "/g009" in
  for i = 0 to 63 do
    ops.write fd ~pos:(i * 4096) (Data.synthetic ~seed:i ~len:4096)
  done;
  ops.fsync fd;
  (* Contents fully intact after fsync. *)
  let d = ops.read fd ~pos:(13 * 4096) ~len:4096 in
  Alcotest.(check bool) "content stable" true
    (Data.equal d (Data.synthetic ~seed:13 ~len:4096));
  ops.close fd

let generic_010_many_small_files (ops : Dfs_intf.ops) =
  ops.mkdir "/many";
  for i = 0 to 99 do
    let fd = ops.create (Printf.sprintf "/many/f%03d" i) in
    ops.append fd (Data.synthetic ~seed:i ~len:256);
    ops.close fd
  done;
  for i = 0 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "file %d" i)
      (Some 256)
      (ops.file_size (Printf.sprintf "/many/f%03d" i))
  done

let generic_011_open_missing_parent (ops : Dfs_intf.ops) =
  expect_enoent (fun () -> ops.create "/no-such-dir/f")

let generic_012_interleaved_fds (ops : Dfs_intf.ops) =
  let fd1 = ops.create "/g012a" in
  let fd2 = ops.create "/g012b" in
  ops.append fd1 (Data.of_string "one");
  ops.append fd2 (Data.of_string "two");
  ops.append fd1 (Data.of_string "ONE");
  Alcotest.(check string) "fd1" "oneONE" (str_of (ops.read fd1 ~pos:0 ~len:16));
  Alcotest.(check string) "fd2" "two" (str_of (ops.read fd2 ~pos:0 ~len:16));
  ops.close fd1;
  ops.close fd2

let all_generics =
  [
    ("001 create+read", generic_001_create_read_back);
    ("002 overwrite middle", generic_002_overwrite_middle);
    ("003 sparse file", generic_003_sparse_file);
    ("004 read past eof", generic_004_read_past_eof);
    ("005 nested dirs", generic_005_nested_dirs);
    ("006 unlink+recreate", generic_006_unlink_then_recreate);
    ("007 rename across dirs", generic_007_rename_across_dirs);
    ("008 rename overwrites", generic_008_rename_overwrites);
    ("009 fsync durability", generic_009_fsync_durability);
    ("010 many small files", generic_010_many_small_files);
    ("011 missing parent", generic_011_open_missing_parent);
    ("012 interleaved fds", generic_012_interleaved_fds);
  ]

let () =
  Alcotest.run "fs-conformance"
    (List.map
       (fun (sysname, sys) ->
         ( sysname,
           List.map
             (fun (name, check) ->
               Alcotest.test_case name `Quick (fun () ->
                   with_system sys (fun ops -> check ops)))
             all_generics ))
       systems)
