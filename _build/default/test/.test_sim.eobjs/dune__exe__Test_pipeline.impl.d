test/test_pipeline.ml: Alcotest Engine Linefs List Pipeline Printf QCheck QCheck_alcotest Rng Sim Stats Time
