test/test_baselines.ml: Alcotest Assise Baselines Bytes Cephlike Data Dfs_intf Engine Fs_state Hw Ivar Linefs Oplog Params Printf Sim Stats Storage Time
