test/test_fs_conformance.ml: Alcotest Baselines Bytes Data Deployment Dfs_intf Engine Fs_state Libfs Linefs List Params Printf Sim Storage
