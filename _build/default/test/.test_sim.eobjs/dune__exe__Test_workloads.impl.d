test/test_workloads.ml: Alcotest Bytes Data Deployment Engine Filebench Hw Iperf Leveldb Libfs Linefs List Microbench Params Printf Rng Sim Stats Storage Streamcluster Tencent_sort Time Workloads
