test/test_sim.ml: Alcotest Cond Engine Gen Heap Ivar List Mailbox QCheck QCheck_alcotest Rng Semaphore Sim Stats Time
