test/test_compress.ml: Alcotest Bytes Char Compress Gen List Lzw Printf QCheck QCheck_alcotest Sim Storage String
