test/test_cluster.ml: Alcotest Cluster Engine History Manager Sim Time
