test/test_hw.ml: Alcotest Array Bandwidth Config Cpu Dma Engine Float Hw List Netlink Node Pcie Pm QCheck QCheck_alcotest Sim Smartnic Stats Time Topology
