test/test_net.ml: Alcotest Cond Engine Hw Ivar Loc Net Printf Rdma Rpc Sim Time
