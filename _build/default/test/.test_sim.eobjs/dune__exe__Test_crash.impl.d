test/test_crash.ml: Alcotest Bytes Char Data Deployment Dfs_intf Engine Fs_state Libfs Linefs List Oplog Params Printf QCheck QCheck_alcotest Rng Sim Storage String
