test/test_storage.ml: Alcotest Bytes Char Crc32 Data Extent_map Format Fs_state Gen Hashtbl List Oplog Printf QCheck QCheck_alcotest Sim Storage String
