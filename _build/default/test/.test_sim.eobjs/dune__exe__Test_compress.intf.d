test/test_compress.mli:
