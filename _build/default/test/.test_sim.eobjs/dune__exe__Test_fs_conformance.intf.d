test/test_fs_conformance.mli:
