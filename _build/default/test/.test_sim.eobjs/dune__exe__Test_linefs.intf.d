test/test_linefs.mli:
