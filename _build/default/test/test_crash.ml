(* Crash-consistency suite (the CrashMonkey role): run a randomized
   workload against LineFS, "crash" by taking an arbitrary prefix of
   the client's persisted log, replay it into a fresh FS, and check the
   recovered state's invariants. Prefix crash consistency (§3.1) says
   every log prefix must replay to a consistent tree whose contents
   match the history at that point. *)

open Sim
open Storage
open Linefs

let params =
  { Params.default with Params.chunk_bytes = 64 * 1024 * 1024 (* keep all
      entries in the log: we want full prefixes available *) }

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

(* A model of what the FS should contain, updated alongside the ops. *)
module Model = struct
  type t = {
    mutable files : (string * string) list; (* path -> content *)
    mutable history : (int * (string * string) list) list;
        (* log seq -> snapshot after that op *)
  }

  let create () = { files = []; history = [] }

  let snapshot t ~seq = t.history <- (seq, t.files) :: t.history

  let set t path content =
    t.files <- (path, content) :: List.remove_assoc path t.files

  let remove t path = t.files <- List.remove_assoc path t.files

  let at t ~seq =
    (* State after the latest op with log seq <= seq. *)
    let rec find = function
      | [] -> []
      | (s, snap) :: rest -> if s <= seq then snap else find rest
    in
    find t.history
end

(* Run a random workload; return the client (for its log) and model. *)
let random_workload ~ops_count ~seed =
  run_sim (fun () ->
      let d = Deployment.create ~params ~nodes:1 () in
      let client = Deployment.add_client d ~id:1 in
      let ops = Libfs.ops client in
      let rng = Rng.create seed in
      let model = Model.create () in
      let content_of i len =
        String.init len (fun k -> Char.chr (65 + ((i + k) mod 26)))
      in
      for i = 0 to ops_count - 1 do
        let path = Printf.sprintf "/f%d" (Rng.int rng 8) in
        (match Rng.int rng 4 with
        | 0 | 1 -> (
            (* (re)create with fresh content *)
            match ops.Dfs_intf.file_size path with
            | Some _ ->
                let fd = ops.Dfs_intf.open_file path in
                let s = content_of i (16 + Rng.int rng 64) in
                ops.Dfs_intf.write fd ~pos:0 (Data.of_string s);
                ops.Dfs_intf.close fd;
                (* Model: overwrite prefix of existing content. *)
                let old =
                  match List.assoc_opt path model.Model.files with
                  | Some c -> c
                  | None -> ""
                in
                let merged =
                  if String.length s >= String.length old then s
                  else s ^ String.sub old (String.length s)
                             (String.length old - String.length s)
                in
                Model.set model path merged
            | None ->
                let fd = ops.Dfs_intf.create path in
                let s = content_of i (16 + Rng.int rng 64) in
                ops.Dfs_intf.append fd (Data.of_string s);
                ops.Dfs_intf.close fd;
                Model.set model path s)
        | 2 -> (
            match ops.Dfs_intf.file_size path with
            | Some _ ->
                ops.Dfs_intf.unlink path;
                Model.remove model path
            | None -> ())
        | _ -> (
            (* rename to a sibling *)
            let dst = Printf.sprintf "/f%d" (Rng.int rng 8) in
            match (ops.Dfs_intf.file_size path, dst <> path) with
            | Some _, true ->
                ops.Dfs_intf.rename path dst;
                (match List.assoc_opt path model.Model.files with
                | Some c ->
                    Model.remove model path;
                    Model.set model dst c
                | None -> ())
            | _ -> ()));
        Model.snapshot model ~seq:(Libfs.last_seq client)
      done;
      let entries = ref [] in
      Oplog.Log.iter (Libfs.log client) (fun e -> entries := e :: !entries);
      Deployment.stop d;
      (List.rev !entries, model))

let check_replay_matches_model entries model ~prefix =
  let fs = Fs_state.create () in
  let applied = ref 0 in
  List.iteri
    (fun i e ->
      if i < prefix then begin
        match Fs_state.apply fs e.Oplog.op with
        | Ok () -> incr applied
        | Error err ->
            Alcotest.failf "replay prefix %d: entry %d failed: %s" prefix i
              (Fs_state.error_to_string err)
      end)
    entries;
  let last_seq =
    if prefix = 0 then 0
    else (List.nth entries (prefix - 1)).Oplog.seq
  in
  let expected = Model.at model ~seq:last_seq in
  List.iter
    (fun (path, content) ->
      match Fs_state.resolve fs path with
      | Error e ->
          Alcotest.failf "prefix %d: %s missing (%s)" prefix path
            (Fs_state.error_to_string e)
      | Ok inum -> (
          match
            Fs_state.read fs ~inum ~pos:0 ~len:(String.length content)
          with
          | Ok d ->
              Alcotest.(check string)
                (Printf.sprintf "prefix %d: %s content" prefix path)
                content
                (Bytes.to_string (Data.to_bytes d))
          | Error e ->
              Alcotest.failf "prefix %d: read %s: %s" prefix path
                (Fs_state.error_to_string e)))
    expected

let test_crash_replay_all_prefixes () =
  let entries, model = random_workload ~ops_count:60 ~seed:17 in
  let n = List.length entries in
  (* Crash at every 7th prefix plus the endpoints. *)
  let prefixes = List.init (n / 7) (fun i -> i * 7) @ [ n ] in
  List.iter (fun p -> check_replay_matches_model entries model ~prefix:p) prefixes

let prop_random_crash_points =
  QCheck.Test.make ~name:"random workloads replay consistently at any prefix"
    ~count:15
    QCheck.(pair (int_range 10 50) (int_range 0 1000))
    (fun (ops_count, seed) ->
      let entries, model = random_workload ~ops_count ~seed in
      let n = List.length entries in
      let rng = Rng.create (seed + 1) in
      (* Three random crash points per workload. *)
      List.for_all
        (fun _ ->
          let p = if n = 0 then 0 else Rng.int rng (n + 1) in
          match check_replay_matches_model entries model ~prefix:p with
          | () -> true
          | exception _ -> false)
        [ 1; 2; 3 ])

let test_fsynced_data_survives_replay () =
  (* Everything logged before an fsync must be recoverable. The log is
     snapshotted at the fsync point (publication may reclaim entries
     right after — by then durability has moved to public PM). *)
  let entries =
    run_sim (fun () ->
        let d = Deployment.create ~params ~nodes:3 () in
        let client = Deployment.add_client d ~id:1 in
        let ops = Libfs.ops client in
        let fd = ops.Dfs_intf.create "/durable" in
        ops.Dfs_intf.append fd (Data.of_string "must-survive");
        let entries = ref [] in
        Oplog.Log.iter (Libfs.log client) (fun e -> entries := e :: !entries);
        ops.Dfs_intf.fsync fd;
        Deployment.stop d;
        List.rev !entries)
  in
  let fs = Fs_state.create () in
  List.iter
    (fun (e : Oplog.entry) -> ignore (Fs_state.apply fs e.Oplog.op))
    entries;
  match Fs_state.resolve fs "/durable" with
  | Ok inum -> (
      match Fs_state.read fs ~inum ~pos:0 ~len:64 with
      | Ok d ->
          Alcotest.(check string) "survives" "must-survive"
            (Bytes.to_string (Data.to_bytes d))
      | Error e -> Alcotest.failf "read: %s" (Fs_state.error_to_string e))
  | Error e -> Alcotest.failf "resolve: %s" (Fs_state.error_to_string e)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "crash-consistency"
    [
      ( "crashmonkey",
        [
          tc "replay all prefixes" `Quick test_crash_replay_all_prefixes;
          tc "fsynced data survives" `Quick test_fsynced_data_survives_replay;
          qt prop_random_crash_points;
        ] );
    ]
