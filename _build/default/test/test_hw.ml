(* Tests for the hardware models: CPU pools, bandwidth resources, PM,
   PCIe, DMA, network fabric, SmartNIC, topology. *)

open Sim
open Hw

let run_sim f =
  let eng = Engine.create () in
  Engine.spawn_root eng f;
  Engine.run eng;
  eng

let check_close msg ~tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance *. Float.abs expected then
    Alcotest.failf "%s: expected ~%g, got %g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Cpu                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cpu_single_task_speed () =
  (* One task on an idle pool takes work/speed wall time. *)
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let pool = Cpu.create ~speed:0.5 ~cores:4 () in
         Cpu.run pool (Time.us 100);
         elapsed := Engine.now ()));
  Alcotest.(check int) "half-speed doubles time" (Time.us 200) !elapsed

let test_cpu_parallel_within_cores () =
  (* Tasks up to core count run in parallel. *)
  let eng =
    run_sim (fun () ->
        let pool = Cpu.create ~cores:4 () in
        for _ = 1 to 4 do
          Engine.spawn (fun () -> Cpu.run pool (Time.ms 10))
        done)
  in
  Alcotest.(check int) "4 tasks, 4 cores" (Time.ms 10) (Engine.current_time eng)

let test_cpu_contention_slows_down () =
  (* 8 equal tasks on 4 cores take ~2x as long, finishing together. *)
  let finishes = ref [] in
  let eng =
    run_sim (fun () ->
        let pool = Cpu.create ~ctx_switch:0 ~cores:4 () in
        for _ = 1 to 8 do
          Engine.spawn (fun () ->
              Cpu.run pool (Time.ms 10);
              finishes := Engine.now () :: !finishes)
        done)
  in
  let total = Engine.current_time eng in
  check_close "2x slowdown" ~tolerance:0.15
    (Time.to_sec_f (Time.ms 20))
    (Time.to_sec_f total);
  (* Round-robin: all tasks end within a couple of quanta of each other. *)
  let earliest = List.fold_left min max_int !finishes in
  Alcotest.(check bool)
    "fair sharing (no task starves)" true
    (total - earliest <= Time.ms 4)

let test_cpu_priority_preference () =
  (* With the pool saturated by low-prio work, a high-prio task gets the
     next core ahead of queued low-prio work. *)
  let finish_high = ref 0 in
  ignore
    (run_sim (fun () ->
         let pool = Cpu.create ~ctx_switch:0 ~cores:1 () in
         (* Saturate: two long low-prio tasks (one runs, one queues). *)
         for _ = 1 to 2 do
           Engine.spawn (fun () ->
               Cpu.run ~prio:Cpu.prio_low pool (Time.ms 50))
         done;
         Engine.sleep (Time.us 10);
         Engine.spawn (fun () ->
             Cpu.run ~prio:Cpu.prio_high pool (Time.us 100);
             finish_high := Engine.now ())));
  (* High-prio waits at most one quantum (1 ms) behind the running task,
     never behind the queued 50 ms low-prio task. *)
  Alcotest.(check bool)
    "high-prio overtakes queued low-prio" true
    (!finish_high < Time.ms 5)

let test_cpu_busy_accounting () =
  let util = ref 0.0 in
  let eng = Engine.create () in
  let pool = Cpu.create ~cores:4 () in
  Engine.spawn_root eng (fun () ->
      for _ = 1 to 2 do
        Engine.spawn (fun () -> Cpu.run pool (Time.ms 10))
      done);
  Engine.run eng;
  util :=
    Stats.Busy.utilization (Cpu.busy pool) ~over:(Engine.current_time eng);
  check_close "2 cores busy on average" ~tolerance:0.05 2.0 !util

let test_cpu_account_bucket () =
  let acct = Stats.Busy.create () in
  ignore
    (run_sim (fun () ->
         let pool = Cpu.create ~cores:2 () in
         Cpu.run ~account:acct pool (Time.ms 5)));
  Alcotest.(check int) "bucket charged" (Time.ms 5) (Stats.Busy.busy_time acct)

let test_cpu_reserve_core () =
  let eng =
    run_sim (fun () ->
        let pool = Cpu.create ~ctx_switch:0 ~cores:2 () in
        Cpu.reserve_core pool;
        Alcotest.(check int) "one left" 1 (Cpu.available pool);
        (* Two tasks now share the single remaining core. *)
        for _ = 1 to 2 do
          Engine.spawn (fun () -> Cpu.run pool (Time.ms 5))
        done)
  in
  check_close "serialized on one core" ~tolerance:0.1
    (Time.to_sec_f (Time.ms 10))
    (Time.to_sec_f (Engine.current_time eng))

let test_cpu_reserve_exhaustion () =
  ignore
    (run_sim (fun () ->
         let pool = Cpu.create ~cores:1 () in
         Cpu.reserve_core pool;
         match Cpu.reserve_core pool with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

let prop_cpu_work_conservation =
  QCheck.Test.make ~name:"cpu pool conserves total work" ~count:30
    QCheck.(pair (1 -- 8) (1 -- 12))
    (fun (cores, tasks) ->
      let eng = Engine.create () in
      let pool = Cpu.create ~ctx_switch:0 ~cores () in
      let work = Time.ms 2 in
      Engine.spawn_root eng (fun () ->
          for _ = 1 to tasks do
            Engine.spawn (fun () -> Cpu.run pool work)
          done);
      Engine.run eng;
      let expected_min = tasks * work / cores in
      let finished = Engine.current_time eng in
      (* Makespan is at least total-work/cores and at most total work. *)
      finished >= expected_min && finished <= tasks * work)

(* ------------------------------------------------------------------ *)
(* Bandwidth                                                           *)
(* ------------------------------------------------------------------ *)

let test_bandwidth_service_time () =
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let bw = Bandwidth.create ~bytes_per_sec:1e9 () in
         Bandwidth.transfer bw (1024 * 1024);
         elapsed := Engine.now ()));
  check_close "1MiB at 1GB/s" ~tolerance:0.01
    (1024.0 *. 1024.0 /. 1e9)
    (Time.to_sec_f !elapsed)

let test_bandwidth_sharing () =
  (* Two concurrent transfers share the link and each sees ~2x time. *)
  let eng =
    run_sim (fun () ->
        let bw = Bandwidth.create ~bytes_per_sec:1e9 () in
        for _ = 1 to 2 do
          Engine.spawn (fun () -> Bandwidth.transfer bw (10 * 1024 * 1024))
        done)
  in
  check_close "2 x 10MiB at 1GB/s" ~tolerance:0.02
    (2.0 *. 10.0 *. 1024.0 *. 1024.0 /. 1e9)
    (Time.to_sec_f (Engine.current_time eng))

let test_bandwidth_observer () =
  let seen = ref 0 in
  ignore
    (run_sim (fun () ->
         let bw = Bandwidth.create ~bytes_per_sec:1e9 () in
         Bandwidth.on_transfer bw (fun ~at:_ ~bytes -> seen := !seen + bytes);
         Bandwidth.transfer bw 200_000));
  Alcotest.(check int) "observer sees all bytes" 200_000 !seen;
  ()

let test_bandwidth_total () =
  ignore
    (run_sim (fun () ->
         let bw = Bandwidth.create ~bytes_per_sec:1e9 () in
         Bandwidth.transfer bw 1000;
         Bandwidth.transfer bw 2000;
         Alcotest.(check int) "total" 3000 (Bandwidth.total_bytes bw)))

(* ------------------------------------------------------------------ *)
(* Pm / Pcie / Dma                                                     *)
(* ------------------------------------------------------------------ *)

let test_pm_latency_dominates_small_io () =
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let pm = Pm.create () in
         Pm.read pm 64;
         elapsed := Engine.now ()));
  Alcotest.(check bool)
    "64B read is ~latency" true
    (!elapsed >= Time.ns 100 && !elapsed <= Time.ns 200)

let test_pm_write_slower_than_read () =
  let pm = Pm.create () in
  Alcotest.(check bool)
    "asymmetric bandwidth" true
    (Pm.write_time pm (1024 * 1024) > Pm.read_time pm (1024 * 1024))

let test_pcie_latency_order_of_magnitude () =
  (* The core premise: PCIe access costs ~20x a PM access. *)
  let pm = Pm.create () in
  let pcie = Pcie.create () in
  Alcotest.(check bool)
    "PCIe >= 10x PM latency" true
    (Pcie.latency pcie >= 10 * Pm.latency pm)

let test_dma_copy_no_cpu () =
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let dma = Dma.create ~setup:(Time.us 1) ~bytes_per_sec:6e9 () in
         Dma.copy dma (6 * 1000 * 1000);
         elapsed := Engine.now ()));
  check_close "6MB at 6GB/s + 1us setup" ~tolerance:0.02
    (0.001 +. 1e-6)
    (Time.to_sec_f !elapsed)

(* ------------------------------------------------------------------ *)
(* Netlink                                                             *)
(* ------------------------------------------------------------------ *)

let test_netlink_transfer_time () =
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let sw = Netlink.create_switch ~latency:(Time.us 2) () in
         let a = Netlink.create_port sw ~bytes_per_sec:1e9 in
         let b = Netlink.create_port sw ~bytes_per_sec:1e9 in
         Netlink.send ~src:a ~dst:b 1_000_000;
         elapsed := Engine.now ()));
  check_close "1MB at 1GB/s + 2us" ~tolerance:0.02 (0.001 +. 2e-6)
    (Time.to_sec_f !elapsed)

let test_netlink_full_duplex () =
  (* A chain middle node forwards while receiving: both directions
     proceed in parallel because egress resources are distinct. *)
  let eng =
    run_sim (fun () ->
        let sw = Netlink.create_switch ~latency:0 () in
        let a = Netlink.create_port sw ~bytes_per_sec:1e9 in
        let b = Netlink.create_port sw ~bytes_per_sec:1e9 in
        let c = Netlink.create_port sw ~bytes_per_sec:1e9 in
        Engine.spawn (fun () -> Netlink.send ~src:a ~dst:b 10_000_000);
        Engine.spawn (fun () -> Netlink.send ~src:b ~dst:c 10_000_000))
  in
  check_close "duplex overlap" ~tolerance:0.05 0.01
    (Time.to_sec_f (Engine.current_time eng))

let test_netlink_same_port_rejected () =
  ignore
    (run_sim (fun () ->
         let sw = Netlink.create_switch () in
         let a = Netlink.create_port sw ~bytes_per_sec:1e9 in
         match Netlink.send ~src:a ~dst:a 10 with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

let test_netlink_cross_switch_rejected () =
  ignore
    (run_sim (fun () ->
         let sw1 = Netlink.create_switch () in
         let sw2 = Netlink.create_switch () in
         let a = Netlink.create_port sw1 ~bytes_per_sec:1e9 in
         let b = Netlink.create_port sw2 ~bytes_per_sec:1e9 in
         match Netlink.send ~src:a ~dst:b 10 with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

let test_netlink_accounting () =
  ignore
    (run_sim (fun () ->
         let sw = Netlink.create_switch () in
         let a = Netlink.create_port sw ~bytes_per_sec:1e9 in
         let b = Netlink.create_port sw ~bytes_per_sec:1e9 in
         Netlink.send ~src:a ~dst:b 5000;
         Alcotest.(check int) "sent" 5000 (Netlink.bytes_sent a);
         Alcotest.(check int) "received" 5000 (Netlink.bytes_received b)))

(* ------------------------------------------------------------------ *)
(* Smartnic / Node / Topology                                          *)
(* ------------------------------------------------------------------ *)

let test_smartnic_memory_accounting () =
  let sw = Netlink.create_switch () in
  let port = Netlink.create_port sw ~bytes_per_sec:1e9 in
  let nic = Smartnic.create Config.testbed_25gbe ~port in
  Alcotest.(check (float 1e-9)) "initially empty" 0.0 (Smartnic.mem_frac nic);
  Smartnic.alloc nic (Smartnic.mem_capacity nic / 2);
  check_close "half full" ~tolerance:0.01 0.5 (Smartnic.mem_frac nic);
  Smartnic.free nic (Smartnic.mem_capacity nic);
  Alcotest.(check int) "free clamps at zero" 0 (Smartnic.mem_used nic)

let test_smartnic_wimpy_cores () =
  let sw = Netlink.create_switch () in
  let port = Netlink.create_port sw ~bytes_per_sec:1e9 in
  let nic = Smartnic.create Config.testbed_25gbe ~port in
  Alcotest.(check int) "16 cores" 16 (Cpu.cores (Smartnic.cpu nic));
  Alcotest.(check bool)
    "much slower than host" true
    (Cpu.speed (Smartnic.cpu nic) < 0.5)

let test_topology_shape () =
  let topo = Topology.create ~nodes:3 () in
  Alcotest.(check int) "3 nodes" 3 (Array.length topo.nodes);
  Alcotest.(check int) "primary id" 0 (Topology.primary topo).id;
  Alcotest.(check (list int))
    "replica ids" [ 1; 2 ]
    (List.map (fun (n : Node.t) -> n.id) (Topology.replicas topo))

let test_node_cross_node_transfer () =
  let elapsed = ref 0 in
  ignore
    (run_sim (fun () ->
         let topo = Topology.create ~nodes:2 () in
         let a = Topology.node topo 0 and b = Topology.node topo 1 in
         Netlink.send ~src:a.port ~dst:b.port (Config.mib 22);
         elapsed := Engine.now ()));
  (* 22 MiB at 2.2 GB/s goodput is ~10.5 ms. *)
  check_close "goodput calibration" ~tolerance:0.05 0.0105
    (Time.to_sec_f !elapsed)

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hw"
    [
      ( "cpu",
        [
          tc "single task speed" `Quick test_cpu_single_task_speed;
          tc "parallel within cores" `Quick test_cpu_parallel_within_cores;
          tc "contention slows down" `Quick test_cpu_contention_slows_down;
          tc "priority preference" `Quick test_cpu_priority_preference;
          tc "busy accounting" `Quick test_cpu_busy_accounting;
          tc "account bucket" `Quick test_cpu_account_bucket;
          tc "reserve core" `Quick test_cpu_reserve_core;
          tc "reserve exhaustion" `Quick test_cpu_reserve_exhaustion;
          qt prop_cpu_work_conservation;
        ] );
      ( "bandwidth",
        [
          tc "service time" `Quick test_bandwidth_service_time;
          tc "fair sharing" `Quick test_bandwidth_sharing;
          tc "observer" `Quick test_bandwidth_observer;
          tc "total bytes" `Quick test_bandwidth_total;
        ] );
      ( "pm-pcie-dma",
        [
          tc "pm small-io latency" `Quick test_pm_latency_dominates_small_io;
          tc "pm asymmetric bandwidth" `Quick test_pm_write_slower_than_read;
          tc "pcie latency gap" `Quick test_pcie_latency_order_of_magnitude;
          tc "dma copy" `Quick test_dma_copy_no_cpu;
        ] );
      ( "netlink",
        [
          tc "transfer time" `Quick test_netlink_transfer_time;
          tc "full duplex" `Quick test_netlink_full_duplex;
          tc "same port rejected" `Quick test_netlink_same_port_rejected;
          tc "cross switch rejected" `Quick test_netlink_cross_switch_rejected;
          tc "byte accounting" `Quick test_netlink_accounting;
        ] );
      ( "node",
        [
          tc "smartnic memory accounting" `Quick test_smartnic_memory_accounting;
          tc "smartnic wimpy cores" `Quick test_smartnic_wimpy_cores;
          tc "topology shape" `Quick test_topology_shape;
          tc "cross-node transfer" `Quick test_node_cross_node_transfer;
        ] );
    ]
