(* Tests for the baseline systems: Assise variants and the Ceph-like
   client-server DFS. *)

open Sim
open Storage
open Linefs
open Baselines

let kib n = n * 1024

let test_params =
  {
    Params.default with
    Params.chunk_bytes = 256 * 1024;
    log_bytes = 4 * 1024 * 1024;
  }

let run_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation did not complete"

let with_assise ?(variant = Assise.Pessimistic) f =
  run_sim (fun () ->
      let sys = Assise.create ~params:test_params ~variant ~nodes:3 () in
      let r = f sys in
      Assise.stop sys;
      r)

let test_assise_write_read () =
  with_assise (fun sys ->
      let c = Assise.add_client sys ~id:1 in
      let ops = Assise.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      ops.Dfs_intf.append fd (Data.of_string "assise data");
      let d = ops.Dfs_intf.read fd ~pos:0 ~len:100 in
      Alcotest.(check string) "content" "assise data"
        (Bytes.to_string (Data.to_bytes d)))

let test_assise_fsync_replicates () =
  with_assise (fun sys ->
      let c = Assise.add_client sys ~id:1 in
      let ops = Assise.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 64));
      ops.Dfs_intf.fsync fd;
      Alcotest.(check bool) "wire bytes shipped" true
        (Assise.replication_wire_bytes sys >= kib 64))

let test_assise_fsync_blocks_until_replicated () =
  (* Latency of a 16 KB write+fsync must include at least the two-hop
     transfer time. *)
  let elapsed =
    with_assise (fun sys ->
        let c = Assise.add_client sys ~id:1 in
        let ops = Assise.ops c in
        let fd = ops.Dfs_intf.create "/f" in
        let t0 = Engine.now () in
        ops.Dfs_intf.append fd (Data.synthetic ~seed:1 ~len:(kib 16));
        ops.Dfs_intf.fsync fd;
        Engine.now () - t0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "replication latency present (%s)" (Time.to_string elapsed))
    true
    (elapsed >= Time.us 10 && elapsed <= Time.us 500)

let test_assise_busy_poll_burns_cpu () =
  (* Pessimistic replication busy-polls: DFS host CPU use must be a
     large fraction of the replication wall time. *)
  with_assise (fun sys ->
      let c = Assise.add_client sys ~id:1 in
      let ops = Assise.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      let t0 = Engine.now () in
      for i = 0 to 63 do
        ops.Dfs_intf.write fd ~pos:(i * kib 16)
          (Data.synthetic ~seed:i ~len:(kib 16))
      done;
      ops.Dfs_intf.fsync fd;
      let wall = Engine.now () - t0 in
      let dfs_cpu =
        Stats.Busy.busy_time (Assise.dfs_host_cpu sys ~node:0)
      in
      Alcotest.(check bool)
        (Printf.sprintf "primary DFS cpu %s vs wall %s" (Time.to_string dfs_cpu)
           (Time.to_string wall))
        true
        (dfs_cpu > wall / 2))

let test_bg_repl_overlaps () =
  (* BgRepl replicates proactively, so the final fsync is cheaper than
     Pessimistic's. *)
  let measure variant =
    with_assise ~variant (fun sys ->
        let c = Assise.add_client sys ~id:1 in
        let ops = Assise.ops c in
        let fd = ops.Dfs_intf.create "/f" in
        (* 2 MB: comfortably below the 4 MB test log, so replication is
           driven purely by the variant's policy. *)
        for i = 0 to 127 do
          ops.Dfs_intf.write fd ~pos:(i * kib 16)
            (Data.synthetic ~seed:i ~len:(kib 16))
        done;
        let t0 = Engine.now () in
        ops.Dfs_intf.fsync fd;
        Engine.now () - t0)
  in
  let t_pess = measure Assise.Pessimistic in
  let t_bg = measure Assise.Bg_repl in
  Alcotest.(check bool)
    (Printf.sprintf "bg fsync (%s) < pessimistic fsync (%s)"
       (Time.to_string t_bg) (Time.to_string t_pess))
    true (t_bg < t_pess)

let test_hyperloop_no_replica_poll () =
  (* Hyperloop must use far less host CPU for replication than
     pessimistic Assise. *)
  let cpu_of variant =
    with_assise ~variant (fun sys ->
        let c = Assise.add_client sys ~id:1 in
        let ops = Assise.ops c in
        let fd = ops.Dfs_intf.create "/f" in
        for i = 0 to 127 do
          ops.Dfs_intf.write fd ~pos:(i * kib 16)
            (Data.synthetic ~seed:i ~len:(kib 16))
        done;
        ops.Dfs_intf.fsync fd;
        Stats.Busy.busy_time (Assise.dfs_host_cpu sys ~node:0))
  in
  let cpu_assise = cpu_of Assise.Pessimistic in
  let cpu_hyper = cpu_of Assise.Hyperloop in
  Alcotest.(check bool)
    (Printf.sprintf "hyperloop cpu (%s) << assise cpu (%s)"
       (Time.to_string cpu_hyper) (Time.to_string cpu_assise))
    true
    (cpu_hyper * 2 < cpu_assise)

let test_assise_log_replay () =
  with_assise (fun sys ->
      let c = Assise.add_client sys ~id:1 in
      let ops = Assise.ops c in
      ops.Dfs_intf.mkdir "/d";
      let fd = ops.Dfs_intf.create "/d/f" in
      ops.Dfs_intf.append fd (Data.of_string "xyz");
      let replayed = Fs_state.create () in
      Oplog.Log.iter (Assise.client_log c) (fun e ->
          match Fs_state.apply replayed e.Oplog.op with
          | Ok () -> ()
          | Error err ->
              Alcotest.failf "replay: %s" (Fs_state.error_to_string err));
      match Fs_state.resolve replayed "/d/f" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "resolve: %s" (Fs_state.error_to_string e))

let test_ceph_write_path () =
  run_sim (fun () ->
      let sys = Cephlike.create ~nodes:3 () in
      let c = Cephlike.add_client sys ~id:1 in
      let ops = Cephlike.ops c in
      let fd = ops.Dfs_intf.create "/f" in
      for i = 0 to 63 do
        ops.Dfs_intf.write fd ~pos:(i * 4096) (Data.zero ~len:4096)
      done;
      ops.Dfs_intf.fsync fd;
      Alcotest.(check (option int))
        "size visible" (Some (64 * 4096))
        (ops.Dfs_intf.file_size "/f");
      (* Server burned CPU for the IOs. *)
      Alcotest.(check bool) "server cpu > 0" true
        (Stats.Busy.busy_time (Cephlike.server_cpu sys) > 0);
      Alcotest.(check bool) "client cpu > 0" true
        (Stats.Busy.busy_time (Cephlike.client_host_cpu sys) > 0))

let test_ceph_client_cpu_flat_vs_assise () =
  (* Table 1's core contrast at high client counts on fast networks:
     Assise burns more client-node CPU than Ceph. *)
  let ceph_cpu =
    run_sim (fun () ->
        let sys = Cephlike.create ~cfg:Hw.Config.testbed_100gbe ~nodes:3 () in
        let n = 4 in
        let live = ref n in
        let don = Ivar.create () in
        for i = 1 to n do
          let c = Cephlike.add_client sys ~id:i in
          let ops = Cephlike.ops c in
          Engine.spawn (fun () ->
              let fd = ops.Dfs_intf.create (Printf.sprintf "/f%d" i) in
              for b = 0 to 511 do
                ops.Dfs_intf.write fd ~pos:(b * 4096) (Data.zero ~len:4096)
              done;
              ops.Dfs_intf.fsync fd;
              decr live;
              if !live = 0 then Ivar.fill don ())
        done;
        Ivar.read don;
        let wall = Engine.now () in
        Stats.Busy.utilization (Cephlike.client_host_cpu sys) ~over:wall)
  in
  let assise_cpu =
    run_sim (fun () ->
        let sys =
          Assise.create ~cfg:Hw.Config.testbed_100gbe ~params:test_params
            ~nodes:3 ()
        in
        let n = 4 in
        let live = ref n in
        let don = Ivar.create () in
        for i = 1 to n do
          let c = Assise.add_client sys ~id:i in
          let ops = Assise.ops c in
          Engine.spawn (fun () ->
              let fd = ops.Dfs_intf.create (Printf.sprintf "/f%d" i) in
              for b = 0 to 511 do
                ops.Dfs_intf.write fd ~pos:(b * 4096) (Data.zero ~len:4096)
              done;
              ops.Dfs_intf.fsync fd;
              decr live;
              if !live = 0 then Ivar.fill don ())
        done;
        Ivar.read don;
        let wall = Engine.now () in
        Assise.stop sys;
        Stats.Busy.utilization (Assise.dfs_host_cpu sys ~node:0) ~over:wall)
  in
  Alcotest.(check bool)
    (Printf.sprintf "assise %.2f cores > ceph %.2f cores" assise_cpu ceph_cpu)
    true
    (assise_cpu > ceph_cpu)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "baselines"
    [
      ( "assise",
        [
          tc "write/read" `Quick test_assise_write_read;
          tc "fsync replicates" `Quick test_assise_fsync_replicates;
          tc "fsync blocks" `Quick test_assise_fsync_blocks_until_replicated;
          tc "busy poll burns cpu" `Quick test_assise_busy_poll_burns_cpu;
          tc "bg-repl overlaps" `Quick test_bg_repl_overlaps;
          tc "hyperloop saves cpu" `Quick test_hyperloop_no_replica_poll;
          tc "log replay" `Quick test_assise_log_replay;
        ] );
      ( "cephlike",
        [
          tc "write path" `Quick test_ceph_write_path;
          tc "client cpu below assise" `Quick test_ceph_client_cpu_flat_vs_assise;
        ] );
    ]
