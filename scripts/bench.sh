#!/bin/sh
# Wall-clock benchmark entry point.
#
# Runs the perf-trajectory harness (bench/wallclock.exe) and writes
# BENCH_wallclock.json: per-kernel new-vs-legacy wall times and
# speedups, wall time / GC pressure / engine events-per-second for the
# measured experiments (with an events/s-by-domain-count probe of the
# scaled figures), the intra-cell sharded-deployment probe, and the
# rack-scale sweep (throughput vs nodes vs cohort size vs domains over
# sharded Linefs.Rack deployments).
#
# Gating now lives inside the harness itself: every floor it enforces
# — data-path geomean, multi-domain fig4, intra-cell speedup,
# rack-sweep speedup — is recorded in the JSON's "gates" object with
# the measured value, the floor applied, whether the floor was relaxed
# for the machine's core count, and whether the gate was evaluated in
# this run's mode.  The harness exits nonzero if any evaluated gate
# falls below its floor.  Speedup floors are core-count-aware: on a
# single core there is no parallelism to win (the sharded runner's
# inline policy makes extra domains free, so the floor is a ~1.0x
# no-regression bound rather than a real speedup).  CI separately
# refuses committed JSON whose gates were skipped or failed
# (scripts/ci.sh), so a smoke-mode run can't be passed off as a real
# benchmark run.
#
# Usage:
#   scripts/bench.sh             # kernels + scaled fig4/fig9 + sweeps
#   scripts/bench.sh --smoke     # kernels only, small sizes (CI)
#   scripts/bench.sh --full      # adds paper-scale fig4/fig9 (slow!)
#   scripts/bench.sh ... -o FILE # output path
set -eu
cd "$(dirname "$0")/.."

out=BENCH_wallclock.json
prev=
for a in "$@"; do
  [ "$prev" = "-o" ] && out=$a
  prev=$a
done

dune build bench/wallclock.exe
dune exec bench/wallclock.exe -- "$@"

# The harness already gated and exited nonzero on failure; echo the
# recorded gate lines for the log.
echo
echo "gates recorded in $out:"
sed -n '/"gates"/,/]/p' "$out" | grep '"name"' || true
