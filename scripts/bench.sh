#!/bin/sh
# Wall-clock benchmark entry point.
#
# Runs the perf-trajectory harness (bench/wallclock.exe) and writes
# BENCH_wallclock.json: per-kernel new-vs-legacy wall times and
# speedups, plus wall time / GC pressure / engine events-per-second
# for the measured experiments.  The harness exits nonzero if the
# data-path geometric-mean speedup drops below 3x.
#
# Usage:
#   scripts/bench.sh             # kernels + scaled fig4/fig9
#   scripts/bench.sh --smoke     # kernels only, small sizes (CI)
#   scripts/bench.sh --full      # adds paper-scale fig4/fig9 (slow!)
#   scripts/bench.sh ... -o FILE # output path
set -eu
cd "$(dirname "$0")/.."

dune build bench/wallclock.exe
dune exec bench/wallclock.exe -- "$@"
