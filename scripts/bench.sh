#!/bin/sh
# Wall-clock benchmark entry point.
#
# Runs the perf-trajectory harness (bench/wallclock.exe) and writes
# BENCH_wallclock.json: per-kernel new-vs-legacy wall times and
# speedups, plus wall time / GC pressure / engine events-per-second
# for the measured experiments (including an events/s-by-domain-count
# probe of the scaled figures).  The harness exits nonzero if the
# data-path geometric-mean speedup drops below 3x.
#
# After the harness, this script gates on two multi-domain
# trajectories:
#
#  - batch parallelism: scaled fig4 (independent cells spread over
#    domains) must beat one domain on a multicore machine.  The batch
#    harness now sizes the minor heap for parallel allocation (OCaml
#    5's minor collections stop every domain), so the floor is 1.10x.
#  - intra-cell parallelism: one deployment sharded per node
#    (single_cell_speedup in the JSON) must reach 1.30x at 4 domains
#    on a machine with >= 4 cores.
#
# On a single core there is no parallelism to win and the domain
# barriers are pure overhead, so both bounds relax to a 0.20x sanity
# floor — that still catches pathological synchronization (e.g. a
# livelocking window barrier) without demanding speedup physics can't
# deliver.  The simulated-result identity across domain counts is
# asserted inside the harness itself, not here.
#
# Usage:
#   scripts/bench.sh             # kernels + scaled fig4/fig9
#   scripts/bench.sh --smoke     # kernels only, small sizes (CI)
#   scripts/bench.sh --full      # adds paper-scale fig4/fig9 (slow!)
#   scripts/bench.sh ... -o FILE # output path
set -eu
cd "$(dirname "$0")/.."

out=BENCH_wallclock.json
prev=
for a in "$@"; do
  [ "$prev" = "-o" ] && out=$a
  prev=$a
done

dune build bench/wallclock.exe
dune exec bench/wallclock.exe -- "$@"

# ---- multi-domain gate ------------------------------------------------
fig4=$(grep '"name": "fig4", "scale": "scaled' "$out" 2>/dev/null || true)
speedup=$(printf '%s' "$fig4" \
  | sed -n 's/.*"multi_domain_speedup": \([0-9.]*\).*/\1/p')

if [ -z "$speedup" ]; then
  echo "multi-domain gate: no scaled fig4 probe in $out, skipping"
  exit 0
fi

cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -gt 1 ]; then
  floor=1.10
else
  floor=0.20
  echo "multi-domain gate: single core, relaxed floor $floor" \
       "(extra domains cost stop-the-world GC with no parallelism to pay it)"
fi

echo "multi-domain gate: fig4 best-multi-domain/single-domain = ${speedup}x" \
     "(floor ${floor}x, ${cores} core(s))"
awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s + 0 >= f + 0) }' || {
  echo "FAIL: multi-domain fig4 events/s dropped to ${speedup}x of" \
       "single-domain (floor ${floor}x)"
  exit 1
}

# ---- intra-cell (sharded deployment) gate -----------------------------
cell=$(sed -n 's/.*"single_cell_speedup": \([0-9.]*\).*/\1/p' "$out")
if [ -z "$cell" ]; then
  echo "single-cell gate: no sharded-cell probe in $out, skipping"
  exit 0
fi

if [ "$cores" -ge 4 ]; then
  cfloor=1.30
elif [ "$cores" -gt 1 ]; then
  cfloor=1.00
else
  cfloor=0.20
  echo "single-cell gate: single core, relaxed floor $cfloor"
fi

echo "single-cell gate: sharded-deployment best-multi-domain/single-domain" \
     "= ${cell}x (floor ${cfloor}x, ${cores} core(s))"
awk -v s="$cell" -v f="$cfloor" 'BEGIN { exit !(s + 0 >= f + 0) }' || {
  echo "FAIL: per-node sharded deployment events/s dropped to ${cell}x of" \
       "single-domain (floor ${cfloor}x)"
  exit 1
}
