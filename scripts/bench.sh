#!/bin/sh
# Wall-clock benchmark entry point.
#
# Runs the perf-trajectory harness (bench/wallclock.exe) and writes
# BENCH_wallclock.json: per-kernel new-vs-legacy wall times and
# speedups, plus wall time / GC pressure / engine events-per-second
# for the measured experiments (including an events/s-by-domain-count
# probe of the scaled figures).  The harness exits nonzero if the
# data-path geometric-mean speedup drops below 3x.
#
# After the harness, this script gates on the multi-domain trajectory:
# on a multicore machine, running scaled fig4 over several domains must
# not be slower than one domain (tolerance 0.95x for run-to-run noise).
# On a single core there is no parallelism to win and OCaml 5's
# stop-the-world minor collections make extra domains strictly
# overhead, so the bound is relaxed to a 0.20x sanity floor — it still
# catches pathological synchronization (e.g. a livelocking window
# barrier) without demanding speedup physics can't deliver.
#
# Usage:
#   scripts/bench.sh             # kernels + scaled fig4/fig9
#   scripts/bench.sh --smoke     # kernels only, small sizes (CI)
#   scripts/bench.sh --full      # adds paper-scale fig4/fig9 (slow!)
#   scripts/bench.sh ... -o FILE # output path
set -eu
cd "$(dirname "$0")/.."

out=BENCH_wallclock.json
prev=
for a in "$@"; do
  [ "$prev" = "-o" ] && out=$a
  prev=$a
done

dune build bench/wallclock.exe
dune exec bench/wallclock.exe -- "$@"

# ---- multi-domain gate ------------------------------------------------
fig4=$(grep '"name": "fig4", "scale": "scaled' "$out" 2>/dev/null || true)
speedup=$(printf '%s' "$fig4" \
  | sed -n 's/.*"multi_domain_speedup": \([0-9.]*\).*/\1/p')

if [ -z "$speedup" ]; then
  echo "multi-domain gate: no scaled fig4 probe in $out, skipping"
  exit 0
fi

cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -gt 1 ]; then
  floor=0.95
else
  floor=0.20
  echo "multi-domain gate: single core, relaxed floor $floor" \
       "(extra domains cost stop-the-world GC with no parallelism to pay it)"
fi

echo "multi-domain gate: fig4 best-multi-domain/single-domain = ${speedup}x" \
     "(floor ${floor}x, ${cores} core(s))"
awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s + 0 >= f + 0) }' || {
  echo "FAIL: multi-domain fig4 events/s dropped to ${speedup}x of" \
       "single-domain (floor ${floor}x)"
  exit 1
}
