#!/bin/sh
# CI entry point: build everything and run the full test suite
# (unit + integration + qcheck properties + the DST fault sweep),
# then the standalone DST gate: a reduced seed sweep plus the four
# explicit failover scenarios, with a determinism check that fails
# the build on any fingerprint mismatch between identical runs.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force
dune exec bin/dst_sweep.exe -- "${DST_SEEDS:-12}"
