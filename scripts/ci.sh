#!/bin/sh
# CI entry point: build everything and run the full test suite
# (unit + integration + qcheck properties + the DST fault sweep),
# then the standalone DST gate: a reduced seed sweep plus the four
# explicit failover scenarios, with a determinism check that fails
# the build on any fingerprint mismatch between identical runs;
# then the conformance/crash litmus sweep: differential checks of
# every backend against the model oracle plus faulted litmus runs,
# and the --mutate self-test that proves planted bugs are caught.
# The adversary sweep runs the Byzantine-fabric profile (duplication,
# reordering, corruption, torn oplog tails, bit-rot) over 50 seeds
# with its own determinism re-check.
# Finally the multicore smoke: the scaled figures executed over 4
# domains (plus a multi-instance linefs_sim run whose per-instance
# outputs must match byte-for-byte, and a per-node sharded deployment
# whose output must be byte-identical at 1 and 4 domains).  This
# checks correctness of the parallel windows, not speed — the events/s
# trajectory is bench.sh's job.  The fault-injection sweeps run over 4
# domains too: the injection hook and observers are engine-local, so
# independent scenarios batch as parallel shards (dst_sweep
# cross-checks one batched fingerprint against a sequential run).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force
dune exec bin/dst_sweep.exe -- "${DST_SEEDS:-12}" --domains 4
dune exec bin/dst_sweep.exe -- --adversary "${ADVERSARY_SEEDS:-50}" --domains 4
dune exec bin/litmus_sweep.exe -- \
  --differ-seeds "${LITMUS_SEEDS:-50}" \
  --litmus-seeds "${LITMUS_SEEDS:-50}" \
  --out "${LITMUS_OUT:-_litmus_reports}"
dune exec bin/litmus_sweep.exe -- --mutate --out "${LITMUS_OUT:-_litmus_reports}"

# ---- multicore smoke --------------------------------------------------
dune exec bin/linefs_sim.exe -- --file-mb 16 --instances 4 --domains 4

# Per-node sharded deployment: one scaled fig4-style cell, domains 1
# vs 4, output byte-identical (clocks, throughput, event counters).
dune exec bin/linefs_sim.exe -- --file-mb 16 --shard-deployment --domains 1 \
  > _shard_smoke_d1.txt
dune exec bin/linefs_sim.exe -- --file-mb 16 --shard-deployment --domains 4 \
  > _shard_smoke_d4.txt
cmp _shard_smoke_d1.txt _shard_smoke_d4.txt || {
  echo "FAIL: sharded deployment output differs between 1 and 4 domains"
  diff _shard_smoke_d1.txt _shard_smoke_d4.txt || true
  exit 1
}
rm -f _shard_smoke_d1.txt _shard_smoke_d4.txt
echo "sharded-deployment smoke: byte-identical at 1 and 4 domains"

dune exec bench/wallclock.exe -- \
  --domains "${SMOKE_DOMAINS:-4}" --no-domain-probe -o _ci_wallclock.json
