#!/bin/sh
# CI entry point: build everything and run the full test suite
# (unit + integration + qcheck properties + the DST fault sweep),
# then the standalone DST gate: a reduced seed sweep plus the four
# explicit failover scenarios, with a determinism check that fails
# the build on any fingerprint mismatch between identical runs;
# then the conformance/crash litmus sweep: differential checks of
# every backend against the model oracle plus faulted litmus runs,
# and the --mutate self-test that proves planted bugs are caught.
# The adversary sweep runs the Byzantine-fabric profile (duplication,
# reordering, corruption, torn oplog tails, bit-rot) over 50 seeds
# with its own determinism re-check.
# Finally the multicore smoke: the scaled figures executed over 4
# domains (plus a multi-instance linefs_sim run whose per-instance
# outputs must match byte-for-byte).  This checks correctness of the
# parallel windows, not speed — the events/s trajectory is bench.sh's
# job.  The fault-injection sweeps above stay single-domain on
# purpose: process-global fault hooks are not domain-safe (see
# lib/sim/sharded.mli).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force
dune exec bin/dst_sweep.exe -- "${DST_SEEDS:-12}"
dune exec bin/dst_sweep.exe -- --adversary "${ADVERSARY_SEEDS:-50}"
dune exec bin/litmus_sweep.exe -- \
  --differ-seeds "${LITMUS_SEEDS:-50}" \
  --litmus-seeds "${LITMUS_SEEDS:-50}" \
  --out "${LITMUS_OUT:-_litmus_reports}"
dune exec bin/litmus_sweep.exe -- --mutate --out "${LITMUS_OUT:-_litmus_reports}"

# ---- multicore smoke --------------------------------------------------
dune exec bin/linefs_sim.exe -- --file-mb 16 --instances 4 --domains 4
dune exec bench/wallclock.exe -- \
  --domains "${SMOKE_DOMAINS:-4}" --no-domain-probe -o _ci_wallclock.json
