#!/bin/sh
# CI entry point: build everything and run the full test suite
# (unit + integration + qcheck properties + the DST fault sweep),
# then the standalone DST gate: a reduced seed sweep plus the four
# explicit failover scenarios, with a determinism check that fails
# the build on any fingerprint mismatch between identical runs;
# then the conformance/crash litmus sweep: differential checks of
# every backend against the model oracle plus faulted litmus runs,
# and the --mutate self-test that proves planted bugs are caught.
# The adversary sweep runs the Byzantine-fabric profile (duplication,
# reordering, corruption, torn oplog tails, bit-rot) over 50 seeds
# with its own determinism re-check.
# Finally the multicore smoke: the scaled figures executed over 4
# domains (plus a multi-instance linefs_sim run whose per-instance
# outputs must match byte-for-byte, and a per-node sharded deployment
# whose output must be byte-identical at 1 and 4 domains), and the
# scale smoke: an 8-node rack of replica groups with cohort clients,
# byte-identical at 1 and 4 domains with the cross-shard message
# coalescer demonstrably batching.  These check correctness of the
# parallel windows, not speed — the events/s trajectory is bench.sh's
# job.  The committed BENCH_wallclock.json is validated up front: it
# must carry the harness's gates object with every gate evaluated and
# above its recorded floor.  The fault-injection sweeps run over 4
# domains too: the injection hook and observers are engine-local, so
# independent scenarios batch as parallel shards (dst_sweep
# cross-checks one batched fingerprint against a sequential run).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force
dune exec bin/dst_sweep.exe -- "${DST_SEEDS:-12}" --domains 4
dune exec bin/dst_sweep.exe -- --adversary "${ADVERSARY_SEEDS:-50}" --domains 4
dune exec bin/litmus_sweep.exe -- \
  --differ-seeds "${LITMUS_SEEDS:-50}" \
  --litmus-seeds "${LITMUS_SEEDS:-50}" \
  --out "${LITMUS_OUT:-_litmus_reports}"
dune exec bin/litmus_sweep.exe -- --mutate --out "${LITMUS_OUT:-_litmus_reports}"

# ---- committed bench JSON gate ----------------------------------------
# BENCH_wallclock.json is a committed artifact: refuse one produced by
# a smoke-mode run, with gates skipped, or with any gate below its
# floor.  The harness records exactly which gates it evaluated and at
# what (core-count-aware) floor, so this is a pure consistency check —
# no re-measurement.
grep -q '"gates"' BENCH_wallclock.json || {
  echo "FAIL: committed BENCH_wallclock.json has no gates object" \
       "(regenerate with scripts/bench.sh)"
  exit 1
}
grep -q '"mode": "smoke"' BENCH_wallclock.json && {
  echo "FAIL: committed BENCH_wallclock.json came from a smoke run"
  exit 1
}
grep -q '"evaluated": false' BENCH_wallclock.json && {
  echo "FAIL: committed BENCH_wallclock.json has skipped gates:"
  grep '"evaluated": false' BENCH_wallclock.json
  exit 1
}
grep -q '"pass": false' BENCH_wallclock.json && {
  echo "FAIL: committed BENCH_wallclock.json has gates below floor:"
  grep '"pass": false' BENCH_wallclock.json
  exit 1
}
echo "committed-bench gate: all gates evaluated and above floor"

# ---- multicore smoke --------------------------------------------------
dune exec bin/linefs_sim.exe -- --file-mb 16 --instances 4 --domains 4

# Per-node sharded deployment: one scaled fig4-style cell, domains 1
# vs 4, output byte-identical (clocks, throughput, event counters).
dune exec bin/linefs_sim.exe -- --file-mb 16 --shard-deployment --domains 1 \
  > _shard_smoke_d1.txt
dune exec bin/linefs_sim.exe -- --file-mb 16 --shard-deployment --domains 4 \
  > _shard_smoke_d4.txt
cmp _shard_smoke_d1.txt _shard_smoke_d4.txt || {
  echo "FAIL: sharded deployment output differs between 1 and 4 domains"
  diff _shard_smoke_d1.txt _shard_smoke_d4.txt || true
  exit 1
}
rm -f _shard_smoke_d1.txt _shard_smoke_d4.txt
echo "sharded-deployment smoke: byte-identical at 1 and 4 domains"

# ---- scale smoke ------------------------------------------------------
# Rack-scale path: an 8-node rack (2 replica groups of 4) driven by
# 2-user cohorts, domains 1 vs 4, stdout byte-identical.  The cohort
# round-robin also drives the cross-shard message coalescer with
# multi-message batches (batch-max >= 2 on stderr).
dune exec bin/linefs_sim.exe -- --nodes 8 --group-size 4 --cohort 2 \
  --file-mb 64 --domains 1 > _scale_smoke_d1.txt 2> _scale_smoke_d1.err
dune exec bin/linefs_sim.exe -- --nodes 8 --group-size 4 --cohort 2 \
  --file-mb 64 --domains 4 > _scale_smoke_d4.txt 2> _scale_smoke_d4.err
cmp _scale_smoke_d1.txt _scale_smoke_d4.txt || {
  echo "FAIL: rack output differs between 1 and 4 domains"
  diff _scale_smoke_d1.txt _scale_smoke_d4.txt || true
  exit 1
}
grep -q 'batch-max=\([2-9]\|[0-9][0-9]\)' _scale_smoke_d1.err || {
  echo "FAIL: scale smoke never coalesced a multi-message batch:"
  cat _scale_smoke_d1.err
  exit 1
}
rm -f _scale_smoke_d1.txt _scale_smoke_d4.txt \
      _scale_smoke_d1.err _scale_smoke_d4.err
echo "scale smoke: 8-node rack byte-identical at 1 and 4 domains," \
     "coalescing exercised"

dune exec bench/wallclock.exe -- \
  --domains "${SMOKE_DOMAINS:-4}" --no-domain-probe -o _ci_wallclock.json
rm -f _ci_wallclock.json
