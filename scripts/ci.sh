#!/bin/sh
# CI entry point: build everything and run the full test suite
# (unit + integration + qcheck properties + the DST fault sweep).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force
