open Sim
open Linefs

type group_result = {
  dir : string;
  elapsed : Time.t;
  totals : Cohort.stats;
}

(* The per-group cohort body: runs as a process on the group's primary
   (its base shard when the rack is sharded).  Round-robin over users —
   one IO each per round, the cohort's stand-in for [cohort]
   interleaved clients.  Each user writes a window of its own synthetic
   stream, so file content is a pure function of (group, user,
   offset). *)
let group_body ~rack ~grp ~cohort ~group_bytes ~io_bytes out () =
  let per_user = group_bytes / cohort in
  let cli = Rack.attach rack ~group:grp ~id:(grp + 1) in
  let coh = Cohort.create ~ops:(Libfs.ops cli) ~users:cohort () in
  let uops = Array.init cohort (Cohort.user_ops coh) in
  let dir = Rack.owned_dir rack ~group:grp ~salt:0 in
  uops.(0).Dfs_intf.mkdir dir;
  let t0 = Engine.now () in
  let fds =
    Array.init cohort (fun u ->
        uops.(u).Dfs_intf.create (Printf.sprintf "%s/u%d" dir u))
  in
  let streams =
    Array.init cohort (fun u ->
        Storage.Data.synthetic ~seed:((grp * 1009) + u) ~len:per_user)
  in
  for r = 0 to (per_user / io_bytes) - 1 do
    for u = 0 to cohort - 1 do
      uops.(u).Dfs_intf.append fds.(u)
        (Storage.Data.sub streams.(u) ~pos:(r * io_bytes) ~len:io_bytes)
    done
  done;
  Array.iteri
    (fun u fd ->
      uops.(u).Dfs_intf.fsync fd;
      uops.(u).Dfs_intf.close fd)
    fds;
  Deployment.flush_all (Rack.group rack grp);
  out.(grp) <-
    Some { dir; elapsed = Engine.now () - t0; totals = Cohort.totals coh }

let collector out () =
  Array.map
    (function
      | Some r -> r
      | None -> failwith "rack_cohort: a group's cohort did not finish")
    out

let spawn ~sh ~rack ~cohort ~group_bytes ~io_bytes () =
  let g = Rack.group_count rack in
  let out : group_result option array = Array.make g None in
  for grp = 0 to g - 1 do
    Sharded.spawn_root ~name:"rack.cohort" sh
      ~shard:(Rack.shard_of_group rack grp)
      (group_body ~rack ~grp ~cohort ~group_bytes ~io_bytes out)
  done;
  collector out

let spawn_on ~eng ~rack ~cohort ~group_bytes ~io_bytes () =
  let g = Rack.group_count rack in
  let out : group_result option array = Array.make g None in
  for grp = 0 to g - 1 do
    Engine.spawn_root ~name:"rack.cohort" eng
      (group_body ~rack ~grp ~cohort ~group_bytes ~io_bytes out)
  done;
  collector out
