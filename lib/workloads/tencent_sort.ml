open Sim
open Storage
open Linefs

type result = {
  elapsed : Time.t;
  partition_time : Time.t;
  sort_time : Time.t;
  records : int;
  output_bytes : int;
}

let key_bytes = 10
let partition_cpu_per_record = Time.ns 100
let sort_cpu_per_compare = Time.ns 50

let gen_records ~records ~record_bytes ~zero_ratio rng =
  Array.init records (fun _ ->
      let b = Bytes.create record_bytes in
      (* Keys stay uniformly random so range partitioning balances;
         only payloads carry the compressibility knob. *)
      for i = 0 to key_bytes - 1 do
        Bytes.set b i (Rng.byte rng)
      done;
      (* The modified gensort zeroes a contiguous region of each
         payload, so the compressible fraction forms runs. *)
      let payload = record_bytes - key_bytes in
      let zeroed = int_of_float (zero_ratio *. float_of_int payload) in
      for i = key_bytes to key_bytes + zeroed - 1 do
        Bytes.set b i '\000'
      done;
      for i = key_bytes + zeroed to record_bytes - 1 do
        Bytes.set b i (Rng.byte rng)
      done;
      b)

let range_of_record b ~sorters = Char.code (Bytes.get b 0) * sorters / 256

let temp_file w r = Printf.sprintf "/sort/tmp-p%d-r%d" w r
let out_file r = Printf.sprintf "/sort/out-%d" r

let join_workers n spawn_one =
  let live = ref n in
  let all_done = Ivar.create () in
  for i = 0 to n - 1 do
    spawn_one i (fun () ->
        decr live;
        if !live = 0 then Ivar.fill all_done ())
  done;
  Ivar.read all_done

let run ~(ops : Dfs_intf.ops) ~node ~records ?(record_bytes = 100)
    ?(partitions = 4) ?(sorters = 4) ~zero_ratio ~seed () =
  let rng = Rng.create seed in
  let input = gen_records ~records ~record_bytes ~zero_ratio rng in
  (match ops.Dfs_intf.file_size "/sort" with
  | Some _ -> ()
  | None -> ops.Dfs_intf.mkdir "/sort");
  let t0 = Engine.now () in
  (* ---- Phase 1: range partitioning ---- *)
  let per_worker = (records + partitions - 1) / partitions in
  join_workers partitions (fun w finished ->
      Engine.spawn ~name:(Printf.sprintf "tsort.part%d" w) (fun () ->
          let lo = w * per_worker in
          let hi = min records (lo + per_worker) in
          let buffers = Array.init sorters (fun _ -> Buffer.create 65536) in
          let fds =
            Array.init sorters (fun r -> ops.Dfs_intf.create (temp_file w r))
          in
          let flush r =
            if Buffer.length buffers.(r) > 0 then begin
              ops.Dfs_intf.append fds.(r)
                (Data.real (Buffer.to_bytes buffers.(r)));
              Buffer.clear buffers.(r)
            end
          in
          Hw.Cpu.run node.Hw.Node.host ((hi - lo) * partition_cpu_per_record);
          for i = lo to hi - 1 do
            let r = range_of_record input.(i) ~sorters in
            Buffer.add_bytes buffers.(r) input.(i);
            if Buffer.length buffers.(r) >= 1024 * 1024 then flush r
          done;
          Array.iteri (fun r _ -> flush r) buffers;
          Array.iter
            (fun fd ->
              ops.Dfs_intf.fsync fd;
              ops.Dfs_intf.close fd)
            fds;
          finished ()));
  let partition_time = Engine.now () - t0 in
  (* ---- Phase 2: merge + sort ---- *)
  let t1 = Engine.now () in
  let output_bytes = ref 0 in
  join_workers sorters (fun r finished ->
      Engine.spawn ~name:(Printf.sprintf "tsort.sort%d" r) (fun () ->
          (* Gather this range's records from every partition worker
             into one flat buffer; sorting then permutes an offset
             index instead of per-record byte copies, and keys are
             compared in place — the merge phase allocates O(n) words
             instead of O(n log n) key copies. *)
          let pieces = ref [] in
          let total = ref 0 in
          for w = 0 to partitions - 1 do
            let path = temp_file w r in
            match ops.Dfs_intf.file_size path with
            | Some size when size > 0 ->
                let fd = ops.Dfs_intf.open_file path in
                let data = ops.Dfs_intf.read fd ~pos:0 ~len:size in
                ops.Dfs_intf.close fd;
                let bytes = Data.to_bytes data in
                pieces := bytes :: !pieces;
                total := !total + Bytes.length bytes
            | _ -> ()
          done;
          let flat = Bytes.create !total in
          let off = ref !total in
          (* [pieces] is collected in reverse partition order; filling
             from the end restores it. *)
          List.iter
            (fun b ->
              off := !off - Bytes.length b;
              Bytes.blit b 0 flat !off (Bytes.length b))
            !pieces;
          let n = !total / record_bytes in
          let idx = Array.init n (fun i -> i * record_bytes) in
          (* Lexicographic 10-byte key compare, in place.  A while loop
             over local refs, not a local recursive function: the
             compiler keeps these in registers, where a `let rec`
             closure capturing [a]/[b] would be heap-allocated on every
             one of the n log n comparisons. *)
          let cmp_at a b =
            let i = ref 0 and r = ref 0 in
            while !r = 0 && !i < key_bytes do
              r :=
                Char.code (Bytes.unsafe_get flat (a + !i))
                - Char.code (Bytes.unsafe_get flat (b + !i));
              incr i
            done;
            !r
          in
          (* Real sort, plus the modelled CPU cost of n log n compares. *)
          Array.sort cmp_at idx;
          let log2n =
            let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
            go 1 (max 2 n)
          in
          Hw.Cpu.run node.Hw.Node.host (n * log2n * sort_cpu_per_compare);
          (* Write the sorted output. *)
          let fd = ops.Dfs_intf.create (out_file r) in
          let out = Bytes.create (n * record_bytes) in
          Array.iteri
            (fun i src -> Bytes.blit flat src out (i * record_bytes) record_bytes)
            idx;
          ops.Dfs_intf.append fd (Data.real out);
          ops.Dfs_intf.fsync fd;
          ops.Dfs_intf.close fd;
          output_bytes := !output_bytes + (n * record_bytes);
          (* Verify sortedness. *)
          for i = 1 to n - 1 do
            if cmp_at idx.(i - 1) idx.(i) > 0 then
              failwith "tencent_sort: output not sorted"
          done;
          finished ()));
  let sort_time = Engine.now () - t1 in
  if !output_bytes <> records * record_bytes then
    failwith "tencent_sort: lost records";
  {
    elapsed = Engine.now () - t0;
    partition_time;
    sort_time;
    records;
    output_bytes = !output_bytes;
  }
