open Sim
open Storage
open Linefs

type result = { ops_done : int; elapsed : Time.t; kops_per_sec : float }

(* Tiny payloads: the storm is about namespace churn, not bandwidth. *)
let payload_bytes = 512

let fname dir i = Printf.sprintf "%s/f%05d" dir i
let tmpname dir i = Printf.sprintf "%s/.tmp%05d" dir i

(* One gateway request cycle over the thread's file range. An NFS
   gateway translating stateless client requests makes a fresh open
   for almost every call, writes through small temp files, and renames
   them into place (the classic "write-new + rename" update). *)
let storm_flow (ops : Dfs_intf.ops) rng dir ~lo ~hi =
  let pick () = lo + Rng.int rng (hi - lo) in
  let count = ref 0 in
  let op () = incr count in
  (* LOOKUP+GETATTR: stat a few names, some of which never existed. *)
  for _ = 1 to 3 do
    let i = pick () in
    ignore (ops.Dfs_intf.file_size (fname dir i) : int option);
    op ()
  done;
  ignore (ops.Dfs_intf.file_size (fname dir (hi + 17)) : int option);
  op ();
  (* WRITE via temp + RENAME into place (atomic replace). *)
  let i = pick () in
  (try ops.Dfs_intf.unlink (tmpname dir i) with Dfs_intf.Fs_error _ -> ());
  let fd = ops.Dfs_intf.create (tmpname dir i) in
  op ();
  ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:payload_bytes);
  op ();
  ops.Dfs_intf.fsync fd;
  op ();
  ops.Dfs_intf.close fd;
  op ();
  ops.Dfs_intf.rename (tmpname dir i) (fname dir i);
  op ();
  (* READ: short-lived open, one small read, close. *)
  let j = pick () in
  (match ops.Dfs_intf.file_size (fname dir j) with
  | Some size when size > 0 ->
      let fd = ops.Dfs_intf.open_file (fname dir j) in
      op ();
      ignore (ops.Dfs_intf.read fd ~pos:0 ~len:payload_bytes : Data.t);
      op ();
      ops.Dfs_intf.close fd;
      op ()
  | _ -> ());
  (* REMOVE: occasionally delete an entry (a later cycle recreates it). *)
  if Rng.int rng 4 = 0 then begin
    let k = pick () in
    (try
       ops.Dfs_intf.unlink (fname dir k);
       op ()
     with Dfs_intf.Fs_error _ -> ())
  end;
  !count

let run ~(ops : Dfs_intf.ops) ?(files = 10_000) ?(threads = 16) ?ts ~duration
    ~seed () =
  let dir = "/metastorm" in
  (match ops.Dfs_intf.file_size dir with
  | Some _ -> ()
  | None -> ops.Dfs_intf.mkdir dir);
  (* Pre-allocate the working set (not timed). *)
  for i = 0 to files - 1 do
    let fd = ops.Dfs_intf.create (fname dir i) in
    ops.Dfs_intf.append fd (Data.synthetic ~seed:i ~len:payload_bytes);
    ops.Dfs_intf.close fd
  done;
  let t0 = Engine.now () in
  let deadline = t0 + duration in
  let total = ref 0 in
  let live = ref threads in
  let finished = Ivar.create () in
  let per_thread = files / threads in
  for th = 0 to threads - 1 do
    let thread_rng = Rng.create (seed + (th * 7919)) in
    let lo = th * per_thread and hi = (th + 1) * per_thread in
    Engine.spawn ~name:(Printf.sprintf "metastorm.t%d" th) (fun () ->
        while Engine.now () < deadline do
          let n = storm_flow ops thread_rng dir ~lo ~hi in
          total := !total + n;
          match ts with
          | Some series ->
              Stats.Timeseries.add series ~at:(Engine.now ()) (float_of_int n)
          | None -> ()
        done;
        decr live;
        if !live = 0 then Ivar.fill finished ())
  done;
  Ivar.read finished;
  let elapsed = Engine.now () - t0 in
  {
    ops_done = !total;
    elapsed;
    kops_per_sec = float_of_int !total /. Time.to_sec_f elapsed /. 1000.0;
  }
