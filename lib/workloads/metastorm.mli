(** Metadata storm: an NFS-gateway-style namespace churn workload.

    Each request cycle is dominated by metadata operations — lookups
    (stat), short-lived opens, write-new-temp-then-rename updates, and
    occasional unlinks — with tiny (512 B) payloads, so throughput is
    bounded by the metadata path rather than bandwidth.  This is the
    access pattern that makes DFS clients behind an NFS gateway
    metadata-bound: the gateway re-opens for nearly every stateless
    client call instead of caching handles.

    Threads work on disjoint file subsets and run until a deadline,
    like the filebench profiles. *)

open Sim

type result = {
  ops_done : int;  (** Primitive file operations completed. *)
  elapsed : Time.t;
  kops_per_sec : float;
}

val run :
  ops:Linefs.Dfs_intf.ops ->
  ?files:int ->
  ?threads:int ->
  ?ts:Stats.Timeseries.t ->
  duration:Time.t ->
  seed:int ->
  unit ->
  result
(** [files] defaults to a 10 K working set; [threads] to 16.  [ts]
    (optional) accumulates completed operations over time. *)
