(** Rack-scale cohort workload: one sequential-write cohort per replica
    group of a sharded {!Linefs.Rack}.

    Each group gets one LibFS client on its primary, wrapped in a
    {!Linefs.Cohort} of K users; the users write their own files (in a
    directory the group owns) round-robin, one IO per user per round —
    K interleaved clients driven by a single LibFS.  Content is a pure
    function of (group, user, offset), so runs are comparable across
    node counts, cohort sizes and domain counts. *)

open Sim
open Linefs

type group_result = {
  dir : string;  (** group-owned working directory *)
  elapsed : Time.t;  (** virtual time from first create to flush *)
  totals : Cohort.stats;
}

val spawn :
  sh:Sharded.t ->
  rack:Rack.t ->
  cohort:int ->
  group_bytes:int ->
  io_bytes:int ->
  unit ->
  unit ->
  group_result array
(** [spawn ~sh ~rack ~cohort ~group_bytes ~io_bytes () ] spawns one
    cohort writer per group on that group's base shard (call before
    [Sharded.run sh]) and returns a collector to call after the run.
    [group_bytes] is split evenly over the cohort's users. *)

val spawn_on :
  eng:Engine.t ->
  rack:Rack.t ->
  cohort:int ->
  group_bytes:int ->
  io_bytes:int ->
  unit ->
  unit ->
  group_result array
(** Same workload on an {e unsharded} rack: every group's cohort is a
    root process of the one engine [eng].  The sharded-vs-unsharded
    equivalence tests compare the two. *)
