(** Network fabric: ports connected through a switch.

    Each port has independent egress and ingress bandwidth (full
    duplex), so a chain-replication middle node can receive from its
    predecessor while transmitting to its successor at full rate.

    Simplification: a transfer's service time is dominated by the
    sender's egress share plus switch latency; receiver ingress is
    accounted (for bandwidth-over-time reports) but not a second
    serialization delay.  All evaluation topologies here have
    single-sender receivers, so ingress is never the bottleneck. *)

open Sim

type t
(** A switch. *)

type port

val create_switch : ?latency:Time.t -> unit -> t
(** [latency] is one-way port-to-port delay (default 1.5 us — RoCE). *)

val create_port : t -> bytes_per_sec:float -> port
(** Attach a port with symmetric per-direction bandwidth. *)

val send : src:port -> dst:port -> int -> unit
(** Move [n] bytes from [src] to [dst]; blocks for egress serialization
    plus switch latency. Raises [Invalid_argument] if the ports belong
    to different switches or [src == dst]. *)

val deliver : port -> int -> unit
(** Account [n] received bytes at the port without sender-side costs:
    the landing half of a transfer whose egress/switch share was
    already charged on another shard ({!Rdma.send_src}/[land_dst]). *)

val latency : t -> Time.t
val egress : port -> Bandwidth.t
val ingress : port -> Bandwidth.t
val bytes_sent : port -> int
val bytes_received : port -> int
