(** Mellanox BlueField SmartNIC model: a wimpy CPU pool, limited DRAM
    (bandwidth and capacity), attached to the node's network port on one
    side and the host's PCIe on the other.

    DRAM capacity accounting backs NICFS's replication flow control
    (§4 "Replication flow control"): allocations never block here;
    the file system layer polls {!mem_frac} against its watermarks. *)

open Sim

type t

val create : Config.t -> port:Netlink.port -> t

val cpu : t -> Cpu.t
val port : t -> Netlink.port

val mem_copy : t -> int -> unit
(** Charge NIC DRAM bandwidth for moving [n] bytes within NIC memory. *)

val mem_copy_time : t -> int -> Time.t

val alloc : t -> int -> unit
(** Account an allocation of NIC DRAM. *)

val free : t -> int -> unit

val reset_mem : t -> unit
(** Zero the allocation accounting — NIC DRAM is volatile, so a NICFS
    restart after a crash starts from an empty heap. *)

val mem_used : t -> int
val mem_capacity : t -> int

val mem_frac : t -> float
(** Fraction of NIC DRAM in use, 0.0-1.0. *)
