type t = {
  cpu : Cpu.t;
  mem : Bandwidth.t;
  capacity : int;
  mutable used : int;
  port : Netlink.port;
}

let create (cfg : Config.t) ~port =
  {
    cpu = Cpu.create ~speed:cfg.nic_speed ~cores:cfg.nic_cores ();
    mem = Bandwidth.create ~bytes_per_sec:cfg.nic_mem_bps ();
    capacity = cfg.nic_mem_capacity;
    used = 0;
    port;
  }

let cpu t = t.cpu
let port t = t.port
let mem_copy t n = Bandwidth.transfer t.mem n
let mem_copy_time t n = Bandwidth.time_for t.mem n

let alloc t n =
  assert (n >= 0);
  t.used <- t.used + n

let free t n =
  assert (n >= 0);
  t.used <- max 0 (t.used - n)

let reset_mem t = t.used <- 0
let mem_used t = t.used
let mem_capacity t = t.capacity
let mem_frac t = float_of_int t.used /. float_of_int t.capacity
