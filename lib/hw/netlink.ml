open Sim

type t = { lat : Time.t; id : int }

type port = {
  switch : t;
  egress : Bandwidth.t;
  ingress : Bandwidth.t;
  mutable received : int;
}

(* Atomic: deployments built concurrently on different domains must
   still get unique switch ids. *)
let switch_counter = Atomic.make 0

let create_switch ?(latency = Time.of_us_f 1.5) () =
  { lat = latency; id = Atomic.fetch_and_add switch_counter 1 + 1 }

let create_port sw ~bytes_per_sec =
  {
    switch = sw;
    egress = Bandwidth.create ~bytes_per_sec ();
    ingress = Bandwidth.create ~bytes_per_sec ();
    received = 0;
  }

let send ~src ~dst n =
  if src == dst then invalid_arg "Netlink.send: src and dst are the same port";
  if src.switch.id <> dst.switch.id then
    invalid_arg "Netlink.send: ports on different switches";
  Bandwidth.transfer src.egress n;
  Engine.sleep src.switch.lat;
  (* Ingress is accounted but not serialized (see interface note). *)
  dst.received <- dst.received + n

(* Receiver half of a split cross-shard transfer: account the bytes at
   the destination port without the sender-side costs (already paid on
   the sending shard by [Rdma.send_src]). *)
let deliver dst n = dst.received <- dst.received + n

let latency t = t.lat
let egress p = p.egress
let ingress p = p.ingress
let bytes_sent p = Bandwidth.total_bytes p.egress
let bytes_received p = p.received
