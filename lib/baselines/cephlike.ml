open Sim
open Storage
open Linefs

(* Calibrated so one busy client moves ~1.25 GB/s of 4 KB IOs at ~100%
   of a core, and the single-threaded storage daemon caps the cluster
   near 1.4-1.6 GB/s (Table 1's Ceph column). *)
let client_per_op = Time.ns 1200
let client_copy_bps = 2e9
let server_per_op = Time.us 2
let server_copy_bps = 5e9
let window = 64 (* in-flight writes per client *)

type smsg =
  | Io of { bytes : int; done_ : unit Ivar.t }
  | Meta of { op : Oplog.op; result : (unit, Fs_state.error) result Ivar.t }

type t = {
  client_node : Hw.Node.t;
  server_node : Hw.Node.t;
  replica_node : Hw.Node.t option;
  fs : Fs_state.t; (* authoritative state on the server *)
  client_acct : Stats.Busy.t;
  server_acct : Stats.Busy.t;
  prio : Hw.Cpu.prio;
  mutable server : (smsg, unit) Net.Rpc.t option;
  mutable replica : (smsg, unit) Net.Rpc.t option;
  mutable cls : client list;
}

and file = { fpath : string; inum : int; mutable append_pos : int }

and client = {
  sys : t;
  cid : int;
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  win : Semaphore.t;
  mutable inflight : int;
  drained : Cond.t;
}

let cpu_work bytes bps per_op =
  per_op + int_of_float (float_of_int bytes /. bps *. 1e9)

let server_handle t msg =
  match msg with
  | Io { bytes; done_ } ->
      Hw.Cpu.run ~prio:t.prio ~account:t.server_acct
        t.server_node.Hw.Node.host
        (cpu_work bytes server_copy_bps server_per_op);
      Hw.Pm.write t.server_node.Hw.Node.pm bytes;
      (* Replicate to the secondary daemon. *)
      (match t.replica with
      | Some rep ->
          Net.Rdma.move
            ~src:(Net.Loc.Host t.server_node)
            ~dst:(Net.Rpc.loc rep) bytes;
          Net.Rpc.call rep ~from:(Net.Loc.Host t.server_node)
            (Io { bytes; done_ = Ivar.create () })
      | None -> ());
      Ivar.fill done_ ()
  | Meta { op; result } ->
      Hw.Cpu.run ~prio:t.prio ~account:t.server_acct
        t.server_node.Hw.Node.host server_per_op;
      Ivar.fill result (Fs_state.apply t.fs op)

let replica_handle t msg =
  match msg with
  | Io { bytes; done_ } ->
      (match t.replica_node with
      | Some n ->
          Hw.Cpu.run ~prio:t.prio ~account:t.server_acct n.Hw.Node.host
            (cpu_work bytes server_copy_bps server_per_op);
          Hw.Pm.write n.Hw.Node.pm bytes
      | None -> ());
      Ivar.fill done_ ()
  | Meta { result; _ } -> Ivar.fill result (Ok ())

let create ?(cfg = Hw.Config.testbed_25gbe) ?(dfs_prio = Hw.Cpu.prio_normal)
    ~nodes () =
  if nodes < 2 then invalid_arg "Cephlike.create: need at least 2 nodes";
  let topo = Hw.Topology.create ~cfg ~nodes () in
  let t =
    {
      client_node = Hw.Topology.node topo 0;
      server_node = Hw.Topology.node topo 1;
      replica_node = (if nodes > 2 then Some (Hw.Topology.node topo 2) else None);
      fs = Fs_state.create ();
      client_acct = Stats.Busy.create ();
      server_acct = Stats.Busy.create ();
      prio = dfs_prio;
      server = None;
      replica = None;
      cls = [];
    }
  in
  (match t.replica_node with
  | Some n ->
      t.replica <-
        Some
          (Net.Rpc.create ~dispatch_cost:(Time.us 1) ~name:"ceph.replica"
             ~loc:(Net.Loc.Host n)
             ~kind:(Net.Rpc.Event { workers = 8; prio = dfs_prio })
             ~handler:(replica_handle t) ())
  | None -> ());
  t.server <-
    Some
      (Net.Rpc.create ~dispatch_cost:(Time.us 1) ~name:"ceph.osd"
         ~loc:(Net.Loc.Host t.server_node)
         ~kind:(Net.Rpc.Event { workers = 8; prio = dfs_prio })
         ~handler:(server_handle t) ());
  t

let server t =
  match t.server with Some s -> s | None -> failwith "cephlike: not started"

let client_cpu c work =
  Hw.Cpu.run ~prio:c.sys.prio ~account:c.sys.client_acct
    c.sys.client_node.Hw.Node.host work

let meta_rpc c op =
  client_cpu c client_per_op;
  let result = Ivar.create () in
  Net.Rpc.post (server c.sys) ~from:(Net.Loc.Host c.sys.client_node)
    (Meta { op; result });
  match Ivar.read result with
  | Ok () -> ()
  | Error e -> Dfs_intf.fail e (Format.asprintf "%a" Oplog.pp_op op)

let submit_write c bytes =
  (* Client-side kernel stack + copy. *)
  client_cpu c (cpu_work bytes client_copy_bps client_per_op);
  Semaphore.acquire c.win;
  c.inflight <- c.inflight + 1;
  Engine.spawn ~name:"ceph.io" (fun () ->
      let done_ = Ivar.create () in
      Net.Rdma.move
        ~src:(Net.Loc.Host c.sys.client_node)
        ~dst:(Net.Loc.Host c.sys.server_node)
        bytes;
      Net.Rpc.post (server c.sys) ~from:(Net.Loc.Host c.sys.client_node)
        (Io { bytes; done_ });
      Ivar.read done_;
      Semaphore.release c.win;
      c.inflight <- c.inflight - 1;
      if c.inflight = 0 then Cond.broadcast c.drained)

let drain c =
  while c.inflight > 0 do
    Cond.await c.drained
  done

let fail = Dfs_intf.fail

let alloc_fd c file =
  let fd = c.next_fd in
  c.next_fd <- c.next_fd + 1;
  Hashtbl.replace c.fds fd file;
  fd

let the_file c fd =
  match Hashtbl.find_opt c.fds fd with
  | Some f -> f
  | None -> fail Fs_state.Einval (Printf.sprintf "fd %d" fd)

let resolve_exn c path =
  match Fs_state.resolve c.sys.fs path with
  | Ok i -> i
  | Error e -> fail e path

let do_write c fd ~pos data =
  let f = the_file c fd in
  (* Record content on the server state (metadata kept consistent),
     then stream the bytes asynchronously. *)
  (match
     Fs_state.apply c.sys.fs
       (Oplog.Write { inum = f.inum; offset = pos; data })
   with
  | Ok () -> ()
  | Error e -> fail e f.fpath);
  submit_write c (Data.length data);
  let endpos = pos + Data.length data in
  if endpos > f.append_pos then f.append_pos <- endpos

let ops c =
  {
    Dfs_intf.sysname = "Ceph-like";
    create =
      (fun path ->
        let parent_path, name = Dfs_intf.split_path path in
        let parent = resolve_exn c parent_path in
        let inum = Fs_state.alloc_inum c.sys.fs in
        meta_rpc c (Oplog.Create { parent; name; inum; dir = false });
        alloc_fd c { fpath = path; inum; append_pos = 0 });
    open_file =
      (fun path ->
        client_cpu c client_per_op;
        (* One metadata round trip to the server. *)
        let inum = resolve_exn c path in
        (* Same open permission check as LineFS and Assise (with the
           default rw mode it always passes; the conformance matrix
           still demands the same code on the same denial). *)
        if
          not
            (Fs_state.writable c.sys.fs inum
            || Fs_state.readable c.sys.fs inum)
        then fail Fs_state.Eacces path;
        Net.Rdma.move
          ~src:(Net.Loc.Host c.sys.client_node)
          ~dst:(Net.Loc.Host c.sys.server_node)
          64;
        Net.Rdma.move
          ~src:(Net.Loc.Host c.sys.server_node)
          ~dst:(Net.Loc.Host c.sys.client_node)
          64;
        alloc_fd c
          { fpath = path; inum; append_pos = Fs_state.file_size c.sys.fs inum });
    close = (fun fd -> Hashtbl.remove c.fds fd);
    write = (fun fd ~pos data -> do_write c fd ~pos data);
    append =
      (fun fd data ->
        let f = the_file c fd in
        do_write c fd ~pos:f.append_pos data);
    read =
      (fun fd ~pos ~len ->
        let f = the_file c fd in
        client_cpu c client_per_op;
        (* Request round trip; validation happens at the server. *)
        Net.Rdma.move
          ~src:(Net.Loc.Host c.sys.client_node)
          ~dst:(Net.Loc.Host c.sys.server_node)
          64;
        match Fs_state.read c.sys.fs ~inum:f.inum ~pos ~len with
        | Error e -> fail e f.fpath
        | Ok d ->
            (* Bill PM, wire and client copy for the bytes actually
               returned (the EOF-clamped count), never the asked-for
               [len] — reads past EOF move no data. *)
            let actual = Data.length d in
            if actual > 0 then begin
              Hw.Pm.read c.sys.server_node.Hw.Node.pm actual;
              Net.Rdma.move
                ~src:(Net.Loc.Host c.sys.server_node)
                ~dst:(Net.Loc.Host c.sys.client_node)
                actual;
              client_cpu c (cpu_work actual client_copy_bps 0)
            end;
            d);
    fsync =
      (fun fd ->
        (* Unknown fds are Einval everywhere (LineFS checks first). *)
        ignore (the_file c fd : file);
        drain c);
    mkdir =
      (fun path ->
        let parent_path, name = Dfs_intf.split_path path in
        let parent = resolve_exn c parent_path in
        let inum = Fs_state.alloc_inum c.sys.fs in
        meta_rpc c (Oplog.Create { parent; name; inum; dir = true }));
    unlink =
      (fun path ->
        let parent_path, name = Dfs_intf.split_path path in
        let parent = resolve_exn c parent_path in
        let inum = resolve_exn c path in
        meta_rpc c (Oplog.Unlink { parent; name; inum }));
    rename =
      (fun src dst ->
        let src_parent_path, src_name = Dfs_intf.split_path src in
        let dst_parent_path, dst_name = Dfs_intf.split_path dst in
        let src_parent = resolve_exn c src_parent_path in
        let dst_parent = resolve_exn c dst_parent_path in
        let inum = resolve_exn c src in
        meta_rpc c
          (Oplog.Rename { src_parent; src_name; dst_parent; dst_name; inum }));
    file_size =
      (fun path ->
        match Fs_state.resolve c.sys.fs path with
        | Ok inum -> Some (Fs_state.file_size c.sys.fs inum)
        | Error _ -> None);
  }

let add_client t ~id =
  let c =
    {
      sys = t;
      cid = id;
      fds = Hashtbl.create 16;
      next_fd = 3;
      win = Semaphore.create window;
      inflight = 0;
      drained = Cond.create ();
    }
  in
  t.cls <- c :: t.cls;
  c

let flush_all t = List.iter drain t.cls
let _ = fun (c : client) -> c.cid

let client_host_cpu t = t.client_acct
let server_cpu t = t.server_acct
