open Sim
open Storage
open Linefs

type variant = Pessimistic | Bg_repl | Hyperloop

let variant_name = function
  | Pessimistic -> "Assise"
  | Bg_repl -> "Assise-BgRepl"
  | Hyperloop -> "Assise+Hyperloop"

(* One replication batch travelling down the chain. *)
type repl_msg = {
  rbytes : int;
  hop : int; (* index of the receiving node *)
  acks : int ref;
  done_ : unit Ivar.t;
}

type node_rt = {
  node : Hw.Node.t;
  fs : Fs_state.t;
  acct : Stats.Busy.t;
  mutable server : (repl_msg, unit) Net.Rpc.t option;
}

type file = { fpath : string; inum : int; mutable append_pos : int }

type client = {
  sys : t;
  cid : int;
  lg : Oplog.Log.t;
  pending : (int, int Extent_map.t) Hashtbl.t;
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  mutable next_seq : int;
  mutable digested_seq : int;
  mutable replicated_seq : int;
  mutable bg_enqueued_seq : int;
  mutable bg_enqueued_bytes : int;
  mutable logged_bytes : int; (* cumulative bytes ever logged *)
  mutable digested_bytes : int; (* cumulative bytes digested *)
  mutable shipped_bytes : int; (* cumulative bytes replicated *)
  ship_lock : Semaphore.t;
  mutable bg_mark : int; (* logged_bytes already enqueued for bg repl *)
  repl_progress : Cond.t;
  log_space : Cond.t;
  digest_request : Cond.t;
  digest_done : Cond.t;
  bg_queue : (int * int * int) Mailbox.t; (* (first_seq, last_seq, bytes) *)
  completed_bg : (int, int) Hashtbl.t; (* first_seq -> last_seq *)
  mutable n_ops : int;
  mutable n_written : int;
  mutable n_read : int;
  mutable stopping : bool;
  wlock : Semaphore.t; (* serializes log appends across client threads *)
  tasks : (string, Hw.Cpu.task) Hashtbl.t; (* per-thread CPU contexts *)
}

and t = {
  prm : Params.t;
  var : variant;
  rts : node_rt array;
  prio : Hw.Cpu.prio;
  mutable cls : client list;
  (* Hyperloop verb-group pool, replenished by a host thread. *)
  mutable verbs : int;
  verb_cond : Cond.t;
  mutable n_verb_stalls : int;
  mutable replenisher : bool;
  mutable wire : int; (* bytes the primary shipped *)
  (* Per-node shard transport (reusing the NICFS record): set when the
     deployment is partitioned one node per {!Sim.Sharded} shard. *)
  mutable xp : Nicfs.xport option;
}

let bg_threads = 3
let verb_group = 256
let verb_low_mark = 1 (* re-post only when exhausted: the paper's 99.9p stall *)
let verb_post_work = Time.us 50

let variant t = t.var
let node t i = t.rts.(i).node
let primary_fs t = t.rts.(0).fs
let dfs_host_cpu t ~node = t.rts.(node).acct
let verb_stalls t = t.n_verb_stalls
let replication_wire_bytes t = t.wire

let total_host_dfs_cpu t =
  Array.fold_left (fun acc rt -> acc + Stats.Busy.busy_time rt.acct) 0 t.rts

let cpu t rt work = Hw.Cpu.run ~prio:t.prio ~account:rt.acct rt.node.Hw.Node.host work

(* Busy-poll while [f] runs: a host core spins (in 100 us slices) until
   the blocking operation completes — how Assise waits for RDMA
   completions. *)
let busy_wait t rt f =
  let finished = ref false in
  Engine.spawn ~name:"assise.poller" (fun () ->
      let tk = Hw.Cpu.task ~prio:t.prio ~account:rt.acct rt.node.Hw.Node.host in
      while not !finished do
        Hw.Cpu.task_run tk (Time.us 100)
      done;
      Hw.Cpu.task_release tk);
  let r = f () in
  finished := true;
  r

(* ------------------------------------------------------------------ *)
(* Chain replication                                                   *)
(* ------------------------------------------------------------------ *)

let server rt =
  match rt.server with Some s -> s | None -> failwith "assise: not started"

(* The shard transport for traffic between nodes [i] and [j], when the
   two live on different shards ([None]: plain local path). *)
let remote t i j =
  match t.xp with
  | None -> None
  | Some xp ->
      if
        xp.Nicfs.xp_shard_of t.rts.(i).node.Hw.Node.id
        <> xp.Nicfs.xp_shard_of t.rts.(j).node.Hw.Node.id
      then Some xp
      else None

(* Forward a batch from node [hop] to node [hop+1].  Across shards the
   transfer splits: the sender halves of the payload and notification
   frame here (still busy-polled by the SharedFS variants), the landing
   halves and the RPC enqueue on the successor's shard. *)
let forward t ~from_hop msg =
  let src = t.rts.(from_hop) and dst = t.rts.(from_hop + 1) in
  match remote t from_hop (from_hop + 1) with
  | Some xp ->
      let dst_loc = Net.Loc.Host dst.node in
      let send_half () =
        Net.Rdma.send_src ~src:(Net.Loc.Host src.node) msg.rbytes;
        Net.Rdma.send_src ~src:(Net.Loc.Host src.node) Net.Rpc.msg_bytes
      in
      (match t.var with
      | Pessimistic | Bg_repl -> busy_wait t src send_half
      | Hyperloop -> send_half ());
      if from_hop = 0 then t.wire <- t.wire + msg.rbytes;
      xp.Nicfs.xp_send ~src_node:src.node.Hw.Node.id
        ~dst_node:dst.node.Hw.Node.id
        ~delay:(Net.Rdma.flight ~dst:dst_loc) ~name:"assise.repl-ship"
        (fun () ->
          Net.Rdma.land_dst ~dst_medium:`Pm ~dst:dst_loc msg.rbytes;
          Net.Rdma.land_dst ~dst:dst_loc Net.Rpc.msg_bytes;
          Net.Rpc.deliver (server dst) { msg with hop = from_hop + 1 })
  | None ->
      let move () =
        Net.Rdma.move ~dst_medium:`Pm
          ~src:(Net.Loc.Host src.node)
          ~dst:(Net.Loc.Host dst.node)
          msg.rbytes
      in
      (match t.var with
      | Pessimistic | Bg_repl ->
          (* The sender's SharedFS posts the WRITE and polls completion. *)
          busy_wait t src move
      | Hyperloop ->
          (* NIC-driven chained WRITE: no host CPU at either end. *)
          move ());
      if from_hop = 0 then t.wire <- t.wire + msg.rbytes;
      Net.Rpc.post (server dst) ~from:(Net.Loc.Host src.node)
        { msg with hop = from_hop + 1 }

(* Acknowledge one replica's persistence of [msg].  The ack set and
   completion ivar are primary-shard state: when this replica lives on
   another shard, the decrement is routed home through the declared
   edge (at edge lookahead — the unsharded model's ack is an implicit
   hardware completion with no modeled frame, so no wire is charged). *)
let ack_origin t ~hop msg =
  let ack () =
    decr msg.acks;
    if !(msg.acks) <= 0 && not (Ivar.is_filled msg.done_) then
      Ivar.fill msg.done_ ()
  in
  match remote t hop 0 with
  | Some xp ->
      xp.Nicfs.xp_send ~src_node:t.rts.(hop).node.Hw.Node.id
        ~dst_node:t.rts.(0).node.Hw.Node.id ~delay:0 ~name:"assise.repl-ack"
        ack
  | None -> ack ()

(* Replica-side handling of an incoming batch. The data is already
   persistent in this node's PM log (the sender's RDMA WRITE targeted
   PM), so the ack can go out immediately; forwarding continues the
   chain; digestion into local public PM runs in the background with
   host cores (the replica CPU load §2.1 measures). *)
let handle_repl t rt msg =
  if msg.hop + 1 < Array.length t.rts then
    Engine.spawn ~name:"assise.forward" (fun () ->
        forward t ~from_hop:msg.hop msg);
  ack_origin t ~hop:msg.hop msg;
  match t.var with
  | Pessimistic | Bg_repl ->
      Engine.spawn ~name:"assise.replica-digest" (fun () ->
          cpu t rt (Hw.Node.copy_work rt.node msg.rbytes);
          Hw.Pm.read rt.node.Hw.Node.pm msg.rbytes;
          Hw.Pm.write rt.node.Hw.Node.pm msg.rbytes)
  | Hyperloop ->
      (* Hyperloop replicas are fully passive for replication; their
         SharedFS still digests in the background. *)
      Engine.spawn ~name:"assise.replica-digest" (fun () ->
          cpu t rt (Hw.Node.copy_work rt.node msg.rbytes);
          Hw.Pm.read rt.node.Hw.Node.pm msg.rbytes;
          Hw.Pm.write rt.node.Hw.Node.pm msg.rbytes)

(* Hyperloop verb accounting: consume one pre-posted verb group per
   batch; a host thread replenishes groups and can be starved by CPU
   contention. *)
let rec take_verb t =
  if t.verbs > 0 then t.verbs <- t.verbs - 1
  else begin
    t.n_verb_stalls <- t.n_verb_stalls + 1;
    Cond.await t.verb_cond;
    take_verb t
  end

let start_replenisher t =
  if not t.replenisher then begin
    t.replenisher <- true;
    Engine.spawn ~name:"hyperloop.post" (fun () ->
        while t.replenisher do
          if t.verbs < verb_low_mark then begin
            (* Posting verbs needs host CPU; contention delays it. *)
            cpu t t.rts.(0) verb_post_work;
            t.verbs <- t.verbs + verb_group;
            Cond.broadcast t.verb_cond
          end
          else ignore (Cond.await_timeout t.verb_cond (Time.ms 1) : bool)
        done)
  end

(* Ship [bytes] down the chain and wait for all acks. Runs in the
   caller's process. *)
let replicate_batch t ~bytes =
  let n_replicas = Array.length t.rts - 1 in
  if n_replicas > 0 && bytes > 0 then begin
    match t.var with
    | Pessimistic | Bg_repl ->
        let msg =
          {
            rbytes = bytes;
            hop = 0;
            acks = ref n_replicas;
            done_ = Ivar.create ();
          }
        in
        busy_wait t t.rts.(0) (fun () ->
            forward t ~from_hop:0 msg;
            Ivar.read msg.done_)
    | Hyperloop -> (
        (* NIC-chained WAIT/WRITE verbs: no host CPU anywhere on the
           chain. Each hop's WRITE lands directly in the next PM log
           and triggers the pre-posted forward. *)
        take_verb t;
        match t.xp with
        | Some xp ->
            (* Hop-by-hop relay: each hop pays its sender half on its
               own shard and the landing closure continues the chain on
               the successor's shard; the final hardware ack is routed
               back to the primary, which blocks on the completion
               ivar exactly as it blocked on the synchronous chain
               walk in the single-engine model. *)
            let completion = Ivar.create () in
            let rec hop_ship hop =
              let src = t.rts.(hop) and dst = t.rts.(hop + 1) in
              let dst_loc = Net.Loc.Host dst.node in
              Net.Rdma.send_src ~src:(Net.Loc.Host src.node) bytes;
              if hop = 0 then t.wire <- t.wire + bytes;
              xp.Nicfs.xp_send ~src_node:src.node.Hw.Node.id
                ~dst_node:dst.node.Hw.Node.id
                ~delay:(Net.Rdma.flight ~dst:dst_loc)
                ~name:"hyperloop.ship" (fun () ->
                  Net.Rdma.land_dst ~dst_medium:`Pm ~dst:dst_loc bytes;
                  (* Replica SharedFS digests in the background. *)
                  Engine.spawn ~name:"hyperloop.replica-digest" (fun () ->
                      cpu t dst (Hw.Node.copy_work dst.node bytes);
                      Hw.Pm.read dst.node.Hw.Node.pm bytes;
                      Hw.Pm.write dst.node.Hw.Node.pm bytes);
                  if hop + 1 < n_replicas then hop_ship (hop + 1)
                  else begin
                    (* Hardware ack back to the primary NIC. *)
                    let prim_loc = Net.Loc.Host t.rts.(0).node in
                    Net.Rdma.send_src ~src:(Net.Loc.Host dst.node) 64;
                    xp.Nicfs.xp_send ~src_node:dst.node.Hw.Node.id
                      ~dst_node:t.rts.(0).node.Hw.Node.id
                      ~delay:(Net.Rdma.flight ~dst:prim_loc)
                      ~name:"hyperloop.ack" (fun () ->
                        Net.Rdma.land_dst ~dst:prim_loc 64;
                        Ivar.fill completion ())
                  end)
            in
            hop_ship 0;
            Ivar.read completion;
            (* Completion wake-up: one dispatch on the (primary) host. *)
            cpu t t.rts.(0) (Time.us 5)
        | None ->
            for hop = 0 to n_replicas - 1 do
              let src = t.rts.(hop) and dst = t.rts.(hop + 1) in
              Net.Rdma.move ~dst_medium:`Pm
                ~src:(Net.Loc.Host src.node)
                ~dst:(Net.Loc.Host dst.node)
                bytes;
              if hop = 0 then t.wire <- t.wire + bytes;
              (* Replica SharedFS digests in the background as usual. *)
              Engine.spawn ~name:"hyperloop.replica-digest" (fun () ->
                  cpu t dst (Hw.Node.copy_work dst.node bytes);
                  Hw.Pm.read dst.node.Hw.Node.pm bytes;
                  Hw.Pm.write dst.node.Hw.Node.pm bytes)
            done;
            (* Hardware ack back to the primary NIC. *)
            Net.Rdma.move
              ~src:(Net.Loc.Host t.rts.(n_replicas).node)
              ~dst:(Net.Loc.Host t.rts.(0).node)
              64;
            (* Completion wake-up: one dispatch on the (primary) host. *)
            cpu t t.rts.(0) (Time.us 5))
  end

(* ------------------------------------------------------------------ *)
(* SharedFS digestion (publication with host cores)                    *)
(* ------------------------------------------------------------------ *)

(* Assise reclaims log entries once they are digested into local
   public PM; replication at fsync ships from the digested state, so
   it does not pin the log. *)
let reclaim c =
  let safe = c.digested_seq in
  if safe > 0 then begin
    ignore (Oplog.Log.reclaim_upto c.lg ~seq:safe : int);
    Hashtbl.iter
      (fun _ m -> Extent_map.remove_if m (fun seq -> seq <= safe))
      c.pending;
    Cond.broadcast c.log_space
  end

(* Ship replication batches until the cumulative shipped counter
   reaches [target] bytes; serialized per client so the digester and
   fsync paths never double-ship. *)
let ship_bytes t c ~target =
  Semaphore.with_permit c.ship_lock (fun () ->
      while c.shipped_bytes < target do
        let batch =
          min t.prm.Params.chunk_bytes (target - c.shipped_bytes)
        in
        replicate_batch t ~bytes:batch;
        c.shipped_bytes <- c.shipped_bytes + batch
      done)

let digest_batch t c ~upto =
  let rt = t.rts.(0) in
  let entries =
    Oplog.Log.entries_from c.lg ~seq:(c.digested_seq + 1) ~max_bytes:max_int
  in
  let entries =
    List.filter (fun (e : Oplog.entry) -> e.Oplog.seq <= upto) entries
  in
  match entries with
  | [] -> ()
  | _ ->
      let bytes = List.fold_left (fun n e -> n + Oplog.size e) 0 entries in
      (* Host cores copy log -> public PM and rebuild indexes. *)
      cpu t rt (Hw.Node.copy_work rt.node bytes + List.length entries * Time.ns 300);
      Hw.Pm.read rt.node.Hw.Node.pm bytes;
      Hw.Pm.write rt.node.Hw.Node.pm bytes;
      c.digested_seq <- upto;
      c.digested_bytes <- c.digested_bytes + bytes;
      (* Digested data is safe in public PM: reclaim the log right
         away, then chain-ship the digested range (Bg_repl's dedicated
         threads handle shipping instead). *)
      reclaim c;
      Cond.broadcast c.digest_done;
      (match t.var with
      | Pessimistic | Hyperloop -> ship_bytes t c ~target:c.digested_bytes
      | Bg_repl -> ())

let digest_threshold = 4 (* digest when the log is 1/4 full *)

let start_digester t c =
  Engine.spawn ~name:(Printf.sprintf "assise.digest.c%d" c.cid) (fun () ->
      while not c.stopping do
        let used = Oplog.Log.used_bytes c.lg in
        let undigested = Oplog.Log.last_seq c.lg > c.digested_seq in
        if undigested && used >= Oplog.Log.capacity c.lg / digest_threshold
        then digest_batch t c ~upto:(Oplog.Log.last_seq c.lg)
        else
          (* Nothing (new) to digest: park until the next signal. *)
          Cond.await c.digest_request
      done)

(* ------------------------------------------------------------------ *)
(* Background replication (Assise-BgRepl)                              *)
(* ------------------------------------------------------------------ *)

let mark_bg_done c ~first ~last =
  Hashtbl.replace c.completed_bg first last;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt c.completed_bg (c.replicated_seq + 1) with
    | Some upto ->
        Hashtbl.remove c.completed_bg (c.replicated_seq + 1);
        c.replicated_seq <- upto
    | None -> continue := false
  done;
  Cond.broadcast c.repl_progress

let start_bg_workers t c =
  for i = 1 to bg_threads do
    Engine.spawn ~name:(Printf.sprintf "assise.bg%d.c%d" i c.cid) (fun () ->
        let rec loop () =
          let first, last, bytes = Mailbox.recv c.bg_queue in
          if bytes > 0 then begin
            replicate_batch t ~bytes;
            c.shipped_bytes <- c.shipped_bytes + bytes;
            mark_bg_done c ~first ~last
          end;
          loop ()
        in
        loop ())
  done

let bg_enqueue c ~upto =
  if upto > c.bg_enqueued_seq then begin
    Mailbox.send c.bg_queue
      (c.bg_enqueued_seq + 1, upto, c.logged_bytes - c.bg_mark);
    c.bg_enqueued_seq <- upto;
    c.bg_mark <- c.logged_bytes;
    c.bg_enqueued_bytes <- 0
  end

(* ------------------------------------------------------------------ *)
(* Cluster construction                                                *)
(* ------------------------------------------------------------------ *)

let create ?(cfg = Hw.Config.testbed_25gbe) ?(params = Params.default)
    ?(variant = Pessimistic) ?(dfs_prio = Hw.Cpu.prio_normal) ?sharding
    ~nodes () =
  let topo = Hw.Topology.create ~cfg ~nodes () in
  let rts =
    Array.map
      (fun node ->
        {
          node;
          fs = Fs_state.create ();
          acct = Stats.Busy.create ();
          server = None;
        })
      topo.Hw.Topology.nodes
  in
  let t =
    {
      prm = params;
      var = variant;
      rts;
      prio = dfs_prio;
      cls = [];
      verbs = verb_group;
      verb_cond = Cond.create ();
      n_verb_stalls = 0;
      replenisher = false;
      wire = 0;
      xp = None;
    }
  in
  let make_server i rt =
    Net.Rpc.create
      ~name:(Printf.sprintf "assise%d.repl" i)
      ~loc:(Net.Loc.Host rt.node)
      ~kind:(Net.Rpc.Event { workers = 4; prio = dfs_prio })
      ~handler:(fun msg -> handle_repl t rt msg)
      ()
  in
  (match sharding with
  | None ->
      Array.iteri
        (fun i rt -> if i > 0 then rt.server <- Some (make_server i rt))
        rts;
      if variant = Hyperloop then start_replenisher t
  | Some (sh, base) ->
      (* Per-node partitioning: node [i] lives on shard [base + i].
         Server creation spawns workers, so it boots as a t = 0 root
         process on the owning shard; the replenisher (primary-host
         thread) boots on the primary's shard. *)
      Array.iteri
        (fun i rt ->
          if i > 0 then
            Sim.Sharded.spawn_root ~name:"assise.boot" sh ~shard:(base + i)
              (fun () -> rt.server <- Some (make_server i rt)))
        rts;
      if variant = Hyperloop then
        Sim.Sharded.spawn_root ~name:"assise.boot" sh ~shard:base (fun () ->
            start_replenisher t);
      for i = 0 to nodes - 1 do
        ignore
          (Sim.Engine.run_until (Sim.Sharded.engine sh (base + i)) ~bound:1
            : Time.t option)
      done;
      (* Fabric-latency lookahead on every cross-node edge, as in
         [Linefs.Deployment]. *)
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if i <> j then
            Sim.Sharded.connect ~lookahead:cfg.Hw.Config.net_latency sh
              ~src:(base + i) ~dst:(base + j)
        done
      done;
      t.xp <-
        Some
          {
            Nicfs.xp_shard_of = (fun node_id -> base + node_id);
            xp_send =
              (fun ~src_node ~dst_node ~delay ~name fn ->
                Sim.Sharded.send sh ~src:(base + src_node)
                  ~dst:(base + dst_node) ~delay ~name fn);
          });
  t

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let fail = Dfs_intf.fail
let prim c = c.sys.rts.(0)
let cfs c = (prim c).fs

(* The calling thread's sticky CPU context (see Libfs.ctask). *)
let ctask c =
  let name = Engine.process_name () in
  match Hashtbl.find_opt c.tasks name with
  | Some tk -> tk
  | None ->
      let rt = prim c in
      let tk =
        Hw.Cpu.task ~prio:c.sys.prio ~account:rt.acct rt.node.Hw.Node.host
      in
      Hashtbl.add c.tasks name tk;
      tk

let client_cpu c work = Hw.Cpu.task_run (ctask c) work
let client_cpu_release c = Hw.Cpu.task_release (ctask c)

let resolve_exn c path =
  match Fs_state.resolve (cfs c) path with
  | Ok i -> i
  | Error e -> fail e path

(* Synchronously replicate everything up to [upto] (the fsync path). *)
let ensure_replicated t c ~upto =
  match t.var with
  | Pessimistic | Hyperloop ->
      ship_bytes t c ~target:c.logged_bytes;
      c.replicated_seq <- max c.replicated_seq upto;
      reclaim c
  | Bg_repl ->
      if c.bg_mark < c.logged_bytes then begin
        Mailbox.send c.bg_queue
          (c.bg_enqueued_seq + 1, upto, c.logged_bytes - c.bg_mark);
        c.bg_enqueued_seq <- max c.bg_enqueued_seq upto;
        c.bg_mark <- c.logged_bytes
      end;
      while c.replicated_seq < upto do
        Cond.await c.repl_progress
      done

let append_op_locked c (op : Oplog.op) =
  let t = c.sys in
  (match Fs_state.validate (cfs c) op with
  | Ok () -> ()
  | Error e -> fail e (Format.asprintf "%a" Oplog.pp_op op));
  let entry = Oplog.make ~seq:c.next_seq ~client:c.cid op in
  c.next_seq <- c.next_seq + 1;
  let size = Oplog.size entry in
  client_cpu c (t.prm.Params.fs_op_cost + Hw.Node.copy_work (prim c).node size);
  Hw.Pm.write (prim c).node.Hw.Node.pm size;
  let rec persist () =
    match Oplog.Log.append c.lg entry with
    | Ok () -> ()
    | Error `Full ->
        (* Head-of-line blocking: digestion must free log space. *)
        Cond.signal c.digest_request;
        client_cpu_release c;
        Cond.await c.log_space;
        persist ()
  in
  persist ();
  c.logged_bytes <- c.logged_bytes + size;
  (match Fs_state.apply (cfs c) op with
  | Ok () -> ()
  | Error e -> fail e "apply after validate");
  (match op with
  | Oplog.Write { inum; offset; data } ->
      let m =
        match Hashtbl.find_opt c.pending inum with
        | Some m -> m
        | None ->
            let m = Extent_map.create () in
            Hashtbl.add c.pending inum m;
            m
      in
      Extent_map.insert m ~at:offset data entry.Oplog.seq
  | Oplog.Unlink { inum; _ } -> Hashtbl.remove c.pending inum
  | Oplog.Create _ | Oplog.Rename _ | Oplog.Truncate _ -> ());
  (* Wake digestion when the log fills up. *)
  if Oplog.Log.used_bytes c.lg >= Oplog.Log.capacity c.lg / digest_threshold
  then Cond.signal c.digest_request;
  (* BgRepl: proactively queue full chunks for replication. *)
  if t.var = Bg_repl then begin
    c.bg_enqueued_bytes <- c.bg_enqueued_bytes + size;
    if c.bg_enqueued_bytes >= t.prm.Params.chunk_bytes then
      bg_enqueue c ~upto:(c.next_seq - 1)
  end

let append_op c (op : Oplog.op) =
  if Semaphore.available c.wlock = 0 then client_cpu_release c;
  Semaphore.with_permit c.wlock (fun () -> append_op_locked c op)

let alloc_fd c file =
  let fd = c.next_fd in
  c.next_fd <- c.next_fd + 1;
  Hashtbl.replace c.fds fd file;
  fd

let the_file c fd =
  match Hashtbl.find_opt c.fds fd with
  | Some f -> f
  | None -> fail Fs_state.Einval (Printf.sprintf "fd %d" fd)

let do_create c path =
  c.n_ops <- c.n_ops + 1;
  client_cpu c c.sys.prm.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn c parent_path in
  let inum = Fs_state.alloc_inum (cfs c) in
  append_op c (Oplog.Create { parent; name; inum; dir = false });
  alloc_fd c { fpath = path; inum; append_pos = 0 }

let do_open c path =
  c.n_ops <- c.n_ops + 1;
  (* Host-local permission check: much cheaper than LineFS's NIC RPC. *)
  client_cpu c c.sys.prm.Params.fs_op_cost;
  let inum = resolve_exn c path in
  if not (Fs_state.writable (cfs c) inum || Fs_state.readable (cfs c) inum)
  then fail Fs_state.Eacces path;
  alloc_fd c { fpath = path; inum; append_pos = Fs_state.file_size (cfs c) inum }

let do_write c fd ~pos data =
  c.n_ops <- c.n_ops + 1;
  let f = the_file c fd in
  append_op c (Oplog.Write { inum = f.inum; offset = pos; data });
  let endpos = pos + Data.length data in
  if endpos > f.append_pos then f.append_pos <- endpos;
  c.n_written <- c.n_written + Data.length data

let do_read c fd ~pos ~len =
  c.n_ops <- c.n_ops + 1;
  let f = the_file c fd in
  let t = c.sys in
  client_cpu c t.prm.Params.fs_op_cost;
  let in_log =
    match Hashtbl.find_opt c.pending f.inum with
    | None -> false
    | Some m ->
        List.exists
          (function `Data _ -> true | `Hole _ -> false)
          (Extent_map.read_range m ~pos ~len)
  in
  if not in_log then begin
    let depth = max 1 (Fs_state.extent_depth (cfs c) f.inum) in
    client_cpu c (depth * t.prm.Params.read_index_cost)
  end;
  let actual = max 0 (min len (Fs_state.file_size (cfs c) f.inum - pos)) in
  Hw.Pm.read (prim c).node.Hw.Node.pm actual;
  client_cpu c (Hw.Node.copy_work (prim c).node actual);
  match Fs_state.read (cfs c) ~inum:f.inum ~pos ~len with
  | Ok d ->
      c.n_read <- c.n_read + Data.length d;
      d
  | Error e -> fail e f.fpath

let do_fsync c fd =
  c.n_ops <- c.n_ops + 1;
  (* Unknown fds are Einval everywhere (LineFS checks first). *)
  ignore (the_file c fd);
  let t = c.sys in
  client_cpu c t.prm.Params.fs_op_cost;
  let upto = c.next_seq - 1 in
  client_cpu_release c;
  if upto > 0 then ensure_replicated t c ~upto

let do_mkdir c path =
  c.n_ops <- c.n_ops + 1;
  client_cpu c c.sys.prm.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn c parent_path in
  let inum = Fs_state.alloc_inum (cfs c) in
  append_op c (Oplog.Create { parent; name; inum; dir = true })

let do_unlink c path =
  c.n_ops <- c.n_ops + 1;
  client_cpu c c.sys.prm.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn c parent_path in
  let inum = resolve_exn c path in
  append_op c (Oplog.Unlink { parent; name; inum })

let do_rename c src dst =
  c.n_ops <- c.n_ops + 1;
  client_cpu c c.sys.prm.Params.fs_op_cost;
  let src_parent_path, src_name = Dfs_intf.split_path src in
  let dst_parent_path, dst_name = Dfs_intf.split_path dst in
  let src_parent = resolve_exn c src_parent_path in
  let dst_parent = resolve_exn c dst_parent_path in
  let inum = resolve_exn c src in
  append_op c
    (Oplog.Rename { src_parent; src_name; dst_parent; dst_name; inum })

let ops c =
  {
    Dfs_intf.sysname = variant_name c.sys.var;
    create = do_create c;
    open_file = do_open c;
    close =
      (fun fd ->
        c.n_ops <- c.n_ops + 1;
        Hashtbl.remove c.fds fd;
        client_cpu_release c);
    write = (fun fd ~pos data -> do_write c fd ~pos data);
    append =
      (fun fd data ->
        let f = the_file c fd in
        do_write c fd ~pos:f.append_pos data);
    read = (fun fd ~pos ~len -> do_read c fd ~pos ~len);
    fsync = (fun fd -> do_fsync c fd);
    mkdir = do_mkdir c;
    unlink = do_unlink c;
    rename = do_rename c;
    file_size =
      (fun path ->
        match Fs_state.resolve (cfs c) path with
        | Ok inum -> Some (Fs_state.file_size (cfs c) inum)
        | Error _ -> None);
  }

let add_client t ~id =
  let c =
    {
      sys = t;
      cid = id;
      lg = Oplog.Log.create ~capacity:t.prm.Params.log_bytes ();
      pending = Hashtbl.create 16;
      fds = Hashtbl.create 16;
      next_fd = 3;
      next_seq = 1;
      digested_seq = 0;
      replicated_seq = 0;
      bg_enqueued_seq = 0;
      bg_enqueued_bytes = 0;
      logged_bytes = 0;
      digested_bytes = 0;
      shipped_bytes = 0;
      ship_lock = Semaphore.create 1;
      bg_mark = 0;
      repl_progress = Cond.create ();
      log_space = Cond.create ();
      digest_request = Cond.create ();
      digest_done = Cond.create ();
      bg_queue = Mailbox.create ();
      completed_bg = Hashtbl.create 8;
      n_ops = 0;
      n_written = 0;
      n_read = 0;
      stopping = false;
      wlock = Semaphore.create 1;
      tasks = Hashtbl.create 8;
    }
  in
  start_digester t c;
  if t.var = Bg_repl then start_bg_workers t c;
  t.cls <- c :: t.cls;
  c

let client_log c = c.lg

let flush_all t =
  List.iter
    (fun c ->
      let upto = Oplog.Log.last_seq c.lg in
      if upto > c.replicated_seq then ensure_replicated t c ~upto;
      if upto > c.digested_seq then digest_batch t c ~upto)
    t.cls

let stop t =
  t.replenisher <- false;
  List.iter
    (fun c ->
      c.stopping <- true;
      Cond.broadcast c.digest_request)
    t.cls
