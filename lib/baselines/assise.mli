(** Assise baselines (§5.1 "System configuration").

    Assise is the state-of-the-art client-local PM DFS LineFS builds
    on.  All DFS work runs on {e host} cores:

    - [Pessimistic] (the paper's "Assise"): replication happens
      synchronously inside fsync, in the calling thread's context,
      busy-polling RDMA completions;
    - [Bg_repl]: additionally replicates in the background with 3
      threads per client and 4 MB chunks — but with no pipeline
      parallelism (each chunk is shipped start-to-finish);
    - [Hyperloop]: replication is offloaded to ordinary RDMA NICs via
      chained WAIT verbs — replicas spend no host CPU persisting — but
      the host must periodically re-post verb groups; under CPU
      contention the re-posting is delayed and replication stalls (the
      99.9th-percentile effect in Table 3).

    SharedFS digestion (publication to public PM) always runs on host
    cores, on every node in the chain. *)

open Sim

type variant = Pessimistic | Bg_repl | Hyperloop

val variant_name : variant -> string

type t
type client

val create :
  ?cfg:Hw.Config.t ->
  ?params:Linefs.Params.t ->
  ?variant:variant ->
  ?dfs_prio:Hw.Cpu.prio ->
  ?sharding:Sim.Sharded.t * int ->
  nodes:int ->
  unit ->
  t
(** Build the chain (process context required — except with
    [sharding]). [dfs_prio] is the scheduling priority of all DFS host
    work.

    [sharding:(sh, base)] partitions the chain per node across the
    {!Sim.Sharded} runner: node [i] lives on shard [base + i], with
    fabric-latency edges between all node pairs.  Chain forwarding
    splits per hop, replication acks and the Hyperloop completion are
    routed back to the primary's shard.  Call from outside any engine
    and run the workload body and clients on shard [base]. *)

val variant : t -> variant
val node : t -> int -> Hw.Node.t
val primary_fs : t -> Storage.Fs_state.t

val add_client : t -> id:int -> client
val ops : client -> Linefs.Dfs_intf.ops
val client_log : client -> Storage.Oplog.Log.t

val flush_all : t -> unit
(** Drain digestion and background replication (teardown barrier). *)

val stop : t -> unit

val dfs_host_cpu : t -> node:int -> Stats.Busy.t
(** Host CPU burned by DFS work (LibFS + digestion + replication +
    polling) on a node. *)

val total_host_dfs_cpu : t -> Time.t
val replication_wire_bytes : t -> int
(** Bytes the primary shipped to its successor. *)

val verb_stalls : t -> int
(** Hyperloop only: times replication waited for verb re-posting. *)
