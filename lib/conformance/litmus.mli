(** Crash-consistency litmus: one conformance trace, one fault plan,
    one verdict.

    A litmus run drives an {!Opgen.t} trace through a LineFS cluster
    paced over a {!Fault.Plan.t} window (NIC crashes, node deaths,
    partitions, stalls — the PR 1/2 fault layer), then heals, recovers
    the crashed nodes, drains, and checks:

    - {b lockstep conformance}: even mid-fault, every operation's
      outcome matches the {!Model} (LineFS retries through faults
      rather than surfacing them, so a divergence is a real bug);
    - {b prefix crash consistency} of the persisted oplog and lease
      single-writer safety ({!Fault.Invariant});
    - {b model-final}: the recovered primary's
      {!Storage.Fs_state.digest} equals the model's final digest;
    - {b model-prefix}: a permanently dead node's digest appears in the
      model's state history — the state it froze at must be one a
      crash at some operation boundary could legally expose (§3.2).

    Trace payloads stay far below one replication chunk, so each
    mutating operation persists as exactly one oplog entry and
    operation boundaries coincide with entry boundaries — which is
    what makes the model-history digest set the right prefix oracle. *)

open Sim

type spec = {
  seed : int;
  trace : Opgen.t;
  plan : Fault.Plan.t;
  horizon : Time.t;  (** Window the trace is paced over. *)
}

(** Harness mutation for self-testing: corrupt the observed history
    before checking and demand the checker notices. *)
type mutation =
  | Drop_entry
      (** Silently drop a mid-sequence persisted entry — a lost-update
          recovery bug; prefix consistency must flag the seq gap. *)
  | No_dedup
      (** Disable both dedup layers (the RPC reply cache and the
          replica publication gate): fabric duplicates double-apply and
          the no-duplicate-apply invariant must flag it.  Pair with
          {!adversary_dup_spec}. *)
  | No_scrub
      (** Disable the torn-record re-fetch: a torn tail wedges the
          replica's publication gate and convergence must flag the
          divergence.  Pair with {!adversary_torn_spec}. *)

type outcome = {
  completed : bool;
  divergences : Exec.divergence list;
  violations : Fault.Invariant.violation list;
  model_digest : int32;
  fs_digest : int32;  (** Recovered primary digest. *)
}

val failed : outcome -> bool

val generate : seed:int -> spec
(** Seed-derived spec: a 30–60 op trace (60% metadata) over a 20 ms
    window, with one of five plan shapes — generated multi-fault,
    primary NIC crash, permanent tail death, partition + crash, or the
    Byzantine-fabric adversary (duplication / reordering / corruption /
    storage faults). *)

val adversary_dup_spec : seed:int -> spec
(** [generate]'s trace under a single aggressive duplication fault on
    the primary→replica link — the plan the [No_dedup] mutation must
    be caught under. *)

val adversary_torn_spec : seed:int -> spec
(** [generate]'s trace under a single torn-tail storage fault on
    replica 1 — the plan the [No_scrub] mutation must be caught
    under. *)

val run : ?mutate:mutation -> spec -> outcome

val minimize : ?mutate:mutation -> spec -> spec * int
(** Shrink a failing spec's trace ({!Opgen.minimize}, re-running the
    full litmus per candidate; the plan is kept).  Returns the shrunk
    spec and the number of candidate runs. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_outcome : Format.formatter -> outcome -> unit
