open Sim
module D = Linefs.Deployment
module Nicfs = Linefs.Nicfs
module Libfs = Linefs.Libfs
module Plan = Fault.Plan
module Trace = Fault.Trace
module Netfault = Fault.Netfault
module Invariant = Fault.Invariant

type spec = {
  seed : int;
  trace : Opgen.t;
  plan : Plan.t;
  horizon : Time.t;
}

type mutation = Drop_entry | No_dedup | No_scrub

type outcome = {
  completed : bool;
  divergences : Exec.divergence list;
  violations : Invariant.violation list;
  model_digest : int32;
  fs_digest : int32;
}

let failed o =
  (not o.completed) || o.divergences <> [] || o.violations <> []

let pp_spec fmt s =
  Format.fprintf fmt "seed=%d ops=%d horizon=%a plan=%a" s.seed
    (List.length s.trace.Opgen.ops)
    Time.pp s.horizon Plan.pp s.plan

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: model=%08lx fs=%08lx divergences=%d violations=%d"
    (if o.completed then "completed" else "WEDGED")
    o.model_digest o.fs_digest
    (List.length o.divergences)
    (List.length o.violations);
  List.iter
    (fun d -> Format.fprintf fmt "@\n  %a" Exec.pp_divergence d)
    o.divergences;
  List.iter
    (fun v -> Format.fprintf fmt "@\n  %a" Invariant.pp_violation v)
    o.violations

let generate ~seed =
  let rng = Rng.create seed in
  let horizon = Time.ms 20 in
  let trace =
    Opgen.generate ~meta_ratio:0.6 ~ops:(30 + Rng.int rng 31) ~seed ()
  in
  let plan =
    match Rng.int rng 5 with
    | 0 -> Plan.generate ~rng ~nodes:3 ~horizon
    | 1 ->
        [ Plan.Crash { node = 0; at = Time.ms 4; restart_after = Time.ms 8 } ]
    | 2 -> [ Plan.Node_death { node = 2; at = Time.ms 5 } ]
    | 3 ->
        [
          Plan.Partition { a = 0; b = 1; at = Time.ms 3; heal_after = Time.ms 4 };
          Plan.Crash { node = 1; at = Time.ms 9; restart_after = Time.ms 5 };
        ]
    | _ ->
        (* Byzantine-fabric adversary: duplication / reordering /
           corruption / storage faults only. *)
        Plan.generate_adversary ~rng ~nodes:3 ~horizon
  in
  { seed; trace; plan; horizon }

(* Crafted specs for the mutation self-tests: plans that reliably put
   the disabled defence on the critical path. *)

let adversary_dup_spec ~seed =
  let base = generate ~seed in
  {
    base with
    plan =
      [
        Plan.Link_dup
          { a = 0; b = 1; at = Time.ms 2; duration = Time.ms 14; p = 0.6 };
      ];
  }

let adversary_torn_spec ~seed =
  let base = generate ~seed in
  { base with plan = [ Plan.Torn_tail { node = 1; at = Time.ms 3 } ] }

let sleep_until at =
  let now = Engine.now () in
  if at > now then Engine.sleep (at - now)

(* Drop one mid-sequence entry from the longest history: the
   lost-update recovery bug the prefix checker exists to catch. *)
let mutate_histories = function
  | (c, es) :: rest when List.length es >= 2 ->
      let k = List.length es / 2 in
      (c, List.filteri (fun i _ -> i <> k) es) :: rest
  | hs -> hs

(* The deployment / manager / recovery glue mirrors Fault.Scenario.run
   — same params, same failover driver, same recovery policy — with
   the seeded random clients replaced by one lockstep Exec client. *)
let run ?mutate (spec : spec) =
  (* Planted-bug knobs: [No_dedup] turns off both dedup layers (the
     RPC reply cache and the replica publication gate); [No_scrub]
     suppresses torn-record re-fetch.  Restored unconditionally. *)
  (match mutate with
  | Some No_dedup ->
      Net.Rpc.disable_dedup := true;
      Nicfs.chaos_no_dedup := true
  | Some No_scrub -> Nicfs.chaos_no_scrub := true
  | Some Drop_entry | None -> ());
  Fun.protect ~finally:(fun () ->
      Net.Rpc.disable_dedup := false;
      Nicfs.chaos_no_dedup := false;
      Nicfs.chaos_no_scrub := false)
  @@ fun () ->
  let eng = Engine.create ~seed:spec.seed () in
  Sim.Counters.reset ();
  let trace_log = Trace.create () in
  let histories : (int, Storage.Oplog.entry list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let net = Netfault.create ~rng:(Rng.create (spec.seed lxor 0x6c6974)) in
  let completed = ref false in
  let dep_ref = ref None in
  let divergences = ref [] in
  let final_model = ref (Model.create ()) in
  let history_digests = ref [ Model.digest (Model.create ()) ] in
  Engine.spawn_root ~name:"litmus" eng (fun () ->
      let params =
        {
          Linefs.Params.default with
          Linefs.Params.chunk_bytes = 32 * 1024;
          repl_retry_timeout = Time.ms 2;
        }
      in
      let dep = D.create ~params ~apply_on_publish:true ~nodes:3 () in
      dep_ref := Some dep;
      let mgr = Cluster.Manager.create ~heartbeat_interval:(Time.ms 1) () in
      let clients_ref = ref [] in
      for i = 0 to D.node_count dep - 1 do
        let rt = D.node dep i in
        Cluster.Manager.register mgr ~id:i
          ~ping:(fun () -> Nicfs.ping rt.D.nicfs)
          ~on_epoch:(fun e ->
            Trace.add trace_log (Trace.Epoch e);
            Nicfs.set_epoch rt.D.nicfs e)
          ~ping_host:(fun () -> Linefs.Kworker.alive rt.D.kworker)
          ~on_service:(fun svc ->
            (match svc with
            | Cluster.Manager.Nic -> Nicfs.exit_fallback rt.D.nicfs
            | Cluster.Manager.HostFallback -> Nicfs.enter_fallback rt.D.nicfs
            | Cluster.Manager.Down -> ());
            Trace.add trace_log
              (Trace.Note (Printf.sprintf "service node %d" i));
            D.rebuild_chain dep ~up:(fun j ->
                Cluster.Manager.service mgr j <> Cluster.Manager.Down);
            List.iter Libfs.note_service_change !clients_ref)
          ()
      done;
      Cluster.Manager.start mgr;
      Netfault.install net;
      Linefs.Lease.set_observer (fun ev ->
          Trace.add trace_log (Trace.Lease ev));
      Libfs.set_entry_observer (fun ~client e ->
          let h =
            match Hashtbl.find_opt histories client with
            | Some h -> h
            | None ->
                let h = ref [] in
                Hashtbl.replace histories client h;
                h
          in
          h := e :: !h);
      let c = D.add_client dep ~id:0 in
      clients_ref := [ c ];
      List.iter
        (fun f ->
          Engine.spawn ~name:"litmus-fault" (fun () ->
              Fault.Scenario.drive_fault trace_log net dep f))
        spec.plan;
      let gap =
        let n = max 1 (List.length spec.trace.Opgen.ops) in
        Time.us
          (max 1 (int_of_float (Time.to_us_f spec.horizon /. float_of_int n)))
      in
      let iv = Ivar.create () in
      Engine.spawn ~name:"litmus-client" (fun () ->
          let m, divs =
            Exec.run ~ops:(Libfs.ops c) ~model:(Model.create ())
              ~trace:spec.trace
              ~on_step:(fun _ m ->
                history_digests := Model.digest m :: !history_digests)
              ~pace:(fun _ -> Engine.sleep gap)
              ()
          in
          final_model := m;
          divergences := divs;
          Ivar.fill iv ());
      Ivar.read iv;
      sleep_until (Plan.horizon spec.plan + Time.ms 1);
      List.iter
        (fun n ->
          let source_id =
            let rec go i =
              if i >= D.node_count dep then 0
              else if
                i <> n
                && Cluster.Manager.service mgr i <> Cluster.Manager.Down
              then i
              else go (i + 1)
            in
            go 0
          in
          ignore
            (Linefs.Recovery.run ~manager:mgr
               ~recovering:(D.node dep n).D.nicfs
               ~source:(D.node dep source_id).D.nicfs ()
              : Linefs.Recovery.stats))
        (Fault.Scenario.crashed_nodes spec.plan);
      D.flush_all dep;
      Cluster.Manager.stop mgr;
      D.stop dep;
      completed := true);
  let sim_crash =
    match Engine.run ~deadline:(Time.sec 30) eng with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  Netfault.uninstall ();
  Linefs.Lease.clear_observer ();
  Libfs.clear_entry_observer ();
  let histories =
    Hashtbl.fold (fun c h acc -> (c, List.rev !h) :: acc) histories []
    |> List.sort compare
  in
  let histories =
    match mutate with
    | Some Drop_entry -> mutate_histories histories
    | Some (No_dedup | No_scrub) | None -> histories
  in
  let model_digest = Model.digest !final_model in
  let violations, fs_digest =
    match !dep_ref with
    | None ->
        ( [ { Invariant.name = "setup"; detail = "deployment never built" } ],
          0l )
    | Some dep ->
        let prim = (D.primary dep).D.fs in
        let prim_digest = Storage.Fs_state.digest prim in
        let dead = Fault.Scenario.dead_nodes spec.plan in
        let reps =
          List.filter_map
            (fun (rt : D.node_rt) ->
              let id = rt.D.node.Hw.Node.id in
              if List.mem id dead then None else Some (id, rt.D.fs))
            (D.replicas dep)
        in
        let journals =
          List.filter_map
            (fun (rt : D.node_rt) ->
              let id = rt.D.node.Hw.Node.id in
              if List.mem id dead then None
              else Some (id, Nicfs.apply_journal rt.D.nicfs))
            (D.replicas dep)
        in
        let vs =
          Invariant.check_prefix_consistency ~histories
          @ Invariant.check_single_writer trace_log
          @ Invariant.check_no_duplicate_apply ~journals
          @
          if not !completed then []
          else
            Invariant.check_convergence ~primary:prim ~replicas:reps
            @ (if prim_digest <> model_digest then
                 [
                   {
                     Invariant.name = "model-final";
                     detail =
                       Printf.sprintf
                         "recovered primary digest %08lx, model %08lx"
                         prim_digest model_digest;
                   };
                 ]
               else [])
            @ List.filter_map
                (fun n ->
                  let d = Storage.Fs_state.digest (D.node dep n).D.fs in
                  if List.mem d !history_digests then None
                  else
                    Some
                      {
                        Invariant.name = "model-prefix";
                        detail =
                          Printf.sprintf
                            "dead node %d digest %08lx matches no model \
                             state in the trace history"
                            n d;
                      })
                dead
        in
        (vs, prim_digest)
  in
  let violations =
    match sim_crash with
    | Some msg ->
        { Invariant.name = "sim-crash"; detail = msg } :: violations
    | None ->
        if !completed then violations
        else
          {
            Invariant.name = "wedged";
            detail = "litmus did not complete before the deadline";
          }
          :: violations
  in
  {
    completed = !completed;
    divergences = !divergences;
    violations;
    model_digest;
    fs_digest;
  }

let minimize ?mutate spec =
  let trace, runs =
    Opgen.minimize spec.trace ~fails:(fun t ->
        failed (run ?mutate { spec with trace = t }))
  in
  ({ spec with trace }, runs)
