(** Model FS: the reference implementation of {!Linefs.Dfs_intf.ops}
    semantics over a pure tree.

    Every backend in this repository (LineFS, Assise, the Ceph-like
    baseline) must behave exactly like this model — same observable
    state, same {!Storage.Fs_state.error} codes, checked in the same
    order the real clients check them (path splitting, then parent
    resolution, then the operation's own preconditions).  The model is
    persistent (applicative maps), so snapshotting a history of states
    is free — the crash-consistency harness keeps one snapshot per
    operation and compares recovered states against them.

    File handles are caller-chosen integer names ("slots"), decoupled
    from whatever fd numbers a backend hands out; the differential
    executor maintains the slot-to-fd mapping. *)

type error = Storage.Fs_state.error

(** Deliberately wrong semantics for mutation-testing the framework
    itself: a harness that cannot catch a seeded bug proves nothing. *)
type bug =
  | Rename_no_overwrite
      (** Rename onto an existing entry reports [Eexist] instead of
          replacing it. *)

type t

val create : ?bug:bug -> unit -> t
(** Fresh model containing only the root directory. *)

(** {1 Operations}

    Each mirrors one field of {!Linefs.Dfs_intf.ops}.  State-changing
    operations return the new model; failures leave it unchanged.
    [h] is the caller's handle slot; using an unbound slot is [Einval]
    (the backends' unknown-fd behaviour). *)

val create_file : t -> h:int -> string -> (t, error) result
val open_file : t -> h:int -> string -> (t, error) result
val close : t -> h:int -> t
val write : t -> h:int -> pos:int -> string -> (t, error) result
val append : t -> h:int -> string -> (t, error) result
val read : t -> h:int -> pos:int -> len:int -> (string, error) result
val fsync : t -> h:int -> (unit, error) result
val mkdir : t -> string -> (t, error) result
val unlink : t -> string -> (t, error) result
val rename : t -> src:string -> dst:string -> (t, error) result
val file_size : t -> string -> int option

(** {1 Observation} *)

type entry = { path : string; kind : [ `File | `Dir ]; size : int }

val paths : t -> entry list
(** Every root-reachable path, sorted, root excluded. *)

val content : t -> string -> string option
(** File content by path ([None] for directories and absent paths). *)

val files : t -> string list
(** Paths of plain files, sorted. *)

val dirs : t -> string list
(** Paths of directories, sorted, root ("/") included. *)

val handle_valid : t -> h:int -> bool
(** Is the slot bound (open and not yet closed)?  The node it points
    to may have been unlinked — that is still a bound slot. *)

val to_fs_state : t -> Storage.Fs_state.t
(** Materialize the tree into a fresh {!Storage.Fs_state.t} (fresh
    inode numbering; contents and shape identical). *)

val digest : t -> int32
(** [Storage.Fs_state.digest] of the materialized tree: directly
    comparable with a backend node's digest, since the digest covers
    paths, kinds, sizes and contents but not inode numbers. *)

val as_ops : t ref -> Linefs.Dfs_intf.ops
(** Present the model itself through the common DFS interface
    (raising {!Linefs.Dfs_intf.Fs_error} like every backend), so the
    conformance matrix can run the model in the same harness as the
    systems under test. *)
