(** Lockstep trace executor: runs one {!Opgen.t} against a backend's
    {!Linefs.Dfs_intf.ops} and against the {!Model} simultaneously,
    recording every divergence (error-code mismatches, wrong read
    contents, wrong sizes) without halting.

    Slot discipline: the executor owns the slot-to-fd table.  An
    operation whose slot is unbound — its Create/Open failed or was
    deleted by the shrinker — is skipped on {e both} sides, so the
    model and the backend always see the same effective operation
    sequence.  The model is advanced whenever {e it} accepts an
    operation, even if the backend disagreed (the disagreement is
    recorded; keeping the model on its own trajectory makes the first
    divergence the meaningful one and matches the generator's
    tracking model exactly).

    Must be called from simulation-process context (backend operations
    block for their modelled duration). *)

type divergence = {
  step : int;  (** Index of the operation in the trace. *)
  op : Opgen.op;
  expected : string;  (** What the model did. *)
  actual : string;  (** What the backend did. *)
}

val pp_divergence : Format.formatter -> divergence -> unit

val capture : (unit -> 'a) -> ('a, Storage.Fs_state.error) result
(** Run a backend thunk, reifying a raised
    {!Linefs.Dfs_intf.Fs_error} as [Error]. *)

val run :
  ?on_step:(int -> Model.t -> unit) ->
  ?pace:(int -> unit) ->
  ops:Linefs.Dfs_intf.ops ->
  model:Model.t ->
  trace:Opgen.t ->
  unit ->
  Model.t * divergence list
(** Execute the trace.  [on_step i m] fires after operation [i] with
    the model state at that point (skipped operations fire it with the
    unchanged state) — the litmus harness uses it to snapshot the legal
    state history.  [pace i] fires after each operation too; pass an
    [Engine.sleep] to spread the trace over a fault plan's horizon.
    Returns the final model and the divergences in trace order. *)
