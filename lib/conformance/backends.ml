open Sim

type t = Linefs | Assise | Cephlike

let all = [ Linefs; Assise; Cephlike ]

let name = function
  | Linefs -> "linefs"
  | Assise -> "assise"
  | Cephlike -> "cephlike"

let of_string = function
  | "linefs" -> Some Linefs
  | "assise" -> Some Assise
  | "cephlike" | "ceph" -> Some Cephlike
  | _ -> None

let default_params =
  {
    Linefs.Params.default with
    Linefs.Params.chunk_bytes = 256 * 1024;
    log_bytes = 8 * 1024 * 1024;
  }

let in_sim ?seed f =
  let eng = Engine.create ?seed () in
  let result = ref None in
  Engine.spawn_root eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> failwith "Backends.in_sim: simulation did not complete"

let with_ops ?(params = default_params) t f =
  match t with
  | Linefs ->
      let d = Linefs.Deployment.create ~params ~nodes:3 () in
      let r = f (Linefs.Libfs.ops (Linefs.Deployment.add_client d ~id:1)) in
      Linefs.Deployment.stop d;
      r
  | Assise ->
      let a = Baselines.Assise.create ~params ~nodes:3 () in
      let r = f (Baselines.Assise.ops (Baselines.Assise.add_client a ~id:1)) in
      Baselines.Assise.stop a;
      r
  | Cephlike ->
      let c = Baselines.Cephlike.create ~nodes:3 () in
      let r = f (Baselines.Cephlike.ops (Baselines.Cephlike.add_client c ~id:1)) in
      Baselines.Cephlike.flush_all c;
      r

let run ?seed ?params t f = in_sim ?seed (fun () -> with_ops ?params t f)
