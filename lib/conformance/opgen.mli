(** Seeded operation-trace generator with a greedy shrinker.

    A trace is a flat list of DFS operations over a small namespace.
    File handles are named by integer slots chosen at generation time;
    an operation whose slot is unbound when it executes (because the
    opening operation failed, or was deleted by the shrinker) is
    skipped by the executor — so every sublist of a trace is itself a
    well-formed trace, which is what makes delta-debugging-style
    shrinking sound.

    Payloads are described by [(dseed, len)] descriptors and
    materialized identically on every backend and in the model
    ({!payload}), so traces stay tiny and printable. *)

type op =
  | Create of { h : int; path : string }
  | Open of { h : int; path : string }
  | Close of { h : int }
  | Write of { h : int; pos : int; len : int; dseed : int }
  | Append of { h : int; len : int; dseed : int }
  | Read of { h : int; pos : int; len : int }
  | Fsync of { h : int }
  | Mkdir of { path : string }
  | Unlink of { path : string }
  | Rename of { src : string; dst : string }
  | Size of { path : string }

type t = { seed : int; ops : op list }

val generate :
  ?meta_ratio:float ->
  ?error_ratio:float ->
  ?fsyncs:bool ->
  ops:int ->
  seed:int ->
  unit ->
  t
(** [meta_ratio] is the probability that an operation is a metadata op
    (create/open/close/mkdir/rename/unlink/stat) rather than a data op
    (write/append/read/fsync); default 0.5.  The metadata-storm shape
    is [~meta_ratio:0.9].  [error_ratio] (default 0.15) is the
    probability of deliberately generating an operation that should
    fail (create over an existing path, unlink of a missing one, ...) —
    the differential runner checks the error codes agree too.
    [fsyncs:false] (default true) suppresses fsync ops, for harnesses
    that must keep the client log unreclaimed. *)

val payload : dseed:int -> len:int -> Storage.Data.t
(** The concrete bytes every executor uses for a [(dseed, len)]
    descriptor. *)

val payload_string : dseed:int -> len:int -> string

val mentioned_paths : t -> string list
(** Every path a trace names, sorted and deduplicated (the universe the
    final-state check sweeps). *)

val minimize : fails:(t -> bool) -> t -> t * int
(** Greedy delta-debugging: repeatedly drop chunks (halving window
    sizes down to single operations) while [fails] keeps returning
    true.  Returns the minimal failing trace and the number of
    candidate runs spent.  [fails t] must be true on entry. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
