module I = Linefs.Dfs_intf

type report = {
  backend : string;
  divergences : Exec.divergence list;
  state_diffs : string list;
}

let report_failed r = r.divergences <> [] || r.state_diffs <> []

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%s: %s" r.backend
    (if report_failed r then "FAIL" else "ok");
  List.iter
    (fun d -> Format.fprintf fmt "@,  %a" Exec.pp_divergence d)
    r.divergences;
  List.iter (fun s -> Format.fprintf fmt "@,  state: %s" s) r.state_diffs;
  Format.fprintf fmt "@]"

let str_of d = Bytes.to_string (Storage.Data.to_bytes d)

(* Sweep the final state through the client interface: everything the
   model holds must be present with the right kind, size and contents;
   everything the trace ever mentioned that the model lacks must be
   absent. *)
let final_state_diffs ~(model : Model.t) ~(ops : I.ops) trace =
  let diffs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  List.iter
    (fun (e : Model.entry) ->
      match ops.file_size e.path with
      | None -> add "%s: absent on backend (model: %d bytes)" e.path e.size
      | Some sz ->
          if sz <> e.size then
            add "%s: size %d on backend, %d in model" e.path sz e.size;
          if e.kind = `File then (
            let expected =
              match Model.content model e.path with Some c -> c | None -> ""
            in
            match
              Exec.capture (fun () ->
                  let fd = ops.open_file e.path in
                  let d = ops.read fd ~pos:0 ~len:(max 1 e.size) in
                  ops.close fd;
                  str_of d)
            with
            | Error err ->
                add "%s: read-back raised %s" e.path
                  (Storage.Fs_state.error_to_string err)
            | Ok got ->
                if got <> expected then
                  add "%s: contents differ (backend %d bytes, model %d)"
                    e.path (String.length got) (String.length expected)))
    (Model.paths model);
  List.iter
    (fun p ->
      if Model.file_size model p = None then
        match (try ops.file_size p with I.Fs_error _ -> None) with
        | None -> ()
        | Some sz ->
            add "%s: present on backend (size %d), absent in model" p sz)
    (Opgen.mentioned_paths trace);
  List.rev !diffs

let check_backend ?bug ?seed backend trace =
  Backends.run ?seed backend (fun ops ->
      let model, divergences =
        Exec.run ~ops ~model:(Model.create ?bug ()) ~trace ()
      in
      let state_diffs = final_state_diffs ~model ~ops trace in
      { backend = Backends.name backend; divergences; state_diffs })

let run ?bug ?(backends = Backends.all) trace =
  List.map (fun b -> check_backend ?bug b trace) backends

let failed reports = List.exists report_failed reports

let minimize ?bug backend trace =
  Opgen.minimize trace ~fails:(fun t ->
      report_failed (check_backend ?bug backend t))
