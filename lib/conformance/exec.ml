module I = Linefs.Dfs_intf
module Fs_state = Storage.Fs_state

type divergence = {
  step : int;
  op : Opgen.op;
  expected : string;
  actual : string;
}

let pp_divergence fmt d =
  Format.fprintf fmt "step %d: %a — model: %s, backend: %s" d.step
    Opgen.pp_op d.op d.expected d.actual

let err_str e = "error " ^ Fs_state.error_to_string e

(* Run a backend thunk, reifying its Fs_error outcome. *)
let capture f = match f () with v -> Ok v | exception I.Fs_error (e, _) -> Error e

let preview s =
  let n = String.length s in
  if n <= 24 then Printf.sprintf "%d bytes %S" n s
  else Printf.sprintf "%d bytes %S..." n (String.sub s 0 24)

let run ?on_step ?pace ~(ops : I.ops) ~model ~trace () =
  let fds : (int, I.fd) Hashtbl.t = Hashtbl.create 16 in
  let model = ref model in
  let divs = ref [] in
  let record step op expected actual =
    divs := { step; op; expected; actual } :: !divs
  in
  (* Compare a model result against a backend result; advance the model
     on its own Ok; [describe_ok] renders the success values (and flags
     a mismatch between two successes, for read/size). *)
  let sync step op ~(mres : (Model.t, Model.error) result) bres =
    (match mres with Ok m -> model := m | Error _ -> ());
    match (mres, bres) with
    | Ok _, Ok _ -> ()
    | Error e, Error e' when e = e' -> ()
    | Ok _, Error e' -> record step op "ok" (err_str e')
    | Error e, Ok _ -> record step op (err_str e) "ok"
    | Error e, Error e' -> record step op (err_str e) (err_str e')
  in
  let step i (op : Opgen.op) =
    match op with
    | Create { h; path } ->
        let mres = Model.create_file !model ~h path in
        let bres = capture (fun () -> ops.create path) in
        (match bres with Ok fd -> Hashtbl.replace fds h fd | Error _ -> ());
        sync i op ~mres (Result.map ignore bres)
    | Open { h; path } ->
        let mres = Model.open_file !model ~h path in
        let bres = capture (fun () -> ops.open_file path) in
        (match bres with Ok fd -> Hashtbl.replace fds h fd | Error _ -> ());
        sync i op ~mres (Result.map ignore bres)
    | Close { h } -> (
        match Hashtbl.find_opt fds h with
        | None -> ()
        | Some fd ->
            model := Model.close !model ~h;
            Hashtbl.remove fds h;
            ops.close fd)
    | Write { h; pos; len; dseed } -> (
        match Hashtbl.find_opt fds h with
        | None -> ()
        | Some fd ->
            let mres =
              Model.write !model ~h ~pos (Opgen.payload_string ~dseed ~len)
            in
            let bres =
              capture (fun () ->
                  ops.write fd ~pos (Opgen.payload ~dseed ~len))
            in
            sync i op ~mres bres)
    | Append { h; len; dseed } -> (
        match Hashtbl.find_opt fds h with
        | None -> ()
        | Some fd ->
            let mres =
              Model.append !model ~h (Opgen.payload_string ~dseed ~len)
            in
            let bres =
              capture (fun () -> ops.append fd (Opgen.payload ~dseed ~len))
            in
            sync i op ~mres bres)
    | Read { h; pos; len } -> (
        match Hashtbl.find_opt fds h with
        | None -> ()
        | Some fd -> (
            let mres = Model.read !model ~h ~pos ~len in
            let bres = capture (fun () -> ops.read fd ~pos ~len) in
            match (mres, bres) with
            | Ok s, Ok d ->
                let s' = Bytes.to_string (Storage.Data.to_bytes d) in
                if s <> s' then record i op (preview s) (preview s')
            | Error e, Error e' when e = e' -> ()
            | Ok s, Error e' -> record i op (preview s) (err_str e')
            | Error e, Ok d ->
                record i op (err_str e)
                  (preview (Bytes.to_string (Storage.Data.to_bytes d)))
            | Error e, Error e' -> record i op (err_str e) (err_str e')))
    | Fsync { h } -> (
        match Hashtbl.find_opt fds h with
        | None -> ()
        | Some fd -> (
            let mres = Model.fsync !model ~h in
            let bres = capture (fun () -> ops.fsync fd) in
            match (mres, bres) with
            | Ok (), Ok () -> ()
            | Error e, Error e' when e = e' -> ()
            | Ok (), Error e' -> record i op "ok" (err_str e')
            | Error e, Ok () -> record i op (err_str e) "ok"
            | Error e, Error e' -> record i op (err_str e) (err_str e')))
    | Mkdir { path } ->
        sync i op
          ~mres:(Model.mkdir !model path)
          (capture (fun () -> ops.mkdir path))
    | Unlink { path } ->
        sync i op
          ~mres:(Model.unlink !model path)
          (capture (fun () -> ops.unlink path))
    | Rename { src; dst } ->
        sync i op
          ~mres:(Model.rename !model ~src ~dst)
          (capture (fun () -> ops.rename src dst))
    | Size { path } ->
        let msz = Model.file_size !model path in
        let bsz = ops.file_size path in
        if msz <> bsz then
          let show = function
            | Some n -> Printf.sprintf "size %d" n
            | None -> "absent"
          in
          record i op (show msz) (show bsz)
  in
  List.iteri
    (fun i op ->
      step i op;
      (match on_step with Some f -> f i !model | None -> ());
      match pace with Some f -> f i | None -> ())
    trace.Opgen.ops;
  (!model, List.rev !divs)
