open Sim

type op =
  | Create of { h : int; path : string }
  | Open of { h : int; path : string }
  | Close of { h : int }
  | Write of { h : int; pos : int; len : int; dseed : int }
  | Append of { h : int; len : int; dseed : int }
  | Read of { h : int; pos : int; len : int }
  | Fsync of { h : int }
  | Mkdir of { path : string }
  | Unlink of { path : string }
  | Rename of { src : string; dst : string }
  | Size of { path : string }

type t = { seed : int; ops : op list }

let payload ~dseed ~len = Storage.Data.synthetic ~seed:dseed ~len

let payload_string ~dseed ~len =
  Bytes.to_string (Storage.Data.to_bytes (payload ~dseed ~len))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(* The generator runs the model alongside itself so it knows which
   paths exist, which are directories, and which slots are open — it
   can then steer between definitely-valid operations and deliberate
   error-raisers, at a controlled ratio, without ever producing
   behaviour the model cannot predict. *)

let pick rng l = List.nth l (Rng.int rng (List.length l))

let generate ?(meta_ratio = 0.5) ?(error_ratio = 0.15) ?(fsyncs = true) ~ops
    ~seed () =
  let rng = Rng.create seed in
  let model = ref (Model.create ()) in
  let open_slots = ref [] in
  let acc = ref [] in
  let names = [ "a"; "b"; "c"; "d"; "e" ] in
  (* A path that may or may not exist: a name under root or under an
     existing directory. *)
  let some_path () =
    let dir = pick rng (Model.dirs !model) in
    let name = pick rng names in
    if dir = "/" then "/" ^ name else dir ^ "/" ^ name
  in
  let existing_file () =
    match Model.files !model with [] -> None | fs -> Some (pick rng fs)
  in
  let existing_dir_non_root () =
    match List.filter (fun d -> d <> "/") (Model.dirs !model) with
    | [] -> None
    | ds -> Some (pick rng ds)
  in
  let missing_path () =
    (* A path whose parent is missing too, some of the time. *)
    if Rng.bool rng then "/missing/" ^ pick rng names
    else
      let rec go tries =
        if tries = 0 then "/nowhere"
        else
          let p = some_path () in
          if Model.file_size !model p = None then p else go (tries - 1)
      in
      go 8
  in
  let emit op =
    (* Keep the generator's model in sync by executing the op on it the
       same way the executor will. *)
    let m = !model in
    (match op with
    | Create { h; path } -> (
        match Model.create_file m ~h path with
        | Ok m' ->
            model := m';
            open_slots := h :: !open_slots
        | Error _ -> ())
    | Open { h; path } -> (
        match Model.open_file m ~h path with
        | Ok m' ->
            model := m';
            open_slots := h :: !open_slots
        | Error _ -> ())
    | Close { h } ->
        model := Model.close m ~h;
        open_slots := List.filter (fun s -> s <> h) !open_slots
    | Write { h; pos; len; dseed } -> (
        match Model.write m ~h ~pos (payload_string ~dseed ~len) with
        | Ok m' -> model := m'
        | Error _ -> ())
    | Append { h; len; dseed } -> (
        match Model.append m ~h (payload_string ~dseed ~len) with
        | Ok m' -> model := m'
        | Error _ -> ())
    | Read _ | Fsync _ | Size _ -> ()
    | Mkdir { path } -> (
        match Model.mkdir m path with Ok m' -> model := m' | Error _ -> ())
    | Unlink { path } -> (
        match Model.unlink m path with Ok m' -> model := m' | Error _ -> ())
    | Rename { src; dst } -> (
        match Model.rename m ~src ~dst with
        | Ok m' -> model := m'
        | Error _ -> ()));
    acc := op :: !acc
  in
  for i = 0 to ops - 1 do
    let h = i in
    let slot () =
      match !open_slots with [] -> None | l -> Some (pick rng l)
    in
    let meta = Rng.float rng 1.0 < meta_ratio in
    let errish = Rng.float rng 1.0 < error_ratio in
    let dlen = 1 + Rng.int rng 256 in
    let dseed = (seed * 1_000_003) + i in
    if meta then
      match Rng.int rng 7 with
      | 0 ->
          (* create: fresh path, or an existing one to draw Eexist *)
          let path =
            if errish then
              match
                if Rng.bool rng then existing_file ()
                else existing_dir_non_root ()
              with
              | Some p -> p
              | None -> some_path ()
            else some_path ()
          in
          emit (Create { h; path })
      | 1 ->
          let path =
            if errish then missing_path ()
            else
              match existing_file () with
              | Some p -> p
              | None -> some_path ()
          in
          emit (Open { h; path })
      | 2 -> ( match slot () with Some h -> emit (Close { h }) | None -> ())
      | 3 ->
          let path =
            if errish then
              match existing_dir_non_root () with
              | Some p -> p
              | None -> missing_path ()
            else some_path ()
          in
          emit (Mkdir { path })
      | 4 ->
          let path =
            if errish then missing_path ()
            else
              match
                if Rng.bool rng then existing_file ()
                else existing_dir_non_root ()
              with
              | Some p -> p
              | None -> some_path ()
          in
          emit (Unlink { path })
      | 5 ->
          let src =
            if errish then missing_path ()
            else
              match
                if Rng.int rng 4 = 0 then existing_dir_non_root ()
                else existing_file ()
              with
              | Some p -> p
              | None -> some_path ()
          in
          (* Destination: fresh, existing (overwrite / kind clash), or —
             for directories — inside the moved subtree (Ecycle). *)
          let dst =
            match Rng.int rng 4 with
            | 0 -> (
                match existing_file () with
                | Some p -> p
                | None -> some_path ())
            | 1 when errish -> src ^ "/" ^ pick rng names
            | _ -> some_path ()
          in
          emit (Rename { src; dst })
      | _ ->
          let path =
            match existing_file () with
            | Some p when not errish -> p
            | _ -> some_path ()
          in
          emit (Size { path })
    else
      match Rng.int rng (if fsyncs then 4 else 3) with
      | 0 -> (
          match slot () with
          | Some h ->
              let pos = if errish then -1 else Rng.int rng 1024 in
              emit (Write { h; pos; len = dlen; dseed })
          | None -> ())
      | 1 -> (
          match slot () with
          | Some h -> emit (Append { h; len = dlen; dseed })
          | None -> ())
      | 2 -> (
          match slot () with
          | Some h ->
              let pos = if errish then -3 else Rng.int rng 1024 in
              emit (Read { h; pos; len = Rng.int rng 512 })
          | None -> ())
      | _ -> (
          match slot () with Some h -> emit (Fsync { h }) | None -> ())
  done;
  { seed; ops = List.rev !acc }

(* ------------------------------------------------------------------ *)
(* Observation helpers                                                 *)
(* ------------------------------------------------------------------ *)

let op_paths = function
  | Create { path; _ } | Open { path; _ } | Mkdir { path } | Unlink { path }
  | Size { path } ->
      [ path ]
  | Rename { src; dst } -> [ src; dst ]
  | Close _ | Write _ | Append _ | Read _ | Fsync _ -> []

let mentioned_paths t =
  List.sort_uniq compare (List.concat_map op_paths t.ops)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* ddmin-lite: remove windows of ops, halving the window size, keeping
   any removal under which the failure persists.  Slot references to
   deleted Creates/Opens become unbound and are skipped by the
   executor, so every candidate is well-formed. *)
let minimize ~fails t =
  let runs = ref 0 in
  let still_fails ops =
    incr runs;
    fails { t with ops }
  in
  let drop_window l ~at ~len =
    List.filteri (fun i _ -> i < at || i >= at + len) l
  in
  let rec pass ops window =
    if window = 0 then ops
    else
      let rec scan at ops =
        if at >= List.length ops then ops
        else
          let candidate = drop_window ops ~at ~len:window in
          if List.length candidate < List.length ops && still_fails candidate
          then scan at candidate
          else scan (at + window) ops
      in
      pass (scan 0 ops) (window / 2)
  in
  let ops = pass t.ops (max 1 (List.length t.ops / 2)) in
  ({ t with ops }, !runs)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_op fmt = function
  | Create { h; path } -> Format.fprintf fmt "create h%d %s" h path
  | Open { h; path } -> Format.fprintf fmt "open h%d %s" h path
  | Close { h } -> Format.fprintf fmt "close h%d" h
  | Write { h; pos; len; dseed } ->
      Format.fprintf fmt "write h%d pos=%d len=%d seed=%d" h pos len dseed
  | Append { h; len; dseed } ->
      Format.fprintf fmt "append h%d len=%d seed=%d" h len dseed
  | Read { h; pos; len } -> Format.fprintf fmt "read h%d pos=%d len=%d" h pos len
  | Fsync { h } -> Format.fprintf fmt "fsync h%d" h
  | Mkdir { path } -> Format.fprintf fmt "mkdir %s" path
  | Unlink { path } -> Format.fprintf fmt "unlink %s" path
  | Rename { src; dst } -> Format.fprintf fmt "rename %s -> %s" src dst
  | Size { path } -> Format.fprintf fmt "size %s" path

let pp fmt t =
  Format.fprintf fmt "@[<v>seed=%d ops=%d" t.seed (List.length t.ops);
  List.iteri (fun i op -> Format.fprintf fmt "@,%3d: %a" i pp_op op) t.ops;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
