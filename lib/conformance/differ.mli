(** Differential checking: one trace, every backend, one oracle.

    A backend passes a trace when (a) the lockstep execution recorded
    no divergence (same error codes in the same places, same read
    results, same sizes) and (b) the final observable state — every
    path the model holds plus every path the trace ever mentioned —
    matches the model through the client interface (existence, kind,
    size, full contents). *)

type report = {
  backend : string;
  divergences : Exec.divergence list;
  state_diffs : string list;  (** Final-state mismatches, rendered. *)
}

val report_failed : report -> bool
val pp_report : Format.formatter -> report -> unit

val check_backend :
  ?bug:Model.bug -> ?seed:int -> Backends.t -> Opgen.t -> report
(** Run the trace against one backend in a fresh simulation.  [bug]
    seeds a deliberate model bug — for mutation-testing the framework
    (a correct backend must then {e fail} the diff). *)

val run : ?bug:Model.bug -> ?backends:Backends.t list -> Opgen.t -> report list
(** [check_backend] over a backend list (default: all three). *)

val failed : report list -> bool

val minimize :
  ?bug:Model.bug -> Backends.t -> Opgen.t -> Opgen.t * int
(** Shrink a failing trace with {!Opgen.minimize}, re-running the
    single offending backend per candidate.  Returns the minimal trace
    and the number of candidate executions. *)
