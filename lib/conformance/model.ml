(* Reference semantics for Dfs_intf.ops over a pure tree.

   The error-code *order* matters as much as the codes themselves: the
   real clients split the path first (Einval), resolve parent
   directories next (Enoent/Enotdir), and only then run the operation's
   own precondition checks (Fs_state.validate).  Every function below
   performs the same checks in the same order, so the differential
   runner can compare codes exactly. *)

module Fs_state = Storage.Fs_state
module IntMap = Map.Make (Int)
module StrMap = Map.Make (String)

type error = Fs_state.error

type bug = Rename_no_overwrite

type node = File of string | Dir of int StrMap.t

type t = {
  nodes : node IntMap.t;
  next_id : int;
  handles : (int * int) IntMap.t; (* slot -> (node id, append position) *)
  bug : bug option;
}

let root_id = 1

let create ?bug () =
  {
    nodes = IntMap.singleton root_id (Dir StrMap.empty);
    next_id = root_id + 1;
    handles = IntMap.empty;
    bug;
  }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Mirror of Dfs_intf.split_path, result-typed. *)
let split_path path =
  if String.length path = 0 || path.[0] <> '/' then Error Fs_state.Einval
  else
    match String.rindex_opt path '/' with
    | None | Some 0 -> Ok ("/", String.sub path 1 (String.length path - 1))
    | Some i ->
        Ok
          ( String.sub path 0 i,
            String.sub path (i + 1) (String.length path - i - 1) )

(* Mirror of Fs_state.resolve: lookup does the dir check per step. *)
let resolve t path =
  if path = "" || path.[0] <> '/' then Error Fs_state.Einval
  else
    let parts =
      List.filter (fun s -> s <> "") (String.split_on_char '/' path)
    in
    List.fold_left
      (fun acc name ->
        let* dir = acc in
        match IntMap.find_opt dir t.nodes with
        | None -> Error Fs_state.Enoent
        | Some (File _) -> Error Fs_state.Enotdir
        | Some (Dir children) -> (
            match StrMap.find_opt name children with
            | Some id -> Ok id
            | None -> Error Fs_state.Enoent))
      (Ok root_id) parts

let get_dir t id =
  match IntMap.find_opt id t.nodes with
  | None -> Error Fs_state.Enoent
  | Some (File _) -> Error Fs_state.Enotdir
  | Some (Dir children) -> Ok children

let node_size = function File c -> String.length c | Dir _ -> 0

let bad_name name = name = "" || String.contains name '/'

(* Shared by create_file and mkdir: the clients' create path (split,
   resolve parent, Fs_state's Create precheck). *)
let create_node t path ~dir =
  let* parent_path, name = split_path path in
  let* parent = resolve t parent_path in
  let* children = get_dir t parent in
  if bad_name name then Error Fs_state.Einval
  else if StrMap.mem name children then Error Fs_state.Eexist
  else
    let id = t.next_id in
    let fresh = if dir then Dir StrMap.empty else File "" in
    let nodes =
      IntMap.add id fresh
        (IntMap.add parent (Dir (StrMap.add name id children)) t.nodes)
    in
    Ok ({ t with nodes; next_id = id + 1 }, id)

let create_file t ~h path =
  let* t, id = create_node t path ~dir:false in
  Ok { t with handles = IntMap.add h (id, 0) t.handles }

let open_file t ~h path =
  let* id = resolve t path in
  (* Backends then run a permission check; with the default rw mode it
     always passes (the ops interface exposes no chmod). *)
  let pos =
    match IntMap.find_opt id t.nodes with
    | Some n -> node_size n
    | None -> 0
  in
  Ok { t with handles = IntMap.add h (id, pos) t.handles }

let close t ~h = { t with handles = IntMap.remove h t.handles }

let get_file_handle t ~h =
  match IntMap.find_opt h t.handles with
  | None -> Error Fs_state.Einval
  | Some (id, ap) -> (
      match IntMap.find_opt id t.nodes with
      | None -> Error Fs_state.Enoent (* unlinked while open *)
      | Some (Dir _) -> Error Fs_state.Eisdir
      | Some (File content) -> Ok (id, ap, content))

(* Overwrite [data] into [content] at [pos], zero-padding any gap (the
   hole semantics of the extent maps). *)
let splice content pos data =
  let clen = String.length content and dlen = String.length data in
  let size = max clen (pos + dlen) in
  String.init size (fun i ->
      if i >= pos && i < pos + dlen then data.[i - pos]
      else if i < clen then content.[i]
      else '\000')

let write t ~h ~pos data =
  let* id, ap, content = get_file_handle t ~h in
  if pos < 0 then Error Fs_state.Einval
  else
    let nodes = IntMap.add id (File (splice content pos data)) t.nodes in
    let ap' = max ap (pos + String.length data) in
    Ok { t with nodes; handles = IntMap.add h (id, ap') t.handles }

let append t ~h data =
  match IntMap.find_opt h t.handles with
  | None -> Error Fs_state.Einval
  | Some (_, ap) -> write t ~h ~pos:ap data

let read t ~h ~pos ~len =
  let* _, _, content = get_file_handle t ~h in
  if pos < 0 || len < 0 then Error Fs_state.Einval
  else
    let n = max 0 (min len (String.length content - pos)) in
    Ok (if n = 0 then "" else String.sub content pos n)

let fsync t ~h =
  match IntMap.find_opt h t.handles with
  | None -> Error Fs_state.Einval
  | Some _ -> Ok ()

let mkdir t path =
  let* t, _ = create_node t path ~dir:true in
  Ok t

let unlink t path =
  let* parent_path, name = split_path path in
  let* parent = resolve t parent_path in
  let* id = resolve t path in
  let* children = get_dir t parent in
  match StrMap.find_opt name children with
  | None -> Error Fs_state.Enoent
  | Some child when child <> id -> Error Fs_state.Einval
  | Some child -> (
      match IntMap.find_opt child t.nodes with
      | Some (Dir ch) when not (StrMap.is_empty ch) ->
          Error Fs_state.Enotempty
      | _ ->
          let nodes =
            IntMap.remove child
              (IntMap.add parent (Dir (StrMap.remove name children)) t.nodes)
          in
          Ok { t with nodes })

(* Is [id] equal to [anc] or inside its subtree?  (The tree has unique
   parents, so descending from [anc] is equivalent to Fs_state's
   parent-chain climb.) *)
let rec in_subtree t ~anc id =
  anc = id
  ||
  match IntMap.find_opt anc t.nodes with
  | Some (Dir children) ->
      StrMap.exists (fun _ child -> in_subtree t ~anc:child id) children
  | _ -> false

let rename t ~src ~dst =
  let* sp_path, sname = split_path src in
  let* dp_path, dname = split_path dst in
  let* sp = resolve t sp_path in
  let* dp = resolve t dp_path in
  let* id = resolve t src in
  let* sp_children = get_dir t sp in
  let* dp_children = get_dir t dp in
  if bad_name dname then Error Fs_state.Einval
  else
    match StrMap.find_opt sname sp_children with
    | None -> Error Fs_state.Enoent
    | Some moved when moved <> id -> Error Fs_state.Einval
    | Some moved -> (
        let mnode = IntMap.find moved t.nodes in
        let is_dir = match mnode with Dir _ -> true | File _ -> false in
        if is_dir && in_subtree t ~anc:moved dp then Error Fs_state.Ecycle
        else
          let finish ~drop =
            (* Apply in Fs_state order: detach the source entry, drop
               any overwritten node, attach under the destination —
               re-reading the destination directory after the detach so
               same-directory renames stay correct. *)
            let nodes =
              IntMap.add sp (Dir (StrMap.remove sname sp_children)) t.nodes
            in
            let nodes =
              match drop with Some e -> IntMap.remove e nodes | None -> nodes
            in
            let dp_children' =
              match IntMap.find dp nodes with
              | Dir ch -> ch
              | File _ -> assert false
            in
            Ok
              {
                t with
                nodes =
                  IntMap.add dp (Dir (StrMap.add dname moved dp_children'))
                    nodes;
              }
          in
          match StrMap.find_opt dname dp_children with
          | None -> finish ~drop:None
          | Some existing when existing = moved -> Ok t (* same entry *)
          | Some existing -> (
              if t.bug = Some Rename_no_overwrite then Error Fs_state.Eexist
              else
                match IntMap.find existing t.nodes with
                | Dir _ when not is_dir -> Error Fs_state.Eisdir
                | File _ when is_dir -> Error Fs_state.Enotdir
                | Dir ch when not (StrMap.is_empty ch) ->
                    Error Fs_state.Enotempty
                | _ -> finish ~drop:(Some existing)))

let file_size t path =
  match resolve t path with
  | Error _ -> None
  | Ok id -> (
      match IntMap.find_opt id t.nodes with
      | Some n -> Some (node_size n)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

type entry = { path : string; kind : [ `File | `Dir ]; size : int }

let walk t f =
  let rec go path id =
    match IntMap.find_opt id t.nodes with
    | None -> ()
    | Some (File c) -> f { path; kind = `File; size = String.length c } id
    | Some (Dir children) ->
        if id <> root_id then f { path; kind = `Dir; size = 0 } id;
        StrMap.iter (fun name child -> go (path ^ "/" ^ name) child) children
  in
  go "" root_id

let paths t =
  let acc = ref [] in
  walk t (fun e _ -> acc := e :: !acc);
  List.sort compare !acc

let content t path =
  match resolve t path with
  | Error _ -> None
  | Ok id -> (
      match IntMap.find_opt id t.nodes with
      | Some (File c) -> Some c
      | _ -> None)

let files t =
  List.filter_map
    (fun e -> if e.kind = `File then Some e.path else None)
    (paths t)

let dirs t =
  "/"
  :: List.filter_map
       (fun e -> if e.kind = `Dir then Some e.path else None)
       (paths t)

let handle_valid t ~h = IntMap.mem h t.handles

let to_fs_state t =
  let fs = Fs_state.create () in
  let inum_of = Hashtbl.create 16 in
  Hashtbl.replace inum_of root_id Fs_state.root_inum;
  (* paths come out sorted, so parents precede children. *)
  List.iter
    (fun e ->
      match split_path e.path with
      | Error _ -> ()
      | Ok (parent_path, name) -> (
          match resolve t parent_path with
          | Error _ -> ()
          | Ok pid ->
              let parent = Hashtbl.find inum_of pid in
              let inum = Fs_state.alloc_inum fs in
              (match resolve t e.path with
              | Ok id -> Hashtbl.replace inum_of id inum
              | Error _ -> ());
              (match
                 Fs_state.apply fs
                   (Storage.Oplog.Create
                      { parent; name; inum; dir = e.kind = `Dir })
               with
              | Ok () -> ()
              | Error err ->
                  failwith
                    (Printf.sprintf "Model.to_fs_state: create %s: %s" e.path
                       (Fs_state.error_to_string err)));
              if e.kind = `File && e.size > 0 then
                let data =
                  Storage.Data.of_string
                    (match content t e.path with Some c -> c | None -> "")
                in
                match
                  Fs_state.apply fs
                    (Storage.Oplog.Write { inum; offset = 0; data })
                with
                | Ok () -> ()
                | Error err ->
                    failwith
                      (Printf.sprintf "Model.to_fs_state: write %s: %s" e.path
                         (Fs_state.error_to_string err))))
    (paths t);
  fs

let digest t = Fs_state.digest (to_fs_state t)

(* ------------------------------------------------------------------ *)
(* The model as a backend                                              *)
(* ------------------------------------------------------------------ *)

let as_ops r =
  let next_fd = ref 3 in
  let fail e path = Linefs.Dfs_intf.fail e path in
  let fresh_fd () =
    let fd = !next_fd in
    incr next_fd;
    fd
  in
  let mutate path = function
    | Ok t -> r := t
    | Error e -> fail e path
  in
  {
    Linefs.Dfs_intf.sysname = "Model";
    create =
      (fun path ->
        let fd = fresh_fd () in
        mutate path (create_file !r ~h:fd path);
        fd);
    open_file =
      (fun path ->
        let fd = fresh_fd () in
        mutate path (open_file !r ~h:fd path);
        fd);
    close = (fun fd -> r := close !r ~h:fd);
    write =
      (fun fd ~pos data ->
        mutate "write"
          (write !r ~h:fd ~pos
             (Bytes.to_string (Storage.Data.to_bytes data))));
    append =
      (fun fd data ->
        mutate "append"
          (append !r ~h:fd (Bytes.to_string (Storage.Data.to_bytes data))));
    read =
      (fun fd ~pos ~len ->
        match read !r ~h:fd ~pos ~len with
        | Ok s -> Storage.Data.of_string s
        | Error e -> fail e "read");
    fsync =
      (fun fd ->
        match fsync !r ~h:fd with Ok () -> () | Error e -> fail e "fsync");
    mkdir = (fun path -> mutate path (mkdir !r path));
    unlink = (fun path -> mutate path (unlink !r path));
    rename = (fun src dst -> mutate src (rename !r ~src ~dst));
    file_size = (fun path -> file_size !r path);
  }
