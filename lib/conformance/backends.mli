(** The systems under test, named, and the glue to stand a fresh one up
    inside a simulation and hand its {!Linefs.Dfs_intf.ops} to a
    harness. *)

type t = Linefs | Assise | Cephlike

val all : t list
val name : t -> string
val of_string : string -> t option

val default_params : Linefs.Params.t
(** Conformance-friendly sizing: 256 KiB chunks, 8 MiB client log —
    the same parameters the conformance matrix always used. *)

val in_sim : ?seed:int -> (unit -> 'a) -> 'a
(** Run [f] to completion in a fresh engine (process context), fail if
    the simulation wedges. *)

val with_ops : ?params:Linefs.Params.t -> t -> (Linefs.Dfs_intf.ops -> 'a) -> 'a
(** Build a fresh 3-node instance of the backend, run [f] with a client
    attached to it, tear the instance down.  Must be called from
    simulation-process context — compose with {!in_sim}. *)

val run : ?seed:int -> ?params:Linefs.Params.t -> t -> (Linefs.Dfs_intf.ops -> 'a) -> 'a
(** [in_sim] + [with_ops] in one call. *)
