(** Operational log: the client-private PM write log (§3.2).

    LibFS persists every file-system update as a log entry; NICFS later
    fetches, validates, publishes and replicates ranges of entries.
    Entries have a real binary serialization with a CRC so the
    validation stage performs genuine work, and the log enforces
    capacity so full-log back-pressure behaves as in the paper. *)

type op =
  | Create of { parent : int; name : string; inum : int; dir : bool }
  | Unlink of { parent : int; name : string; inum : int }
  | Rename of {
      src_parent : int;
      src_name : string;
      dst_parent : int;
      dst_name : string;
      inum : int;
    }
  | Write of { inum : int; offset : int; data : Data.t }
  | Truncate of { inum : int; size : int }

type entry = { seq : int; client : int; op : op; crc : int32 }

val make : seq:int -> client:int -> op -> entry
(** Build an entry, computing its checksum. *)

val size : entry -> int
(** On-log size in bytes: fixed header plus payload. *)

val payload_size : op -> int
(** Bytes of file data carried (0 for metadata ops). *)

val is_metadata : op -> bool

val check : entry -> bool
(** Recompute and compare the checksum. *)

val frame_crc : int32 -> entry -> int32
(** Fold one entry's wire bytes (including its crc trailer) into a
    running CRC32: [List.fold_left frame_crc 0l entries] is the
    end-to-end integrity trailer of a replication frame.  Payload bytes
    stream through the slice-aware CRC, so rope data never flattens. *)

val serialize : entry -> Bytes.t
(** Binary encoding (real payload bytes are embedded; synthetic
    payloads are encoded by descriptor). *)

val deserialize : Bytes.t -> (entry, string) result
(** Inverse of {!serialize}; checks magic and checksum. *)

val touches : op -> int list
(** Inodes read or written by the operation (validation needs this for
    lease checks, recovery for the history bitmap). *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> entry -> unit

(** The log container. *)
module Log : sig
  type t

  val create : capacity:int -> unit -> t
  (** [capacity] in bytes (the paper defaults to 512 MB per client). *)

  val append : t -> entry -> (unit, [ `Full ]) result
  (** Entries must arrive with consecutive [seq] numbers. *)

  val capacity : t -> int
  val used_bytes : t -> int
  val free_bytes : t -> int

  val head_seq : t -> int
  (** Sequence of the oldest retained entry; [last_seq t + 1] when
      empty. *)

  val last_seq : t -> int
  (** Sequence of the newest entry; 0 when no entry was ever appended. *)

  val entries_from : t -> seq:int -> max_bytes:int -> entry list
  (** Retained entries starting at [seq], greedily packed up to
      [max_bytes] (at least one entry if any is available). *)

  val find : t -> seq:int -> entry option

  val reclaim_upto : t -> seq:int -> int
  (** Drop entries with [entry.seq <= seq]; returns bytes freed. *)

  val iter : t -> (entry -> unit) -> unit
  (** Oldest to newest over retained entries. *)

  val remove_if : t -> (entry -> bool) -> int
  (** Remove every retained entry matching the predicate (selective
      invalidation: recovery drops only entries touching resynced
      inodes); returns how many were removed.  Sequence numbers of the
      survivors are unchanged, so the retained set may have gaps —
      [head_seq] becomes the seq of the oldest survivor. *)

  val tear_tail : t -> bool
  (** Fault injection: corrupt the newest retained record's CRC,
      simulating a torn PM write.  [false] when the log is empty. *)

  type scrub_result = { torn_truncated : int; quarantined : entry list }

  val scrub : t -> scrub_result
  (** Recovery-time per-record CRC scan.  An invalid suffix is a torn
      tail: those records are truncated and [last_seq] rolls back so
      the writer re-appends them.  Invalid records with valid
      successors are bit-rot: they are quarantined (removed, leaving a
      gap) and returned so the caller can re-fetch pristine copies from
      the next chain replica and {!restore} them. *)

  val restore : t -> entry -> bool
  (** Re-insert a pristine replacement for a quarantined record at its
      sequence position.  [false] if the entry fails its own CRC, lies
      beyond [last_seq], or its seq is already present. *)
end
