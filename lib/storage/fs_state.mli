(** Public file-system state: the "public PM area" of a node.

    Holds the inode table, directory tree and per-file extent maps.
    Log entries are {e published} into this state (by NICFS via the
    kernel worker in LineFS, by SharedFS threads in Assise); reads that
    miss the client-private log are served from it.

    The same structure doubles as the validation oracle: the NICFS
    validation stage dry-runs operations against it (permission checks,
    directory-cycle prevention) before publication. *)

type error =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Eacces
  | Einval
  | Ecycle

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type kind = File | Dir

type stat = {
  st_inum : int;
  st_kind : kind;
  st_size : int;
  st_nlink : int;
  st_mode : int;
}

type t

val create : unit -> t
(** Fresh file system containing only the root directory. *)

val root_inum : int
(** Always 1. *)

val alloc_inum : t -> int
(** Allocate a fresh inode number (arbitration is the lease holder's
    privilege; callers model that). Never reuses a live inum. *)

val apply : t -> Oplog.op -> (unit, error) result
(** Publish one operation. Publication is idempotent for [Write] and
    [Truncate]; namespace operations return errors on re-application,
    which replayers may ignore (see §3.5: "publication is idempotent"). *)

val validate : t -> Oplog.op -> (unit, error) result
(** Dry-run check of an operation against current state: existence,
    kinds, permissions, and directory-cycle prevention for renames. *)

val lookup : t -> int -> string -> (int, error) result
(** Child inum by name in a directory. *)

val resolve : t -> string -> (int, error) result
(** Resolve an absolute slash-separated path to an inum. *)

val stat : t -> int -> (stat, error) result

val read : t -> inum:int -> pos:int -> len:int -> (Data.t, error) result
(** File content; unwritten gaps read as zeros; reads past EOF are
    truncated to the file size ([Data.length] of the result tells the
    caller how much was read). *)

val file_size : t -> int -> int
(** 0 for unknown inodes. *)

val extent_depth : t -> int -> int
(** Extent-tree depth of a file (drives modelled index traversal cost);
    0 when unknown. *)

val list_dir : t -> int -> (string list, error) result

val chmod : t -> int -> mode:int -> (unit, error) result

val readable : t -> int -> bool
val writable : t -> int -> bool

val digest : t -> int32
(** Deterministic checksum of the root-reachable tree: every path,
    inode kind, file size and full file content.  Two states with equal
    digests present byte-identical file systems to clients — the
    replica-convergence check of the DST harness. *)

val live_inodes : t -> int
(** Number of live inodes (root included). *)

val file_crc : t -> int -> int32 option
(** CRC32 of a file's full content (holes read as zeros), streaming
    slices without materializing the file.  [None] for directories and
    unknown inodes.  Scrub compares this per inode against the chain
    source to detect bit-rot in persisted extents. *)

val scrub_candidates : t -> int list
(** Sorted inums of non-empty files — the extents a scrub walks and
    the population bit-rot injection draws from. *)

val tamper : t -> salt:int -> int option
(** Fault injection: flip one byte of one file's persisted extents,
    chosen deterministically from [salt].  Returns the damaged inum,
    or [None] when no non-empty file exists.  The damage is exactly
    what {!file_crc} comparison against a healthy replica detects. *)

val copy_file_content : src:t -> dst:t -> int -> bool
(** Scrub repair: replace [dst]'s extents for one file with [src]'s
    content (both must know the inum as a file).  Models the re-fetch
    of a corrupt inode from the next chain replica. *)

val total_mapped_bytes : t -> int
(** Sum of mapped extent bytes over all files. *)
