type op =
  | Create of { parent : int; name : string; inum : int; dir : bool }
  | Unlink of { parent : int; name : string; inum : int }
  | Rename of {
      src_parent : int;
      src_name : string;
      dst_parent : int;
      dst_name : string;
      inum : int;
    }
  | Write of { inum : int; offset : int; data : Data.t }
  | Truncate of { inum : int; size : int }

type entry = { seq : int; client : int; op : op; crc : int32 }

let header_size = 32

let payload_size = function
  | Write { data; _ } -> Data.length data
  | Create _ | Unlink _ | Rename _ | Truncate _ -> 0

let op_meta_size = function
  | Create { name; _ } | Unlink { name; _ } -> 24 + String.length name
  | Rename { src_name; dst_name; _ } ->
      32 + String.length src_name + String.length dst_name
  | Write _ -> 24
  | Truncate _ -> 16

let size e = header_size + op_meta_size e.op + payload_size e.op

let is_metadata = function
  | Create _ | Unlink _ | Rename _ | Truncate _ -> true
  | Write _ -> false

let touches = function
  | Create { parent; inum; _ } | Unlink { parent; inum; _ } -> [ parent; inum ]
  | Rename { src_parent; dst_parent; inum; _ } ->
      if src_parent = dst_parent then [ src_parent; inum ]
      else [ src_parent; dst_parent; inum ]
  | Write { inum; _ } | Truncate { inum; _ } -> [ inum ]

(* -------------------- binary encoding -------------------- *)

let magic = 0x4C46 (* "LF" *)

let kind_code = function
  | Create _ -> 1
  | Unlink _ -> 2
  | Rename _ -> 3
  | Write _ -> 4
  | Truncate _ -> 5

(* Encoding is written against an abstract byte sink so the checksum
   path can stream fields straight into the CRC register — no Buffer
   round trip, and [Write] payloads are checksummed in place via
   [Crc32.update_data] instead of being materialized. *)
type writer = {
  w_u8 : int -> unit;
  w_u16 : int -> unit;
  w_u32 : int -> unit;
  w_i32 : int32 -> unit;
  w_u64 : int -> unit;
  w_str : string -> unit;
  w_data : Data.t -> unit;
}

let buffer_writer b =
  let u8 v = Buffer.add_uint8 b (v land 0xFF) in
  let u32 v = Buffer.add_int32_le b (Int32.of_int v) in
  {
    w_u8 = u8;
    w_u16 = (fun v -> Buffer.add_uint16_le b (v land 0xFFFF));
    w_u32 = u32;
    w_i32 = (fun v -> Buffer.add_int32_le b v);
    w_u64 = (fun v -> Buffer.add_int64_le b (Int64.of_int v));
    w_str =
      (fun s ->
        u32 (String.length s);
        Buffer.add_string b s);
    w_data =
      (fun d ->
        let n = Data.length d in
        let tmp = Bytes.create n in
        Data.blit_to d ~src_pos:0 ~dst:tmp ~dst_pos:0 ~len:n;
        Buffer.add_bytes b tmp);
  }

(* CRC sink: integer fields go through a small reusable scratch; the
   payload streams through the slice-aware CRC. *)
let crc_writer () =
  let crc = ref 0l in
  let scratch = Bytes.create 8 in
  let add n =
    crc := Crc32.update !crc scratch ~pos:0 ~len:n
  in
  let u8 v =
    Bytes.unsafe_set scratch 0 (Char.unsafe_chr (v land 0xFF));
    add 1
  in
  let u32 v =
    Bytes.set_int32_le scratch 0 (Int32.of_int v);
    add 4
  in
  ( {
      w_u8 = u8;
      w_u16 =
        (fun v ->
          Bytes.set_uint16_le scratch 0 (v land 0xFFFF);
          add 2);
      w_u32 = u32;
      w_i32 =
        (fun v ->
          Bytes.set_int32_le scratch 0 v;
          add 4);
      w_u64 =
        (fun v ->
          Bytes.set_int64_le scratch 0 (Int64.of_int v);
          add 8);
      w_str =
        (fun s ->
          u32 (String.length s);
          crc := Crc32.update_string !crc s);
      w_data = (fun d -> crc := Crc32.update_data !crc d);
    },
    crc )

module Dec = struct
  type t = { buf : Bytes.t; mutable pos : int }

  exception Truncated

  let need t n = if t.pos + n > Bytes.length t.buf then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_le t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let i32 t =
    need t 4;
    let v = Bytes.get_int32_le t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let v = Int64.to_int (Bytes.get_int64_le t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let str t =
    let n = u32 t in
    need t n;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s

  let raw t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b
end

let encode_op w = function
  | Create { parent; name; inum; dir } ->
      w.w_u64 parent;
      w.w_str name;
      w.w_u64 inum;
      w.w_u8 (if dir then 1 else 0)
  | Unlink { parent; name; inum } ->
      w.w_u64 parent;
      w.w_str name;
      w.w_u64 inum
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } ->
      w.w_u64 src_parent;
      w.w_str src_name;
      w.w_u64 dst_parent;
      w.w_str dst_name;
      w.w_u64 inum
  | Write { inum; offset; data } -> (
      w.w_u64 inum;
      w.w_u64 offset;
      (* Real payloads embed bytes; synthetic ones their descriptor
         (cheap, deterministic, still covered by the checksum). *)
      match Data.is_real data with
      | true ->
          w.w_u8 0;
          w.w_u32 (Data.length data);
          w.w_data data
      | false ->
          w.w_u8 1;
          w.w_u32 (Data.length data);
          (* Descriptor: first 16 content bytes sampled + length is
             enough to pin content deterministically for the CRC. *)
          for i = 0 to min 15 (Data.length data - 1) do
            w.w_u8 (Char.code (Data.get data i))
          done)
  | Truncate { inum; size } ->
      w.w_u64 inum;
      w.w_u64 size

let encode_entry w e =
  w.w_u16 magic;
  w.w_u8 (kind_code e.op);
  w.w_u8 0;
  w.w_u64 e.seq;
  w.w_u32 e.client;
  encode_op w e.op

(* Streams the entry's wire bytes straight into the CRC register —
   identical byte sequence to [serialize] minus the trailing crc, so
   the resulting value matches the historical Buffer-based path. *)
let compute_crc e =
  let w, crc = crc_writer () in
  encode_entry w e;
  !crc

let make ~seq ~client op =
  let e = { seq; client; op; crc = 0l } in
  { e with crc = compute_crc e }

let check e = Int32.equal e.crc (compute_crc e)

(* Fold one entry's wire bytes (including its own crc trailer) into a
   running frame CRC: the end-to-end integrity trailer of a replication
   frame is the fold of this over the chunk's entries.  Streams through
   the slice-aware CRC sink, so rope payloads never flatten. *)
let frame_crc acc e =
  let w, crc = crc_writer () in
  crc := acc;
  encode_entry w e;
  w.w_i32 e.crc;
  !crc

let serialize e =
  let b = Buffer.create (size e + 16) in
  let w = buffer_writer b in
  encode_entry w e;
  w.w_i32 e.crc;
  Buffer.to_bytes b

let deserialize buf =
  let d = Dec.{ buf; pos = 0 } in
  match
    let m = Dec.u16 d in
    if m <> magic then Error "bad magic"
    else begin
      let kind = Dec.u8 d in
      let _flags = Dec.u8 d in
      let seq = Dec.u64 d in
      let client = Dec.u32 d in
      let verifiable = ref true in
      let op =
        match kind with
        | 1 ->
            let parent = Dec.u64 d in
            let name = Dec.str d in
            let inum = Dec.u64 d in
            let dir = Dec.u8 d = 1 in
            Create { parent; name; inum; dir }
        | 2 ->
            let parent = Dec.u64 d in
            let name = Dec.str d in
            let inum = Dec.u64 d in
            Unlink { parent; name; inum }
        | 3 ->
            let src_parent = Dec.u64 d in
            let src_name = Dec.str d in
            let dst_parent = Dec.u64 d in
            let dst_name = Dec.str d in
            let inum = Dec.u64 d in
            Rename { src_parent; src_name; dst_parent; dst_name; inum }
        | 4 -> (
            let inum = Dec.u64 d in
            let offset = Dec.u64 d in
            let form = Dec.u8 d in
            let len = Dec.u32 d in
            match form with
            | 0 -> Write { inum; offset; data = Data.real (Dec.raw d len) }
            | _ ->
                (* Synthetic payloads are not reconstructible from the
                   wire sample; represent them as zeroed real data of
                   the right length. The checksum cannot be re-verified
                   in this case. *)
                verifiable := false;
                let _sample = Dec.raw d (min 16 len) in
                Write { inum; offset; data = Data.real (Bytes.create len) }
          )
        | 5 ->
            let inum = Dec.u64 d in
            let size = Dec.u64 d in
            Truncate { inum; size }
        | k -> failwith (Printf.sprintf "bad op kind %d" k)
      in
      let crc = Dec.i32 d in
      Ok ({ seq; client; op; crc }, !verifiable)
    end
  with
  | Ok (e, verifiable) ->
      if verifiable && not (check e) then Error "checksum mismatch" else Ok e
  | Error _ as err -> err
  | exception Dec.Truncated -> Error "truncated"
  | exception Failure msg -> Error msg

let pp_op fmt = function
  | Create { parent; name; inum; dir } ->
      Format.fprintf fmt "create(%s parent=%d name=%s inum=%d)"
        (if dir then "dir" else "file")
        parent name inum
  | Unlink { parent; name; inum } ->
      Format.fprintf fmt "unlink(parent=%d name=%s inum=%d)" parent name inum
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } ->
      Format.fprintf fmt "rename(%d/%s -> %d/%s inum=%d)" src_parent src_name
        dst_parent dst_name inum
  | Write { inum; offset; data } ->
      Format.fprintf fmt "write(inum=%d off=%d len=%d)" inum offset
        (Data.length data)
  | Truncate { inum; size } ->
      Format.fprintf fmt "truncate(inum=%d size=%d)" inum size

let pp fmt e =
  Format.fprintf fmt "#%d@%d %a" e.seq e.client pp_op e.op

(* -------------------- the log container -------------------- *)

module Log = struct
  type t = {
    cap : int;
    mutable used : int;
    entries : entry Queue.t;
    mutable head : int;  (* seq of oldest retained *)
    mutable last : int;  (* seq of newest appended, 0 if none ever *)
  }

  let create ~capacity () =
    assert (capacity > 0);
    { cap = capacity; used = 0; entries = Queue.create (); head = 1; last = 0 }

  let capacity t = t.cap
  let used_bytes t = t.used
  let free_bytes t = t.cap - t.used
  let head_seq t = t.head
  let last_seq t = t.last

  let append t e =
    if e.seq <> t.last + 1 then
      invalid_arg
        (Printf.sprintf "Oplog.Log.append: seq %d, expected %d" e.seq
           (t.last + 1));
    let sz = size e in
    if t.used + sz > t.cap then Error `Full
    else begin
      Queue.add e t.entries;
      t.used <- t.used + sz;
      t.last <- e.seq;
      Ok ()
    end

  let entries_from t ~seq ~max_bytes =
    let out = ref [] in
    let bytes = ref 0 in
    (try
       Queue.iter
         (fun e ->
           if e.seq >= seq then begin
             let sz = size e in
             if !bytes > 0 && !bytes + sz > max_bytes then raise Exit;
             out := e :: !out;
             bytes := !bytes + sz
           end)
         t.entries
     with Exit -> ());
    List.rev !out

  let find t ~seq =
    if seq < t.head || seq > t.last then None
    else
      Queue.fold
        (fun acc e -> match acc with Some _ -> acc | None -> if e.seq = seq then Some e else None)
        None t.entries

  let reclaim_upto t ~seq =
    let freed = ref 0 in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.entries with
      | Some e when e.seq <= seq ->
          ignore (Queue.pop t.entries);
          freed := !freed + size e;
          t.head <- e.seq + 1
      | _ -> continue := false
    done;
    t.used <- t.used - !freed;
    !freed

  let iter t f = Queue.iter f t.entries

  let rebuild t entries =
    Queue.clear t.entries;
    t.used <- 0;
    List.iter
      (fun e ->
        Queue.add e t.entries;
        t.used <- t.used + size e)
      entries;
    t.head <-
      (match Queue.peek_opt t.entries with
      | Some e -> e.seq
      | None -> t.last + 1)

  let tear_tail t =
    (* Simulate a torn PM write of the newest record: the persisted
       copy no longer matches its per-record CRC. *)
    match Queue.fold (fun _ e -> Some e) None t.entries with
    | None -> false
    | Some last ->
        let torn = { last with crc = Int32.logxor last.crc 0x5A5A5A5Al } in
        let all =
          List.rev
            (Queue.fold
               (fun acc e -> (if e.seq = last.seq then torn else e) :: acc)
               [] t.entries)
        in
        rebuild t all;
        true

  type scrub_result = { torn_truncated : int; quarantined : entry list }

  let scrub t =
    (* Per-record CRC scan.  An invalid suffix is a torn tail — those
       records never fully persisted, so they are truncated and the log
       rolls back ([last_seq] shrinks; the writer re-appends).  An
       invalid record with valid successors is bit-rot: it is
       quarantined (removed, leaving a gap) and the caller must
       {!restore} a pristine copy fetched from the next chain replica
       before replaying the log. *)
    let all = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.entries) in
    let rec split_tail rev torn =
      match rev with
      | e :: rest when not (check e) -> split_tail rest (e :: torn)
      | _ -> (List.rev rev, torn)
    in
    let body, torn = split_tail (List.rev all) [] in
    let quarantined = List.filter (fun e -> not (check e)) body in
    let good = List.filter check body in
    (match torn with e :: _ -> t.last <- e.seq - 1 | [] -> ());
    rebuild t good;
    { torn_truncated = List.length torn; quarantined }

  let restore t e =
    (* Re-insert a quarantined record's pristine replacement (fetched
       from a chain replica) at its sequence position. *)
    if not (check e) then false
    else if e.seq > t.last then false
    else if
      Queue.fold (fun found x -> found || x.seq = e.seq) false t.entries
    then false
    else begin
      let out = ref [] in
      let inserted = ref false in
      Queue.iter
        (fun x ->
          if (not !inserted) && x.seq > e.seq then begin
            out := e :: !out;
            inserted := true
          end;
          out := x :: !out)
        t.entries;
      if not !inserted then out := e :: !out;
      let all = List.rev !out in
      rebuild t all;
      true
    end

  let remove_if t pred =
    let keep = Queue.create () in
    let removed = ref 0 in
    let freed = ref 0 in
    Queue.iter
      (fun e ->
        if pred e then begin
          incr removed;
          freed := !freed + size e
        end
        else Queue.add e keep)
      t.entries;
    Queue.clear t.entries;
    Queue.transfer keep t.entries;
    t.used <- t.used - !freed;
    (t.head <-
       (match Queue.peek_opt t.entries with
       | Some e -> e.seq
       | None -> t.last + 1));
    !removed
end
