type op =
  | Create of { parent : int; name : string; inum : int; dir : bool }
  | Unlink of { parent : int; name : string; inum : int }
  | Rename of {
      src_parent : int;
      src_name : string;
      dst_parent : int;
      dst_name : string;
      inum : int;
    }
  | Write of { inum : int; offset : int; data : Data.t }
  | Truncate of { inum : int; size : int }

type entry = { seq : int; client : int; op : op; crc : int32 }

let header_size = 32

let payload_size = function
  | Write { data; _ } -> Data.length data
  | Create _ | Unlink _ | Rename _ | Truncate _ -> 0

let op_meta_size = function
  | Create { name; _ } | Unlink { name; _ } -> 24 + String.length name
  | Rename { src_name; dst_name; _ } ->
      32 + String.length src_name + String.length dst_name
  | Write _ -> 24
  | Truncate _ -> 16

let size e = header_size + op_meta_size e.op + payload_size e.op

let is_metadata = function
  | Create _ | Unlink _ | Rename _ | Truncate _ -> true
  | Write _ -> false

let touches = function
  | Create { parent; inum; _ } | Unlink { parent; inum; _ } -> [ parent; inum ]
  | Rename { src_parent; dst_parent; inum; _ } ->
      if src_parent = dst_parent then [ src_parent; inum ]
      else [ src_parent; dst_parent; inum ]
  | Write { inum; _ } | Truncate { inum; _ } -> [ inum ]

(* -------------------- binary encoding -------------------- *)

let magic = 0x4C46 (* "LF" *)

let kind_code = function
  | Create _ -> 1
  | Unlink _ -> 2
  | Rename _ -> 3
  | Write _ -> 4
  | Truncate _ -> 5

module Enc = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let u16 b v = Buffer.add_uint16_le b (v land 0xFFFF)
  let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let i32 b v = Buffer.add_int32_le b v
  let u64 b v = Buffer.add_int64_le b (Int64.of_int v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s
end

module Dec = struct
  type t = { buf : Bytes.t; mutable pos : int }

  exception Truncated

  let need t n = if t.pos + n > Bytes.length t.buf then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_le t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let i32 t =
    need t 4;
    let v = Bytes.get_int32_le t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let v = Int64.to_int (Bytes.get_int64_le t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let str t =
    let n = u32 t in
    need t n;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s

  let raw t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b
end

let encode_op b = function
  | Create { parent; name; inum; dir } ->
      Enc.u64 b parent;
      Enc.str b name;
      Enc.u64 b inum;
      Enc.u8 b (if dir then 1 else 0)
  | Unlink { parent; name; inum } ->
      Enc.u64 b parent;
      Enc.str b name;
      Enc.u64 b inum
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } ->
      Enc.u64 b src_parent;
      Enc.str b src_name;
      Enc.u64 b dst_parent;
      Enc.str b dst_name;
      Enc.u64 b inum
  | Write { inum; offset; data } -> (
      Enc.u64 b inum;
      Enc.u64 b offset;
      (* Real payloads embed bytes; synthetic ones their descriptor
         (cheap, deterministic, still covered by the checksum). *)
      match Data.is_real data with
      | true ->
          Enc.u8 b 0;
          Enc.u32 b (Data.length data);
          Buffer.add_bytes b (Data.to_bytes data)
      | false ->
          Enc.u8 b 1;
          Enc.u32 b (Data.length data);
          (* Descriptor: first 16 content bytes sampled + length is
             enough to pin content deterministically for the CRC. *)
          for i = 0 to min 15 (Data.length data - 1) do
            Enc.u8 b (Char.code (Data.get data i))
          done)
  | Truncate { inum; size } ->
      Enc.u64 b inum;
      Enc.u64 b size

let encode_without_crc e =
  let b = Buffer.create 64 in
  Enc.u16 b magic;
  Enc.u8 b (kind_code e.op);
  Enc.u8 b 0;
  Enc.u64 b e.seq;
  Enc.u32 b e.client;
  encode_op b e.op;
  b

let compute_crc e = Crc32.bytes (Buffer.to_bytes (encode_without_crc e))

let make ~seq ~client op =
  let e = { seq; client; op; crc = 0l } in
  { e with crc = compute_crc e }

let check e = Int32.equal e.crc (compute_crc e)

let serialize e =
  let b = encode_without_crc e in
  let out = Buffer.create (Buffer.length b + 4) in
  Buffer.add_buffer out b;
  Enc.i32 out e.crc;
  Buffer.to_bytes out

let deserialize buf =
  let d = Dec.{ buf; pos = 0 } in
  match
    let m = Dec.u16 d in
    if m <> magic then Error "bad magic"
    else begin
      let kind = Dec.u8 d in
      let _flags = Dec.u8 d in
      let seq = Dec.u64 d in
      let client = Dec.u32 d in
      let verifiable = ref true in
      let op =
        match kind with
        | 1 ->
            let parent = Dec.u64 d in
            let name = Dec.str d in
            let inum = Dec.u64 d in
            let dir = Dec.u8 d = 1 in
            Create { parent; name; inum; dir }
        | 2 ->
            let parent = Dec.u64 d in
            let name = Dec.str d in
            let inum = Dec.u64 d in
            Unlink { parent; name; inum }
        | 3 ->
            let src_parent = Dec.u64 d in
            let src_name = Dec.str d in
            let dst_parent = Dec.u64 d in
            let dst_name = Dec.str d in
            let inum = Dec.u64 d in
            Rename { src_parent; src_name; dst_parent; dst_name; inum }
        | 4 -> (
            let inum = Dec.u64 d in
            let offset = Dec.u64 d in
            let form = Dec.u8 d in
            let len = Dec.u32 d in
            match form with
            | 0 -> Write { inum; offset; data = Data.real (Dec.raw d len) }
            | _ ->
                (* Synthetic payloads are not reconstructible from the
                   wire sample; represent them as zeroed real data of
                   the right length. The checksum cannot be re-verified
                   in this case. *)
                verifiable := false;
                let _sample = Dec.raw d (min 16 len) in
                Write { inum; offset; data = Data.real (Bytes.create len) }
          )
        | 5 ->
            let inum = Dec.u64 d in
            let size = Dec.u64 d in
            Truncate { inum; size }
        | k -> failwith (Printf.sprintf "bad op kind %d" k)
      in
      let crc = Dec.i32 d in
      Ok ({ seq; client; op; crc }, !verifiable)
    end
  with
  | Ok (e, verifiable) ->
      if verifiable && not (check e) then Error "checksum mismatch" else Ok e
  | Error _ as err -> err
  | exception Dec.Truncated -> Error "truncated"
  | exception Failure msg -> Error msg

let pp_op fmt = function
  | Create { parent; name; inum; dir } ->
      Format.fprintf fmt "create(%s parent=%d name=%s inum=%d)"
        (if dir then "dir" else "file")
        parent name inum
  | Unlink { parent; name; inum } ->
      Format.fprintf fmt "unlink(parent=%d name=%s inum=%d)" parent name inum
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } ->
      Format.fprintf fmt "rename(%d/%s -> %d/%s inum=%d)" src_parent src_name
        dst_parent dst_name inum
  | Write { inum; offset; data } ->
      Format.fprintf fmt "write(inum=%d off=%d len=%d)" inum offset
        (Data.length data)
  | Truncate { inum; size } ->
      Format.fprintf fmt "truncate(inum=%d size=%d)" inum size

let pp fmt e =
  Format.fprintf fmt "#%d@%d %a" e.seq e.client pp_op e.op

(* -------------------- the log container -------------------- *)

module Log = struct
  type t = {
    cap : int;
    mutable used : int;
    entries : entry Queue.t;
    mutable head : int;  (* seq of oldest retained *)
    mutable last : int;  (* seq of newest appended, 0 if none ever *)
  }

  let create ~capacity () =
    assert (capacity > 0);
    { cap = capacity; used = 0; entries = Queue.create (); head = 1; last = 0 }

  let capacity t = t.cap
  let used_bytes t = t.used
  let free_bytes t = t.cap - t.used
  let head_seq t = t.head
  let last_seq t = t.last

  let append t e =
    if e.seq <> t.last + 1 then
      invalid_arg
        (Printf.sprintf "Oplog.Log.append: seq %d, expected %d" e.seq
           (t.last + 1));
    let sz = size e in
    if t.used + sz > t.cap then Error `Full
    else begin
      Queue.add e t.entries;
      t.used <- t.used + sz;
      t.last <- e.seq;
      Ok ()
    end

  let entries_from t ~seq ~max_bytes =
    let out = ref [] in
    let bytes = ref 0 in
    (try
       Queue.iter
         (fun e ->
           if e.seq >= seq then begin
             let sz = size e in
             if !bytes > 0 && !bytes + sz > max_bytes then raise Exit;
             out := e :: !out;
             bytes := !bytes + sz
           end)
         t.entries
     with Exit -> ());
    List.rev !out

  let find t ~seq =
    if seq < t.head || seq > t.last then None
    else
      Queue.fold
        (fun acc e -> match acc with Some _ -> acc | None -> if e.seq = seq then Some e else None)
        None t.entries

  let reclaim_upto t ~seq =
    let freed = ref 0 in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.entries with
      | Some e when e.seq <= seq ->
          ignore (Queue.pop t.entries);
          freed := !freed + size e;
          t.head <- e.seq + 1
      | _ -> continue := false
    done;
    t.used <- t.used - !freed;
    !freed

  let iter t f = Queue.iter f t.entries

  let remove_if t pred =
    let keep = Queue.create () in
    let removed = ref 0 in
    let freed = ref 0 in
    Queue.iter
      (fun e ->
        if pred e then begin
          incr removed;
          freed := !freed + size e
        end
        else Queue.add e keep)
      t.entries;
    Queue.clear t.entries;
    Queue.transfer keep t.entries;
    t.used <- t.used - !freed;
    (t.head <-
       (match Queue.peek_opt t.entries with
       | Some e -> e.seq
       | None -> t.last + 1));
    !removed
end
