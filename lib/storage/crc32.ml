(* CRC-32 (IEEE 802.3, reflected 0xEDB88320).

   The register is carried as a native [int] internally — the public
   [int32] interface survives at the edges only — because Int32
   arithmetic boxes every intermediate in OCaml and the byte loop is
   the single hottest real-CPU kernel of the simulator (validation,
   oplog checksums, digests).

   Bulk input runs through slicing-by-8: eight derived tables fold a
   whole 8-byte word into the register per iteration instead of one
   byte, for both real buffers and synthetic generator words.

   Beyond that there are two streaming fast paths used by
   [update_data]:
   - zero runs advance the register in O(log n) via the GF(2) matrix
     operator for appending zero bytes (the classic [crc32_combine]
     machinery);
   - synthetic payloads feed the register straight from the 8-byte
     generator words, never materializing buffers. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

(* Slicing-by-8 tables: [ts.(k).(b)] is the register contribution of
   byte [b] when [k] more input bytes follow it in the same word.
   ts.(0) is the plain byte table. *)
let tables8 =
  lazy
    begin
      let t0 = Lazy.force table in
      let ts = Array.make 8 t0 in
      for k = 1 to 7 do
        let prev = ts.(k - 1) in
        ts.(k) <-
          Array.init 256 (fun i ->
              (prev.(i) lsr 8) lxor t0.(prev.(i) land 0xFF))
      done;
      ts
    end

let mask32 = 0xFFFFFFFF
let to_int32 c = Int32.of_int c
let of_int32 c = Int32.to_int c land mask32

(* Raw register update: [c] is the post-inversion crc value as an int
   in [0, 2^32). *)
let update_int crc buf ~pos ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor mask32) in
  let i = ref pos in
  let stop = pos + len in
  if len >= 16 then begin
    let ts = Lazy.force tables8 in
    let t7 = ts.(7) and t6 = ts.(6) and t5 = ts.(5) and t4 = ts.(4) in
    let t3 = ts.(3) and t2 = ts.(2) and t1 = ts.(1) and t0 = ts.(0) in
    while stop - !i >= 8 do
      let i0 = !i in
      let lo =
        (Char.code (Bytes.unsafe_get buf i0)
        lor (Char.code (Bytes.unsafe_get buf (i0 + 1)) lsl 8)
        lor (Char.code (Bytes.unsafe_get buf (i0 + 2)) lsl 16)
        lor (Char.code (Bytes.unsafe_get buf (i0 + 3)) lsl 24))
        lxor !c
      in
      let hi =
        Char.code (Bytes.unsafe_get buf (i0 + 4))
        lor (Char.code (Bytes.unsafe_get buf (i0 + 5)) lsl 8)
        lor (Char.code (Bytes.unsafe_get buf (i0 + 6)) lsl 16)
        lor (Char.code (Bytes.unsafe_get buf (i0 + 7)) lsl 24)
      in
      c :=
        Array.unsafe_get t7 (lo land 0xFF)
        lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
        lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
        lxor Array.unsafe_get t4 (lo lsr 24)
        lxor Array.unsafe_get t3 (hi land 0xFF)
        lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
        lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
        lxor Array.unsafe_get t0 (hi lsr 24);
      i := i0 + 8
    done
  end;
  while !i < stop do
    c :=
      Array.unsafe_get t
        ((!c lxor Char.code (Bytes.unsafe_get buf !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor mask32

let update crc buf ~pos ~len = to_int32 (update_int (of_int32 crc) buf ~pos ~len)
let bytes buf = update 0l buf ~pos:0 ~len:(Bytes.length buf)
let string s = bytes (Bytes.unsafe_of_string s)

let update_string crc s =
  let b = Bytes.unsafe_of_string s in
  to_int32 (update_int (of_int32 crc) b ~pos:0 ~len:(Bytes.length b))

(* -------------------- GF(2) combine machinery -------------------- *)

(* A linear operator on the 32-bit register is a 32-column matrix;
   column [i] is the image of bit [i]. *)
let gf2_times mat vec =
  let sum = ref 0 in
  let v = ref vec in
  let i = ref 0 in
  while !v <> 0 do
    if !v land 1 <> 0 then sum := !sum lxor mat.(!i);
    v := !v lsr 1;
    incr i
  done;
  !sum

let gf2_square dst src =
  for i = 0 to 31 do
    dst.(i) <- gf2_times src src.(i)
  done

(* Operator for appending one zero *bit* to the (reflected) register. *)
let op_one_bit () =
  let m = Array.make 32 0 in
  m.(0) <- 0xEDB88320;
  let row = ref 1 in
  for i = 1 to 31 do
    m.(i) <- !row;
    row := !row lsl 1
  done;
  m

(* Cache of "append 2^k zero bytes" operators and the crc values of
   2^k zero bytes, built on demand.  [zero_ops.(k)] applies
   x^(8*2^k); [zero_crcs.(k)] = crc32 of 2^k zero bytes. *)
let max_pow = 48
let zero_ops : int array option array = Array.make max_pow None
let zero_crcs : int array = Array.make max_pow 0
let zero_cached = ref 0

(* Apply [len] zero bytes to the raw register value [c] (post-inversion
   form), zlib-style: build the x^(8*len) operator by squaring. *)
let combine_int crc1 crc2 len2 =
  if len2 <= 0 then crc1
  else begin
    let even = Array.make 32 0 and odd = Array.make 32 0 in
    (* odd <- one zero bit; even <- two bits; odd <- four bits. *)
    Array.blit (op_one_bit ()) 0 odd 0 32;
    gf2_square even odd;
    gf2_square odd even;
    let c = ref crc1 in
    let n = ref len2 in
    let continue = ref true in
    while !continue do
      gf2_square even odd;
      if !n land 1 <> 0 then c := gf2_times even !c;
      n := !n lsr 1;
      if !n = 0 then continue := false
      else begin
        gf2_square odd even;
        if !n land 1 <> 0 then c := gf2_times odd !c;
        n := !n lsr 1;
        if !n = 0 then continue := false
      end
    done;
    !c lxor crc2
  end

let combine crc1 crc2 len2 =
  to_int32 (combine_int (of_int32 crc1) (of_int32 crc2) len2)

let ensure_zero_cache k =
  if !zero_cached = 0 then begin
    (* Seed: operator and crc for 2^0 = 1 zero byte. *)
    let one_bit = op_one_bit () in
    let b2 = Array.make 32 0 and b4 = Array.make 32 0 and b8 = Array.make 32 0 in
    gf2_square b2 one_bit;
    gf2_square b4 b2;
    gf2_square b8 b4;
    zero_ops.(0) <- Some b8;
    zero_crcs.(0) <- update_int 0 (Bytes.make 1 '\000') ~pos:0 ~len:1;
    zero_cached := 1
  end;
  while !zero_cached <= k do
    let i = !zero_cached in
    let prev = match zero_ops.(i - 1) with Some m -> m | None -> assert false in
    let m = Array.make 32 0 in
    gf2_square m prev;
    zero_ops.(i) <- Some m;
    (* crc of 2^i zeros = combine of two 2^(i-1) runs:
       crc(Z ++ Z) = M_{|Z|}(crc Z) ^ crc Z. *)
    let half = zero_crcs.(i - 1) in
    zero_crcs.(i) <- gf2_times prev half lxor half;
    zero_cached := i + 1
  done

(* Append [n] zero bytes to a crc value in O(log n), via the combine
   identity crc(A ++ B) = M_{|B|}(crc A) ^ crc B with B a zero run:
   walk the binary decomposition of [n] with the cached power
   matrices and zero-run crcs. *)
let append_zeros_int crc n =
  if n <= 0 then crc
  else begin
    (* Highest power needed. *)
    let k = ref 0 in
    while n lsr !k > 1 do
      incr k
    done;
    ensure_zero_cache !k;
    let c = ref crc in
    let bit = ref 0 in
    let m = ref n in
    while !m <> 0 do
      if !m land 1 <> 0 then begin
        let op = match zero_ops.(!bit) with Some m -> m | None -> assert false in
        (* crc(A ++ Z_{2^bit}) = op*(crc A) ^ crc(Z_{2^bit}) *)
        c := gf2_times op !c lxor zero_crcs.(!bit)
      end;
      m := !m lsr 1;
      incr bit
    done;
    !c
  end

(* Small zero runs: the tableless byte step (input byte 0) beats the
   matrix math. *)
let zero_run_int crc n =
  if n < 256 then begin
    let t = Lazy.force table in
    let c = ref (crc lxor mask32) in
    for _ = 1 to n do
      c := Array.unsafe_get t (!c land 0xFF) lxor (!c lsr 8)
    done;
    !c lxor mask32
  end
  else append_zeros_int crc n

let update_zeros crc n = to_int32 (zero_run_int (of_int32 crc) n)

(* Synthetic stream: feed the register straight from generator words.
   The word is split into two native ints once, then consumed with
   plain shifts — no Int64 boxing in the byte loop. *)
let synth_run_int crc ~seed ~off ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor mask32) in
  let o = ref off and n = ref len in
  let step b = c := Array.unsafe_get t ((!c lxor b) land 0xFF) lxor (!c lsr 8) in
  while !n > 0 && !o land 7 <> 0 do
    let w = Data.synth_word seed (!o asr 3) in
    let b =
      Int64.to_int (Int64.shift_right_logical w (8 * (!o land 7))) land 0xFF
    in
    step b;
    incr o;
    decr n
  done;
  if !n >= 8 then begin
    (* Aligned middle: fold each whole generator word with the
       slicing-by-8 tables — one table pass per 8 bytes. *)
    let ts = Lazy.force tables8 in
    let t7 = ts.(7) and t6 = ts.(6) and t5 = ts.(5) and t4 = ts.(4) in
    let t3 = ts.(3) and t2 = ts.(2) and t1 = ts.(1) and t0 = ts.(0) in
    while !n >= 8 do
      let w = Data.synth_word seed (!o asr 3) in
      let lo = Int64.to_int (Int64.logand w 0xFFFFFFFFL) lxor !c in
      let hi = Int64.to_int (Int64.shift_right_logical w 32) in
      c :=
        Array.unsafe_get t7 (lo land 0xFF)
        lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
        lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
        lxor Array.unsafe_get t4 (lo lsr 24)
        lxor Array.unsafe_get t3 (hi land 0xFF)
        lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
        lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
        lxor Array.unsafe_get t0 (hi lsr 24);
      o := !o + 8;
      n := !n - 8
    done
  end;
  while !n > 0 do
    let w = Data.synth_word seed (!o asr 3) in
    let b =
      Int64.to_int (Int64.shift_right_logical w (8 * (!o land 7))) land 0xFF
    in
    step b;
    incr o;
    decr n
  done;
  !c lxor mask32

let update_synth crc ~seed ~off ~len =
  to_int32 (synth_run_int (of_int32 crc) ~seed ~off ~len)

let update_data crc d =
  let c =
    Data.fold_slices d ~init:(of_int32 crc) ~f:(fun c s ->
        match s with
        | Data.Sreal r -> update_int c r.buf ~pos:r.pos ~len:r.len
        | Data.Ssynth s -> synth_run_int c ~seed:s.seed ~off:s.off ~len:s.len
        | Data.Szero z -> zero_run_int c z.len)
  in
  to_int32 c

let data d = update_data 0l d

(* Domain safety: force the code tables and prebuild the whole zero-run
   cache during module initialisation, which runs on the initial domain
   before any shard can spawn.  After this everything above is
   read-only, so engines on several domains share it without
   synchronisation (lazily forcing from two domains at once would race;
   so would growing the zero cache on demand). *)
let () =
  ignore (Lazy.force table);
  ignore (Lazy.force tables8);
  ensure_zero_cache (max_pow - 1)
