(** File payload representation (rope).

    Payloads flow through logs, pipelines, replication and compression.
    Leaves come in three forms:
    - [Real]: actual bytes (used wherever content matters: metadata,
      key-value records, sort inputs for the compression experiments);
    - [Synth]: a deterministic pseudo-random block described by
      [(seed, offset, len)].  Synthetic data has stable content — the
      byte at logical position [i] depends only on [seed] and
      [offset + i] — but occupies O(1) memory, letting benchmarks move
      gigabytes through the system without allocating them;
    - [Zero]: an all-zero block in O(1) memory (file holes).

    Concatenation builds a rope node over the leaves in O(1) instead of
    materializing, and consumers stream over the leaf {!slice}s with
    {!iter_slices}/{!fold_slices}/{!blit_to}, so the hot data plane
    (checksums, compression, digests) never copies whole payloads.

    All operations treat payloads as immutable. *)

type t

(** One leaf span of a payload, exposed for streaming consumers. *)
type slice =
  | Sreal of { buf : bytes; pos : int; len : int }
      (** [len] actual bytes at [buf.[pos..]]. Do not mutate. *)
  | Ssynth of { seed : int; off : int; len : int }
      (** [len] synthetic bytes of stream [seed] starting at absolute
          offset [off]. *)
  | Szero of { len : int }  (** [len] zero bytes. *)

val real : bytes -> t
(** Wrap actual bytes. The buffer must not be mutated afterwards. *)

val of_string : string -> t

val synthetic : seed:int -> len:int -> t
(** A synthetic block starting at logical offset 0. *)

val zero : len:int -> t
(** An all-zero block in O(1) memory (file holes read as zeros). *)

val empty : t
val length : t -> int

val sub : t -> pos:int -> len:int -> t
(** Slice; content-stable for all forms, O(log parts) and copy-free.
    Raises [Invalid_argument] on out-of-bounds. *)

val concat : t list -> t
(** O(1)-per-part concatenation (no materialization).  Adjacent slices
    of the same underlying stream — contiguous synthetic runs, zero
    runs, adjacent windows of one buffer — are coalesced back into
    single leaves. *)

val to_bytes : t -> bytes
(** Materialize the content (synthetic data is generated word-wise). *)

val get : t -> int -> char
(** Byte at position [i]; O(log parts). *)

val slice_length : slice -> int

val blit_slice :
  slice -> src_pos:int -> dst:bytes -> dst_pos:int -> len:int -> unit
(** Materialize [len] bytes of one slice starting at [src_pos] into
    [dst] at [dst_pos]. No bounds checks: the caller ranges over spans
    obtained from {!iter_slices}. *)

val iter_slices : t -> (slice -> unit) -> unit
(** Visit every (nonempty) leaf span in order. *)

val fold_slices : t -> init:'a -> f:('a -> slice -> 'a) -> 'a

val blit_to : t -> src_pos:int -> dst:bytes -> dst_pos:int -> len:int -> unit
(** Copy a window of the payload into [dst] without materializing the
    rest. Raises [Invalid_argument] on out-of-bounds. *)

val equal : t -> t -> bool
(** Content equality.  Structurally identical spans (same zero run,
    same synthetic stream and offset, same buffer window) compare in
    O(1); only mixed spans fall back to chunked byte comparison through
    small reusable windows. *)

val is_real : t -> bool
(** True when the content is concrete bytes — [Real] leaves and rope
    concatenations — as opposed to descriptor-backed [Synth]/[Zero]
    blocks. (Concatenations count as real exactly like the materialized
    buffers they replace.) *)

val leaf_count : t -> int
(** Number of leaves in the rope (1 for plain leaves). *)

val fill_ratio : t -> zeros:float -> rng:Sim.Rng.t -> t
(** [fill_ratio t ~zeros ~rng] is a {e real} payload of the same length
    where approximately [zeros] fraction of bytes are zero and the rest
    pseudo-random — the knob the Tencent Sort experiment uses to control
    compressibility. *)

val synth_word : int -> int -> int64
(** [synth_word seed widx] is the 8-byte little-endian word of stream
    [seed] covering absolute offsets [8*widx .. 8*widx+7] — the direct
    word path for streaming consumers (e.g. checksums). *)

val synth_blit : seed:int -> off:int -> bytes -> pos:int -> len:int -> unit
(** Generate [len] synthetic bytes of stream [seed] starting at
    absolute offset [off] into a caller-provided buffer, word-at-a-time
    where aligned. *)

val pp : Format.formatter -> t -> unit
