(* Rope-style payload representation.

   Leaves are [Real] byte slices, [Synth] deterministic pseudo-random
   blocks, and [Zero] holes; [Cat] concatenates leaves in O(1) without
   materializing.  Consumers stream over the structure with
   [iter_slices]/[fold_slices]/[blit_to] — the hot data plane (CRC,
   LZW, digests, replication) never materializes whole payloads. *)

type t =
  | Real of { buf : bytes; pos : int; len : int }
  | Synth of { seed : int; off : int; len : int }
  | Zero of { len : int }
  | Cat of { parts : t array; offs : int array; len : int }
      (* [parts] are nonempty leaves (never [Cat]); [offs.(i)] is the
         logical offset of [parts.(i)]; at least two parts. *)

type slice =
  | Sreal of { buf : bytes; pos : int; len : int }
  | Ssynth of { seed : int; off : int; len : int }
  | Szero of { len : int }

let real buf = Real { buf; pos = 0; len = Bytes.length buf }
let of_string s = real (Bytes.of_string s)
let synthetic ~seed ~len = Synth { seed; off = 0; len }
let zero ~len = Zero { len }
let empty = Real { buf = Bytes.empty; pos = 0; len = 0 }

let length = function
  | Real r -> r.len
  | Synth s -> s.len
  | Zero z -> z.len
  | Cat c -> c.len

(* Deterministic synthetic content: 8-byte words derived from the seed
   and the absolute word index, so slices agree with their parent. *)
let synth_word seed widx =
  let mix z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
    in
    Int64.(logxor z (shift_right_logical z 31))
  in
  mix (Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int widx))

let synth_byte seed p =
  let word = synth_word seed (p / 8) in
  Char.chr (Int64.to_int (Int64.shift_right_logical word (8 * (p mod 8))) land 0xFF)

(* Word-at-a-time synthetic fill: 8x fewer mixes than the per-byte
   path, and the aligned middle is written as whole little-endian
   words (the byte layout [synth_byte] defines). *)
let synth_blit ~seed ~off dst ~pos ~len =
  let p = ref pos and o = ref off and n = ref len in
  while !n > 0 && !o land 7 <> 0 do
    Bytes.unsafe_set dst !p (synth_byte seed !o);
    incr p;
    incr o;
    decr n
  done;
  while !n >= 8 do
    Bytes.set_int64_le dst !p (synth_word seed (!o asr 3));
    p := !p + 8;
    o := !o + 8;
    n := !n - 8
  done;
  while !n > 0 do
    Bytes.unsafe_set dst !p (synth_byte seed !o);
    incr p;
    incr o;
    decr n
  done

(* Index of the part containing logical offset [i] (binary search on
   the cumulative offsets). *)
let part_index offs i =
  let lo = ref 0 and hi = ref (Array.length offs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if offs.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let get t i =
  if i < 0 || i >= length t then invalid_arg "Data.get: out of bounds";
  match t with
  | Real r -> Bytes.get r.buf (r.pos + i)
  | Synth s -> synth_byte s.seed (s.off + i)
  | Zero _ -> '\000'
  | Cat c ->
      let k = part_index c.offs i in
      let rel = i - c.offs.(k) in
      (match c.parts.(k) with
      | Real r -> Bytes.get r.buf (r.pos + rel)
      | Synth s -> synth_byte s.seed (s.off + rel)
      | Zero _ -> '\000'
      | Cat _ -> assert false)

(* Slice a leaf (no bounds checks; caller guarantees them). *)
let sub_leaf leaf ~pos ~len =
  match leaf with
  | Real r -> Real { buf = r.buf; pos = r.pos + pos; len }
  | Synth s -> Synth { seed = s.seed; off = s.off + pos; len }
  | Zero _ -> Zero { len }
  | Cat _ -> assert false

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Data.sub: out of bounds";
  match t with
  | Real _ | Synth _ | Zero _ -> if len = 0 then empty else sub_leaf t ~pos ~len
  | Cat c ->
      if len = 0 then empty
      else begin
        let first = part_index c.offs pos in
        let last = part_index c.offs (pos + len - 1) in
        if first = last then
          sub_leaf c.parts.(first) ~pos:(pos - c.offs.(first)) ~len
        else begin
          let nparts = last - first + 1 in
          let parts = Array.make nparts empty in
          let offs = Array.make nparts 0 in
          let logical = ref 0 in
          for k = first to last do
            let p = c.parts.(k) in
            let p_start = c.offs.(k) in
            let lo = max pos p_start in
            let hi = min (pos + len) (p_start + length p) in
            let piece = sub_leaf p ~pos:(lo - p_start) ~len:(hi - lo) in
            parts.(k - first) <- piece;
            offs.(k - first) <- !logical;
            logical := !logical + (hi - lo)
          done;
          Cat { parts; offs; len }
        end
      end

let iter_slices t f =
  let leaf_slice = function
    | Real r -> f (Sreal { buf = r.buf; pos = r.pos; len = r.len })
    | Synth s -> f (Ssynth { seed = s.seed; off = s.off; len = s.len })
    | Zero z -> f (Szero { len = z.len })
    | Cat _ -> assert false
  in
  match t with
  | Real r -> if r.len > 0 then leaf_slice (Real r)
  | Synth _ | Zero _ -> if length t > 0 then leaf_slice t
  | Cat c -> Array.iter leaf_slice c.parts

let fold_slices t ~init ~f =
  let acc = ref init in
  iter_slices t (fun s -> acc := f !acc s);
  !acc

let slice_length = function
  | Sreal r -> r.len
  | Ssynth s -> s.len
  | Szero z -> z.len

let blit_slice s ~src_pos ~dst ~dst_pos ~len =
  match s with
  | Sreal r -> Bytes.blit r.buf (r.pos + src_pos) dst dst_pos len
  | Ssynth sy -> synth_blit ~seed:sy.seed ~off:(sy.off + src_pos) dst ~pos:dst_pos ~len
  | Szero _ -> Bytes.fill dst dst_pos len '\000'

let blit_to t ~src_pos ~dst ~dst_pos ~len =
  if src_pos < 0 || len < 0 || src_pos + len > length t then
    invalid_arg "Data.blit_to: out of bounds";
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg "Data.blit_to: destination out of bounds";
  match t with
  | Real r -> Bytes.blit r.buf (r.pos + src_pos) dst dst_pos len
  | Synth s -> synth_blit ~seed:s.seed ~off:(s.off + src_pos) dst ~pos:dst_pos ~len
  | Zero _ -> Bytes.fill dst dst_pos len '\000'
  | Cat c ->
      if len > 0 then begin
        let first = part_index c.offs src_pos in
        let last = part_index c.offs (src_pos + len - 1) in
        for k = first to last do
          let p = c.parts.(k) in
          let p_start = c.offs.(k) in
          let lo = max src_pos p_start in
          let hi = min (src_pos + len) (p_start + length p) in
          let plen = hi - lo in
          (match p with
          | Real r -> Bytes.blit r.buf (r.pos + (lo - p_start)) dst (dst_pos + lo - src_pos) plen
          | Synth s ->
              synth_blit ~seed:s.seed ~off:(s.off + (lo - p_start)) dst
                ~pos:(dst_pos + lo - src_pos) ~len:plen
          | Zero _ -> Bytes.fill dst (dst_pos + lo - src_pos) plen '\000'
          | Cat _ -> assert false)
        done
      end

let to_bytes t =
  let n = length t in
  let out = Bytes.create n in
  blit_to t ~src_pos:0 ~dst:out ~dst_pos:0 ~len:n;
  out

(* O(1) concatenation: collect leaves in order (flattening nested
   Cats), coalescing adjacent slices of the same underlying stream so
   common patterns — contiguous synthetic slices, runs of zeros,
   adjacent windows of one buffer — collapse back into single leaves. *)
let concat parts =
  let leaves = ref [] in
  (* [push] prepends, coalescing with the current head. *)
  let push leaf =
    match (!leaves, leaf) with
    | _, (Real { len = 0; _ } | Synth { len = 0; _ } | Zero { len = 0 }) -> ()
    | Synth a :: rest, Synth b when a.seed = b.seed && a.off + a.len = b.off ->
        leaves := Synth { a with len = a.len + b.len } :: rest
    | Zero a :: rest, Zero b -> leaves := Zero { len = a.len + b.len } :: rest
    | Real a :: rest, Real b when a.buf == b.buf && a.pos + a.len = b.pos ->
        leaves := Real { a with len = a.len + b.len } :: rest
    | _, leaf -> leaves := leaf :: !leaves
  in
  List.iter
    (fun p ->
      match p with
      | Real _ | Synth _ | Zero _ -> push p
      | Cat c -> Array.iter push c.parts)
    parts;
  match List.rev !leaves with
  | [] -> empty
  | [ leaf ] -> leaf
  | leaves ->
      let parts = Array.of_list leaves in
      let n = Array.length parts in
      let offs = Array.make n 0 in
      let total = ref 0 in
      for i = 0 to n - 1 do
        offs.(i) <- !total;
        total := !total + length parts.(i)
      done;
      Cat { parts; offs; len = !total }

(* -------------------- content equality -------------------- *)

(* Lockstep walk over the two slice decompositions.  Structurally
   identical spans (same zero run, same synthetic stream at the same
   offset) compare in O(1); mixed spans compare through two small
   reusable windows, so nothing larger than a fixed chunk is ever
   materialized. *)
let window = 512

let equal a b =
  length a = length b
  && (a == b
     ||
     match (a, b) with
     | Zero _, Zero _ -> true
     | Synth x, Synth y when x.seed = y.seed && x.off = y.off -> true
     | _ ->
         let n = length a in
         if n = 0 then true
         else begin
           let la = fold_slices a ~init:[] ~f:(fun acc s -> s :: acc) in
           let lb = fold_slices b ~init:[] ~f:(fun acc s -> s :: acc) in
           let sa = Array.of_list (List.rev la) in
           let sb = Array.of_list (List.rev lb) in
           let wa = Bytes.create window and wb = Bytes.create window in
           let ia = ref 0 and ib = ref 0 in
           (* Offsets consumed within the current slice of each side. *)
           let oa = ref 0 and ob = ref 0 in
           let slice_len = function
             | Sreal r -> r.len
             | Ssynth s -> s.len
             | Szero z -> z.len
           in
           let ok = ref true in
           let remaining = ref n in
           while !ok && !remaining > 0 do
             let ca = sa.(!ia) and cb = sb.(!ib) in
             let avail_a = slice_len ca - !oa and avail_b = slice_len cb - !ob in
             let span = min avail_a avail_b in
             (* Structural fast paths for the overlapping span. *)
             let fast =
               match (ca, cb) with
               | Szero _, Szero _ -> true
               | Ssynth x, Ssynth y ->
                   x.seed = y.seed && x.off + !oa = y.off + !ob
               | Sreal x, Sreal y ->
                   x.buf == y.buf && x.pos + !oa = y.pos + !ob
               | _ -> false
             in
             if not fast then begin
               (* Chunked byte compare through the reusable windows. *)
               let done_ = ref 0 in
               while !ok && !done_ < span do
                 let w = min window (span - !done_) in
                 blit_slice ca ~src_pos:(!oa + !done_) ~dst:wa ~dst_pos:0 ~len:w;
                 blit_slice cb ~src_pos:(!ob + !done_) ~dst:wb ~dst_pos:0 ~len:w;
                 let i = ref 0 in
                 while !i < w do
                   if Bytes.unsafe_get wa !i <> Bytes.unsafe_get wb !i then begin
                     ok := false;
                     i := w
                   end
                   else incr i
                 done;
                 done_ := !done_ + w
               done
             end;
             oa := !oa + span;
             ob := !ob + span;
             remaining := !remaining - span;
             if !oa = slice_len ca then begin
               incr ia;
               oa := 0
             end;
             if !ob = slice_len cb then begin
               incr ib;
               ob := 0
             end
           done;
           !ok
         end)

(* [Cat] counts as "real": like the materialized concatenations it
   replaces, its content is concrete (embedded on the wire, eligible
   for compression), unlike purely descriptor-backed Synth/Zero. *)
let is_real = function Real _ | Cat _ -> true | Synth _ | Zero _ -> false

let leaf_count = function
  | Real _ | Synth _ | Zero _ -> 1
  | Cat c -> Array.length c.parts

let fill_ratio t ~zeros ~rng =
  let n = length t in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    if Sim.Rng.float rng 1.0 < zeros then Bytes.unsafe_set out i '\000'
    else Bytes.unsafe_set out i (Sim.Rng.byte rng)
  done;
  real out

let pp fmt t =
  match t with
  | Real r -> Format.fprintf fmt "real[%d]" r.len
  | Synth s ->
      Format.fprintf fmt "synth[seed=%d,off=%d,len=%d]" s.seed s.off s.len
  | Zero z -> Format.fprintf fmt "zero[%d]" z.len
  | Cat c -> Format.fprintf fmt "cat[%d parts,%d]" (Array.length c.parts) c.len
