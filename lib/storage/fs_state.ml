type error =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Eacces
  | Einval
  | Ecycle

let error_to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Enotempty -> "ENOTEMPTY"
  | Eacces -> "EACCES"
  | Einval -> "EINVAL"
  | Ecycle -> "ECYCLE"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type kind = File | Dir

type stat = {
  st_inum : int;
  st_kind : kind;
  st_size : int;
  st_nlink : int;
  st_mode : int;
}

type inode = {
  inum : int;
  kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable mode : int;
  extents : int Extent_map.t; (* files: tag is the publishing seq *)
  children : (string, int) Hashtbl.t; (* dirs *)
  mutable parent : int; (* dirs: for cycle checks *)
}

type t = { inodes : (int, inode) Hashtbl.t; mutable next_inum : int }

let root_inum = 1
let default_mode = 0o6 (* rw *)

let new_inode ~inum ~kind ~parent =
  {
    inum;
    kind;
    size = 0;
    nlink = 1;
    mode = default_mode;
    extents = Extent_map.create ();
    children = Hashtbl.create 8;
    parent;
  }

let create () =
  let t = { inodes = Hashtbl.create 64; next_inum = root_inum + 1 } in
  Hashtbl.add t.inodes root_inum
    (new_inode ~inum:root_inum ~kind:Dir ~parent:root_inum);
  t

let alloc_inum t =
  let i = t.next_inum in
  t.next_inum <- t.next_inum + 1;
  i

let inode t inum = Hashtbl.find_opt t.inodes inum

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let get_inode t inum =
  match inode t inum with Some i -> Ok i | None -> Error Enoent

let get_dir t inum =
  let* i = get_inode t inum in
  if i.kind <> Dir then Error Enotdir else Ok i

let get_file t inum =
  let* i = get_inode t inum in
  if i.kind <> File then Error Eisdir else Ok i

(* True iff [anc] is [inum] or an ancestor of [inum]: used to refuse
   renaming a directory under its own subtree. *)
let is_ancestor t ~anc ~inum =
  let rec climb inum fuel =
    if fuel = 0 then true (* corrupt parent chain: be conservative *)
    else if inum = anc then true
    else if inum = root_inum then false
    else
      match inode t inum with
      | Some i -> climb i.parent (fuel - 1)
      | None -> false
  in
  climb inum 4096

let check_writable i = if i.mode land 0o2 = 0 then Error Eacces else Ok ()
let check_readable i = if i.mode land 0o4 = 0 then Error Eacces else Ok ()

(* Shared pre-condition checks for apply and validate. *)
let precheck t (op : Oplog.op) =
  match op with
  | Create { parent; name; inum; dir = _ } ->
      let* p = get_dir t parent in
      let* () = check_writable p in
      if name = "" || String.contains name '/' then Error Einval
      else if Hashtbl.mem p.children name then Error Eexist
      else if Hashtbl.mem t.inodes inum then Error Eexist
      else Ok ()
  | Unlink { parent; name; inum } -> (
      let* p = get_dir t parent in
      let* () = check_writable p in
      match Hashtbl.find_opt p.children name with
      | None -> Error Enoent
      | Some child_inum when child_inum <> inum -> Error Einval
      | Some child_inum ->
          let* c = get_inode t child_inum in
          if c.kind = Dir && Hashtbl.length c.children > 0 then
            Error Enotempty
          else Ok ())
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } -> (
      let* sp = get_dir t src_parent in
      let* dp = get_dir t dst_parent in
      let* () = check_writable sp in
      let* () = check_writable dp in
      if dst_name = "" || String.contains dst_name '/' then Error Einval
      else
        match Hashtbl.find_opt sp.children src_name with
        | None -> Error Enoent
        | Some moved when moved <> inum -> Error Einval
        | Some moved -> (
            let* m = get_inode t moved in
            (* Directory-cycle prevention: the destination directory
               must not live inside the moved subtree. *)
            if m.kind = Dir && is_ancestor t ~anc:moved ~inum:dst_parent then
              Error Ecycle
            else
              match Hashtbl.find_opt dp.children dst_name with
              | None -> Ok ()
              | Some existing when existing = moved -> Ok ()
              | Some existing ->
                  let* e = get_inode t existing in
                  (* Overwrite target: must match kind; dirs must be
                     empty. *)
                  if e.kind <> m.kind then
                    Error (if e.kind = Dir then Eisdir else Enotdir)
                  else if e.kind = Dir && Hashtbl.length e.children > 0 then
                    Error Enotempty
                  else Ok ()))
  | Write { inum; offset; data = _ } ->
      let* f = get_file t inum in
      let* () = check_writable f in
      if offset < 0 then Error Einval else Ok ()
  | Truncate { inum; size } ->
      let* f = get_file t inum in
      let* () = check_writable f in
      if size < 0 then Error Einval else Ok ()

let validate = precheck

let drop_inode t (i : inode) =
  i.nlink <- i.nlink - 1;
  if i.nlink <= 0 then begin
    Extent_map.clear i.extents;
    Hashtbl.remove t.inodes i.inum
  end

let apply t (op : Oplog.op) =
  let* () = precheck t op in
  (match op with
  | Create { parent; name; inum; dir } ->
      let p = Hashtbl.find t.inodes parent in
      Hashtbl.add p.children name inum;
      Hashtbl.add t.inodes inum
        (new_inode ~inum ~kind:(if dir then Dir else File) ~parent);
      if inum >= t.next_inum then t.next_inum <- inum + 1
  | Unlink { parent; name; inum } ->
      let p = Hashtbl.find t.inodes parent in
      Hashtbl.remove p.children name;
      let c = Hashtbl.find t.inodes inum in
      drop_inode t c
  | Rename { src_parent; src_name; dst_parent; dst_name; inum } ->
      let sp = Hashtbl.find t.inodes src_parent in
      let dp = Hashtbl.find t.inodes dst_parent in
      Hashtbl.remove sp.children src_name;
      (match Hashtbl.find_opt dp.children dst_name with
      | Some existing when existing <> inum ->
          let e = Hashtbl.find t.inodes existing in
          Hashtbl.remove dp.children dst_name;
          drop_inode t e
      | _ -> ());
      Hashtbl.replace dp.children dst_name inum;
      let m = Hashtbl.find t.inodes inum in
      if m.kind = Dir then m.parent <- dst_parent
  | Write { inum; offset; data } ->
      let f = Hashtbl.find t.inodes inum in
      Extent_map.insert f.extents ~at:offset data 0;
      if offset + Data.length data > f.size then
        f.size <- offset + Data.length data
  | Truncate { inum; size } ->
      let f = Hashtbl.find t.inodes inum in
      if size < f.size then
        Extent_map.remove_range f.extents ~pos:size ~len:(f.size - size);
      f.size <- size);
  Ok ()

let lookup t dir name =
  let* d = get_dir t dir in
  match Hashtbl.find_opt d.children name with
  | Some i -> Ok i
  | None -> Error Enoent

let resolve t path =
  if path = "" || path.[0] <> '/' then Error Einval
  else begin
    let parts =
      List.filter (fun s -> s <> "") (String.split_on_char '/' path)
    in
    List.fold_left
      (fun acc name ->
        let* dir = acc in
        lookup t dir name)
      (Ok root_inum) parts
  end

let stat t inum =
  let* i = get_inode t inum in
  Ok
    {
      st_inum = i.inum;
      st_kind = i.kind;
      st_size = i.size;
      st_nlink = i.nlink;
      st_mode = i.mode;
    }

let read t ~inum ~pos ~len =
  let* f = get_file t inum in
  let* () = check_readable f in
  if pos < 0 || len < 0 then Error Einval
  else begin
    let len = max 0 (min len (f.size - pos)) in
    let pieces =
      List.map
        (function `Data d -> d | `Hole n -> Data.zero ~len:n)
        (Extent_map.read_range f.extents ~pos ~len)
    in
    Ok (Data.concat pieces)
  end

let file_size t inum =
  match inode t inum with Some i -> i.size | None -> 0

let extent_depth t inum =
  match inode t inum with
  | Some i -> Extent_map.depth i.extents
  | None -> 0

let list_dir t inum =
  let* d = get_dir t inum in
  Ok (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) d.children []))

let chmod t inum ~mode =
  let* i = get_inode t inum in
  i.mode <- mode;
  Ok ()

let readable t inum =
  match inode t inum with Some i -> i.mode land 0o4 <> 0 | None -> false

let writable t inum =
  match inode t inum with Some i -> i.mode land 0o2 <> 0 | None -> false

(* Deterministic summary of the reachable tree — paths, kinds, sizes
   and full file contents — for byte-exact replica comparison.  Only
   root-reachable inodes count; orphans awaiting reclamation don't
   affect what clients can observe. *)
let digest t =
  (* Streams the exact byte sequence the historical Buffer-based walk
     produced straight into the CRC register, so digests are unchanged
     while file contents (including holes) never materialize. *)
  let crc = ref 0l in
  let str s = crc := Crc32.update_string !crc s in
  let rec walk path inum =
    match inode t inum with
    | None -> ()
    | Some i -> (
        str path;
        str "|";
        str (match i.kind with Dir -> "d" | File -> "f");
        str (string_of_int i.size);
        str ";";
        match i.kind with
        | File ->
            List.iter
              (function
                | `Data d -> crc := Crc32.update_data !crc d
                | `Hole n -> crc := Crc32.update_zeros !crc n)
              (Extent_map.read_range i.extents ~pos:0 ~len:i.size)
        | Dir ->
            let names =
              List.sort compare
                (Hashtbl.fold (fun k _ acc -> k :: acc) i.children [])
            in
            List.iter
              (fun name ->
                match Hashtbl.find_opt i.children name with
                | Some child -> walk (path ^ "/" ^ name) child
                | None -> ())
              names)
  in
  walk "" root_inum;
  !crc

let live_inodes t = Hashtbl.length t.inodes

(* ---- bit-rot injection and scrub support ---------------------------- *)

let file_crc t inum =
  match inode t inum with
  | Some i when i.kind = File ->
      let crc = ref 0l in
      List.iter
        (function
          | `Data d -> crc := Crc32.update_data !crc d
          | `Hole n -> crc := Crc32.update_zeros !crc n)
        (Extent_map.read_range i.extents ~pos:0 ~len:i.size);
      Some !crc
  | _ -> None

let scrub_candidates t =
  List.sort compare
    (Hashtbl.fold
       (fun k i acc -> if i.kind = File && i.size > 0 then k :: acc else acc)
       t.inodes [])

let tamper t ~salt =
  match scrub_candidates t with
  | [] -> None
  | files ->
      let salt = abs salt in
      let inum = List.nth files (salt mod List.length files) in
      let i = Hashtbl.find t.inodes inum in
      let pos = salt / 7 mod i.size in
      let byte =
        match Extent_map.read_range i.extents ~pos ~len:1 with
        | [ `Data d ] ->
            let b = Bytes.create 1 in
            Data.blit_to d ~src_pos:0 ~dst:b ~dst_pos:0 ~len:1;
            Bytes.get b 0
        | _ -> '\000'
      in
      let flipped = Char.chr (Char.code byte lxor (1 + (salt mod 255))) in
      Extent_map.insert i.extents ~at:pos (Data.of_string (String.make 1 flipped)) 0;
      Some inum

let copy_file_content ~src ~dst inum =
  match (inode src inum, inode dst inum) with
  | Some s, Some d when s.kind = File && d.kind = File ->
      let pieces =
        List.map
          (function `Data dd -> dd | `Hole n -> Data.zero ~len:n)
          (Extent_map.read_range s.extents ~pos:0 ~len:s.size)
      in
      Extent_map.clear d.extents;
      let data = Data.concat pieces in
      if Data.length data > 0 then Extent_map.insert d.extents ~at:0 data 0;
      d.size <- s.size;
      true
  | _ -> false

let total_mapped_bytes t =
  Hashtbl.fold
    (fun _ i acc -> acc + Extent_map.mapped_bytes i.extents)
    t.inodes 0
