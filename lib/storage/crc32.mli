(** CRC-32 (IEEE 802.3 polynomial), table-driven, with streaming fast
    paths.

    Used to checksum log entries; the NICFS validation stage recomputes
    it over fetched chunks, which is part of the real computational load
    offloaded to the SmartNIC.  The internal register is a native [int]
    (Int32 arithmetic boxes in OCaml); the [int32] type survives at the
    API edges only. *)

val bytes : Bytes.t -> int32
(** Checksum of a whole buffer. *)

val string : string -> int32

val update : int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Incremental: extend a running checksum. Start from [0l]. *)

val update_string : int32 -> string -> int32

val combine : int32 -> int32 -> int -> int32
(** [combine crc_a crc_b len_b] is the checksum of the concatenation
    [A ++ B] given [crc_a = crc A], [crc_b = crc B] and [len_b = |B|]
    — the classic GF(2)-matrix [crc32_combine], O(log len_b). *)

val update_zeros : int32 -> int -> int32
(** [update_zeros crc n] extends [crc] with [n] zero bytes: O(n) table
    steps for short runs, O(log n) matrix combines for long ones.
    Equals [update crc (Bytes.make n '\000') ~pos:0 ~len:n]. *)

val update_synth : int32 -> seed:int -> off:int -> len:int -> int32
(** Extend [crc] with a synthetic span (see {!Data.synth_word}),
    feeding the register directly from generator words — no buffer is
    materialized. *)

val update_data : int32 -> Data.t -> int32
(** Extend [crc] with a payload by streaming its slices: real spans use
    the table loop in place, zero runs the O(log n) operator, synthetic
    spans the direct word path. *)

val data : Data.t -> int32
(** Checksum of a payload; [data d = update_data 0l d]. *)
