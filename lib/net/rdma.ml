open Hw

let pm_charge medium (node : Node.t) ~write n =
  match medium with
  | `Dram -> ()
  | `Pm -> if write then Pm.write node.pm n else Pm.read node.pm n

let move ?(src_medium = `Dram) ?(dst_medium = `Dram) ~src ~dst n =
  let src_node = Loc.node src and dst_node = Loc.node dst in
  let verdict = Inject.consult ~point:Inject.Rdma_move ~src ~dst ~bytes:n in
  (match verdict with
  (* A reordered one-sided transfer lands late: at this layer that is
     indistinguishable from extra fabric latency. *)
  | Inject.Delay d | Inject.Reorder d -> Sim.Engine.sleep d
  | Inject.Pass | Inject.Drop | Inject.Duplicate | Inject.Corrupt _ -> ());
  let transfer () =
    pm_charge src_medium src_node ~write:false n;
    if Loc.same_node src dst then begin
      match (src, dst) with
      | Loc.Host _, Loc.Nic _ | Loc.Nic _, Loc.Host _ ->
          Pcie.transfer src_node.pcie n
      | Loc.Host _, Loc.Host _ | Loc.Nic _, Loc.Nic _ ->
          (* Same memory domain: the copy engine (CPU/DMA) is modelled by
             the caller; RDMA adds nothing. *)
          ()
    end
    else begin
      (* Crossing host PCIe adds latency but its bandwidth (8 GB/s) never
         binds behind the 2.2 GB/s port, so only latency is charged. *)
      if Loc.is_host src then Sim.Engine.sleep (Pcie.latency src_node.pcie);
      Netlink.send ~src:src_node.port ~dst:dst_node.port n;
      if Loc.is_host dst then Sim.Engine.sleep (Pcie.latency dst_node.pcie)
    end
  in
  transfer ();
  (* A duplicated transfer occupies the wire twice; one-sided RDMA
     writes are idempotent, so the second landing is harmless. *)
  (match verdict with Inject.Duplicate -> transfer () | _ -> ());
  (* A dropped transfer was transmitted (sender-side costs paid, wire
     occupied) but discarded before landing at the receiver.  Corrupt
     payloads land — detection is the job of the end-to-end CRC trailer
     checked by the message layer above. *)
  match verdict with
  | Inject.Drop -> ()
  | Inject.Pass | Inject.Delay _ | Inject.Duplicate | Inject.Reorder _
  | Inject.Corrupt _ ->
      pm_charge dst_medium dst_node ~write:true n

(* ------------------------------------------------------------------ *)
(* Split cross-node transfer for per-node sharded deployments.

   When source and destination nodes live on different shards, one
   [move] cannot run: it would sleep on the source engine and mutate
   destination-side state (PM device time, port receive counter) owned
   by another domain.  The sharded transport instead splits the move:

     source shard:       [send_src]              (PM read, host PCIe
                                                  hop, egress share)
     cross-shard delay:  [flight ~dst]           (switch latency, plus
                                                  the destination PCIe
                                                  hop for host memory)
     destination shard:  [land_dst]              (port accounting, PM
                                                  write placement)

   The three pieces charge exactly the costs [move] charges, in the
   same order; only the shard executing each half differs.  Sharded
   runs are fault-free (the injection hook is engine-local and per-node
   partitioning is not offered under injection), so no verdict is
   consulted here. *)

let send_src ?(src_medium = `Dram) ~src n =
  let src_node = Loc.node src in
  pm_charge src_medium src_node ~write:false n;
  if Loc.is_host src then Sim.Engine.sleep (Pcie.latency src_node.pcie);
  Bandwidth.transfer (Netlink.egress src_node.port) n

let flight ~dst =
  let dst_node = Loc.node dst in
  dst_node.Node.cfg.Config.net_latency
  + if Loc.is_host dst then Pcie.latency dst_node.pcie else 0

let land_dst ?(dst_medium = `Dram) ~dst n =
  let dst_node = Loc.node dst in
  Netlink.deliver dst_node.port n;
  pm_charge dst_medium dst_node ~write:true n

let move_time_estimate ~src ~dst n =
  let src_node = Loc.node src and dst_node = Loc.node dst in
  if Loc.same_node src dst then begin
    match (src, dst) with
    | Loc.Host _, Loc.Nic _ | Loc.Nic _, Loc.Host _ ->
        Pcie.transfer_time src_node.pcie n
    | _ -> 0
  end
  else begin
    let pcie_hops =
      (if Loc.is_host src then Pcie.latency src_node.pcie else 0)
      + if Loc.is_host dst then Pcie.latency dst_node.pcie else 0
    in
    let _ = dst_node in
    pcie_hops
    + Bandwidth.time_for (Netlink.egress src_node.port) n
    + src_node.cfg.Config.net_latency
  end
