open Sim

type kind =
  | Busy_poll
  | Event of { workers : int; prio : Hw.Cpu.prio }

type ('req, 'resp) msg = Req of 'req * 'resp Ivar.t option | Stop

type ('req, 'resp) t = {
  name : string;
  loc : Loc.t;
  inbox : ('req, 'resp) msg Mailbox.t;
  kind : kind;
  handler : 'req -> 'resp;
  dispatch_cost : Time.t;
  poll_overhead : Time.t;
  n_workers : int;
  mutable group : Engine.group option;
}

let pool_of loc =
  match loc with
  | Loc.Host n -> n.Hw.Node.host
  | Loc.Nic n -> Hw.Smartnic.cpu n.Hw.Node.nic

let answer iv_opt resp =
  match iv_opt with Some iv -> Ivar.fill iv resp | None -> ()

let busy_poll_worker t pool =
  let rec loop () =
    match Mailbox.recv t.inbox with
    | Stop -> Hw.Cpu.unreserve_core pool
    | Req (req, iv) ->
        (* Poll granularity: the spinner notices the request almost
           immediately; no scheduler involvement. *)
        Engine.sleep t.poll_overhead;
        answer iv (t.handler req);
        loop ()
  in
  loop ()

let event_worker t pool prio =
  let rec loop () =
    match Mailbox.recv t.inbox with
    | Stop -> ()
    | Req (req, iv) ->
        (* Wake-up: the worker must get CPU time to even look at the
           request; under contention this queues. *)
        Hw.Cpu.run ~prio pool t.dispatch_cost;
        answer iv (t.handler req);
        loop ()
  in
  loop ()

let spawn_workers t =
  let pool = pool_of t.loc in
  match t.kind with
  | Busy_poll ->
      Engine.spawn ?group:t.group ~name:(t.name ^ ".poll") (fun () ->
          busy_poll_worker t pool)
  | Event { workers; prio } ->
      for i = 1 to workers do
        Engine.spawn ?group:t.group
          ~name:(Printf.sprintf "%s.worker%d" t.name i)
          (fun () -> event_worker t pool prio)
      done

let create ?(dispatch_cost = Time.us 5) ?(poll_overhead = Time.ns 200) ?group
    ~name ~loc ~kind ~handler () =
  let n_workers =
    match kind with Busy_poll -> 1 | Event { workers; _ } -> workers
  in
  let t =
    {
      name;
      loc;
      inbox = Mailbox.create ();
      kind;
      handler;
      dispatch_cost;
      poll_overhead;
      n_workers;
      group;
    }
  in
  (match kind with
  | Busy_poll -> Hw.Cpu.reserve_core (pool_of loc)
  | Event _ -> ());
  spawn_workers t;
  t

let restart ?group t =
  (* The previous workers are assumed dead (their group was killed), so
     their reserved core stays reserved: a busy-poll restart reuses it
     rather than reserving a second one.  In-flight requests are lost
     with the crash. *)
  (match group with Some _ -> t.group <- group | None -> ());
  Mailbox.clear t.inbox;
  spawn_workers t

let loc t = t.loc
let msg_bytes = 64

let call t ~from ?(bytes = msg_bytes) req =
  match Inject.consult ~point:Inject.Rpc_call ~src:from ~dst:t.loc ~bytes with
  | Inject.Drop ->
      (* The request is lost and the caller has no timeout: it waits
         forever, like a thread blocked on a dead peer.  Use
         {!call_timeout} or {!call_retry} on paths that must survive
         message loss. *)
      Rdma.move ~src:from ~dst:t.loc bytes;
      Engine.suspend (fun (_ : 'resp -> unit) -> ())
  | (Inject.Pass | Inject.Delay _) as v ->
      (match v with Inject.Delay d -> Engine.sleep d | _ -> ());
      Rdma.move ~src:from ~dst:t.loc bytes;
      let iv = Ivar.create () in
      Mailbox.send t.inbox (Req (req, Some iv));
      let resp = Ivar.read iv in
      Rdma.move ~src:t.loc ~dst:from msg_bytes;
      resp

let call_timeout t ~from ?(bytes = msg_bytes) ~timeout req =
  let verdict =
    Inject.consult ~point:Inject.Rpc_call ~src:from ~dst:t.loc ~bytes
  in
  match verdict with
  | Inject.Drop ->
      Rdma.move ~src:from ~dst:t.loc bytes;
      Engine.sleep timeout;
      None
  | Inject.Pass | Inject.Delay _ ->
      (match verdict with Inject.Delay d -> Engine.sleep d | _ -> ());
      Rdma.move ~src:from ~dst:t.loc bytes;
      let iv = Ivar.create () in
      Mailbox.send t.inbox (Req (req, Some iv));
      (match Ivar.read_timeout iv timeout with
      | None -> None
      | Some resp ->
          Rdma.move ~src:t.loc ~dst:from msg_bytes;
          Some resp)

let call_retry t ~from ?(bytes = msg_bytes) ?(policy = Backoff.default)
    ?(attempts = max_int) req =
  if not (Inject.active ()) then
    (* Perfect network: a plain call always completes, and skipping the
       timeout machinery keeps fault-free event schedules byte-identical
       to the pre-retry behaviour. *)
    Some (call t ~from ~bytes req)
  else begin
    let rec go attempt =
      if attempt >= attempts then None
      else
        let timeout = Backoff.delay policy ~attempt in
        match call_timeout t ~from ~bytes ~timeout req with
        | Some _ as r -> r
        | None ->
            (* The per-attempt timeout ladder is itself the backoff: the
               failed attempt already waited [timeout], and the next one
               waits longer. *)
            go (attempt + 1)
    in
    go 0
  end

let post t ~from ?(bytes = msg_bytes) req =
  let verdict =
    Inject.consult ~point:Inject.Rpc_post ~src:from ~dst:t.loc ~bytes
  in
  (match verdict with Inject.Delay d -> Engine.sleep d | _ -> ());
  Rdma.move ~src:from ~dst:t.loc bytes;
  match verdict with
  | Inject.Drop -> (* transmitted, lost in the fabric *) ()
  | Inject.Pass | Inject.Delay _ -> Mailbox.send t.inbox (Req (req, None))

let queue_length t = Mailbox.length t.inbox

let shutdown t =
  for _ = 1 to t.n_workers do
    Mailbox.send t.inbox Stop
  done
