open Sim

type kind =
  | Busy_poll
  | Event of { workers : int; prio : Hw.Cpu.prio }

(* [key] is the per-caller sequence number stamped on requests while
   fault injection is active: fabric duplicates and caller retries of
   one logical request share a key, so the server-side dedup cache can
   execute it once and replay the reply.  [tainted] models in-flight
   bit corruption ((offset, xor) from the [Corrupt] verdict); [crc] is
   the end-to-end integrity trailer computed by the sender.  All three
   are absent on the fault-free path, which therefore schedules
   byte-identically to the pre-hardening code. *)
type ('req, 'resp) msg =
  | Req of {
      req : 'req;
      iv : 'resp Ivar.t option;
      key : (int * int) option;
      tainted : (int * int) option;
      crc : int32 option;
    }
  | Stop

type 'resp dedup_state = Running | Done of 'resp

type ('req, 'resp) t = {
  name : string;
  loc : Loc.t;
  inbox : ('req, 'resp) msg Mailbox.t;
  kind : kind;
  handler : 'req -> 'resp;
  integrity : ('req -> int32 option) option;
  dispatch_cost : Time.t;
  poll_overhead : Time.t;
  n_workers : int;
  mutable group : Engine.group option;
  (* Bounded FIFO dedup cache: key -> execution state. *)
  dedup : (int * int, 'resp dedup_state) Hashtbl.t;
  dedup_fifo : (int * int) Queue.t;
}

let dedup_cap = 512

(* Mutation knob for the conformance self-test: with the cache disabled
   every delivery executes the handler, so duplicated requests must be
   caught by the invariant layer (proving the cache is load-bearing). *)
let disable_dedup = ref false

let pool_of loc =
  match loc with
  | Loc.Host n -> n.Hw.Node.host
  | Loc.Nic n -> Hw.Smartnic.cpu n.Hw.Node.nic

let answer iv_opt resp =
  match iv_opt with Some iv -> Ivar.fill iv resp | None -> ()

(* Guarded reply fill: replays and late duplicate executions must not
   double-fill the caller's reply slot. *)
let answer_once iv_opt resp =
  match iv_opt with
  | Some iv when not (Ivar.is_filled iv) -> Ivar.fill iv resp
  | _ -> ()

(* ---- per-caller sequence numbers ---------------------------------- *)

let caller_id from =
  (2 * (Loc.node from).Hw.Node.id) + if Loc.is_host from then 0 else 1

(* Domain-local: simulations sharded across domains each advance their
   own counter table instead of racing on a shared Hashtbl.  Sequence
   numbers only need to be fresh per (caller, server) — they carry no
   timing information — so per-domain numbering leaves simulation
   results identical for any shard-to-domain layout. *)
let caller_seqs_key : (int, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let fresh_key ~from =
  let caller_seqs = Domain.DLS.get caller_seqs_key in
  let c = caller_id from in
  let n = match Hashtbl.find_opt caller_seqs c with Some n -> n | None -> 0 in
  Hashtbl.replace caller_seqs c (n + 1);
  (c, n)

(* ---- end-to-end integrity trailer --------------------------------- *)

let sender_crc t req =
  if Inject.active () then
    match t.integrity with Some f -> f req | None -> None
  else None

(* Model of wire damage to the frame: the byte at [offset] was XORed
   with [xor], so the CRC the receiver computes over the damaged frame
   differs from the sender's trailer by a nonzero perturbation. *)
let damaged_crc crc (offset, xor) =
  Int32.logxor crc
    (Int32.of_int ((((xor land 0xFF) lsl (offset land 15)) lor 1) land 0x7FFFFFFF))

let frame_ok t ~tainted ~crc req =
  match (crc, tainted) with
  | None, None -> true
  | None, Some _ ->
      (* No end-to-end trailer on this message class: the link-level
         FCS still catches the damage and discards the frame. *)
      false
  | Some sent, _ -> (
      let received =
        match tainted with None -> sent | Some dmg -> damaged_crc sent dmg
      in
      match t.integrity with
      | Some f -> (
          match f req with
          | Some recomputed -> Int32.equal recomputed received
          | None -> tainted = None)
      | None -> tainted = None)

(* ---- server-side dedup --------------------------------------------- *)

let dedup_begin t key =
  if !disable_dedup then `Execute
  else
    match Hashtbl.find_opt t.dedup key with
    | Some Running -> `Suppress
    | Some (Done resp) -> `Replay resp
    | None ->
        if Queue.length t.dedup_fifo >= dedup_cap then begin
          let oldest = Queue.pop t.dedup_fifo in
          Hashtbl.remove t.dedup oldest
        end;
        Queue.push key t.dedup_fifo;
        Hashtbl.replace t.dedup key Running;
        `Execute

let dedup_done t key resp =
  if (not !disable_dedup) && Hashtbl.mem t.dedup key then
    Hashtbl.replace t.dedup key (Done resp)

(* One delivered request, after the worker paid its wake-up cost. *)
let serve t ~req ~iv ~key ~tainted ~crc =
  if not (frame_ok t ~tainted ~crc req) then
    (* NACK: the frame is discarded without touching the handler; the
       sender's retry/retransmission path will resend it. *)
    Counters.bump "net.corrupt-frame"
  else
    match key with
    | None -> answer iv (t.handler req)
    | Some k -> (
        match dedup_begin t k with
        | `Replay resp ->
            Counters.bump "rpc.dedup-hit";
            Counters.bump "rpc.reply-replayed";
            answer_once iv resp
        | `Suppress -> Counters.bump "rpc.dedup-hit"
        | `Execute ->
            let resp = t.handler req in
            dedup_done t k resp;
            answer_once iv resp)

let busy_poll_worker t pool =
  let rec loop () =
    match Mailbox.recv t.inbox with
    | Stop -> Hw.Cpu.unreserve_core pool
    | Req { req; iv; key; tainted; crc } ->
        (* Poll granularity: the spinner notices the request almost
           immediately; no scheduler involvement. *)
        Engine.sleep t.poll_overhead;
        serve t ~req ~iv ~key ~tainted ~crc;
        loop ()
  in
  loop ()

let event_worker t pool prio =
  let rec loop () =
    match Mailbox.recv t.inbox with
    | Stop -> ()
    | Req { req; iv; key; tainted; crc } ->
        (* Wake-up: the worker must get CPU time to even look at the
           request; under contention this queues. *)
        Hw.Cpu.run ~prio pool t.dispatch_cost;
        serve t ~req ~iv ~key ~tainted ~crc;
        loop ()
  in
  loop ()

let spawn_workers t =
  let pool = pool_of t.loc in
  match t.kind with
  | Busy_poll ->
      Engine.spawn ?group:t.group ~name:(t.name ^ ".poll") (fun () ->
          busy_poll_worker t pool)
  | Event { workers; prio } ->
      for i = 1 to workers do
        Engine.spawn ?group:t.group
          ~name:(Printf.sprintf "%s.worker%d" t.name i)
          (fun () -> event_worker t pool prio)
      done

let create ?(dispatch_cost = Time.us 5) ?(poll_overhead = Time.ns 200) ?group
    ?integrity ~name ~loc ~kind ~handler () =
  let n_workers =
    match kind with Busy_poll -> 1 | Event { workers; _ } -> workers
  in
  let t =
    {
      name;
      loc;
      inbox = Mailbox.create ();
      kind;
      handler;
      integrity;
      dispatch_cost;
      poll_overhead;
      n_workers;
      group;
      dedup = Hashtbl.create 64;
      dedup_fifo = Queue.create ();
    }
  in
  (match kind with
  | Busy_poll -> Hw.Cpu.reserve_core (pool_of loc)
  | Event _ -> ());
  spawn_workers t;
  t

let restart ?group t =
  (* The previous workers are assumed dead (their group was killed), so
     their reserved core stays reserved: a busy-poll restart reuses it
     rather than reserving a second one.  In-flight requests are lost
     with the crash, and the DRAM dedup cache is lost too — survivors'
     retransmissions may re-execute, which handlers tolerate. *)
  (match group with Some _ -> t.group <- group | None -> ());
  Mailbox.clear t.inbox;
  Hashtbl.reset t.dedup;
  Queue.clear t.dedup_fifo;
  spawn_workers t

let loc t = t.loc
let msg_bytes = 64

let send_req t ~iv ~key ~tainted ~crc req =
  Mailbox.send t.inbox (Req { req; iv; key; tainted; crc })

let call t ~from ?(bytes = msg_bytes) req =
  match Inject.consult ~point:Inject.Rpc_call ~src:from ~dst:t.loc ~bytes with
  | Inject.Drop ->
      (* The request is lost and the caller has no timeout: it waits
         forever, like a thread blocked on a dead peer.  Use
         {!call_timeout} or {!call_retry} on paths that must survive
         message loss. *)
      Rdma.move ~src:from ~dst:t.loc bytes;
      Engine.suspend (fun (_ : 'resp -> unit) -> ())
  | (Inject.Pass | Inject.Delay _ | Inject.Reorder _ | Inject.Duplicate
    | Inject.Corrupt _) as v ->
      (match v with
      | Inject.Delay d | Inject.Reorder d -> Engine.sleep d
      | _ -> ());
      Rdma.move ~src:from ~dst:t.loc bytes;
      let key = if Inject.active () then Some (fresh_key ~from) else None in
      let crc = sender_crc t req in
      let iv = Ivar.create () in
      (match v with
      | Inject.Corrupt { offset; xor } ->
          send_req t ~iv:(Some iv) ~key ~tainted:(Some (offset, xor)) ~crc req
      | Inject.Duplicate ->
          (* The fabric retransmits the frame: wire paid twice, the
             server sees two copies of the same sequence number. *)
          Rdma.move ~src:from ~dst:t.loc bytes;
          send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req;
          send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req
      | _ -> send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req);
      let resp = Ivar.read iv in
      Rdma.move ~src:t.loc ~dst:from msg_bytes;
      resp

let call_timeout t ~from ?(bytes = msg_bytes) ?key ~timeout req =
  let verdict =
    Inject.consult ~point:Inject.Rpc_call ~src:from ~dst:t.loc ~bytes
  in
  match verdict with
  | Inject.Drop ->
      Rdma.move ~src:from ~dst:t.loc bytes;
      Engine.sleep timeout;
      None
  | (Inject.Pass | Inject.Delay _ | Inject.Reorder _ | Inject.Duplicate
    | Inject.Corrupt _) as v -> (
      (match v with
      | Inject.Delay d | Inject.Reorder d -> Engine.sleep d
      | _ -> ());
      Rdma.move ~src:from ~dst:t.loc bytes;
      let key =
        match key with
        | Some _ as k -> k
        | None -> if Inject.active () then Some (fresh_key ~from) else None
      in
      let crc = sender_crc t req in
      let iv = Ivar.create () in
      (match v with
      | Inject.Corrupt { offset; xor } ->
          send_req t ~iv:(Some iv) ~key ~tainted:(Some (offset, xor)) ~crc req
      | Inject.Duplicate ->
          Rdma.move ~src:from ~dst:t.loc bytes;
          send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req;
          send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req
      | _ -> send_req t ~iv:(Some iv) ~key ~tainted:None ~crc req);
      match Ivar.read_timeout iv timeout with
      | None -> None
      | Some resp ->
          Rdma.move ~src:t.loc ~dst:from msg_bytes;
          Some resp)

let call_retry t ~from ?(bytes = msg_bytes) ?(policy = Backoff.default)
    ?(attempts = max_int) req =
  if not (Inject.active ()) then
    (* Perfect network: a plain call always completes, and skipping the
       timeout machinery keeps fault-free event schedules byte-identical
       to the pre-retry behaviour. *)
    Some (call t ~from ~bytes req)
  else begin
    (* One key for the whole logical request: every retry is a
       retransmission, so a server that already executed it replays the
       cached reply instead of re-executing. *)
    let key = fresh_key ~from in
    let rec go attempt =
      if attempt >= attempts then None
      else
        let timeout = Backoff.delay policy ~attempt in
        match call_timeout t ~from ~bytes ~key ~timeout req with
        | Some _ as r -> r
        | None ->
            Counters.bump "net.retransmit";
            (* The per-attempt timeout ladder is itself the backoff: the
               failed attempt already waited [timeout], and the next one
               waits longer. *)
            go (attempt + 1)
    in
    go 0
  end

let post t ~from ?(bytes = msg_bytes) req =
  let verdict =
    Inject.consult ~point:Inject.Rpc_post ~src:from ~dst:t.loc ~bytes
  in
  let key = if Inject.active () then Some (fresh_key ~from) else None in
  let crc = sender_crc t req in
  let deliver ~tainted () =
    Rdma.move ~src:from ~dst:t.loc bytes;
    send_req t ~iv:None ~key ~tainted ~crc req
  in
  match verdict with
  | Inject.Pass -> deliver ~tainted:None ()
  | Inject.Delay d ->
      Engine.sleep d;
      deliver ~tainted:None ()
  | Inject.Drop -> (* transmitted, lost in the fabric *)
      Rdma.move ~src:from ~dst:t.loc bytes
  | Inject.Duplicate ->
      deliver ~tainted:None ();
      deliver ~tainted:None ()
  | Inject.Corrupt { offset; xor } -> deliver ~tainted:(Some (offset, xor)) ()
  | Inject.Reorder d ->
      (* True reordering: the sender continues immediately while this
         frame is held back, so later posts overtake it. *)
      Engine.spawn ~name:(t.name ^ ".reorder") (fun () ->
          Engine.sleep d;
          deliver ~tainted:None ())

(* Shard-local landing half of a routed one-way message: the sending
   shard already paid the wire costs ([Rdma.send_src] + flight delay),
   so this only enqueues the request for the server's workers.  Sharded
   runs are fault-free, hence no key/CRC machinery. *)
let deliver t req = send_req t ~iv:None ~key:None ~tainted:None ~crc:None req

let queue_length t = Mailbox.length t.inbox

let shutdown t =
  for _ = 1 to t.n_workers do
    Mailbox.send t.inbox Stop
  done
