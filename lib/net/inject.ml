type point = Rdma_move | Rpc_call | Rpc_post

type verdict =
  | Pass
  | Drop
  | Delay of Sim.Time.t
  | Duplicate
  | Reorder of Sim.Time.t
  | Corrupt of { offset : int; xor : int }

type hook = point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict

let the_hook : hook option ref = ref None

let set h = the_hook := Some h
let clear () = the_hook := None
let active () = Option.is_some !the_hook

let consult ~point ~src ~dst ~bytes =
  match !the_hook with
  | None -> Pass
  | Some h -> h ~point ~src ~dst ~bytes

let point_name = function
  | Rdma_move -> "rdma-move"
  | Rpc_call -> "rpc-call"
  | Rpc_post -> "rpc-post"

let verdict_name = function
  | Pass -> "pass"
  | Drop -> "drop"
  | Delay _ -> "delay"
  | Duplicate -> "duplicate"
  | Reorder _ -> "reorder"
  | Corrupt _ -> "corrupt"
