type point = Rdma_move | Rpc_call | Rpc_post

type verdict =
  | Pass
  | Drop
  | Delay of Sim.Time.t
  | Duplicate
  | Reorder of Sim.Time.t
  | Corrupt of { offset : int; xor : int }

type hook = point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict

(* Process-global fallback hook, used only when no engine is running on
   the calling domain (e.g. tests installing a hook before [Engine.run]).
   Hooks installed from inside a simulation process live in that
   engine's {!Sim.Engine.Local} storage instead, so shards running
   concurrent fault scenarios on different domains each see exactly
   their own hook. *)
let the_hook : hook option ref = ref None
let local_hook : hook Sim.Engine.Local.key = Sim.Engine.Local.key ()

let set h =
  match Sim.Engine.current () with
  | Some eng -> Sim.Engine.Local.set eng local_hook h
  | None -> the_hook := Some h

let clear () =
  (match Sim.Engine.current () with
  | Some eng -> Sim.Engine.Local.remove eng local_hook
  | None -> ());
  the_hook := None

let hook () =
  match Sim.Engine.current () with
  | Some eng -> (
      match Sim.Engine.Local.get eng local_hook with
      | Some _ as h -> h
      | None -> !the_hook)
  | None -> !the_hook

let active () = Option.is_some (hook ())

let consult ~point ~src ~dst ~bytes =
  match hook () with
  | None -> Pass
  | Some h -> h ~point ~src ~dst ~bytes

let point_name = function
  | Rdma_move -> "rdma-move"
  | Rpc_call -> "rpc-call"
  | Rpc_post -> "rpc-post"

let verdict_name = function
  | Pass -> "pass"
  | Drop -> "drop"
  | Delay _ -> "delay"
  | Duplicate -> "duplicate"
  | Reorder _ -> "reorder"
  | Corrupt _ -> "corrupt"
