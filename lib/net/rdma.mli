(** RDMA data movement between locations.

    One-sided semantics: moving bytes between two locations costs the
    interconnects crossed, with no CPU charged at either end (the
    RDMA/DMA engines do the work):

    - same node, host <-> NIC: a PCIe transfer;
    - cross-node: the sender port's egress bandwidth + fabric latency,
      plus a PCIe hop latency for each host-memory endpoint (the
      BlueField's RDMA switch DMAs directly into host memory);
    - same location: free (a real system would not issue RDMA at all;
      intra-memory copies are modelled by their engine: CPU or I/OAT).

    PM device time is charged when a host-memory endpoint is marked
    persistent ([`Pm]), modelling placement of received data directly
    into PM. *)

val move :
  ?src_medium:[ `Pm | `Dram ] ->
  ?dst_medium:[ `Pm | `Dram ] ->
  src:Loc.t ->
  dst:Loc.t ->
  int ->
  unit
(** Move [n] bytes; blocks the calling process for the full transfer.
    Defaults: both media [`Dram] (no PM device time).

    Consults the {!Inject} hook: [Delay] adds fabric latency before the
    transfer; [Drop] pays the sender-side costs but skips the receiver's
    PM placement (transmitted, then discarded in the fabric).  Callers
    modelling reliable delivery of payload data should inject loss at
    the RPC layer instead, where the message carrying the payload
    reference is what gets lost. *)

val move_time_estimate : src:Loc.t -> dst:Loc.t -> int -> Sim.Time.t
(** Uncontended estimate (no PM component), for planning decisions. *)

(** {1 Split cross-node transfer}

    For deployments partitioned per node across {!Sim.Sharded} shards:
    the source shard pays its half with {!send_src}, the message
    crosses the shard edge with delay {!flight}, and the destination
    shard pays its half with {!land_dst}.  Together the three charge
    exactly what {!move} charges for a cross-node transfer.  Sharded
    runs are fault-free; no injection verdict is consulted. *)

val send_src : ?src_medium:[ `Pm | `Dram ] -> src:Loc.t -> int -> unit
(** Sender-side costs of a cross-node move of [n] bytes: PM read (when
    [`Pm]), host-side PCIe hop latency, egress bandwidth share.  Blocks
    the calling process on the {e source} shard. *)

val flight : dst:Loc.t -> Sim.Time.t
(** In-fabric delay between [send_src] returning and [land_dst]
    running: switch latency plus the destination PCIe hop when [dst]
    is host memory.  Use as the cross-shard message delay. *)

val land_dst : ?dst_medium:[ `Pm | `Dram ] -> dst:Loc.t -> int -> unit
(** Receiver-side costs: port receive accounting and PM write placement
    (when [`Pm]).  Runs on the {e destination} shard. *)
