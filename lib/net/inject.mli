(** Fault-injection hooks for the network layer.

    A single process-wide hook is consulted at every injection point:
    one-sided RDMA transfers ({!Rdma.move}) and both RPC send paths
    ({!Rpc.call}/{!Rpc.post}).  The hook decides per message whether it
    passes untouched, is dropped (lost in the fabric; the receiver
    never sees it) or is delayed by extra fabric latency.

    The hook runs in simulation-process context, so it may consult the
    virtual clock — but it must not block, spawn or otherwise perform
    effects, or injection itself would perturb scheduling.

    Deterministic-simulation harnesses ([Fault.Netfault]) install a
    hook driven by a seeded RNG and the current fault plan; production
    simulations leave it unset, which short-circuits to [Pass]. *)

type point = Rdma_move | Rpc_call | Rpc_post

type verdict =
  | Pass  (** Deliver normally. *)
  | Drop  (** Lose the message; one-way sends vanish silently, and
              round-trip callers only notice via their timeout. *)
  | Delay of Sim.Time.t  (** Extra latency before the send proceeds. *)

type hook = point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict

val set : hook -> unit
(** Install the hook (replacing any previous one). *)

val clear : unit -> unit
(** Remove the hook; all traffic passes untouched again. *)

val active : unit -> bool

val consult :
  point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict
(** Used by the net layer at each injection point. [Pass] when no hook
    is installed. *)

val point_name : point -> string
