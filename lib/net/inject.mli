(** Fault-injection hooks for the network layer.

    A single process-wide hook is consulted at every injection point:
    one-sided RDMA transfers ({!Rdma.move}) and both RPC send paths
    ({!Rpc.call}/{!Rpc.post}).  The hook decides per message whether it
    passes untouched, is dropped (lost in the fabric; the receiver
    never sees it), delayed by extra fabric latency, duplicated (the
    fabric retransmits a frame the receiver already got), reordered
    (held back while later sends overtake it) or bit-corrupted in
    flight.

    The hook runs in simulation-process context, so it may consult the
    virtual clock — but it must not block, spawn or otherwise perform
    effects, or injection itself would perturb scheduling.  The one
    exception is [Reorder] on one-way posts, where the {e net layer}
    (not the hook) spawns the deferred delivery.

    Deterministic-simulation harnesses ([Fault.Netfault]) install a
    hook driven by a seeded RNG and the current fault plan; production
    simulations leave it unset, which short-circuits to [Pass]. *)

type point = Rdma_move | Rpc_call | Rpc_post

type verdict =
  | Pass  (** Deliver normally. *)
  | Drop  (** Lose the message; one-way sends vanish silently, and
              round-trip callers only notice via their timeout. *)
  | Delay of Sim.Time.t  (** Extra latency before the send proceeds. *)
  | Duplicate
      (** Deliver the message twice (fabric-level retransmission of an
          already-received frame).  Receivers must treat the second
          copy idempotently: the RPC layer dedups by per-caller
          sequence number and replays cached replies. *)
  | Reorder of Sim.Time.t
      (** Hold {e this} message back for the given time while sends
          issued later overtake it.  On one-way posts the sender
          continues immediately and delivery happens in the
          background; on round-trip calls it degenerates to [Delay]
          (the caller blocks anyway). *)
  | Corrupt of { offset : int; xor : int }
      (** Flip bits in flight: the byte at [offset] (mod frame size)
          is XORed with [xor].  Receivers verify the end-to-end CRC32
          trailer, NACK the frame by discarding it, and rely on the
          sender's retry/retransmission path. *)

type hook = point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict

val set : hook -> unit
(** Install the hook (replacing any previous one).  Called from inside
    a simulation process, the hook is {e engine-local}: it binds to the
    engine currently running on this domain and is consulted only by
    traffic of that engine — which is what lets independent fault
    scenarios run as parallel shards.  Called outside any engine, it
    installs the process-global fallback (consulted by engines with no
    local hook), preserving the historical single-sim behaviour. *)

val clear : unit -> unit
(** Remove the hook (the current engine's if inside a run, and the
    global fallback); all traffic passes untouched again. *)

val active : unit -> bool

val consult :
  point:point -> src:Loc.t -> dst:Loc.t -> bytes:int -> verdict
(** Used by the net layer at each injection point. [Pass] when no hook
    is installed. *)

val point_name : point -> string
val verdict_name : verdict -> string
