(** Shared capped-exponential backoff policy.

    One policy object serves both roles a lossy RPC path needs:
    the per-attempt timeout ladder (how long to wait for attempt [n]
    before declaring it lost) and the inter-retry delay.  Using the
    same growing, capped series for both keeps a storm of retries from
    synchronizing while guaranteeing a bounded worst-case probe rate. *)

open Sim

type t = {
  base : Time.t;  (** Delay/timeout of attempt 0. *)
  factor : float;  (** Growth per attempt (>= 1). *)
  cap : Time.t;  (** Upper bound on any delay. *)
}

val default : t
(** 200 us base, doubling, capped at 10 ms — sized for simulated
    intra-cluster RTTs (tens of microseconds) with headroom for
    dispatch queueing. *)

val make : ?base:Time.t -> ?factor:float -> ?cap:Time.t -> unit -> t

val delay : t -> attempt:int -> Time.t
(** [delay t ~attempt] = min(cap, base * factor^attempt).  Raises on a
    negative attempt. *)
