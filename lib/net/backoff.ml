open Sim

type t = {
  base : Time.t;
  factor : float;
  cap : Time.t;
}

let default = { base = Time.us 200; factor = 2.0; cap = Time.ms 10 }

let make ?(base = default.base) ?(factor = default.factor)
    ?(cap = default.cap) () =
  if base <= 0 then invalid_arg "Backoff.make: base must be positive";
  if factor < 1.0 then invalid_arg "Backoff.make: factor must be >= 1";
  { base; factor; cap }

let delay t ~attempt =
  if attempt < 0 then invalid_arg "Backoff.delay: negative attempt";
  (* base * factor^attempt, computed with an explicit overflow guard:
     the float blows past [cap] long before it loses integer
     precision. *)
  let f = float_of_int t.base *. (t.factor ** float_of_int attempt) in
  if f >= float_of_int t.cap then t.cap else int_of_float f
