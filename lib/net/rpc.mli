(** RPC between cluster agents, with the paper's two connection classes
    (§3.3.2 "scalable, low latency RDMA request processing"):

    - [`Busy_poll]: a dedicated thread pinned to a reserved core spins
      on the completion queue.  Requests are picked up within the poll
      granularity (sub-microsecond) regardless of CPU load — but one
      core is permanently consumed.  All of the server's connections are
      multiplexed onto this single thread (few QPs by design).
    - [`Event]: a worker pool is woken per request; each dispatch pays
      wake-up/context-switch time {e on the CPU pool}, so under host
      contention dispatch queues behind application threads — the
      mechanism behind Assise's inflated tail latencies when busy.

    Handlers run in simulation-process context and may block (move
    data, take locks, call further RPCs). *)

type ('req, 'resp) t

type kind =
  | Busy_poll
  | Event of { workers : int; prio : Hw.Cpu.prio }

val create :
  ?dispatch_cost:Sim.Time.t ->
  ?poll_overhead:Sim.Time.t ->
  ?group:Sim.Engine.group ->
  ?integrity:('req -> int32 option) ->
  name:string ->
  loc:Loc.t ->
  kind:kind ->
  handler:('req -> 'resp) ->
  unit ->
  ('req, 'resp) t
(** Start serving. [Busy_poll] reserves one core on [loc]'s CPU pool.
    Worker processes are spawned in [group] when given, so killing the
    group (fault injection) silently stops the server.

    [integrity] supplies the end-to-end CRC32 trailer for data-carrying
    requests (return [None] for messages without a payload).  While
    fault injection is active the sender stamps each frame with the
    trailer and the receiving worker recomputes it over the delivered
    payload: mismatches (in-flight [Corrupt] verdicts, or any real
    divergence between send- and receive-side encodings) are NACKed by
    discarding the frame, leaving retransmission to the caller's
    retry/backoff path.  Without a hook installed the trailer is never
    computed, so fault-free runs are unperturbed.

    Defaults: [dispatch_cost] 5 us, [poll_overhead] 200 ns. *)

val restart : ?group:Sim.Engine.group -> _ t -> unit
(** Bring a server whose worker group was killed back up: drops every
    queued request (lost with the crash) and spawns fresh workers,
    in [group] when given (pass the restarted node's new group; the old
    one stays dead).  A busy-poll server reuses its already-reserved
    core.  Calling this on a live server leaks its old workers. *)

val loc : _ t -> Loc.t

val msg_bytes : int
(** Default control-message frame size (64 bytes), the [?bytes] default
    of {!call}/{!post}.  Exposed so shard-routed sends can charge the
    same wire cost as the local paths. *)

val call : ('req, 'resp) t -> from:Loc.t -> ?bytes:int -> 'req -> 'resp
(** Synchronous request: sends a message of [bytes] (default 64) to the
    server location, waits for the handler, pays the response transfer
    back.  If fault injection drops the request the caller blocks
    forever — use {!call_timeout} on loss-tolerant paths. *)

val call_timeout :
  ('req, 'resp) t ->
  from:Loc.t ->
  ?bytes:int ->
  ?key:int * int ->
  timeout:Sim.Time.t ->
  'req ->
  'resp option
(** Like {!call} but gives up (returning [None]) when no response
    arrived within [timeout] — whether the request was dropped by fault
    injection, the server is dead, or the handler is simply slow.  On
    timeout a late response is discarded.

    [key] is the request's per-caller sequence number (from
    {!fresh_key}); retries of one logical request should pass the same
    key so the server's dedup cache replays the reply instead of
    re-executing the handler.  Fresh per call when omitted. *)

val call_retry :
  ('req, 'resp) t ->
  from:Loc.t ->
  ?bytes:int ->
  ?policy:Backoff.t ->
  ?attempts:int ->
  'req ->
  'resp option
(** Loss-tolerant synchronous request: {!call_timeout} in a capped
    exponential retry loop driven by [policy] (default
    {!Backoff.default}), giving up as [None] after [attempts] tries
    (default: retry until a response arrives).  When no fault-injection
    hook is installed this is exactly {!call} — no timers are armed, so
    fault-free simulations schedule identically. *)

val post : ('req, 'resp) t -> from:Loc.t -> ?bytes:int -> 'req -> unit
(** Fire-and-forget: pays the request transfer, does not wait for the
    handler to finish. *)

val deliver : ('req, 'resp) t -> 'req -> unit
(** Enqueue [req] for the server's workers with {e no} wire costs: the
    landing half of a cross-shard routed message whose transfer was
    already charged on the sending shard ({!Rdma.send_src} plus the
    {!Rdma.flight} delay of the shard edge).  Fault-free only — no
    injection verdict, sequence key or CRC trailer. *)

val queue_length : _ t -> int
(** Requests waiting to be picked up (a load signal). *)

val fresh_key : from:Loc.t -> int * int
(** Allocate the next per-caller sequence number for [from].  Callers
    implementing their own retry ladders allocate one key per logical
    request and pass it to every {!call_timeout} attempt. *)

val disable_dedup : bool ref
(** Mutation knob for the conformance self-test: [true] bypasses the
    server-side dedup cache so every delivered copy executes the
    handler.  The litmus harness proves that this is caught by the
    no-duplicate-apply invariant.  Never set outside self-tests. *)

val shutdown : _ t -> unit
(** Stop workers after the current queue drains; frees the reserved
    core for busy-poll servers. *)
