open Sim

type ltype = Read | Write

type lease = {
  mutable writer : int option;
  mutable readers : int list;
  mutable expires : Time.t;
  mutable epoch : int;
}

type event =
  | Granted of {
      node : int;
      client : int;
      inum : int;
      ltype : ltype;
      epoch : int;
      expires : Time.t;
    }
  | Released of { node : int; client : int; inum : int }
  | Expired of { node : int; client : int; inum : int }

(* Engine-local when installed from inside a simulation process (fault
   scenarios sharded across domains each observe only their own
   engine's events), with a process-global fallback for installs from
   outside any run. Same discipline as [Net.Inject]. *)
let observer : (event -> unit) option ref = ref None
let local_observer : (event -> unit) Engine.Local.key = Engine.Local.key ()

let set_observer f =
  match Engine.current () with
  | Some eng -> Engine.Local.set eng local_observer f
  | None -> observer := Some f

let clear_observer () =
  (match Engine.current () with
  | Some eng -> Engine.Local.remove eng local_observer
  | None -> ());
  observer := None

let emit ev =
  let f =
    match Engine.current () with
    | Some eng -> (
        match Engine.Local.get eng local_observer with
        | Some _ as f -> f
        | None -> !observer)
    | None -> !observer
  in
  match f with None -> () | Some f -> f ev

type t = {
  params : Params.t;
  node : Hw.Node.t;
  replicate : bytes:int -> unit;
  current_epoch : unit -> int;
  group : Engine.group option;
  table : (int, lease) Hashtbl.t;
  mutable pending : int;
  persisted : Cond.t;
}

let lease_record_bytes = 64

let create ?(current_epoch = fun () -> 0) ?group ~params ~node ~replicate () =
  {
    params;
    node;
    replicate;
    current_epoch;
    group;
    table = Hashtbl.create 64;
    pending = 0;
    persisted = Cond.create ();
  }

(* A lease from a previous cluster epoch is dead no matter its expiry:
   the epoch bump (failure detection) revoked it cluster-wide (§3.6). *)
let valid t l =
  l.epoch = t.current_epoch ()
  && (l.expires > Engine.now () || l.writer <> None || l.readers <> [])

let persist_in_background t =
  t.pending <- t.pending + 1;
  (* The persist runs in [t.group] (the owning NICFS passes its host
     domain), not the granting RPC handler's group: a NIC crash killing
     it mid-persist would leak [pending] and wedge every later
     [wait_persisted] fsync barrier — the grant record lives in host
     PM, which survives NIC resets. *)
  Engine.spawn ?group:t.group ~name:"lease.persist" (fun () ->
      (* Record the grant in host PM and ship it to the replicas. *)
      Hw.Pm.write t.node.Hw.Node.pm lease_record_bytes;
      t.replicate ~bytes:lease_record_bytes;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Cond.broadcast t.persisted)

let acquire t ~client ~inum ltype =
  let l =
    match Hashtbl.find_opt t.table inum with
    | Some l when valid t l -> l
    | _ ->
        let l =
          { writer = None; readers = []; expires = 0; epoch = 0 }
        in
        Hashtbl.replace t.table inum l;
        l
  in
  let grant () =
    l.expires <- Engine.now () + t.params.Params.lease_duration;
    l.epoch <- t.current_epoch ();
    persist_in_background t;
    emit
      (Granted
         {
           node = t.node.Hw.Node.id;
           client;
           inum;
           ltype;
           epoch = l.epoch;
           expires = l.expires;
         });
    `Granted
  in
  match ltype with
  | Write -> (
      match l.writer with
      | Some w when w <> client -> `Conflict
      | _ ->
          if List.exists (fun r -> r <> client) l.readers then `Conflict
          else begin
            l.writer <- Some client;
            l.readers <- List.filter (fun r -> r <> client) l.readers;
            grant ()
          end)
  | Read -> (
      match l.writer with
      | Some w when w <> client -> `Conflict
      | _ ->
          if not (List.mem client l.readers) then
            l.readers <- client :: l.readers;
          grant ())

let release t ~client ~inum =
  match Hashtbl.find_opt t.table inum with
  | None -> ()
  | Some l ->
      let held = l.writer = Some client || List.mem client l.readers in
      if l.writer = Some client then l.writer <- None;
      l.readers <- List.filter (fun r -> r <> client) l.readers;
      if held then emit (Released { node = t.node.Hw.Node.id; client; inum });
      if l.writer = None && l.readers = [] then Hashtbl.remove t.table inum

let iter_holds t ~f =
  Hashtbl.iter
    (fun inum l ->
      (match l.writer with Some w -> f ~inum ~client:w | None -> ());
      List.iter
        (fun r -> if l.writer <> Some r then f ~inum ~client:r)
        l.readers)
    t.table

let holders t ~inum =
  match Hashtbl.find_opt t.table inum with
  | None -> []
  | Some l -> (
      match l.writer with
      | Some w -> w :: List.filter (fun r -> r <> w) l.readers
      | None -> l.readers)

let check_access t ~client ~inum ~write =
  match Hashtbl.find_opt t.table inum with
  | None -> true
  | Some l when l.epoch <> t.current_epoch () ->
      (* Stale-epoch lease: revoked by the epoch bump, no conflict. *)
      true
  | Some l -> (
      match l.writer with
      | Some w when w <> client -> false
      | _ ->
          if write then not (List.exists (fun r -> r <> client) l.readers)
          else true)

let expire_client t ~client =
  let stale = ref [] in
  Hashtbl.iter
    (fun inum l ->
      let held = l.writer = Some client || List.mem client l.readers in
      if l.writer = Some client then l.writer <- None;
      l.readers <- List.filter (fun r -> r <> client) l.readers;
      if held then emit (Expired { node = t.node.Hw.Node.id; client; inum });
      if l.writer = None && l.readers = [] then stale := inum :: !stale)
    t.table;
  List.iter (Hashtbl.remove t.table) !stale

let pending_persists t = t.pending

let wait_persisted t =
  while t.pending > 0 do
    Cond.await t.persisted
  done

let active_leases t = Hashtbl.length t.table
