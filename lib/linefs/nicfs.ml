open Sim
open Storage

type client_state = {
  cid : int;
  log : Oplog.Log.t;
  on_published : upto_seq:int -> unit;
  on_revoke : inum:int -> unit;
  grandfather : (int, int) Hashtbl.t;
      (* inum -> last log seq written under a since-revoked lease;
         validation accepts those entries (they were legal when
         logged, and revocation ordered after them). *)
  mutable fetched_seq : int; (* last seq already placed in a chunk *)
  mutable chunk_count : int;
  mutable replicated_seq : int; (* contiguous prefix acked by all replicas *)
  mutable published_seq : int;
  repl_progress : Cond.t;
  publish_progress : Cond.t;
  completed_repl : (int, int) Hashtbl.t; (* chunk idx -> last_seq *)
  mutable next_repl_idx : int;
  acks : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* chunk idx -> node ids that acked so far.  Per-node dedup
         matters under retransmission: a replica re-acks duplicate
         deliveries, and counting those would complete a chunk without
         every replica having persisted it. *)
  inflight : (int, Chunk.t) Hashtbl.t;
      (* chunk idx -> chunk, from submission until both replicated and
         published.  Chain reconfiguration needs the chunk back (its
         last_seq, for completing the ack set against the surviving
         replicas) after a dead node is dropped from the chain. *)
  mutable shared_pl : Chunk.t Pipeline.t option;
  mutable publish_pl : Chunk.t Pipeline.t option;
  mutable repl_pl : Chunk.t Pipeline.t option;
  mutable seq_pl : Chunk.t Pipeline.t option; (* NotParallel mode *)
}

(* Replica-side publication gate: chunks can arrive out of order or in
   duplicate under retransmission; publication (history recording and
   metadata application) must happen exactly once per chunk, in index
   order.  Progress is host-PM-backed — an acked chunk sits in the host
   log — so the gate survives NICFS crashes. *)
type gate = {
  mutable next_pub_idx : int;
  pub_buffered : (int, Chunk.t) Hashtbl.t;
}

(* Cross-shard transport for deployments partitioned per node across
   {!Sim.Sharded} shards.  [xp_shard_of] maps a node id to its shard
   index; [xp_send] schedules a closure on the destination node's shard
   after the given fabric delay (through the runner's declared edge, so
   the delay is floored at the edge lookahead).  When unset, or when
   both endpoints share a shard, messaging uses the plain local paths. *)
type xport = {
  xp_shard_of : int -> int;
  xp_send :
    src_node:int ->
    dst_node:int ->
    delay:Time.t ->
    name:string ->
    (unit -> unit) ->
    unit;
}

type t = {
  params : Params.t;
  node : Hw.Node.t;
  fs : Fs_state.t;
  kworker : Kworker.t;
  lease : Lease.t;
  parallel : bool;
  apply_on_publish : bool;
  mutable coalescing : bool;
  mutable compression : bool;
  mutable next_hop : t option;
  mutable xport : xport option;
  clients : (int, client_state) Hashtbl.t;
  mutable kworker_ok : bool;
  mutable is_isolated : bool;
  mutable monitor_running : bool;
  flow : Cond.t;
  mutable flow_blocked : bool;
  mutable dserver : (dmsg, unit) Net.Rpc.t option;
  mutable cserver : (cmsg, cresp) Net.Rpc.t option;
  mutable repl_wire : int;
  mutable pub_bytes : int;
  mutable coalesced : int;
  ack_lat : Stats.Series.t;
  (* Recovery state (SS3.6): the cluster epoch this NICFS has persisted,
     and the replicated history bitmap of inode updates per epoch. *)
  mutable epoch : int;
  history : Cluster.History.t;
  (* Fault injection: the NICFS's processes run in [group]; [crash]
     kills it and [restart] brings the servers back in a fresh one.
     [host_group] is the node's host-side domain — pipeline workers,
     retransmitters, fsync waiters and lease persists live there, and
     it is never killed by a NIC crash (the host OS outlives a NIC
     reset; only a Node_death-style fault takes the whole node). *)
  mutable alive : bool;
  mutable group : Engine.group option;
  host_group : Engine.group;
  mutable incarnation : int;
  repl_gate : (int, gate) Hashtbl.t; (* client id -> publication gate *)
  (* Degraded mode (§3.6): with the NIC down but the host alive, the
     kernel worker hosts the NICFS planes on host cores.  [fb_*] are
     the host-side RPC servers standing in for the NIC ones. *)
  mutable fallback : bool;
  mutable fb_dserver : (dmsg, unit) Net.Rpc.t option;
  mutable fb_cserver : (cmsg, cresp) Net.Rpc.t option;
  mutable fb_episode : int;
  (* Replication-chain membership as of the last (re)configuration:
     the downstream node ids whose acks complete a chunk, or [None]
     for the legacy fixed-threshold behaviour (any [replicas - 1]
     ackers). *)
  mutable repl_targets : int list option;
  mutable required_acks : int;
  (* Byzantine-fabric hardening state (only exercised under fault
     injection).  [retired] is a bounded retention cache of recently
     retired chunks on the primary, so a replica's recovery scrub can
     re-fetch a record it found torn even after the ack set completed.
     [torn_pending] arms the next gate dequeue on this replica to
     discover its persisted record torn.  [apply_journal] records every
     (client, seq) applied via [apply_on_publish], newest first — the
     no-duplicate-apply invariant's evidence. *)
  retired : (int * int, Chunk.t) Hashtbl.t;
  retired_fifo : (int * int) Queue.t;
  mutable torn_pending : bool;
  mutable apply_journal : (int * int) list;
}

and dmsg =
  | Start of { client : int }
  | Repl_chunk of {
      chunk : Chunk.t;
      origin : t;
      wire : int;
      nic_mem : bool;
          (* The sender staged the wire form in our NIC DRAM.  False
             when we are in host fallback: the bytes were placed
             straight into host PM and there is nothing to free. *)
    }
  | Repl_direct of { chunk : Chunk.t; origin : t }
  | Repl_ack of {
      client : int;
      node : int; (* acker's node id, for per-replica ack dedup *)
      idx : int;
      last_seq : int;
      sent_at : Time.t;
    }
  | Refetch of { client : int; idx : int; requester : t }
      (* Recovery scrub: [requester] found its persisted copy of the
         chunk torn and asks the chunk's primary for a pristine one
         (from the in-flight table or the retired-chunk retention
         cache). *)

and cmsg =
  | C_fsync of { client : int; upto : int }
  | C_lease of { client : int; inum : int; lt : Lease.ltype }
  | C_open of { client : int; inum : int; write : bool }

and cresp =
  | R_done of unit Ivar.t
  | R_lease of [ `Granted | `Conflict ]
  | R_check of (unit, Fs_state.error) result

let node t = t.node
let lease_mgr t = t.lease
let nic_loc t = Net.Loc.Nic t.node
let nic_pool t = Hw.Smartnic.cpu t.node.Hw.Node.nic

(* The node's current NICFS compute plane: SmartNIC cores normally;
   in degraded mode the host cores, billed through the kernel worker's
   accounting hook so the host-CPU cost of fallback shows up in the
   §5.2.1-style interference numbers. *)
let nic_run t work =
  if t.fallback then Kworker.host_run t.kworker work
  else Hw.Cpu.run (nic_pool t) work

(* Where this NICFS's traffic originates from. *)
let src_loc t = if t.fallback then Net.Loc.Host t.node else nic_loc t

(* Work executed inline on the reserved busy-poll core: wall time is
   work scaled by NIC core speed, with no pool queueing.  The host
   fallback has no reserved spinning core — it charges the host pool. *)
let poll_core_work t work =
  if t.fallback then Kworker.host_run t.kworker work
  else
    Engine.sleep
      (int_of_float (float_of_int work /. Hw.Cpu.speed (nic_pool t)))

let is_last t = t.next_hop = None

(* The shard transport to use for traffic from [t] to [peer], when the
   two nodes live on different shards.  [None] means same shard (or no
   sharding at all): take the plain local path. *)
let remote_shard t (peer : t) =
  match t.xport with
  | None -> None
  | Some xp ->
      if xp.xp_shard_of t.node.Hw.Node.id <> xp.xp_shard_of peer.node.Hw.Node.id
      then Some xp
      else None

let dserver t =
  match (if t.fallback then t.fb_dserver else t.dserver) with
  | Some s -> s
  | None -> failwith "nicfs: not started"

let client_state t cid =
  match Hashtbl.find_opt t.clients cid with
  | Some cs -> cs
  | None -> invalid_arg (Printf.sprintf "nicfs: unknown client %d" cid)

(* Mutation knobs for the conformance self-test: [chaos_no_dedup]
   bypasses the replica publication gate (every delivery publishes,
   so fabric duplicates double-apply) and [chaos_no_scrub] suppresses
   the torn-record re-fetch (the gate wedges and replicas diverge).
   Both planted bugs must be caught by the invariant layer. *)
let chaos_no_dedup = ref false
let chaos_no_scrub = ref false

(* End-to-end integrity trailer for the data plane: chunk-carrying
   messages get a CRC32 over their entries' wire bytes (streamed — the
   rope is never flattened), folded with each entry's own record CRC so
   both payload damage and record-trailer damage are caught.  Control
   messages carry no trailer; the modeled link-level FCS still discards
   tainted frames. *)
let dmsg_integrity = function
  | Repl_chunk { chunk; _ } | Repl_direct { chunk; _ } ->
      Some (List.fold_left Storage.Oplog.frame_crc 0l chunk.Chunk.entries)
  | Start _ | Repl_ack _ | Refetch _ -> None

(* Retired-chunk retention (primary side): bounded FIFO so scrub
   re-fetches stay answerable after ack-set completion without holding
   every chunk forever.  Only populated under fault injection. *)
let retired_cap = 256

let retain_chunk t ~client (c : Chunk.t) =
  if Net.Inject.active () then begin
    let k = (client, c.Chunk.idx) in
    if not (Hashtbl.mem t.retired k) then begin
      Hashtbl.replace t.retired k c;
      Queue.push k t.retired_fifo;
      if Queue.length t.retired_fifo > retired_cap then
        Hashtbl.remove t.retired (Queue.pop t.retired_fifo)
    end
  end

(* ------------------------------------------------------------------ *)
(* NIC memory flow control (§4 "Replication flow control")             *)
(* ------------------------------------------------------------------ *)

let nic_mem_acquire t bytes =
  if t.fallback then ()
    (* Host fallback stages chunks in host DRAM, which is not the
       constrained resource the watermark flow control protects. *)
  else begin
    let nic = t.node.Hw.Node.nic in
    let frac () = Hw.Smartnic.mem_frac nic in
    if frac () >= t.params.Params.hi_watermark then t.flow_blocked <- true;
    while t.flow_blocked && frac () > t.params.Params.lo_watermark do
      Cond.await t.flow
    done;
    t.flow_blocked <- false;
    Hw.Smartnic.alloc nic bytes
  end

let nic_mem_release t bytes =
  Hw.Smartnic.free t.node.Hw.Node.nic bytes;
  Cond.broadcast t.flow

let chunk_mem_unref t (c : Chunk.t) =
  c.Chunk.mem_refs <- c.Chunk.mem_refs - 1;
  if c.Chunk.mem_refs = 0 && c.Chunk.nic_resident then
    nic_mem_release t c.Chunk.bytes

(* ------------------------------------------------------------------ *)
(* Pipeline stages                                                     *)
(* ------------------------------------------------------------------ *)

(* Fetch: pull the chunk from the host PM log into NIC memory over
   PCIe (one-sided RDMA read).  Degraded mode reads the PM log with
   host cores instead — no PCIe hop, no NIC DRAM. *)
let fetch_work t (c : Chunk.t) =
  if t.fallback then begin
    c.Chunk.mem_refs <- 2;
    c.Chunk.nic_resident <- false;
    Hw.Pm.read t.node.Hw.Node.pm c.Chunk.bytes;
    Kworker.host_run t.kworker (Hw.Node.copy_work t.node c.Chunk.bytes)
  end
  else begin
    nic_mem_acquire t c.Chunk.bytes;
    c.Chunk.mem_refs <- 2;
    c.Chunk.nic_resident <- true;
    Net.Rdma.move ~src_medium:`Pm
      ~src:(Net.Loc.Host t.node)
      ~dst:(nic_loc t) c.Chunk.bytes
  end

(* Validation (+ coalescing, same core for cache locality). *)
let validate_work t (c : Chunk.t) =
  let p = t.params in
  let entries = Chunk.entry_count c in
  let scan_work =
    int_of_float
      (float_of_int c.Chunk.bytes /. p.Params.validate_byte_bps *. 1e9)
  in
  nic_run t ((entries * p.Params.validate_entry_cost) + scan_work);
  (* Real integrity + lease checks over the fetched entries. *)
  List.iter
    (fun (e : Oplog.entry) ->
      (match e.op with
      | Oplog.Write { data; _ } when Data.is_real data ->
          if not (Oplog.check e) then
            failwith "nicfs: corrupt log entry reached validation"
      | _ -> ());
      List.iter
        (fun inum ->
          let ok =
            Lease.check_access t.lease ~client:e.Oplog.client ~inum
              ~write:true
            ||
            match Hashtbl.find_opt t.clients e.Oplog.client with
            | Some owner -> (
                match Hashtbl.find_opt owner.grandfather inum with
                | Some limit -> e.Oplog.seq <= limit
                | None -> false)
            | None ->
                (* Forwarded chunk on a replica: the primary already
                   validated lease ownership. *)
                true
          in
          if not ok then
            failwith
              (Printf.sprintf
                 "nicfs: lease violation in validation (client=%d seq=%d \
                  inum=%d grandfather=%s)"
                 e.Oplog.client e.Oplog.seq inum
                 (match Hashtbl.find_opt t.clients e.Oplog.client with
                 | Some owner -> (
                     match Hashtbl.find_opt owner.grandfather inum with
                     | Some l -> string_of_int l
                     | None -> "none")
                 | None -> "n/a")))
        (Oplog.touches e.op))
    c.Chunk.entries;
  if t.coalescing then begin
    let survivors, removed = Coalesce.run c.Chunk.entries in
    if removed > 0 then begin
      ignore (survivors : Oplog.entry list);
      c.Chunk.coalesced_away <- removed;
      t.coalesced <- t.coalesced + removed
    end
  end

(* Bytes that actually need publication (coalesced entries skipped). *)
let publish_volume (c : Chunk.t) =
  if c.Chunk.coalesced_away = 0 then c.Chunk.bytes
  else begin
    let total = Chunk.entry_count c in
    let live = max 0 (total - c.Chunk.coalesced_away) in
    c.Chunk.bytes * live / max 1 total
  end

let isolated_publish t bytes =
  (* No kernel worker: NICFS itself moves log -> public PM across PCIe
     (read + write), still without host CPU. *)
  Hw.Pcie.transfer t.node.Hw.Node.pcie bytes;
  Hw.Pm.read t.node.Hw.Node.pm bytes;
  Hw.Pcie.transfer t.node.Hw.Node.pcie bytes;
  Hw.Pm.write t.node.Hw.Node.pm bytes

let publish_copy t ~bytes ~entries =
  if bytes > 0 then begin
    if t.kworker_ok && not t.is_isolated then begin
      match
        Kworker.submit t.kworker ~from:(src_loc t)
          { Kworker.total_bytes = bytes; list_entries = entries }
      with
      | `Ok -> ()
      | `Dead ->
          t.kworker_ok <- false;
          t.is_isolated <- true;
          isolated_publish t bytes
    end
    else isolated_publish t bytes
  end;
  t.pub_bytes <- t.pub_bytes + bytes

(* Publication: build the copy list on the NIC, hand it to the kernel
   worker (or do it over PCIe in isolated mode), then apply metadata. *)
let record_history t (c : Chunk.t) =
  List.iter
    (fun (e : Oplog.entry) ->
      List.iter
        (fun inum -> Cluster.History.record t.history ~epoch:t.epoch ~inum)
        (Oplog.touches e.Oplog.op))
    c.Chunk.entries

let publish_work t (c : Chunk.t) =
  let entries = Chunk.entry_count c in
  nic_run t (entries * t.params.Params.publish_entry_cost);
  publish_copy t ~bytes:(publish_volume c) ~entries;
  record_history t c
  (* No [apply_on_publish] replay here: this is the node that logged
     the entries, and its LibFS already applied them eagerly at append
     time.  Re-applying would resurrect unlinked inodes (a replayed
     Create of a since-freed inum adds a duplicate name binding) in the
     very state local clients validate against.  Only the replica
     delivery path replays entry semantics. *)

(* Drop a chunk from the in-flight table once nothing can still need
   it: published locally and off the ack table (fully replicated, or
   single-node).  Until then chain reconfiguration may need the chunk
   back to complete its ack set against the surviving replicas. *)
let retire_chunk t cs idx =
  match Hashtbl.find_opt cs.inflight idx with
  | Some c
    when Ivar.is_filled c.Chunk.published && not (Hashtbl.mem cs.acks idx)
    ->
      Hashtbl.remove cs.inflight idx;
      retain_chunk t ~client:cs.cid c
  | _ -> ()

(* The publication pipeline's sink: runs in order; acknowledge to
   LibFS so it can reclaim the log. *)
let publish_sink t cs (c : Chunk.t) =
  chunk_mem_unref t c;
  cs.published_seq <- c.Chunk.last_seq;
  let t0 = Engine.now () in
  (* ACK stage: small message back across PCIe to LibFS. *)
  Net.Rdma.move ~src:(src_loc t) ~dst:(Net.Loc.Host t.node) 64;
  Stats.Series.add t.ack_lat (Time.to_us_f (Engine.now () - t0));
  cs.on_published ~upto_seq:c.Chunk.last_seq;
  Ivar.fill c.Chunk.published ();
  retire_chunk t cs c.Chunk.idx;
  Cond.broadcast cs.publish_progress

(* Compression stage (optional, §3.3.2): real LZW over real payloads;
   synthetic payloads are treated as incompressible. *)
(* Compression stage (optional, SS3.3.2): real LZW over real payloads;
   synthetic payloads are treated as incompressible. The chunk is
   split across [compress_workers] SmartNIC threads so the stage never
   bottlenecks the pipeline (SS5.4). *)
let compress_work t (c : Chunk.t) =
  (* Degraded mode skips compression entirely (§3.6): it exists to
     save NIC-side network bandwidth at the price of NIC cycles, and
     burning host cores on it would defeat the point of offload. *)
  if t.compression && not t.fallback then begin
    let total_work =
      int_of_float
        (float_of_int c.Chunk.bytes /. t.params.Params.compress_bps *. 1e9)
    in
    let k = max 1 t.params.Params.compress_workers in
    let seg = max 1 (total_work / k) in
    let live = ref k in
    let all = Ivar.create () in
    for _ = 1 to k do
      Engine.spawn ~name:"nicfs.compress-seg" (fun () ->
          nic_run t seg;
          decr live;
          if !live = 0 then Ivar.fill all ())
    done;
    Ivar.read all;
    let payloads =
      List.filter_map
        (fun (e : Oplog.entry) ->
          match e.op with
          | Oplog.Write { data; _ } when Data.is_real data -> Some data
          | _ -> None)
        c.Chunk.entries
    in
    let real_payload =
      List.fold_left (fun n d -> n + Data.length d) 0 payloads
    in
    if real_payload > 0 then begin
      (* Zero-copy sizing: the encoder streams the rope's slices and
         counts output codes — the joined chunk (up to 4 MB) is never
         materialized into a flat buffer just to measure its wire
         size. *)
      let joined = Data.concat payloads in
      let compressed_len = Compress.Lzw.encoded_length_data joined in
      let meta = c.Chunk.bytes - real_payload in
      c.Chunk.wire_bytes <- min c.Chunk.bytes (meta + compressed_len)
    end
  end

let mark_chunk_replicated t cs ~idx ~last_seq =
  Hashtbl.replace cs.completed_repl idx last_seq;
  let advanced = ref false in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt cs.completed_repl cs.next_repl_idx with
    | Some seq ->
        Hashtbl.remove cs.completed_repl cs.next_repl_idx;
        cs.replicated_seq <- seq;
        cs.next_repl_idx <- cs.next_repl_idx + 1;
        advanced := true
    | None -> continue := false
  done;
  ignore t;
  if !advanced then Cond.broadcast cs.repl_progress

(* Ship one chunk to the successor [nxt].  The penultimate node writes
   directly into the last replica's host PM log, saving a SmartNIC
   memory copy (§3.3.2, step 6').  A successor running in host
   fallback has no NIC DRAM to stage into: the wire form goes straight
   to its host PM and the message says so ([nic_mem = false]).

   When [nxt] lives on another shard, the transfer is split: the sender
   halves (PM read, source PCIe hop, egress bandwidth) of both the
   payload and the notification message are paid here, and the landing
   halves — receive accounting, PM placement, NIC staging alloc (that
   memory is successor-shard state) and the RPC enqueue — run on the
   successor's shard after the fabric flight. *)
let send_to_successor t nxt ~origin ~wire (c : Chunk.t) =
  let src = src_loc t in
  match remote_shard t nxt with
  | Some xp ->
      let ship ~data_dst ~data_medium ~nic_stage msg =
        Net.Rdma.send_src ~src wire;
        Net.Rdma.send_src ~src Net.Rpc.msg_bytes;
        let msg_dst = Net.Rpc.loc (dserver nxt) in
        let delay =
          max (Net.Rdma.flight ~dst:data_dst) (Net.Rdma.flight ~dst:msg_dst)
        in
        xp.xp_send ~src_node:t.node.Hw.Node.id ~dst_node:nxt.node.Hw.Node.id
          ~delay ~name:"nicfs.repl-ship" (fun () ->
            if nic_stage then Hw.Smartnic.alloc nxt.node.Hw.Node.nic wire;
            Net.Rdma.land_dst ~dst_medium:data_medium ~dst:data_dst wire;
            Net.Rdma.land_dst ~dst:msg_dst Net.Rpc.msg_bytes;
            Net.Rpc.deliver (dserver nxt) msg)
      in
      if nxt.fallback then
        ship ~data_dst:(Net.Loc.Host nxt.node) ~data_medium:`Pm
          ~nic_stage:false
          (Repl_chunk { chunk = c; origin; wire; nic_mem = false })
      else if is_last nxt && wire = c.Chunk.bytes then
        ship ~data_dst:(Net.Loc.Host nxt.node) ~data_medium:`Pm
          ~nic_stage:false
          (Repl_direct { chunk = c; origin })
      else
        ship ~data_dst:(Net.Loc.Nic nxt.node) ~data_medium:`Dram
          ~nic_stage:true
          (Repl_chunk { chunk = c; origin; wire; nic_mem = true })
  | None ->
      if nxt.fallback then begin
        Net.Rdma.move ~dst_medium:`Pm ~src ~dst:(Net.Loc.Host nxt.node) wire;
        Net.Rpc.post (dserver nxt) ~from:src
          (Repl_chunk { chunk = c; origin; wire; nic_mem = false })
      end
      else if is_last nxt && wire = c.Chunk.bytes then begin
        (* Uncompressed direct placement into the last host's PM log. *)
        Net.Rdma.move ~dst_medium:`Pm ~src ~dst:(Net.Loc.Host nxt.node) wire;
        Net.Rpc.post (dserver nxt) ~from:src (Repl_direct { chunk = c; origin })
      end
      else begin
        Hw.Smartnic.alloc nxt.node.Hw.Node.nic wire;
        Net.Rdma.move ~src ~dst:(Net.Loc.Nic nxt.node) wire;
        Net.Rpc.post (dserver nxt) ~from:src
          (Repl_chunk { chunk = c; origin; wire; nic_mem = true })
      end

(* Transfer: ship the chunk to the chain successor. *)
let transfer_work t (c : Chunk.t) =
  (match t.next_hop with
  | None ->
      (* Single-node deployment: nothing to replicate. *)
      (match Hashtbl.find_opt t.clients c.Chunk.client with
      | Some cs ->
          Hashtbl.remove cs.acks c.Chunk.idx;
          mark_chunk_replicated t cs ~idx:c.Chunk.idx
            ~last_seq:c.Chunk.last_seq;
          retire_chunk t cs c.Chunk.idx
      | None -> ());
      if not (Ivar.is_filled c.Chunk.replicated) then
        Ivar.fill c.Chunk.replicated ()
  | Some nxt ->
      (* We are the chunk's primary: acks come back here. *)
      let origin = t in
      let wire = c.Chunk.wire_bytes in
      t.repl_wire <- t.repl_wire + wire;
      send_to_successor t nxt ~origin ~wire c;
      (* Under fault injection messages can be lost, so re-send until
         the ack set completes.  Replicas ack duplicate deliveries and
         re-forward them, which also heals downstream links.  The
         retransmitter re-reads [t.next_hop] every round: after a
         chain reconfiguration it redelivers the unacked suffix to the
         NEW successor, which is how re-replication after a replica
         death happens.  It also keeps running while this NICFS is
         down-but-degraded ([fallback]) and across a crash-restart —
         only a completed ack set (possibly completed by
         [reeval_acks] when the chain shrank) stops it.  On a perfect
         network (no hook installed) nothing is ever lost and the
         retransmitter is not spawned, keeping event schedules of
         fault-free runs unchanged. *)
      if Net.Inject.active () then
        Engine.spawn ~group:t.host_group ~name:"nicfs.retx" (fun () ->
            let unacked () =
              match Hashtbl.find_opt t.clients c.Chunk.client with
              | None -> false
              | Some cs -> Hashtbl.mem cs.acks c.Chunk.idx
            in
            (* Unified retry path: the same capped exponential ladder
               the control-plane retries use, seeded with the chunk
               retry timeout.  Early rounds recover fast from a lossy
               window; the cap keeps a long outage from starving the
               healed chain of retransmissions. *)
            let policy =
              Net.Backoff.make ~base:t.params.Params.repl_retry_timeout
                ~factor:2.0
                ~cap:(8 * t.params.Params.repl_retry_timeout)
                ()
            in
            let rec loop attempt =
              Engine.sleep (Net.Backoff.delay policy ~attempt);
              if unacked () then begin
                (if t.alive || t.fallback then
                   match t.next_hop with
                   | Some nxt ->
                       Counters.bump "net.retransmit";
                       t.repl_wire <- t.repl_wire + c.Chunk.wire_bytes;
                       send_to_successor t nxt ~origin
                         ~wire:c.Chunk.wire_bytes c
                   | None -> ());
                loop (attempt + 1)
              end
            in
            loop 0));
  chunk_mem_unref t c

(* ------------------------------------------------------------------ *)
(* Replica-side handling                                               *)
(* ------------------------------------------------------------------ *)

(* Local publication on a replica: replicas also digest the chunks they
   persisted (the kernel-worker load §5.2.1 measures on replicas).
   Delivery goes through the per-client gate so duplicates publish once
   and out-of-order arrivals publish in index order; the state-changing
   part (history, metadata apply) runs synchronously at dequeue for a
   deterministic order, only the hardware-time charges are async. *)
let replica_publish t (ready : Chunk.t) =
  record_history t ready;
  if t.apply_on_publish then
    List.iter
      (fun (e : Oplog.entry) ->
        t.apply_journal <- (e.Oplog.client, e.Oplog.seq) :: t.apply_journal;
        ignore (Fs_state.apply t.fs e.Oplog.op))
      ready.Chunk.entries;
  Engine.spawn ~name:"nicfs.replica-publish" (fun () ->
      let entries = Chunk.entry_count ready in
      nic_run t (entries * t.params.Params.publish_entry_cost);
      publish_copy t ~bytes:(publish_volume ready) ~entries)

let replica_deliver t ~(origin : t) (c : Chunk.t) =
  if !chaos_no_dedup && Net.Inject.active () then
    (* Planted bug: no publication gate — every delivery (duplicates
       and out-of-order arrivals included) publishes immediately.  The
       no-duplicate-apply invariant must flag the double application. *)
    replica_publish t c
  else begin
    let g =
      match Hashtbl.find_opt t.repl_gate c.Chunk.client with
      | Some g -> g
      | None ->
          let g = { next_pub_idx = 0; pub_buffered = Hashtbl.create 8 } in
          Hashtbl.replace t.repl_gate c.Chunk.client g;
          g
    in
    if
      c.Chunk.idx >= g.next_pub_idx
      && not (Hashtbl.mem g.pub_buffered c.Chunk.idx)
    then Hashtbl.replace g.pub_buffered c.Chunk.idx c;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt g.pub_buffered g.next_pub_idx with
      | None -> continue := false
      | Some ready ->
          Hashtbl.remove g.pub_buffered g.next_pub_idx;
          if t.torn_pending then begin
            (* The persisted record for this chunk turns out torn (a
               partial PM write discovered by its record CRC): truncate
               it — do NOT publish, do NOT advance — and re-fetch a
               pristine copy from the chunk's primary.  Re-delivery
               re-enters the gate at the same index. *)
            t.torn_pending <- false;
            Counters.bump "storage.torn-tail";
            if not !chaos_no_scrub then begin
              Counters.bump "storage.scrub-refetch";
              let client = ready.Chunk.client and idx = ready.Chunk.idx in
              (* Re-request until the gate moves past the torn index:
                 the Refetch or its Repl_chunk answer can itself be
                 corrupted or duplicated in flight. *)
              Engine.spawn ~group:t.host_group ~name:"nicfs.scrub-refetch"
                (fun () ->
                  let policy =
                    Net.Backoff.make
                      ~base:t.params.Params.repl_retry_timeout ~factor:2.0
                      ~cap:(8 * t.params.Params.repl_retry_timeout)
                      ()
                  in
                  let rec loop attempt =
                    Net.Rpc.post (dserver origin) ~from:(src_loc t)
                      (Refetch { client; idx; requester = t });
                    Engine.sleep (Net.Backoff.delay policy ~attempt);
                    let healed =
                      match Hashtbl.find_opt t.repl_gate client with
                      | Some g -> g.next_pub_idx > idx
                      | None -> false
                    in
                    if not healed then loop (attempt + 1)
                  in
                  loop 0)
            end;
            continue := false
          end
          else begin
            g.next_pub_idx <- g.next_pub_idx + 1;
            replica_publish t ready
          end
    done
  end

let send_ack t (origin : t) (c : Chunk.t) =
  (* [dserver origin] resolves the origin's CURRENT plane — after the
     primary fails over to its host, acks chase it there. *)
  let msg =
    Repl_ack
      {
        client = c.Chunk.client;
        node = t.node.Hw.Node.id;
        idx = c.Chunk.idx;
        last_seq = c.Chunk.last_seq;
        sent_at = Engine.now ();
      }
  in
  match remote_shard t origin with
  | Some xp ->
      (* Routed home: the ack frame's sender half here, its landing and
         enqueue on the chunk primary's shard. *)
      Net.Rdma.send_src ~src:(src_loc t) Net.Rpc.msg_bytes;
      let dst = Net.Rpc.loc (dserver origin) in
      xp.xp_send ~src_node:t.node.Hw.Node.id
        ~dst_node:origin.node.Hw.Node.id ~delay:(Net.Rdma.flight ~dst)
        ~name:"nicfs.repl-ack" (fun () ->
          Net.Rdma.land_dst ~dst Net.Rpc.msg_bytes;
          Net.Rpc.deliver (dserver origin) msg)
  | None -> Net.Rpc.post (dserver origin) ~from:(src_loc t) msg

let handle_repl_chunk t ~chunk:(c : Chunk.t) ~origin ~wire ~nic_mem =
  (* Decompress if the wire form was compressed. *)
  if wire < c.Chunk.bytes then
    nic_run t
      (int_of_float
         (float_of_int c.Chunk.bytes
         /. (2.0 *. t.params.Params.compress_bps)
         *. 1e9));
  let refs = ref (match t.next_hop with Some _ -> 2 | None -> 1) in
  let release () =
    decr refs;
    if !refs = 0 && nic_mem then begin
      Hw.Smartnic.free t.node.Hw.Node.nic wire;
      Cond.broadcast t.flow
    end
  in
  (* Forward to the next replica and persist locally, in parallel
     (§3.3.2 steps 4 and 5 overlap). *)
  (match t.next_hop with
  | Some nxt ->
      Engine.spawn ~name:"nicfs.forward" (fun () ->
          send_to_successor t nxt ~origin ~wire c;
          t.repl_wire <- t.repl_wire + wire;
          release ())
  | None -> ());
  (* Persist to the local host PM log across PCIe, deliver to the
     publication gate, then ack.  The gate hand-off happens before the
     ack leaves: once persisted to host PM the chunk survives a NIC
     crash, so an acked chunk must also be guaranteed to publish —
     acking first would open a crash window where the primary stops
     retransmitting a chunk this replica never published. *)
  if nic_mem then begin
    Hw.Pcie.transfer t.node.Hw.Node.pcie c.Chunk.bytes;
    Hw.Pm.write t.node.Hw.Node.pm c.Chunk.bytes
  end
  else if wire < c.Chunk.bytes then
    (* Host-fallback delivery: the wire form already landed in host
       PM; only the decompressed full form still needs writing. *)
    Hw.Pm.write t.node.Hw.Node.pm c.Chunk.bytes;
  replica_deliver t ~origin c;
  send_ack t origin c;
  release ()

let handle_repl_direct t ~chunk:(c : Chunk.t) ~origin =
  (* Data was placed directly in our host PM log by the sender; it is
     already persistent. *)
  replica_deliver t ~origin c;
  send_ack t origin c

(* A chunk's ack set is complete when the configured replica set has
   acked.  [repl_targets = None] is the legacy fixed threshold: any
   [replicas - 1] distinct ackers.  With an explicit target list only
   members count — an ack from a node since dropped from the chain
   must not stand in for a surviving replica that never persisted. *)
let acked_enough t ackers =
  let counted =
    match t.repl_targets with
    | None -> Hashtbl.length ackers
    | Some targets ->
        List.fold_left
          (fun n id -> if Hashtbl.mem ackers id then n + 1 else n)
          0 targets
  in
  counted >= t.required_acks

let handle_ack t ~client ~node ~idx ~last_seq ~sent_at =
  Stats.Series.add t.ack_lat (Time.to_us_f (Engine.now () - sent_at));
  match Hashtbl.find_opt t.clients client with
  | None -> ()
  | Some cs -> (
      match Hashtbl.find_opt cs.acks idx with
      | None -> ()
      | Some ackers ->
          if not (Hashtbl.mem ackers node) then begin
            Hashtbl.replace ackers node ();
            if acked_enough t ackers then begin
              Hashtbl.remove cs.acks idx;
              mark_chunk_replicated t cs ~idx ~last_seq;
              retire_chunk t cs idx
            end
          end)

let set_repl_targets t ~targets =
  t.repl_targets <- Some targets;
  t.required_acks <- List.length targets

(* After a chain reconfiguration shrank the replica set, ack sets that
   were short only of dead nodes' acks are now complete.  Scan and
   finish them (sorted, for a deterministic completion order). *)
let reeval_acks t =
  let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.clients [] in
  List.iter
    (fun cid ->
      let cs = Hashtbl.find t.clients cid in
      let ready =
        Hashtbl.fold
          (fun idx ackers acc ->
            if acked_enough t ackers then idx :: acc else acc)
          cs.acks []
      in
      List.iter
        (fun idx ->
          Hashtbl.remove cs.acks idx;
          let last_seq =
            match Hashtbl.find_opt cs.inflight idx with
            | Some c -> c.Chunk.last_seq
            | None -> cs.replicated_seq
          in
          mark_chunk_replicated t cs ~idx ~last_seq;
          retire_chunk t cs idx)
        (List.sort compare ready))
    (List.sort compare cids)

(* ------------------------------------------------------------------ *)
(* Chunking and the pipelines                                          *)
(* ------------------------------------------------------------------ *)

let submit_chunk t cs (c : Chunk.t) =
  ignore t;
  Hashtbl.replace cs.acks c.Chunk.idx (Hashtbl.create 4);
  Hashtbl.replace cs.inflight c.Chunk.idx c;
  match (cs.seq_pl, cs.shared_pl) with
  | Some pl, _ -> Pipeline.submit pl c
  | None, Some pl -> Pipeline.submit pl c
  | None, None -> failwith "nicfs: client pipelines not built"

(* Group log entries beyond [fetched_seq] into chunks. Non-urgent
   submission only emits full chunks; urgent (fsync/flush) emits
   everything up to [upto]. *)
let submit_chunks t cs ~urgent ~upto =
  let continue = ref true in
  while !continue do
    let entries =
      Oplog.Log.entries_from cs.log ~seq:(cs.fetched_seq + 1)
        ~max_bytes:t.params.Params.chunk_bytes
    in
    let entries =
      match upto with
      | None -> entries
      | Some u -> List.filter (fun (e : Oplog.entry) -> e.Oplog.seq <= u) entries
    in
    match entries with
    | [] -> continue := false
    | _ ->
        let bytes =
          List.fold_left (fun n e -> n + Oplog.size e) 0 entries
        in
        let last_packed =
          (List.nth entries (List.length entries - 1)).Oplog.seq
        in
        (* A batch is a full chunk when it hit the byte budget or when
           more entries exist beyond it; a final partial batch waits
           for more updates unless urgent. *)
        let is_full =
          bytes >= t.params.Params.chunk_bytes
          || last_packed < Oplog.Log.last_seq cs.log
        in
        if (not urgent) && not is_full then continue := false
        else begin
          let c =
            Chunk.of_entries ~client:cs.cid ~idx:cs.chunk_count ~urgent
              entries
          in
          cs.chunk_count <- cs.chunk_count + 1;
          cs.fetched_seq <- c.Chunk.last_seq;
          submit_chunk t cs c
        end
  done

(* Pipeline workers live in the node's [host_group], not the NIC
   group: a worker is a logical stage executor whose compute charges
   follow [t.fallback] call by call, so a NIC crash must not kill it
   mid-item (which would wedge the in-order handoff forever) — the
   chunks it carries sit in host PM and survive the crash.  What a NIC
   crash does lose is the NIC RPC planes and their in-flight handlers;
   stranded work is redriven by client retries and the
   retransmitters. *)
let build_pipelines t cs =
  let group = t.host_group in
  if t.parallel then begin
    let scale_threshold = t.params.Params.scale_queue_threshold in
    let publish_pl =
      Pipeline.create ~scale_threshold ~group
        ~name:(Printf.sprintf "pub.c%d" cs.cid)
        ~stages:[ Pipeline.stage "publication" (publish_work t) ]
        ~sink:(publish_sink t cs) ()
    in
    let repl_stages =
      [
        Pipeline.stage ~initial_workers:1
          ~max_workers:t.params.Params.compress_workers "compression"
          (compress_work t);
        Pipeline.stage "transfer" (transfer_work t);
      ]
    in
    let repl_pl =
      Pipeline.create ~scale_threshold ~group
        ~name:(Printf.sprintf "repl.c%d" cs.cid)
        ~stages:repl_stages
        ~sink:(fun _ -> ())
        ()
    in
    let shared_pl =
      Pipeline.create ~scale_threshold ~group
        ~name:(Printf.sprintf "shared.c%d" cs.cid)
        ~stages:
          [
            Pipeline.stage ~max_workers:2 "fetching" (fetch_work t);
            Pipeline.stage ~max_workers:4 "validation" (validate_work t);
          ]
        ~sink:(fun c ->
          Pipeline.submit publish_pl c;
          Pipeline.submit repl_pl c)
        ()
    in
    cs.shared_pl <- Some shared_pl;
    cs.publish_pl <- Some publish_pl;
    cs.repl_pl <- Some repl_pl
  end
  else begin
    (* LineFS-NotParallel: one chunk at a time through all stages. *)
    let seq_pl =
      Pipeline.create ~group ~name:(Printf.sprintf "seq.c%d" cs.cid)
        ~stages:
          [
            Pipeline.stage "sequential" (fun c ->
                fetch_work t c;
                validate_work t c;
                publish_work t c;
                compress_work t c;
                transfer_work t c);
          ]
        ~sink:(publish_sink t cs) ()
    in
    cs.seq_pl <- Some seq_pl
  end

(* ------------------------------------------------------------------ *)
(* RPC planes                                                          *)
(* ------------------------------------------------------------------ *)

let handle_dmsg t = function
  | Start { client } ->
      let cs = client_state t client in
      submit_chunks t cs ~urgent:false ~upto:None
  | Repl_chunk { chunk; origin; wire; nic_mem } ->
      handle_repl_chunk t ~chunk ~origin ~wire ~nic_mem
  | Repl_direct { chunk; origin } -> handle_repl_direct t ~chunk ~origin
  | Repl_ack { client; node; idx; last_seq; sent_at } ->
      handle_ack t ~client ~node ~idx ~last_seq ~sent_at
  | Refetch { client; idx; requester } -> (
      (* Serve a scrub re-fetch from the in-flight table (not yet fully
         acked) or the retired-chunk retention cache.  Redelivery runs
         the normal replication path: the requester's gate and the
         per-node ack dedup make it idempotent. *)
      let c =
        match Hashtbl.find_opt t.clients client with
        | Some cs -> (
            match Hashtbl.find_opt cs.inflight idx with
            | Some c -> Some c
            | None -> Hashtbl.find_opt t.retired (client, idx))
        | None -> Hashtbl.find_opt t.retired (client, idx)
      in
      match c with
      | Some c ->
          Counters.bump "storage.scrub-serve";
          t.repl_wire <- t.repl_wire + c.Chunk.wire_bytes;
          send_to_successor t requester ~origin:t ~wire:c.Chunk.wire_bytes c
      | None -> ())

let handle_cmsg t = function
  | C_fsync { client; upto } ->
      let cs = client_state t client in
      poll_core_work t (Time.us 1);
      submit_chunks t cs ~urgent:true ~upto:(Some upto);
      let done_iv = Ivar.create () in
      (* The waiter lives in the host group: once the client holds the
         ivar, the fsync must complete even if the NIC plane that
         accepted it dies — replication progress is host-PM-backed
         state that a crash-restart (or the host fallback) resumes. *)
      Engine.spawn ~group:t.host_group ~name:"nicfs.fsync-wait" (fun () ->
          while cs.replicated_seq < upto do
            Cond.await cs.repl_progress
          done;
          (* Crash consistency: leases must be durable before fsync
             returns (§3.4). *)
          Lease.wait_persisted t.lease;
          Ivar.fill done_iv ());
      R_done done_iv
  | C_lease { client; inum; lt } ->
      poll_core_work t (Time.ns 500);
      let result =
        match Lease.acquire t.lease ~client ~inum lt with
        | `Granted -> `Granted
        | `Conflict ->
            (* Revoke conflicting holders: notify each (they drop their
               cached lease), release, and retry the grant. *)
            List.iter
              (fun holder ->
                if holder <> client then begin
                  Net.Rdma.move ~src:(src_loc t)
                    ~dst:(Net.Loc.Host t.node) 64;
                  (match Hashtbl.find_opt t.clients holder with
                  | Some hcs ->
                      (* on_revoke blocks until the holder's in-flight
                         append (if any) finishes, so the grandfather
                         limit below covers everything it logged under
                         the lease. *)
                      hcs.on_revoke ~inum;
                      Hashtbl.replace hcs.grandfather inum
                        (Oplog.Log.last_seq hcs.log)
                  | None -> ());
                  Lease.release t.lease ~client:holder ~inum
                end)
              (Lease.holders t.lease ~inum);
            Lease.acquire t.lease ~client ~inum lt
      in
      R_lease result
  | C_open { client = _; inum; write } ->
      poll_core_work t (Time.us 1);
      let check =
        if write then Fs_state.writable t.fs inum
        else Fs_state.readable t.fs inum
      in
      if not check then R_check (Error Fs_state.Eacces)
      else begin
        (* Ask the kernel worker to mmap the file pages read-only into
           the client (§3.6); costs a host RPC. *)
        (match
           Kworker.submit t.kworker ~from:(nic_loc t)
             { Kworker.total_bytes = 0; list_entries = 0 }
         with
        | `Ok | `Dead -> ());
        R_check (Ok ())
      end

let create ?(pipeline_parallelism = true) ?(coalescing = false)
    ?(compression = false) ?(apply_on_publish = false) ?group ~params ~node
    ~fs ~kworker () =
  (* The node's host-side fault domain; never killed by a NIC crash. *)
  let host_group =
    Engine.make_group (Printf.sprintf "host%d" node.Hw.Node.id)
  in
  let rec t =
    lazy
      {
        params;
        node;
        fs;
        kworker;
        lease =
          Lease.create ~params ~node ~group:host_group
            ~current_epoch:(fun () -> (Lazy.force t).epoch)
            ~replicate:(fun ~bytes -> lease_replicate (Lazy.force t) ~bytes)
            ();
        parallel = pipeline_parallelism;
        apply_on_publish;
        coalescing;
        compression;
        next_hop = None;
        xport = None;
        clients = Hashtbl.create 8;
        kworker_ok = true;
        is_isolated = false;
        monitor_running = false;
        flow = Cond.create ();
        flow_blocked = false;
        dserver = None;
        cserver = None;
        repl_wire = 0;
        pub_bytes = 0;
        coalesced = 0;
        ack_lat = Stats.Series.create ();
        epoch = 1;
        history = Cluster.History.create ();
        alive = true;
        group;
        host_group;
        incarnation = 0;
        repl_gate = Hashtbl.create 8;
        fallback = false;
        fb_dserver = None;
        fb_cserver = None;
        fb_episode = 0;
        repl_targets = None;
        required_acks = max 0 (params.Params.replicas - 1);
        retired = Hashtbl.create 8;
        retired_fifo = Queue.create ();
        torn_pending = false;
        apply_journal = [];
      }
  and lease_replicate t ~bytes =
    (* Ship the lease record down the replication chain; a hop in host
       fallback receives it straight into host memory.  Across shards
       the walk becomes a hop-by-hop relay: each cross-shard hop pays
       its sender half locally and continues the walk from inside the
       landing closure on the successor's shard. *)
    let rec go cur =
      match cur.next_hop with
      | None -> ()
      | Some nxt -> (
          let dst =
            if nxt.fallback then Net.Loc.Host nxt.node
            else Net.Loc.Nic nxt.node
          in
          match remote_shard cur nxt with
          | Some xp ->
              Net.Rdma.send_src ~src:(src_loc cur) bytes;
              xp.xp_send ~src_node:cur.node.Hw.Node.id
                ~dst_node:nxt.node.Hw.Node.id
                ~delay:(Net.Rdma.flight ~dst) ~name:"nicfs.lease-repl"
                (fun () ->
                  Net.Rdma.land_dst ~dst bytes;
                  Hw.Pm.write nxt.node.Hw.Node.pm bytes;
                  go nxt)
          | None ->
              Net.Rdma.move ~src:(src_loc cur) ~dst bytes;
              Hw.Pm.write nxt.node.Hw.Node.pm bytes;
              go nxt)
    in
    go t
  in
  let t = Lazy.force t in
  t.dserver <-
    Some
      (Net.Rpc.create ?group
         ~name:(Printf.sprintf "nicfs%d.data" node.Hw.Node.id)
         ~loc:(nic_loc t) ~integrity:dmsg_integrity
         ~kind:(Net.Rpc.Event { workers = 4; prio = Hw.Cpu.prio_normal })
         ~handler:(fun m ->
           handle_dmsg t m)
         ());
  t.cserver <-
    Some
      (Net.Rpc.create ?group
         ~name:(Printf.sprintf "nicfs%d.ctrl" node.Hw.Node.id)
         ~loc:(nic_loc t) ~kind:Net.Rpc.Busy_poll
         ~handler:(fun m -> handle_cmsg t m)
         ());
  t

let set_next_hop t nxt = t.next_hop <- nxt
let set_xport t xp = t.xport <- Some xp
let set_compression t b = t.compression <- b
let compression_enabled t = t.compression
let set_coalescing t b = t.coalescing <- b
let isolated t = t.is_isolated
let ping t = t.alive
let alive t = t.alive

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.monitor_running <- false;
    t.flow_blocked <- false;
    match t.group with Some g -> Engine.kill g | None -> ()
  end

let restart t =
  if not t.alive then begin
    t.incarnation <- t.incarnation + 1;
    (* A fresh group: the old one stays killed so pre-crash
       continuations can never resurface. *)
    let g =
      Engine.make_group
        (Printf.sprintf "nicfs%d#%d" t.node.Hw.Node.id t.incarnation)
    in
    t.group <- Some g;
    (* NIC DRAM is volatile: in-flight chunks died with the crash.
       Host PM state (logs, publication gate progress) survives. *)
    Hw.Smartnic.reset_mem t.node.Hw.Node.nic;
    t.flow_blocked <- false;
    (match t.dserver with Some s -> Net.Rpc.restart ~group:g s | None -> ());
    (match t.cserver with Some s -> Net.Rpc.restart ~group:g s | None -> ());
    t.alive <- true
  end

(* ------------------------------------------------------------------ *)
(* Degraded mode: host fallback and whole-node death (§3.6)            *)
(* ------------------------------------------------------------------ *)

let in_fallback t = t.fallback

(* NIC dead, host alive: bring the NICFS planes up on host cores.
   Driven by the cluster manager's service map (NIC probe failing,
   host probe answering).  Clients and peers need no special casing —
   [dserver]/[cserver] resolve to the fallback planes and every
   compute/memory/endpoint decision consults [t.fallback]. *)
let enter_fallback t =
  if (not t.alive) && not t.fallback then begin
    t.fb_episode <- t.fb_episode + 1;
    let prio = Kworker.prio t.kworker in
    let loc = Net.Loc.Host t.node in
    let id = t.node.Hw.Node.id in
    (* Event dispatch (not busy-poll) for the control plane: degraded
       mode must not permanently steal a spinning host core. *)
    t.fb_dserver <-
      Some
        (Net.Rpc.create ~group:t.host_group
           ~name:(Printf.sprintf "nicfs%d.data.fb%d" id t.fb_episode)
           ~loc ~integrity:dmsg_integrity
           ~kind:(Net.Rpc.Event { workers = 4; prio })
           ~handler:(fun m -> handle_dmsg t m)
           ());
    t.fb_cserver <-
      Some
        (Net.Rpc.create ~group:t.host_group
           ~name:(Printf.sprintf "nicfs%d.ctrl.fb%d" id t.fb_episode)
           ~loc
           ~kind:(Net.Rpc.Event { workers = 1; prio })
           ~handler:(fun m -> handle_cmsg t m)
           ());
    t.fallback <- true
  end

(* Fail-back after the NIC restarts: flip traffic back to the NIC
   planes, migrate degraded-mode state across PCIe, then drain and
   retire the host planes.  Shutdown is graceful — requests already
   queued at the fallback servers are still served, by handlers that
   now charge the NIC again. *)
let exit_fallback t =
  if t.fallback && t.alive then begin
    t.fallback <- false;
    let ds = t.fb_dserver and cs = t.fb_cserver in
    t.fb_dserver <- None;
    t.fb_cserver <- None;
    Engine.spawn ~group:t.host_group ~name:"nicfs.failback" (fun () ->
        (* Ship cursors / ack tables / lease table back to NIC memory. *)
        Hw.Pcie.rpc_round_trip t.node.Hw.Node.pcie;
        (match ds with Some s -> Net.Rpc.shutdown s | None -> ());
        (match cs with Some s -> Net.Rpc.shutdown s | None -> ()))
  end

(* Whole-node failure (host included): beyond [crash], every host-side
   process dies too — pipelines, retransmitters, fallback planes.
   There is no matching un-kill; a dead node leaves the cluster. *)
let kill_node t =
  crash t;
  t.fallback <- false;
  t.fb_dserver <- None;
  t.fb_cserver <- None;
  Engine.kill t.host_group

let start_monitor t =
  if not t.monitor_running then begin
    t.monitor_running <- true;
    Engine.spawn ?group:t.group ~name:"nicfs.monitor" (fun () ->
        while t.monitor_running do
          Engine.sleep t.params.Params.hb_interval;
          if t.monitor_running then begin
            (* Probe the kernel worker across PCIe. *)
            Hw.Pcie.rpc_round_trip t.node.Hw.Node.pcie;
            let ok = Kworker.alive t.kworker in
            if (not ok) && t.kworker_ok then begin
              t.kworker_ok <- false;
              t.is_isolated <- true
            end
            else if ok && not t.kworker_ok then begin
              t.kworker_ok <- true;
              t.is_isolated <- false
            end
          end
        done)
  end

let stop_monitor t = t.monitor_running <- false

let register_client t ~id ~log ~on_published ~on_revoke =
  let cs =
    {
      cid = id;
      log;
      on_published;
      on_revoke;
      grandfather = Hashtbl.create 8;
      fetched_seq = 0;
      chunk_count = 0;
      replicated_seq = 0;
      published_seq = 0;
      repl_progress = Cond.create ();
      publish_progress = Cond.create ();
      completed_repl = Hashtbl.create 8;
      next_repl_idx = 0;
      acks = Hashtbl.create 8;
      inflight = Hashtbl.create 8;
      shared_pl = None;
      publish_pl = None;
      repl_pl = None;
      seq_pl = None;
    }
  in
  build_pipelines t cs;
  Hashtbl.replace t.clients id cs

let start_pipeline t ~from ~client =
  Net.Rpc.post (dserver t) ~from (Start { client })

let cserver t =
  match (if t.fallback then t.fb_cserver else t.cserver) with
  | Some s -> s
  | None -> failwith "nicfs: not started"

(* Control-plane call with timeout + capped exponential backoff.  The
   endpoint is re-resolved on EVERY attempt: after a NIC crash the
   service moves to the host-fallback plane, and a retry must chase it
   there instead of timing out against the dead NIC plane forever.
   The growing timeout doubles as the backoff interval.  All handlers
   are idempotent under re-execution (fsync re-submission dedups on
   [fetched_seq], a re-granted lease refreshes expiry, open re-checks).
   On a perfect network (no injection hook) this is the plain lossless
   call — zero added events, fingerprints unchanged. *)
let cserver_call t ~from req =
  if not (Net.Inject.active ()) then Net.Rpc.call (cserver t) ~from req
  else begin
    let policy = Net.Backoff.default in
    (* One sequence number for the whole logical request: every retry
       is a retransmission, so a server that already executed it (the
       reply was lost, not the request) replays the cached reply
       instead of re-executing the handler. *)
    let key = Net.Rpc.fresh_key ~from in
    let rec go attempt =
      match
        Net.Rpc.call_timeout (cserver t) ~from ~key
          ~timeout:(Net.Backoff.delay policy ~attempt)
          req
      with
      | Some r -> r
      | None ->
          Counters.bump "net.retransmit";
          go (attempt + 1)
    in
    go 0
  end

let fsync t ~from ~client ~upto_seq =
  match cserver_call t ~from (C_fsync { client; upto = upto_seq }) with
  | R_done iv ->
      Ivar.read iv;
      (* Completion notification back to LibFS. *)
      Net.Rdma.move ~src:(src_loc t) ~dst:from 64
  | R_lease _ | R_check _ -> failwith "nicfs: protocol mismatch"

let open_check t ~from ~client ~inum ~write =
  match cserver_call t ~from (C_open { client; inum; write }) with
  | R_check r -> r
  | R_done _ | R_lease _ -> failwith "nicfs: protocol mismatch"

let lease_acquire t ~from ~client ~inum lt =
  match cserver_call t ~from (C_lease { client; inum; lt }) with
  | R_lease r -> r
  | R_done _ | R_check _ -> failwith "nicfs: protocol mismatch"

let flush t ~client =
  let cs = client_state t client in
  let upto = Oplog.Log.last_seq cs.log in
  if upto > cs.fetched_seq then submit_chunks t cs ~urgent:true ~upto:None;
  while cs.replicated_seq < upto do
    Cond.await cs.repl_progress
  done;
  while cs.published_seq < upto do
    Cond.await cs.publish_progress
  done;
  Lease.wait_persisted t.lease

(* Pipeline-cursor snapshot for one client — DST triage of wedged
   scenarios (is the stall in chunking, replication, or publication?). *)
let debug_client_state t ~client =
  match Hashtbl.find_opt t.clients client with
  | None -> "no client state"
  | Some cs ->
      Printf.sprintf
        "log_last=%d fetched=%d replicated=%d published=%d acks=%d \
         inflight=%d next_repl_idx=%d chunk_count=%d"
        (Oplog.Log.last_seq cs.log) cs.fetched_seq cs.replicated_seq
        cs.published_seq (Hashtbl.length cs.acks)
        (Hashtbl.length cs.inflight) cs.next_repl_idx cs.chunk_count

let replicated_wire_bytes t = t.repl_wire
let published_bytes t = t.pub_bytes
let coalesced_entries t = t.coalesced

let stage_series t ~client =
  let cs = client_state t client in
  match (cs.seq_pl, cs.shared_pl, cs.publish_pl, cs.repl_pl) with
  | Some pl, _, _, _ -> [ ("sequential", Pipeline.stage_latency pl ~stage:"sequential") ]
  | None, Some sh, Some pub, Some rep ->
      [
        ("fetching", Pipeline.stage_latency sh ~stage:"fetching");
        ("validation", Pipeline.stage_latency sh ~stage:"validation");
        ("publication", Pipeline.stage_latency pub ~stage:"publication");
        ("compression", Pipeline.stage_latency rep ~stage:"compression");
        ("transfer", Pipeline.stage_latency rep ~stage:"transfer");
      ]
  | _ -> []

let stage_mean_us t ~client =
  List.map (fun (n, s) -> (n, Stats.Series.mean s)) (stage_series t ~client)

let ack_latency t = t.ack_lat

(* ------------------------------------------------------------------ *)
(* Epoch / history (recovery support, SS3.6)                           *)
(* ------------------------------------------------------------------ *)

let epoch t = t.epoch

let set_epoch t e =
  if e <> t.epoch then begin
    (* An epoch bump is a cluster-wide lease revocation (§3.6).  Treat
       every current hold exactly like a conflict revocation: tell the
       holder to drop its cached lease (otherwise it would keep logging
       under a dead lease) and grandfather what it already logged so
       those entries still pass validation. *)
    let holds = ref [] in
    Lease.iter_holds t.lease ~f:(fun ~inum ~client ->
        holds := (inum, client) :: !holds);
    List.iter
      (fun (inum, client) ->
        (match Hashtbl.find_opt t.clients client with
        | Some hcs ->
            hcs.on_revoke ~inum;
            Hashtbl.replace hcs.grandfather inum
              (Oplog.Log.last_seq hcs.log)
        | None -> ());
        Lease.release t.lease ~client ~inum)
      (List.rev !holds);
    t.epoch <- e;
    (* Persist the epoch number to host PM. *)
    Hw.Pm.write t.node.Hw.Node.pm 8
  end

let history t = t.history
let fs t = t.fs

(* ------------------------------------------------------------------ *)
(* Storage-fault injection and scrub evidence                          *)
(* ------------------------------------------------------------------ *)

let mark_torn t = t.torn_pending <- true
let apply_journal t = List.rev t.apply_journal
