(** Aggregated client cohort: one LibFS driver standing in for K
    logical clients.

    Rack-scale experiments need many clients per node, but every extra
    {!Libfs.t} costs a private log, a lease table and a pipeline set in
    the simulation.  A cohort multiplexes K {e users} over one shared
    {!Dfs_intf.ops} driver: each user gets an ops view that delegates
    every call unchanged — same fd space, same log, same pipelines —
    and accounts the call to that user.  An operation issued through a
    user view is indistinguishable, to the file system, from one issued
    directly on the driver, which is what the cohort-equivalence test
    checks against K individual clients.

    Users share the driver's fd space, so cohort workloads keep the
    usual convention of per-user paths (e.g. [/dir/u3-data]) and
    per-user fds.  Scheduling (round-robin or otherwise) is the
    caller's loop; a cohort only routes and counts. *)

type t

val create : ops:Dfs_intf.ops -> users:int -> unit -> t
(** [users] must be >= 1. *)

val users : t -> int

val user_ops : t -> int -> Dfs_intf.ops
(** The ops view of user [uid] (0-based).  Delegation adds no simulated
    time. *)

type stats = {
  ops_issued : int;
  bytes_written : int;
  bytes_read : int;
  fsyncs : int;
}

val user_stats : t -> int -> stats
val totals : t -> stats
