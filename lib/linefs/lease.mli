(** NICFS lease manager (§3.4).

    Leases give single-writer / multiple-reader access to files and
    directories.  Grants update SmartNIC memory immediately; persistence
    to host PM and replication to peer NICFSes happen asynchronously in
    the background, off the critical path.  [wait_persisted] is the
    fsync barrier that restores crash consistency. *)


type ltype = Read | Write

type t

(** Lease-table transitions, observable for trace-based safety checking
    (the DST harness reconstructs who held which lease when and checks
    single-writer safety).  [node] is the granting NICFS's node id. *)
type event =
  | Granted of {
      node : int;
      client : int;
      inum : int;
      ltype : ltype;
      epoch : int;
      expires : Sim.Time.t;
    }
  | Released of { node : int; client : int; inum : int }
  | Expired of { node : int; client : int; inum : int }
      (** Dropped without the client asking (fail-over / revocation). *)

val set_observer : (event -> unit) -> unit
(** Install an observer notified of every lease transition on every
    manager.  Called from inside a simulation process it binds to the
    running engine (so sharded scenarios observe independently); called
    outside any run it installs the process-global fallback.  One at a
    time per scope; installing replaces. *)

val clear_observer : unit -> unit

val create :
  ?current_epoch:(unit -> int) ->
  ?group:Sim.Engine.group ->
  params:Params.t ->
  node:Hw.Node.t ->
  replicate:(bytes:int -> unit) ->
  unit ->
  t
(** [replicate] ships a small lease record to the replica NICFSes
    (injected to avoid a dependency on the replication chain).
    [current_epoch] reads the owning NICFS's cluster epoch: a grant is
    stamped with it and a lease from an older epoch is invalid — the
    epoch bump at failure detection is a cluster-wide revocation
    (§3.6).  Defaults to a constant, i.e. epochs disabled.
    [group] hosts the background persist processes; pass a domain that
    survives NIC crashes (the grant record is host-PM state). *)

val acquire :
  t -> client:int -> inum:int -> ltype -> [ `Granted | `Conflict ]
(** Grant if compatible: a writer excludes everyone else; readers share.
    Re-acquisition by the holder refreshes the expiry. The grant itself
    is NIC-memory-only; persistence is queued in the background. *)

val release : t -> client:int -> inum:int -> unit

val holders : t -> inum:int -> int list
(** Clients currently holding the inode's lease (writer first). *)

val iter_holds : t -> f:(inum:int -> client:int -> unit) -> unit
(** Visit every (inode, holder) pair in the table, stale or not — the
    epoch-bump revocation sweep uses this to grandfather and notify
    holders. *)

val check_access : t -> client:int -> inum:int -> write:bool -> bool
(** Validation-stage test: does this client's access conflict with a
    lease held by someone else?  Unleased inodes are accessible (the
    holder-of-record is the issuing client's node). *)

val expire_client : t -> client:int -> unit
(** Drop all leases of a client (fail-over path). *)

val pending_persists : t -> int
(** Grants whose persistence/replication has not completed yet. *)

val wait_persisted : t -> unit
(** Block until every outstanding grant is persisted and replicated. *)

val active_leases : t -> int
