open Sim

type t = {
  groups : Deployment.t array;
  group_size : int;
  sharding : (Sharded.t * int) option;
}

let create ?cfg ?params ?pipeline_parallelism ?kworker_mode ?dfs_prio
    ?compression ?coalescing ?monitor ?apply_on_publish ?sharding ~nodes
    ~group_size () =
  if group_size < 1 then invalid_arg "Rack.create: group_size must be >= 1";
  if nodes < group_size || nodes mod group_size <> 0 then
    invalid_arg "Rack.create: nodes must be a positive multiple of group_size";
  let ngroups = nodes / group_size in
  let groups =
    Array.init ngroups (fun g ->
        let sharding =
          Option.map (fun (sh, base) -> (sh, base + (g * group_size))) sharding
        in
        Deployment.create ?cfg ?params ?pipeline_parallelism ?kworker_mode
          ?dfs_prio ?compression ?coalescing ?monitor ?apply_on_publish
          ?sharding ~nodes:group_size ())
  in
  { groups; group_size; sharding }

let group_count t = Array.length t.groups
let group_size t = t.group_size
let node_count t = Array.length t.groups * t.group_size
let group t g = t.groups.(g)

let shard_of_group t g =
  match t.sharding with
  | None -> invalid_arg "Rack.shard_of_group: rack is not sharded"
  | Some (_, base) -> base + (g * t.group_size)

(* Namespace placement: a path is owned by the replica group its parent
   directory hashes to, so one directory's files share a group (and its
   leases and pipelines stay node-local).  FNV-1a: stable across runs
   and OCaml versions, unlike [Hashtbl.hash]. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let place t path =
  let dir, _ = Dfs_intf.split_path path in
  fnv1a dir mod group_count t

(* A directory name guaranteed to place on [group]: deterministic
   linear probe over a salted name family.  With G groups the expected
   probe count is G; the sweep uses a handful of directories per run. *)
let owned_dir t ~group ~salt =
  let rec go k =
    let d = Printf.sprintf "/g%d-%d-%d" group salt k in
    if place t (d ^ "/x") = group then d else go (k + 1)
  in
  go 0

let attach t ~group ~id = Deployment.add_client t.groups.(group) ~id

(* Path-routing client over one attached Libfs per group.  Fds are
   translated through a table so callers see one fd space; [mkdir]
   broadcasts (every group must be able to resolve ancestors of the
   files it owns); [rename] is supported within one owning group —
   cross-group renames would be a data migration, which the namespace
   does not model, so they fail with [Einval] like a cross-mount rename
   does under POSIX. *)
let router t ~clients =
  if Array.length clients <> group_count t then
    invalid_arg "Rack.router: need exactly one client per group";
  let ops = Array.map Libfs.ops clients in
  let fds : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let next_fd = ref 0 in
  let alloc g fd =
    let rfd = !next_fd in
    incr next_fd;
    Hashtbl.replace fds rfd (g, fd);
    rfd
  in
  let resolve rfd =
    match Hashtbl.find_opt fds rfd with
    | Some gf -> gf
    | None -> Dfs_intf.fail Storage.Fs_state.Einval (string_of_int rfd)
  in
  {
    Dfs_intf.sysname = ops.(0).Dfs_intf.sysname;
    create =
      (fun path ->
        let g = place t path in
        alloc g (ops.(g).Dfs_intf.create path));
    open_file =
      (fun path ->
        let g = place t path in
        alloc g (ops.(g).Dfs_intf.open_file path));
    close =
      (fun rfd ->
        let g, fd = resolve rfd in
        Hashtbl.remove fds rfd;
        ops.(g).Dfs_intf.close fd);
    write =
      (fun rfd ~pos data ->
        let g, fd = resolve rfd in
        ops.(g).Dfs_intf.write fd ~pos data);
    append =
      (fun rfd data ->
        let g, fd = resolve rfd in
        ops.(g).Dfs_intf.append fd data);
    read =
      (fun rfd ~pos ~len ->
        let g, fd = resolve rfd in
        ops.(g).Dfs_intf.read fd ~pos ~len);
    fsync =
      (fun rfd ->
        let g, fd = resolve rfd in
        ops.(g).Dfs_intf.fsync fd);
    mkdir = (fun path -> Array.iter (fun o -> o.Dfs_intf.mkdir path) ops);
    unlink =
      (fun path ->
        let g = place t path in
        ops.(g).Dfs_intf.unlink path);
    rename =
      (fun a b ->
        let ga = place t a and gb = place t b in
        if ga <> gb then Dfs_intf.fail Storage.Fs_state.Einval b;
        ops.(ga).Dfs_intf.rename a b);
    file_size =
      (fun path ->
        let g = place t path in
        ops.(g).Dfs_intf.file_size path);
  }

let replication_wire_bytes t =
  Array.fold_left
    (fun acc d -> acc + Deployment.replication_wire_bytes d)
    0 t.groups

let total_host_dfs_cpu t =
  Array.fold_left
    (fun acc d -> acc + Deployment.total_host_dfs_cpu d)
    0 t.groups
