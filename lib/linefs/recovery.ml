open Sim
open Storage

type stats = {
  from_epoch : int;
  to_epoch : int;
  inodes_resynced : int;
  bytes_fetched : int;
  log_entries_invalidated : int;
  elapsed : Time.t;
}

let inode_metadata_bytes = 512
let history_entry_bytes = 16

let run ?(invalidate_logs = []) ~manager ~recovering ~source () =
  let t0 = Engine.now () in
  let rec_node = Nicfs.node recovering and src_node = Nicfs.node source in
  (* 1. Re-register: the cluster manager bumps the epoch and notifies
     every alive NICFS, which persists it. *)
  let from_epoch = Nicfs.epoch recovering in
  Cluster.Manager.mark_recovered manager ~id:rec_node.Hw.Node.id;
  let to_epoch = Cluster.Manager.epoch manager in
  Nicfs.set_epoch recovering to_epoch;
  (* 2. Fetch the history bitmap from the online replica. *)
  let bitmap = Cluster.History.copy (Nicfs.history source) in
  let touched = Cluster.History.inodes_since bitmap ~epoch:from_epoch in
  Net.Rdma.move
    ~src:(Net.Loc.Nic src_node)
    ~dst:(Net.Loc.Nic rec_node)
    (List.length touched * history_entry_bytes);
  (* 3. Pull each inode updated while we were down: metadata plus file
     contents from the replica's public PM into ours. *)
  let bytes = ref 0 in
  List.iter
    (fun inum ->
      let size = Fs_state.file_size (Nicfs.fs source) inum in
      let n = inode_metadata_bytes + size in
      Net.Rdma.move ~src_medium:`Pm ~dst_medium:`Pm
        ~src:(Net.Loc.Host src_node)
        ~dst:(Net.Loc.Host rec_node)
        n;
      Cluster.History.record (Nicfs.history recovering) ~epoch:to_epoch ~inum;
      bytes := !bytes + n)
    touched;
  (* 4. Invalidate stale local log entries touching recovered inodes —
     and only those: entries over untouched inodes are still the newest
     version of their data and must survive for later publication. *)
  let touched_set = List.sort_uniq compare touched in
  let invalidated = ref 0 in
  List.iter
    (fun log ->
      invalidated :=
        !invalidated
        + Oplog.Log.remove_if log (fun e ->
              List.exists
                (fun inum -> List.mem inum touched_set)
                (Oplog.touches e.Oplog.op)))
    invalidate_logs;
  {
    from_epoch;
    to_epoch;
    inodes_resynced = List.length touched;
    bytes_fetched = !bytes;
    log_entries_invalidated = !invalidated;
    elapsed = Engine.now () - t0;
  }

(* Recovery-time integrity scrub: walk the node's persisted extents,
   compare each file's streamed CRC32 against the chain source, and
   re-fetch any inode whose content rotted on PM.  Quarantine-and-
   refetch of torn replication records is the publication gate's job
   ({!Nicfs.mark_torn}); this pass covers the published state.  The
   mutation knob {!Nicfs.chaos_no_scrub} turns it off so the
   conformance self-test can prove the scrub is load-bearing. *)
let scrub ~recovering ~source =
  if !Nicfs.chaos_no_scrub then 0
  else begin
    let rfs = Nicfs.fs recovering and sfs = Nicfs.fs source in
    let repaired = ref 0 in
    List.iter
      (fun inum ->
        match (Fs_state.file_crc rfs inum, Fs_state.file_crc sfs inum) with
        | Some got, Some want when not (Int32.equal got want) ->
            if Fs_state.copy_file_content ~src:sfs ~dst:rfs inum then begin
              let n = inode_metadata_bytes + Fs_state.file_size sfs inum in
              Net.Rdma.move ~src_medium:`Pm ~dst_medium:`Pm
                ~src:(Net.Loc.Host (Nicfs.node source))
                ~dst:(Net.Loc.Host (Nicfs.node recovering))
                n;
              Counters.bump "storage.bitrot-repair";
              incr repaired
            end
        | _ -> ())
      (Fs_state.scrub_candidates rfs);
    !repaired
  end
