(** NICFS recovery (§3.6).

    When a failed NICFS restarts, it registers with the cluster
    manager, reads its persisted epoch number, fetches the replicated
    history bitmap from an online replica, and pulls every inode
    recorded between its persisted epoch and the current one.  Local
    update logs touching recovered inodes are invalidated. *)

open Sim

type stats = {
  from_epoch : int;  (** Epoch the node persisted before going down. *)
  to_epoch : int;  (** Cluster epoch after re-registration. *)
  inodes_resynced : int;
  bytes_fetched : int;  (** Data + metadata pulled from the replica. *)
  log_entries_invalidated : int;
  elapsed : Time.t;
}

val run :
  ?invalidate_logs:Storage.Oplog.Log.t list ->
  manager:Cluster.Manager.t ->
  recovering:Nicfs.t ->
  source:Nicfs.t ->
  unit ->
  stats
(** Execute the recovery protocol (process context required).
    [source] must be an online replica holding the history bitmap.
    [invalidate_logs] are local client logs to scan: only the entries
    touching recovered inodes are invalidated (the resynced copy
    supersedes them); entries over untouched inodes survive. *)

val scrub : recovering:Nicfs.t -> source:Nicfs.t -> int
(** Recovery-time integrity scrub: stream a CRC32 over every non-empty
    file persisted on [recovering] and compare it against [source]
    (the chain's authority); re-fetch the content of any inode whose
    extents rotted.  Returns the number of inodes repaired.  A no-op
    (returning 0) while {!Nicfs.chaos_no_scrub} is set. *)
