open Sim

type copy_mode =
  | No_copy
  | Cpu_memcpy
  | Dma_polling
  | Dma_polling_batch
  | Dma_interrupt_batch

let copy_mode_name = function
  | No_copy -> "No copy"
  | Cpu_memcpy -> "CPU memcpy"
  | Dma_polling -> "DMA polling"
  | Dma_polling_batch -> "DMA polling + batch"
  | Dma_interrupt_batch -> "DMA interrupt + batch"

type request = { total_bytes : int; list_entries : int }

(* A host core copying PM-to-PM moves ~1.2 GB/s (write-limited Optane
   streaming), well below its DRAM memcpy rate. *)
let pm_memcpy_bps = 1.2e9

let pm_copy_work bytes =
  int_of_float (Float.round (float_of_int bytes /. pm_memcpy_bps *. 1e9))

type t = {
  node : Hw.Node.t;
  params : Params.t;
  prio : Hw.Cpu.prio;
  account : Stats.Busy.t option;
  mutable cmode : copy_mode;
  mutable is_alive : bool;
  mutable copied : int;
  mutable server : (request, [ `Ok | `Dead ]) Net.Rpc.t option;
}

(* Run [f] and [g] concurrently; return when both finished. *)
let both f g =
  let done_f = Ivar.create () and done_g = Ivar.create () in
  Engine.spawn ~name:"kw.par1" (fun () ->
      f ();
      Ivar.fill done_f ());
  Engine.spawn ~name:"kw.par2" (fun () ->
      g ();
      Ivar.fill done_g ());
  Ivar.read done_f;
  Ivar.read done_g

let pm_device_charges t bytes =
  (* The copy reads the log and writes public PM; both live in PM. *)
  Hw.Pm.read t.node.Hw.Node.pm bytes;
  Hw.Pm.write t.node.Hw.Node.pm bytes

let cpu_run t work =
  Hw.Cpu.run ~prio:t.prio ?account:t.account t.node.Hw.Node.host work

let do_copy t { total_bytes; list_entries } =
  let dma = t.node.Hw.Node.dma in
  (match t.cmode with
  | No_copy -> ()
  | Cpu_memcpy ->
      cpu_run t (pm_copy_work total_bytes);
      pm_device_charges t total_bytes
  | Dma_polling ->
      (* One DMA request per copy-list entry, each polled to completion
         by a host thread that keeps its core while spinning (SPDK
         style). *)
      let entries = max 1 list_entries in
      let per = max 1 (total_bytes / entries) in
      let tk =
        Hw.Cpu.task ~prio:t.prio ?account:t.account t.node.Hw.Node.host
      in
      for _ = 1 to entries do
        let est = Hw.Dma.copy_time dma per in
        both
          (fun () -> Hw.Dma.copy dma per)
          (fun () -> Hw.Cpu.task_run tk est)
      done;
      Hw.Cpu.task_release tk;
      pm_device_charges t total_bytes
  | Dma_polling_batch ->
      let est = Hw.Dma.copy_time dma total_bytes in
      let tk =
        Hw.Cpu.task ~prio:t.prio ?account:t.account t.node.Hw.Node.host
      in
      both
        (fun () -> Hw.Dma.copy dma total_bytes)
        (fun () -> Hw.Cpu.task_run tk est);
      Hw.Cpu.task_release tk;
      pm_device_charges t total_bytes
  | Dma_interrupt_batch ->
      Hw.Dma.copy dma total_bytes;
      pm_device_charges t total_bytes;
      (* Completion interrupt handling is the only CPU cost. *)
      cpu_run t t.params.Params.kworker_interrupt_cost);
  if t.cmode <> No_copy then t.copied <- t.copied + total_bytes

let create ?(mode = Dma_interrupt_batch) ?(prio = Hw.Cpu.prio_normal) ?account
    ~params ~node () =
  let t =
    {
      node;
      params;
      prio;
      account;
      cmode = mode;
      is_alive = true;
      copied = 0;
      server = None;
    }
  in
  let handler req =
    if not t.is_alive then `Dead
    else begin
      do_copy t req;
      `Ok
    end
  in
  let srv =
    Net.Rpc.create ~name:(Printf.sprintf "kworker%d" node.Hw.Node.id)
      ~loc:(Net.Loc.Host node)
      ~kind:(Net.Rpc.Event { workers = 1; prio })
      ~handler ()
  in
  t.server <- Some srv;
  t

let submit t ~from req =
  match t.server with
  | None -> `Dead
  | Some srv -> Net.Rpc.call srv ~from req

let host_run t work = cpu_run t work
let host_loc t = Net.Loc.Host t.node
let prio t = t.prio
let set_mode t m = t.cmode <- m
let mode t = t.cmode
let alive t = t.is_alive
let crash t = t.is_alive <- false
let recover t = t.is_alive <- true
let bytes_copied t = t.copied
