open Sim

type 'a stage_spec = {
  sname : string;
  work : 'a -> unit;
  initial_workers : int;
  max_workers : int;
}

let stage ?(initial_workers = 1) ?(max_workers = 1) sname work =
  { sname; work; initial_workers; max_workers }

type 'a stage_rt = {
  spec : 'a stage_spec;
  queue : (int * Time.t * 'a) Mailbox.t; (* (index, enqueue time, item) *)
  mutable nworkers : int;
  reorder : (int, 'a) Hashtbl.t; (* completed, awaiting in-order handoff *)
  mutable next_out : int;
  latency : Stats.Series.t;
  wait : Stats.Series.t;
}

type 'a t = {
  name : string;
  scale_threshold : int;
  group : Engine.group option;
  stages : 'a stage_rt array;
  sink : 'a -> unit;
  mutable next_idx : int;
  mutable completed : int;
}

let rec spawn_worker t si =
  let st = t.stages.(si) in
  st.nworkers <- st.nworkers + 1;
  let wname = Printf.sprintf "%s.%s.w%d" t.name st.spec.sname st.nworkers in
  (* Workers spawn in the pipeline's own group when one was given,
     not the caller's: dynamic scale-up can run inside an RPC handler
     whose group is a different fault-injection domain, and inheriting
     it would let a crash there kill a worker mid-item, wedging the
     in-order handoff forever. *)
  Engine.spawn ?group:t.group ~name:wname (fun () ->
      let rec loop () =
        let idx, enq_at, item = Mailbox.recv st.queue in
        Stats.Series.add st.wait (Time.to_us_f (Engine.now () - enq_at));
        let t0 = Engine.now () in
        st.spec.work item;
        Stats.Series.add st.latency (Time.to_us_f (Engine.now () - t0));
        deliver t si idx item;
        loop ()
      in
      loop ())

(* Hand completed items downstream in index order. *)
and deliver t si idx item =
  let st = t.stages.(si) in
  Hashtbl.replace st.reorder idx item;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt st.reorder st.next_out with
    | None -> continue := false
    | Some it ->
        Hashtbl.remove st.reorder st.next_out;
        let out_idx = st.next_out in
        st.next_out <- st.next_out + 1;
        if si + 1 < Array.length t.stages then enqueue t (si + 1) out_idx it
        else begin
          t.completed <- t.completed + 1;
          t.sink it
        end
  done

and enqueue t si idx item =
  let st = t.stages.(si) in
  Mailbox.send st.queue (idx, Engine.now (), item);
  (* Dynamic parallelism: a backed-up stage gets another SmartNIC
     thread (§3.1). *)
  if
    Mailbox.length st.queue > t.scale_threshold
    && st.nworkers < st.spec.max_workers
  then spawn_worker t si

let create ?(scale_threshold = Params.default.Params.scale_queue_threshold)
    ?group ~name ~stages ~sink () =
  if stages = [] then invalid_arg "Pipeline.create: no stages";
  let t =
    {
      name;
      scale_threshold;
      group;
      stages =
        Array.of_list
          (List.map
             (fun spec ->
               {
                 spec;
                 queue = Mailbox.create ();
                 nworkers = 0;
                 reorder = Hashtbl.create 8;
                 next_out = 0;
                 latency = Stats.Series.create ();
                 wait = Stats.Series.create ();
               })
             stages);
      sink;
      next_idx = 0;
      completed = 0;
    }
  in
  Array.iteri
    (fun si st ->
      for _ = 1 to max 1 st.spec.initial_workers do
        if st.nworkers < max 1 st.spec.initial_workers then spawn_worker t si
      done)
    t.stages;
  t

let submit t item =
  let idx = t.next_idx in
  t.next_idx <- t.next_idx + 1;
  enqueue t 0 idx item

let find_stage t name =
  match
    Array.to_list t.stages
    |> List.find_opt (fun st -> st.spec.sname = name)
  with
  | Some st -> st
  | None -> raise Not_found

let queue_length t ~stage = Mailbox.length (find_stage t stage).queue
let workers t ~stage = (find_stage t stage).nworkers

let stage_names t =
  Array.to_list t.stages |> List.map (fun st -> st.spec.sname)

let stage_latency t ~stage = (find_stage t stage).latency
let stage_wait t ~stage = (find_stage t stage).wait
let in_flight t = t.next_idx - t.completed
