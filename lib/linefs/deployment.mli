(** LineFS cluster assembly: the paper's 3-node chain (primary,
    replica-1, replica-2) with one NICFS + kernel worker per node, plus
    client attachment on the primary. *)

open Sim

type node_rt = {
  node : Hw.Node.t;
  fs : Storage.Fs_state.t;
  kworker : Kworker.t;
  nicfs : Nicfs.t;
  dfs_host_cpu : Stats.Busy.t;
      (** Host CPU consumed by DFS work on this node (LibFS calls +
          kernel worker). *)
}

type t

val create :
  ?cfg:Hw.Config.t ->
  ?params:Params.t ->
  ?pipeline_parallelism:bool ->
  ?kworker_mode:Kworker.copy_mode ->
  ?dfs_prio:Hw.Cpu.prio ->
  ?compression:bool ->
  ?coalescing:bool ->
  ?monitor:bool ->
  ?apply_on_publish:bool ->
  ?sharding:Sim.Sharded.t * int ->
  nodes:int ->
  unit ->
  t
(** Build and start the cluster (process context required — except with
    [sharding], see below).
    [dfs_prio] is the scheduling priority of DFS host work (kernel
    worker and LibFS) relative to co-running applications. [monitor]
    starts each NICFS's kernel-worker failure detector (off by default
    so idle simulations quiesce). [apply_on_publish] makes every NICFS
    replay published entries into its [fs] (convergence checking).
    Each NICFS gets its own process group, so {!Nicfs.crash} can
    power-fail individual nodes.

    [sharding:(sh, base)] partitions the deployment per node across the
    {!Sim.Sharded} runner [sh]: node [i] (host plus SmartNIC plane) is
    built on — and thereafter owned by — shard [base + i], cross-node
    edges are declared with the fabric latency as lookahead, and every
    NICFS gets the shard transport routing chunk shipment, replication
    acks and the lease-record relay through declared edges.  Call from
    {e outside} any engine (the constructor boots each shard's t = 0
    build itself, before [Sharded.run] starts), spawn the workload body
    and clients on shard [base] (the primary's), and keep fault
    injection off — the fault paths (retransmission, scrub, fallback,
    {!rebuild_chain}) assume a single engine. *)

val params : t -> Params.t
val node_count : t -> int
val node : t -> int -> node_rt
val primary : t -> node_rt
val replicas : t -> node_rt list

val rebuild_chain : t -> up:(int -> bool) -> unit
(** Reconfigure the replication chain over the nodes [up] reports
    usable (NIC or host fallback), in id order: rewire successors,
    shrink each survivor's ack-completion set to its live downstream,
    and re-evaluate the primary's outstanding ack sets so chunks
    waiting only on dead replicas complete.  Idempotent — safe to call
    on every cluster-manager service transition. *)

val add_client : t -> id:int -> Libfs.t
(** Attach a client process on the primary (its LibFS charges host CPU
    at [dfs_prio] and is accounted to the primary's [dfs_host_cpu]). *)

val clients : t -> Libfs.t list

val flush_all : t -> unit
(** Drain every client's pipelines (teardown barrier). *)

val stop : t -> unit
(** Stop monitors so the simulation can quiesce. *)

val replication_wire_bytes : t -> int
(** Bytes the primary shipped to its successor (post-compression). *)

val total_host_dfs_cpu : t -> Time.t
(** Sum of DFS host-CPU busy time across nodes. *)
