(** Host kernel worker (§4 "Asynchronous DMA").

    A small host-kernel component that publishes client logs to public
    PM on behalf of NICFS, using the I/OAT DMA engine so host cores
    stay free.  NICFS batches copy requests into a copy list and sends
    one RPC per batch; the worker issues the DMAs in list order.

    The copy method is switchable — the Figure 7 ablation compares all
    of them:
    - [No_copy]: skip publication entirely (analysis only);
    - [Cpu_memcpy]: host cores do the copy;
    - [Dma_polling]: one DMA per copy-list entry, host busy-polls
      completion (SPDK style);
    - [Dma_polling_batch]: batched DMA, host busy-polls;
    - [Dma_interrupt_batch]: batched DMA, host blocks until the
      completion interrupt (the paper's default). *)

open Sim

type copy_mode =
  | No_copy
  | Cpu_memcpy
  | Dma_polling
  | Dma_polling_batch
  | Dma_interrupt_batch

val copy_mode_name : copy_mode -> string

type request = {
  total_bytes : int;  (** Bytes to move log -> public PM. *)
  list_entries : int;  (** Copy-list length (DMA requests if unbatched). *)
}

type t

val create :
  ?mode:copy_mode ->
  ?prio:Hw.Cpu.prio ->
  ?account:Stats.Busy.t ->
  params:Params.t ->
  node:Hw.Node.t ->
  unit ->
  t
(** Start the worker (an Event-kind RPC server on the host; process
    context required).  [account] receives the host CPU time the worker
    burns (the interference Figure 7 measures).  Default mode:
    [Dma_interrupt_batch]. *)

val submit : t -> from:Net.Loc.t -> request -> [ `Ok | `Dead ]
(** Synchronous publish request from NICFS; [`Dead] when the host has
    crashed (the caller falls back to isolated operation). *)

val host_run : t -> int -> unit
(** Charge [work] cycles of host CPU at the worker's priority, billed
    to its [account] hook — the compute primitive NICFS borrows when
    the SmartNIC is down and the host runs the pipeline in degraded
    mode (§3.6 fail-over). *)

val host_loc : t -> Net.Loc.t
(** The worker's host endpoint (where fallback RPC planes live). *)

val prio : t -> Hw.Cpu.prio

val set_mode : t -> copy_mode -> unit
val mode : t -> copy_mode

val alive : t -> bool
val crash : t -> unit
(** Host OS failure: the worker stops servicing requests. *)

val recover : t -> unit
(** Host restart: the worker is stateless and resumes immediately
    (§3.5). *)

val bytes_copied : t -> int
