(** Parallel datapath execution pipeline (§3.1, §3.3).

    A pipeline is a linear sequence of stages.  Each stage has a wait
    queue and one or more worker threads; items (chunks) flow through
    all stages.  Stages overlap in time — while chunk 1 is being
    published, chunk 2 is validated and chunk 3 fetched — but handoff
    between stages is {e in submission order}, preserving client log
    order for linearizability and prefix crash consistency.

    When a stage's wait queue grows past the scale threshold (5 in the
    paper), an extra worker is assigned to it, up to its per-stage
    maximum; the in-order handoff makes extra workers safe.

    Workers block on empty queues (no busy events), so idle pipelines
    let the simulation quiesce. *)

type 'a t

type 'a stage_spec = {
  sname : string;
  work : 'a -> unit;
      (** Processes one item; may block on resources. Stage-local. *)
  initial_workers : int;
  max_workers : int;
}

val stage :
  ?initial_workers:int -> ?max_workers:int -> string -> ('a -> unit) ->
  'a stage_spec
(** Convenience constructor (defaults: 1 initial, 1 max). *)

val create :
  ?scale_threshold:int ->
  ?group:Sim.Engine.group ->
  name:string ->
  stages:'a stage_spec list ->
  sink:('a -> unit) ->
  unit ->
  'a t
(** Build and start the pipeline (spawns workers; process context
    required).  [sink] receives items that completed the final stage,
    in submission order — use it to chain pipelines (the publish and
    replication pipelines share their first two stages this way).
    [group] pins every worker — including later dynamically scaled
    ones — to one fault-injection domain; without it workers inherit
    the group of whichever process spawned them, which for scaled-up
    workers is the submitting context. *)

val submit : 'a t -> 'a -> unit
(** Enqueue into the first stage; never blocks. *)

val queue_length : 'a t -> stage:string -> int
(** Items waiting (not yet picked up) at a stage; raises [Not_found]
    for unknown stages. *)

val workers : 'a t -> stage:string -> int
val stage_names : 'a t -> string list

val stage_latency : 'a t -> stage:string -> Sim.Stats.Series.t
(** Per-item processing time (wall, excluding queue wait). *)

val stage_wait : 'a t -> stage:string -> Sim.Stats.Series.t
(** Per-item queue wait before processing. *)

val in_flight : 'a t -> int
(** Items submitted but not yet delivered to the sink. *)
