(** LineFS tunables (defaults follow the paper, §3-§5). *)

open Sim

type t = {
  chunk_bytes : int;  (** Pipeline chunk size (4 MB). *)
  log_bytes : int;  (** Per-client private log (512 MB). *)
  hi_watermark : float;  (** NIC memory flow-control stop mark (0.7). *)
  lo_watermark : float;  (** Resume mark (0.3). *)
  scale_queue_threshold : int;
      (** Stage wait-queue length that triggers assigning another
          SmartNIC thread to the stage (5). *)
  max_stage_workers : int;  (** Cap on threads per stage. *)
  fs_op_cost : Time.t;
      (** Host CPU cost of a LibFS call: syscall interception, log
          header, index update (per operation, excluding data copy). *)
  read_index_cost : Time.t;
      (** Host CPU cost per extent-tree level on the read path. *)
  validate_entry_cost : Time.t;
      (** SmartNIC CPU work per log entry in the validation stage
          (header parse, lease check, namespace sanity). *)
  validate_byte_bps : float;
      (** SmartNIC checksum scan throughput (bytes/s of reference CPU
          work; actual wall time scales with NIC core speed). *)
  publish_entry_cost : Time.t;
      (** SmartNIC CPU work per entry to build indexes/copy lists. *)
  compress_bps : float;
      (** Single-core LZW throughput measured on the SmartNIC
          (~200 MB/s, §5.4) expressed as reference work. *)
  compress_workers : int;  (** Threads for the compression stage (16). *)
  lease_duration : Time.t;
  kworker_batch : int;  (** Copy-list entries per kernel-worker RPC. *)
  kworker_interrupt_cost : Time.t;
      (** Host CPU time to service a DMA completion interrupt. *)
  hb_interval : Time.t;  (** Kernel-worker liveness probe period. *)
  repl_retry_timeout : Time.t;
      (** Primary re-sends a replication chunk whose ack set has not
          completed after this long (only active under fault
          injection; a perfect network never retransmits). *)
  replicas : int;  (** Chain length including primary (3). *)
}

val default : t

val chunk_of : t -> int -> int
(** [chunk_of t bytes] is how many whole chunks fit in [bytes]. *)
