(** Rack-scale LineFS: N nodes as independent replication groups with a
    sharded namespace.

    A rack of [nodes] machines is organized as [nodes / group_size]
    replica groups, each a full {!Deployment} chain (primary plus
    replicas) exactly like the paper's 3-node cell.  Files are placed
    across groups by their parent directory ({!place}), the way a
    cluster manager assigns directories to replica groups: one
    directory's files share a group, so leases and pipeline state stay
    where the files live.

    Groups are operationally independent — no replication, lease or
    recovery traffic crosses a group boundary.  Under [sharding], group
    [g] occupies the shard range
    [base + g*group_size .. base + (g+1)*group_size - 1] and {e no
    cross-group edges are declared}: decoupled groups advance
    concurrently within each synchronization window, so the events
    available per window grow with the rack instead of the window count
    — this is what makes domain parallelism pay at rack scale.

    Drive sharded racks group-locally: spawn each group's workload (and
    {!attach} its clients) on that group's base shard
    ({!shard_of_group}), working under directories owned by that group
    ({!owned_dir}).  The {!router} — one fd space over per-group
    clients — needs every group's client callable from one process, so
    it is for single-engine racks (and cross-check tests). *)

type t

val create :
  ?cfg:Hw.Config.t ->
  ?params:Params.t ->
  ?pipeline_parallelism:bool ->
  ?kworker_mode:Kworker.copy_mode ->
  ?dfs_prio:Hw.Cpu.prio ->
  ?compression:bool ->
  ?coalescing:bool ->
  ?monitor:bool ->
  ?apply_on_publish:bool ->
  ?sharding:Sim.Sharded.t * int ->
  nodes:int ->
  group_size:int ->
  unit ->
  t
(** [nodes] must be a positive multiple of [group_size].  Options are
    forwarded to every group's {!Deployment.create}; [sharding:(sh,
    base)] gives group [g] the base shard [base + g*group_size] (the
    runner must have [nodes] shards from [base]).  Like
    {!Deployment.create}, call from process context when unsharded and
    from outside any engine when sharded. *)

val group_count : t -> int
val group_size : t -> int
val node_count : t -> int
val group : t -> int -> Deployment.t

val shard_of_group : t -> int -> int
(** Shard index of the group's primary (its workload home).  Raises
    [Invalid_argument] when the rack is unsharded. *)

val place : t -> string -> int
(** Owning group of a path: a stable hash (FNV-1a) of its parent
    directory, so placement is identical across runs, domain counts and
    sharding modes. *)

val owned_dir : t -> group:int -> salt:int -> string
(** A directory path that {!place}s on [group] (deterministic probe).
    Distinct [salt]s give distinct directories. *)

val attach : t -> group:int -> id:int -> Libfs.t
(** Attach a client on the group's primary ({!Deployment.add_client}).
    Under [sharding], call from that group's shard. *)

val router : t -> clients:Libfs.t array -> Dfs_intf.ops
(** One fd space over per-group clients (element [g] attached to group
    [g]), routing each call to the owning group.  [mkdir] broadcasts to
    every group so ancestors resolve wherever files land; cross-group
    [rename] fails with [Einval] (a data migration the namespace does
    not model, like a cross-mount rename).  Single-engine racks only. *)

val replication_wire_bytes : t -> int
(** Post-compression replication bytes, summed over group primaries. *)

val total_host_dfs_cpu : t -> Sim.Time.t
(** DFS host-CPU busy time, summed over all nodes of all groups. *)
