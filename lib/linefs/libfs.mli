(** LibFS: the per-process client library (§3.2).

    Intercepts file-system calls, persists data and metadata to the
    client-private PM log with fast host cores, serves reads from the
    in-memory update index or from public PM, and coordinates with the
    local NICFS: asynchronous pipeline kicks when a chunk's worth of
    updates has accumulated, a synchronous low-latency RPC on fsync,
    lease acquisition, and open permission checks. *)

open Sim

type t

val create :
  ?prio:Hw.Cpu.prio ->
  ?account:Stats.Busy.t ->
  params:Params.t ->
  node:Hw.Node.t ->
  nicfs:Nicfs.t ->
  fs:Storage.Fs_state.t ->
  id:int ->
  unit ->
  t
(** Attach a client to its node. [account] receives the host CPU time
    LibFS spends (DFS cycles in client context — what Table 1 counts).
    Registers the client and its log with the NICFS. *)

val id : t -> int
val ops : t -> Dfs_intf.ops
(** The POSIX-ish interface used by all workloads. *)

val log : t -> Storage.Oplog.Log.t

val set_entry_observer : (client:int -> Storage.Oplog.entry -> unit) -> unit
(** Install a hook called for every entry any LibFS persists, at append
    time — before asynchronous publication can reclaim it.  Test
    harnesses use this to record the full operation history for
    prefix-consistency replay.  Engine-local when installed from inside
    a simulation process (sharded scenarios record independently);
    process-global fallback otherwise.  One at a time per scope. *)

val clear_entry_observer : unit -> unit

val last_seq : t -> int
(** Sequence number of the newest logged operation. *)

val pending_bytes : t -> int
(** Unreclaimed bytes in the private log. *)

val note_service_change : t -> unit
(** Tell the client its NICFS moved planes (crash-to-host-fallback or
    fail-back).  RPC endpoints retarget transparently, but pipeline
    kicks queued at the dead plane are lost — this fires a fresh kick
    so the NICFS re-chunks from its durable cursor. *)

(** {1 Counters} *)

val ops_issued : t -> int
val bytes_written : t -> int
val bytes_read : t -> int
val fsync_count : t -> int
val lease_hits : t -> int
val lease_misses : t -> int
