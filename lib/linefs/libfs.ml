open Sim
open Storage

type file = { fpath : string; inum : int; mutable append_pos : int }

type t = {
  cid : int;
  params : Params.t;
  node : Hw.Node.t;
  nicfs : Nicfs.t;
  fs : Fs_state.t;
  lg : Oplog.Log.t;
  mutable next_seq : int;
  pending : (int, int Extent_map.t) Hashtbl.t; (* inum -> unpublished *)
  fds : (int, file) Hashtbl.t;
  mutable next_fd : int;
  mutable unchunked : int; (* bytes logged since the last pipeline kick *)
  log_space : Cond.t;
  wlock : Semaphore.t; (* serializes log appends across client threads *)
  leases : (int, Time.t) Hashtbl.t; (* cached write leases *)
  revgen : (int, int) Hashtbl.t;
      (* inum -> revocations observed; detects revoke-during-grant *)
  prio : Hw.Cpu.prio;
  account : Stats.Busy.t option;
  tasks : (string, Hw.Cpu.task) Hashtbl.t;
      (* one sticky CPU context per calling thread (process name) *)
  mutable n_ops : int;
  mutable n_written : int;
  mutable n_read : int;
  mutable n_fsync : int;
  mutable n_lease_hit : int;
  mutable n_lease_miss : int;
}

let host_loc t = Net.Loc.Host t.node

(* The calling thread's sticky CPU context: LibFS work runs on the
   core the application thread already occupies. *)
let ctask t =
  let name = Engine.process_name () in
  match Hashtbl.find_opt t.tasks name with
  | Some tk -> tk
  | None ->
      let tk = Hw.Cpu.task ~prio:t.prio ?account:t.account t.node.Hw.Node.host in
      Hashtbl.add t.tasks name tk;
      tk

let cpu t work = Hw.Cpu.task_run (ctask t) work

(* Give the core up before a blocking wait (RPC, log space). *)
let cpu_release t = Hw.Cpu.task_release (ctask t)

let create ?(prio = Hw.Cpu.prio_normal) ?account ~params ~node ~nicfs ~fs ~id
    () =
  let t =
    {
      cid = id;
      params;
      node;
      nicfs;
      fs;
      lg = Oplog.Log.create ~capacity:params.Params.log_bytes ();
      next_seq = 1;
      pending = Hashtbl.create 16;
      fds = Hashtbl.create 16;
      next_fd = 3;
      unchunked = 0;
      log_space = Cond.create ();
      wlock = Semaphore.create 1;
      leases = Hashtbl.create 16;
      revgen = Hashtbl.create 16;
      prio;
      account;
      tasks = Hashtbl.create 8;
      n_ops = 0;
      n_written = 0;
      n_read = 0;
      n_fsync = 0;
      n_lease_hit = 0;
      n_lease_miss = 0;
    }
  in
  Nicfs.register_client nicfs ~id ~log:t.lg
    ~on_published:(fun ~upto_seq ->
      ignore (Oplog.Log.reclaim_upto t.lg ~seq:upto_seq : int);
      Hashtbl.iter
        (fun _ m -> Extent_map.remove_if m (fun seq -> seq <= upto_seq))
        t.pending;
      Cond.broadcast t.log_space)
    ~on_revoke:(fun ~inum ->
      (* Quiesce: wait out any in-flight logged operation before the
         lease disappears from the cache. *)
      Semaphore.with_permit t.wlock (fun () ->
          Hashtbl.remove t.leases inum;
          (* Mark the revocation so a [`Granted] response still in
             flight for this inode is recognized as stale: the server
             granted it BEFORE this revocation, so caching it would let
             us keep logging under a lease the server already gave
             away (or swept in an epoch bump). *)
          let g =
            match Hashtbl.find_opt t.revgen inum with
            | Some g -> g
            | None -> 0
          in
          Hashtbl.replace t.revgen inum (g + 1)));
  t

let id t = t.cid
let log t = t.lg
let last_seq t = t.next_seq - 1
let pending_bytes t = Oplog.Log.used_bytes t.lg

(* ------------------------------------------------------------------ *)
(* Leases                                                              *)
(* ------------------------------------------------------------------ *)

let lease_margin = Time.ms 100

let ensure_lease t inum =
  let now = Engine.now () in
  match Hashtbl.find_opt t.leases inum with
  | Some expiry when expiry - lease_margin > now -> t.n_lease_hit <- t.n_lease_hit + 1
  | _ ->
      t.n_lease_miss <- t.n_lease_miss + 1;
      cpu_release t;
      let gen () =
        match Hashtbl.find_opt t.revgen inum with Some g -> g | None -> 0
      in
      let rec acquire () =
        let g0 = gen () in
        match
          Nicfs.lease_acquire t.nicfs ~from:(host_loc t) ~client:t.cid ~inum
            Lease.Write
        with
        | `Granted when gen () = g0 ->
            Hashtbl.replace t.leases inum
              (Engine.now () + t.params.Params.lease_duration)
        | `Granted ->
            (* A revocation (conflict steal or epoch sweep) interleaved
               with the grant in flight: the lease is already gone
               server-side.  Caching it would be a single-writer
               violation; go around again. *)
            acquire ()
        | `Conflict ->
            Engine.sleep (Time.us 100);
            acquire ()
      in
      acquire ()

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let kick_pipeline t =
  Nicfs.start_pipeline t.nicfs ~from:(host_loc t) ~client:t.cid;
  t.unchunked <- 0

(* The NICFS service level changed (crash-to-fallback, fail-back).
   The endpoint itself retargets transparently — [start_pipeline]
   always resolves the current plane — but kicks posted to a plane
   that died with the old epoch are gone, so fire a fresh one: the
   NICFS re-scans the log from its host-PM cursor and chunks whatever
   the lost kicks covered. *)
let note_service_change t = kick_pipeline t

(* Observer hook: test harnesses capture every persisted entry here,
   at append time, before asynchronous publication can reclaim it from
   the log (the DST prefix-consistency check replays this record).
   Engine-local when installed from inside a simulation process, with a
   process-global fallback — same discipline as [Net.Inject]. *)
let entry_observer : (client:int -> Oplog.entry -> unit) option ref =
  ref None

let local_entry_observer : (client:int -> Oplog.entry -> unit) Engine.Local.key
    =
  Engine.Local.key ()

let set_entry_observer f =
  match Engine.current () with
  | Some eng -> Engine.Local.set eng local_entry_observer f
  | None -> entry_observer := Some f

let clear_entry_observer () =
  (match Engine.current () with
  | Some eng -> Engine.Local.remove eng local_entry_observer
  | None -> ());
  entry_observer := None

let entry_observer_hook () =
  match Engine.current () with
  | Some eng -> (
      match Engine.Local.get eng local_entry_observer with
      | Some _ as f -> f
      | None -> !entry_observer)
  | None -> !entry_observer

(* Validate locally, persist to the private log (blocking on log space
   — the head-of-line case §3.3.1 motivates), update caches. The log
   lock keeps appends in sequence order across the process's threads. *)
let append_op_locked t (op : Oplog.op) =
  (match Fs_state.validate t.fs op with
  | Ok () -> ()
  | Error e -> Dfs_intf.fail e (Format.asprintf "%a" Oplog.pp_op op));
  let entry = Oplog.make ~seq:t.next_seq ~client:t.cid op in
  t.next_seq <- t.next_seq + 1;
  let size = Oplog.size entry in
  (* Host CPU: syscall interception + log-header work + data copy. *)
  cpu t (t.params.Params.fs_op_cost + Hw.Node.copy_work t.node size);
  (* PM device time for the persisted entry. *)
  Hw.Pm.write t.node.Hw.Node.pm size;
  let rec persist () =
    match Oplog.Log.append t.lg entry with
    | Ok () -> ()
    | Error `Full ->
        (* Make sure the publisher is working on our backlog, then
           wait for reclamation. *)
        kick_pipeline t;
        cpu_release t;
        Cond.await t.log_space;
        persist ()
  in
  persist ();
  (match entry_observer_hook () with
  | Some f -> f ~client:t.cid entry
  | None -> ());
  (match Fs_state.apply t.fs op with
  | Ok () -> ()
  | Error e -> Dfs_intf.fail e "apply after successful validate");
  (match op with
  | Oplog.Write { inum; offset; data } ->
      let m =
        match Hashtbl.find_opt t.pending inum with
        | Some m -> m
        | None ->
            let m = Extent_map.create () in
            Hashtbl.add t.pending inum m;
            m
      in
      Extent_map.insert m ~at:offset data entry.Oplog.seq
  | Oplog.Unlink { inum; _ } -> Hashtbl.remove t.pending inum
  | Oplog.Create _ | Oplog.Rename _ | Oplog.Truncate _ -> ());
  t.unchunked <- t.unchunked + size;
  if t.unchunked >= t.params.Params.chunk_bytes then kick_pipeline t

let append_op t (op : Oplog.op) =
  (* Do not pin a core while queueing behind another thread's append. *)
  if Semaphore.available t.wlock = 0 then cpu_release t;
  Semaphore.with_permit t.wlock (fun () -> append_op_locked t op)

(* ------------------------------------------------------------------ *)
(* The POSIX-ish operations                                            *)
(* ------------------------------------------------------------------ *)

let resolve_exn t path =
  match Fs_state.resolve t.fs path with
  | Ok i -> i
  | Error e -> Dfs_intf.fail e path

let alloc_fd t file =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd file;
  fd

let the_file t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some f -> f
  | None -> Dfs_intf.fail Fs_state.Einval (Printf.sprintf "fd %d" fd)

let do_create t path =
  t.n_ops <- t.n_ops + 1;
  cpu t t.params.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn t parent_path in
  ensure_lease t parent;
  let inum = Fs_state.alloc_inum t.fs in
  append_op t (Oplog.Create { parent; name; inum; dir = false });
  ensure_lease t inum;
  alloc_fd t { fpath = path; inum; append_pos = 0 }

let do_open t path =
  t.n_ops <- t.n_ops + 1;
  cpu t t.params.Params.fs_op_cost;
  let inum = resolve_exn t path in
  (* Open permission check runs on the NICFS (and asks the kernel
     worker to mmap public pages) — the Varmail-visible cost (§5.3). *)
  cpu_release t;
  (match
     Nicfs.open_check t.nicfs ~from:(host_loc t) ~client:t.cid ~inum
       ~write:true
   with
  | Ok () -> ()
  | Error e -> Dfs_intf.fail e path);
  ensure_lease t inum;
  alloc_fd t
    { fpath = path; inum; append_pos = Fs_state.file_size t.fs inum }

let do_close t fd =
  t.n_ops <- t.n_ops + 1;
  Hashtbl.remove t.fds fd;
  (* Natural park point: do not pin a core while the file is closed. *)
  cpu_release t

let do_write t fd ~pos data =
  t.n_ops <- t.n_ops + 1;
  let f = the_file t fd in
  ensure_lease t f.inum;
  append_op t (Oplog.Write { inum = f.inum; offset = pos; data });
  let endpos = pos + Data.length data in
  if endpos > f.append_pos then f.append_pos <- endpos;
  t.n_written <- t.n_written + Data.length data

let do_append t fd data =
  let f = the_file t fd in
  do_write t fd ~pos:f.append_pos data

let do_read t fd ~pos ~len =
  t.n_ops <- t.n_ops + 1;
  let f = the_file t fd in
  cpu t t.params.Params.fs_op_cost;
  let in_log =
    match Hashtbl.find_opt t.pending f.inum with
    | None -> false
    | Some m -> (
        match Extent_map.read_range m ~pos ~len with
        | [] -> false
        | pieces ->
            List.exists (function `Data _ -> true | `Hole _ -> false) pieces)
  in
  if not in_log then begin
    (* Public PM path: walk the per-file extent tree. *)
    let depth = max 1 (Fs_state.extent_depth t.fs f.inum) in
    cpu t (depth * t.params.Params.read_index_cost)
  end;
  let actual = max 0 (min len (Fs_state.file_size t.fs f.inum - pos)) in
  (* Device time + the copy into the application buffer. *)
  Hw.Pm.read t.node.Hw.Node.pm actual;
  cpu t (Hw.Node.copy_work t.node actual);
  match Fs_state.read t.fs ~inum:f.inum ~pos ~len with
  | Ok d ->
      t.n_read <- t.n_read + Data.length d;
      d
  | Error e -> Dfs_intf.fail e f.fpath

let do_fsync t fd =
  t.n_ops <- t.n_ops + 1;
  t.n_fsync <- t.n_fsync + 1;
  let _f = the_file t fd in
  cpu t t.params.Params.fs_op_cost;
  let upto = t.next_seq - 1 in
  cpu_release t;
  if upto > 0 then
    Nicfs.fsync t.nicfs ~from:(host_loc t) ~client:t.cid ~upto_seq:upto

let do_mkdir t path =
  t.n_ops <- t.n_ops + 1;
  cpu t t.params.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn t parent_path in
  ensure_lease t parent;
  let inum = Fs_state.alloc_inum t.fs in
  append_op t (Oplog.Create { parent; name; inum; dir = true })

let do_unlink t path =
  t.n_ops <- t.n_ops + 1;
  cpu t t.params.Params.fs_op_cost;
  let parent_path, name = Dfs_intf.split_path path in
  let parent = resolve_exn t parent_path in
  ensure_lease t parent;
  let inum = resolve_exn t path in
  append_op t (Oplog.Unlink { parent; name; inum })

let do_rename t src dst =
  t.n_ops <- t.n_ops + 1;
  cpu t t.params.Params.fs_op_cost;
  let src_parent_path, src_name = Dfs_intf.split_path src in
  let dst_parent_path, dst_name = Dfs_intf.split_path dst in
  let src_parent = resolve_exn t src_parent_path in
  let dst_parent = resolve_exn t dst_parent_path in
  ensure_lease t src_parent;
  if dst_parent <> src_parent then ensure_lease t dst_parent;
  let inum = resolve_exn t src in
  append_op t
    (Oplog.Rename { src_parent; src_name; dst_parent; dst_name; inum })

let do_file_size t path =
  match Fs_state.resolve t.fs path with
  | Ok inum -> Some (Fs_state.file_size t.fs inum)
  | Error _ -> None

let ops t =
  {
    Dfs_intf.sysname = "LineFS";
    create = (fun path -> do_create t path);
    open_file = (fun path -> do_open t path);
    close = (fun fd -> do_close t fd);
    write = (fun fd ~pos data -> do_write t fd ~pos data);
    append = (fun fd data -> do_append t fd data);
    read = (fun fd ~pos ~len -> do_read t fd ~pos ~len);
    fsync = (fun fd -> do_fsync t fd);
    mkdir = (fun path -> do_mkdir t path);
    unlink = (fun path -> do_unlink t path);
    rename = (fun src dst -> do_rename t src dst);
    file_size = (fun path -> do_file_size t path);
  }

let ops_issued t = t.n_ops
let bytes_written t = t.n_written
let bytes_read t = t.n_read
let fsync_count t = t.n_fsync
let lease_hits t = t.n_lease_hit
let lease_misses t = t.n_lease_miss
