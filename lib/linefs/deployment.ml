open Sim

type node_rt = {
  node : Hw.Node.t;
  fs : Storage.Fs_state.t;
  kworker : Kworker.t;
  nicfs : Nicfs.t;
  dfs_host_cpu : Stats.Busy.t;
}

type t = {
  prm : Params.t;
  topo : Hw.Topology.t;
  rts : node_rt array;
  dfs_prio : Hw.Cpu.prio;
  mutable cls : Libfs.t list;
  monitoring : bool;
  sharding : (Sim.Sharded.t * int) option;
}

let create ?(cfg = Hw.Config.testbed_25gbe) ?(params = Params.default)
    ?(pipeline_parallelism = true) ?(kworker_mode = Kworker.Dma_interrupt_batch)
    ?(dfs_prio = Hw.Cpu.prio_normal) ?(compression = false)
    ?(coalescing = false) ?(monitor = false) ?(apply_on_publish = false)
    ?sharding ~nodes () =
  let params = { params with Params.replicas = nodes } in
  let topo = Hw.Topology.create ~cfg ~nodes () in
  let build_rt node =
    let fs = Storage.Fs_state.create () in
    let dfs_host_cpu = Stats.Busy.create () in
    let kworker =
      Kworker.create ~mode:kworker_mode ~prio:dfs_prio
        ~account:dfs_host_cpu ~params ~node ()
    in
    (* Each NICFS runs in its own process group so fault injection
       can power-fail one node's SmartNIC without touching the
       others (the host-side kworker survives, as on real hardware
       where the host OS outlives a NIC reset). *)
    let group =
      Sim.Engine.make_group (Printf.sprintf "nicfs%d" node.Hw.Node.id)
    in
    let nicfs =
      Nicfs.create ~pipeline_parallelism ~coalescing ~compression
        ~apply_on_publish ~group ~params ~node ~fs ~kworker ()
    in
    { node; fs; kworker; nicfs; dfs_host_cpu }
  in
  let rts =
    match sharding with
    | None -> Array.map build_rt topo.Hw.Topology.nodes
    | Some (sh, base) ->
        (* Per-node partitioning: node [i] (host + SmartNIC plane) is
           built — and lives — on shard [base + i].  Construction needs
           process context on the owning engine (RPC planes and kernel
           workers spawn processes), so each node's constructor is a
           root process at t = 0, booted sequentially here before the
           parallel run starts. *)
        let slots = Array.make nodes None in
        Array.iteri
          (fun i node ->
            Sim.Sharded.spawn_root ~name:"deploy.boot" sh ~shard:(base + i)
              (fun () -> slots.(i) <- Some (build_rt node)))
          topo.Hw.Topology.nodes;
        for i = 0 to nodes - 1 do
          ignore
            (Sim.Engine.run_until (Sim.Sharded.engine sh (base + i)) ~bound:1
              : Sim.Time.t option)
        done;
        Array.map
          (function
            | Some rt -> rt
            | None -> failwith "deployment: shard boot did not run")
          slots
  in
  (* Wire the replication chain 0 -> 1 -> ... -> n-1, and tell each
     node exactly whose acks complete its chunks (everyone downstream)
     so chain reconfiguration can later shrink that set per node. *)
  Array.iteri
    (fun i rt ->
      let next = if i + 1 < Array.length rts then Some rts.(i + 1).nicfs else None in
      Nicfs.set_next_hop rt.nicfs next;
      let targets = ref [] in
      for j = Array.length rts - 1 downto i + 1 do
        targets := rts.(j).node.Hw.Node.id :: !targets
      done;
      Nicfs.set_repl_targets rt.nicfs ~targets:!targets)
    rts;
  (match sharding with
  | None -> ()
  | Some (sh, base) ->
      (* Declare every cross-node edge with the fabric latency as its
         lookahead: no component of a cross-node exchange (chunk ship,
         ack, lease record, flush round trip) can land sooner than one
         switch traversal, so windows stay as wide as the physics
         allows.  The destination PCIe hop is part of each message's
         flight delay, not the lookahead floor — NIC-terminated traffic
         must still be deliverable at switch latency alone. *)
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if i <> j then
            Sim.Sharded.connect ~lookahead:cfg.Hw.Config.net_latency sh
              ~src:(base + i) ~dst:(base + j)
        done
      done;
      let xp =
        {
          Nicfs.xp_shard_of = (fun node_id -> base + node_id);
          xp_send =
            (fun ~src_node ~dst_node ~delay ~name fn ->
              Sim.Sharded.send sh ~src:(base + src_node)
                ~dst:(base + dst_node) ~delay ~name fn);
        }
      in
      Array.iter (fun rt -> Nicfs.set_xport rt.nicfs xp) rts);
  if monitor then
    match sharding with
    | None -> Array.iter (fun rt -> Nicfs.start_monitor rt.nicfs) rts
    | Some (sh, base) ->
        (* The monitor is node-local but must be spawned from its own
           shard's process context. *)
        Array.iteri
          (fun i rt ->
            Sim.Sharded.spawn_root ~name:"deploy.monitor" sh
              ~shard:(base + i)
              (fun () -> Nicfs.start_monitor rt.nicfs))
          rts
  else ();
  { prm = params; topo; rts; dfs_prio; cls = []; monitoring = monitor; sharding }

let params t = t.prm
let node_count t = Array.length t.rts
let node t i = t.rts.(i)
let primary t = t.rts.(0)
let replicas t = List.tl (Array.to_list t.rts)

(* Reconfigure the replication chain over the nodes [up] says are
   usable (served by NIC or host fallback — only dead nodes drop out),
   keeping id order.  Each survivor's ack-completion set shrinks to its
   live downstream, and the primary re-evaluates outstanding ack sets:
   chunks waiting only on dead replicas complete immediately, while
   chunks some survivor never persisted keep being retransmitted — now
   to the new successor — until the shrunk set acks.  Idempotent, so
   the cluster manager may call it on every service transition. *)
let rebuild_chain t ~up =
  let n = Array.length t.rts in
  let live = ref [] in
  for i = n - 1 downto 0 do
    if up i then live := i :: !live
  done;
  Array.iteri
    (fun i rt ->
      if up i then begin
        let downstream = List.filter (fun j -> j > i) !live in
        let next =
          match downstream with
          | [] -> None
          | j :: _ -> Some t.rts.(j).nicfs
        in
        Nicfs.set_next_hop rt.nicfs next;
        Nicfs.set_repl_targets rt.nicfs ~targets:downstream
      end
      else Nicfs.set_next_hop rt.nicfs None)
    t.rts;
  Nicfs.reeval_acks (primary t).nicfs

let add_client t ~id =
  let p = primary t in
  let c =
    Libfs.create ~prio:t.dfs_prio ~account:p.dfs_host_cpu ~params:t.prm
      ~node:p.node ~nicfs:p.nicfs ~fs:p.fs ~id ()
  in
  t.cls <- c :: t.cls;
  c

let clients t = List.rev t.cls

let flush_all t =
  List.iter
    (fun c -> Nicfs.flush (primary t).nicfs ~client:(Libfs.id c))
    t.cls

let stop t =
  if t.monitoring then
    match t.sharding with
    | None -> Array.iter (fun rt -> Nicfs.stop_monitor rt.nicfs) t.rts
    | Some (sh, base) ->
        (* Called from the workload body on the primary's shard; remote
           monitors are stopped through their shard's edge. *)
        Array.iteri
          (fun i rt ->
            if i = 0 then Nicfs.stop_monitor rt.nicfs
            else
              Sim.Sharded.send sh ~src:base ~dst:(base + i)
                ~name:"deploy.stop-monitor" (fun () ->
                  Nicfs.stop_monitor rt.nicfs))
          t.rts

let replication_wire_bytes t = Nicfs.replicated_wire_bytes (primary t).nicfs

let total_host_dfs_cpu t =
  Array.fold_left
    (fun acc rt -> acc + Stats.Busy.busy_time rt.dfs_host_cpu)
    0 t.rts
