open Sim

type t = {
  chunk_bytes : int;
  log_bytes : int;
  hi_watermark : float;
  lo_watermark : float;
  scale_queue_threshold : int;
  max_stage_workers : int;
  fs_op_cost : Time.t;
  read_index_cost : Time.t;
  validate_entry_cost : Time.t;
  validate_byte_bps : float;
  publish_entry_cost : Time.t;
  compress_bps : float;
  compress_workers : int;
  lease_duration : Time.t;
  kworker_batch : int;
  kworker_interrupt_cost : Time.t;
  hb_interval : Time.t;
  repl_retry_timeout : Time.t;
  replicas : int;
}

let default =
  {
    chunk_bytes = 4 * 1024 * 1024;
    log_bytes = 512 * 1024 * 1024;
    hi_watermark = 0.7;
    lo_watermark = 0.3;
    scale_queue_threshold = 5;
    max_stage_workers = 4;
    fs_op_cost = Time.ns 1000;
    read_index_cost = Time.ns 150;
    validate_entry_cost = Time.ns 40;
    (* Header-walk + checksum scan; calibrated so validating a 4 MB
       chunk of 16 KB entries takes ~65 us of SmartNIC wall time
       (Figure 5). *)
    validate_byte_bps = 2e11;
    publish_entry_cost = Time.ns 200;
    (* 200 MB/s of wall throughput on a 0.3-speed NIC core. *)
    compress_bps = 6.7e8;
    compress_workers = 16;
    lease_duration = Time.sec 10;
    kworker_batch = 32;
    kworker_interrupt_cost = Time.us 5;
    hb_interval = Time.ms 100;
    repl_retry_timeout = Time.ms 5;
    replicas = 3;
  }

let chunk_of t bytes = bytes / t.chunk_bytes
