type user = {
  uid : int;
  mutable u_ops : int;
  mutable u_written : int;
  mutable u_read : int;
  mutable u_fsyncs : int;
}

type stats = {
  ops_issued : int;
  bytes_written : int;
  bytes_read : int;
  fsyncs : int;
}

type t = { ops : Dfs_intf.ops; users : user array }

let create ~ops ~users () =
  if users < 1 then invalid_arg "Cohort.create: users must be >= 1";
  {
    ops;
    users =
      Array.init users (fun uid ->
          { uid; u_ops = 0; u_written = 0; u_read = 0; u_fsyncs = 0 });
  }

let users t = Array.length t.users

(* The returned record delegates every call to the shared driver
   unchanged — same fd space, same log, same pipelines — and only adds
   accounting, so an operation issued through a user view is
   indistinguishable (to the file system) from one issued directly. *)
let user_ops t uid =
  let u = t.users.(uid) in
  let o = t.ops in
  {
    Dfs_intf.sysname = o.Dfs_intf.sysname;
    create =
      (fun path ->
        u.u_ops <- u.u_ops + 1;
        o.Dfs_intf.create path);
    open_file =
      (fun path ->
        u.u_ops <- u.u_ops + 1;
        o.Dfs_intf.open_file path);
    close = o.Dfs_intf.close;
    write =
      (fun fd ~pos data ->
        u.u_ops <- u.u_ops + 1;
        u.u_written <- u.u_written + Storage.Data.length data;
        o.Dfs_intf.write fd ~pos data);
    append =
      (fun fd data ->
        u.u_ops <- u.u_ops + 1;
        u.u_written <- u.u_written + Storage.Data.length data;
        o.Dfs_intf.append fd data);
    read =
      (fun fd ~pos ~len ->
        u.u_ops <- u.u_ops + 1;
        let d = o.Dfs_intf.read fd ~pos ~len in
        u.u_read <- u.u_read + Storage.Data.length d;
        d);
    fsync =
      (fun fd ->
        u.u_ops <- u.u_ops + 1;
        u.u_fsyncs <- u.u_fsyncs + 1;
        o.Dfs_intf.fsync fd);
    mkdir =
      (fun path ->
        u.u_ops <- u.u_ops + 1;
        o.Dfs_intf.mkdir path);
    unlink =
      (fun path ->
        u.u_ops <- u.u_ops + 1;
        o.Dfs_intf.unlink path);
    rename =
      (fun a b ->
        u.u_ops <- u.u_ops + 1;
        o.Dfs_intf.rename a b);
    file_size = o.Dfs_intf.file_size;
  }

let user_stats t uid =
  let u = t.users.(uid) in
  {
    ops_issued = u.u_ops;
    bytes_written = u.u_written;
    bytes_read = u.u_read;
    fsyncs = u.u_fsyncs;
  }

let totals t =
  Array.fold_left
    (fun acc u ->
      {
        ops_issued = acc.ops_issued + u.u_ops;
        bytes_written = acc.bytes_written + u.u_written;
        bytes_read = acc.bytes_read + u.u_read;
        fsyncs = acc.fsyncs + u.u_fsyncs;
      })
    { ops_issued = 0; bytes_written = 0; bytes_read = 0; fsyncs = 0 }
    t.users
