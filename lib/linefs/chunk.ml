(** A LineFS chunk: the unit of pipelined publication and replication
    (§3.1).  LibFS groups consecutive log entries into ~4 MB chunks;
    NICFS processes chunks through the pipeline stages in per-client
    order. *)

open Storage

type t = {
  client : int;
  idx : int;  (** Per-client chunk counter, 0-based; defines order. *)
  first_seq : int;
  last_seq : int;
  entries : Oplog.entry list;
  bytes : int;  (** On-log size of all entries. *)
  payload_bytes : int;  (** File-data bytes carried. *)
  urgent : bool;  (** True for fsync-driven synchronous replication. *)
  mutable wire_bytes : int;  (** Size sent over the network (after the
                                 optional compression stage). *)
  mutable coalesced_away : int;  (** Entries removed by coalescing. *)
  mutable mem_refs : int;
      (** NIC-memory references (publish + transfer); the chunk's NIC
          buffer is freed when this reaches zero. *)
  mutable nic_resident : bool;
      (** Whether the staged copy lives in NIC DRAM.  False when the
          host-fallback pipeline staged it in host memory (degraded
          mode) — releasing references must then skip the NIC memory
          accounting. *)
  replicated : unit Sim.Ivar.t;  (** Filled when all replicas acked. *)
  published : unit Sim.Ivar.t;  (** Filled when publication completed. *)
}

let of_entries ~client ~idx ~urgent entries =
  match entries with
  | [] -> invalid_arg "Chunk.of_entries: empty"
  | first :: _ ->
      let last = List.nth entries (List.length entries - 1) in
      let bytes = List.fold_left (fun n e -> n + Oplog.size e) 0 entries in
      let payload_bytes =
        List.fold_left (fun n e -> n + Oplog.payload_size e.Oplog.op) 0 entries
      in
      {
        client;
        idx;
        first_seq = first.Oplog.seq;
        last_seq = last.Oplog.seq;
        entries;
        bytes;
        payload_bytes;
        urgent;
        wire_bytes = bytes;
        coalesced_away = 0;
        mem_refs = 0;
        nic_resident = true;
        replicated = Sim.Ivar.create ();
        published = Sim.Ivar.create ();
      }

let entry_count t = List.length t.entries

let pp fmt t =
  Format.fprintf fmt "chunk[c%d #%d seq %d-%d, %d entries, %dB%s]" t.client
    t.idx t.first_seq t.last_seq (entry_count t) t.bytes
    (if t.urgent then ", urgent" else "")
