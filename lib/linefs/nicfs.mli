(** NICFS: the LineFS daemon running on the SmartNIC (§3.3).

    Runs the publishing and replication pipelines (sharing their fetch
    and validation stages), the lease manager, replication flow
    control, the host failure detector and isolated-mode operation.

    Two RPC planes serve requests, per the paper's connection split:
    a busy-polled low-latency plane (fsync notification, lease and open
    checks) and an event-driven high-throughput plane (pipeline kicks,
    chunk transfers, replication acks). *)

open Sim

type t

val create :
  ?pipeline_parallelism:bool ->
  ?coalescing:bool ->
  ?compression:bool ->
  ?apply_on_publish:bool ->
  ?group:Engine.group ->
  params:Params.t ->
  node:Hw.Node.t ->
  fs:Storage.Fs_state.t ->
  kworker:Kworker.t ->
  unit ->
  t
(** Start the daemon (process context required).
    [pipeline_parallelism:false] builds the LineFS-NotParallel baseline:
    each chunk runs fetch->validate->publish->transfer sequentially.
    [apply_on_publish] additionally replays entry semantics into [fs]
    at publication (used by tests; benchmark clients apply eagerly).
    [group] is the fault-injection kill switch the daemon's processes
    run under (see {!crash}). *)

val node : t -> Hw.Node.t
val lease_mgr : t -> Lease.t

val set_next_hop : t -> t option -> unit
(** Wire the replication chain successor ([None] for the last node). *)

(** {1 Per-node sharding}

    A deployment partitioned across {!Sim.Sharded} shards (one node —
    host plus SmartNIC plane — per shard) installs a transport that
    routes the cross-node paths: chunk shipment to the chain successor,
    replication acks back to the chunk's primary, and the lease-record
    relay.  Each routed message pays its sender-side wire costs on the
    source shard and runs a landing closure (receive accounting, PM/NIC
    placement, RPC enqueue) on the destination node's shard, delayed by
    the fabric flight time.  Node-local traffic and same-shard peers
    keep the plain direct paths.  Fault-free runs only: the
    retransmission, scrub and fallback machinery never routes. *)

type xport = {
  xp_shard_of : int -> int;  (** node id -> shard index *)
  xp_send :
    src_node:int ->
    dst_node:int ->
    delay:Time.t ->
    name:string ->
    (unit -> unit) ->
    unit;
      (** Schedule the closure on [dst_node]'s shard at least [delay]
          after the source shard's current time (the runner floors it
          at the edge lookahead). *)
}

val set_xport : t -> xport -> unit
(** Install the shard transport (before any cross-node traffic). *)

val set_compression : t -> bool -> unit
val compression_enabled : t -> bool
val set_coalescing : t -> bool -> unit

val start_monitor : t -> unit
(** Spawn the kernel-worker failure detector (§3.5). *)

val stop_monitor : t -> unit
val isolated : t -> bool
val ping : t -> bool
(** Cluster-manager heartbeat probe: false while crashed. *)

(** {1 Fault injection} *)

val alive : t -> bool

val crash : t -> unit
(** Power-fail the NICFS: kill its process group (RPC servers, monitor,
    in-flight handlers), losing NIC DRAM contents.  Host PM state — the
    persisted log and publication-gate progress — survives. *)

val restart : t -> unit
(** Bring a crashed NICFS back: reset NIC memory accounting and respawn
    both RPC planes in a fresh process group.  Queued requests from
    before the crash are dropped; the primary's retransmission recovers
    lost replication traffic. *)

val kill_node : t -> unit
(** Whole-node failure: [crash] plus the host-side fault domain
    (pipeline workers, retransmitters, fallback planes).  No matching
    un-kill — a dead node leaves the cluster until re-added. *)

(** {1 Degraded mode: host fallback (§3.6)}

    With the NIC down but the host alive, the NICFS planes run on host
    cores: RPC service moves to host-side servers, stage compute is
    billed to the host CPU through the kernel worker's accounting
    hook, chunks are staged in host memory (no NIC DRAM, no PCIe
    fetch hop), and the compression stage is skipped — it exists to
    save network bandwidth at the price of NIC cycles, and burning
    host cores on it would defeat the point of offload.  Peers and
    clients retarget transparently: endpoint accessors resolve the
    fallback planes and control-plane calls re-resolve per retry
    attempt. *)

val enter_fallback : t -> unit
(** Bring the host-fallback planes up (cluster-manager driven, on the
    NIC-dead/host-alive service transition).  No-op unless the NICFS
    is crashed and not already degraded.  Process context required. *)

val exit_fallback : t -> unit
(** Fail back to the restarted NIC: flip traffic to the NIC planes,
    charge the state-migration cost, then drain and retire the host
    planes gracefully.  No-op unless degraded and restarted. *)

val in_fallback : t -> bool

(** {1 Replication-chain reconfiguration} *)

val set_repl_targets : t -> targets:int list -> unit
(** Declare the exact replica set whose acks complete a chunk (node
    ids downstream of this node in the current chain).  Until called,
    the legacy rule applies: any [replicas - 1] distinct ackers. *)

val reeval_acks : t -> unit
(** Re-evaluate outstanding ack sets against the (shrunk) target set;
    chunks short only of dead nodes' acks complete immediately.  Call
    on the primary after a chain reconfiguration. *)

(** {1 Client plane (used by LibFS)} *)

val register_client :
  t ->
  id:int ->
  log:Storage.Oplog.Log.t ->
  on_published:(upto_seq:int -> unit) ->
  on_revoke:(inum:int -> unit) ->
  unit
(** Attach a LibFS instance: its private log (shared host PM), the
    reclamation callback invoked as publication progresses, and the
    lease-revocation callback (drop the client's cached lease). *)

val start_pipeline : t -> from:Net.Loc.t -> client:int -> unit
(** Asynchronous "chunk ready" kick (LibFS posts this when its log has
    accumulated a chunk's worth of updates). *)

val fsync : t -> from:Net.Loc.t -> client:int -> upto_seq:int -> unit
(** Blocks until every entry up to [upto_seq] is replicated on all
    replicas and all outstanding lease grants are persisted. *)

val open_check :
  t ->
  from:Net.Loc.t ->
  client:int ->
  inum:int ->
  write:bool ->
  (unit, Storage.Fs_state.error) result
(** Permission check + kernel-worker mmap request (§3.6). *)

val lease_acquire :
  t ->
  from:Net.Loc.t ->
  client:int ->
  inum:int ->
  Lease.ltype ->
  [ `Granted | `Conflict ]

val flush : t -> client:int -> unit
(** Drain: force-chunk all remaining entries and wait until everything
    is replicated and published (benchmark teardown). *)

(** {1 Introspection} *)

val debug_client_state : t -> client:int -> string
(** One-line snapshot of a client's pipeline cursors (log/fetched/
    replicated/published seqs, outstanding ack sets) for debugging
    wedged DST scenarios. *)

val replicated_wire_bytes : t -> int
(** Bytes this node sent to its chain successor (post-compression). *)

val published_bytes : t -> int
val coalesced_entries : t -> int

val stage_mean_us : t -> client:int -> (string * float) list
(** Mean per-chunk stage latencies, in microseconds, pipeline order. *)

val stage_series : t -> client:int -> (string * Stats.Series.t) list

val ack_latency : t -> Stats.Series.t
(** Replication-ack round trip as seen by the primary. *)

(** {1 Recovery support (SS3.6)} *)

val epoch : t -> int
(** The cluster epoch this NICFS last persisted. *)

val set_epoch : t -> int -> unit
(** Persist a new epoch number (cluster-manager notification). *)

val history : t -> Cluster.History.t
(** Replicated history bitmap: inodes updated per epoch (recorded at
    publication time). *)

val fs : t -> Storage.Fs_state.t
(** The node's public FS state. *)

(** {1 Storage-fault injection and scrub evidence}

    Byzantine-fabric hardening: torn-record discovery with re-fetch
    from the chunk's primary, and the per-replica application journal
    the no-duplicate-apply invariant checks. *)

val mark_torn : t -> unit
(** Arm this replica's next publication-gate dequeue to discover its
    persisted record torn (a partial PM write caught by the record
    CRC): the record is dropped unpublished and a pristine copy is
    re-fetched from the chunk's primary, retried until the gate
    advances.  Only meaningful on replicas under fault injection. *)

val apply_journal : t -> (int * int) list
(** Chronological [(client, seq)] pairs applied on this node via
    [apply_on_publish] — each must appear exactly once per replica. *)

val chaos_no_dedup : bool ref
(** Mutation knob (conformance self-test): bypass the replica
    publication gate so fabric duplicates double-apply.  Combine with
    {!Net.Rpc.disable_dedup} to disable both dedup layers. *)

val chaos_no_scrub : bool ref
(** Mutation knob: suppress the torn-record re-fetch, wedging the
    publication gate — replicas must be flagged divergent. *)
