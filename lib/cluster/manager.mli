(** Cluster manager (the ZooKeeper role, §3 / §3.6).

    Tracks DFS node membership with a per-target failure detector,
    maintains the cluster epoch (incremented on every service
    transition and recovery, pushed to every reachable member), and
    arbitrates root-lease delegation.

    The detector distinguishes three per-node service levels:

    - [Nic]: the SmartNIC's NICFS answers its probe — full service;
    - [HostFallback]: the NICFS is unreachable but the host kernel
      worker answers — the node serves in degraded mode, hosting the
      publication/replication pipeline on host cores until the NIC
      returns (the paper's SmartNIC-failure story);
    - [Down]: neither plane answers — the node is removed from the
      replication chain and its lease-root delegations are swept.

    Each probe gets [probe_attempts] in-round tries with capped
    exponential backoff; a {e degradation} is committed only after
    [suspect_after] consecutive suspect rounds (flap suppression),
    while an {e improvement} (fail-back) takes effect immediately.
    Every committed transition bumps the epoch, so the service map is
    always published together with an epoch change. *)

open Sim

type t

type service = Nic | HostFallback | Down

type member_state = Alive | Dead
(** Legacy two-state view: [Dead] iff the service level is [Down]. *)

val create :
  ?heartbeat_interval:Time.t ->
  ?suspect_after:int ->
  ?probe_attempts:int ->
  ?probe_backoff:Time.t ->
  unit ->
  t
(** Defaults: heartbeat 1 s, 2 suspect rounds, 2 probe attempts,
    backoff base [heartbeat_interval / 16] (capped at the interval). *)

val register :
  t ->
  id:int ->
  ping:(unit -> bool) ->
  on_epoch:(int -> unit) ->
  ?ping_host:(unit -> bool) ->
  ?on_service:(service -> unit) ->
  unit ->
  unit
(** Add a member. [ping] probes the NICFS plane, [ping_host] the host
    plane ([false] or an exception means no response; defaults to
    [ping], restoring the old fail-means-dead semantics);
    [on_service] fires on every committed service transition of this
    member, before the accompanying epoch broadcast; [on_epoch] is
    invoked (for non-[Down] members, in sorted-id order) whenever the
    epoch changes, so each NICFS can persist it. *)

val start : t -> unit
(** Spawn the heartbeat loop (must run inside a simulation process). *)

val stop : t -> unit
(** Stop heartbeating (lets simulations quiesce). *)

val epoch : t -> int
(** Current epoch; starts at 1. *)

val bump_epoch : t -> int
(** Increment and broadcast the epoch (called on failure/recovery
    events); returns the new value. *)

val service : t -> int -> service
(** Current service level; [Down] for unknown ids. *)

val service_map : t -> (int * service) list
(** The full per-node service map, sorted by node id. *)

val member_state : t -> int -> member_state
(** [Dead] for unknown ids. *)

val alive_members : t -> int list
(** Members whose service level is not [Down], sorted. *)

val mark_recovered : t -> id:int -> unit
(** Re-admit a member after it restarts and re-registers: restore full
    [Nic] service and bump the epoch per the recovery protocol. *)

(** {1 Root lease arbitration} *)

val delegate_lease_root : t -> inum:int -> node:int -> bool
(** Delegate lease management of a subtree root to a node's NICFS.
    Returns [false] if currently delegated to a different alive node. *)

val lease_root_holder : t -> inum:int -> int option
val revoke_lease_root : t -> inum:int -> unit
