open Sim

(* Per-member service level (§3.6 failure handling).  The detector
   distinguishes a dead SmartNIC on a live host (the host kernel worker
   can take over NICFS duties — degraded mode) from a dead node (remove
   it from the replication chain until it recovers). *)
type service = Nic | HostFallback | Down

type member_state = Alive | Dead

type member = {
  id : int;
  probe_nic : unit -> bool;
  probe_host : unit -> bool;
  on_epoch : int -> unit;
  on_service : service -> unit;
  mutable service : service;
  mutable suspect : int;
      (* consecutive heartbeat rounds that observed a level worse than
         [service]; a degradation is only committed after
         [suspect_after] of them, so one flapped probe cannot trigger
         failover and epoch churn. *)
}

type t = {
  interval : Time.t;
  suspect_after : int;
  probe_attempts : int;
  probe_backoff : Time.t;
  members : (int, member) Hashtbl.t;
  mutable epoch : int;
  mutable running : bool;
  lease_roots : (int, int) Hashtbl.t; (* subtree root inum -> node id *)
}

let create ?(heartbeat_interval = Time.sec 1) ?(suspect_after = 2)
    ?(probe_attempts = 2) ?probe_backoff () =
  if suspect_after < 1 then invalid_arg "Manager.create: suspect_after < 1";
  if probe_attempts < 1 then invalid_arg "Manager.create: probe_attempts < 1";
  let probe_backoff =
    match probe_backoff with
    | Some b -> b
    | None -> max 1 (heartbeat_interval / 16)
  in
  {
    interval = heartbeat_interval;
    suspect_after;
    probe_attempts;
    probe_backoff;
    members = Hashtbl.create 8;
    epoch = 1;
    running = false;
    lease_roots = Hashtbl.create 8;
  }

let register t ~id ~ping ~on_epoch ?ping_host
    ?(on_service = fun (_ : service) -> ()) () =
  (* Without a separate host probe the member keeps the old two-state
     semantics: its only probe failing means the whole node is Down. *)
  let probe_host = match ping_host with Some p -> p | None -> ping in
  Hashtbl.replace t.members id
    {
      id;
      probe_nic = ping;
      probe_host;
      on_epoch;
      on_service;
      service = Nic;
      suspect = 0;
    }

let epoch t = t.epoch

let sorted_members t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.members []
  |> List.sort (fun a b -> compare a.id b.id)

let broadcast_epoch t =
  (* Sorted-id order: Hashtbl.iter order is insertion-dependent, which
     would make the broadcast (and any event it triggers) depend on
     registration order — a DST-determinism hazard. *)
  List.iter
    (fun m -> if m.service <> Down then m.on_epoch t.epoch)
    (sorted_members t)

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  broadcast_epoch t;
  t.epoch

let severity = function Nic -> 0 | HostFallback -> 1 | Down -> 2

let sweep_lease_roots t ~node =
  (* Expire the failed node's lease delegations so a live NICFS can
     take them over. *)
  Hashtbl.iter
    (fun root holder -> if holder = node then Hashtbl.remove t.lease_roots root)
    (Hashtbl.copy t.lease_roots)

(* Commit a service transition: update the map, sweep lease roots on
   node death, notify the member, and bump the epoch (the service map
   is published with the epoch — subscribers read it from their
   [on_service] callback before the epoch broadcast reaches them). *)
let transition t m next =
  m.service <- next;
  m.suspect <- 0;
  if next = Down then sweep_lease_roots t ~node:m.id;
  m.on_service next;
  ignore (bump_epoch t : int)

(* One probe with bounded in-round retries: a transient hiccup is
   absorbed by the capped-exponential backoff rather than surfacing as
   a failed round.  A probe that succeeds on its first attempt costs no
   simulated time, so healthy heartbeat rounds schedule exactly like
   the pre-detector bare-bool rounds. *)
let probe_with_retries t f =
  let rec go attempt =
    let ok = try f () with _ -> false in
    if ok then true
    else if attempt + 1 >= t.probe_attempts then false
    else begin
      (* Exponential in-round backoff, capped at the heartbeat interval
         so one slow member cannot starve the others' probes.  (The
         cluster library deliberately has no [net] dependency, so this
         mirrors [Net.Backoff] rather than reusing it.) *)
      Engine.sleep (min t.interval (t.probe_backoff * (1 lsl attempt)));
      go (attempt + 1)
    end
  in
  go 0

let classify t m =
  if probe_with_retries t m.probe_nic then Nic
  else if probe_with_retries t m.probe_host then HostFallback
  else Down

let heartbeat_round t =
  (* Sorted-id order (see broadcast_epoch). *)
  List.iter
    (fun m ->
      if m.service <> Down then begin
        let observed = classify t m in
        if observed = m.service then m.suspect <- 0
        else if severity observed > severity m.service then begin
          (* Degradation: demand [suspect_after] consecutive sightings. *)
          m.suspect <- m.suspect + 1;
          if m.suspect >= t.suspect_after then transition t m observed
        end
        else
          (* Improvement (fail-back): take effect immediately. *)
          transition t m observed
      end)
    (sorted_members t)

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.spawn ~name:"cluster-manager" (fun () ->
        while t.running do
          Engine.sleep t.interval;
          if t.running then heartbeat_round t
        done)
  end

let stop t = t.running <- false

let service t id =
  match Hashtbl.find_opt t.members id with
  | Some m -> m.service
  | None -> Down

let service_map t =
  List.map (fun m -> (m.id, m.service)) (sorted_members t)

let member_state t id = if service t id = Down then Dead else Alive

let alive_members t =
  List.filter_map
    (fun m -> if m.service <> Down then Some m.id else None)
    (sorted_members t)

let mark_recovered t ~id =
  match Hashtbl.find_opt t.members id with
  | None -> ()
  | Some m ->
      if m.service <> Nic then transition t m Nic
      else begin
        m.suspect <- 0;
        (* Already at full service (a fast restart the detector never
           demoted): still bump, per the recovery protocol — the
           restarted NICFS lost its in-memory lease state. *)
        ignore (bump_epoch t : int)
      end

let delegate_lease_root t ~inum ~node =
  match Hashtbl.find_opt t.lease_roots inum with
  | Some holder when holder <> node && member_state t holder = Alive -> false
  | _ ->
      Hashtbl.replace t.lease_roots inum node;
      true

let lease_root_holder t ~inum = Hashtbl.find_opt t.lease_roots inum
let revoke_lease_root t ~inum = Hashtbl.remove t.lease_roots inum
