(* Conservative (Chandy–Misra–Bryant-style) parallel runner over
   multiple engines.

   Each shard owns a private {!Engine.t}; shards interact only through
   declared, latency-carrying edges.  Execution proceeds in windows:

   - between windows the coordinator drains every edge's outbox and
     injects the messages into the destination engines in a canonical
     order (delivery time, src, dst, per-edge sequence);
   - each shard [j] may then execute every event strictly below
     [min over incoming edges e = (i -> j) of (promise_i + lookahead e)],
     where a busy shard promises its next event time and an idle
     shard's promise is lifted to the earliest instant anything could
     wake it (shortest-path relaxation — see [refresh_promises]) — any
     message an upstream shard can still send arrives at or beyond that
     bound, so the window's events are final and no rollback is ever
     needed.  A shard none of whose upstreams can ever send again runs
     to completion; idle shards ratchet their clocks to their bound so
     downstream windows keep widening.

   Lookahead is per edge: a deployment partitioned per-node uses the
   fabric latency of each link as that link's lookahead, so a
   low-latency edge only narrows the windows of its own destination.

   Within a window the shards touch disjoint state, so they can run on
   any number of domains in any order with identical results: the
   [domains] argument of {!run} changes wall-clock behaviour only,
   never simulation output.  Worker domains are created once per [run]
   and handed windows through a mutex/condvar barrier; the barrier
   crossings give the coordinator's drain a happens-before edge over
   every shard's sends, so edge outboxes need no locking (single writer
   during the window, single reader at the barrier).  A persistent pool
   matters: one full-scale deployment partitioned per node runs
   millions of small windows, and a Domain.spawn/join pair per window
   costs more than the window itself. *)

type msg = { m_at : Time.t; m_seq : int; m_name : string; m_fn : unit -> unit }

type edge = {
  e_src : int;
  e_dst : int;
  e_lookahead : Time.t;
  mutable e_seq : int;
  mutable e_out : msg list; (* newest first; reversed at drain *)
}

type t = {
  shards : Engine.t array;
  lookahead : Time.t; (* default for edges that do not override *)
  edge_tbl : (int * int, edge) Hashtbl.t;
  in_edges : edge list array; (* per-dst incoming edges *)
  mutable windows : int;
  mutable errs : (int * exn) list; (* shards that died during [run] *)
}

let create ?(lookahead = Time.ns 1) ?(seed = 42) ?seed_of ~shards () =
  if shards <= 0 then invalid_arg "Sharded.create: shards must be positive";
  (* A zero lookahead admits same-timestamp cross-shard delivery into a
     window already being executed; one tick is the smallest safe value. *)
  let lookahead = max 1 lookahead in
  (* Distinct deterministic seed per shard: a function of (seed, index)
     only, so shard streams never depend on the domain layout.
     [seed_of] overrides the derivation — e.g. a batch of formerly
     sequential, independent simulations wanting every shard to see the
     same engine seed those sims always had. *)
  let seed_of =
    match seed_of with Some f -> f | None -> fun i -> seed + (1000003 * i)
  in
  {
    shards = Array.init shards (fun i -> Engine.create ~seed:(seed_of i) ());
    lookahead;
    edge_tbl = Hashtbl.create 16;
    in_edges = Array.make shards [];
    windows = 0;
    errs = [];
  }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i)
let lookahead t = t.lookahead
let windows_run t = t.windows
let errors t = List.sort (fun (a, _) (b, _) -> compare a b) t.errs

let connect ?lookahead t ~src ~dst =
  let n = Array.length t.shards in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Sharded.connect: shard index out of range";
  if src = dst then invalid_arg "Sharded.connect: self edge";
  let la = max 1 (Option.value lookahead ~default:t.lookahead) in
  if not (Hashtbl.mem t.edge_tbl (src, dst)) then begin
    let e = { e_src = src; e_dst = dst; e_lookahead = la; e_seq = 0; e_out = [] } in
    Hashtbl.add t.edge_tbl (src, dst) e;
    t.in_edges.(dst) <- e :: t.in_edges.(dst)
  end

let spawn_root ?name t ~shard f = Engine.spawn_root ?name t.shards.(shard) f

let send t ~src ~dst ?(delay = 0) ~name fn =
  let edge =
    match Hashtbl.find_opt t.edge_tbl (src, dst) with
    | Some e -> e
    | None -> invalid_arg "Sharded.send: edge not connected"
  in
  let delay = max delay edge.e_lookahead in
  let at = Engine.current_time t.shards.(src) + delay in
  edge.e_seq <- edge.e_seq + 1;
  edge.e_out <- { m_at = at; m_seq = edge.e_seq; m_name = name; m_fn = fn }
                :: edge.e_out

(* Canonical injection order; all components are deterministic, so the
   merged stream is identical for every domain layout. *)
let msg_order (e1, m1) (e2, m2) =
  if m1.m_at <> m2.m_at then compare m1.m_at m2.m_at
  else if e1.e_src <> e2.e_src then compare e1.e_src e2.e_src
  else if e1.e_dst <> e2.e_dst then compare e1.e_dst e2.e_dst
  else compare m1.m_seq m2.m_seq

let drain t =
  let pending = ref [] in
  Hashtbl.iter
    (fun _ e ->
      List.iter (fun m -> pending := (e, m) :: !pending) (List.rev e.e_out);
      e.e_out <- [])
    t.edge_tbl;
  let msgs = List.sort msg_order !pending in
  List.iter
    (fun (e, m) ->
      Engine.spawn_root_at t.shards.(e.e_dst) ~at:m.m_at ~name:m.m_name m.m_fn)
    msgs

let run ?(domains = 1) ?deadline ?(keep_going = false) t =
  let n = Array.length t.shards in
  let domains = max 1 (min domains n) in
  t.errs <- [];
  (* A shard whose window raised is dead: its engine state is
     inconsistent, so it executes nothing further and stops
     constraining nobody — it can also never send again.  The exception
     is reported through {!errors} (and re-raised at the end unless
     [keep_going]), while the other shards run to completion. *)
  let dead = Array.make n false in
  let shard_exn : exn option array = Array.make n None in
  let nexts = Array.make n None in
  let refresh_nexts () =
    for j = 0 to n - 1 do
      nexts.(j) <-
        (if dead.(j) then None else Engine.next_event_time t.shards.(j))
    done
  in
  (* [promises.(i)] is a lower bound on the timestamp of anything shard
     [i] may still send.  A busy shard promises its next event time
     (every send it makes carries at least one edge-lookahead on top of
     the sending event's time).  An idle shard cannot send before it is
     woken by someone else, so its promise is the earliest message that
     could ever reach it — a shortest-path relaxation over the live
     edges from the busy shards ([None] = unreachable: nothing can ever
     wake it, so it constrains nobody).  Without this lift, two idle
     shards facing each other would hold every window to one lookahead
     of progress; with it, idle shards ride one lookahead behind the
     activity — the null-message trick in Chandy–Misra–Bryant. *)
  let promises = Array.make n None in
  let bound_for j =
    List.fold_left
      (fun acc e ->
        match promises.(e.e_src) with
        | None -> acc
        | Some ts -> (
            let b = ts + e.e_lookahead in
            match acc with None -> Some b | Some b0 -> Some (min b0 b)))
      None t.in_edges.(j)
  in
  let refresh_promises () =
    for j = 0 to n - 1 do
      promises.(j) <- (if dead.(j) then None else nexts.(j))
    done;
    let relax () =
      let changed = ref false in
      for j = 0 to n - 1 do
        if (not dead.(j)) && nexts.(j) = None then begin
          match bound_for j with
          | None -> ()
          | Some b ->
              (* The shard's clock is itself a sound floor: nothing it
                 ever sends can predate where its clock already is. *)
              let b = max b (Engine.current_time t.shards.(j)) in
              (match promises.(j) with
              | None ->
                  promises.(j) <- Some b;
                  changed := true
              | Some p when b < p ->
                  promises.(j) <- Some b;
                  changed := true
              | Some _ -> ())
        end
      done;
      !changed
    in
    (* Monotone decreasing from infinity; paths have at most [n] hops,
       so [n] all-shard rounds reach the fixpoint. *)
    let rounds = ref 0 in
    while relax () && !rounds < n do
      incr rounds
    done
  in
  let work j =
    if not dead.(j) then
      match nexts.(j) with
      | None -> (
          (* Idle: ratchet the clock to the conservative bound so the
             promise keeps rising next window (the null message). *)
          match bound_for j with
          | None -> ()
          | Some bound ->
              let b =
                match deadline with Some d -> min d bound | None -> bound
              in
              Engine.fast_forward t.shards.(j) ~upto:b)
      | Some ts -> (
          try
            match deadline with
            | Some d when ts > d ->
                (* Nothing below the deadline remains: clamp the clock
                   and discard, exactly like [Engine.run ~deadline]. *)
                Engine.run ~deadline:d t.shards.(j)
            | _ -> (
                match bound_for j with
                | None -> Engine.run ?deadline t.shards.(j)
                | Some bound -> (
                    match deadline with
                    | Some d when d < bound ->
                        (* No upstream can deliver below [bound], and
                           the deadline cuts earlier: this shard is
                           finished. *)
                        Engine.run ~deadline:d t.shards.(j)
                    | _ ->
                        ignore
                          (Engine.run_until t.shards.(j) ~bound
                            : Time.t option)))
          with e -> shard_exn.(j) <- Some e)
  in
  let after_window () =
    for j = 0 to n - 1 do
      match shard_exn.(j) with
      | Some e when not dead.(j) ->
          dead.(j) <- true;
          t.errs <- (j, e) :: t.errs
      | _ -> ()
    done
  in
  let one_window work_all =
    drain t;
    refresh_nexts ();
    if Array.for_all Option.is_none nexts then false
    else begin
      refresh_promises ();
      t.windows <- t.windows + 1;
      work_all ();
      after_window ();
      true
    end
  in
  (if domains = 1 then
     while
       one_window (fun () ->
           for j = 0 to n - 1 do
             work j
           done)
     do
       ()
     done
   else begin
     (* Persistent worker pool: domains are created once and handed
        windows through a generation counter under [mu].  Round-robin
        shard-to-domain assignment; the layout is irrelevant to
        results, only to load balance. *)
     let chunk d =
       let rec go j acc =
         if j >= n then List.rev acc else go (j + domains) (j :: acc)
       in
       go d []
     in
     let mu = Mutex.create () in
     let cv = Condition.create () in
     let gen = ref 0 in
     let done_count = ref 0 in
     let quit = ref false in
     let worker d () =
       let mine = chunk d in
       let seen = ref 0 in
       let continue = ref true in
       while !continue do
         Mutex.lock mu;
         while !gen = !seen && not !quit do
           Condition.wait cv mu
         done;
         let q = !quit in
         seen := !gen;
         Mutex.unlock mu;
         if q then continue := false
         else begin
           List.iter work mine;
           Mutex.lock mu;
           incr done_count;
           Condition.broadcast cv;
           Mutex.unlock mu
         end
       done
     in
     let workers =
       Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
     in
     let main_chunk = chunk 0 in
     let work_all () =
       Mutex.lock mu;
       done_count := 0;
       incr gen;
       Condition.broadcast cv;
       Mutex.unlock mu;
       List.iter work main_chunk;
       Mutex.lock mu;
       while !done_count < domains - 1 do
         Condition.wait cv mu
       done;
       Mutex.unlock mu
     in
     Fun.protect
       ~finally:(fun () ->
         Mutex.lock mu;
         quit := true;
         Condition.broadcast cv;
         Mutex.unlock mu;
         Array.iter Domain.join workers)
       (fun () -> while one_window work_all do () done)
   end);
  if not keep_going then
    match errors t with (_, e) :: _ -> raise e | [] -> ()
