(* Conservative (Chandy–Misra–Bryant-style) parallel runner over
   multiple engines.

   Each shard owns a private {!Engine.t}; shards interact only through
   declared, latency-carrying edges.  Execution proceeds in windows:
   between windows the coordinator drains every edge's buffer and
   injects the messages into the destination engines in a canonical
   order (delivery time, src, dst, per-edge sequence); within a window
   each shard executes only events that nothing another shard has yet
   to do could invalidate, so no rollback is ever needed.

   The window bound is where this runner differs from the textbook
   scheme.  Shard [j]'s horizon has two parts:

   - a {e static} part, computed at the barrier: the earliest instant
     any {e other} busy shard could cause a delivery at [j] —
     [min over busy b <> j of (next_b + dist b j)], where [dist] is the
     all-pairs shortest-path distance over edge lookaheads (idle shards
     are pure relays: woken at [t], the soonest they can forward is
     [t + lookahead] per hop, which is exactly what the path distance
     sums).  A shard no other busy shard can reach runs unconstrained
     by them.

   - an {e adaptive self} part, discovered while the window runs: the
     only other thing that can deliver to [j] is an echo of [j]'s own
     output, and until [j] actually sends something no such echo
     exists.  So [j] starts the window bounded by the static part
     alone — often infinity — and its first cross-shard send at
     delivery time [a] on edge [j -> k] drops the bound to
     [a + dist k j] (the soonest any consequence can bounce back).
     Execution is time-ordered, so every event already executed when
     the bound drops is at or before the send time, never beyond the
     new bound.  This is the promise-based horizon extension: a busy
     shard facing only quiescent peers runs until its own traffic —
     not a wall-clock lookahead window — closes the horizon, so the
     barrier rate scales with cross-shard {e messages} rather than
     with elapsed virtual time over lookahead.

   Idle shards still play the null-message role: their clocks ratchet
   to the static bound each window so a later wake-up cannot deliver
   into their past.

   Within a window the shards touch disjoint state, so they can run on
   any number of domains in any order with identical results: the
   [domains] argument of {!run} changes wall-clock behaviour only,
   never simulation output.  Worker domains are created lazily (first
   window that wants them) and persist for the whole run; each round
   hands out the runnable shards through an atomic claim index and is
   summarized by a single atomic pending counter — workers park on a
   condition variable between rounds instead of polling, and windows
   whose estimated work would not amortize a barrier run inline on the
   coordinator without waking anyone. *)

(* Infinity sentinel for times/distances; small enough that sums of two
   never overflow. *)
let inf = max_int / 4

type edge = {
  e_src : int;
  e_dst : int;
  e_lookahead : Time.t;
  mutable e_ret : Time.t;
      (* dist(dst -> src): soonest an echo of a message on this edge can
         come back, measured from the message's delivery time.  [inf]
         when no return path exists.  Refreshed with the distance
         matrix. *)
  (* Reusable coalescing buffer: all same-window messages on this edge,
     in send order (the per-edge sequence is the index).  Parallel
     arrays, grown geometrically, never shrunk — steady-state drains
     allocate nothing. *)
  mutable e_cnt : int;
  mutable e_at : Time.t array;
  mutable e_name : string array;
  mutable e_fn : (unit -> unit) array;
  mutable e_dirty : bool; (* queued on its source shard's dirty list *)
  mutable e_msgs : int; (* lifetime messages (observability) *)
}

type shard_st = {
  s_bound : Time.t ref;
      (* The shard's current window bound, read by [Engine.run_until_dyn]
         before every event and lowered by [send] when an echo horizon
         appears.  Written only by the domain executing the shard (and
         by the coordinator between windows, across the round barrier). *)
  mutable s_dirty : edge list; (* out-edges holding buffered messages *)
}

type stats = {
  windows : int;
  parallel_windows : int;
  barrier_waits : int;
  fast_forwards : int;
  messages : int;
  batch_max : int;
  extended_horizons : int;
}

type t = {
  shards : Engine.t array;
  lookahead : Time.t; (* default for edges that do not override *)
  edge_tbl : (int * int, edge) Hashtbl.t;
  st : shard_st array;
  mutable dist : Time.t array array; (* all-pairs lookahead distances *)
  mutable paths_stale : bool;
  (* Reusable drain gather buffers (parallel arrays). *)
  mutable g_at : Time.t array;
  mutable g_edge : edge array;
  mutable g_idx : int array;
  mutable windows : int;
  mutable parallel_windows : int;
  mutable barrier_waits : int;
  mutable fast_forwards : int;
  mutable messages : int;
  mutable batch_max : int;
  mutable extended_horizons : int;
  mutable errs : (int * exn) list; (* shards that died during [run] *)
}

(* Wall clock for the inline-vs-parallel work estimate (policy only —
   never part of simulation results).  [Sys.time] by default so the sim
   library keeps its no-unix rule; harnesses install a real-time clock
   via {!set_clock}. *)
let wall_clock = ref Sys.time
let set_clock f = wall_clock := f

let dummy_edge =
  {
    e_src = -1;
    e_dst = -1;
    e_lookahead = 1;
    e_ret = inf;
    e_cnt = 0;
    e_at = [||];
    e_name = [||];
    e_fn = [||];
    e_dirty = false;
    e_msgs = 0;
  }

let create ?(lookahead = Time.ns 1) ?(seed = 42) ?seed_of ~shards () =
  if shards <= 0 then invalid_arg "Sharded.create: shards must be positive";
  (* A zero lookahead admits same-timestamp cross-shard delivery into a
     window already being executed; one tick is the smallest safe value. *)
  let lookahead = max 1 lookahead in
  (* Distinct deterministic seed per shard: a function of (seed, index)
     only, so shard streams never depend on the domain layout.
     [seed_of] overrides the derivation — e.g. a batch of formerly
     sequential, independent simulations wanting every shard to see the
     same engine seed those sims always had. *)
  let seed_of =
    match seed_of with Some f -> f | None -> fun i -> seed + (1000003 * i)
  in
  {
    shards = Array.init shards (fun i -> Engine.create ~seed:(seed_of i) ());
    lookahead;
    edge_tbl = Hashtbl.create 16;
    st = Array.init shards (fun _ -> { s_bound = ref inf; s_dirty = [] });
    dist = [||];
    paths_stale = true;
    g_at = [||];
    g_edge = [||];
    g_idx = [||];
    windows = 0;
    parallel_windows = 0;
    barrier_waits = 0;
    fast_forwards = 0;
    messages = 0;
    batch_max = 0;
    extended_horizons = 0;
    errs = [];
  }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i)
let lookahead t = t.lookahead
let windows_run t = t.windows
let errors t = List.sort (fun (a, _) (b, _) -> compare a b) t.errs

let stats t =
  {
    windows = t.windows;
    parallel_windows = t.parallel_windows;
    barrier_waits = t.barrier_waits;
    fast_forwards = t.fast_forwards;
    messages = t.messages;
    batch_max = t.batch_max;
    extended_horizons = t.extended_horizons;
  }

let edge_messages t =
  Hashtbl.fold
    (fun k e acc -> if e.e_msgs > 0 then (k, e.e_msgs) :: acc else acc)
    t.edge_tbl []
  |> List.sort compare

let counters_record t =
  (* Only the domain-layout-independent subset goes to the global
     counter table: these values are identical at every [?domains], so
     printing them cannot break byte-identity checks across domain
     counts.  Parallel-window / barrier-wait tallies stay in {!stats}. *)
  if t.windows > 0 then begin
    Counters.add "sharded.windows" t.windows;
    Counters.add "sharded.fast-forward" t.fast_forwards;
    Counters.add "sharded.messages" t.messages;
    Counters.add "sharded.horizon-extended" t.extended_horizons
  end

let connect ?lookahead t ~src ~dst =
  let n = Array.length t.shards in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Sharded.connect: shard index out of range";
  if src = dst then invalid_arg "Sharded.connect: self edge";
  let la = max 1 (Option.value lookahead ~default:t.lookahead) in
  if not (Hashtbl.mem t.edge_tbl (src, dst)) then begin
    let e =
      {
        e_src = src;
        e_dst = dst;
        e_lookahead = la;
        e_ret = inf;
        e_cnt = 0;
        e_at = [||];
        e_name = [||];
        e_fn = [||];
        e_dirty = false;
        e_msgs = 0;
      }
    in
    Hashtbl.add t.edge_tbl (src, dst) e;
    t.paths_stale <- true
  end

(* All-pairs shortest lookahead distances (Floyd–Warshall; shard counts
   are small).  [dist.(i).(j)] bounds from below how long any chain of
   cross-shard messages from [i] takes to reach [j]: a relay woken at
   [t] forwards no earlier than [t + lookahead] per hop.  Dead shards
   are kept as relays — they never forward, so real paths are only
   longer than these distances, which keeps every bound conservative. *)
let refresh_paths t =
  let n = Array.length t.shards in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  Hashtbl.iter
    (fun _ e ->
      if e.e_lookahead < d.(e.e_src).(e.e_dst) then
        d.(e.e_src).(e.e_dst) <- e.e_lookahead)
    t.edge_tbl;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < inf then
        for j = 0 to n - 1 do
          let v = dik + d.(k).(j) in
          if v < d.(i).(j) then d.(i).(j) <- v
        done
    done
  done;
  Hashtbl.iter (fun _ e -> e.e_ret <- d.(e.e_dst).(e.e_src)) t.edge_tbl;
  t.dist <- d;
  t.paths_stale <- false

let spawn_root ?name t ~shard f = Engine.spawn_root ?name t.shards.(shard) f

let grow_edge e =
  let cap = max 8 (2 * Array.length e.e_at) in
  let at = Array.make cap 0 in
  let name = Array.make cap "" in
  let fn = Array.make cap ignore in
  Array.blit e.e_at 0 at 0 e.e_cnt;
  Array.blit e.e_name 0 name 0 e.e_cnt;
  Array.blit e.e_fn 0 fn 0 e.e_cnt;
  e.e_at <- at;
  e.e_name <- name;
  e.e_fn <- fn

let send t ~src ~dst ?(delay = 0) ~name fn =
  let edge =
    match Hashtbl.find_opt t.edge_tbl (src, dst) with
    | Some e -> e
    | None -> invalid_arg "Sharded.send: edge not connected"
  in
  let delay = max delay edge.e_lookahead in
  let at = Engine.current_time t.shards.(src) + delay in
  if edge.e_cnt >= Array.length edge.e_at then grow_edge edge;
  let k = edge.e_cnt in
  edge.e_at.(k) <- at;
  edge.e_name.(k) <- name;
  edge.e_fn.(k) <- fn;
  edge.e_cnt <- k + 1;
  let st = t.st.(src) in
  if not edge.e_dirty then begin
    edge.e_dirty <- true;
    st.s_dirty <- edge :: st.s_dirty
  end;
  (* Adaptive-horizon echo bound: nothing this message causes can come
     back to [src] before [at + dist (dst -> src)].  Tighten the
     sender's window bound if that is sooner than what it is currently
     running under (only the domain executing [src] ever calls this,
     so the plain ref is race-free). *)
  if edge.e_ret < inf then begin
    let back = at + edge.e_ret in
    if back < !(st.s_bound) then st.s_bound := back
  end

(* Drain every dirty edge into the destination engines, in the
   canonical order (delivery time, src, dst, per-edge sequence).  The
   gather walks sources in index order and each source's dirty edges in
   destination order, so gather position already encodes the
   (src, dst, seq) tiebreak — a stable sort by delivery time alone
   reproduces the canonical order exactly.  Buffers are reused across
   windows; small batches (the common case) sort in place with zero
   allocation. *)
let drain t =
  let n = Array.length t.shards in
  (* Gather. *)
  let cnt = ref 0 in
  let push at e k =
    if !cnt >= Array.length t.g_at then begin
      let cap = max 64 (2 * Array.length t.g_at) in
      let at' = Array.make cap 0 in
      let ed' = Array.make cap dummy_edge in
      let ix' = Array.make cap 0 in
      Array.blit t.g_at 0 at' 0 !cnt;
      Array.blit t.g_edge 0 ed' 0 !cnt;
      Array.blit t.g_idx 0 ix' 0 !cnt;
      t.g_at <- at';
      t.g_edge <- ed';
      t.g_idx <- ix'
    end;
    t.g_at.(!cnt) <- at;
    t.g_edge.(!cnt) <- e;
    t.g_idx.(!cnt) <- k;
    incr cnt
  in
  for src = 0 to n - 1 do
    let st = t.st.(src) in
    match st.s_dirty with
    | [] -> ()
    | dirty ->
        st.s_dirty <- [];
        let dirty =
          List.sort (fun a b -> compare a.e_dst b.e_dst) dirty
        in
        List.iter
          (fun e ->
            for k = 0 to e.e_cnt - 1 do
              push e.e_at.(k) e k
            done;
            e.e_msgs <- e.e_msgs + e.e_cnt;
            e.e_dirty <- false)
          dirty
  done;
  let k = !cnt in
  if k > 0 then begin
    t.messages <- t.messages + k;
    if k > t.batch_max then t.batch_max <- k;
    (* Stable sort by delivery time (gather order breaks ties). *)
    if k <= 48 then
      for i = 1 to k - 1 do
        let at = t.g_at.(i) and ed = t.g_edge.(i) and ix = t.g_idx.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && t.g_at.(!j) > at do
          t.g_at.(!j + 1) <- t.g_at.(!j);
          t.g_edge.(!j + 1) <- t.g_edge.(!j);
          t.g_idx.(!j + 1) <- t.g_idx.(!j);
          decr j
        done;
        t.g_at.(!j + 1) <- at;
        t.g_edge.(!j + 1) <- ed;
        t.g_idx.(!j + 1) <- ix
      done
    else begin
      let perm = Array.init k (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = compare t.g_at.(a) t.g_at.(b) in
          if c <> 0 then c else compare a b)
        perm;
      let at' = Array.map (fun i -> t.g_at.(i)) perm in
      let ed' = Array.map (fun i -> t.g_edge.(i)) perm in
      let ix' = Array.map (fun i -> t.g_idx.(i)) perm in
      Array.blit at' 0 t.g_at 0 k;
      Array.blit ed' 0 t.g_edge 0 k;
      Array.blit ix' 0 t.g_idx 0 k
    end;
    (* Inject, then release the buffered closures. *)
    for i = 0 to k - 1 do
      let e = t.g_edge.(i) and ix = t.g_idx.(i) in
      Engine.spawn_root_at t.shards.(e.e_dst) ~at:t.g_at.(i)
        ~name:e.e_name.(ix) e.e_fn.(ix)
    done;
    for i = 0 to k - 1 do
      let e = t.g_edge.(i) in
      if e.e_cnt > 0 then begin
        Array.fill e.e_name 0 e.e_cnt "";
        Array.fill e.e_fn 0 e.e_cnt ignore;
        e.e_cnt <- 0
      end;
      t.g_edge.(i) <- dummy_edge
    done
  end

let run ?(domains = 1) ?deadline ?(keep_going = false) ?(grain = 96) t =
  let n = Array.length t.shards in
  let domains = max 1 (min domains n) in
  if t.paths_stale then refresh_paths t;
  t.errs <- [];
  (* A shard whose window raised is dead: its engine state is
     inconsistent, so it executes nothing further and can never send
     again.  The exception is reported through {!errors} (and re-raised
     at the end unless [keep_going]), while the other shards run to
     completion. *)
  let dead = Array.make n false in
  let shard_exn : exn option array = Array.make n None in
  let nexts = Array.make n inf in
  let work j =
    try
      match deadline with
      | Some d when nexts.(j) > d ->
          (* Nothing below the deadline remains: clamp the clock and
             discard, exactly like [Engine.run ~deadline]. *)
          Engine.run ~deadline:d t.shards.(j)
      | _ ->
          ignore
            (Engine.run_until_dyn ?deadline t.shards.(j)
               ~bound:t.st.(j).s_bound
              : Time.t option)
    with e -> shard_exn.(j) <- Some e
  in
  let after_window () =
    for j = 0 to n - 1 do
      match shard_exn.(j) with
      | Some e when not dead.(j) ->
          dead.(j) <- true;
          t.errs <- (j, e) :: t.errs
      | _ -> ()
    done
  in
  (* Lazily created persistent worker pool.  A round is published as:
     runnable set + bounds (plain writes), then a generation bump under
     the mutex (broadcast wakes parked workers).  Workers pull shard
     indices through the atomic claim counter and the last finisher —
     tracked by the single atomic pending counter, the round summary —
     signals the coordinator.  Windows below the [grain] work estimate
     never touch any of this: the coordinator runs them inline. *)
  let runnable = Array.make n 0 in
  let runnable_cnt = ref 0 in
  let claim = Atomic.make 0 in
  let pending = Atomic.make 0 in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let gen = ref 0 in
  let quit = ref false in
  let pool : unit Domain.t array ref = ref [||] in
  let worker () =
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock mu;
      while !gen = !seen && not !quit do
        Condition.wait cv mu
      done;
      let q = !quit in
      seen := !gen;
      Mutex.unlock mu;
      if q then continue := false
      else begin
        let more = ref true in
        while !more do
          let i = Atomic.fetch_and_add claim 1 in
          if i >= !runnable_cnt then more := false
          else begin
            work runnable.(i);
            if Atomic.fetch_and_add pending (-1) = 1 then begin
              Mutex.lock mu;
              Condition.broadcast cv;
              Mutex.unlock mu
            end
          end
        done
      end
    done
  in
  let ensure_pool () =
    if Array.length !pool = 0 then
      pool := Array.init (domains - 1) (fun _ -> Domain.spawn worker)
  in
  let run_round () =
    ensure_pool ();
    t.parallel_windows <- t.parallel_windows + 1;
    Atomic.set claim 0;
    Atomic.set pending !runnable_cnt;
    Mutex.lock mu;
    incr gen;
    Condition.broadcast cv;
    Mutex.unlock mu;
    let more = ref true in
    while !more do
      let i = Atomic.fetch_and_add claim 1 in
      if i >= !runnable_cnt then more := false
      else begin
        work runnable.(i);
        ignore (Atomic.fetch_and_add pending (-1) : int)
      end
    done;
    Mutex.lock mu;
    while Atomic.get pending > 0 do
      t.barrier_waits <- t.barrier_waits + 1;
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  (* Inline-vs-parallel policy: a window goes to the pool only when its
     predicted work would amortize a barrier crossing.  Two exponential
     moving averages predict the next window from the last ones — the
     event count per window (cheap, exact, catches sustained load) and
     the wall seconds per window (2 clock reads per window, catches
     few-events-but-expensive regimes).  Both are wall-clock heuristics
     only: they decide where a window runs, never what it computes. *)
  let ema_events = ref 0. in
  let ema_wall = ref 0. in
  let wall_grain = 40e-6 in
  (* [grain <= 0] forces every multi-shard window onto the pool (test
     hook for the barrier path).  Otherwise a machine that reports a
     single core can never amortize waking a worker, whatever
     [?domains] says, so such hosts keep the pure inline path — and
     skip the per-window clock reads with it. *)
  let force_parallel = grain <= 0 in
  let can_parallel =
    domains > 1 && (force_parallel || Domain.recommended_domain_count () > 1)
  in
  let events_of_runnable () =
    let s = ref 0 in
    for i = 0 to !runnable_cnt - 1 do
      s := !s + Engine.events_executed t.shards.(runnable.(i))
    done;
    !s
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if Array.length !pool > 0 then begin
        Mutex.lock mu;
        quit := true;
        Condition.broadcast cv;
        Mutex.unlock mu;
        Array.iter Domain.join !pool
      end)
    (fun () ->
      while not !finished do
        drain t;
        let busy = ref 0 in
        for j = 0 to n - 1 do
          nexts.(j) <-
            (if dead.(j) then inf
             else
               match Engine.next_event_time t.shards.(j) with
               | Some ts -> ts
               | None -> inf);
          if nexts.(j) < inf then incr busy
        done;
        if !busy = 0 then finished := true
        else begin
          t.windows <- t.windows + 1;
          (* Static bounds: earliest any *other* busy shard could cause
             a delivery here.  Idle reachable shards ratchet their
             clocks to it (the null message); busy shards below it are
             runnable. *)
          runnable_cnt := 0;
          for j = 0 to n - 1 do
            if not dead.(j) then begin
              let static = ref inf in
              for b = 0 to n - 1 do
                if b <> j && nexts.(b) < inf && not dead.(b) then begin
                  let v = nexts.(b) + t.dist.(b).(j) in
                  if v < !static then static := v
                end
              done;
              if nexts.(j) < inf then begin
                (* Busy: runnable unless its whole window is empty. *)
                let past_deadline =
                  match deadline with Some d -> nexts.(j) > d | None -> false
                in
                if nexts.(j) < !static || past_deadline then begin
                  if !static >= inf then
                    t.extended_horizons <- t.extended_horizons + 1;
                  t.st.(j).s_bound := !static;
                  runnable.(!runnable_cnt) <- j;
                  incr runnable_cnt
                end
              end
              else if !static < inf then begin
                (* Idle: ratchet the clock to the conservative bound so
                   a later wake-up cannot land in this shard's past. *)
                let upto =
                  match deadline with
                  | Some d -> min d !static
                  | None -> !static
                in
                Engine.fast_forward t.shards.(j) ~upto;
                t.fast_forwards <- t.fast_forwards + 1
              end
            end
          done;
          (* The shard holding the globally minimal next event is always
             below every static bound, so every window makes progress. *)
          assert (!runnable_cnt > 0);
          if not can_parallel then
            for i = 0 to !runnable_cnt - 1 do
              work runnable.(i)
            done
          else begin
            let ev0 = events_of_runnable () in
            let w0 = !wall_clock () in
            if
              force_parallel
              || !runnable_cnt > 1
                 && (!ema_events >= float_of_int grain
                    || !ema_wall >= wall_grain)
            then run_round ()
            else
              for i = 0 to !runnable_cnt - 1 do
                work runnable.(i)
              done;
            let dw = !wall_clock () -. w0 in
            let de = float_of_int (events_of_runnable () - ev0) in
            ema_events := (0.75 *. !ema_events) +. (0.25 *. de);
            ema_wall := (0.75 *. !ema_wall) +. (0.25 *. dw)
          end;
          after_window ()
        end
      done);
  if not keep_going then
    match errors t with (_, e) :: _ -> raise e | [] -> ()
