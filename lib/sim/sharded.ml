(* Conservative (Chandy–Misra–Bryant-style) parallel runner over
   multiple engines.

   Each shard owns a private {!Engine.t}; shards interact only through
   declared, latency-carrying edges.  Execution proceeds in windows:

   - between windows the coordinator drains every edge's outbox and
     injects the messages into the destination engines in a canonical
     order (delivery time, src, dst, per-edge sequence);
   - each shard [j] may then execute every event strictly below
     [min over incoming edges (src i) of (next_i + lookahead)] — any
     message an upstream shard can still send arrives at or beyond that
     bound, so the window's events are final and no rollback is ever
     needed.  A shard with no (live) upstream constraint runs to
     completion.

   Within a window the shards touch disjoint state, so they can run on
   any number of domains in any order with identical results: the
   [domains] argument of {!run} changes wall-clock behaviour only,
   never simulation output.  Worker domains are spawned per window and
   joined at the barrier; the join gives the coordinator's drain a
   happens-before edge over every shard's sends, so edge outboxes need
   no locking (single writer during the window, single reader at the
   barrier). *)

type msg = { m_at : Time.t; m_seq : int; m_name : string; m_fn : unit -> unit }

type edge = {
  e_src : int;
  e_dst : int;
  mutable e_seq : int;
  mutable e_out : msg list; (* newest first; reversed at drain *)
}

type t = {
  shards : Engine.t array;
  lookahead : Time.t;
  edge_tbl : (int * int, edge) Hashtbl.t;
  in_edges : int list array; (* per-dst sources, most recent first *)
  mutable windows : int;
}

let create ?(lookahead = Time.ns 1) ?(seed = 42) ?seed_of ~shards () =
  if shards <= 0 then invalid_arg "Sharded.create: shards must be positive";
  (* A zero lookahead admits same-timestamp cross-shard delivery into a
     window already being executed; one tick is the smallest safe value. *)
  let lookahead = max 1 lookahead in
  (* Distinct deterministic seed per shard: a function of (seed, index)
     only, so shard streams never depend on the domain layout.
     [seed_of] overrides the derivation — e.g. a batch of formerly
     sequential, independent simulations wanting every shard to see the
     same engine seed those sims always had. *)
  let seed_of =
    match seed_of with Some f -> f | None -> fun i -> seed + (1000003 * i)
  in
  {
    shards = Array.init shards (fun i -> Engine.create ~seed:(seed_of i) ());
    lookahead;
    edge_tbl = Hashtbl.create 16;
    in_edges = Array.make shards [];
    windows = 0;
  }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i)
let lookahead t = t.lookahead
let windows_run t = t.windows

let connect t ~src ~dst =
  let n = Array.length t.shards in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Sharded.connect: shard index out of range";
  if src = dst then invalid_arg "Sharded.connect: self edge";
  if not (Hashtbl.mem t.edge_tbl (src, dst)) then begin
    Hashtbl.add t.edge_tbl (src, dst)
      { e_src = src; e_dst = dst; e_seq = 0; e_out = [] };
    t.in_edges.(dst) <- src :: t.in_edges.(dst)
  end

let spawn_root ?name t ~shard f = Engine.spawn_root ?name t.shards.(shard) f

let send t ~src ~dst ?(delay = 0) ~name fn =
  let edge =
    match Hashtbl.find_opt t.edge_tbl (src, dst) with
    | Some e -> e
    | None -> invalid_arg "Sharded.send: edge not connected"
  in
  let delay = max delay t.lookahead in
  let at = Engine.current_time t.shards.(src) + delay in
  edge.e_seq <- edge.e_seq + 1;
  edge.e_out <- { m_at = at; m_seq = edge.e_seq; m_name = name; m_fn = fn }
                :: edge.e_out

(* Canonical injection order; all components are deterministic, so the
   merged stream is identical for every domain layout. *)
let msg_order (e1, m1) (e2, m2) =
  if m1.m_at <> m2.m_at then compare m1.m_at m2.m_at
  else if e1.e_src <> e2.e_src then compare e1.e_src e2.e_src
  else if e1.e_dst <> e2.e_dst then compare e1.e_dst e2.e_dst
  else compare m1.m_seq m2.m_seq

let drain t =
  let pending = ref [] in
  Hashtbl.iter
    (fun _ e ->
      List.iter (fun m -> pending := (e, m) :: !pending) (List.rev e.e_out);
      e.e_out <- [])
    t.edge_tbl;
  let msgs = List.sort msg_order !pending in
  List.iter
    (fun (e, m) ->
      Engine.spawn_root_at t.shards.(e.e_dst) ~at:m.m_at ~name:m.m_name m.m_fn)
    msgs

let run ?(domains = 1) t =
  let n = Array.length t.shards in
  let domains = max 1 (min domains n) in
  let continue = ref true in
  while !continue do
    drain t;
    let nexts = Array.map Engine.next_event_time t.shards in
    if Array.for_all Option.is_none nexts then continue := false
    else begin
      t.windows <- t.windows + 1;
      (* Per-shard horizon from live upstream shards; [None] means no
         constraint (run to completion this window). *)
      let bound_for j =
        List.fold_left
          (fun acc src ->
            match nexts.(src) with
            | None -> acc
            | Some ts -> (
                let b = ts + t.lookahead in
                match acc with
                | None -> Some b
                | Some b0 -> Some (min b0 b)))
          None t.in_edges.(j)
      in
      let work j =
        match nexts.(j) with
        | None -> ()
        | Some _ -> (
            match bound_for j with
            | None -> Engine.run t.shards.(j)
            | Some bound -> ignore (Engine.run_until t.shards.(j) ~bound))
      in
      if domains = 1 then
        for j = 0 to n - 1 do
          work j
        done
      else begin
        (* Round-robin shard-to-domain assignment; the layout is
           irrelevant to results, only to load balance. *)
        let chunk d =
          let rec go j acc = if j >= n then List.rev acc
            else go (j + domains) (j :: acc)
          in
          go d []
        in
        let workers =
          Array.init (domains - 1) (fun d ->
              Domain.spawn (fun () -> List.iter work (chunk (d + 1))))
        in
        List.iter work (chunk 0);
        Array.iter Domain.join workers
      end
    end
  done
