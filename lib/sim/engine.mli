(** Discrete-event simulation engine.

    The engine advances a virtual clock by executing events in timestamp
    order.  Simulation code runs as cooperative {e processes}: ordinary
    OCaml functions that perform effects ([sleep], [suspend], [spawn])
    handled by the engine.  A process runs uninterrupted (in zero
    simulated time) until it sleeps or suspends, which makes all
    simulations single-threaded and deterministic.

    Typical usage:
    {[
      let eng = Engine.create () in
      Engine.spawn_root eng (fun () ->
          Engine.sleep (Time.us 10);
          Fmt.pr "now = %a@." Time.pp (Engine.now ()));
      Engine.run eng
    ]} *)

type t
(** An engine instance. Engines are independent; a process spawned on one
    engine must not interact with primitives of another. *)

type group
(** A process group (fault-injection kill switch).  Every process can
    carry a group tag; children and re-schedulings inherit it.  Killing
    a group silently discards all of its pending events, so the
    processes of a simulated node can be torn down atomically at a point
    in virtual time.  A killed group stays dead: create a fresh group to
    model the node restarting. *)

val make_group : string -> group
(** A fresh, alive group. *)

val kill : group -> unit
(** Tear the group down: none of its suspended or scheduled processes
    will ever run again.  State they left behind (locks, queue entries)
    is not cleaned up — exactly like a machine losing power. *)

val group_killed : group -> bool
val group_name : group -> string

exception Process_failure of string * exn
(** Raised out of {!run} when a process raises: carries the process name
    and the original exception. *)

val create : ?seed:int -> unit -> t
(** [create ()] is a fresh engine with the clock at 0. [seed] seeds the
    engine-level RNG stream (see {!rng}). *)

val rng : t -> Rng.t
(** Engine-level RNG; components should [Rng.split] their own stream. *)

val current_time : t -> Time.t
(** Clock value, readable from outside any process. *)

val events_executed : t -> int
(** Number of events this engine has executed (killed-group drops and
    deadline discards excluded).  Monotonic across [run] calls. *)

val global_events_executed : unit -> int
(** Process-wide event tally across all engines ever created — the
    basis for wall-clock events-per-second reporting in benchmarks.
    Maintained with [Atomic]: safe when engines run on several domains. *)

(** {1 Per-event-kind wall-clock profiling}

    Off by default (a single branch on the hot path).  When enabled,
    the engine measures the real time spent in each event and buckets
    it by event-name kind (the name with digit runs removed, so
    ["bench.client12"] and ["bench.client3"] share a bucket). *)

val profile_enable : bool -> unit
val profile_reset : unit -> unit

val profile_set_clock : (unit -> float) -> unit
(** Install the wall clock (e.g. [Unix.gettimeofday]); the default is
    [Sys.time].  The sim library itself takes no unix dependency. *)

val profile_snapshot : unit -> (string * int * float * float) list
(** [(kind, events, seconds, minor_words)] rows, hottest first. *)

val spawn_root : ?name:string -> ?group:group -> t -> (unit -> unit) -> unit
(** Schedule a top-level process to start at the current clock value.
    Usable from outside process context (before or between [run] calls). *)

val spawn_root_at :
  ?name:string -> ?group:group -> t -> at:Time.t -> (unit -> unit) -> unit
(** Like {!spawn_root} but at an explicit timestamp (clamped to the
    current clock if in the past).  Used by {!Sharded} to inject
    cross-shard message deliveries between synchronization windows. *)

val run : ?deadline:Time.t -> t -> unit
(** Execute events until the queue drains or the clock would pass
    [deadline].  When the deadline cuts the run short, pending events are
    discarded; the clock is left at [deadline]. *)

val stop : t -> unit
(** Request that {!run} return after the current event; pending events
    are kept (a subsequent [run] resumes them). Callable from processes. *)

val run_until : t -> bound:Time.t -> Time.t option
(** Execute every pending event with timestamp strictly below [bound]
    and return the timestamp of the next pending event (or [None] when
    drained).  Events at or beyond [bound] stay queued; a later
    [run_until] or {!run} resumes them.  This is the per-window drain
    used by the sharded runner ({!Sharded}). *)

val run_until_dyn : ?deadline:Time.t -> t -> bound:Time.t ref -> Time.t option
(** Like {!run_until}, but [bound] is re-read before every event, so
    code run by the events (e.g. {!Sharded.send}) may tighten it
    mid-window; execution is time-ordered, so nothing already executed
    can lie beyond a bound lowered by the event that just ran.  A
    [deadline] behaves as in {!run}: when the next event would pass it,
    pending events are discarded and the clock is left at the
    deadline. *)

val next_event_time : t -> Time.t option
(** Timestamp of the earliest pending event, if any. *)

val fast_forward : t -> upto:Time.t -> unit
(** Advance the clock to [upto] without executing anything.  No effect
    if [upto] is in the past; clamped to the earliest pending event so
    no event is ever skipped.  The sharded runner ({!Sharded}) uses
    this to ratchet an idle shard's clock to its conservative bound —
    the null-message role in Chandy–Misra–Bryant — so the windows of
    downstream shards keep widening. *)

val current : unit -> t option
(** The engine currently executing on {e this domain} ([Some] for the
    duration of {!run}/{!run_until}, [None] outside).  Unlike the
    process-context operations below this never raises: wakers and
    library code can use it to find engine-local state ({!Local})
    without being inside the effect handler. *)

(** {1 Engine-local storage}

    Typed per-engine key/value slots, in the style of [Domain.DLS].
    This is how formerly process-global hooks (fault-injection hook,
    lease/oplog observers, robustness counters) become per-shard state
    in sharded runs: each shard's engine carries its own copy, written
    and read only while that engine runs, so no state is shared across
    domains. *)
module Local : sig
  type 'a key

  val key : unit -> 'a key
  (** A fresh key.  Allocate once at module init, not per use. *)

  val get : t -> 'a key -> 'a option
  val set : t -> 'a key -> 'a -> unit
  val remove : t -> 'a key -> unit
end

(** {1 Process-context operations}

    The following functions must be called from inside a process (i.e.
    under [run]); calling them elsewhere raises [Not_in_process]. *)

exception Not_in_process

val now : unit -> Time.t
(** Current simulated time. *)

val sleep : Time.t -> unit
(** Suspend the calling process for the given duration. *)

val yield : unit -> unit
(** Re-schedule the calling process at the current time, letting other
    ready processes run first. *)

val spawn : ?name:string -> ?group:group -> (unit -> unit) -> unit
(** Start a new process at the current time. The spawner continues
    immediately; the child runs when the spawner next suspends.
    [group] overrides the inherited group tag (see {!make_group}). *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and calls
    [register waker].  Some other process (or timer) later calls
    [waker v]; the parked process then resumes with [v].  Calling the
    waker more than once is harmless: only the first call resumes. *)

val suspend_cancellable :
  (('a -> unit) -> unit) -> timeout:Time.t -> 'a option
(** Like {!suspend} but resumes with [None] if the waker has not fired
    within [timeout]. *)

val process_name : unit -> string
(** Name of the calling process (for diagnostics). *)
